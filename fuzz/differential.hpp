// Differential execution of one contraction case across every
// implementation in the repository, with invariant checking.
//
// The variants compared (when applicable to the case's shape):
//   * the brute-force pairing oracle (contract_reference) — ground truth
//   * the four ContractAlgo pipeline variants: COOY+SPA, COOY+HtA,
//     HtY+HtA (Sparta) and the binary-search COO extension
//   * HtY+HtA with the open-addressing linear-probe accumulator
//   * the prebuilt-YPlan entry point and the CSF-driven path
//   * the SpGEMM lowering (2-D operands, one contract mode; all four
//     accumulator × sizing combinations)
//   * the dense oracle (small index spaces only)
// plus per-variant invariants (sorted output, no duplicate coordinates,
// stats consistency), cross-thread determinism, and the O(nnz)
// Freivalds-style probabilistic verifier.
#pragma once

#include <string>
#include <vector>

#include "fuzz/fuzz_case.hpp"

namespace sparta::fuzz {

struct DiffOptions {
  double tolerance = 1e-9;
  int num_threads = 0;     ///< 0 = ambient; the harness also runs 1-thread
  bool check_dense = true; ///< dense oracle on small cases
  /// Cell-count ceiling per tensor for the dense oracle (8 MB of
  /// doubles per operand at the default).
  double dense_cell_limit = 1 << 20;
};

/// One detected disagreement or invariant violation.
struct Finding {
  std::string variant;  ///< which implementation misbehaved
  std::string what;     ///< human-readable description
};

struct DiffReport {
  std::vector<Finding> findings;
  int variants_run = 0;
  [[nodiscard]] bool ok() const { return findings.empty(); }
};

/// Runs every applicable variant of `c` and cross-checks results.
/// Never throws on mismatches (they become findings); exceptions thrown
/// by a variant are caught and reported as findings too.
[[nodiscard]] DiffReport run_differential(const FuzzCase& c,
                                          const DiffOptions& opts = {});

/// Differential ISA sweep (`fuzz_sptc --isa-diff`): replays `c` through
/// every (algorithm × table choice) cell twice — SPARTA_SIMD forced to
/// scalar, then to this machine's native tier — and demands BITWISE
/// identical outputs (exact value compare, not tolerance). Runs
/// single-threaded: parallel HtY builds make floating-point sum order
/// nondeterministic independent of ISA.
[[nodiscard]] DiffReport run_isa_differential(const FuzzCase& c);

struct FaultOptions {
  double tolerance = 1e-9;
  int num_threads = 0;  ///< 0 = ambient
  int schedules = 4;    ///< random failpoint schedules per case
  bool try_budget = true;  ///< half the schedules also set a tight budget
};

/// Fault-injection mode (`fuzz_sptc --inject-alloc-failures`): derives
/// `opts.schedules` deterministic failpoint schedules from the case
/// seed — random sites, actions (bad_alloc / sparta::Error / budget),
/// hit indices and repeat counts, optionally plus a tight MemoryBudget —
/// and drives both contract_resilient() and plain contract() through
/// each. Findings:
///   * contract_resilient() must either return a result matching the
///     brute-force oracle (possibly served by a degraded rung) or throw
///     sparta::Error; an escaping std::bad_alloc is a bug.
///   * plain contract() may fail with sparta::Error or std::bad_alloc,
///     but when it succeeds its result must match the oracle (injected
///     faults may abort work, never corrupt it).
/// Leaks and std::terminate are caught by the sanitizer jobs running
/// this mode in CI.
[[nodiscard]] DiffReport run_fault_injection(const FuzzCase& c,
                                             const FaultOptions& opts = {});

}  // namespace sparta::fuzz
