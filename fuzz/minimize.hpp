// Failing-case minimization (delta debugging for tensor contractions).
//
// Given a case on which some differential check fails, greedily shrink
// it while the failure persists: drop chunks of non-zeros from either
// operand (ddmin-style, halving chunk sizes), then remove entire free
// modes. The result is the smallest case the strategies can reach — far
// easier to step through than a 200-nnz order-5 original.
#pragma once

#include <functional>

#include "fuzz/fuzz_case.hpp"

namespace sparta::fuzz {

/// Returns true when the case still exhibits the failure being chased.
using FailurePredicate = std::function<bool(const FuzzCase&)>;

struct MinimizeStats {
  int predicate_calls = 0;
  int rounds = 0;
};

/// Shrinks `c` to a locally minimal failing case. `still_fails(c)` must
/// be true on entry; the returned case also satisfies it. The predicate
/// must be deterministic, or the walk can derail.
[[nodiscard]] FuzzCase minimize(FuzzCase c, const FailurePredicate& still_fails,
                                MinimizeStats* stats = nullptr);

}  // namespace sparta::fuzz
