#include "fuzz/differential.hpp"

#include <exception>
#include <sstream>
#include <vector>

#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "contraction/contract.hpp"
#include "contraction/contract_csf.hpp"
#include "contraction/plan.hpp"
#include "contraction/reference.hpp"
#include "contraction/resilient.hpp"
#include "contraction/verify.hpp"
#include "simd/dispatch.hpp"
#include "spgemm/spgemm.hpp"
#include "tensor/dense_tensor.hpp"

namespace sparta::fuzz {

namespace {

// Adjacent-row duplicate scan; assumes `z` is sorted.
bool has_duplicate_coords(const SparseTensor& z) {
  const int order = z.order();
  for (std::size_t n = 1; n < z.nnz(); ++n) {
    bool same = true;
    for (int m = 0; m < order; ++m) {
      if (z.index(n - 1, m) != z.index(n, m)) {
        same = false;
        break;
      }
    }
    if (same) return true;
  }
  return false;
}

double cell_count(const SparseTensor& t) {
  double cells = 1.0;
  for (index_t d : t.dims()) cells *= static_cast<double>(d);
  return cells;
}

std::string shape_note(const SparseTensor& z, const SparseTensor& ref) {
  std::ostringstream os;
  os << " (got " << z.summary() << ", oracle " << ref.summary() << ")";
  return os.str();
}

}  // namespace

DiffReport run_differential(const FuzzCase& c, const DiffOptions& opts) {
  DiffReport rep;
  auto fail = [&rep](std::string variant, std::string what) {
    rep.findings.push_back({std::move(variant), std::move(what)});
  };

  // Ground truth. A throw here means the generator produced an invalid
  // case — itself a bug worth reporting.
  SparseTensor ref;
  try {
    ref = contract_reference(c.x, c.y, c.cx, c.cy);
  } catch (const std::exception& e) {
    fail("oracle", std::string("contract_reference threw: ") + e.what());
    return rep;
  }

  const bool computed = !c.x.empty() && !c.y.empty();

  // approx_equal compares canonical (sorted, coalesced) forms, so legal
  // duplicate Z coordinates from duplicate-coordinate inputs are merged
  // before the comparison.
  auto compare = [&](const std::string& name, const SparseTensor& z) {
    if (!SparseTensor::approx_equal(z, ref, opts.tolerance)) {
      fail(name, "disagrees with the brute-force oracle" +
                     shape_note(z, ref));
    }
  };

  auto check_pipeline_invariants = [&](const std::string& name,
                                       const ContractResult& r,
                                       bool searches_are_per_nnz) {
    if (!r.z.is_sorted()) {
      fail(name, "output is not sorted despite sort_output=true");
    }
    if (!c.has_duplicates && has_duplicate_coords(r.z)) {
      fail(name, "output contains duplicate coordinates");
    }
    if (r.stats.nnz_x != c.x.nnz() || r.stats.nnz_y != c.y.nnz()) {
      fail(name, "stats.nnz_x/nnz_y do not echo the inputs");
    }
    if (r.stats.nnz_z != r.z.nnz()) {
      fail(name, "stats.nnz_z=" + std::to_string(r.stats.nnz_z) +
                     " but z.nnz()=" + std::to_string(r.z.nnz()));
    }
    if (searches_are_per_nnz &&
        r.stats.searches != (computed ? c.x.nnz() : 0)) {
      fail(name, "stats.searches=" + std::to_string(r.stats.searches) +
                     " != nnz_x=" + std::to_string(computed ? c.x.nnz() : 0));
    }
    if (r.stats.hits > r.stats.searches) {
      fail(name, "stats.hits exceeds stats.searches");
    }
    if (r.stats.nnz_z > r.stats.multiplies && computed) {
      fail(name, "stats.nnz_z exceeds stats.multiplies");
    }
  };

  // --- the four pipeline variants --------------------------------------
  constexpr Algorithm kAlgos[] = {Algorithm::kSpa, Algorithm::kCooHta,
                                  Algorithm::kSparta, Algorithm::kCooBinary};
  for (Algorithm alg : kAlgos) {
    const std::string name{algorithm_name(alg)};
    try {
      ContractOptions o;
      o.algorithm = alg;
      o.num_threads = opts.num_threads;
      const ContractResult r = contract(c.x, c.y, c.cx, c.cy, o);
      ++rep.variants_run;
      check_pipeline_invariants(name, r, /*searches_are_per_nnz=*/true);
      compare(name, r.z);
    } catch (const std::exception& e) {
      fail(name, std::string("threw: ") + e.what());
    }
  }

  // --- Sparta with the open-addressing accumulator ---------------------
  try {
    ContractOptions o;
    o.algorithm = Algorithm::kSparta;
    o.use_linear_probe_hta = true;
    o.num_threads = opts.num_threads;
    const ContractResult r = contract(c.x, c.y, c.cx, c.cy, o);
    ++rep.variants_run;
    check_pipeline_invariants("HtY+HtA(linear-probe)", r, true);
    compare("HtY+HtA(linear-probe)", r.z);
  } catch (const std::exception& e) {
    fail("HtY+HtA(linear-probe)", std::string("threw: ") + e.what());
  }

  // --- the swiss-table paths (SIMD-probed HtY/HtA) ---------------------
  for (Algorithm alg :
       {Algorithm::kSparta, Algorithm::kCooHta, Algorithm::kCooBinary}) {
    const std::string name = std::string(algorithm_name(alg)) + "(swiss)";
    try {
      ContractOptions o;
      o.algorithm = alg;
      o.use_swiss_tables = true;
      o.num_threads = opts.num_threads;
      const ContractResult r = contract(c.x, c.y, c.cx, c.cy, o);
      ++rep.variants_run;
      check_pipeline_invariants(name, r, true);
      compare(name, r.z);
    } catch (const std::exception& e) {
      fail(name, std::string("threw: ") + e.what());
    }
  }

  // --- prebuilt-plan entry point and the CSF path ----------------------
  try {
    const YPlan plan(c.y, c.cy);
    {
      const ContractResult r = contract(c.x, plan, c.cx);
      ++rep.variants_run;
      check_pipeline_invariants("YPlan", r, true);
      compare("YPlan", r.z);
    }
    {
      const ContractResult r = contract_csf(c.x, plan, c.cx);
      ++rep.variants_run;
      // CSF pre-merges duplicate X coordinates, so its search count is
      // the distinct-coordinate count; only check when no dups exist.
      check_pipeline_invariants("CSF", r, !c.has_duplicates);
      compare("CSF", r.z);
    }
  } catch (const std::exception& e) {
    fail("YPlan/CSF", std::string("threw: ") + e.what());
  }

  // --- SpGEMM lowering (2-D, single contract mode) ---------------------
  if (c.x.order() == 2 && c.y.order() == 2 && c.cx.size() == 1) {
    try {
      CsrMatrix a = CsrMatrix::from_coo(c.x);
      if (c.cx[0] == 0) a = a.transposed();  // contract X's rows: use Xᵀ
      CsrMatrix b = CsrMatrix::from_coo(c.y);
      if (c.cy[0] == 1) b = b.transposed();  // contract Y's cols: use Yᵀ
      for (SpgemmAccumulator acc :
           {SpgemmAccumulator::kDenseSpa, SpgemmAccumulator::kHash}) {
        for (SpgemmSizing sz :
             {SpgemmSizing::kProgressive, SpgemmSizing::kTwoPhase}) {
          SpgemmOptions so;
          so.accumulator = acc;
          so.sizing = sz;
          so.num_threads = opts.num_threads;
          const CsrMatrix cmat = spgemm(a, b, so);
          ++rep.variants_run;
          const std::string name =
              std::string("SpGEMM[") +
              std::string(spgemm_accumulator_name(acc)) + "," +
              std::string(spgemm_sizing_name(sz)) + "]";
          compare(name, cmat.to_coo());
        }
      }
    } catch (const std::exception& e) {
      fail("SpGEMM", std::string("threw: ") + e.what());
    }
  }

  // --- dense oracle (small index spaces only) --------------------------
  if (opts.check_dense && cell_count(c.x) <= opts.dense_cell_limit &&
      cell_count(c.y) <= opts.dense_cell_limit &&
      cell_count(ref) <= opts.dense_cell_limit) {
    try {
      const DenseTensor dx = DenseTensor::from_sparse(c.x);
      const DenseTensor dy = DenseTensor::from_sparse(c.y);
      const DenseTensor dz = contract_dense(dx, dy, c.cx, c.cy);
      ++rep.variants_run;
      // The dense path accumulates duplicates on scatter, so no coalesce
      // subtleties; compare its extraction directly against the oracle.
      if (!SparseTensor::approx_equal(dz.to_sparse(), ref,
                                      opts.tolerance)) {
        fail("dense", "disagrees with the brute-force oracle");
      }
    } catch (const std::exception& e) {
      fail("dense", std::string("threw: ") + e.what());
    }
  }

  // --- determinism: repeat run and cross-thread agreement --------------
  try {
    ContractOptions o1;
    o1.num_threads = 1;
    const SparseTensor za = contract_tensor(c.x, c.y, c.cx, c.cy, o1);
    const SparseTensor zb = contract_tensor(c.x, c.y, c.cx, c.cy, o1);
    ++rep.variants_run;
    if (!SparseTensor::approx_equal(za, zb, 0.0)) {
      fail("determinism", "two identical 1-thread runs differ");
    }
    ContractOptions o3;
    o3.num_threads = 3;
    const SparseTensor zc = contract_tensor(c.x, c.y, c.cx, c.cy, o3);
    if (!SparseTensor::approx_equal(za, zc, 1e-12)) {
      fail("determinism", "1-thread and 3-thread results differ");
    }
  } catch (const std::exception& e) {
    fail("determinism", std::string("threw: ") + e.what());
  }

  // --- Freivalds-style probabilistic verifier --------------------------
  if (computed) {
    try {
      ContractOptions o;
      o.num_threads = opts.num_threads;
      const SparseTensor z = contract_tensor(c.x, c.y, c.cx, c.cy, o);
      VerifyOptions vo;
      vo.seed = c.seed ^ 0xf00dULL;
      ++rep.variants_run;
      if (!verify_contraction(c.x, c.y, c.cx, c.cy, z, vo)) {
        fail("freivalds", "probabilistic verifier rejected Sparta output");
      }
    } catch (const std::exception& e) {
      fail("freivalds", std::string("threw: ") + e.what());
    }
  }

  return rep;
}

namespace {

// Bitwise tensor equality: dims, every index column, and exact (not
// tolerance-scaled) value compare. On mismatch returns a description of
// the first differing position; empty string means identical.
std::string bitwise_diff(const SparseTensor& a, const SparseTensor& b) {
  if (a.dims() != b.dims()) {
    return "shapes differ (" + a.summary() + " vs " + b.summary() + ")";
  }
  if (a.nnz() != b.nnz()) {
    return "nnz differs (" + std::to_string(a.nnz()) + " vs " +
           std::to_string(b.nnz()) + ")";
  }
  for (std::size_t n = 0; n < a.nnz(); ++n) {
    for (int m = 0; m < a.order(); ++m) {
      if (a.index(n, m) != b.index(n, m)) {
        return "index [" + std::to_string(n) + "][" + std::to_string(m) +
               "] differs (" + std::to_string(a.index(n, m)) + " vs " +
               std::to_string(b.index(n, m)) + ")";
      }
    }
    if (a.value(n) != b.value(n)) {
      return "value [" + std::to_string(n) + "] differs (" +
             std::to_string(a.value(n)) + " vs " +
             std::to_string(b.value(n)) + ")";
    }
  }
  return {};
}

}  // namespace

DiffReport run_isa_differential(const FuzzCase& c) {
  DiffReport rep;
  auto fail = [&rep](std::string variant, std::string what) {
    rep.findings.push_back({std::move(variant), std::move(what)});
  };

  // Every algorithm path × table choice, replayed scalar-vs-native with
  // a BITWISE compare. Single-threaded: with >1 thread the parallel HtY
  // build interleaves items nondeterministically, so floating-point sum
  // order varies run to run regardless of ISA — the ISA invariant is
  // only defined where the engine itself is deterministic.
  struct Cell {
    Algorithm algorithm;
    bool swiss;
    bool linear_probe;
    const char* suffix;
  };
  constexpr Cell kCells[] = {
      {Algorithm::kSpa, false, false, ""},
      {Algorithm::kCooHta, false, false, ""},
      {Algorithm::kCooHta, true, false, "(swiss)"},
      {Algorithm::kSparta, false, false, ""},
      {Algorithm::kSparta, false, true, "(linear-probe)"},
      {Algorithm::kSparta, true, false, "(swiss)"},
      {Algorithm::kCooBinary, false, false, ""},
      {Algorithm::kCooBinary, true, false, "(swiss)"},
  };
  for (const Cell& cell : kCells) {
    const std::string name =
        std::string(algorithm_name(cell.algorithm)) + cell.suffix;
    try {
      ContractOptions o;
      o.algorithm = cell.algorithm;
      o.use_swiss_tables = cell.swiss;
      o.use_linear_probe_hta = cell.linear_probe;
      o.num_threads = 1;
      SparseTensor z_scalar;
      {
        simd::ScopedIsaOverride force(simd::SimdIsa::kScalar);
        z_scalar = contract_tensor(c.x, c.y, c.cx, c.cy, o);
      }
      SparseTensor z_native;
      {
        simd::ScopedIsaOverride force(simd::detect_native_isa());
        z_native = contract_tensor(c.x, c.y, c.cx, c.cy, o);
      }
      ++rep.variants_run;
      const std::string diff = bitwise_diff(z_scalar, z_native);
      if (!diff.empty()) {
        fail(name, "scalar and " +
                       std::string(simd::isa_name(simd::detect_native_isa())) +
                       " outputs are not bitwise identical: " + diff);
      }
    } catch (const std::exception& e) {
      fail(name, std::string("threw: ") + e.what());
    }
  }
  return rep;
}

namespace {

// One deterministic failpoint schedule: which sites are armed and how.
struct Schedule {
  struct Entry {
    const char* site;
    failpoint::Spec spec;
  };
  std::vector<Entry> entries;
  std::size_t budget_bytes = 0;  ///< 0 = no budget this schedule

  [[nodiscard]] std::string describe() const {
    std::string s;
    for (const Entry& e : entries) {
      if (!s.empty()) s += ";";
      s += e.site;
      switch (e.spec.action) {
        case failpoint::Action::kBadAlloc:
          s += "=bad_alloc";
          break;
        case failpoint::Action::kError:
          s += "=error";
          break;
        case failpoint::Action::kBudget:
          s += "=budget";
          break;
      }
      s += "@" + std::to_string(e.spec.fire_on);
      s += e.spec.times == 0 ? "x*" : "x" + std::to_string(e.spec.times);
    }
    if (budget_bytes != 0) {
      s += " budget=" + std::to_string(budget_bytes);
    }
    return s;
  }

  void arm() const {
    for (const Entry& e : entries) failpoint::arm(e.site, e.spec);
  }
};

Schedule draw_schedule(std::uint64_t case_seed, int index, bool try_budget) {
  Rng rng(case_seed ^ (0xFA117ULL * static_cast<std::uint64_t>(index + 1)));
  Schedule sched;
  constexpr std::size_t kNumSites =
      sizeof(failpoint::kContractSites) / sizeof(const char*);
  const std::size_t n = 1 + rng.uniform(3);
  for (std::size_t i = 0; i < n; ++i) {
    Schedule::Entry e;
    e.site = failpoint::kContractSites[rng.uniform(kNumSites)];
    e.spec.action = static_cast<failpoint::Action>(rng.uniform(3));
    e.spec.fire_on = 1 + rng.uniform(4);
    const std::uint64_t t = rng.uniform(10);
    e.spec.times = t < 7 ? 1 : (t < 9 ? 2 : 0);  // 0 = every hit
    sched.entries.push_back(e);
  }
  if (try_budget && (rng.uniform(2) == 1)) {
    // 4 KB … 4 MB: small enough to trip real charges on fuzz-sized
    // cases, large enough that some rung usually fits.
    sched.budget_bytes = std::size_t{4096} << rng.uniform(11);
  }
  return sched;
}

// Disarms every failpoint on scope exit, exception or not.
struct DisarmGuard {
  ~DisarmGuard() { failpoint::disarm_all(); }
};

}  // namespace

DiffReport run_fault_injection(const FuzzCase& c, const FaultOptions& opts) {
  DiffReport rep;
  auto fail = [&rep](std::string variant, std::string what) {
    rep.findings.push_back({std::move(variant), std::move(what)});
  };

  // Oracle runs with no faults armed.
  failpoint::disarm_all();
  SparseTensor ref;
  try {
    ref = contract_reference(c.x, c.y, c.cx, c.cy);
  } catch (const std::exception& e) {
    fail("oracle", std::string("contract_reference threw: ") + e.what());
    return rep;
  }

  for (int i = 0; i < opts.schedules; ++i) {
    const Schedule sched = draw_schedule(c.seed, i, opts.try_budget);
    const std::string tag = "fault[" + std::to_string(i) + "]";
    ContractOptions o;
    o.num_threads = opts.num_threads;
    o.budget.bytes = sched.budget_bytes;

    // contract_resilient(): correct (possibly degraded) result, or
    // sparta::Error. Nothing else may escape.
    {
      DisarmGuard guard;
      sched.arm();
      try {
        const ResilientResult r =
            contract_resilient(c.x, c.y, c.cx, c.cy, o);
        ++rep.variants_run;
        if (!SparseTensor::approx_equal(r.result.z, ref, opts.tolerance)) {
          fail(tag, "degraded result (rung " +
                        r.report.serving().describe() +
                        ") disagrees with the oracle; schedule " +
                        sched.describe() + shape_note(r.result.z, ref));
        }
      } catch (const Error&) {
        ++rep.variants_run;  // exhausting the ladder is a legal outcome
      } catch (const std::bad_alloc&) {
        fail(tag, "std::bad_alloc escaped contract_resilient; schedule " +
                      sched.describe());
      } catch (const std::exception& e) {
        fail(tag, std::string("unexpected exception escaped "
                              "contract_resilient: ") +
                      e.what() + "; schedule " + sched.describe());
      }
    }

    // Plain contract(): may fail with sparta::Error or std::bad_alloc,
    // but a success must be correct (faults abort work, never corrupt
    // it) and nothing else may escape the parallel regions.
    {
      DisarmGuard guard;
      sched.arm();
      try {
        const ContractResult r = contract(c.x, c.y, c.cx, c.cy, o);
        ++rep.variants_run;
        if (!SparseTensor::approx_equal(r.z, ref, opts.tolerance)) {
          fail(tag, "contract() survived injection but disagrees with "
                    "the oracle; schedule " +
                        sched.describe() + shape_note(r.z, ref));
        }
      } catch (const Error&) {
        ++rep.variants_run;
      } catch (const std::bad_alloc&) {
        ++rep.variants_run;
      } catch (const std::exception& e) {
        fail(tag,
             std::string("unexpected exception escaped contract(): ") +
                 e.what() + "; schedule " + sched.describe());
      }
    }
  }
  return rep;
}

}  // namespace sparta::fuzz
