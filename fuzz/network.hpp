// Differential fuzzing of the contraction-plan compiler
// (`fuzz_sptc --network`).
//
// Each seed draws a small random connected tensor network (3–4
// operands, dims 2–8, a few dozen non-zeros each) whose values are
// small exact integers, then executes EVERY legal contraction order
// (plan::enumerate_plans) plus the planner's own searched order through
// a private ContractionService. Because every value, product and
// partial sum stays far below 2^53, floating-point arithmetic is exact
// and all orders must produce BITWISE identical results — any
// divergence is a real bug in the planner's step emission (cx/cy/perm
// bookkeeping), the executor's intermediate plumbing, or the engine.
// Divergent cases are minimized by greedy non-zero removal before
// reporting.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/differential.hpp"
#include "plan/ir.hpp"
#include "tensor/sparse_tensor.hpp"

namespace sparta::fuzz {

struct NetworkLimits {
  std::size_t max_operands = 4;  ///< 3..max_operands inputs
  index_t max_dim = 8;           ///< per-label dimension 2..max_dim
  std::size_t max_nnz = 40;      ///< per-operand non-zero cap
};

struct NetworkCase {
  std::uint64_t seed = 0;
  std::string expr;  ///< the textual IR, e.g. "Z[a,c] = T0[a,b] * ..."
  plan::ContractionNetwork net;
  /// Parallel to net.inputs; values are exact integers in [1, 4].
  std::vector<SparseTensor> tensors;
  [[nodiscard]] std::string label() const;
};

/// Draws the network case for `seed`. Deterministic across platforms
/// (integer RNG only; no floating-point-order dependence).
[[nodiscard]] NetworkCase draw_network_case(std::uint64_t seed,
                                            const NetworkLimits& limits = {});

/// Executes every legal order and the planner's searched order;
/// findings are bitwise divergences (or failed executions). Also checks
/// the searched order is admissible: its estimated cost must not exceed
/// every enumerated alternative's (the DP must never pick a plan it
/// itself estimates as the unique worst).
[[nodiscard]] DiffReport run_network_differential(const NetworkCase& c);

/// Full textual dump (expr + every operand's non-zeros).
[[nodiscard]] std::string dump_network_case(const NetworkCase& c);

/// Greedy ddmin-style shrink: removes non-zeros (chunked, then single)
/// while `still_fails(candidate)` holds. Bounded predicate calls.
[[nodiscard]] NetworkCase minimize_network(
    const NetworkCase& c,
    const std::function<bool(const NetworkCase&)>& still_fails,
    int* predicate_calls = nullptr);

}  // namespace sparta::fuzz
