#include "fuzz/fuzz_case.hpp"

#include <algorithm>
#include <sstream>

#include "common/rng.hpp"
#include "tensor/generators.hpp"

namespace sparta::fuzz {

std::string_view regime_name(Regime r) {
  switch (r) {
    case Regime::kTiny:
      return "tiny";
    case Regime::kSmall:
      return "small";
    case Regime::kSkewed:
      return "skewed";
    case Regime::kHypersparse:
      return "hypersparse";
    case Regime::kMatrix:
      return "matrix";
  }
  return "?";
}

std::string FuzzCase::label() const {
  std::ostringstream os;
  os << "seed=" << seed << " regime=" << regime_name(regime)
     << " x=" << x.summary() << " y=" << y.summary() << " cx={";
  for (std::size_t i = 0; i < cx.size(); ++i) {
    os << (i ? "," : "") << cx[i];
  }
  os << "} cy={";
  for (std::size_t i = 0; i < cy.size(); ++i) {
    os << (i ? "," : "") << cy[i];
  }
  os << "}";
  if (has_duplicates) os << " +dups";
  return os.str();
}

namespace {

// Draws `count` distinct modes of a tensor of the given order.
Modes draw_modes(Rng& rng, int order, int count) {
  Modes all(static_cast<std::size_t>(order));
  for (int m = 0; m < order; ++m) all[static_cast<std::size_t>(m)] = m;
  // Fisher–Yates prefix shuffle, deterministic via the case RNG.
  for (int i = 0; i < count; ++i) {
    const auto j = i + static_cast<int>(rng.uniform(
                           static_cast<std::uint64_t>(order - i)));
    std::swap(all[static_cast<std::size_t>(i)],
              all[static_cast<std::size_t>(j)]);
  }
  all.resize(static_cast<std::size_t>(count));
  return all;
}

// `cap` bounds each mode so the per-tensor index-space product fits the
// 64-bit LN representation (the generator linearizes full coordinates).
index_t draw_dim(Rng& rng, Regime regime, index_t cap) {
  index_t d = 4;
  switch (regime) {
    case Regime::kTiny:
      d = 2 + static_cast<index_t>(rng.uniform(5));  // 2..6
      break;
    case Regime::kSmall:
      d = 2 + static_cast<index_t>(rng.uniform(11));  // 2..12
      break;
    case Regime::kSkewed:
      d = 8 + static_cast<index_t>(rng.uniform(41));  // 8..48
      break;
    case Regime::kHypersparse:
      d = 64 + static_cast<index_t>(rng.uniform(50'000 - 64));
      break;
    case Regime::kMatrix:
      d = 4 + static_cast<index_t>(rng.uniform(61));  // 4..64
      break;
  }
  return std::min(d, cap);
}

// Target nnz for one operand: a fraction of the cell count, capped.
std::size_t draw_nnz(Rng& rng, const std::vector<index_t>& dims,
                     std::size_t cap) {
  double cells = 1.0;
  for (index_t d : dims) cells *= static_cast<double>(d);
  // 0 nnz with small probability: empty-operand corner.
  if (rng.uniform(16) == 0) return 0;
  const double frac = 0.05 + 0.45 * rng.uniform_double();
  const auto want = static_cast<std::size_t>(cells * frac);
  return std::clamp<std::size_t>(want, 1, cap);
}

std::vector<double> draw_skew(Rng& rng, std::size_t order, Regime regime) {
  // Tiny tensors with skewed draws stall the exact-nnz generator (too
  // few reachable distinct cells); keep them uniform.
  if (regime == Regime::kTiny) return {};
  if (regime != Regime::kSkewed && rng.uniform(4) != 0) return {};
  std::vector<double> skew(order);
  for (double& s : skew) s = 1.0 + 5.0 * rng.uniform_double();
  return skew;
}

// Skewed draws concentrate on few cells; lower the exact-nnz target so
// the generator's distinct-coordinate retry budget cannot be exhausted.
void derate_for_skew(GeneratorSpec& spec) {
  if (spec.skew.empty() || spec.nnz == 0) return;
  double cells = 1.0;
  for (index_t d : spec.dims) cells *= static_cast<double>(d);
  const auto ceiling = static_cast<std::size_t>(
      std::max(1.0, std::min(cells / 8.0, 1e18)));
  spec.nnz = std::min(spec.nnz, ceiling);
}

// Appends `count` duplicates of existing coordinates (random picks).
void inject_duplicates(Rng& rng, SparseTensor& t, std::size_t count) {
  if (t.empty()) return;
  std::vector<index_t> c(static_cast<std::size_t>(t.order()));
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t n = rng.uniform(t.nnz());
    t.coords(n, c);
    t.append(c, rng.uniform_double(-1.0, 1.0));
  }
}

}  // namespace

FuzzCase draw_case(std::uint64_t seed, const CaseLimits& limits) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x51edc764a8a1e1ULL);
  FuzzCase c;
  c.seed = seed;
  c.regime = static_cast<Regime>(rng.uniform(5));

  int xorder, yorder, m;
  if (c.regime == Regime::kMatrix) {
    xorder = 2;
    yorder = 2;
    m = 1;
  } else {
    const auto max_o = static_cast<std::uint64_t>(limits.max_order);
    do {
      xorder = 1 + static_cast<int>(rng.uniform(max_o));
      yorder = 1 + static_cast<int>(rng.uniform(max_o));
      m = 1 + static_cast<int>(rng.uniform(
                  static_cast<std::uint64_t>(std::min(xorder, yorder))));
      // Full contraction of *both* operands would leave a scalar, which
      // the API rejects by contract; redraw. Full contraction of one
      // operand (empty-free-mode corner) is kept — and boosted below.
    } while (m == xorder && m == yorder);
    // Boost the empty-free-mode corner: fully contract the smaller
    // operand (only valid when the other one keeps a free mode).
    if (xorder != yorder && rng.uniform(5) == 0) {
      m = std::min(xorder, yorder);
    }
  }

  c.cx = draw_modes(rng, xorder, m);
  c.cy = draw_modes(rng, yorder, m);

  // Shared per-mode cap: contract dims are copied between the operands,
  // so both tensors' products must fit 64 bits under the same bound.
  const auto shared_order = std::max(xorder, yorder);
  const auto dim_cap = static_cast<index_t>(
      std::min<std::uint64_t>(std::uint64_t{1} << (62 / shared_order),
                              std::uint64_t{1} << 31));

  std::vector<index_t> xdims(static_cast<std::size_t>(xorder));
  std::vector<index_t> ydims(static_cast<std::size_t>(yorder));
  for (auto& d : xdims) d = draw_dim(rng, c.regime, dim_cap);
  for (auto& d : ydims) d = draw_dim(rng, c.regime, dim_cap);
  for (int i = 0; i < m; ++i) {
    ydims[static_cast<std::size_t>(c.cy[static_cast<std::size_t>(i)])] =
        xdims[static_cast<std::size_t>(c.cx[static_cast<std::size_t>(i)])];
  }

  const std::size_t cap = c.regime == Regime::kMatrix
                              ? limits.max_matrix_nnz
                              : limits.max_nnz;

  GeneratorSpec xs;
  xs.dims = xdims;
  xs.seed = rng();
  xs.nnz = draw_nnz(rng, xdims, cap);
  xs.skew = draw_skew(rng, xdims.size(), c.regime);
  // Occasionally a non-negative or shifted value range, so cancellation
  // and all-positive accumulation paths both appear.
  if (rng.uniform(4) == 0) {
    xs.value_lo = 0.0;
    xs.value_hi = 2.0;
  }

  GeneratorSpec ys;
  ys.dims = ydims;
  ys.seed = rng();
  ys.nnz = draw_nnz(rng, ydims, cap);
  ys.skew = draw_skew(rng, ydims.size(), c.regime);
  derate_for_skew(xs);
  derate_for_skew(ys);

  // Steer X to hit Y's contract tuples when the paired generator's
  // preconditions hold (leading contract modes, both with free modes);
  // otherwise generate independently — hypersparse cases then mostly
  // miss, exercising the zero-hit search path.
  const bool leading =
      std::all_of(c.cx.begin(), c.cx.end(),
                  [&](int mm) { return mm < m; }) &&
      std::all_of(c.cy.begin(), c.cy.end(), [&](int mm) { return mm < m; });
  if (leading && m < xorder && m < yorder && xs.nnz > 0 && ys.nnz > 0 &&
      rng.uniform(2) == 0) {
    // The paired generator matches X's leading mode i with Y's leading
    // mode i; realign X's leading dims (and use identity mode lists) so
    // its precondition "leading contract dims equal" holds.
    PairedSpec ps;
    ps.x = xs;
    ps.y = ys;
    for (int i = 0; i < m; ++i) {
      ps.x.dims[static_cast<std::size_t>(i)] =
          ys.dims[static_cast<std::size_t>(i)];
    }
    double cells = 1.0;
    for (index_t d : ps.x.dims) cells *= static_cast<double>(d);
    ps.x.nnz = std::clamp<std::size_t>(
        ps.x.nnz, 1,
        static_cast<std::size_t>(std::min(cells, 1e18)));
    ps.num_contract_modes = m;
    ps.match_fraction = rng.uniform_double();
    TensorPair pair = generate_contraction_pair(ps);
    c.x = std::move(pair.x);
    c.y = std::move(pair.y);
    c.cx.clear();
    c.cy.clear();
    for (int i = 0; i < m; ++i) {
      c.cx.push_back(i);
      c.cy.push_back(i);
    }
  } else {
    c.x = xs.nnz > 0 ? generate_random(xs) : SparseTensor(xdims);
    c.y = ys.nnz > 0 ? generate_random(ys) : SparseTensor(ydims);
  }

  // Duplicate-coordinate corner (~1 in 8 cases).
  if (rng.uniform(8) == 0) {
    inject_duplicates(rng, c.x, 1 + rng.uniform(4));
    inject_duplicates(rng, c.y, 1 + rng.uniform(4));
    c.has_duplicates = true;
  }
  return c;
}

namespace {

void dump_tensor(std::ostringstream& os, const char* name,
                 const SparseTensor& t) {
  os << name << " dims=[";
  for (int m = 0; m < t.order(); ++m) {
    os << (m ? "," : "") << t.dim(m);
  }
  os << "] nnz=" << t.nnz() << "\n";
  std::vector<index_t> c(static_cast<std::size_t>(t.order()));
  os.precision(17);
  for (std::size_t n = 0; n < t.nnz(); ++n) {
    t.coords(n, c);
    os << "  ";
    for (index_t i : c) os << i << " ";
    os << t.value(n) << "\n";
  }
}

}  // namespace

std::string dump_case(const FuzzCase& c) {
  std::ostringstream os;
  os << "# " << c.label() << "\n";
  dump_tensor(os, "X", c.x);
  dump_tensor(os, "Y", c.y);
  return os.str();
}

}  // namespace sparta::fuzz
