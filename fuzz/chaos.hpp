// Chaos mode (`fuzz_sptc --chaos`): randomized cancellation layered on
// the fault-injection machinery, asserting the robustness invariants the
// cancellation subsystem promises.
//
// Each seed drives two scenarios, both pure functions of the seed:
//
//   * engine-level — contract() and contract_resilient() run with a
//     randomly armed CancelToken (countdown, named site, or a tiny
//     deadline), random failpoint schedules, and sometimes a tight
//     memory budget. Legal outcomes: a result matching the brute-force
//     oracle, Cancelled, sparta::Error, or (plain contract only)
//     std::bad_alloc. After every run the request's AllocationRegistry
//     must be back to zero live bytes — cancellation may abort work,
//     never leak budget charges.
//
//   * service-level — a small ContractionService takes a burst of
//     requests (tiny deadlines, store_as, an invalid operand name) and
//     is then torn down via shutdown_now(), shutdown(), or plain
//     destruction. Every future must resolve, a cancelled request must
//     never have registered a partial Z, and after dropping tensors and
//     clearing the plan cache live_bytes() must be zero.
//
// Memory-safety violations are the sanitizer's findings: CI runs this
// mode under ASan (and the service scenario under TSan).
#pragma once

#include "fuzz/differential.hpp"
#include "fuzz/fuzz_case.hpp"

namespace sparta::fuzz {

struct ChaosOptions {
  double tolerance = 1e-9;
  int num_threads = 0;   ///< 0 = ambient
  int rounds = 3;        ///< engine-level chaos rounds per seed
  bool service = true;   ///< also run the service-level scenario
};

/// Runs the chaos scenarios for `c`; invariant violations become
/// findings (sanitizer reports abort the process instead).
[[nodiscard]] DiffReport run_chaos(const FuzzCase& c,
                                   const ChaosOptions& opts = {});

}  // namespace sparta::fuzz
