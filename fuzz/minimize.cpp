#include "fuzz/minimize.hpp"

#include <algorithm>
#include <vector>

namespace sparta::fuzz {

namespace {

// Copy of `t` without non-zeros [begin, end).
SparseTensor drop_range(const SparseTensor& t, std::size_t begin,
                        std::size_t end) {
  SparseTensor out(t.dims());
  out.reserve(t.nnz() - (end - begin));
  std::vector<index_t> c(static_cast<std::size_t>(t.order()));
  for (std::size_t n = 0; n < t.nnz(); ++n) {
    if (n >= begin && n < end) continue;
    t.coords(n, c);
    out.append_unchecked(c, t.value(n));
  }
  return out;
}

// Copy of `t` with one mode projected away entirely.
SparseTensor drop_mode(const SparseTensor& t, int mode) {
  std::vector<index_t> dims;
  for (int m = 0; m < t.order(); ++m) {
    if (m != mode) dims.push_back(t.dim(m));
  }
  SparseTensor out(std::move(dims));
  out.reserve(t.nnz());
  std::vector<index_t> c(static_cast<std::size_t>(t.order()));
  std::vector<index_t> kept;
  kept.reserve(static_cast<std::size_t>(t.order()) - 1);
  for (std::size_t n = 0; n < t.nnz(); ++n) {
    t.coords(n, c);
    kept.clear();
    for (int m = 0; m < t.order(); ++m) {
      if (m != mode) kept.push_back(c[static_cast<std::size_t>(m)]);
    }
    out.append_unchecked(kept, t.value(n));
  }
  return out;
}

bool check(const FuzzCase& c, const FailurePredicate& pred,
           MinimizeStats* st) {
  ++st->predicate_calls;
  return pred(c);
}

// ddmin-style non-zero removal on one operand: chunks from n/2 down to
// single elements, committing every drop that keeps the failure alive.
bool shrink_nnz(FuzzCase& c, bool on_x, const FailurePredicate& pred,
                MinimizeStats* st) {
  bool changed = false;
  auto& t = on_x ? c.x : c.y;
  std::size_t chunk = std::max<std::size_t>(1, t.nnz() / 2);
  while (true) {
    std::size_t i = 0;
    while (i < t.nnz()) {
      const std::size_t end = std::min(i + chunk, t.nnz());
      FuzzCase cand = c;
      (on_x ? cand.x : cand.y) = drop_range(t, i, end);
      if (check(cand, pred, st)) {
        c = std::move(cand);
        changed = true;  // keep i: the next chunk slid into place
      } else {
        i = end;
      }
    }
    if (chunk == 1) break;
    chunk /= 2;
  }
  return changed;
}

// Removes one whole free mode of an operand when the failure survives
// the projection. Contract modes stay; mode numbers above the dropped
// one shift down by one.
bool shrink_mode(FuzzCase& c, bool on_x, const FailurePredicate& pred,
                 MinimizeStats* st) {
  auto& t = on_x ? c.x : c.y;
  auto& cm = on_x ? c.cx : c.cy;
  const auto other_free =
      static_cast<std::size_t>((on_x ? c.y.order() : c.x.order())) -
      cm.size();
  const auto own_free = static_cast<std::size_t>(t.order()) - cm.size();
  if (t.order() < 2 || own_free == 0) return false;
  // The API requires at least one free mode overall.
  if (own_free == 1 && other_free == 0) return false;
  for (int mode = t.order() - 1; mode >= 0; --mode) {
    if (std::find(cm.begin(), cm.end(), mode) != cm.end()) continue;
    FuzzCase cand = c;
    (on_x ? cand.x : cand.y) = drop_mode(t, mode);
    auto& ccm = on_x ? cand.cx : cand.cy;
    for (int& m : ccm) {
      if (m > mode) --m;
    }
    // Projection can merge coordinates into duplicates, which makes
    // duplicate output coordinates legal for this case.
    cand.has_duplicates = true;
    if (check(cand, pred, st)) {
      c = std::move(cand);
      return true;
    }
  }
  return false;
}

}  // namespace

FuzzCase minimize(FuzzCase c, const FailurePredicate& still_fails,
                  MinimizeStats* stats) {
  MinimizeStats local;
  if (!stats) stats = &local;
  constexpr int kMaxRounds = 16;  // safety bound; fixpoint comes sooner
  for (int round = 0; round < kMaxRounds; ++round) {
    ++stats->rounds;
    bool changed = false;
    changed |= shrink_nnz(c, /*on_x=*/true, still_fails, stats);
    changed |= shrink_nnz(c, /*on_x=*/false, still_fails, stats);
    changed |= shrink_mode(c, /*on_x=*/true, still_fails, stats);
    changed |= shrink_mode(c, /*on_x=*/false, still_fails, stats);
    if (!changed) break;
  }
  return c;
}

}  // namespace sparta::fuzz
