#include "fuzz/chaos.hpp"

#include <exception>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/rng.hpp"
#include "contraction/contract.hpp"
#include "contraction/reference.hpp"
#include "contraction/resilient.hpp"
#include "memsim/allocator.hpp"
#include "serve/service.hpp"

namespace sparta::fuzz {

namespace {

// Every cooperative cancel point the engine polls; arm_at_site targets
// are drawn from here so chaos exercises each stage boundary.
constexpr const char* kCancelSites[] = {
    "contract.input",  "contract.search",   "contract.accumulate",
    "contract.writeback", "contract.sort",  "contract.chunk",
    "contract.gather", "plan.build",        "sort.partition",
    "sort.radix_pass",
};

// Disarms every failpoint on scope exit, exception or not.
struct DisarmGuard {
  ~DisarmGuard() { failpoint::disarm_all(); }
};

// How one chaos round arms its CancelToken (recorded for findings).
std::string arm_token(Rng& rng, CancelToken& token) {
  switch (rng.uniform(4)) {
    case 0:
      token = CancelToken{};  // inert: pure fault/budget round
      return "cancel=off";
    case 1: {
      token = CancelToken::make();
      const std::uint64_t n = 1 + rng.uniform(200);
      token.arm_after_checks(n);
      return "cancel=check#" + std::to_string(n);
    }
    case 2: {
      token = CancelToken::make();
      constexpr std::size_t kNumSites =
          sizeof(kCancelSites) / sizeof(const char*);
      const char* site = kCancelSites[rng.uniform(kNumSites)];
      token.arm_at_site(site);
      return std::string("cancel=site:") + site;
    }
    default: {
      const double secs = 1e-6 * static_cast<double>(1 + rng.uniform(1000));
      token = CancelToken::with_deadline(secs);
      return "cancel=deadline";
    }
  }
}

// Arms 0–2 random failpoints (mirrors run_fault_injection's draw, with
// chaos's own stream so the two modes explore independently).
std::string arm_failpoints(Rng& rng) {
  if (rng.uniform(2) == 0) return "faults=off";
  constexpr std::size_t kNumSites =
      sizeof(failpoint::kContractSites) / sizeof(const char*);
  std::string desc = "faults=";
  const std::size_t n = 1 + rng.uniform(2);
  for (std::size_t i = 0; i < n; ++i) {
    const char* site = failpoint::kContractSites[rng.uniform(kNumSites)];
    failpoint::Spec spec;
    spec.action = static_cast<failpoint::Action>(rng.uniform(3));
    spec.fire_on = 1 + rng.uniform(4);
    spec.times = 1 + rng.uniform(2);
    failpoint::arm(site, spec);
    if (i != 0) desc += ";";
    desc += site;
  }
  return desc;
}

void run_engine_round(const FuzzCase& c, const SparseTensor& ref,
                      const ChaosOptions& opts, int round,
                      DiffReport& rep) {
  Rng rng(c.seed ^ (0xC4A05ULL * static_cast<std::uint64_t>(round + 1)));
  const std::string tag = "chaos[" + std::to_string(round) + "]";
  auto fail = [&](const std::string& what, const std::string& setup) {
    rep.findings.push_back({tag, what + "; " + setup});
  };

  ContractOptions o;
  o.num_threads = opts.num_threads;
  AllocationRegistry reg;
  o.registry = &reg;
  std::string setup = arm_token(rng, o.cancel);
  if (rng.uniform(2) == 1) {
    o.budget.bytes = std::size_t{4096} << rng.uniform(11);
    setup += " budget=" + std::to_string(o.budget.bytes);
  }
  const bool resilient = rng.uniform(2) == 1;
  setup += resilient ? " path=resilient" : " path=contract";

  {
    DisarmGuard guard;
    setup += " " + arm_failpoints(rng);
    try {
      if (resilient) {
        // Legal: oracle-matching (possibly degraded) result, Cancelled,
        // or Error. An escaped bad_alloc is a ladder bug.
        const ResilientResult r =
            contract_resilient(c.x, c.y, c.cx, c.cy, o);
        ++rep.variants_run;
        if (!SparseTensor::approx_equal(r.result.z, ref,
                                        opts.tolerance)) {
          fail("degraded result disagrees with the oracle", setup);
        }
      } else {
        // Legal: oracle-matching result, Cancelled, Error, bad_alloc.
        const ContractResult r = contract(c.x, c.y, c.cx, c.cy, o);
        ++rep.variants_run;
        if (!SparseTensor::approx_equal(r.z, ref, opts.tolerance)) {
          fail("contract() survived chaos but disagrees with the oracle",
               setup);
        }
      }
    } catch (const Cancelled&) {
      ++rep.variants_run;
    } catch (const Error&) {
      ++rep.variants_run;
    } catch (const std::bad_alloc&) {
      if (resilient) {
        fail("std::bad_alloc escaped contract_resilient", setup);
      } else {
        ++rep.variants_run;
      }
    } catch (const std::exception& e) {
      fail(std::string("unexpected exception escaped: ") + e.what(),
           setup);
    }
  }

  // The cancellation contract: however the run ended, every ScopedCharge
  // must have been released (results went out of scope above).
  const std::size_t live =
      reg.live_bytes(Tier::kDram) + reg.live_bytes(Tier::kPmm);
  if (live != 0) {
    fail("budget not back to zero after run: " + std::to_string(live) +
             " live bytes",
         setup);
  }
}

void run_service_round(const FuzzCase& c, const ChaosOptions& opts,
                       DiffReport& rep) {
  Rng rng(c.seed ^ 0x5E4CEULL);
  const std::string tag = "chaos[service]";
  auto fail = [&](const std::string& what) {
    rep.findings.push_back({tag, what});
  };

  serve::ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.threads_per_request = opts.num_threads > 0 ? opts.num_threads : 1;
  cfg.queue_capacity = 4;
  cfg.shed_on_overload = rng.uniform(2) == 1;
  cfg.allow_degrade = rng.uniform(2) == 1;
  if (rng.uniform(2) == 1) {
    cfg.dram_budget_bytes = std::size_t{1} << (18 + rng.uniform(5));
  }

  {
    serve::ContractionService svc(cfg);
    try {
      svc.load("X", c.x);
      svc.load("Y", c.y);
    } catch (const Error&) {
      return;  // operands over the random budget: legal, nothing to do
    }

    struct Pending {
      std::future<serve::ServeReport> future;
      std::string stored;  ///< store_as name, empty otherwise
    };
    std::vector<Pending> pending;
    const std::uint64_t n = 4 + rng.uniform(5);
    for (std::uint64_t i = 0; i < n; ++i) {
      serve::ServeRequest req;
      req.x = rng.uniform(8) == 0 ? "nope" : "X";
      req.y = "Y";
      req.cx = c.cx;
      req.cy = c.cy;
      if (rng.uniform(3) != 0) {
        req.deadline_ms =
            0.01 * static_cast<double>(1 + rng.uniform(100));
      }
      std::string stored;
      if (rng.uniform(4) == 0) {
        stored = "Z" + std::to_string(i);
        req.store_as = stored;
      }
      pending.push_back({svc.submit(std::move(req)), std::move(stored)});
    }

    switch (rng.uniform(3)) {
      case 0:
        svc.shutdown_now();
        break;
      case 1:
        svc.shutdown();
        break;
      default:
        break;  // plain destruction drains gracefully
    }

    for (Pending& p : pending) {
      const serve::ServeReport r = p.future.get();  // must resolve
      if (r.cancelled && r.ok()) {
        fail("report cancelled but ok (empty error)");
      }
      if (r.deadline_exceeded && !r.cancelled) {
        fail("report deadline_exceeded without cancelled");
      }
      if (!p.stored.empty()) {
        // A request that did not complete must never have registered a
        // partial Z; one that did must have.
        if (r.ok() != svc.tensors().contains(p.stored)) {
          fail("store_as '" + p.stored + "' registration (" +
               (svc.tensors().contains(p.stored) ? "present" : "absent") +
               ") disagrees with report ok=" + (r.ok() ? "1" : "0"));
        }
      }
    }
    ++rep.variants_run;
    pending.clear();  // release report-held Z references

    svc.shutdown();  // idempotent; joins workers in the plain case
    for (const std::string& name : svc.tensors().names()) {
      svc.drop(name);
    }
    svc.clear_plan_cache();
    const std::size_t live = svc.live_bytes();
    if (live != 0) {
      fail("service live_bytes=" + std::to_string(live) +
           " after dropping tensors and plans");
    }
  }
}

}  // namespace

DiffReport run_chaos(const FuzzCase& c, const ChaosOptions& opts) {
  DiffReport rep;

  // Oracle runs with nothing armed.
  failpoint::disarm_all();
  SparseTensor ref;
  try {
    ref = contract_reference(c.x, c.y, c.cx, c.cy);
  } catch (const std::exception& e) {
    rep.findings.push_back(
        {"oracle", std::string("contract_reference threw: ") + e.what()});
    return rep;
  }

  for (int round = 0; round < opts.rounds; ++round) {
    run_engine_round(c, ref, opts, round, rep);
  }
  if (opts.service) {
    run_service_round(c, opts, rep);
  }
  return rep;
}

}  // namespace sparta::fuzz
