#include "fuzz/network.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/rng.hpp"
#include "plan/executor.hpp"
#include "plan/planner.hpp"
#include "serve/service.hpp"

namespace sparta::fuzz {

namespace {

/// Label names a, b, c, ... (the generator never needs more than ~12).
std::string label_name(std::size_t i) {
  return std::string(1, static_cast<char>('a' + i));
}

struct DrawnOperand {
  std::vector<std::size_t> labels;  ///< label ids, in mode order
};

/// Fills `t` with `want` distinct random cells valued with exact small
/// integers. Retry-bounded; tiny dense tensors may end up with fewer
/// non-zeros than asked, which is fine for the differential.
void fill_tensor(Rng& rng, SparseTensor& t, std::size_t want) {
  const auto& dims = t.dims();
  std::set<std::uint64_t> seen;
  std::vector<index_t> c(dims.size());
  std::size_t attempts = 0;
  while (t.nnz() < want && attempts < want * 20 + 64) {
    ++attempts;
    std::uint64_t key = 0;
    for (std::size_t m = 0; m < dims.size(); ++m) {
      c[m] = static_cast<index_t>(rng.uniform(dims[m]));
      key = key * dims[m] + c[m];
    }
    if (!seen.insert(key).second) continue;
    t.append(c, static_cast<value_t>(1 + rng.uniform(4)));
  }
  t.sort();
}

/// Sorted copy for order-independent comparison (engine outputs are
/// sorted already, but the final permute re-sorts only when non-empty;
/// normalizing here keeps the comparison assumption-free).
SparseTensor sorted_copy(const SparseTensor& t) {
  SparseTensor s(t);
  s.sort();
  return s;
}

/// Bitwise comparison; returns a description of the first difference or
/// an empty string when identical.
std::string diff_tensors(const SparseTensor& a, const SparseTensor& b) {
  if (a.dims() != b.dims()) return "result dims differ";
  if (a.nnz() != b.nnz()) {
    return "nnz " + std::to_string(a.nnz()) + " vs " +
           std::to_string(b.nnz());
  }
  for (std::size_t n = 0; n < a.nnz(); ++n) {
    for (int m = 0; m < a.order(); ++m) {
      if (a.index(n, m) != b.index(n, m)) {
        return "coordinate mismatch at non-zero " + std::to_string(n);
      }
    }
    if (a.value(n) != b.value(n)) {  // exact compare: integers
      return "value mismatch at non-zero " + std::to_string(n) + " (" +
             std::to_string(a.value(n)) + " vs " +
             std::to_string(b.value(n)) + ")";
    }
  }
  return {};
}

std::string order_string(const plan::NetworkPlan& p) {
  std::string s;
  for (const plan::PlanStepSpec& st : p.steps) {
    if (!s.empty()) s += "; ";
    s += st.x_name + "*" + st.y_name;
  }
  return s;
}

}  // namespace

std::string NetworkCase::label() const {
  std::ostringstream os;
  os << "seed=" << seed << " " << expr << " nnz={";
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    os << (i ? "," : "") << tensors[i].nnz();
  }
  os << "}";
  return os.str();
}

NetworkCase draw_network_case(std::uint64_t seed,
                              const NetworkLimits& limits) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xa076'1d64'78bd'642fULL);
  NetworkCase c;
  c.seed = seed;

  const std::size_t n =
      3 + rng.uniform(std::max<std::size_t>(1, limits.max_operands - 2));
  std::vector<DrawnOperand> ops(n);
  std::vector<index_t> label_dims;
  std::vector<int> label_users;  // how many operands use each label

  auto new_label = [&](index_t dim) {
    label_dims.push_back(dim);
    label_users.push_back(0);
    return label_dims.size() - 1;
  };
  auto attach = [&](std::size_t op, std::size_t lbl) {
    ops[op].labels.push_back(lbl);
    ++label_users[lbl];
  };

  // Connectivity spine: operand i shares a fresh label with a random
  // earlier operand, so the network is connected by construction.
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = rng.uniform(i);
    const std::size_t lbl =
        new_label(2 + static_cast<index_t>(rng.uniform(limits.max_dim - 1)));
    attach(j, lbl);
    attach(i, lbl);
  }
  // Extra contracted pairs (multi-mode contractions, cycles).
  const std::size_t extra = rng.uniform(n - 1);
  for (std::size_t e = 0; e < extra; ++e) {
    const std::size_t i = rng.uniform(n);
    std::size_t j = rng.uniform(n);
    if (i == j) continue;
    const std::size_t lbl =
        new_label(2 + static_cast<index_t>(rng.uniform(limits.max_dim - 1)));
    attach(i, lbl);
    attach(j, lbl);
  }
  // Free labels: each operand gets 0–2, so outputs have shape.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t frees = rng.uniform(3);
    for (std::size_t f = 0; f < frees; ++f) {
      attach(i, new_label(2 + static_cast<index_t>(
                                  rng.uniform(limits.max_dim - 1))));
    }
  }
  // The output must have at least one mode (no scalar results).
  if (std::count(label_users.begin(), label_users.end(), 1) == 0) {
    attach(rng.uniform(n),
           new_label(2 + static_cast<index_t>(
                             rng.uniform(limits.max_dim - 1))));
  }
  // Shuffle each operand's mode order: the planner's cx/cy and the
  // final permutation must survive arbitrary layouts.
  for (DrawnOperand& op : ops) {
    for (std::size_t i = op.labels.size(); i > 1; --i) {
      std::swap(op.labels[i - 1], op.labels[rng.uniform(i)]);
    }
  }

  // Spell the expression. Free labels (exactly one user) form the
  // output, in shuffled order.
  std::vector<std::size_t> out;
  for (std::size_t l = 0; l < label_users.size(); ++l) {
    if (label_users[l] == 1) out.push_back(l);
  }
  for (std::size_t i = out.size(); i > 1; --i) {
    std::swap(out[i - 1], out[rng.uniform(i)]);
  }
  std::ostringstream ex;
  ex << "Z[";
  for (std::size_t i = 0; i < out.size(); ++i) {
    ex << (i ? "," : "") << label_name(out[i]);
  }
  ex << "] =";
  for (std::size_t i = 0; i < n; ++i) {
    ex << (i ? " * T" : " T") << i << "[";
    for (std::size_t m = 0; m < ops[i].labels.size(); ++m) {
      ex << (m ? "," : "") << label_name(ops[i].labels[m]);
    }
    ex << "]";
  }
  c.expr = ex.str();
  c.net = plan::parse_network(c.expr);

  for (std::size_t i = 0; i < n; ++i) {
    std::vector<index_t> dims;
    dims.reserve(ops[i].labels.size());
    double cells = 1.0;
    for (const std::size_t l : ops[i].labels) {
      dims.push_back(label_dims[l]);
      cells *= static_cast<double>(label_dims[l]);
    }
    SparseTensor t(std::move(dims));
    std::size_t want =
        1 + rng.uniform(std::min<std::uint64_t>(
                limits.max_nnz, static_cast<std::uint64_t>(cells)));
    if (rng.uniform(16) == 0) want = 0;  // empty-operand corner
    fill_tensor(rng, t, want);
    c.tensors.push_back(std::move(t));
  }
  return c;
}

DiffReport run_network_differential(const NetworkCase& c) {
  DiffReport rep;
  serve::ServeConfig cfg;
  cfg.num_workers = 1;
  serve::ContractionService svc(cfg);
  std::vector<plan::BoundInput> inputs;
  for (std::size_t i = 0; i < c.net.inputs.size(); ++i) {
    svc.load(c.net.inputs[i].name, SparseTensor(c.tensors[i]));
    plan::BoundInput b;
    b.name = c.net.inputs[i].name;
    b.dims = c.tensors[i].dims();
    b.nnz = c.tensors[i].nnz();
    inputs.push_back(std::move(b));
  }
  plan::PlanExecutor exec(svc);

  // Reference: the planner's own searched order.
  const plan::PlanExecution searched = exec.run(c.net);
  ++rep.variants_run;
  if (!searched.ok() || searched.z == nullptr) {
    rep.findings.push_back(
        {"planner", "searched order failed: " + searched.error});
    return rep;
  }
  const SparseTensor ref = sorted_copy(*searched.z);

  std::vector<plan::NetworkPlan> all =
      plan::enumerate_plans(c.net, inputs);
  if (all.empty()) {
    rep.findings.push_back(
        {"planner", "enumerate_plans returned no legal order"});
    return rep;
  }
  double best_est = all.front().est_total_seconds;
  for (const plan::NetworkPlan& p : all) {
    best_est = std::min(best_est, p.est_total_seconds);
  }
  // The search must agree with enumeration about the optimum: both
  // walk the same cost model, so a gap means the DP recurrence and the
  // tree enumeration disagree about some step's cost or legality.
  if (searched.plan != nullptr &&
      searched.plan->est_total_seconds > best_est * 1.000001) {
    rep.findings.push_back(
        {"planner",
         "searched order estimate " +
             std::to_string(searched.plan->est_total_seconds) +
             "s exceeds best enumerated " + std::to_string(best_est) +
             "s"});
  }

  for (std::size_t o = 0; o < all.size(); ++o) {
    auto p = std::make_shared<plan::NetworkPlan>(all[o]);
    const plan::PlanExecution ex = exec.run_plan(c.net, p);
    ++rep.variants_run;
    if (!ex.ok() || ex.z == nullptr) {
      rep.findings.push_back(
          {"order " + std::to_string(o) + " (" + order_string(*p) + ")",
           "execution failed: " + ex.error});
      continue;
    }
    const std::string diff = diff_tensors(ref, sorted_copy(*ex.z));
    if (!diff.empty()) {
      rep.findings.push_back(
          {"order " + std::to_string(o) + " (" + order_string(*p) + ")",
           diff + " vs searched order"});
    }
  }
  return rep;
}

std::string dump_network_case(const NetworkCase& c) {
  std::ostringstream os;
  os << "  expr: " << c.expr << "\n";
  for (std::size_t i = 0; i < c.tensors.size(); ++i) {
    const SparseTensor& t = c.tensors[i];
    os << "  " << c.net.inputs[i].name << " dims=";
    for (int m = 0; m < t.order(); ++m) {
      os << (m ? "x" : "") << t.dim(m);
    }
    os << " nnz=" << t.nnz() << "\n";
    for (std::size_t n = 0; n < t.nnz(); ++n) {
      os << "    (";
      for (int m = 0; m < t.order(); ++m) {
        os << (m ? "," : "") << t.index(n, m);
      }
      os << ") = " << t.value(n) << "\n";
    }
  }
  return os.str();
}

NetworkCase minimize_network(
    const NetworkCase& c,
    const std::function<bool(const NetworkCase&)>& still_fails,
    int* predicate_calls) {
  NetworkCase best = c;
  int calls = 0;
  const int budget = 250;

  // Drop a contiguous [lo, lo+len) run of non-zeros from tensor ti.
  const auto without = [](const NetworkCase& base, std::size_t ti,
                          std::size_t lo, std::size_t len) {
    NetworkCase cand = base;
    const SparseTensor& src = base.tensors[ti];
    SparseTensor t(src.dims());
    std::vector<index_t> coords(static_cast<std::size_t>(src.order()));
    for (std::size_t n = 0; n < src.nnz(); ++n) {
      if (n >= lo && n < lo + len) continue;
      src.coords(n, coords);
      t.append(coords, src.value(n));
    }
    cand.tensors[ti] = std::move(t);
    return cand;
  };

  bool shrunk = true;
  while (shrunk && calls < budget) {
    shrunk = false;
    for (std::size_t ti = 0; ti < best.tensors.size(); ++ti) {
      for (std::size_t len = std::max<std::size_t>(
               1, best.tensors[ti].nnz() / 2);
           len >= 1 && calls < budget; len /= 2) {
        for (std::size_t lo = 0; lo + len <= best.tensors[ti].nnz() &&
                                 calls < budget;) {
          const NetworkCase cand = without(best, ti, lo, len);
          ++calls;
          if (still_fails(cand)) {
            best = cand;
            shrunk = true;
          } else {
            lo += len;
          }
        }
        if (len == 1) break;
      }
    }
  }
  if (predicate_calls != nullptr) *predicate_calls = calls;
  return best;
}

}  // namespace sparta::fuzz
