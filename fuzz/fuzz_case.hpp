// Seeded random contraction-case generator for the differential fuzzer.
//
// Every case is a pure function of its 64-bit seed: the same seed always
// yields the same operands, mode lists and corner flags, byte for byte,
// so any failure reported by `fuzz_sptc --seeds N` can be replayed with
// `fuzz_sptc --seed X`. Cases deliberately cover the corners where the
// variants have historically diverged in SpTC-like systems: operands of
// order 1–5, contract-mode sets that leave one operand with no free
// modes, skewed and hypersparse index distributions, empty operands,
// duplicate input coordinates, and plain 2-D matrix products (which
// additionally exercise the SpGEMM lowering).
#pragma once

#include <cstdint>
#include <string>

#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta::fuzz {

/// Knobs bounding the drawn cases; defaults keep the O(nnz_X · nnz_Y)
/// oracle fast enough for hundreds of seeds per second.
struct CaseLimits {
  int max_order = 5;
  std::size_t max_nnz = 200;         ///< per operand, most regimes
  std::size_t max_matrix_nnz = 600;  ///< 2-D regime (SpGEMM stress)
};

/// Index-distribution regime a case was drawn from (recorded for the
/// human-readable label; the draw itself depends only on the seed).
enum class Regime : int {
  kTiny = 0,        ///< dims 2–6, high density, exact collisions likely
  kSmall = 1,       ///< dims 2–12, moderate density
  kSkewed = 2,      ///< dims 8–48 with power-law fibers
  kHypersparse = 3, ///< dims up to 50k, nnz ≪ cells
  kMatrix = 4,      ///< both operands 2-D, one contract mode
};

[[nodiscard]] std::string_view regime_name(Regime r);

struct FuzzCase {
  std::uint64_t seed = 0;
  SparseTensor x;
  SparseTensor y;
  Modes cx;
  Modes cy;
  Regime regime = Regime::kSmall;
  /// Duplicate coordinates were injected into an operand; outputs may
  /// then legally contain duplicates too and are compared coalesced.
  bool has_duplicates = false;
  [[nodiscard]] std::string label() const;
};

/// Draws the case for `seed`. Deterministic across platforms (xoshiro256**
/// + Lemire reduction, no floating-point-order dependence).
[[nodiscard]] FuzzCase draw_case(std::uint64_t seed,
                                 const CaseLimits& limits = {});

/// Full textual dump of a case (dims, mode lists, every non-zero) for
/// bug reports; deterministic so two dumps of one seed are identical.
[[nodiscard]] std::string dump_case(const FuzzCase& c);

}  // namespace sparta::fuzz
