// fuzz_sptc — deterministic differential fuzzer for the contraction
// variants.
//
//   fuzz_sptc --seeds 500            # run seeds 0..499
//   fuzz_sptc --start 1000 --seeds 500
//   fuzz_sptc --seed 1234            # replay one case (byte-for-byte)
//   fuzz_sptc --seed 1234 --dump     # also print every non-zero
//
// Every case is a pure function of its seed, so a failure found on any
// machine replays identically anywhere. On failure the harness prints
// the findings, minimizes the case (unless --no-minimize), and dumps the
// minimized operands. Exit status: 0 = all clean, 1 = mismatches found,
// 2 = bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "fuzz/chaos.hpp"
#include "fuzz/differential.hpp"
#include "fuzz/fuzz_case.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/network.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seeds N] [--start S] [--seed X] [--tolerance T]\n"
      "          [--threads T] [--max-nnz N] [--no-minimize] [--no-dense]\n"
      "          [--inject-alloc-failures] [--schedules K]\n"
      "          [--isa-diff] [--chaos] [--network] [--repro-dir DIR]\n"
      "          [--dump] [--quiet]\n"
      "  --seeds N      number of consecutive seeds to run (default 100)\n"
      "  --start S      first seed (default 0)\n"
      "  --seed X       run exactly one seed (replay mode)\n"
      "  --tolerance T  comparison tolerance (default 1e-9)\n"
      "  --threads T    thread count for the variants (default: ambient)\n"
      "  --max-nnz N    per-operand non-zero cap (default 200)\n"
      "  --no-minimize  skip failing-case minimization\n"
      "  --no-dense     skip the dense oracle\n"
      "  --inject-alloc-failures\n"
      "                 fault-injection mode: drive contract_resilient()\n"
      "                 and contract() through random failpoint schedules\n"
      "                 derived from each case seed, instead of the\n"
      "                 differential sweep\n"
      "  --schedules K  failpoint schedules per case (default 4)\n"
      "  --isa-diff     differential ISA mode: replay each case under\n"
      "                 SPARTA_SIMD=scalar and the native tier across\n"
      "                 every (algorithm x table) cell, demanding\n"
      "                 bitwise-identical outputs\n"
      "  --chaos        chaos mode: random cancel points (countdown,\n"
      "                 site, deadline) layered on failpoints and budget\n"
      "                 pressure through contract(), contract_resilient()\n"
      "                 and the contraction service; asserts budget\n"
      "                 returns to zero and registries stay consistent\n"
      "  --network      plan-compiler mode: random small tensor networks\n"
      "                 with exact-integer values; every legal\n"
      "                 contraction order (and the planner's searched\n"
      "                 one) must produce bitwise identical results\n"
      "  --repro-dir DIR\n"
      "                 write a repro file (operand dump + findings)\n"
      "                 per failing seed into DIR (created if absent)\n"
      "  --dump         dump every case's operands (replay mode aid)\n"
      "  --quiet        only print failures and the final summary\n",
      argv0);
}

struct Cli {
  std::uint64_t start = 0;
  std::uint64_t seeds = 100;
  bool single = false;
  double tolerance = 1e-9;
  int threads = 0;
  std::size_t max_nnz = 200;
  bool minimize = true;
  bool dense = true;
  bool dump = false;
  bool quiet = false;
  bool inject_faults = false;
  int schedules = 4;
  bool isa_diff = false;
  bool chaos = false;
  bool network = false;
  std::string repro_dir;
};

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end && *end == '\0' && end != s;
}

int parse_cli(int argc, char** argv, Cli& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--seeds") {
      const char* v = next();
      if (!v || !parse_u64(v, cli.seeds)) return 2;
    } else if (a == "--start") {
      const char* v = next();
      if (!v || !parse_u64(v, cli.start)) return 2;
    } else if (a == "--seed") {
      const char* v = next();
      if (!v || !parse_u64(v, cli.start)) return 2;
      cli.seeds = 1;
      cli.single = true;
    } else if (a == "--tolerance") {
      const char* v = next();
      if (!v) return 2;
      cli.tolerance = std::atof(v);
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return 2;
      cli.threads = std::atoi(v);
    } else if (a == "--max-nnz") {
      const char* v = next();
      std::uint64_t n = 0;
      if (!v || !parse_u64(v, n) || n == 0) return 2;
      cli.max_nnz = static_cast<std::size_t>(n);
    } else if (a == "--inject-alloc-failures") {
      cli.inject_faults = true;
    } else if (a == "--isa-diff") {
      cli.isa_diff = true;
    } else if (a == "--chaos") {
      cli.chaos = true;
    } else if (a == "--network") {
      cli.network = true;
    } else if (a == "--repro-dir") {
      const char* v = next();
      if (!v || *v == '\0') return 2;
      cli.repro_dir = v;
    } else if (a == "--schedules") {
      const char* v = next();
      std::uint64_t n = 0;
      if (!v || !parse_u64(v, n) || n == 0) return 2;
      cli.schedules = static_cast<int>(n);
    } else if (a == "--no-minimize") {
      cli.minimize = false;
    } else if (a == "--no-dense") {
      cli.dense = false;
    } else if (a == "--dump") {
      cli.dump = true;
    } else if (a == "--quiet") {
      cli.quiet = true;
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 1;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      return 2;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sparta::fuzz;

  Cli cli;
  switch (parse_cli(argc, argv, cli)) {
    case 0:
      break;
    case 1:
      return 0;  // --help
    default:
      usage(argv[0]);
      return 2;
  }
  if (static_cast<int>(cli.inject_faults) + static_cast<int>(cli.isa_diff) +
          static_cast<int>(cli.chaos) + static_cast<int>(cli.network) >
      1) {
    std::fprintf(stderr,
                 "--inject-alloc-failures, --isa-diff, --chaos and "
                 "--network are separate modes; pick one\n");
    return 2;
  }

  if (cli.network) {
    // The plan-compiler differential has its own case type (a whole
    // network, not an (x, y) pair), so it runs as a separate loop.
    std::uint64_t failed = 0;
    std::uint64_t orders_run = 0;
    for (std::uint64_t s = cli.start; s < cli.start + cli.seeds; ++s) {
      NetworkCase c;
      try {
        c = draw_network_case(s);
      } catch (const std::exception& e) {
        ++failed;
        std::printf("FAIL seed=%llu: network generation threw: %s\n",
                    static_cast<unsigned long long>(s), e.what());
        continue;
      }
      if (!cli.quiet && (cli.single || cli.seeds <= 20)) {
        std::printf("[%llu] %s\n", static_cast<unsigned long long>(s),
                    c.label().c_str());
      }
      if (cli.dump) std::fputs(dump_network_case(c).c_str(), stdout);
      const DiffReport rep = run_network_differential(c);
      orders_run += static_cast<std::uint64_t>(rep.variants_run);
      if (rep.ok()) continue;

      ++failed;
      std::printf("FAIL %s\n", c.label().c_str());
      for (const Finding& f : rep.findings) {
        std::printf("  [%s] %s\n", f.variant.c_str(), f.what.c_str());
      }
      std::printf("  replay: fuzz_sptc --seed %llu --network\n",
                  static_cast<unsigned long long>(s));
      if (!cli.repro_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cli.repro_dir, ec);
        const std::string path =
            cli.repro_dir + "/network-seed-" + std::to_string(s) + ".txt";
        std::ofstream out(path);
        if (out) {
          out << "seed: " << s << "\n" << c.label() << "\n";
          for (const Finding& f : rep.findings) {
            out << "[" << f.variant << "] " << f.what << "\n";
          }
          out << "replay: fuzz_sptc --seed " << s << " --network\n\n"
              << dump_network_case(c);
          std::printf("  repro written: %s\n", path.c_str());
        }
      }
      if (cli.minimize) {
        int calls = 0;
        const NetworkCase tiny = minimize_network(
            c,
            [](const NetworkCase& cand) {
              return !run_network_differential(cand).ok();
            },
            &calls);
        std::size_t before = 0;
        std::size_t after = 0;
        for (const auto& t : c.tensors) before += t.nnz();
        for (const auto& t : tiny.tensors) after += t.nnz();
        std::printf("  minimized (%d predicate calls): total nnz "
                    "%zu -> %zu\n",
                    calls, before, after);
        std::fputs(dump_network_case(tiny).c_str(), stdout);
        const DiffReport tiny_rep = run_network_differential(tiny);
        for (const Finding& f : tiny_rep.findings) {
          std::printf("  [%s] %s\n", f.variant.c_str(), f.what.c_str());
        }
      }
    }
    std::printf(
        "fuzz_sptc --network: %llu seed(s) starting at %llu, %llu order "
        "executions, %llu failing case(s)\n",
        static_cast<unsigned long long>(cli.seeds),
        static_cast<unsigned long long>(cli.start),
        static_cast<unsigned long long>(orders_run),
        static_cast<unsigned long long>(failed));
    return failed == 0 ? 0 : 1;
  }

  CaseLimits limits;
  limits.max_nnz = cli.max_nnz;
  DiffOptions diff;
  diff.tolerance = cli.tolerance;
  diff.num_threads = cli.threads;
  diff.check_dense = cli.dense;

  std::uint64_t failed_cases = 0;
  std::uint64_t total_variants = 0;
  for (std::uint64_t s = cli.start; s < cli.start + cli.seeds; ++s) {
    FuzzCase c;
    try {
      c = draw_case(s, limits);
    } catch (const std::exception& e) {
      ++failed_cases;
      std::printf("FAIL seed=%llu: case generation threw: %s\n",
                  static_cast<unsigned long long>(s), e.what());
      continue;
    }
    if (!cli.quiet && (cli.single || cli.seeds <= 20)) {
      std::printf("[%llu] %s\n", static_cast<unsigned long long>(s),
                  c.label().c_str());
    }
    if (cli.dump) {
      std::fputs(dump_case(c).c_str(), stdout);
    }
    DiffReport rep;
    if (cli.inject_faults) {
      FaultOptions fo;
      fo.tolerance = cli.tolerance;
      fo.num_threads = cli.threads;
      fo.schedules = cli.schedules;
      rep = run_fault_injection(c, fo);
    } else if (cli.isa_diff) {
      rep = run_isa_differential(c);
    } else if (cli.chaos) {
      ChaosOptions co;
      co.tolerance = cli.tolerance;
      co.num_threads = cli.threads;
      rep = run_chaos(c, co);
    } else {
      rep = run_differential(c, diff);
    }
    total_variants += static_cast<std::uint64_t>(rep.variants_run);
    if (rep.ok()) continue;

    ++failed_cases;
    std::printf("FAIL %s\n", c.label().c_str());
    for (const Finding& f : rep.findings) {
      std::printf("  [%s] %s\n", f.variant.c_str(), f.what.c_str());
    }
    std::printf("  replay: fuzz_sptc --seed %llu%s%s%s%s\n",
                static_cast<unsigned long long>(s),
                cli.dense ? "" : " --no-dense",
                cli.inject_faults ? " --inject-alloc-failures" : "",
                cli.isa_diff ? " --isa-diff" : "",
                cli.chaos ? " --chaos" : "");

    // Divergence repro artifact: everything needed to replay this seed
    // offline (CI uploads the directory on failure).
    if (!cli.repro_dir.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(cli.repro_dir, ec);
      const std::string path = cli.repro_dir + "/seed-" + std::to_string(s) +
                               ".txt";
      std::ofstream out(path);
      if (out) {
        out << "seed: " << s << "\n" << c.label() << "\n";
        for (const Finding& f : rep.findings) {
          out << "[" << f.variant << "] " << f.what << "\n";
        }
        out << "replay: fuzz_sptc --seed " << s
            << (cli.inject_faults ? " --inject-alloc-failures" : "")
            << (cli.isa_diff ? " --isa-diff" : "")
            << (cli.chaos ? " --chaos" : "") << "\n\n"
            << dump_case(c);
        std::printf("  repro written: %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "cannot write repro file '%s'\n", path.c_str());
      }
    }

    // Minimization flips differential-sweep findings only; a fault-mode
    // or chaos schedule depends on the exact hit sequence, which
    // shrinking the operands would change. ISA mode minimizes against
    // its own predicate so the shrunken case still diverges across
    // tiers.
    if (cli.minimize && !cli.inject_faults && !cli.chaos) {
      MinimizeStats ms;
      const FuzzCase tiny = minimize(
          c, [&](const FuzzCase& cand) {
            return cli.isa_diff ? !run_isa_differential(cand).ok()
                                : !run_differential(cand, diff).ok();
          },
          &ms);
      std::printf(
          "  minimized (%d predicate calls, %d rounds): x nnz %zu -> %zu, "
          "y nnz %zu -> %zu\n",
          ms.predicate_calls, ms.rounds, c.x.nnz(), tiny.x.nnz(), c.y.nnz(),
          tiny.y.nnz());
      std::fputs(dump_case(tiny).c_str(), stdout);
      const DiffReport tiny_rep = cli.isa_diff ? run_isa_differential(tiny)
                                               : run_differential(tiny, diff);
      for (const Finding& f : tiny_rep.findings) {
        std::printf("  [%s] %s\n", f.variant.c_str(), f.what.c_str());
      }
    }
  }

  std::printf(
      "fuzz_sptc: %llu seed(s) starting at %llu, %llu variant runs, "
      "%llu failing case(s)\n",
      static_cast<unsigned long long>(cli.seeds),
      static_cast<unsigned long long>(cli.start),
      static_cast<unsigned long long>(total_variants),
      static_cast<unsigned long long>(failed_cases));
  return failed_cases == 0 ? 0 : 1;
}
