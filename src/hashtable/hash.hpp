// Shared hashing utilities for the LN-keyed tables.
#pragma once

#include <cstdint>

#include "tensor/types.hpp"

namespace sparta {

/// Fibonacci (multiplicative) hashing of an LN key into [0, 2^bits).
/// Fast and well-distributed for the dense-ish linearized keys the LN
/// representation produces.
[[nodiscard]] inline std::uint64_t hash_ln(lnkey_t key, int bits) {
  return (key * 0x9e3779b97f4a7c15ULL) >> (64 - bits);
}

/// Smallest power-of-two exponent b with 2^b >= n (minimum 4).
[[nodiscard]] inline int bucket_bits_for(std::size_t n) {
  int bits = 4;
  while ((std::size_t{1} << bits) < n && bits < 31) ++bits;
  return bits;
}

}  // namespace sparta
