// Hash-table-represented sparse tensor (HtY, paper §3.3).
//
// Maps an LN contract key to the dynamic array of (LN free key, value)
// pairs of all Y non-zeros sharing those contract indices. Separate
// chaining with a fixed power-of-two bucket count; items with the same
// key are stored contiguously for spatial locality (the paper's "dynamic
// arrays to store the non-zeros having the same key").
//
// Parallel construction uses striped bucket locks (§3.5).
#pragma once

#include <cstddef>
#include <mutex>
#include <span>
#include <vector>

#include "hashtable/hash.hpp"
#include "obs/metrics.hpp"
#include "tensor/types.hpp"

namespace sparta {

/// One Y non-zero as seen by the accumulation stage: its free-mode LN key
/// and value.
struct FreeItem {
  lnkey_t free_key;
  value_t val;
};

class GroupedHashMap {
 public:
  /// `expected_keys` sizes the bucket array (load factor ~1).
  explicit GroupedHashMap(std::size_t expected_keys) {
    bits_ = bucket_bits_for(expected_keys);
    buckets_.resize(std::size_t{1} << bits_);
  }

  /// Appends `item` to the group for `key`, creating the group if absent.
  /// NOT thread-safe; see insert_locked.
  void insert(lnkey_t key, FreeItem item) {
    group_for(key).items.push_back(item);
  }

  /// Thread-safe insert using striped locks; multiple threads may build
  /// the table concurrently.
  void insert_locked(lnkey_t key, FreeItem item) {
    const std::uint64_t b = hash_ln(key, bits_);
    std::lock_guard<std::mutex> g(locks_[b & kLockMask]);
    group_for_bucket(key, b).items.push_back(item);
  }

  /// Items for `key`, or an empty span when absent. O(chain length) key
  /// probes, each a single integer compare thanks to LN keys.
  [[nodiscard]] std::span<const FreeItem> find(lnkey_t key) const {
    const auto& chain = buckets_[hash_ln(key, bits_)];
    std::size_t steps = 0;
    for (const Group& g : chain) {
      ++steps;
      if (g.key == key) {
        count_probe(steps);
        return g.items;
      }
    }
    count_probe(steps);
    return {};
  }

  /// Number of distinct keys.
  [[nodiscard]] std::size_t num_keys() const {
    std::size_t n = 0;
    for (const auto& chain : buckets_) n += chain.size();
    return n;
  }

  /// Total items across all groups.
  [[nodiscard]] std::size_t num_items() const {
    std::size_t n = 0;
    for (const auto& chain : buckets_) {
      for (const Group& g : chain) n += g.items.size();
    }
    return n;
  }

  /// Size of the largest group — the paper's nnz_Fmax^Y used by the HtA
  /// placement bound (Eq. 6).
  [[nodiscard]] std::size_t max_group_size() const {
    std::size_t n = 0;
    for (const auto& chain : buckets_) {
      for (const Group& g : chain) n = std::max(n, g.items.size());
    }
    return n;
  }

  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }

  /// Measured heap footprint (metadata + items), the quantity Eq. 5
  /// estimates for DRAM placement.
  [[nodiscard]] std::size_t footprint_bytes() const {
    std::size_t bytes = buckets_.capacity() * sizeof(buckets_[0]);
    for (const auto& chain : buckets_) {
      bytes += chain.capacity() * sizeof(Group);
      for (const Group& g : chain) {
        bytes += g.items.capacity() * sizeof(FreeItem);
      }
    }
    return bytes;
  }

  /// Visits every (key, items) group.
  template <typename F>
  void for_each_group(F&& f) const {
    for (const auto& chain : buckets_) {
      for (const Group& g : chain) {
        f(g.key, std::span<const FreeItem>(g.items));
      }
    }
  }

 private:
  struct Group {
    lnkey_t key;
    std::vector<FreeItem> items;
  };

  Group& group_for(lnkey_t key) {
    return group_for_bucket(key, hash_ln(key, bits_));
  }

  Group& group_for_bucket(lnkey_t key, std::uint64_t b) {
    auto& chain = buckets_[b];
    std::size_t steps = 0;
    for (Group& g : chain) {
      ++steps;
      if (g.key == key) {
        count_insert(steps);
        return g;
      }
    }
    count_insert(steps);
    chain.push_back(Group{key, {}});
    return chain.back();
  }

  // HtY probe/collision telemetry (docs/OBSERVABILITY.md). Chain steps
  // beyond the first are collisions in the separate-chaining sense.
  static void count_probe(std::size_t steps) {
    SPARTA_COUNTER_ADD("hty.probes", 1);
    SPARTA_COUNTER_ADD("hty.probe_steps", steps);
    SPARTA_HISTOGRAM_RECORD("hty.probe_len", steps);
  }
  static void count_insert(std::size_t chain_steps) {
    SPARTA_COUNTER_ADD("hty.inserts", 1);
    SPARTA_COUNTER_ADD("hty.insert_chain_steps", chain_steps);
  }

  static constexpr std::size_t kNumLocks = 256;
  static constexpr std::size_t kLockMask = kNumLocks - 1;

  int bits_ = 4;
  std::vector<std::vector<Group>> buckets_;
  std::mutex locks_[kNumLocks];
};

}  // namespace sparta
