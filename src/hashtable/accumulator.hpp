// Hash-table-based sparse accumulator (HtA, paper §3.4).
//
// Thread-private: each worker owns one and accumulates the partial
// results of its X sub-tensor into it — no locking. Keys are the LN-
// compressed free indices of Y, pre-converted at HtY build time so no
// index-to-key conversion happens inside the hot loop.
#pragma once

#include <cstddef>
#include <vector>

#include "hashtable/hash.hpp"
#include "obs/metrics.hpp"
#include "tensor/types.hpp"

namespace sparta {

class HashAccumulator {
 public:
  explicit HashAccumulator(std::size_t expected_keys = 64) {
    bits_ = bucket_bits_for(expected_keys);
    buckets_.resize(std::size_t{1} << bits_);
  }

  /// Adds `v` to the entry for `key`, inserting it when absent.
  void accumulate(lnkey_t key, value_t v) {
    auto& chain = buckets_[hash_ln(key, bits_)];
    std::size_t steps = 0;
    for (Entry& e : chain) {
      ++steps;
      if (e.key == key) {
        count_probe(steps);
        e.val += v;
        return;
      }
    }
    count_probe(steps);
    chain.push_back(Entry{key, v});
    ++size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }

  /// Heap footprint; the quantity bounded by Eq. 6 for DRAM placement.
  [[nodiscard]] std::size_t footprint_bytes() const {
    std::size_t bytes = buckets_.capacity() * sizeof(buckets_[0]);
    for (const auto& chain : buckets_) {
      bytes += chain.capacity() * sizeof(Entry);
    }
    return bytes;
  }

  /// Visits each (key, value) pair. Order is unspecified (the output
  /// sorting stage handles ordering).
  template <typename F>
  void drain(F&& f) const {
    for (const auto& chain : buckets_) {
      for (const Entry& e : chain) f(e.key, e.val);
    }
  }

  /// Empties the accumulator but keeps the bucket array, so one HtA can
  /// be reused across the sub-tensors a thread processes.
  void clear() {
    for (auto& chain : buckets_) chain.clear();
    size_ = 0;
  }

 private:
  // HtA probe-length telemetry; one branch when metrics are off.
  static void count_probe(std::size_t steps) {
    SPARTA_COUNTER_ADD("hta.accumulates", 1);
    SPARTA_COUNTER_ADD("hta.probe_steps", steps);
    SPARTA_HISTOGRAM_RECORD("hta.probe_len", steps);
  }

  struct Entry {
    lnkey_t key;
    value_t val;
  };

  int bits_ = 4;
  std::vector<std::vector<Entry>> buckets_;
  std::size_t size_ = 0;
};

}  // namespace sparta
