// Sparse accumulator (SPA) — the SpGEMM-style baseline (paper §3.2).
//
// A dynamic array of (free-index tuple, value) searched linearly on every
// accumulate: O(|SPA|) per update with multi-index tuple comparison.
// Deliberately faithful to Algorithm 1; HashAccumulator is the optimized
// replacement benchmarked against it.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "tensor/types.hpp"

namespace sparta {

class SpaAccumulator {
 public:
  /// `tuple_arity` = number of free Y modes stored per entry.
  explicit SpaAccumulator(std::size_t tuple_arity)
      : arity_(tuple_arity) {}

  /// Adds `v` to the entry whose tuple equals `key`, appending when
  /// absent. Linear search with element-wise tuple comparison.
  void accumulate(std::span<const index_t> key, value_t v) {
    const std::size_t n = vals_.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (tuple_equals(i, key)) {
        count_scan(i + 1);
        vals_[i] += v;
        return;
      }
    }
    count_scan(n);
    keys_.insert(keys_.end(), key.begin(), key.end());
    vals_.push_back(v);
  }

  [[nodiscard]] std::size_t size() const { return vals_.size(); }
  [[nodiscard]] std::size_t arity() const { return arity_; }

  [[nodiscard]] std::span<const index_t> key(std::size_t i) const {
    return {keys_.data() + i * arity_, arity_};
  }
  [[nodiscard]] value_t value(std::size_t i) const { return vals_[i]; }

  [[nodiscard]] std::size_t footprint_bytes() const {
    return keys_.capacity() * sizeof(index_t) +
           vals_.capacity() * sizeof(value_t);
  }

  void clear() {
    SPARTA_COUNTER_ADD("spa.resets", 1);
    keys_.clear();
    vals_.clear();
  }

 private:
  // SPA linear-scan telemetry: accumulate count and total tuple
  // comparisons, exposing the O(|SPA|) cost Algorithm 1 pays per update.
  static void count_scan(std::size_t comparisons) {
    SPARTA_COUNTER_ADD("spa.accumulates", 1);
    SPARTA_COUNTER_ADD("spa.scan_steps", comparisons);
    SPARTA_HISTOGRAM_RECORD("spa.scan_len", comparisons);
  }

  bool tuple_equals(std::size_t i, std::span<const index_t> key) const {
    const index_t* stored = keys_.data() + i * arity_;
    for (std::size_t m = 0; m < arity_; ++m) {
      if (stored[m] != key[m]) return false;
    }
    return true;
  }

  std::size_t arity_;
  std::vector<index_t> keys_;  // arity_ entries per element, flattened
  std::vector<value_t> vals_;
};

}  // namespace sparta
