// Open-addressing (linear-probing) sparse accumulator — the "more
// advanced hash algorithms" direction the paper's §6 points at for its
// chained tables. One flat array, no per-entry allocation, cache-line
// friendly probes; grows at 70% load.
//
// Drop-in alternative to HashAccumulator (same accumulate/drain/clear
// surface); ContractOptions::use_linear_probe_hta switches Sparta's
// accumulation onto it, and bench_ablation_accumulator compares.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "hashtable/hash.hpp"
#include "obs/metrics.hpp"
#include "tensor/types.hpp"

namespace sparta {

class LinearProbeAccumulator {
 public:
  explicit LinearProbeAccumulator(std::size_t expected_keys = 64) {
    bits_ = bucket_bits_for(expected_keys * 2);  // headroom for 0.5 load
    slots_.assign(std::size_t{1} << bits_, Slot{});
  }

  void accumulate(lnkey_t key, value_t v) {
    SPARTA_ASSERT(key != kEmpty);
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_ln(key, bits_);
    std::size_t steps = 1;
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) {
        count_probe(steps);
        s.val += v;
        return;
      }
      if (s.key == kEmpty) {
        count_probe(steps);
        s.key = key;
        s.val = v;
        ++size_;
        if (size_ * 10 > slots_.size() * 7) grow();
        return;
      }
      i = (i + 1) & mask;
      ++steps;
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t num_buckets() const { return slots_.size(); }

  [[nodiscard]] std::size_t footprint_bytes() const {
    return slots_.capacity() * sizeof(Slot);
  }

  template <typename F>
  void drain(F&& f) const {
    for (const Slot& s : slots_) {
      if (s.key != kEmpty) f(s.key, s.val);
    }
  }

  /// Empties the table, keeping its capacity for reuse.
  void clear() {
    for (Slot& s : slots_) s.key = kEmpty;
    size_ = 0;
  }

 private:
  // The LN key space never reaches 2^64 - 1 (LinearIndexer rejects
  // overflow), so the max value is a safe empty sentinel.
  static constexpr lnkey_t kEmpty = std::numeric_limits<lnkey_t>::max();

  struct Slot {
    lnkey_t key = kEmpty;
    value_t val = 0;
  };

  // Same counter names as HashAccumulator: both are "the HtA", and the
  // ablation bench compares their probe behaviour under one metric.
  static void count_probe(std::size_t steps) {
    SPARTA_COUNTER_ADD("hta.accumulates", 1);
    SPARTA_COUNTER_ADD("hta.probe_steps", steps);
    SPARTA_HISTOGRAM_RECORD("hta.probe_len", steps);
  }

  void grow() {
    SPARTA_COUNTER_ADD("hta.grows", 1);
    std::vector<Slot> old;
    old.swap(slots_);
    ++bits_;
    slots_.assign(std::size_t{1} << bits_, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.key == kEmpty) continue;
      std::size_t i = hash_ln(s.key, bits_);
      while (slots_[i].key != kEmpty) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  int bits_ = 4;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace sparta
