// Sparse tensor contraction — the library's primary entry point.
//
//   Z = X ×_{cx}^{cy} Y
//
// contracts tensor X with tensor Y along the mode lists cx (modes of X)
// and cy (modes of Y), which must have equal arity and matching sizes.
// Z's modes are the free modes of X in ascending original order followed
// by the free modes of Y in ascending original order.
//
// The algorithm follows the paper's five-stage pipeline (§3.1):
//   ① input processing  — permute + sort X; sort Y (COO variants) or
//                          convert Y to the HtY hash table (Sparta)
//   ② index search      — locate the Y sub-tensor matching each X
//                          non-zero's contract indices
//   ③ accumulation      — multiply and accumulate into SPA or HtA
//   ④ writeback         — drain accumulators into thread-local Z_local,
//                          then gather into Z
//   ⑤ output sorting    — sort Z lexicographically
// All stages are OpenMP-parallel (§3.5).
#pragma once

#include "common/timer.hpp"
#include "contraction/options.hpp"
#include "memsim/access_profile.hpp"
#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta {

struct ContractResult {
  SparseTensor z;
  StageTimes stage_times;
  ContractStats stats;
  AccessProfile profile;  ///< filled when opts.collect_access_profile
};

/// Contracts X with Y. Throws sparta::Error on invalid mode lists,
/// mismatched contract-mode sizes, or index spaces exceeding the 64-bit
/// LN representation.
[[nodiscard]] ContractResult contract(const SparseTensor& x,
                                      const SparseTensor& y, const Modes& cx,
                                      const Modes& cy,
                                      const ContractOptions& opts = {});

/// Convenience wrapper returning just the output tensor.
[[nodiscard]] inline SparseTensor contract_tensor(
    const SparseTensor& x, const SparseTensor& y, const Modes& cx,
    const Modes& cy, const ContractOptions& opts = {}) {
  return contract(x, y, cx, cy, opts).z;
}

/// Validates a contraction's mode lists against the operand shapes and
/// returns the free modes of each operand (ascending). Shared by the
/// sparse algorithms, the dense reference, and the estimators.
struct ModeSplit {
  Modes fx;  ///< free modes of X, ascending
  Modes fy;  ///< free modes of Y, ascending
};
[[nodiscard]] ModeSplit validate_modes(const SparseTensor& x,
                                       const SparseTensor& y, const Modes& cx,
                                       const Modes& cy);

}  // namespace sparta
