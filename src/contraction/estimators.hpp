// Memory-consumption estimators for the placement engine (paper §4.2).
//
// Eq. 5 predicts HtY's footprint exactly from tensor metadata; Eq. 6
// upper-bounds one thread's HtA. Both are evaluated before the object is
// allocated, which is what lets Sparta place data statically.
#pragma once

#include <cstddef>

#include "tensor/types.hpp"

namespace sparta {

/// Documented accuracy contract, asserted by test_estimator_accuracy
/// against the tracked-allocator peaks and relied on by the budget
/// pre-flight gate (ContractOptions::budget):
///  * Eq. 5 models HtY's steady-state layout exactly; container growth
///    slack and padding keep the measured peak within a factor of
///    kEstimatorAccuracyFactor of the estimate, in both directions.
///  * Eq. 6 upper-bounds one thread's HtA from worst-case pairing; the
///    measured per-thread peak stays below kEstimatorAccuracyFactor ×
///    estimate (it may undershoot arbitrarily on skewed inputs — that
///    is the bound doing its job).
///  * The Z_local estimate models the staged payload; measured stays
///    within kEstimatorAccuracyFactor × estimate.
inline constexpr double kEstimatorAccuracyFactor = 4.0;

/// Struct-size constants the estimators plug into the paper's formulas.
/// Matched to GroupedHashMap / HashAccumulator's actual layout.
struct EstimatorSizes {
  std::size_t entry_pointer = 16;           ///< Size_ep: chain/bucket slot
  std::size_t index = sizeof(index_t);      ///< Size_idx
  std::size_t value = sizeof(value_t);      ///< Size_val
};

/// Eq. 5: Size_HtY = Size_ep·#Buckets + nnz_Y·(Size_idx·N_Y + Size_val
///                   + Size_ep).
[[nodiscard]] std::size_t estimate_hty_bytes(std::size_t nnz_y, int order_y,
                                             std::size_t num_buckets,
                                             const EstimatorSizes& sz = {});

/// Eq. 6 (upper bound): Size_HtA = Size_ep·#Buckets + nnz_Fmax^X ·
///   nnz_Fmax^Y · (Size_idx·|F_Y| + Size_val + Size_ep).
/// nnz_fmax_x / nnz_fmax_y are the largest X sub-tensor and largest HtY
/// group, both known after input processing and before the accumulator
/// is touched.
[[nodiscard]] std::size_t estimate_hta_bytes(std::size_t nnz_fmax_x,
                                             std::size_t nnz_fmax_y,
                                             int num_free_y,
                                             std::size_t num_buckets,
                                             const EstimatorSizes& sz = {});

/// Z_local bound (§4.2): size of HtA's payload plus the free-X indices
/// appended to each of its entries.
[[nodiscard]] std::size_t estimate_zlocal_bytes(std::size_t nnz_hta,
                                                int num_free_x,
                                                int num_free_y,
                                                const EstimatorSizes& sz = {});

}  // namespace sparta
