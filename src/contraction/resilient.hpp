// Graceful-degradation wrapper around contract() — the budgeted engine's
// answer to "the fast algorithm doesn't fit".
//
// contract_resilient() walks a ladder of progressively cheaper
// configurations until one completes under the caller's MemoryBudget:
//
//   HtY+HtA (kSparta)          — the paper's Algorithm 2, fastest
//     ↓ COOY+HtA (kCooHta)     — drops the O(nnz_Y) HtY hash table
//     ↓ COOY+SPA (kSpa)        — drops the per-thread HtA hash tables
//     ↓ chunked (kSpa × k)     — partitions X into k nnz-blocks,
//                                contracts each under the same budget,
//                                merges the partial Zs (contraction is
//                                linear in X); k doubles 2 → 256
//
// The ladder starts at the requested algorithm and only ever moves down.
// Recoverable failures — sparta::BudgetExceeded (pre-flight or runtime),
// std::bad_alloc, and sparta::Error raised mid-attempt (e.g. an injected
// transient fault) — advance the ladder; anything else propagates.
// Malformed inputs are rejected by validate_modes()/opts.validate()
// before the first attempt, so they never masquerade as a rung failure.
// When every rung fails, a sparta::Error summarising all attempts is
// thrown; std::bad_alloc never escapes contract_resilient().
//
// Cancellation (sparta::Cancelled, a sibling of Error — see
// common/cancel.hpp) is NOT a rung failure: when opts.cancel trips,
// the whole ladder aborts immediately. Retrying on a lighter algorithm
// cannot recover a blown deadline, and a drained service must stop
// spending threads on a request nobody is waiting for.
//
// See docs/ROBUSTNESS.md for the full contract.
#pragma once

#include <string>
#include <vector>

#include "contraction/contract.hpp"

namespace sparta {

/// One ladder attempt: which configuration ran and how it ended.
struct RungAttempt {
  Algorithm algorithm = Algorithm::kSparta;
  std::size_t chunks = 1;  ///< >1 for the chunked-execution rungs
  bool succeeded = false;
  std::string error;  ///< failure description; empty when succeeded

  /// "HtY+HtA", "COOY+SPA [4 chunks]", ...
  [[nodiscard]] std::string describe() const;
};

/// Every configuration tried, in order. The last attempt is the one that
/// served the result (contract_resilient throws when none succeeded).
struct ResilienceReport {
  std::vector<RungAttempt> attempts;

  /// True when the requested configuration did not serve the result.
  [[nodiscard]] bool degraded() const { return attempts.size() > 1; }

  /// The attempt that produced the result (the last, successful one).
  [[nodiscard]] const RungAttempt& serving() const {
    return attempts.back();
  }

  /// One line per attempt, for logs and error messages.
  [[nodiscard]] std::string summary() const;
};

struct ResilientResult {
  ContractResult result;
  ResilienceReport report;
};

/// Contracts X with Y like contract(), but degrades down the algorithm
/// ladder instead of failing when the budget (or an allocation) gives
/// out. Throws sparta::Error when inputs are invalid or every rung
/// fails; never lets std::bad_alloc escape.
[[nodiscard]] ResilientResult contract_resilient(
    const SparseTensor& x, const SparseTensor& y, const Modes& cx,
    const Modes& cy, const ContractOptions& opts = {});

}  // namespace sparta
