#include "contraction/plan.hpp"

#include "contraction/contract.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/parallel.hpp"
#include "obs/trace.hpp"

namespace sparta {

YPlan::YPlan(const SparseTensor& y, Modes cy, std::size_t hty_buckets,
             int num_threads, bool use_swiss_tables, CancelToken cancel) {
  // Validate cy against y.
  std::vector<bool> is_contract(static_cast<std::size_t>(y.order()), false);
  for (int m : cy) {
    SPARTA_CHECK(m >= 0 && m < y.order(), "cy: contract mode out of range");
    SPARTA_CHECK(!is_contract[static_cast<std::size_t>(m)],
                 "cy: duplicate contract mode");
    is_contract[static_cast<std::size_t>(m)] = true;
  }
  SPARTA_CHECK(!cy.empty(), "need at least one contract mode");

  cy_ = std::move(cy);
  ydims_ = y.dims();
  for (int m = 0; m < y.order(); ++m) {
    if (!is_contract[static_cast<std::size_t>(m)]) {
      fy_.push_back(m);
      fydims_.push_back(y.dim(m));
    }
  }
  for (int m : cy_) cdims_.push_back(y.dim(m));

  const LinearIndexer clin(cdims_);
  fylin_ = LinearIndexer(fydims_.empty() ? std::vector<index_t>{1}
                                         : fydims_);

  const std::size_t want =
      hty_buckets > 0 ? hty_buckets : std::max<std::size_t>(y.nnz(), 16);
  if (use_swiss_tables) {
    swiss_ = std::make_unique<simd::SwissYMap>(want);
  } else {
    hty_ = std::make_unique<GroupedHashMap>(want);
  }
  nnz_y_ = y.nnz();
  y_footprint_ = y.footprint_bytes();

  // Covers the parallel insert loop below — the "HtY build" sub-phase of
  // input processing (nested there when called from contract_impl).
  obs::Span sp_build("build_hty");
  const int nthreads = num_threads > 0 ? num_threads : max_threads();
  const auto n = static_cast<std::ptrdiff_t>(y.nnz());
  const std::span<const int> cy_span(cy_);
  const std::span<const int> fy_span(fy_);
  const bool has_free = !fy_.empty();
  SPARTA_FAILPOINT("plan.build");
  cancel.check("plan.build");
  // The two table kinds share insert_locked(key, FreeItem); the build
  // loop is generic over whichever this plan holds.
  auto build_into = [&](auto& table) {
    ExceptionCollector ec;
    // Re-establish the spawning thread's request id on the pooled team
    // threads so cancel instants inside the build stay attributable.
    const obs::Correlation corr = obs::current_correlation();
#pragma omp parallel num_threads(nthreads)
    {
      obs::RequestIdScope rid_scope(corr);
      std::vector<index_t> c(static_cast<std::size_t>(y.order()));
#pragma omp for schedule(static)
      for (std::ptrdiff_t i = 0; i < n; ++i) {
        ec.run([&] {
          const auto n_i = static_cast<std::size_t>(i);
          // Strided poll: one deadline read per 256 inserts per thread
          // keeps build cancellation latency bounded without putting an
          // atomic load in every table insert.
          if ((n_i & 255u) == 0) cancel.check("plan.build");
          y.coords(n_i, c);
          const lnkey_t ckey = clin.linearize_gather(c, cy_span);
          const lnkey_t fkey =
              has_free ? fylin_.linearize_gather(c, fy_span) : 0;
          table.insert_locked(ckey, FreeItem{fkey, y.value(n_i)});
        });
      }
    }
    ec.rethrow();
    max_group_ = table.max_group_size();
  };
  if (swiss_) {
    build_into(*swiss_);
  } else {
    build_into(*hty_);
  }
}

std::vector<ContractResult> contract_batch(
    const std::vector<const SparseTensor*>& xs, const YPlan& plan,
    const Modes& cx, const ContractOptions& opts) {
  std::vector<ContractResult> results;
  results.reserve(xs.size());
  for (const SparseTensor* x : xs) {
    SPARTA_CHECK(x != nullptr, "contract_batch: null operand");
    results.push_back(contract(*x, plan, cx, opts));
  }
  return results;
}

}  // namespace sparta
