#include "contraction/verify.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "contraction/contract.hpp"
#include "tensor/linearize.hpp"

namespace sparta {

namespace {

// One random ±[0.5, 1.5] vector per listed mode.
std::vector<std::vector<value_t>> draw_vectors(const SparseTensor& t,
                                               const Modes& modes, Rng& rng) {
  std::vector<std::vector<value_t>> vecs;
  for (int m : modes) {
    std::vector<value_t> v(t.dim(m));
    for (value_t& e : v) {
      const double mag = rng.uniform_double(0.5, 1.5);
      e = rng.uniform_double() < 0.5 ? mag : -mag;
    }
    vecs.push_back(std::move(v));
  }
  return vecs;
}

// Collapses `t` against per-mode vectors over `free_modes`, producing
// the map LN(contract tuple) → Σ val·Πv, plus the absolute-value sum
// for tolerance scaling.
void collapse(const SparseTensor& t, const Modes& contract_modes,
              const Modes& free_modes,
              const std::vector<std::vector<value_t>>& vecs,
              const LinearIndexer& clin,
              std::unordered_map<lnkey_t, value_t>& out, double& abs_sum) {
  std::vector<index_t> c(static_cast<std::size_t>(t.order()));
  const std::span<const int> cspan(contract_modes);
  for (std::size_t n = 0; n < t.nnz(); ++n) {
    t.coords(n, c);
    value_t v = t.value(n);
    for (std::size_t k = 0; k < free_modes.size(); ++k) {
      v *= vecs[k][c[static_cast<std::size_t>(free_modes[k])]];
    }
    out[clin.linearize_gather(c, cspan)] += v;
    abs_sum += std::abs(v);
  }
}

}  // namespace

bool verify_contraction(const SparseTensor& x, const SparseTensor& y,
                        const Modes& cx, const Modes& cy,
                        const SparseTensor& z, const VerifyOptions& opts) {
  const ModeSplit split = validate_modes(x, y, cx, cy);
  SPARTA_CHECK(static_cast<std::size_t>(z.order()) ==
                   split.fx.size() + split.fy.size(),
               "z's order does not match the contraction's output");
  for (std::size_t k = 0; k < split.fx.size(); ++k) {
    SPARTA_CHECK(z.dim(static_cast<int>(k)) == x.dim(split.fx[k]),
                 "z's leading modes must be X's free modes");
  }
  for (std::size_t k = 0; k < split.fy.size(); ++k) {
    SPARTA_CHECK(z.dim(static_cast<int>(split.fx.size() + k)) ==
                     y.dim(split.fy[k]),
                 "z's trailing modes must be Y's free modes");
  }

  Rng rng(opts.seed);
  std::vector<index_t> cdims;
  for (int m : cx) cdims.push_back(x.dim(m));
  const LinearIndexer clin(cdims);

  for (int trial = 0; trial < opts.trials; ++trial) {
    const auto u = draw_vectors(x, split.fx, rng);
    const auto w = draw_vectors(y, split.fy, rng);

    // LHS: Z collapsed against (u, w).
    double lhs = 0, lhs_abs = 0;
    {
      std::vector<index_t> c(static_cast<std::size_t>(z.order()));
      for (std::size_t n = 0; n < z.nnz(); ++n) {
        z.coords(n, c);
        value_t v = z.value(n);
        for (std::size_t k = 0; k < split.fx.size(); ++k) v *= u[k][c[k]];
        for (std::size_t k = 0; k < split.fy.size(); ++k) {
          v *= w[k][c[split.fx.size() + k]];
        }
        lhs += v;
        lhs_abs += std::abs(v);
      }
    }

    // RHS: X and Y collapsed to contract-key vectors, then dotted.
    std::unordered_map<lnkey_t, value_t> a, b;
    double a_abs = 0, b_abs = 0;
    collapse(x, cx, split.fx, u, clin, a, a_abs);
    collapse(y, cy, split.fy, w, clin, b, b_abs);
    double rhs = 0, rhs_abs = 0;
    const auto& small = a.size() <= b.size() ? a : b;
    const auto& large = a.size() <= b.size() ? b : a;
    for (const auto& [key, va] : small) {
      const auto it = large.find(key);
      if (it != large.end()) {
        rhs += va * it->second;
        rhs_abs += std::abs(va * it->second);
      }
    }

    const double scale = std::max({1.0, lhs_abs, rhs_abs});
    if (std::abs(lhs - rhs) > opts.tolerance * scale) return false;
  }
  return true;
}

}  // namespace sparta
