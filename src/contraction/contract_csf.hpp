// CSF-driven Sparta contraction — the paper's §6 future-work item
// realized: X is stored as a compressed-sparse-fiber tree whose upper
// levels are exactly the free-prefix sub-tensors the pipeline iterates,
// and whose contract-level walk accumulates the LN search key
// incrementally (shared prefixes are linearized once instead of per
// non-zero).
//
// Semantics match contract(x, plan, cx) with Algorithm::kSparta, except
// duplicate X coordinates are pre-merged (CSF requires distinct
// coordinates; the sum is numerically identical).
#pragma once

#include "contraction/contract.hpp"
#include "contraction/plan.hpp"

namespace sparta {

/// Z = X ×_{cx} plan.Y via a CSF representation of X. Honors
/// opts.num_threads / sort_output; algorithm is always Sparta.
[[nodiscard]] ContractResult contract_csf(const SparseTensor& x,
                                          const YPlan& plan, const Modes& cx,
                                          const ContractOptions& opts = {});

}  // namespace sparta
