#include "contraction/contract_csf.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "hashtable/accumulator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/csf.hpp"
#include "tensor/linearize.hpp"

namespace sparta {

namespace {

// One free-prefix sub-tensor: its free coordinates and its CSF node at
// the deepest free level (the root of the contract-level subtree).
struct CsfSubtensor {
  std::vector<index_t> free_coords;
  std::size_t node;
};

// Enumerates the sub-tensor roots by walking the free levels.
void enumerate_subtensors(const CsfTensor& csf, std::size_t num_free,
                          std::size_t level, std::size_t begin,
                          std::size_t end, std::vector<index_t>& prefix,
                          std::vector<CsfSubtensor>& out) {
  const auto idx = csf.level_indices(static_cast<int>(level));
  for (std::size_t node = begin; node < end; ++node) {
    prefix[level] = idx[node];
    if (level + 1 == num_free) {
      out.push_back(CsfSubtensor{prefix, node});
    } else {
      const auto ptr = csf.level_ptr(static_cast<int>(level));
      enumerate_subtensors(csf, num_free, level + 1, ptr[node],
                           ptr[node + 1], prefix, out);
    }
  }
}

// Walks the contract levels below one sub-tensor root, accumulating the
// LN key incrementally (stride per level precomputed), and invokes
// f(key, value) per leaf.
template <typename F>
void walk_contract(const CsfTensor& csf, std::size_t num_free,
                   const std::vector<lnkey_t>& strides, std::size_t level,
                   std::size_t begin, std::size_t end, lnkey_t partial,
                   F&& f) {
  const auto last = static_cast<std::size_t>(csf.order()) - 1;
  const auto idx = csf.level_indices(static_cast<int>(level));
  if (level == last) {
    const auto vals = csf.values();
    for (std::size_t node = begin; node < end; ++node) {
      f(partial + strides[level - num_free] * idx[node], vals[node]);
    }
    return;
  }
  const auto ptr = csf.level_ptr(static_cast<int>(level));
  for (std::size_t node = begin; node < end; ++node) {
    walk_contract(csf, num_free, strides, level + 1, ptr[node],
                  ptr[node + 1],
                  partial + strides[level - num_free] * idx[node], f);
  }
}

}  // namespace

ContractResult contract_csf(const SparseTensor& x, const YPlan& plan,
                            const Modes& cx, const ContractOptions& opts) {
  // --- validation (as in the plan-based contract path) ----------------
  opts.validate();
  if (opts.trace) obs::TraceRecorder::global().enable();
  SPARTA_CHECK(cx.size() == plan.cy().size(),
               "cx arity must match the plan's contract modes");
  std::vector<bool> is_contract(static_cast<std::size_t>(x.order()), false);
  for (std::size_t i = 0; i < cx.size(); ++i) {
    const int m = cx[i];
    SPARTA_CHECK(m >= 0 && m < x.order(), "cx: mode out of range");
    SPARTA_CHECK(!is_contract[static_cast<std::size_t>(m)],
                 "cx: duplicate contract mode");
    is_contract[static_cast<std::size_t>(m)] = true;
    SPARTA_CHECK(x.dim(m) == plan.contract_dims()[i],
                 "contract mode sizes must match the plan");
  }
  Modes fx;
  for (int m = 0; m < x.order(); ++m) {
    if (!is_contract[static_cast<std::size_t>(m)]) fx.push_back(m);
  }
  SPARTA_CHECK(!fx.empty() || !plan.fy().empty(),
               "full contraction to a scalar needs at least one free mode");
  const std::size_t nfx = fx.size();
  const std::size_t nfy = plan.fy().size();
  const std::size_t m = cx.size();
  const int nthreads =
      opts.num_threads > 0 ? opts.num_threads : max_threads();

  ContractResult res;
  res.stats.nnz_x = x.nnz();
  res.stats.nnz_y = plan.nnz_y();
  res.stats.num_y_keys = plan.num_keys();
  res.stats.max_y_group = plan.max_group();
  res.stats.hty_bytes = plan.hty_footprint_bytes();

  std::vector<index_t> zdims;
  for (int mode : fx) zdims.push_back(x.dim(mode));
  zdims.insert(zdims.end(), plan.free_dims().begin(),
               plan.free_dims().end());
  const std::size_t zorder = zdims.size();

  if (x.empty() || plan.nnz_y() == 0) {
    res.z = SparseTensor(zdims);
    return res;
  }

  obs::Span sp_contract("contract_csf");

  // --- ① input processing: permute, sort, coalesce, CSF-ify ----------
  Timer t_input;
  obs::Span sp_input("input_processing");
  SparseTensor xp = x;
  {
    Modes order = fx;
    order.insert(order.end(), cx.begin(), cx.end());
    xp.permute_modes(order);
    xp.coalesce();  // CSF needs distinct coordinates; also sorts
  }
  const CsfTensor csf = CsfTensor::from_sorted(xp);

  // Contract-level LN strides (same linearization as the plan's keys).
  std::vector<lnkey_t> strides(m, 1);
  {
    const auto& cdims = plan.contract_dims();
    for (std::size_t k = m; k-- > 1;) {
      strides[k - 1] = strides[k] * cdims[k];
    }
  }

  // Sub-tensor roots.
  std::vector<CsfSubtensor> subs;
  if (nfx == 0) {
    subs.push_back(CsfSubtensor{{}, 0});
  } else {
    std::vector<index_t> prefix(nfx);
    enumerate_subtensors(csf, nfx, 0, 0, csf.level_size(0), prefix, subs);
  }
  res.stats.num_x_subtensors = subs.size();
  sp_input.finish();
  res.stage_times[Stage::kInputProcessing] = t_input.seconds();

  // --- ②③④ computation ------------------------------------------------
  struct ZLocal {
    std::vector<index_t> coords;
    std::vector<value_t> vals;
  };
  std::vector<ZLocal> zlocals(static_cast<std::size_t>(nthreads));
  std::atomic<std::uint64_t> total_searches{0};
  std::atomic<std::uint64_t> total_hits{0};
  std::atomic<std::uint64_t> total_multiplies{0};
  std::atomic<std::uint64_t> acc_bytes{0};

  struct Match {
    std::span<const FreeItem> items;
    value_t xval;
  };

  Timer t_compute;
  // The CSF walk interleaves search and accumulation per sub-tensor, so
  // one span covers both stages (their seconds are split below).
  obs::Span sp_compute("index_search+accumulation");
  ExceptionCollector compute_ec;
  // Pooled team threads must carry the spawning thread's request id
  // (stale thread-locals would mis-attribute cancel/fault instants).
  const obs::Correlation ambient = obs::current_correlation();
#pragma omp parallel num_threads(nthreads)
  {
    obs::RequestIdScope rid_scope(ambient);
    const auto tid = static_cast<std::size_t>(thread_id());
    // Built under the guard: every thread must still reach the `omp for`
    // below even if an accumulator constructor throws.
    std::unique_ptr<HashAccumulator> acc;
    std::vector<Match> matches;
    std::vector<index_t> fyc;
    compute_ec.run([&] {
      acc = std::make_unique<HashAccumulator>(
          std::max<std::size_t>(plan.max_group(), 64));
      fyc.resize(std::max<std::size_t>(nfy, 1));
    });
    std::uint64_t searches = 0, hits = 0, mults = 0;

#pragma omp for schedule(dynamic, 16)
    for (std::ptrdiff_t s = 0; s < static_cast<std::ptrdiff_t>(subs.size());
         ++s) {
      compute_ec.run([&] {
      const CsfSubtensor& sub = subs[static_cast<std::size_t>(s)];
      acc->clear();
      matches.clear();

      // ② index search: walk the contract subtree; the partial LN key is
      // computed once per internal fiber, not once per leaf.
      std::size_t begin = 0;
      std::size_t end = 0;
      if (nfx == 0) {
        begin = 0;
        end = csf.level_size(0);
      } else {
        const auto ptr = csf.level_ptr(static_cast<int>(nfx) - 1);
        begin = ptr[sub.node];
        end = ptr[sub.node + 1];
      }
      walk_contract(csf, nfx, strides, nfx, begin, end, 0,
                    [&](lnkey_t key, value_t xval) {
                      ++searches;
                      const auto items = plan.hty().find(key);
                      if (!items.empty()) {
                        ++hits;
                        matches.push_back(Match{items, xval});
                      }
                    });

      // ③ accumulation.
      for (const Match& mt : matches) {
        for (const FreeItem& it : mt.items) {
          acc->accumulate(it.free_key, mt.xval * it.val);
          ++mults;
        }
      }

      // ④ writeback into the thread-local buffer.
      ZLocal& zl = zlocals[tid];
      acc->drain([&](lnkey_t fkey, value_t v) {
        plan.fy_indexer().delinearize(fkey, fyc);
        zl.coords.insert(zl.coords.end(), sub.free_coords.begin(),
                         sub.free_coords.end());
        zl.coords.insert(zl.coords.end(), fyc.begin(),
                         fyc.begin() + static_cast<std::ptrdiff_t>(nfy));
        zl.vals.push_back(v);
      });
      });
    }

    total_searches += searches;
    total_hits += hits;
    total_multiplies += mults;
    if (acc) {
      acc_bytes.store(
          std::max(acc_bytes.load(std::memory_order_relaxed),
                   static_cast<std::uint64_t>(acc->footprint_bytes())),
          std::memory_order_relaxed);
    }
  }
  compute_ec.rethrow();
  res.stats.searches = total_searches.load();
  res.stats.hits = total_hits.load();
  res.stats.multiplies = total_multiplies.load();
  res.stats.hta_bytes = static_cast<std::size_t>(acc_bytes.load()) *
                        static_cast<std::size_t>(nthreads);
  sp_compute.finish();
  // The walk interleaves search and accumulation per sub-tensor; report
  // the combined computation under index search + accumulation halves.
  const double compute = t_compute.seconds();
  res.stage_times[Stage::kIndexSearch] = compute / 2;
  res.stage_times[Stage::kAccumulation] = compute / 2;

  // Gather thread-local buffers into Z.
  Timer t_gather;
  obs::Span sp_wb("writeback");
  std::size_t total_z = 0;
  std::vector<std::size_t> offsets(zlocals.size() + 1, 0);
  for (std::size_t t = 0; t < zlocals.size(); ++t) {
    offsets[t] = total_z;
    total_z += zlocals[t].vals.size();
  }
  std::vector<std::vector<index_t>> zcols(zorder);
  for (auto& col : zcols) col.resize(total_z);
  std::vector<value_t> zvals(total_z);
  ExceptionCollector gather_ec;
#pragma omp parallel for schedule(static) num_threads(nthreads)
  for (std::ptrdiff_t t = 0; t < static_cast<std::ptrdiff_t>(zlocals.size());
       ++t) {
    gather_ec.run([&, t] {
      const ZLocal& zl = zlocals[static_cast<std::size_t>(t)];
      std::size_t dst = offsets[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; i < zl.vals.size(); ++i, ++dst) {
        for (std::size_t mcol = 0; mcol < zorder; ++mcol) {
          zcols[mcol][dst] = zl.coords[i * zorder + mcol];
        }
        zvals[dst] = zl.vals[i];
      }
    });
  }
  gather_ec.rethrow();
  std::size_t zlocal_bytes = 0;
  for (const ZLocal& zl : zlocals) {
    zlocal_bytes += zl.coords.capacity() * sizeof(index_t) +
                    zl.vals.capacity() * sizeof(value_t);
  }
  res.stats.zlocal_bytes = zlocal_bytes;
  res.z = SparseTensor::from_columns(std::move(zdims), std::move(zcols),
                                     std::move(zvals));
  sp_wb.finish();
  res.stage_times[Stage::kWriteback] = t_gather.seconds();
  res.stats.nnz_z = res.z.nnz();
  res.stats.z_bytes = res.z.footprint_bytes();

  // --- ⑤ output sorting ------------------------------------------------
  if (opts.sort_output) {
    Timer t_sort;
    obs::Span sp_sort("output_sorting");
    res.z.sort();
    sp_sort.finish();
    res.stage_times[Stage::kOutputSorting] = t_sort.seconds();
  }

  if (obs::metrics_enabled()) {
    auto& mreg = obs::MetricsRegistry::global();
    mreg.counter("contract_csf.calls").add_unchecked(1);
    mreg.counter("contract_csf.searches")
        .add_unchecked(static_cast<std::uint64_t>(res.stats.searches));
    mreg.counter("contract_csf.multiplies")
        .add_unchecked(static_cast<std::uint64_t>(res.stats.multiplies));
  }

#ifndef NDEBUG
  res.stats.check(&res.stage_times);
#endif

  return res;
}

}  // namespace sparta
