#include "contraction/reference.hpp"

#include <map>
#include <vector>

#include "common/error.hpp"
#include "contraction/contract.hpp"

namespace sparta {

SparseTensor contract_reference(const SparseTensor& x, const SparseTensor& y,
                                const Modes& cx, const Modes& cy) {
  const ModeSplit split = validate_modes(x, y, cx, cy);

  std::vector<index_t> zdims;
  for (int m : split.fx) zdims.push_back(x.dim(m));
  for (int m : split.fy) zdims.push_back(y.dim(m));

  std::map<Coords, value_t> acc;
  std::vector<index_t> xc(static_cast<std::size_t>(x.order()));
  std::vector<index_t> yc(static_cast<std::size_t>(y.order()));
  Coords zc(zdims.size());

  for (std::size_t i = 0; i < x.nnz(); ++i) {
    x.coords(i, xc);
    for (std::size_t j = 0; j < y.nnz(); ++j) {
      y.coords(j, yc);
      bool match = true;
      for (std::size_t k = 0; k < cx.size(); ++k) {
        if (xc[static_cast<std::size_t>(cx[k])] !=
            yc[static_cast<std::size_t>(cy[k])]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      std::size_t p = 0;
      for (int m : split.fx) zc[p++] = xc[static_cast<std::size_t>(m)];
      for (int m : split.fy) zc[p++] = yc[static_cast<std::size_t>(m)];
      acc[zc] += x.value(i) * y.value(j);
    }
  }

  SparseTensor z(zdims);
  z.reserve(acc.size());
  for (const auto& [coords, v] : acc) {
    if (v != value_t{0}) z.append_unchecked(coords, v);
  }
  return z;
}

}  // namespace sparta
