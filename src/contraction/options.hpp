// Algorithm selection and tuning knobs for sparse tensor contraction.
#pragma once

#include <cstddef>
#include <string_view>

namespace sparta {

/// The three algorithm variants evaluated in the paper (Fig. 4), plus a
/// binary-search COO variant this reproduction adds as an ablation
/// point between the O(nnz_Y) linear scan and the O(1) HtY probe.
enum class Algorithm : int {
  kSpa = 0,        ///< COO Y + sparse accumulator (Algorithm 1, "SpTC-SPA")
  kCooHta = 1,     ///< COO Y + hash-table accumulator, linear search
  kSparta = 2,     ///< HtY + HtA (Algorithm 2, "Sparta")
  kCooBinary = 3,  ///< COO Y + HtA, O(log nnz_Y) binary search (extension)
};

[[nodiscard]] constexpr std::string_view algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kSpa:
      return "COOY+SPA";
    case Algorithm::kCooHta:
      return "COOY+HtA";
    case Algorithm::kSparta:
      return "HtY+HtA";
    case Algorithm::kCooBinary:
      return "COOY(bin)+HtA";
  }
  return "?";
}

struct ContractOptions {
  Algorithm algorithm = Algorithm::kSparta;

  /// 0 = use the ambient OpenMP thread count.
  int num_threads = 0;

  /// Sort Z after computation (the paper's default; stage ⑤).
  bool sort_output = true;

  /// Apply the paper's §3.3 heuristic: when nnz(X) > nnz(Y), swap the
  /// operands (and the contract-mode lists) so the larger tensor is the
  /// one represented as HtY, reducing index-search frequency. The output
  /// mode order then changes accordingly; off by default so results are
  /// predictable.
  bool swap_operands_if_larger_x = false;

  /// Bucket count for HtY; 0 = auto (≈ nnz(Y), rounded up to 2^k).
  std::size_t hty_buckets = 0;

  /// Use the open-addressing LinearProbeAccumulator instead of the
  /// chained HashAccumulator for HtA (Sparta algorithm only) — the §6
  /// "more advanced hash algorithms" direction.
  bool use_linear_probe_hta = false;

  /// Record the per-stage × per-object AccessProfile for the memory
  /// simulator. Cheap (arithmetic only) but off by default.
  bool collect_access_profile = false;

  /// ABLATION ONLY: write results into one shared, lock-protected output
  /// buffer instead of thread-local Z_local staging. Quantifies what the
  /// paper's thread-local Z_local design (§3.5) buys; never use in
  /// production.
  bool ablation_shared_writeback = false;
};

/// Counters describing what one contraction did; used by benchmarks and
/// the placement estimators.
struct ContractStats {
  std::size_t nnz_x = 0;
  std::size_t nnz_y = 0;
  std::size_t nnz_z = 0;
  std::size_t num_x_subtensors = 0;   ///< N_F, mode-F_X sub-tensors of X
  std::size_t num_y_keys = 0;         ///< distinct contract tuples in Y
  std::size_t max_y_group = 0;        ///< nnz_Fmax^Y (Eq. 6)
  std::size_t max_x_subtensor = 0;    ///< nnz_Fmax^X (Eq. 6)
  std::size_t searches = 0;           ///< index-search probes issued
  std::size_t hits = 0;               ///< probes that found a Y group
  std::size_t multiplies = 0;         ///< scalar multiply-accumulates
  std::size_t hty_bytes = 0;          ///< measured HtY footprint
  std::size_t hta_bytes = 0;          ///< measured accumulators, all threads
  std::size_t zlocal_bytes = 0;       ///< measured Z_local, all threads
  std::size_t z_bytes = 0;            ///< measured output footprint
};

}  // namespace sparta
