// Algorithm selection and tuning knobs for sparse tensor contraction.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/json.hpp"
#include "obs/perfctr.hpp"

namespace sparta {

class AllocationRegistry;  // memsim/allocator.hpp

/// The three algorithm variants evaluated in the paper (Fig. 4), plus a
/// binary-search COO variant this reproduction adds as an ablation
/// point between the O(nnz_Y) linear scan and the O(1) HtY probe.
enum class Algorithm : int {
  kSpa = 0,        ///< COO Y + sparse accumulator (Algorithm 1, "SpTC-SPA")
  kCooHta = 1,     ///< COO Y + hash-table accumulator, linear search
  kSparta = 2,     ///< HtY + HtA (Algorithm 2, "Sparta")
  kCooBinary = 3,  ///< COO Y + HtA, O(log nnz_Y) binary search (extension)
};

[[nodiscard]] constexpr std::string_view algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kSpa:
      return "COOY+SPA";
    case Algorithm::kCooHta:
      return "COOY+HtA";
    case Algorithm::kSparta:
      return "HtY+HtA";
    case Algorithm::kCooBinary:
      return "COOY(bin)+HtA";
  }
  return "?";
}

/// Memory ceiling for one contraction, enforced two ways (both on by
/// default once `bytes` is set):
///  * pre-flight — the paper's Eq. 5/6 estimators run against the budget
///    before HtY / HtA are allocated, throwing BudgetExceeded when the
///    predicted footprint cannot fit;
///  * runtime — the engine charges its major data objects (X copy, Y/HtY,
///    HtA, Z_local, Z) against a tracked AllocationRegistry with a hard
///    cap, throwing BudgetExceeded at the charge that overflows.
/// See docs/ROBUSTNESS.md for the exact per-algorithm formulas and the
/// degradation ladder contract_resilient() builds on this.
struct MemoryBudget {
  std::size_t bytes = 0;  ///< 0 = unlimited (both gates disabled)
  bool preflight = true;  ///< Eq. 5/6 estimator gate
  bool runtime = true;    ///< tracked-charge enforcement
};

struct ContractOptions {
  Algorithm algorithm = Algorithm::kSparta;

  /// 0 = use the ambient OpenMP thread count.
  int num_threads = 0;

  /// Sort Z after computation (the paper's default; stage ⑤).
  bool sort_output = true;

  /// Apply the paper's §3.3 heuristic: when nnz(X) > nnz(Y), swap the
  /// operands (and the contract-mode lists) so the larger tensor is the
  /// one represented as HtY, reducing index-search frequency. The output
  /// mode order then changes accordingly; off by default so results are
  /// predictable.
  bool swap_operands_if_larger_x = false;

  /// Bucket count for HtY; 0 = auto (≈ nnz(Y), rounded up to 2^k).
  std::size_t hty_buckets = 0;

  /// Use the open-addressing LinearProbeAccumulator instead of the
  /// chained HashAccumulator for HtA (Sparta algorithm only) — the §6
  /// "more advanced hash algorithms" direction.
  bool use_linear_probe_hta = false;

  /// Use the SIMD-probed swiss tables (simd/swiss_table.hpp) for HtY
  /// and HtA instead of the chained structures. Applies to every
  /// hash-table algorithm (kCooHta, kSparta, kCooBinary); kSpa has no
  /// hash table to swap. Output is bit-identical to the chained tables'
  /// semantics per ISA tier and across tiers (see docs/SIMD.md);
  /// mutually exclusive with use_linear_probe_hta.
  bool use_swiss_tables = false;

  /// Record the per-stage × per-object AccessProfile for the memory
  /// simulator. Cheap (arithmetic only) but off by default.
  bool collect_access_profile = false;

  /// ABLATION ONLY: write results into one shared, lock-protected output
  /// buffer instead of thread-local Z_local staging. Quantifies what the
  /// paper's thread-local Z_local design (§3.5) buys; never use in
  /// production.
  bool ablation_shared_writeback = false;

  /// Enables the global trace recorder (obs::TraceRecorder::global())
  /// before the contraction starts, so its per-stage spans are
  /// collected even without SPARTA_TRACE in the environment. The
  /// recorder stays enabled afterwards; the caller owns writing it out
  /// (TraceRecorder::write_file) unless SPARTA_TRACE set an output path.
  bool trace = false;

  /// Set by callers contracting against a prebuilt YPlan whose HtY is
  /// owned and budget-charged by an external cache (see
  /// serve/plan_cache.hpp): the engine then neither pre-flights the
  /// Eq. 5 HtY term nor charges the HtY bytes to this request's
  /// registry — the cache already holds that charge, and double-charging
  /// would shrink the apparent remaining budget by every cached plan a
  /// request reuses. Ignored (and harmless) without a prebuilt plan.
  bool hty_charged_externally = false;

  /// Correlation id stamped into every trace span/instant the engine
  /// emits for this contraction (args key "request_id") and into the
  /// flight-recorder ring, so spans from concurrently served requests
  /// are attributable. 0 = not request-scoped (standalone callers):
  /// events are then emitted exactly as before correlation existed.
  /// The serving layer assigns these monotonically per ServeRequest.
  std::uint64_t request_id = 0;

  /// Cooperative cancellation/deadline token. The engine polls it at
  /// every stage head, per X-sub-tensor chunk, per sort pass, and along
  /// the HtY build; check() throws Cancelled, which unwinds through the
  /// same ExceptionCollector path as injected faults (all ScopedCharge
  /// budget released, no partial output escapes). Default-constructed =
  /// inert: checks cost one pointer test.
  CancelToken cancel;

  /// Memory ceiling; see MemoryBudget. Default: unlimited.
  MemoryBudget budget;

  /// Optional registry receiving the engine's tracked charges (tier
  /// kDram, tagged per DataObject), e.g. for footprint assertions in
  /// tests. When null and a runtime budget is set, the engine uses a
  /// private registry. When set together with budget.runtime, the
  /// registry's capacity is set to budget.bytes for the call.
  AllocationRegistry* registry = nullptr;

  /// Validates the option set, throwing sparta::Error on misuse
  /// (negative thread counts, contradictory flags). Called by every
  /// public contraction entry point before any parallel region starts.
  void validate() const {
    SPARTA_CHECK(num_threads >= 0,
                 "num_threads must be >= 0 (0 = ambient OpenMP count)");
    SPARTA_CHECK(num_threads <= (1 << 16), "num_threads implausibly large");
    const int a = static_cast<int>(algorithm);
    SPARTA_CHECK(a >= 0 && a <= static_cast<int>(Algorithm::kCooBinary),
                 "algorithm is not a valid Algorithm enumerator");
    SPARTA_CHECK(!use_linear_probe_hta || algorithm == Algorithm::kSparta,
                 "use_linear_probe_hta applies only to Algorithm::kSparta");
    SPARTA_CHECK(!use_swiss_tables || algorithm != Algorithm::kSpa,
                 "use_swiss_tables needs a hash-table algorithm; kSpa "
                 "has no hash table to replace");
    SPARTA_CHECK(!(use_swiss_tables && use_linear_probe_hta),
                 "use_swiss_tables and use_linear_probe_hta both replace "
                 "the HtA; pick one");
    SPARTA_CHECK(hty_buckets == 0 || algorithm == Algorithm::kSparta,
                 "hty_buckets applies only to Algorithm::kSparta");
    SPARTA_CHECK(!hty_charged_externally || algorithm == Algorithm::kSparta,
                 "hty_charged_externally applies only to Algorithm::kSparta "
                 "(only HtY plans can be cached externally)");
    SPARTA_CHECK(budget.bytes == 0 || budget.preflight || budget.runtime,
                 "memory budget set but both enforcement modes disabled");
    SPARTA_CHECK(!ablation_shared_writeback || budget.bytes == 0,
                 "the shared-writeback ablation is not budget-tracked; "
                 "unset ablation_shared_writeback or the budget");
  }
};

/// Per-stage hardware-counter deltas for one contraction, summed across
/// the worker threads that executed each stage (obs/perfctr.hpp). Only
/// populated when perfctr_enabled(); available() false otherwise — and
/// on kernels/containers where perf_event_open is off limits, in which
/// case consumers must report "unavailable", not zeros.
struct StagePerf {
  std::array<obs::PerfDelta, kNumStages> stage{};

  obs::PerfDelta& at(Stage s) { return stage[static_cast<std::size_t>(s)]; }
  [[nodiscard]] const obs::PerfDelta& at(Stage s) const {
    return stage[static_cast<std::size_t>(s)];
  }

  [[nodiscard]] bool available() const {
    for (const obs::PerfDelta& d : stage) {
      if (d.available) return true;
    }
    return false;
  }

  [[nodiscard]] obs::PerfDelta total() const {
    obs::PerfDelta t;
    for (const obs::PerfDelta& d : stage) t += d;
    return t;
  }

  StagePerf& operator+=(const StagePerf& o) {
    for (int i = 0; i < kNumStages; ++i) {
      stage[static_cast<std::size_t>(i)] +=
          o.stage[static_cast<std::size_t>(i)];
    }
    return *this;
  }

  /// {"available":bool,"total":{...},"stages":{"<stage>":{...}}} — the
  /// bench --json per-case "perf" section.
  [[nodiscard]] std::string to_json() const {
    obs::JsonWriter w;
    w.begin_object();
    w.key("available").value(available());
    w.key("total").raw(total().to_json());
    w.key("stages").begin_object();
    for (int i = 0; i < kNumStages; ++i) {
      w.key(stage_name(static_cast<Stage>(i)))
          .raw(stage[static_cast<std::size_t>(i)].to_json());
    }
    w.end_object();
    w.end_object();
    return w.str();
  }
};

/// Counters describing what one contraction did; used by benchmarks and
/// the placement estimators.
struct ContractStats {
  std::size_t nnz_x = 0;
  std::size_t nnz_y = 0;
  std::size_t nnz_z = 0;
  std::size_t num_x_subtensors = 0;   ///< N_F, mode-F_X sub-tensors of X
  std::size_t num_y_keys = 0;         ///< distinct contract tuples in Y
  std::size_t max_y_group = 0;        ///< nnz_Fmax^Y (Eq. 6)
  std::size_t max_x_subtensor = 0;    ///< nnz_Fmax^X (Eq. 6)
  std::size_t searches = 0;           ///< index-search probes issued
  std::size_t hits = 0;               ///< probes that found a Y group
  std::size_t multiplies = 0;         ///< scalar multiply-accumulates
  std::size_t hty_bytes = 0;          ///< measured HtY footprint
  std::size_t hta_bytes = 0;          ///< measured accumulators, all threads
  std::size_t zlocal_bytes = 0;       ///< measured Z_local, all threads
  std::size_t z_bytes = 0;            ///< measured output footprint

  /// Hardware-counter deltas per stage (empty/unavailable unless
  /// perfctr_enabled() during the run). Deliberately NOT part of
  /// to_json(): the "counters" report section stays deterministic so
  /// sparta_perfdiff can gate it exactly; perf lives in its own
  /// machine-dependent section.
  StagePerf perf;

  /// Validates the cross-counter invariants every contraction must
  /// satisfy, throwing sparta::Error on violation:
  ///   * hits <= searches (a probe can't succeed more than it ran)
  ///   * nnz_z <= multiplies when any multiply happened (every output
  ///     non-zero is produced by at least one multiply-accumulate)
  ///   * num_x_subtensors / max_x_subtensor bounded by nnz_x, and
  ///     num_y_keys / max_y_group bounded by nnz_y
  ///   * when `stage_times` is given and nonzero, its per-stage
  ///     fractions sum to ~1.0
  /// contract() asserts this at the end of every debug-build run; tests
  /// and tools may call it in any build.
  void check(const StageTimes* stage_times = nullptr) const {
    SPARTA_CHECK(hits <= searches, "stats: more index-search hits ("
                                       + std::to_string(hits) +
                                       ") than searches (" +
                                       std::to_string(searches) + ")");
    SPARTA_CHECK(nnz_z <= multiplies || nnz_z == 0,
                 "stats: " + std::to_string(nnz_z) +
                     " output non-zeros from only " +
                     std::to_string(multiplies) + " multiplies");
    SPARTA_CHECK(num_x_subtensors <= nnz_x,
                 "stats: more X sub-tensors than X non-zeros");
    SPARTA_CHECK(max_x_subtensor <= nnz_x,
                 "stats: largest X sub-tensor exceeds nnz(X)");
    SPARTA_CHECK(num_y_keys <= nnz_y,
                 "stats: more distinct Y keys than Y non-zeros");
    SPARTA_CHECK(max_y_group <= nnz_y,
                 "stats: largest Y group exceeds nnz(Y)");
    if (stage_times != nullptr && stage_times->total() > 0.0) {
      double frac = 0.0;
      for (int i = 0; i < kNumStages; ++i) {
        frac += stage_times->fraction(static_cast<Stage>(i));
      }
      SPARTA_CHECK(std::abs(frac - 1.0) < 1e-6,
                   "stats: stage fractions sum to " + std::to_string(frac) +
                       ", not ~1.0");
    }
  }

  /// JSON object of every counter — the bench --json "counters" field.
  [[nodiscard]] std::string to_json() const {
    obs::JsonWriter w;
    w.begin_object();
    w.key("nnz_x").value(static_cast<std::uint64_t>(nnz_x));
    w.key("nnz_y").value(static_cast<std::uint64_t>(nnz_y));
    w.key("nnz_z").value(static_cast<std::uint64_t>(nnz_z));
    w.key("num_x_subtensors")
        .value(static_cast<std::uint64_t>(num_x_subtensors));
    w.key("num_y_keys").value(static_cast<std::uint64_t>(num_y_keys));
    w.key("max_y_group").value(static_cast<std::uint64_t>(max_y_group));
    w.key("max_x_subtensor")
        .value(static_cast<std::uint64_t>(max_x_subtensor));
    w.key("searches").value(static_cast<std::uint64_t>(searches));
    w.key("hits").value(static_cast<std::uint64_t>(hits));
    w.key("multiplies").value(static_cast<std::uint64_t>(multiplies));
    w.key("hty_bytes").value(static_cast<std::uint64_t>(hty_bytes));
    w.key("hta_bytes").value(static_cast<std::uint64_t>(hta_bytes));
    w.key("zlocal_bytes").value(static_cast<std::uint64_t>(zlocal_bytes));
    w.key("z_bytes").value(static_cast<std::uint64_t>(z_bytes));
    w.end_object();
    return w.str();
  }
};

}  // namespace sparta
