#include "contraction/contract.hpp"

#include "contraction/plan.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <numeric>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/parallel.hpp"
#include "contraction/estimators.hpp"
#include "hashtable/accumulator.hpp"
#include "hashtable/grouped_map.hpp"
#include "hashtable/linear_probe.hpp"
#include "hashtable/spa.hpp"
#include "memsim/allocator.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/perfctr.hpp"
#include "obs/trace.hpp"
#include "simd/swiss_table.hpp"
#include "tensor/linearize.hpp"

namespace sparta {

ModeSplit validate_modes(const SparseTensor& x, const SparseTensor& y,
                         const Modes& cx, const Modes& cy) {
  SPARTA_CHECK(cx.size() == cy.size(),
               "contract mode lists must have equal arity");
  SPARTA_CHECK(!cx.empty(), "need at least one contract mode");

  auto check_list = [](const SparseTensor& t, const Modes& modes,
                       const char* which) {
    std::vector<bool> seen(static_cast<std::size_t>(t.order()), false);
    for (int m : modes) {
      SPARTA_CHECK(m >= 0 && m < t.order(),
                   std::string(which) + ": contract mode out of range");
      SPARTA_CHECK(!seen[static_cast<std::size_t>(m)],
                   std::string(which) + ": duplicate contract mode");
      seen[static_cast<std::size_t>(m)] = true;
    }
    return seen;
  };
  const auto x_contract = check_list(x, cx, "cx");
  const auto y_contract = check_list(y, cy, "cy");

  for (std::size_t i = 0; i < cx.size(); ++i) {
    SPARTA_CHECK(x.dim(cx[i]) == y.dim(cy[i]),
                 "contract mode sizes must match (X mode " +
                     std::to_string(cx[i]) + " vs Y mode " +
                     std::to_string(cy[i]) + ")");
  }

  ModeSplit split;
  for (int m = 0; m < x.order(); ++m) {
    if (!x_contract[static_cast<std::size_t>(m)]) split.fx.push_back(m);
  }
  for (int m = 0; m < y.order(); ++m) {
    if (!y_contract[static_cast<std::size_t>(m)]) split.fy.push_back(m);
  }
  SPARTA_CHECK(!split.fx.empty() || !split.fy.empty(),
               "full contraction to a scalar needs at least one free mode");
  return split;
}

namespace {

// ---------------------------------------------------------------------
// Shared preparation
// ---------------------------------------------------------------------

// X permuted to [free..., contract...] and sorted, with sub-tensor
// boundaries ptrf over the free-mode prefix (paper's ptr_F).
struct PreparedX {
  SparseTensor t;
  std::vector<std::size_t> ptrf;  // num_subtensors + 1 entries
  std::size_t num_free = 0;
};

PreparedX prepare_x(const SparseTensor& x, const Modes& fx, const Modes& cx,
                    const CancelToken& cancel) {
  PreparedX px;
  px.num_free = fx.size();
  Modes order = fx;
  order.insert(order.end(), cx.begin(), cx.end());
  px.t = x;  // operands are const; work on a copy
  px.t.permute_modes(order);
  px.t.sort(cancel);

  // Boundaries of runs with equal free-mode prefix.
  px.ptrf.push_back(0);
  const std::size_t n = px.t.nnz();
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t m = 0; m < px.num_free; ++m) {
      if (px.t.index(i - 1, static_cast<int>(m)) !=
          px.t.index(i, static_cast<int>(m))) {
        px.ptrf.push_back(i);
        break;
      }
    }
  }
  if (n > 0) px.ptrf.push_back(n);
  return px;
}

// Y permuted to [contract..., free...] and sorted (COO variants only).
SparseTensor prepare_y_coo(const SparseTensor& y, const Modes& cy,
                           const Modes& fy, const CancelToken& cancel) {
  Modes order = cy;
  order.insert(order.end(), fy.begin(), fy.end());
  SparseTensor t = y;
  t.permute_modes(order);
  t.sort(cancel);
  return t;
}

std::vector<index_t> gather_dims(const SparseTensor& t, const Modes& modes) {
  std::vector<index_t> d;
  d.reserve(modes.size());
  for (int m : modes) d.push_back(t.dim(m));
  return d;
}

// ---------------------------------------------------------------------
// Thread-local output staging (Z_local, §3.5)
// ---------------------------------------------------------------------

struct ZLocal {
  std::vector<index_t> coords;  // z_order entries per element, row-major
  std::vector<value_t> vals;

  [[nodiscard]] std::size_t footprint_bytes() const {
    return coords.capacity() * sizeof(index_t) +
           vals.capacity() * sizeof(value_t);
  }
};

// Per-thread stage-time tallies for the three computation stages, plus
// the matching hardware-counter deltas (zero/unavailable unless
// perfctr_enabled() — see obs/perfctr.hpp).
struct ThreadTimes {
  double search = 0;
  double accumulate = 0;
  double writeback = 0;
  obs::PerfDelta search_perf;
  obs::PerfDelta accumulate_perf;
  obs::PerfDelta writeback_perf;
};

// Samples the calling thread's counter group around one stage segment.
// finish() accumulates the delta into `into` and, when the surrounding
// span is being traced, attaches it as the span's args so per-segment
// counter values land next to the timing in the Chrome trace. Disabled
// cost (the default): one relaxed load + branch at each end.
class PerfScope {
 public:
  PerfScope(obs::Span& span, obs::PerfDelta& into)
      : span_(span), into_(into), on_(obs::perfctr_enabled()) {
    if (on_) start_ = obs::PerfCounterGroup::for_current_thread().sample();
  }
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;
  ~PerfScope() { finish(); }

  void finish() {
    if (done_) return;
    done_ = true;
    if (!on_) return;
    const obs::PerfDelta d = obs::PerfCounterGroup::delta(
        start_, obs::PerfCounterGroup::for_current_thread().sample());
    into_ += d;
    if (d.available && span_.active()) span_.set_args(d.to_json());
  }

 private:
  obs::Span& span_;
  obs::PerfDelta& into_;
  bool on_;
  bool done_ = false;
  obs::PerfSample start_;
};

// Scratch describing the Y items matched by one X non-zero.
struct CooMatch {
  std::size_t begin;
  std::size_t end;
  value_t xval;
};
struct HtMatch {
  std::span<const FreeItem> items;
  value_t xval;
};

// ---------------------------------------------------------------------
// COO linear index search (Algorithm 1, stage ②)
// ---------------------------------------------------------------------

// Scans Y's non-zeros from the start, comparing the m leading (contract)
// index columns lexicographically, until the run matching `target` is
// found or passed (Y is sorted, so passing means absent). Returns the
// matching [begin, end) range. O(nnz_Y) — deliberately the baseline cost.
std::pair<std::size_t, std::size_t> coo_linear_search(
    const SparseTensor& y, std::size_t m, std::span<const index_t> target) {
  const std::size_t n = y.nnz();
  std::size_t i = 0;
  for (; i < n; ++i) {
    int cmp = 0;
    for (std::size_t k = 0; k < m; ++k) {
      const index_t yi = y.index(i, static_cast<int>(k));
      if (yi != target[k]) {
        cmp = yi < target[k] ? -1 : 1;
        break;
      }
    }
    if (cmp == 0) break;    // found the start of the run
    if (cmp > 0) return {i, i};  // passed it: absent
  }
  std::size_t e = i;
  for (; e < n; ++e) {
    bool same = true;
    for (std::size_t k = 0; k < m; ++k) {
      if (y.index(e, static_cast<int>(k)) != target[k]) {
        same = false;
        break;
      }
    }
    if (!same) break;
  }
  return {i, e};
}

// O(log nnz_Y) binary search for the run matching `target` — the
// kCooBinary extension sitting between the linear scan and the HtY
// probe. Returns the matching [begin, end) range.
std::pair<std::size_t, std::size_t> coo_binary_search(
    const SparseTensor& y, std::size_t m, std::span<const index_t> target) {
  const std::size_t n = y.nnz();
  auto row_less_than_target = [&](std::size_t row) {
    for (std::size_t k = 0; k < m; ++k) {
      const index_t yi = y.index(row, static_cast<int>(k));
      if (yi != target[k]) return yi < target[k];
    }
    return false;
  };
  std::size_t lo = 0, hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (row_less_than_target(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  std::size_t e = lo;
  for (; e < n; ++e) {
    bool same = true;
    for (std::size_t k = 0; k < m; ++k) {
      if (y.index(e, static_cast<int>(k)) != target[k]) {
        same = false;
        break;
      }
    }
    if (!same) break;
  }
  return {lo, e};
}

// ---------------------------------------------------------------------
// Computation driver
// ---------------------------------------------------------------------

// Everything the three per-algorithm kernels share: the parallel loop
// over X sub-tensors, per-thread Z_local staging, timing, and counters.
// `Body` supplies the algorithm-specific search + accumulate + drain for
// one sub-tensor. Signature:
//   body(tid, sub_begin, sub_end, zl, times)
template <typename Body>
void parallel_over_subtensors(const PreparedX& px, int nthreads, bool shared,
                              std::vector<ZLocal>& zlocals,
                              std::vector<ThreadTimes>& times,
                              AllocationRegistry* reg,
                              const CancelToken& cancel, Body&& body) {
  const auto num_sub = static_cast<std::ptrdiff_t>(
      px.ptrf.empty() ? 0 : px.ptrf.size() - 1);
  // Shared-writeback ablation: one buffer, serialized by the caller's
  // mutex, instead of one staging buffer per thread.
  zlocals.assign(shared ? 1 : static_cast<std::size_t>(nthreads), {});
  times.assign(static_cast<std::size_t>(nthreads), {});

  // Tracked Z_local charges, one per staging buffer (shared mode is
  // ablation-only and never budget-tracked; validate() enforces that).
  std::vector<ScopedCharge> zl_charges;
  if (reg && !shared) {
    zl_charges.reserve(zlocals.size());
    for (std::size_t t = 0; t < zlocals.size(); ++t) {
      zl_charges.emplace_back(reg, Tier::kDram, DataObject::kZlocal);
    }
  }

  // A worker that throws (budget overflow, bad_alloc, injected fault)
  // must not unwind across the omp boundary: capture, drain, rethrow.
  ExceptionCollector ec;
  // OpenMP pool threads keep thread-locals across regions, so the
  // spawning thread's request id must be re-established inside the
  // region — otherwise a pooled worker would stamp this request's
  // spans with whatever id its previous request left behind.
  const obs::Correlation corr = obs::current_correlation();
#pragma omp parallel num_threads(nthreads)
  {
    obs::RequestIdScope rid_scope(corr);
    const auto tid = static_cast<std::size_t>(thread_id());
#pragma omp for schedule(dynamic, 16)
    for (std::ptrdiff_t f = 0; f < num_sub; ++f) {
      ec.run([&] {
        // Cooperative cancel point, once per X sub-tensor: Cancelled is
        // captured by the collector like any worker fault, the remaining
        // chunks drain as no-ops, and the spawning thread rethrows —
        // bounding cancel-to-return latency by one chunk's work.
        cancel.check("contract.chunk");
        ZLocal& zl = zlocals[shared ? 0 : tid];
        body(tid, px.ptrf[static_cast<std::size_t>(f)],
             px.ptrf[static_cast<std::size_t>(f) + 1], zl, times[tid]);
        if (!zl_charges.empty()) zl_charges[tid].update(zl.footprint_bytes());
      });
    }
  }
  ec.rethrow();
}

// Appends one output element (fx prefix ++ fy indices, value) to Z_local.
inline void emit(ZLocal& zl, const SparseTensor& xt, std::size_t sub_begin,
                 std::size_t num_free_x, std::span<const index_t> fy_coords,
                 value_t v) {
  for (std::size_t m = 0; m < num_free_x; ++m) {
    zl.coords.push_back(xt.index(sub_begin, static_cast<int>(m)));
  }
  zl.coords.insert(zl.coords.end(), fy_coords.begin(), fy_coords.end());
  zl.vals.push_back(v);
}

// ---------------------------------------------------------------------
// Access-profile synthesis (memsim substrate; DESIGN.md §2)
// ---------------------------------------------------------------------

// Approximate traffic of sorting n elements of `row_bytes` each. The
// LN-pair sort streams (key, position) pairs through log-factor
// partition passes — overwhelmingly sequential — with a final
// permutation gather/scatter whose random accesses hit whole cache
// lines (hence the /8 on access counts).
void add_sort_traffic(AccessStats& s, std::uint64_t n,
                      std::uint64_t row_bytes) {
  if (n == 0) return;
  const auto logn = static_cast<std::uint64_t>(
      std::max(1.0, std::log2(static_cast<double>(n))));
  s.bytes_read_seq += n * row_bytes + n * 16 * logn / 2;
  s.bytes_written_seq += n * row_bytes + n * 16 * logn / 2;
  s.bytes_read_rand += n * row_bytes / 4;
  s.bytes_written_rand += n * row_bytes / 4;
  s.rand_reads += n / 8;
  s.rand_writes += n / 8;
}

struct ProfileInputs {
  Algorithm alg;
  std::size_t x_row_bytes;
  std::size_t y_contract_bytes;  // bytes of contract columns per Y element
  std::size_t y_row_bytes;
  std::size_t z_row_bytes;
  std::uint64_t scanned_y_elements;  // COO linear-search traffic
};

void fill_access_profile(AccessProfile& p, const ContractStats& st,
                         const ProfileInputs& in) {
  constexpr std::uint64_t kHtyProbeBytes = 32;   // bucket ptr + group header
  constexpr std::uint64_t kHtyItemBytes = sizeof(FreeItem);
  constexpr std::uint64_t kHtaEntryBytes = 24;   // key + value + chain slot

  // ① input processing: X permute+sort; Y sort (COO) or HtY build.
  add_sort_traffic(p.at(Stage::kInputProcessing, DataObject::kX), st.nnz_x,
                   in.x_row_bytes);
  if (in.alg == Algorithm::kSparta) {
    auto& y = p.at(Stage::kInputProcessing, DataObject::kY);
    y.bytes_read_seq += st.nnz_y * in.y_row_bytes;
    // Building HtY probes the bucket chain (read) then appends (write).
    auto& hty = p.at(Stage::kInputProcessing, DataObject::kHtY);
    hty.bytes_read_rand += st.nnz_y * kHtyProbeBytes;
    hty.rand_reads += st.nnz_y;
    hty.bytes_written_rand += st.nnz_y * (kHtyProbeBytes + kHtyItemBytes);
    hty.rand_writes += st.nnz_y;
  } else {
    add_sort_traffic(p.at(Stage::kInputProcessing, DataObject::kY), st.nnz_y,
                     in.y_row_bytes);
  }

  // ② index search: X contract columns stream in; HtY is probed randomly
  // (Sparta) or Y is scanned (COO variants).
  {
    auto& x = p.at(Stage::kIndexSearch, DataObject::kX);
    x.bytes_read_seq += st.nnz_x * in.x_row_bytes;
    if (in.alg == Algorithm::kSparta) {
      // Each probe walks the bucket pointer plus on average one chain
      // node — two dependent random reads.
      auto& hty = p.at(Stage::kIndexSearch, DataObject::kHtY);
      hty.bytes_read_rand += st.searches * 2 * kHtyProbeBytes;
      hty.rand_reads += st.searches * 2;
    } else {
      auto& y = p.at(Stage::kIndexSearch, DataObject::kY);
      y.bytes_read_seq += in.scanned_y_elements * in.y_contract_bytes;
    }
  }

  // ③ accumulation: matched items stream from HtY/Y; the accumulator is
  // hit randomly once per multiply.
  {
    const DataObject src =
        in.alg == Algorithm::kSparta ? DataObject::kHtY : DataObject::kY;
    auto& s = p.at(Stage::kAccumulation, src);
    s.bytes_read_seq += st.multiplies * kHtyItemBytes;
    auto& a = p.at(Stage::kAccumulation, DataObject::kHtA);
    a.bytes_read_rand += st.multiplies * kHtaEntryBytes;
    a.bytes_written_rand += st.multiplies * kHtaEntryBytes;
    a.rand_reads += st.multiplies;
    a.rand_writes += st.multiplies;
    // New entries are appended to Z_local as they first appear
    // (Table 2: Z_local is Seq,WO during accumulation).
    auto& zl = p.at(Stage::kAccumulation, DataObject::kZlocal);
    zl.bytes_written_seq += st.nnz_z * in.z_row_bytes;
  }

  // ④ writeback: drain accumulators to Z_local, then gather into Z.
  {
    auto& a = p.at(Stage::kWriteback, DataObject::kHtA);
    a.bytes_read_seq += st.nnz_z * kHtaEntryBytes;
    auto& zl = p.at(Stage::kWriteback, DataObject::kZlocal);
    zl.bytes_read_seq += st.nnz_z * in.z_row_bytes;  // gather pass
    auto& z = p.at(Stage::kWriteback, DataObject::kZ);
    z.bytes_written_seq += st.nnz_z * in.z_row_bytes;
  }

  // ⑤ output sorting.
  add_sort_traffic(p.at(Stage::kOutputSorting, DataObject::kZ), st.nnz_z,
                   in.z_row_bytes);
}

}  // namespace

// ---------------------------------------------------------------------
// contract()
// ---------------------------------------------------------------------

namespace {

// Shared implementation behind both public entry points: exactly one of
// `y` (ad-hoc contraction) and `plan` (prebuilt HtY) is non-null.
// Restores a registry's previous capacity on scope exit, so a budgeted
// call cannot leave a hard cap behind on a caller-owned registry.
struct CapacityGuard {
  AllocationRegistry* reg = nullptr;
  std::size_t prev = 0;
  CapacityGuard() = default;
  CapacityGuard(const CapacityGuard&) = delete;
  CapacityGuard& operator=(const CapacityGuard&) = delete;
  ~CapacityGuard() {
    if (reg) reg->set_capacity(prev);
  }
};

// Smallest power of two >= max(want, 16) — mirrors the bucket sizing of
// GroupedHashMap / HashAccumulator so pre-flight estimates use the same
// bucket counts the real tables will.
std::size_t pow2_buckets(std::size_t want) {
  std::size_t b = 16;
  while (b < want) b <<= 1;
  return b;
}

ContractResult contract_impl(const SparseTensor& x, const SparseTensor* y,
                             const YPlan* plan, const Modes& cx,
                             const Modes& cy, const ContractOptions& opts) {
  opts.validate();
  if (opts.trace) obs::TraceRecorder::global().enable();
  ModeSplit split;
  if (y) {
    split = validate_modes(x, *y, cx, cy);
  } else {
    SPARTA_CHECK(cx.size() == plan->cy().size(),
                 "cx arity must match the plan's contract modes");
    std::vector<bool> seen(static_cast<std::size_t>(x.order()), false);
    for (std::size_t i = 0; i < cx.size(); ++i) {
      const int mm = cx[i];
      SPARTA_CHECK(mm >= 0 && mm < x.order(), "cx: mode out of range");
      SPARTA_CHECK(!seen[static_cast<std::size_t>(mm)],
                   "cx: duplicate contract mode");
      seen[static_cast<std::size_t>(mm)] = true;
      SPARTA_CHECK(x.dim(mm) == plan->contract_dims()[i],
                   "contract mode sizes must match the plan");
    }
    for (int mm = 0; mm < x.order(); ++mm) {
      if (!seen[static_cast<std::size_t>(mm)]) split.fx.push_back(mm);
    }
    split.fy = plan->fy();
    SPARTA_CHECK(!split.fx.empty() || !split.fy.empty(),
                 "full contraction to a scalar needs at least one free mode");
  }
  const std::size_t m = cx.size();
  const std::size_t nfx = split.fx.size();
  const std::size_t nfy = split.fy.size();

  // Plan-time LN-space gate (§3.3): both linearized key spaces — the
  // contract tuple (HtY keys) and Y's free tuple (HtA keys) — must fit
  // 64 bits. Reject here, before the O(nnz log nnz) input processing,
  // with a diagnostic naming the dims, instead of wrapping silently or
  // failing mid-pipeline from a LinearIndexer deep in stage ①.
  {
    std::vector<index_t> cdims;
    cdims.reserve(m);
    for (int mm : cx) cdims.push_back(x.dim(mm));
    check_ln_space("contract-mode key space", cdims);
    const std::vector<index_t> fydims =
        y ? [&] {
          std::vector<index_t> d;
          d.reserve(nfy);
          for (int mm : split.fy) d.push_back(y->dim(mm));
          return d;
        }()
          : plan->free_dims();
    check_ln_space("Y free-mode key space", fydims);
  }

  const int nthreads = opts.num_threads > 0 ? opts.num_threads : max_threads();

  // Budget / tracked-allocation machinery. The registry outlives every
  // ScopedCharge below; a private one serves when the caller wants
  // runtime enforcement but supplied none.
  AllocationRegistry local_registry;
  AllocationRegistry* reg = opts.registry;
  const bool budgeted = opts.budget.bytes > 0;
  if (!reg && budgeted && opts.budget.runtime) reg = &local_registry;
  CapacityGuard cap_guard;
  if (reg && budgeted && opts.budget.runtime) {
    cap_guard.reg = reg;
    cap_guard.prev = reg->capacity();
    reg->set_capacity(opts.budget.bytes);
  }

  // Eq. 5/6 pre-flight gate: rejects a predicted-footprint overflow
  // before the corresponding object is allocated (paper §4.2).
  auto preflight_gate = [&](const char* what, std::size_t estimate) {
    if (!budgeted || !opts.budget.preflight) return;
    if (estimate > opts.budget.bytes) {
      throw BudgetExceeded(
          std::string("pre-flight: estimated ") + what + " footprint of " +
              std::to_string(estimate) + " bytes exceeds the " +
              std::to_string(opts.budget.bytes) + "-byte budget",
          estimate, opts.budget.bytes, 0);
    }
  };

  ContractResult res;
  res.stats.nnz_x = x.nnz();
  res.stats.nnz_y = y ? y->nnz() : plan->nnz_y();

  // Correlation scope for every span/instant this contraction emits.
  // A request-scoped caller (the service) passes its id through
  // opts.request_id; standalone callers keep whatever ambient id the
  // thread already carries (usually 0 = untagged).
  obs::Correlation corr = obs::current_correlation();
  if (opts.request_id != 0) corr.request_id = opts.request_id;
  obs::RequestIdScope rid_scope(corr);

  // Whole-call span; the per-stage spans below nest under it.
  obs::Span sp_contract("contract");
  if (sp_contract.active()) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("algorithm").value(algorithm_name(opts.algorithm));
    w.key("nnz_x").value(static_cast<std::uint64_t>(res.stats.nnz_x));
    w.key("nnz_y").value(static_cast<std::uint64_t>(res.stats.nnz_y));
    w.end_object();
    sp_contract.set_args(w.str());
  }

  // Z shape: free X dims then free Y dims.
  std::vector<index_t> zdims = gather_dims(x, split.fx);
  {
    const auto ydims = y ? gather_dims(*y, split.fy) : plan->free_dims();
    zdims.insert(zdims.end(), ydims.begin(), ydims.end());
  }
  const std::size_t zorder = zdims.size();

  if (x.empty() || res.stats.nnz_y == 0) {
    res.z = SparseTensor(zdims);
    return res;
  }

  // ------------------------------------------------------------------
  // ① Input processing
  // ------------------------------------------------------------------
  Timer t_input;
  obs::Span sp_input("input_processing");
  PerfScope pp_input(sp_input, res.stats.perf.at(Stage::kInputProcessing));
  SPARTA_FAILPOINT("contract.input");
  opts.cancel.check("contract.input");

  PreparedX px;
  {
    obs::Span sp("permute_sort_x");
    px = prepare_x(x, split.fx, cx, opts.cancel);
  }
  res.stats.num_x_subtensors = px.ptrf.size() - 1;
  for (std::size_t f = 0; f + 1 < px.ptrf.size(); ++f) {
    res.stats.max_x_subtensor =
        std::max(res.stats.max_x_subtensor, px.ptrf[f + 1] - px.ptrf[f]);
  }

  ScopedCharge x_charge(reg, Tier::kDram, DataObject::kX);
  x_charge.update(px.t.footprint_bytes());

  // LN linearizers for the contract tuple and Y's free tuple.
  const LinearIndexer clin(gather_dims(x, cx));
  LinearIndexer fylin_coo;            // COO variants build their own
  const LinearIndexer* fylin = nullptr;

  SparseTensor ycoo;                  // COO variants
  std::unique_ptr<YPlan> plan_local;  // Sparta without an external plan
  const YPlan* active_plan = plan;
  ScopedCharge y_charge(reg, Tier::kDram,
                        opts.algorithm == Algorithm::kSparta
                            ? DataObject::kHtY
                            : DataObject::kY);
  if (opts.algorithm == Algorithm::kSparta) {
    // A prebuilt plan whose HtY an external cache already charged (the
    // serving layer's plan cache) is resident memory this request does
    // not add: skip both the Eq. 5 HtY term and the registry charge.
    const bool hty_external = plan != nullptr && opts.hty_charged_externally;
    // Eq. 5 gate before HtY is built: its size is an exact function of
    // tensor metadata, so an oversized table is rejected up front.
    preflight_gate(
        "X + HtY (Eq. 5)",
        px.t.footprint_bytes() +
            (hty_external
                 ? 0
                 : estimate_hty_bytes(
                       res.stats.nnz_y,
                       y ? y->order()
                         : static_cast<int>(plan->y_dims().size()),
                       pow2_buckets(opts.hty_buckets > 0
                                        ? opts.hty_buckets
                                        : res.stats.nnz_y))));
    if (!active_plan) {
      plan_local = std::make_unique<YPlan>(*y, cy, opts.hty_buckets,
                                           nthreads, opts.use_swiss_tables,
                                           opts.cancel);
      active_plan = plan_local.get();
    }
    fylin = &active_plan->fy_indexer();
    res.stats.num_y_keys = active_plan->num_keys();
    res.stats.max_y_group = active_plan->max_group();
    res.stats.hty_bytes = active_plan->hty_footprint_bytes();
    if (!hty_external) y_charge.update(res.stats.hty_bytes);
  } else {
    preflight_gate("X + sorted-Y copies",
                   px.t.footprint_bytes() + y->footprint_bytes());
    {
      obs::Span sp("sort_y");
      ycoo = prepare_y_coo(*y, cy, split.fy, opts.cancel);
    }
    fylin_coo = LinearIndexer(nfy > 0 ? gather_dims(*y, split.fy)
                                      : std::vector<index_t>{1});
    fylin = &fylin_coo;
    y_charge.update(ycoo.footprint_bytes());
    // The COO variants' accumulators key on the same contract groups as
    // HtY; derive max_y_group from the sorted copy for the Eq. 6 gate.
    if (budgeted && opts.budget.preflight) {
      std::size_t run = 0;
      for (std::size_t i = 0; i < ycoo.nnz(); ++i) {
        bool same = i > 0;
        for (std::size_t k = 0; same && k < m; ++k) {
          same = ycoo.index(i - 1, static_cast<int>(k)) ==
                 ycoo.index(i, static_cast<int>(k));
        }
        run = same ? run + 1 : 1;
        res.stats.max_y_group = std::max(res.stats.max_y_group, run);
      }
    }
  }

  // Eq. 6 gate: nnz_Fmax^X and nnz_Fmax^Y are both known now, before any
  // accumulator is touched. The bound is per thread; every thread owns
  // one accumulator.
  if (budgeted && opts.budget.preflight) {
    const std::size_t hta_buckets = pow2_buckets(
        std::max<std::size_t>(res.stats.max_y_group, 64));
    const std::size_t est_hta =
        estimate_hta_bytes(res.stats.max_x_subtensor, res.stats.max_y_group,
                           static_cast<int>(nfy), hta_buckets) *
        static_cast<std::size_t>(nthreads);
    preflight_gate("inputs + HtA (Eq. 6)",
                   x_charge.charged() + y_charge.charged() + est_hta);
  }

  pp_input.finish();
  sp_input.finish();
  res.stage_times[Stage::kInputProcessing] = t_input.seconds();

  // ------------------------------------------------------------------
  // ②③④ Computation over X sub-tensors
  // ------------------------------------------------------------------
  std::vector<ZLocal> zlocals;
  std::vector<ThreadTimes> times;
  std::mutex writeback_mutex;  // shared-writeback ablation only
  std::atomic<std::uint64_t> total_searches{0};
  std::atomic<std::uint64_t> total_hits{0};
  std::atomic<std::uint64_t> total_multiplies{0};
  std::atomic<std::uint64_t> total_scanned{0};
  std::atomic<std::uint64_t> acc_bytes{0};

  // Tracked per-thread accumulator charges; inert when reg is null.
  std::vector<ScopedCharge> acc_charges;
  acc_charges.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    acc_charges.emplace_back(reg, Tier::kDram, DataObject::kHtA);
  }

  if (opts.algorithm == Algorithm::kSparta) {
    // Generic over both the accumulator type (chained / linear-probe /
    // swiss) and the HtY map (chained / swiss) so every variant shares
    // the exact same body.
    auto run_sparta = [&]<typename AccT>(std::vector<AccT>& accs,
                                         const auto& hty_map) {
    parallel_over_subtensors(
        px, nthreads, opts.ablation_shared_writeback, zlocals, times, reg,
        opts.cancel,
        [&](std::size_t tid, std::size_t b, std::size_t e, ZLocal& zl,
            ThreadTimes& tt) {
          AccT& acc = accs[tid];
          acc.clear();
          std::vector<index_t> ctuple(m);
          std::vector<HtMatch> matches;

          Timer t;
          obs::Span sp_search("index_search");
          PerfScope pp_search(sp_search, tt.search_perf);
          std::uint64_t searches = 0;
          std::uint64_t hits = 0;
          SPARTA_FAILPOINT("contract.search");
          opts.cancel.check("contract.search");
          for (std::size_t i = b; i < e; ++i) {
            for (std::size_t k = 0; k < m; ++k) {
              ctuple[k] = px.t.index(i, static_cast<int>(nfx + k));
            }
            const lnkey_t key = clin.linearize(ctuple);
            const auto items = hty_map.find(key);
            ++searches;
            if (!items.empty()) {
              ++hits;
              matches.push_back(HtMatch{items, px.t.value(i)});
            }
          }
          pp_search.finish();
          sp_search.finish();
          tt.search += t.seconds();

          t.reset();
          obs::Span sp_acc("accumulation");
          PerfScope pp_acc(sp_acc, tt.accumulate_perf);
          std::uint64_t mults = 0;
          SPARTA_FAILPOINT("contract.accumulate");
          opts.cancel.check("contract.accumulate");
          for (const HtMatch& mt : matches) {
            for (const FreeItem& it : mt.items) {
              acc.accumulate(it.free_key, mt.xval * it.val);
              ++mults;
            }
          }
          acc_charges[tid].update(acc.footprint_bytes());
          pp_acc.finish();
          sp_acc.finish();
          tt.accumulate += t.seconds();

          t.reset();
          obs::Span sp_wb("writeback");
          PerfScope pp_wb(sp_wb, tt.writeback_perf);
          SPARTA_FAILPOINT("contract.writeback");
          opts.cancel.check("contract.writeback");
          std::vector<index_t> fyc(std::max<std::size_t>(nfy, 1));
          std::unique_lock<std::mutex> wb_lock(writeback_mutex,
                                                std::defer_lock);
          if (opts.ablation_shared_writeback) wb_lock.lock();
          acc.drain([&](lnkey_t fkey, value_t v) {
            fylin->delinearize(fkey, fyc);
            emit(zl, px.t, b, nfx,
                 std::span<const index_t>(fyc.data(), nfy), v);
          });
          wb_lock = {};
          pp_wb.finish();
          sp_wb.finish();
          tt.writeback += t.seconds();

          total_searches += searches;
          total_hits += hits;
          total_multiplies += mults;
          acc_bytes.store(
              std::max(acc_bytes.load(std::memory_order_relaxed),
                       static_cast<std::uint64_t>(acc.footprint_bytes())),
              std::memory_order_relaxed);
        });
    };
    const std::size_t acc_hint =
        std::max<std::size_t>(res.stats.max_y_group, 64);
    // The plan's table kind governs HtY (an externally built plan may
    // differ from opts); the options govern the per-thread HtA.
    auto run_with_hty = [&](auto& accs) {
      if (active_plan->uses_swiss()) {
        run_sparta(accs, active_plan->swiss_hty());
      } else {
        run_sparta(accs, active_plan->hty());
      }
    };
    if (opts.use_swiss_tables) {
      std::vector<simd::SwissAccumulator> accs(
          static_cast<std::size_t>(nthreads),
          simd::SwissAccumulator(acc_hint));
      run_with_hty(accs);
    } else if (opts.use_linear_probe_hta) {
      std::vector<LinearProbeAccumulator> accs(
          static_cast<std::size_t>(nthreads),
          LinearProbeAccumulator(acc_hint));
      run_with_hty(accs);
    } else {
      std::vector<HashAccumulator> accs(static_cast<std::size_t>(nthreads),
                                        HashAccumulator(acc_hint));
      run_with_hty(accs);
    }
    // Accumulator footprint: per-thread peak × thread count.
    res.stats.hta_bytes =
        static_cast<std::size_t>(acc_bytes.load()) *
        static_cast<std::size_t>(nthreads);
  } else if (opts.algorithm == Algorithm::kCooHta ||
             opts.algorithm == Algorithm::kCooBinary) {
    const bool binary = opts.algorithm == Algorithm::kCooBinary;
    // Generic over the accumulator so use_swiss_tables swaps the HtA
    // here exactly as it does on the Sparta path.
    auto run_coo = [&]<typename AccT>(std::vector<AccT>& accs) {
    parallel_over_subtensors(
        px, nthreads, opts.ablation_shared_writeback, zlocals, times, reg,
        opts.cancel,
        [&](std::size_t tid, std::size_t b, std::size_t e, ZLocal& zl,
            ThreadTimes& tt) {
          AccT& acc = accs[tid];
          acc.clear();
          std::vector<index_t> ctuple(m);
          std::vector<CooMatch> matches;

          Timer t;
          obs::Span sp_search("index_search");
          PerfScope pp_search(sp_search, tt.search_perf);
          std::uint64_t searches = 0;
          std::uint64_t hits = 0;
          std::uint64_t scanned = 0;
          SPARTA_FAILPOINT("contract.search");
          opts.cancel.check("contract.search");
          for (std::size_t i = b; i < e; ++i) {
            for (std::size_t k = 0; k < m; ++k) {
              ctuple[k] = px.t.index(i, static_cast<int>(nfx + k));
            }
            const auto [yb, ye] = binary
                                      ? coo_binary_search(ycoo, m, ctuple)
                                      : coo_linear_search(ycoo, m, ctuple);
            ++searches;
            scanned += binary ? 64 : ye;  // elements touched by the search
            if (yb != ye) {
              ++hits;
              matches.push_back(CooMatch{yb, ye, px.t.value(i)});
            }
          }
          pp_search.finish();
          sp_search.finish();
          tt.search += t.seconds();

          t.reset();
          obs::Span sp_acc("accumulation");
          PerfScope pp_acc(sp_acc, tt.accumulate_perf);
          std::uint64_t mults = 0;
          SPARTA_FAILPOINT("contract.accumulate");
          opts.cancel.check("contract.accumulate");
          std::vector<index_t> fyc(std::max<std::size_t>(nfy, 1));
          for (const CooMatch& mt : matches) {
            for (std::size_t j = mt.begin; j < mt.end; ++j) {
              // The COO variant pays the index→LN conversion per item —
              // exactly the cost HtY's precomputed free keys avoid.
              for (std::size_t k = 0; k < nfy; ++k) {
                fyc[k] = ycoo.index(j, static_cast<int>(m + k));
              }
              const lnkey_t fkey =
                  nfy > 0 ? fylin->linearize(
                                std::span<const index_t>(fyc.data(), nfy))
                          : 0;
              acc.accumulate(fkey, mt.xval * ycoo.value(j));
              ++mults;
            }
          }
          acc_charges[tid].update(acc.footprint_bytes());
          pp_acc.finish();
          sp_acc.finish();
          tt.accumulate += t.seconds();

          t.reset();
          obs::Span sp_wb("writeback");
          PerfScope pp_wb(sp_wb, tt.writeback_perf);
          SPARTA_FAILPOINT("contract.writeback");
          opts.cancel.check("contract.writeback");
          std::unique_lock<std::mutex> wb_lock(writeback_mutex,
                                                std::defer_lock);
          if (opts.ablation_shared_writeback) wb_lock.lock();
          acc.drain([&](lnkey_t fkey, value_t v) {
            fylin->delinearize(fkey, fyc);
            emit(zl, px.t, b, nfx,
                 std::span<const index_t>(fyc.data(), nfy), v);
          });
          wb_lock = {};
          pp_wb.finish();
          sp_wb.finish();
          tt.writeback += t.seconds();

          total_searches += searches;
          total_hits += hits;
          total_multiplies += mults;
          total_scanned += scanned;
          acc_bytes.store(
              std::max(acc_bytes.load(std::memory_order_relaxed),
                       static_cast<std::uint64_t>(acc.footprint_bytes())),
              std::memory_order_relaxed);
        });
    };
    if (opts.use_swiss_tables) {
      std::vector<simd::SwissAccumulator> accs(
          static_cast<std::size_t>(nthreads), simd::SwissAccumulator(64));
      run_coo(accs);
    } else {
      std::vector<HashAccumulator> accs(static_cast<std::size_t>(nthreads),
                                        HashAccumulator(64));
      run_coo(accs);
    }
    res.stats.hta_bytes =
        static_cast<std::size_t>(acc_bytes.load()) *
        static_cast<std::size_t>(nthreads);
  } else {  // Algorithm::kSpa
    parallel_over_subtensors(
        px, nthreads, opts.ablation_shared_writeback, zlocals, times, reg,
        opts.cancel,
        [&](std::size_t tid, std::size_t b, std::size_t e, ZLocal& zl,
            ThreadTimes& tt) {
          SpaAccumulator spa(nfy);
          std::vector<index_t> ctuple(m);
          std::vector<CooMatch> matches;

          Timer t;
          obs::Span sp_search("index_search");
          PerfScope pp_search(sp_search, tt.search_perf);
          std::uint64_t searches = 0;
          std::uint64_t hits = 0;
          std::uint64_t scanned = 0;
          SPARTA_FAILPOINT("contract.search");
          opts.cancel.check("contract.search");
          for (std::size_t i = b; i < e; ++i) {
            for (std::size_t k = 0; k < m; ++k) {
              ctuple[k] = px.t.index(i, static_cast<int>(nfx + k));
            }
            const auto [yb, ye] = coo_linear_search(ycoo, m, ctuple);
            ++searches;
            scanned += ye;
            if (yb != ye) {
              ++hits;
              matches.push_back(CooMatch{yb, ye, px.t.value(i)});
            }
          }
          pp_search.finish();
          sp_search.finish();
          tt.search += t.seconds();

          t.reset();
          obs::Span sp_acc("accumulation");
          PerfScope pp_acc(sp_acc, tt.accumulate_perf);
          std::uint64_t mults = 0;
          SPARTA_FAILPOINT("contract.accumulate");
          opts.cancel.check("contract.accumulate");
          std::vector<index_t> fyc(std::max<std::size_t>(nfy, 1));
          for (const CooMatch& mt : matches) {
            for (std::size_t j = mt.begin; j < mt.end; ++j) {
              for (std::size_t k = 0; k < nfy; ++k) {
                fyc[k] = ycoo.index(j, static_cast<int>(m + k));
              }
              spa.accumulate(std::span<const index_t>(fyc.data(), nfy),
                             mt.xval * ycoo.value(j));
              ++mults;
            }
          }
          acc_charges[tid].update(spa.footprint_bytes());
          pp_acc.finish();
          sp_acc.finish();
          tt.accumulate += t.seconds();

          t.reset();
          obs::Span sp_wb("writeback");
          PerfScope pp_wb(sp_wb, tt.writeback_perf);
          SPARTA_FAILPOINT("contract.writeback");
          opts.cancel.check("contract.writeback");
          std::unique_lock<std::mutex> wb_lock(writeback_mutex,
                                                std::defer_lock);
          if (opts.ablation_shared_writeback) wb_lock.lock();
          for (std::size_t i = 0; i < spa.size(); ++i) {
            emit(zl, px.t, b, nfx, spa.key(i), spa.value(i));
          }
          wb_lock = {};
          spa.clear();
          pp_wb.finish();
          sp_wb.finish();
          tt.writeback += t.seconds();

          total_searches += searches;
          total_hits += hits;
          total_multiplies += mults;
          total_scanned += scanned;
          acc_bytes.store(
              std::max(acc_bytes.load(std::memory_order_relaxed),
                       static_cast<std::uint64_t>(spa.footprint_bytes())),
              std::memory_order_relaxed);
        });
    res.stats.hta_bytes =
        static_cast<std::size_t>(acc_bytes.load()) *
        static_cast<std::size_t>(nthreads);
  }

  res.stats.searches = total_searches.load();
  res.stats.hits = total_hits.load();
  res.stats.multiplies = total_multiplies.load();

  // Average per-thread stage time — equals wall time when threads are
  // balanced, and matches the paper's per-stage presentation.
  {
    double s = 0, a = 0, w = 0;
    for (const ThreadTimes& tt : times) {
      s += tt.search;
      a += tt.accumulate;
      w += tt.writeback;
    }
    const auto nt = static_cast<double>(nthreads);
    res.stage_times[Stage::kIndexSearch] = s / nt;
    res.stage_times[Stage::kAccumulation] = a / nt;
    res.stage_times[Stage::kWriteback] = w / nt;
    // Hardware counters sum across threads (a cycle spent on any core is
    // a cycle of work) — no averaging, unlike the wall times above.
    for (const ThreadTimes& tt : times) {
      res.stats.perf.at(Stage::kIndexSearch) += tt.search_perf;
      res.stats.perf.at(Stage::kAccumulation) += tt.accumulate_perf;
      res.stats.perf.at(Stage::kWriteback) += tt.writeback_perf;
    }
  }

  // ------------------------------------------------------------------
  // ④ (continued) Gather thread-local Z_local buffers into Z
  // ------------------------------------------------------------------
  Timer t_gather;
  obs::Span sp_gather("gather");
  PerfScope pp_gather(sp_gather, res.stats.perf.at(Stage::kWriteback));
  std::size_t total_z = 0;
  std::vector<std::size_t> offsets(zlocals.size() + 1, 0);
  for (std::size_t t = 0; t < zlocals.size(); ++t) {
    offsets[t] = total_z;
    total_z += zlocals[t].vals.size();
  }
  offsets[zlocals.size()] = total_z;

  // Z's size is exact here; gate the gather arrays before allocating.
  ScopedCharge z_charge(reg, Tier::kDram, DataObject::kZ);
  z_charge.update(total_z *
                  (zorder * sizeof(index_t) + sizeof(value_t)));

  std::vector<std::vector<index_t>> zcols(zorder);
  for (auto& col : zcols) col.resize(total_z);
  std::vector<value_t> zvals(total_z);

  {
    const auto nt = static_cast<std::ptrdiff_t>(zlocals.size());
    ExceptionCollector ec;
    const obs::Correlation corr = obs::current_correlation();
#pragma omp parallel for schedule(static) num_threads(nthreads)
    for (std::ptrdiff_t t = 0; t < nt; ++t) {
      ec.run([&, t] {
        obs::RequestIdScope rid_scope(corr);
        opts.cancel.check("contract.gather");
        const ZLocal& zl = zlocals[static_cast<std::size_t>(t)];
        std::size_t dst = offsets[static_cast<std::size_t>(t)];
        for (std::size_t i = 0; i < zl.vals.size(); ++i, ++dst) {
          for (std::size_t mcol = 0; mcol < zorder; ++mcol) {
            zcols[mcol][dst] = zl.coords[i * zorder + mcol];
          }
          zvals[dst] = zl.vals[i];
        }
      });
    }
    ec.rethrow();
  }

  std::size_t zlocal_bytes = 0;
  for (const ZLocal& zl : zlocals) zlocal_bytes += zl.footprint_bytes();
  res.stats.zlocal_bytes = zlocal_bytes;

  res.z = SparseTensor::from_columns(std::move(zdims), std::move(zcols),
                                     std::move(zvals));
  pp_gather.finish();
  sp_gather.finish();
  res.stage_times[Stage::kWriteback] += t_gather.seconds();
  res.stats.nnz_z = res.z.nnz();
  res.stats.z_bytes = res.z.footprint_bytes();

  // ------------------------------------------------------------------
  // ⑤ Output sorting
  // ------------------------------------------------------------------
  if (opts.sort_output) {
    SPARTA_FAILPOINT("contract.sort");
    opts.cancel.check("contract.sort");
    Timer t_sort;
    obs::Span sp_sort("output_sorting");
    PerfScope pp_sort(sp_sort, res.stats.perf.at(Stage::kOutputSorting));
    res.z.sort(opts.cancel);
    pp_sort.finish();
    sp_sort.finish();
    res.stage_times[Stage::kOutputSorting] = t_sort.seconds();
  }

  // ------------------------------------------------------------------
  // Access profile for the memory simulator
  // ------------------------------------------------------------------
  if (opts.collect_access_profile) {
    ProfileInputs in;
    in.alg = opts.algorithm;
    in.x_row_bytes =
        static_cast<std::size_t>(x.order()) * sizeof(index_t) +
        sizeof(value_t);
    in.y_contract_bytes = m * sizeof(index_t);
    const std::size_t y_order =
        y ? static_cast<std::size_t>(y->order()) : plan->y_dims().size();
    in.y_row_bytes = y_order * sizeof(index_t) + sizeof(value_t);
    in.z_row_bytes = zorder * sizeof(index_t) + sizeof(value_t);
    in.scanned_y_elements = total_scanned.load();
    fill_access_profile(res.profile, res.stats, in);

    res.profile.set_footprint(DataObject::kX, px.t.footprint_bytes());
    res.profile.set_footprint(DataObject::kY,
                              opts.algorithm == Algorithm::kSparta
                                  ? active_plan->y_footprint_bytes()
                                  : ycoo.footprint_bytes());
    res.profile.set_footprint(DataObject::kHtY, res.stats.hty_bytes);
    res.profile.set_footprint(DataObject::kHtA, res.stats.hta_bytes);
    res.profile.set_footprint(DataObject::kZlocal, res.stats.zlocal_bytes);
    res.profile.set_footprint(DataObject::kZ, res.stats.z_bytes);
    res.profile.measured = res.stage_times;
  }

  // ------------------------------------------------------------------
  // Observability export: absorb the per-call ContractStats into the
  // global metrics registry, and mirror the headline counters onto the
  // trace's "contract" counter track.
  // ------------------------------------------------------------------
  if (obs::metrics_enabled()) {
    auto& mreg = obs::MetricsRegistry::global();
    mreg.counter("contract.calls").add_unchecked(1);
    mreg.counter("contract.searches")
        .add_unchecked(static_cast<std::uint64_t>(res.stats.searches));
    mreg.counter("contract.hits")
        .add_unchecked(static_cast<std::uint64_t>(res.stats.hits));
    mreg.counter("contract.multiplies")
        .add_unchecked(static_cast<std::uint64_t>(res.stats.multiplies));
    mreg.counter("contract.nnz_z")
        .add_unchecked(static_cast<std::uint64_t>(res.stats.nnz_z));
    mreg.gauge("contract.hty_bytes_hwm")
        .max_unchecked(static_cast<std::uint64_t>(res.stats.hty_bytes));
    mreg.gauge("contract.hta_bytes_hwm")
        .max_unchecked(static_cast<std::uint64_t>(res.stats.hta_bytes));
    mreg.gauge("contract.zlocal_bytes_hwm")
        .max_unchecked(static_cast<std::uint64_t>(res.stats.zlocal_bytes));
    mreg.gauge("contract.z_bytes_hwm")
        .max_unchecked(static_cast<std::uint64_t>(res.stats.z_bytes));
    mreg.set_json_section("last_contract.stage_seconds",
                          res.stage_times.to_json());
    mreg.set_json_section("last_contract.counters", res.stats.to_json());
    mreg.set_json_section("last_contract.perf", res.stats.perf.to_json());
    // Per-stage wall time in microseconds, as distributions: across many
    // contractions (resilient retries, bench repeats) these show tail
    // behaviour the single last_contract section cannot.
    for (int i = 0; i < kNumStages; ++i) {
      const Stage st = static_cast<Stage>(i);
      mreg.histogram("stage_us." + std::string(stage_name(st)))
          .record(static_cast<std::uint64_t>(res.stage_times[st] * 1e6));
    }
  }
  if (obs::trace_enabled() || obs::flight_enabled()) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("searches").value(static_cast<std::uint64_t>(res.stats.searches));
    w.key("hits").value(static_cast<std::uint64_t>(res.stats.hits));
    w.key("multiplies")
        .value(static_cast<std::uint64_t>(res.stats.multiplies));
    w.key("nnz_z").value(static_cast<std::uint64_t>(res.stats.nnz_z));
    w.end_object();
    obs::trace_counter("contract", w.str());
  }

#ifndef NDEBUG
  // Satellite invariant gate: a debug-build contraction that miscounts
  // its own work fails loudly here rather than in a downstream bench.
  res.stats.check(&res.stage_times);
#endif

  return res;
}

}  // namespace

ContractResult contract(const SparseTensor& x, const SparseTensor& y,
                        const Modes& cx, const Modes& cy,
                        const ContractOptions& opts) {
  // The §3.3 heuristic: represent the larger operand as Y (it becomes the
  // hash table, probed rather than iterated).
  if (opts.swap_operands_if_larger_x && x.nnz() > y.nnz()) {
    ContractOptions o = opts;
    o.swap_operands_if_larger_x = false;
    return contract(y, x, cy, cx, o);
  }
  return contract_impl(x, &y, nullptr, cx, cy, opts);
}

ContractResult contract(const SparseTensor& x, const YPlan& plan,
                        const Modes& cx, const ContractOptions& opts) {
  ContractOptions o = opts;
  o.algorithm = Algorithm::kSparta;      // plans only exist for Sparta
  o.swap_operands_if_larger_x = false;   // orientation is fixed by the plan
  return contract_impl(x, nullptr, &plan, cx, plan.cy(), o);
}

}  // namespace sparta
