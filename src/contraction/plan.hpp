// Reusable contraction plan for the second operand.
//
// Building HtY costs O(nnz_Y); when the same Y is contracted against
// many different X tensors — applying one operator to many states, or
// sweeping a tensor network — the hash table can be built once and
// reused:
//
//   YPlan plan(y, /*cy=*/{0, 1});
//   for (const auto& x : states) {
//     auto z = contract(x, plan, /*cx=*/{2, 3}).z;
//   }
//
// contract(x, y, cx, cy) with Algorithm::kSparta routes through a
// one-shot YPlan internally, so both paths share one implementation.
#pragma once

#include <memory>

#include "contraction/options.hpp"
#include "hashtable/grouped_map.hpp"
#include "simd/swiss_table.hpp"
#include "tensor/linearize.hpp"
#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta {

class YPlan {
 public:
  /// Builds HtY from `y` keyed on contract modes `cy` (validated).
  /// `hty_buckets` 0 = auto (≈ nnz(y)); `num_threads` 0 = ambient.
  /// `use_swiss_tables` picks the SIMD-probed swiss HtY over the
  /// chained GroupedHashMap; the plan's table kind then governs HtY for
  /// every contraction using it, regardless of the caller's options.
  /// `cancel` is polled along the parallel insert loop (every 256
  /// inserts per thread); Cancelled unwinds before the plan object
  /// exists, so no half-built HtY can escape.
  YPlan(const SparseTensor& y, Modes cy, std::size_t hty_buckets = 0,
        int num_threads = 0, bool use_swiss_tables = false,
        CancelToken cancel = {});

  YPlan(const YPlan&) = delete;
  YPlan& operator=(const YPlan&) = delete;
  YPlan(YPlan&&) = default;
  YPlan& operator=(YPlan&&) = default;

  [[nodiscard]] const Modes& cy() const { return cy_; }
  [[nodiscard]] const Modes& fy() const { return fy_; }
  /// Full shape of the Y the plan was built from.
  [[nodiscard]] const std::vector<index_t>& y_dims() const { return ydims_; }
  /// Sizes of the contract modes, in cy order (X's cx sizes must match).
  [[nodiscard]] const std::vector<index_t>& contract_dims() const {
    return cdims_;
  }
  /// Sizes of Y's free modes (ascending mode order).
  [[nodiscard]] const std::vector<index_t>& free_dims() const {
    return fydims_;
  }

  [[nodiscard]] std::size_t nnz_y() const { return nnz_y_; }
  [[nodiscard]] std::size_t num_keys() const {
    return swiss_ ? swiss_->num_keys() : hty_->num_keys();
  }
  [[nodiscard]] std::size_t max_group() const { return max_group_; }
  [[nodiscard]] std::size_t hty_footprint_bytes() const {
    return swiss_ ? swiss_->footprint_bytes() : hty_->footprint_bytes();
  }
  [[nodiscard]] std::size_t y_footprint_bytes() const {
    return y_footprint_;
  }

  /// Which HtY representation this plan holds.
  [[nodiscard]] bool uses_swiss() const { return swiss_ != nullptr; }
  [[nodiscard]] const GroupedHashMap& hty() const { return *hty_; }
  [[nodiscard]] const simd::SwissYMap& swiss_hty() const { return *swiss_; }
  /// Linearizer for Y's free-index tuples (HtA keys).
  [[nodiscard]] const LinearIndexer& fy_indexer() const { return fylin_; }

 private:
  Modes cy_;
  Modes fy_;
  std::vector<index_t> ydims_;
  std::vector<index_t> cdims_;
  std::vector<index_t> fydims_;
  LinearIndexer fylin_;
  std::unique_ptr<GroupedHashMap> hty_;    ///< exactly one of these
  std::unique_ptr<simd::SwissYMap> swiss_; ///< two is populated
  std::size_t nnz_y_ = 0;
  std::size_t max_group_ = 0;
  std::size_t y_footprint_ = 0;
};

struct ContractResult;  // contract.hpp

/// Contracts X against a prebuilt plan (always the Sparta algorithm;
/// opts.algorithm is ignored). X's cx mode sizes must match the plan's
/// contract_dims(). Output modes: free X then free Y, as usual.
[[nodiscard]] ContractResult contract(const SparseTensor& x,
                                      const YPlan& plan, const Modes& cx,
                                      const ContractOptions& opts = {});

/// Contracts a stream of X operands against one plan (all with the same
/// cx). Each contraction is internally parallel; results are returned
/// in input order.
[[nodiscard]] std::vector<ContractResult> contract_batch(
    const std::vector<const SparseTensor*>& xs, const YPlan& plan,
    const Modes& cx, const ContractOptions& opts = {});

}  // namespace sparta
