// Brute-force sparse contraction oracle for testing.
//
// O(nnz_X × nnz_Y): every pair of non-zeros is compared on its contract
// indices. Obviously correct and independent of the optimized pipeline,
// so it doubles as the correctness oracle for mid-size random tensors
// where a dense reference would not fit.
#pragma once

#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta {

/// Z = X ×_{cx}^{cy} Y by exhaustive pairing. Output sorted + coalesced.
[[nodiscard]] SparseTensor contract_reference(const SparseTensor& x,
                                              const SparseTensor& y,
                                              const Modes& cx,
                                              const Modes& cy);

}  // namespace sparta
