// Contraction-order planning for multi-tensor einsum expressions.
//
// Greedy pairwise merging (the einsum() default) can pick badly on
// non-chain topologies; for networks of up to ~16 operands the optimal
// binary contraction tree is found by dynamic programming over operand
// subsets (O(3^n) splits), using a density-propagation model to
// estimate intermediate sizes from nnz and mode sizes alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/types.hpp"

namespace sparta {

/// One operand's metadata as the planner sees it.
struct PlanOperand {
  std::string labels;           ///< one char per mode
  std::vector<index_t> dims;    ///< matching sizes
  std::size_t nnz = 0;
};

/// A pairwise step: contract work[i] with work[j] (indices into the
/// evolving operand list, j removed, result replaces i) — the execution
/// order einsum() follows.
struct PlanStep {
  std::size_t i;
  std::size_t j;
};

struct ContractionPlan {
  std::vector<PlanStep> steps;
  double estimated_cost = 0.0;  ///< model cost (flops proxy), comparable
                                ///< across plans of the same expression
};

/// Finds the optimal binary contraction tree for `operands` given the
/// output labels (labels absent from `output` that occur once are
/// summed at the end, as in einsum()). Throws when operands.size() > 16
/// (use the greedy path instead).
[[nodiscard]] ContractionPlan plan_contraction_order(
    const std::vector<PlanOperand>& operands, const std::string& output);

}  // namespace sparta
