// einsum-style multi-tensor contraction on sparse tensors.
//
//   einsum("abc,cd->abd", {&x, &y})        — matrix-style contraction
//   einsum("ab,bc,cd->ad", {&a, &b, &c})   — chain, greedily ordered
//   einsum("abc->ac", {&x})                — sum out modes
//
// Subscript grammar (numpy-compatible subset):
//   * one letter per mode, [a-zA-Z];
//   * a label may appear in at most two inputs — twice means the modes
//     contract (and the label must not appear in the output), once
//     means it is free;
//   * labels within one operand must be distinct (no traces/diagonals);
//   * "->out" is optional: the default output is the once-occurring
//     labels in alphabetical order (numpy's rule).
//
// For three or more operands the pairwise order is chosen greedily by
// an nnz-based cost estimate — the driver a "long sequence of tensor
// contractions" (paper §1) needs.
#pragma once

#include <string>
#include <vector>

#include "contraction/contract.hpp"
#include "tensor/sparse_tensor.hpp"

namespace sparta {

/// How einsum orders pairwise contractions for 3+ operands.
enum class EinsumOrder : int {
  kGreedy = 0,   ///< cheapest-next-pair heuristic (default)
  kOptimal = 1,  ///< DP over operand subsets (einsum_order.hpp), ≤16 ops
};

/// Contracts `operands` per `spec`. Throws sparta::Error on malformed
/// specs, arity/dimension mismatches, or unsupported patterns (traces,
/// labels shared by 3+ operands).
[[nodiscard]] SparseTensor einsum(
    const std::string& spec, const std::vector<const SparseTensor*>& operands,
    const ContractOptions& opts = {},
    EinsumOrder order = EinsumOrder::kGreedy);

/// Convenience overload for value arguments.
[[nodiscard]] SparseTensor einsum(const std::string& spec,
                                  const std::vector<SparseTensor>& operands,
                                  const ContractOptions& opts = {},
                                  EinsumOrder order = EinsumOrder::kGreedy);

}  // namespace sparta
