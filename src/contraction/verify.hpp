// Probabilistic contraction verification in O(nnz) time.
//
// Freivalds-style check: for random vectors u_m (one per free X mode),
// w_m (one per free Y mode) and the identity
//
//   Σ_{fx,fy} Z(fx,fy) Π u(fx) Π w(fy)
//     = Σ_c [Σ_fx X(fx,c) Π u(fx)] · [Σ_fy Y(c,fy) Π w(fy)]
//
// both sides collapse to vectors over the contract-index space and can
// be evaluated in one pass over each tensor. A wrong Z fails with
// probability ≈ 1 per random trial (up to cancellation sets of measure
// zero); k trials drive the false-accept chance to ~0 without ever
// running the O(nnz_X · nnz_Y) reference.
#pragma once

#include <cstdint>

#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta {

struct VerifyOptions {
  int trials = 3;
  double tolerance = 1e-6;  ///< relative, scaled by the identity's magnitude
  std::uint64_t seed = 12345;
};

/// Returns true when `z` is consistent with contract(x, y, cx, cy)
/// across all random trials. Throws on shape mismatches (z must have
/// free-X modes then free-Y modes, the contract() convention).
[[nodiscard]] bool verify_contraction(const SparseTensor& x,
                                      const SparseTensor& y, const Modes& cx,
                                      const Modes& cy, const SparseTensor& z,
                                      const VerifyOptions& opts = {});

}  // namespace sparta
