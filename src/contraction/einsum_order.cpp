#include "contraction/einsum_order.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace sparta {

namespace {

using Mask = std::uint32_t;

struct LabelInfo {
  double dim = 1.0;
  Mask operands = 0;  // which operands carry this label
  bool in_output = false;
};

}  // namespace

ContractionPlan plan_contraction_order(
    const std::vector<PlanOperand>& operands, const std::string& output) {
  const std::size_t n = operands.size();
  SPARTA_CHECK(n >= 1, "planner needs at least one operand");
  SPARTA_CHECK(n <= 16, "optimal planning is limited to 16 operands");

  // Label table.
  std::map<char, LabelInfo> labels;
  for (std::size_t k = 0; k < n; ++k) {
    SPARTA_CHECK(operands[k].labels.size() == operands[k].dims.size(),
                 "planner: labels/dims arity mismatch");
    for (std::size_t m = 0; m < operands[k].labels.size(); ++m) {
      LabelInfo& li = labels[operands[k].labels[m]];
      li.dim = static_cast<double>(operands[k].dims[m]);
      li.operands |= Mask{1} << k;
    }
  }
  for (char c : output) {
    const auto it = labels.find(c);
    SPARTA_CHECK(it != labels.end(), "planner: output label not in inputs");
    it->second.in_output = true;
  }

  const Mask full = n == 32 ? ~Mask{0} : (Mask{1} << n) - 1;

  // Per-subset size model: free space (labels still needed outside the
  // subset or in the output) and expected nnz via density propagation.
  const std::size_t num_subsets = std::size_t{1} << n;
  std::vector<double> free_space(num_subsets, 1.0);
  std::vector<double> est_nnz(num_subsets, 0.0);
  for (Mask s = 1; s <= full; ++s) {
    double fs = 1.0;
    double contracted = 1.0;
    double dens = 1.0;
    for (const auto& [c, li] : labels) {
      if (!(li.operands & s)) continue;
      const bool needed_outside =
          (li.operands & ~s) != 0 || li.in_output;
      (needed_outside ? fs : contracted) *= li.dim;
    }
    for (std::size_t k = 0; k < n; ++k) {
      if (!(s & (Mask{1} << k))) continue;
      double size = 1.0;
      for (index_t d : operands[k].dims) size *= static_cast<double>(d);
      dens *= size > 0 ? static_cast<double>(operands[k].nnz) / size : 0.0;
    }
    free_space[s] = fs;
    est_nnz[s] = std::min(fs, fs * contracted * dens);
  }
  // Singletons: the real nnz, not the model.
  for (std::size_t k = 0; k < n; ++k) {
    est_nnz[Mask{1} << k] = static_cast<double>(operands[k].nnz);
  }

  // DP over subsets for the cheapest binary tree.
  constexpr double kInf = 1e300;
  std::vector<double> best(num_subsets, kInf);
  std::vector<Mask> best_split(num_subsets, 0);
  for (std::size_t k = 0; k < n; ++k) best[Mask{1} << k] = 0.0;

  auto pair_cost = [&](Mask a, Mask b) {
    // Shared label space between the two intermediates.
    double shared = 1.0;
    for (const auto& [c, li] : labels) {
      if ((li.operands & a) && (li.operands & b)) shared *= li.dim;
    }
    const double multiplies = est_nnz[a] * est_nnz[b] / shared;
    return est_nnz[a] + est_nnz[b] + multiplies + est_nnz[a | b];
  };

  for (Mask s = 1; s <= full; ++s) {
    if ((s & (s - 1)) == 0) continue;  // singleton
    // Enumerate proper sub-splits; fix the lowest bit in one side to
    // halve the enumeration.
    const Mask low = s & (~s + 1);
    for (Mask a = (s - 1) & s; a; a = (a - 1) & s) {
      if (!(a & low)) continue;
      const Mask b = s ^ a;
      if (best[a] >= kInf || best[b] >= kInf) continue;
      const double cost = best[a] + best[b] + pair_cost(a, b);
      if (cost < best[s]) {
        best[s] = cost;
        best_split[s] = a;
      }
    }
  }
  SPARTA_CHECK(best[full] < kInf, "planner found no contraction tree");

  // Emit merges in dependency order, then map them onto the evolving
  // work-list indices einsum() maintains (j removed, result at i).
  std::vector<std::pair<Mask, Mask>> merges;
  {
    std::vector<Mask> stack{full};
    std::vector<Mask> post;
    while (!stack.empty()) {
      const Mask s = stack.back();
      stack.pop_back();
      if ((s & (s - 1)) == 0) continue;
      post.push_back(s);
      stack.push_back(best_split[s]);
      stack.push_back(s ^ best_split[s]);
    }
    std::reverse(post.begin(), post.end());
    for (Mask s : post) merges.emplace_back(best_split[s], s ^ best_split[s]);
  }

  ContractionPlan plan;
  plan.estimated_cost = best[full];
  std::vector<Mask> work(n);
  for (std::size_t k = 0; k < n; ++k) work[k] = Mask{1} << k;
  for (const auto& [a, b] : merges) {
    const auto ia = static_cast<std::size_t>(
        std::find(work.begin(), work.end(), a) - work.begin());
    const auto ib = static_cast<std::size_t>(
        std::find(work.begin(), work.end(), b) - work.begin());
    SPARTA_ASSERT(ia < work.size() && ib < work.size());
    const std::size_t i = std::min(ia, ib);
    const std::size_t j = std::max(ia, ib);
    plan.steps.push_back(PlanStep{i, j});
    work[i] = a | b;
    work.erase(work.begin() + static_cast<std::ptrdiff_t>(j));
  }
  return plan;
}

}  // namespace sparta
