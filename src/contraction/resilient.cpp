#include "contraction/resilient.hpp"

#include <algorithm>
#include <new>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace sparta {

namespace {

// Memory "weight" of each algorithm: a rung may only degrade to a
// strictly lighter one. kSparta carries HtY + HtA; the COO variants
// carry HtA only; kSpa carries the (lightest) sparse accumulator.
int weight(Algorithm a) {
  switch (a) {
    case Algorithm::kSparta:
      return 3;
    case Algorithm::kCooBinary:
    case Algorithm::kCooHta:
      return 2;
    case Algorithm::kSpa:
      return 1;
  }
  return 1;
}

// Per-rung options: same budget/threads/registry, different algorithm.
// Sparta-only knobs must be cleared off-rung or validate() rejects them.
ContractOptions rung_options(const ContractOptions& base, Algorithm a) {
  ContractOptions o = base;
  o.algorithm = a;
  if (a != Algorithm::kSparta) {
    o.hty_buckets = 0;
    o.use_linear_probe_hta = false;
    o.hty_charged_externally = false;
  }
  // Swiss tables ride along on every hash-table rung; only the SPA rung
  // has no hash table to swap.
  if (a == Algorithm::kSpa) o.use_swiss_tables = false;
  return o;
}

// X[begin, end) as a standalone tensor with X's shape. Contraction is
// linear in X, so contracting the pieces and summing the Zs is exact
// (floating-point association aside).
SparseTensor nnz_chunk(const SparseTensor& x, std::size_t begin,
                       std::size_t end) {
  SparseTensor c(x.dims());
  c.reserve(end - begin);
  std::vector<index_t> coord(static_cast<std::size_t>(x.order()));
  for (std::size_t i = begin; i < end; ++i) {
    x.coords(i, coord);
    c.append_unchecked(coord, x.value(i));
  }
  return c;
}

// Folds one chunk's counters into the merged result.
void merge_stats(ContractResult& into, const ContractResult& piece) {
  into.stage_times += piece.stage_times;
  into.stats.searches += piece.stats.searches;
  into.stats.hits += piece.stats.hits;
  into.stats.multiplies += piece.stats.multiplies;
  into.stats.num_x_subtensors += piece.stats.num_x_subtensors;
  into.stats.hta_bytes = std::max(into.stats.hta_bytes,
                                  piece.stats.hta_bytes);
  into.stats.zlocal_bytes = std::max(into.stats.zlocal_bytes,
                                     piece.stats.zlocal_bytes);
}

}  // namespace

std::string RungAttempt::describe() const {
  std::string s(algorithm_name(algorithm));
  if (chunks > 1) {
    s += " [" + std::to_string(chunks) + " chunks]";
  }
  return s;
}

std::string ResilienceReport::summary() const {
  std::string s;
  for (const RungAttempt& a : attempts) {
    if (!s.empty()) s += "; ";
    s += a.describe();
    s += a.succeeded ? ": ok" : ": " + a.error;
  }
  return s;
}

ResilientResult contract_resilient(const SparseTensor& x,
                                   const SparseTensor& y, const Modes& cx,
                                   const Modes& cy,
                                   const ContractOptions& opts) {
  // Deterministic input errors are not rung failures: reject them before
  // the ladder so they surface identically to contract().
  opts.validate();
  (void)validate_modes(x, y, cx, cy);

  ResilientResult out;

  // Runs one configuration, recording the attempt. Returns true on
  // success; false on a recoverable failure (budget, allocation, or
  // sparta::Error raised mid-attempt, e.g. an injected fault).
  // Cancelled is deliberately NOT caught: a deadline or cancel must
  // abort the whole ladder — degrading to a lighter algorithm cannot
  // recover exhausted time — so it unwinds through here untouched.
  auto attempt = [&](const ContractOptions& o, std::size_t chunks,
                     auto&& body) {
    RungAttempt rec;
    rec.algorithm = o.algorithm;
    rec.chunks = chunks;
    // One span per ladder rung; the name carries the rung description
    // ("HtY+HtA", "COOY+SPA [4 chunks]", ...) so a trace shows the
    // degradation path at a glance. Built only when some recorder —
    // full trace or flight ring — will keep it.
    obs::Span sp(obs::TraceRecorder::global(),
                 obs::trace_enabled() || obs::flight_enabled()
                     ? "rung:" + rec.describe()
                     : std::string());
    SPARTA_COUNTER_ADD("resilient.attempts", 1);
    try {
      out.result = body();
      rec.succeeded = true;
      out.report.attempts.push_back(std::move(rec));
      return true;
    } catch (const BudgetExceeded& e) {
      rec.error = e.what();
    } catch (const Error& e) {
      rec.error = e.what();
    } catch (const std::bad_alloc&) {
      rec.error = "std::bad_alloc";
    }
    SPARTA_COUNTER_ADD("resilient.rung_failures", 1);
    out.report.attempts.push_back(std::move(rec));
    return false;
  };

  // Monolithic rungs: the requested algorithm, then every strictly
  // lighter standard rung in descending weight.
  std::vector<Algorithm> ladder{opts.algorithm};
  for (Algorithm a : {Algorithm::kCooHta, Algorithm::kSpa}) {
    if (weight(a) < weight(opts.algorithm)) ladder.push_back(a);
  }
  for (Algorithm a : ladder) {
    const ContractOptions o = rung_options(opts, a);
    if (attempt(o, 1, [&] { return contract(x, y, cx, cy, o); })) {
      return out;
    }
  }

  // Chunked execution: k nnz-blocks of X, each contracted with the
  // lightest algorithm under the same budget, partial Zs merged with
  // add(). The merged Z itself is not budget-tracked (it is the
  // caller's deliverable); each chunk's working set is.
  const ContractOptions chunk_opts = rung_options(opts, Algorithm::kSpa);
  const std::size_t nnz = x.nnz();
  for (std::size_t k = 2; k <= 256; k *= 2) {
    const std::size_t chunks = std::min(k, std::max<std::size_t>(nnz, 1));
    const bool ok = attempt(chunk_opts, chunks, [&] {
      ContractResult merged;
      merged.stats.nnz_x = nnz;
      merged.stats.nnz_y = y.nnz();
      bool first = true;
      for (std::size_t c = 0; c < chunks; ++c) {
        // Between chunks is the cheapest place to notice a cancel: the
        // per-chunk contract() polls internally too, but this check
        // skips even building the next chunk tensor.
        opts.cancel.check("contract.chunk");
        const std::size_t begin = nnz * c / chunks;
        const std::size_t end = nnz * (c + 1) / chunks;
        ContractResult piece = contract(nnz_chunk(x, begin, end), y, cx,
                                        cy, chunk_opts);
        if (first) {
          merged.z = std::move(piece.z);
          first = false;
        } else {
          merged.z = add(merged.z, piece.z);
        }
        merge_stats(merged, piece);
      }
      merged.stats.nnz_z = merged.z.nnz();
      merged.stats.z_bytes = merged.z.footprint_bytes();
      return merged;
    });
    if (ok) return out;
    // One nnz per chunk is as fine as the partition gets.
    if (chunks >= nnz) break;
  }

  throw Error("contract_resilient: every rung failed under the " +
              std::to_string(opts.budget.bytes) + "-byte budget [" +
              out.report.summary() + "]");
}

}  // namespace sparta
