#include "contraction/einsum.hpp"

#include "contraction/einsum_order.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace sparta {

namespace {

struct Operand {
  SparseTensor tensor;
  std::string labels;  // one char per mode
};

struct ParsedSpec {
  std::vector<std::string> inputs;
  std::string output;
};

ParsedSpec parse_spec(const std::string& spec, std::size_t num_operands) {
  ParsedSpec p;
  std::string inputs_part = spec;
  const auto arrow = spec.find("->");
  if (arrow != std::string::npos) {
    inputs_part = spec.substr(0, arrow);
    for (char c : spec.substr(arrow + 2)) {
      if (!std::isspace(static_cast<unsigned char>(c))) p.output.push_back(c);
    }
  }

  std::string cur;
  for (char c : inputs_part) {
    if (c == ',') {
      p.inputs.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      SPARTA_CHECK(std::isalpha(static_cast<unsigned char>(c)),
                   std::string("einsum: bad subscript character '") + c +
                       "'");
      cur.push_back(c);
    }
  }
  p.inputs.push_back(cur);
  SPARTA_CHECK(p.inputs.size() == num_operands,
               "einsum: spec names " + std::to_string(p.inputs.size()) +
                   " operands but " + std::to_string(num_operands) +
                   " were given");

  // Count label occurrences; validate per-operand uniqueness.
  std::map<char, int> count;
  for (const std::string& in : p.inputs) {
    std::set<char> seen;
    for (char c : in) {
      SPARTA_CHECK(seen.insert(c).second,
                   std::string("einsum: repeated label '") + c +
                       "' within one operand (traces unsupported)");
      ++count[c];
    }
  }
  for (const auto& [label, n] : count) {
    SPARTA_CHECK(n <= 2, std::string("einsum: label '") + label +
                             "' appears in more than two operands");
  }

  if (arrow == std::string::npos) {
    // Implicit output: once-occurring labels, alphabetical.
    for (const auto& [label, n] : count) {
      if (n == 1) p.output.push_back(label);
    }
  } else {
    std::set<char> out_seen;
    for (char c : p.output) {
      SPARTA_CHECK(std::isalpha(static_cast<unsigned char>(c)),
                   "einsum: bad character in output subscripts");
      SPARTA_CHECK(out_seen.insert(c).second,
                   "einsum: repeated label in output");
      SPARTA_CHECK(count.count(c),
                   std::string("einsum: output label '") + c +
                       "' missing from inputs");
      SPARTA_CHECK(count[c] == 1,
                   std::string("einsum: contracted label '") + c +
                       "' cannot appear in the output");
    }
  }
  return p;
}

// Sparse outer product (no shared labels): every pair of non-zeros.
Operand outer_product(const Operand& a, const Operand& b) {
  std::vector<index_t> dims = a.tensor.dims();
  dims.insert(dims.end(), b.tensor.dims().begin(), b.tensor.dims().end());
  SparseTensor out(dims);
  out.reserve(a.tensor.nnz() * b.tensor.nnz());
  std::vector<index_t> ca(static_cast<std::size_t>(a.tensor.order()));
  std::vector<index_t> cb(static_cast<std::size_t>(b.tensor.order()));
  std::vector<index_t> c(dims.size());
  for (std::size_t i = 0; i < a.tensor.nnz(); ++i) {
    a.tensor.coords(i, ca);
    std::copy(ca.begin(), ca.end(), c.begin());
    for (std::size_t j = 0; j < b.tensor.nnz(); ++j) {
      b.tensor.coords(j, cb);
      std::copy(cb.begin(), cb.end(),
                c.begin() + static_cast<std::ptrdiff_t>(ca.size()));
      out.append_unchecked(c, a.tensor.value(i) * b.tensor.value(j));
    }
  }
  return Operand{std::move(out), a.labels + b.labels};
}

// Contracts two operands over their shared labels; result labels follow
// contract()'s output convention (free-X ascending, then free-Y).
Operand contract_pair(const Operand& a, const Operand& b,
                      const ContractOptions& opts) {
  Modes cx, cy;
  for (std::size_t i = 0; i < a.labels.size(); ++i) {
    const auto j = b.labels.find(a.labels[i]);
    if (j != std::string::npos) {
      cx.push_back(static_cast<int>(i));
      cy.push_back(static_cast<int>(j));
    }
  }
  if (cx.empty()) return outer_product(a, b);

  std::string out_labels;
  for (std::size_t i = 0; i < a.labels.size(); ++i) {
    if (std::find(cx.begin(), cx.end(), static_cast<int>(i)) == cx.end()) {
      out_labels.push_back(a.labels[i]);
    }
  }
  for (std::size_t j = 0; j < b.labels.size(); ++j) {
    if (std::find(cy.begin(), cy.end(), static_cast<int>(j)) == cy.end()) {
      out_labels.push_back(b.labels[j]);
    }
  }
  return Operand{contract_tensor(a.tensor, b.tensor, cx, cy, opts),
                 std::move(out_labels)};
}

// Greedy cost estimate for contracting i with j: output-size proxy
// nnz_i · nnz_j / (product of shared dims). Lower is better; pairs with
// no shared label rank last (outer products explode).
double pair_cost(const Operand& a, const Operand& b) {
  double shared = 1.0;
  bool any = false;
  for (std::size_t i = 0; i < a.labels.size(); ++i) {
    const auto j = b.labels.find(a.labels[i]);
    if (j != std::string::npos) {
      shared *= static_cast<double>(a.tensor.dim(static_cast<int>(i)));
      any = true;
    }
  }
  const double size = static_cast<double>(a.tensor.nnz()) *
                      static_cast<double>(b.tensor.nnz());
  return any ? size / shared : size * 1e12;
}

}  // namespace

SparseTensor einsum(const std::string& spec,
                    const std::vector<const SparseTensor*>& operands,
                    const ContractOptions& opts, EinsumOrder order) {
  SPARTA_CHECK(!operands.empty(), "einsum: need at least one operand");
  const ParsedSpec parsed = parse_spec(spec, operands.size());

  // Bind labels to operands; validate arities and dimension agreement.
  std::vector<Operand> work;
  std::map<char, index_t> label_dim;
  for (std::size_t k = 0; k < operands.size(); ++k) {
    const SparseTensor& t = *operands[k];
    const std::string& labels = parsed.inputs[k];
    SPARTA_CHECK(labels.size() == static_cast<std::size_t>(t.order()),
                 "einsum: operand " + std::to_string(k) + " has " +
                     std::to_string(t.order()) + " modes but spec names " +
                     std::to_string(labels.size()));
    for (std::size_t m = 0; m < labels.size(); ++m) {
      const index_t d = t.dim(static_cast<int>(m));
      auto [it, inserted] = label_dim.try_emplace(labels[m], d);
      SPARTA_CHECK(inserted || it->second == d,
                   std::string("einsum: label '") + labels[m] +
                       "' has inconsistent sizes");
    }
    work.push_back(Operand{t, labels});
  }

  if (order == EinsumOrder::kOptimal && work.size() > 2) {
    // DP-planned contraction tree (einsum_order.hpp).
    std::vector<PlanOperand> plan_ops;
    for (const Operand& op : work) {
      plan_ops.push_back(
          PlanOperand{op.labels, op.tensor.dims(), op.tensor.nnz()});
    }
    const ContractionPlan plan =
        plan_contraction_order(plan_ops, parsed.output);
    for (const PlanStep& step : plan.steps) {
      Operand merged = contract_pair(work[step.i], work[step.j], opts);
      work.erase(work.begin() + static_cast<std::ptrdiff_t>(step.j));
      work[step.i] = std::move(merged);
    }
  }

  // Greedy pairwise contraction (also finishes any remaining pair).
  while (work.size() > 1) {
    std::size_t best_i = 0, best_j = 1;
    double best = 1e300;
    for (std::size_t i = 0; i < work.size(); ++i) {
      for (std::size_t j = i + 1; j < work.size(); ++j) {
        const double cost = pair_cost(work[i], work[j]);
        if (cost < best) {
          best = cost;
          best_i = i;
          best_j = j;
        }
      }
    }
    Operand merged = contract_pair(work[best_i], work[best_j], opts);
    work.erase(work.begin() + static_cast<std::ptrdiff_t>(best_j));
    work[best_i] = std::move(merged);
  }

  Operand result = std::move(work.front());

  // Sum out labels absent from the output (once-occurring but dropped).
  for (std::size_t m = 0; m < result.labels.size();) {
    if (parsed.output.find(result.labels[m]) == std::string::npos) {
      SPARTA_CHECK(result.tensor.order() > 1,
                   "einsum: cannot reduce a tensor to a scalar");
      result.tensor = reduce_mode(result.tensor, static_cast<int>(m));
      result.labels.erase(m, 1);
    } else {
      ++m;
    }
  }

  // Permute to the requested output order.
  SPARTA_CHECK(result.labels.size() == parsed.output.size(),
               "einsum: internal label bookkeeping mismatch");
  Modes perm;
  for (char c : parsed.output) {
    const auto pos = result.labels.find(c);
    SPARTA_ASSERT(pos != std::string::npos);
    perm.push_back(static_cast<int>(pos));
  }
  result.tensor.permute_modes(perm);
  result.tensor.sort();
  return std::move(result.tensor);
}

SparseTensor einsum(const std::string& spec,
                    const std::vector<SparseTensor>& operands,
                    const ContractOptions& opts, EinsumOrder order) {
  std::vector<const SparseTensor*> ptrs;
  ptrs.reserve(operands.size());
  for (const SparseTensor& t : operands) ptrs.push_back(&t);
  return einsum(spec, ptrs, opts, order);
}

}  // namespace sparta
