#include "contraction/estimators.hpp"

namespace sparta {

std::size_t estimate_hty_bytes(std::size_t nnz_y, int order_y,
                               std::size_t num_buckets,
                               const EstimatorSizes& sz) {
  return sz.entry_pointer * num_buckets +
         nnz_y * (sz.index * static_cast<std::size_t>(order_y) + sz.value +
                  sz.entry_pointer);
}

std::size_t estimate_hta_bytes(std::size_t nnz_fmax_x, std::size_t nnz_fmax_y,
                               int num_free_y, std::size_t num_buckets,
                               const EstimatorSizes& sz) {
  return sz.entry_pointer * num_buckets +
         nnz_fmax_x * nnz_fmax_y *
             (sz.index * static_cast<std::size_t>(num_free_y) + sz.value +
              sz.entry_pointer);
}

std::size_t estimate_zlocal_bytes(std::size_t nnz_hta, int num_free_x,
                                  int num_free_y, const EstimatorSizes& sz) {
  const std::size_t per_entry =
      sz.index * static_cast<std::size_t>(num_free_x + num_free_y) + sz.value;
  return nnz_hta * per_entry;
}

}  // namespace sparta
