// Flat open-addressing hash tables with SIMD group probing — the
// swiss-table alternative to the chained HtY (grouped_map.hpp) and the
// probing HtA (linear_probe.hpp / accumulator.hpp).
//
// Layout: one control byte per slot (empty 0x80 / deleted 0xFE / else
// the low 7 bits of the hash as a tag) plus a parallel slot array.
// Probing loads a 16-byte control group and compares all 16 tags in one
// vector op (_mm_cmpeq_epi8 on x86, vceqq_u8 on aarch64); a miss costs
// one cache line of metadata instead of one chained-bucket pointer
// chase per step. The scalar fallback walks the same 16-slot groups in
// the same ascending slot order, so every tier picks identical slots,
// drains in identical order, and therefore accumulates floating point
// in an identical order — forcing SPARTA_SIMD=scalar is bit-exact, the
// invariant the isa-matrix CI job and `fuzz_sptc --isa-diff` enforce.
//
// ContractOptions::use_swiss_tables switches contraction onto these;
// docs/SIMD.md covers the dispatch rules.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "hashtable/grouped_map.hpp"
#include "obs/metrics.hpp"
#include "simd/dispatch.hpp"
#include "tensor/types.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace sparta::simd {

/// Slots per control group — one 128-bit vector compare. Fixed across
/// all tiers (including scalar) so probe sequences are ISA-independent.
inline constexpr std::size_t kGroupWidth = 16;

/// Control bytes. Full slots store a 7-bit tag (top bit clear), so one
/// vector equality against the tag never matches empty or deleted.
inline constexpr std::uint8_t kCtrlEmpty = 0x80;
inline constexpr std::uint8_t kCtrlDeleted = 0xFE;

namespace detail {

/// Bitmask of slots in the 16-byte control group at `ctrl` whose byte
/// equals `want` (bit i = slot i). Every tier returns the identical
/// mask; iteration via countr_zero visits slots in ascending order.
[[nodiscard]] inline std::uint32_t group_match(const std::uint8_t* ctrl,
                                               std::uint8_t want,
                                               SimdIsa isa) {
#if defined(__x86_64__) || defined(_M_X64)
  if (isa == SimdIsa::kAvx2) {
    // 128-bit ops suffice for a 16-byte group; SSE2 is x86-64 baseline
    // so no function-level target attribute is needed. The avx2 tier
    // gates availability, abseil-style, not vector width.
    const __m128i group =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl));
    const __m128i eq = _mm_cmpeq_epi8(group, _mm_set1_epi8(
                                                 static_cast<char>(want)));
    return static_cast<std::uint32_t>(_mm_movemask_epi8(eq));
  }
#endif
#if defined(__aarch64__)
  if (isa == SimdIsa::kNeon) {
    // NEON has no movemask; narrow the 0xFF/0x00 compare result to one
    // nibble per byte (vshrn by 4), then pick one bit per nibble.
    const uint8x16_t group = vld1q_u8(ctrl);
    const uint8x16_t eq = vceqq_u8(group, vdupq_n_u8(want));
    const uint8x8_t nib =
        vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
    std::uint64_t m = vget_lane_u64(vreinterpret_u64_u8(nib), 0);
    m &= 0x1111111111111111ULL;  // bit 4*i  <=>  slot i matched
    std::uint32_t out = 0;
    while (m != 0) {
      out |= 1u << (std::countr_zero(m) >> 2);
      m &= m - 1;
    }
    return out;
  }
#endif
  (void)isa;
  std::uint32_t out = 0;
  for (std::size_t j = 0; j < kGroupWidth; ++j) {
    if (ctrl[j] == want) out |= 1u << j;
  }
  return out;
}

/// Bitmask of empty OR deleted slots (both have the top bit set; full
/// tags never do) — the insert-position mask.
[[nodiscard]] inline std::uint32_t group_match_free(const std::uint8_t* ctrl,
                                                    SimdIsa isa) {
#if defined(__x86_64__) || defined(_M_X64)
  if (isa == SimdIsa::kAvx2) {
    const __m128i group =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ctrl));
    // movemask already extracts the sign bit of every byte.
    return static_cast<std::uint32_t>(_mm_movemask_epi8(group));
  }
#endif
#if defined(__aarch64__)
  if (isa == SimdIsa::kNeon) {
    const uint8x16_t group = vld1q_u8(ctrl);
    const uint8x16_t top = vtstq_u8(group, vdupq_n_u8(0x80));
    const uint8x8_t nib = vshrn_n_u16(vreinterpretq_u16_u8(top), 4);
    std::uint64_t m = vget_lane_u64(vreinterpret_u64_u8(nib), 0);
    m &= 0x1111111111111111ULL;
    std::uint32_t out = 0;
    while (m != 0) {
      out |= 1u << (std::countr_zero(m) >> 2);
      m &= m - 1;
    }
    return out;
  }
#endif
  (void)isa;
  std::uint32_t out = 0;
  for (std::size_t j = 0; j < kGroupWidth; ++j) {
    if ((ctrl[j] & 0x80u) != 0) out |= 1u << j;
  }
  return out;
}

/// Group index (h1, top `group_bits` of the mixed hash) and 7-bit tag
/// (h2, low bits) — disjoint slices of one multiply, so the tag carries
/// information the group index does not.
[[nodiscard]] inline std::uint64_t swiss_h1(lnkey_t key, int group_bits) {
  return (key * 0x9e3779b97f4a7c15ULL) >> (64 - group_bits);
}
[[nodiscard]] inline std::uint8_t swiss_h2(lnkey_t key) {
  return static_cast<std::uint8_t>((key * 0x9e3779b97f4a7c15ULL) & 0x7f);
}

/// Smallest group count (power of two) whose 7/8-load capacity holds
/// `keys` entries.
[[nodiscard]] inline int swiss_group_bits_for(std::size_t keys) {
  int bits = 1;
  while (bits < 27 &&
         ((std::size_t{1} << bits) * kGroupWidth * 7) / 8 < keys) {
    ++bits;
  }
  return bits;
}

}  // namespace detail

/// Swiss-table HtY: LN contract key -> dynamic array of (free key,
/// value) items, mirroring GroupedHashMap's whole surface so
/// YPlan/contract can hold either behind one generic code path.
///
/// Parallel build uses ONE table mutex (insert_locked): open addressing
/// rehashes the entire slot array on growth, which striped locks cannot
/// protect. The build stage is a tiny slice of contraction time and the
/// constructor pre-sizes for the expected key count, so growth under
/// the lock is rare; the probe-side win is what this table is for.
class SwissYMap {
 public:
  explicit SwissYMap(std::size_t expected_keys) {
    group_bits_ = detail::swiss_group_bits_for(expected_keys);
    const std::size_t slots = num_groups() * kGroupWidth;
    ctrl_.assign(slots, kCtrlEmpty);
    slots_.resize(slots);
  }

  /// Appends `item` to the group for `key`, creating it if absent.
  /// NOT thread-safe; see insert_locked.
  void insert(lnkey_t key, FreeItem item) {
    slot_for(key).items.push_back(item);
  }

  /// Thread-safe insert under the single table mutex.
  void insert_locked(lnkey_t key, FreeItem item) {
    std::lock_guard<std::mutex> g(lock_);
    slot_for(key).items.push_back(item);
  }

  /// Items for `key`, or an empty span when absent.
  [[nodiscard]] std::span<const FreeItem> find(lnkey_t key) const {
    const SimdIsa isa = active_isa();
    const std::uint8_t tag = detail::swiss_h2(key);
    const std::uint64_t group_mask = num_groups() - 1;
    std::uint64_t g = detail::swiss_h1(key, group_bits_);
    std::size_t steps = 0;
    while (true) {
      ++steps;
      const std::uint8_t* ctrl = ctrl_.data() + g * kGroupWidth;
      for (std::uint32_t m = detail::group_match(ctrl, tag, isa); m != 0;
           m &= m - 1) {
        const std::size_t s =
            g * kGroupWidth + static_cast<std::size_t>(std::countr_zero(m));
        if (slots_[s].key == key) {
          count_probe(steps);
          return slots_[s].items;
        }
      }
      if (detail::group_match(ctrl, kCtrlEmpty, isa) != 0) {
        count_probe(steps);
        return {};
      }
      g = (g + 1) & group_mask;
    }
  }

  [[nodiscard]] std::size_t num_keys() const { return size_; }

  [[nodiscard]] std::size_t num_items() const {
    std::size_t n = 0;
    for (const Slot& s : slots_) n += s.items.size();
    return n;
  }

  /// Size of the largest group — the paper's nnz_Fmax^Y (Eq. 6 bound).
  [[nodiscard]] std::size_t max_group_size() const {
    std::size_t n = 0;
    for (const Slot& s : slots_) n = std::max(n, s.items.size());
    return n;
  }

  [[nodiscard]] std::size_t num_buckets() const { return slots_.size(); }

  [[nodiscard]] std::size_t footprint_bytes() const {
    std::size_t bytes = ctrl_.capacity() +
                        slots_.capacity() * sizeof(Slot);
    for (const Slot& s : slots_) {
      bytes += s.items.capacity() * sizeof(FreeItem);
    }
    return bytes;
  }

  /// Visits every (key, items) group in slot order — deterministic for
  /// a given insertion history, identical across ISA tiers.
  template <typename F>
  void for_each_group(F&& f) const {
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if ((ctrl_[s] & 0x80u) == 0) {
        f(slots_[s].key, std::span<const FreeItem>(slots_[s].items));
      }
    }
  }

 private:
  struct Slot {
    lnkey_t key = 0;
    std::vector<FreeItem> items;
  };

  [[nodiscard]] std::size_t num_groups() const {
    return std::size_t{1} << group_bits_;
  }

  /// Finds the slot for `key`, inserting a new empty group at the first
  /// free slot of the probe sequence when absent. The YMap never
  /// erases, so there are no tombstones to recycle here.
  Slot& slot_for(lnkey_t key) {
    const SimdIsa isa = active_isa();
    const std::uint8_t tag = detail::swiss_h2(key);
    const std::uint64_t group_mask = num_groups() - 1;
    std::uint64_t g = detail::swiss_h1(key, group_bits_);
    std::size_t steps = 0;
    while (true) {
      ++steps;
      const std::uint8_t* ctrl = ctrl_.data() + g * kGroupWidth;
      for (std::uint32_t m = detail::group_match(ctrl, tag, isa); m != 0;
           m &= m - 1) {
        const std::size_t s =
            g * kGroupWidth + static_cast<std::size_t>(std::countr_zero(m));
        if (slots_[s].key == key) {
          count_insert(steps);
          return slots_[s];
        }
      }
      const std::uint32_t free_mask = detail::group_match_free(ctrl, isa);
      if (free_mask != 0) {
        if ((size_ + 1) * 8 > slots_.size() * 7) {
          grow();
          return slot_for(key);  // re-probe in the grown table
        }
        count_insert(steps);
        const std::size_t s =
            g * kGroupWidth +
            static_cast<std::size_t>(std::countr_zero(free_mask));
        ctrl_[s] = tag;
        slots_[s].key = key;
        ++size_;
        return slots_[s];
      }
      g = (g + 1) & group_mask;
    }
  }

  void grow() {
    SPARTA_COUNTER_ADD("simd.swiss_hty.grows", 1);
    std::vector<std::uint8_t> old_ctrl;
    std::vector<Slot> old_slots;
    old_ctrl.swap(ctrl_);
    old_slots.swap(slots_);
    ++group_bits_;
    const std::size_t slots = num_groups() * kGroupWidth;
    ctrl_.assign(slots, kCtrlEmpty);
    slots_.resize(slots);
    size_ = 0;
    const SimdIsa isa = active_isa();
    const std::uint64_t group_mask = num_groups() - 1;
    for (std::size_t s = 0; s < old_slots.size(); ++s) {
      if ((old_ctrl[s] & 0x80u) != 0) continue;
      const lnkey_t key = old_slots[s].key;
      std::uint64_t g = detail::swiss_h1(key, group_bits_);
      while (true) {
        const std::uint8_t* ctrl = ctrl_.data() + g * kGroupWidth;
        const std::uint32_t free_mask = detail::group_match_free(ctrl, isa);
        if (free_mask != 0) {
          const std::size_t d =
              g * kGroupWidth +
              static_cast<std::size_t>(std::countr_zero(free_mask));
          ctrl_[d] = detail::swiss_h2(key);
          slots_[d] = std::move(old_slots[s]);
          ++size_;
          break;
        }
        g = (g + 1) & group_mask;
      }
    }
  }

  // Same shape as the chained HtY's telemetry, under simd.* names so
  // the two tables are distinguishable in one metrics dump. `steps`
  // counts 16-wide groups probed, not individual slots.
  static void count_probe(std::size_t steps) {
    SPARTA_COUNTER_ADD("simd.swiss_hty.probes", 1);
    SPARTA_COUNTER_ADD("simd.swiss_hty.probe_steps", steps);
    SPARTA_HISTOGRAM_RECORD("simd.swiss_hty.probe_len", steps);
  }
  static void count_insert(std::size_t steps) {
    SPARTA_COUNTER_ADD("simd.swiss_hty.inserts", 1);
    SPARTA_COUNTER_ADD("simd.swiss_hty.insert_steps", steps);
  }

  int group_bits_ = 1;
  std::size_t size_ = 0;
  std::vector<std::uint8_t> ctrl_;
  std::vector<Slot> slots_;
  std::mutex lock_;
};

/// Swiss-table sparse accumulator (HtA/SPA): flat (key, value) slots
/// probed by 16-wide tag compare. Same accumulate/drain/clear surface
/// as HashAccumulator and LinearProbeAccumulator; additionally supports
/// erase(), which leaves a tombstone so later probes for keys that
/// passed through the slot still terminate correctly.
class SwissAccumulator {
 public:
  explicit SwissAccumulator(std::size_t expected_keys = 64) {
    group_bits_ = detail::swiss_group_bits_for(expected_keys);
    const std::size_t slots = num_groups() * kGroupWidth;
    ctrl_.assign(slots, kCtrlEmpty);
    slots_.assign(slots, Slot{});
  }

  void accumulate(lnkey_t key, value_t v) {
    SPARTA_ASSERT(key != kReservedKey);
    const SimdIsa isa = active_isa();
    const std::uint8_t tag = detail::swiss_h2(key);
    const std::uint64_t group_mask = num_groups() - 1;
    std::uint64_t g = detail::swiss_h1(key, group_bits_);
    std::size_t steps = 0;
    // First tombstone on the probe path: reusable insert position, but
    // only once the key is proven absent (an empty group ends probing).
    std::size_t tombstone = kNoSlot;
    while (true) {
      ++steps;
      const std::uint8_t* ctrl = ctrl_.data() + g * kGroupWidth;
      for (std::uint32_t m = detail::group_match(ctrl, tag, isa); m != 0;
           m &= m - 1) {
        const std::size_t s =
            g * kGroupWidth + static_cast<std::size_t>(std::countr_zero(m));
        if (slots_[s].key == key) {
          count_probe(steps);
          slots_[s].val += v;
          return;
        }
      }
      if (tombstone == kNoSlot) {
        const std::uint32_t dm = detail::group_match(ctrl, kCtrlDeleted, isa);
        if (dm != 0) {
          tombstone = g * kGroupWidth +
                      static_cast<std::size_t>(std::countr_zero(dm));
        }
      }
      const std::uint32_t em = detail::group_match(ctrl, kCtrlEmpty, isa);
      if (em != 0) {
        std::size_t s = tombstone;
        if (s == kNoSlot) {
          // Growth watches occupied = full + tombstones: probe chains
          // terminate on empty slots, so tombstones count against load.
          if ((occupied_ + 1) * 8 > slots_.size() * 7) {
            grow();
            accumulate(key, v);
            return;
          }
          s = g * kGroupWidth +
              static_cast<std::size_t>(std::countr_zero(em));
          ++occupied_;
        }
        count_probe(steps);
        ctrl_[s] = tag;
        slots_[s].key = key;
        slots_[s].val = v;
        ++size_;
        return;
      }
      g = (g + 1) & group_mask;
    }
  }

  /// Removes `key` if present, leaving a tombstone. Returns whether a
  /// live entry was removed.
  bool erase(lnkey_t key) {
    const SimdIsa isa = active_isa();
    const std::uint8_t tag = detail::swiss_h2(key);
    const std::uint64_t group_mask = num_groups() - 1;
    std::uint64_t g = detail::swiss_h1(key, group_bits_);
    while (true) {
      const std::uint8_t* ctrl = ctrl_.data() + g * kGroupWidth;
      for (std::uint32_t m = detail::group_match(ctrl, tag, isa); m != 0;
           m &= m - 1) {
        const std::size_t s =
            g * kGroupWidth + static_cast<std::size_t>(std::countr_zero(m));
        if (slots_[s].key == key) {
          ctrl_[s] = kCtrlDeleted;  // occupied_ unchanged: still blocks
          slots_[s] = Slot{};
          --size_;
          return true;
        }
      }
      if (detail::group_match(ctrl, kCtrlEmpty, isa) != 0) return false;
      g = (g + 1) & group_mask;
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t num_buckets() const { return slots_.size(); }

  [[nodiscard]] std::size_t footprint_bytes() const {
    return ctrl_.capacity() + slots_.capacity() * sizeof(Slot);
  }

  /// Visits live entries in slot order — fixed by insertion history,
  /// identical across ISA tiers (the FP-determinism linchpin: drain
  /// order is accumulation order downstream).
  template <typename F>
  void drain(F&& f) const {
    for (std::size_t s = 0; s < slots_.size(); ++s) {
      if ((ctrl_[s] & 0x80u) == 0) f(slots_[s].key, slots_[s].val);
    }
  }

  /// Empties the table (tombstones included), keeping capacity.
  void clear() {
    std::fill(ctrl_.begin(), ctrl_.end(), kCtrlEmpty);
    std::fill(slots_.begin(), slots_.end(), Slot{});
    size_ = 0;
    occupied_ = 0;
  }

 private:
  // LinearProbeAccumulator's reserved sentinel; kept out of the key
  // space here too so the two accumulators stay interchangeable.
  static constexpr lnkey_t kReservedKey = std::numeric_limits<lnkey_t>::max();
  static constexpr std::size_t kNoSlot =
      std::numeric_limits<std::size_t>::max();

  struct Slot {
    lnkey_t key = 0;
    value_t val = 0;
  };

  [[nodiscard]] std::size_t num_groups() const {
    return std::size_t{1} << group_bits_;
  }

  void grow() {
    SPARTA_COUNTER_ADD("simd.swiss_hta.grows", 1);
    std::vector<std::uint8_t> old_ctrl;
    std::vector<Slot> old_slots;
    old_ctrl.swap(ctrl_);
    old_slots.swap(slots_);
    ++group_bits_;
    const std::size_t slots = num_groups() * kGroupWidth;
    ctrl_.assign(slots, kCtrlEmpty);
    slots_.assign(slots, Slot{});
    size_ = 0;
    occupied_ = 0;  // rehash drops tombstones
    const SimdIsa isa = active_isa();
    const std::uint64_t group_mask = num_groups() - 1;
    for (std::size_t s = 0; s < old_slots.size(); ++s) {
      if ((old_ctrl[s] & 0x80u) != 0) continue;
      const lnkey_t key = old_slots[s].key;
      std::uint64_t g = detail::swiss_h1(key, group_bits_);
      while (true) {
        const std::uint8_t* ctrl = ctrl_.data() + g * kGroupWidth;
        const std::uint32_t free_mask = detail::group_match_free(ctrl, isa);
        if (free_mask != 0) {
          const std::size_t d =
              g * kGroupWidth +
              static_cast<std::size_t>(std::countr_zero(free_mask));
          ctrl_[d] = detail::swiss_h2(key);
          slots_[d] = old_slots[s];
          ++size_;
          ++occupied_;
          break;
        }
        g = (g + 1) & group_mask;
      }
    }
  }

  static void count_probe(std::size_t steps) {
    SPARTA_COUNTER_ADD("simd.swiss_hta.accumulates", 1);
    SPARTA_COUNTER_ADD("simd.swiss_hta.probe_steps", steps);
    SPARTA_HISTOGRAM_RECORD("simd.swiss_hta.probe_len", steps);
  }

  int group_bits_ = 1;
  std::size_t size_ = 0;      ///< live entries
  std::size_t occupied_ = 0;  ///< live + tombstoned (load-factor input)
  std::vector<std::uint8_t> ctrl_;
  std::vector<Slot> slots_;
};

}  // namespace sparta::simd
