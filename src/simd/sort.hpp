// ISA-dispatched LSD radix sort on linearized LN keys — the stage-①
// (permute + sort X) and stage-⑤ (output sort) kernel.
//
// Every tier is a STABLE sort by the full key, so all tiers produce the
// identical permutation (a stable sort's output is uniquely determined
// by its input) — duplicate-coordinate ties land in the same order no
// matter which ISA ran, which is what lets `fuzz_sptc --isa-diff`
// demand bitwise-equal tensors. This also replaces the previous
// unstable comparison-sort path for small inputs.
//
// The vector tier fuses all pass histograms into a single read sweep
// (one pass over 8n bytes instead of one per digit), which on wide
// cores hides the counting behind the scatter's memory traffic; the
// scalar tier is the existing per-pass radix_sort_pairs.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/cancel.hpp"
#include "common/radix.hpp"
#include "obs/metrics.hpp"
#include "simd/dispatch.hpp"

namespace sparta::simd {

namespace detail {

/// Stable insertion sort by key — the shared small-n path. Identical
/// on every tier by construction.
template <typename Payload>
void insertion_sort_pairs(
    std::vector<std::pair<std::uint64_t, Payload>>& items) {
  for (std::size_t i = 1; i < items.size(); ++i) {
    auto item = std::move(items[i]);
    std::size_t j = i;
    while (j > 0 && items[j - 1].first > item.first) {
      items[j] = std::move(items[j - 1]);
      --j;
    }
    items[j] = std::move(item);
  }
}

/// LSD radix with fused histograms: one read pass computes the digit
/// counts for every pass, then each non-trivial pass is a pure stable
/// scatter. Same digit width, pass order, and trivial-pass skip as
/// radix_sort_pairs, so the two tiers are interchangeable.
template <typename Payload>
void radix_sort_pairs_fused(
    std::vector<std::pair<std::uint64_t, Payload>>& items, int key_bits,
    const CancelToken& cancel = {}) {
  using Item = std::pair<std::uint64_t, Payload>;
  const std::size_t n = items.size();
  const int passes = (key_bits + 7) / 8;

  std::vector<std::array<std::size_t, 256>> count(
      static_cast<std::size_t>(passes));
  for (auto& c : count) c.fill(0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = items[i].first;
    for (int pass = 0; pass < passes; ++pass) {
      ++count[static_cast<std::size_t>(pass)][(key >> (pass * 8)) & 0xff];
    }
  }

  std::vector<Item> scratch(n);
  Item* src = items.data();
  Item* dst = scratch.data();
  for (int pass = 0; pass < passes; ++pass) {
    // One linear scatter pass (≤ 8 of them) between cancel polls.
    cancel.check("sort.radix_pass");
    auto& c = count[static_cast<std::size_t>(pass)];
    bool trivial = false;
    for (std::size_t v : c) {
      if (v == n) {
        trivial = true;
        break;
      }
    }
    if (trivial) continue;

    const int shift = pass * 8;
    std::size_t running = 0;
    for (int b = 0; b < 256; ++b) {
      const std::size_t v = c[static_cast<std::size_t>(b)];
      c[static_cast<std::size_t>(b)] = running;
      running += v;
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[c[(src[i].first >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != items.data()) {
    std::copy(src, src + n, items.data());
  }
}

}  // namespace detail

/// Below this size a stable insertion sort beats any radix setup; the
/// cutoff is shared across tiers so the dispatch never changes results.
inline constexpr std::size_t kRadixCutoff = 32;

/// Sorts `items` by .first ascending, stable, dispatching on
/// active_isa(). `key_bits` bounds the significant key width. `cancel`
/// is polled once per radix pass (the scalar tier sorts between two
/// polls — its passes live in common/radix.hpp, which stays
/// cancellation-free).
template <typename Payload>
void sort_ln_pairs(std::vector<std::pair<std::uint64_t, Payload>>& items,
                   int key_bits = 64, const CancelToken& cancel = {}) {
  if (items.size() < 2) return;
  if (items.size() < kRadixCutoff) {
    detail::insertion_sort_pairs(items);
    return;
  }
  SPARTA_COUNTER_ADD("simd.radix_sorts", 1);
  cancel.check("sort.radix_pass");
  if (active_isa() == SimdIsa::kScalar) {
    radix_sort_pairs(items, key_bits);
    cancel.check("sort.radix_pass");
  } else {
    detail::radix_sort_pairs_fused(items, key_bits, cancel);
  }
}

}  // namespace sparta::simd
