// Runtime ISA dispatch for the SIMD kernel layer (docs/SIMD.md).
//
// Feature detection runs once per process: AVX2 on x86-64, NEON on
// aarch64, with an always-compiled scalar fallback whose semantics are
// bit-identical to the vector paths (same group width, same probe
// order, same stable sort), so forcing `SPARTA_SIMD=scalar` changes
// wall time but never a single output bit — the property the CI
// isa-matrix and differential-fuzz jobs pin down.
//
// The environment override SPARTA_SIMD=scalar|avx2|neon|auto picks the
// tier from outside; ScopedIsaOverride forces it from inside a process
// (tests, the fuzzer's scalar-vs-simd sweep).
#pragma once

#include <atomic>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace sparta::simd {

/// The dispatch tiers. kAvx2/kNeon both drive the 16-wide control-tag
/// group probe (128-bit ops — the swiss-table layout never needs wider
/// vectors) and the fused-histogram radix sort.
enum class SimdIsa : int {
  kScalar = 0,  ///< portable fallback, always compiled
  kAvx2 = 1,    ///< x86-64 with AVX2 (group ops use SSE2 baseline)
  kNeon = 2,    ///< aarch64 Advanced SIMD
};

[[nodiscard]] constexpr std::string_view isa_name(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kNeon:
      return "neon";
  }
  return "?";
}

/// Best tier this machine supports, from one-time CPUID/feature
/// detection. Pure of the environment: SPARTA_SIMD is applied by
/// resolve_isa()/active_isa(), not here.
[[nodiscard]] inline SimdIsa detect_native_isa() {
#if defined(__aarch64__)
  return SimdIsa::kNeon;
#elif defined(__x86_64__) || defined(_M_X64)
  static const bool avx2 = __builtin_cpu_supports("avx2");
  return avx2 ? SimdIsa::kAvx2 : SimdIsa::kScalar;
#else
  return SimdIsa::kScalar;
#endif
}

/// Maps an SPARTA_SIMD value to a tier. null/""/"auto" mean native
/// detection; a tier this machine cannot execute, or an unknown value,
/// throws sparta::Error naming the offender and the valid set — a typo
/// in CI must fail the job, not silently run scalar.
[[nodiscard]] inline SimdIsa resolve_isa(const char* env) {
  const std::string_view v = env == nullptr ? std::string_view{} : env;
  if (v.empty() || v == "auto") return detect_native_isa();
  if (v == "scalar") return SimdIsa::kScalar;
  if (v == "avx2") {
    if (detect_native_isa() != SimdIsa::kAvx2) {
      throw Error(
          "SPARTA_SIMD=avx2 requested but this machine does not "
          "support AVX2; use 'auto' or 'scalar'");
    }
    return SimdIsa::kAvx2;
  }
  if (v == "neon") {
    if (detect_native_isa() != SimdIsa::kNeon) {
      throw Error(
          "SPARTA_SIMD=neon requested but this is not an aarch64 "
          "machine; use 'auto' or 'scalar'");
    }
    return SimdIsa::kNeon;
  }
  throw Error("SPARTA_SIMD='" + std::string(v) +
              "' is not a recognised tier (valid: scalar, avx2, neon, "
              "auto)");
}

namespace detail {

/// In-process override slot; -1 = none. Relaxed atomics: overriding
/// while a contraction is mid-flight is a caller bug (ScopedIsaOverride
/// is meant for single-threaded test/fuzz drivers), and every tier
/// computes identical results anyway.
inline std::atomic<int>& override_slot() {
  static std::atomic<int> v{-1};
  return v;
}

}  // namespace detail

/// The tier every SIMD kernel dispatches on: the in-process override
/// when one is active, else SPARTA_SIMD (resolved once per process),
/// else native detection.
[[nodiscard]] inline SimdIsa active_isa() {
  const int o = detail::override_slot().load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<SimdIsa>(o);
  static const SimdIsa env_isa = resolve_isa(std::getenv("SPARTA_SIMD"));
  return env_isa;
}

/// Forces a tier for the current scope — the fuzzer's scalar-vs-simd
/// differential sweep and the forced-scalar equivalence tests. Nesting
/// restores the previous override on destruction. Throws when the tier
/// cannot run on this machine.
class ScopedIsaOverride {
 public:
  explicit ScopedIsaOverride(SimdIsa isa)
      : prev_(detail::override_slot().load(std::memory_order_relaxed)) {
    if (isa != SimdIsa::kScalar && isa != detect_native_isa()) {
      throw Error(std::string("ScopedIsaOverride: tier '") +
                  std::string(isa_name(isa)) +
                  "' is not executable on this machine");
    }
    detail::override_slot().store(static_cast<int>(isa),
                                  std::memory_order_relaxed);
  }
  ScopedIsaOverride(const ScopedIsaOverride&) = delete;
  ScopedIsaOverride& operator=(const ScopedIsaOverride&) = delete;
  ~ScopedIsaOverride() {
    detail::override_slot().store(prev_, std::memory_order_relaxed);
  }

 private:
  int prev_;
};

/// True when the vector group ops are worth preferring over the chained
/// tables — the serve-layer selector's default signal.
[[nodiscard]] inline bool vector_isa_active() {
  return active_isa() != SimdIsa::kScalar;
}

}  // namespace sparta::simd
