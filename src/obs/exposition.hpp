// Live metrics exposition: renders the MetricsRegistry as a
// Prometheus-style text snapshot and serves it over a unix domain
// socket while the process runs (sparta_serve --stats-socket).
//
// Wire protocol: connect, read until EOF. Every connection gets one
// fresh snapshot; there is no request parsing, so `nc -U <path>` and
// `curl --unix-socket` (with any path) both work.
//
// Rendering rules:
//   * counters  → `# TYPE sparta_<name> counter` + value
//   * gauges    → `# TYPE sparta_<name> gauge` + value
//   * histograms→ `# TYPE sparta_<name> summary` with p50/p95/p99
//     quantile samples plus _sum and _count (log2-bucket midpoint
//     quantiles — factor-of-2 accuracy, same contract as the JSON
//     export)
// Metric names are sanitized to [a-zA-Z0-9_:] with '.' and any other
// byte mapped to '_', and prefixed "sparta_" so the namespace is
// unambiguous when scraped next to other exporters.
#pragma once

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "obs/json_parse.hpp"
#include "obs/metrics.hpp"

namespace sparta::obs {

namespace detail {

inline std::string prometheus_name(std::string_view raw) {
  std::string out = "sparta_";
  for (const char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

inline void prometheus_number(std::string& out, double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v >= -9.0e15 && v <= 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

}  // namespace detail

/// Renders a MetricsRegistry::to_json() document as Prometheus text.
/// Unparseable input yields an empty string (never throws) — the
/// registry's own writer is the only expected producer.
[[nodiscard]] inline std::string prometheus_text_from_json(
    std::string_view metrics_json) {
  const std::optional<JsonValue> doc = json_parse(metrics_json);
  if (!doc || !doc->is_object()) return {};
  std::string out;
  const auto emit_scalar = [&out](const std::string& kind,
                                  const std::string& name, double v) {
    out += "# TYPE " + name + " " + kind + "\n" + name + " ";
    detail::prometheus_number(out, v);
    out += "\n";
  };
  if (const JsonValue* counters = doc->get("counters")) {
    for (const auto& [name, v] : counters->obj) {
      emit_scalar("counter", detail::prometheus_name(name),
                  v.number_or(0.0));
    }
  }
  if (const JsonValue* gauges = doc->get("gauges")) {
    for (const auto& [name, v] : gauges->obj) {
      emit_scalar("gauge", detail::prometheus_name(name), v.number_or(0.0));
    }
  }
  if (const JsonValue* hists = doc->get("histograms")) {
    for (const auto& [name, h] : hists->obj) {
      if (!h.is_object()) continue;
      const std::string pname = detail::prometheus_name(name);
      out += "# TYPE " + pname + " summary\n";
      for (const auto& [q, key] :
           {std::pair<const char*, const char*>{"0.5", "p50"},
            {"0.95", "p95"},
            {"0.99", "p99"}}) {
        if (const JsonValue* p = h.get(key)) {
          out += pname + "{quantile=\"" + q + "\"} ";
          detail::prometheus_number(out, p->number_or(0.0));
          out += "\n";
        }
      }
      if (const JsonValue* sum = h.get("sum")) {
        out += pname + "_sum ";
        detail::prometheus_number(out, sum->number_or(0.0));
        out += "\n";
      }
      if (const JsonValue* count = h.get("count")) {
        out += pname + "_count ";
        detail::prometheus_number(out, count->number_or(0.0));
        out += "\n";
      }
    }
  }
  return out;
}

/// Snapshot of `reg` as Prometheus text.
[[nodiscard]] inline std::string prometheus_text(
    const MetricsRegistry& reg) {
  return prometheus_text_from_json(reg.to_json());
}

/// Unix-domain stream socket serving one Prometheus snapshot per
/// connection. start() binds and spawns the accept loop; stop() (and
/// the destructor) shuts the listener down and joins. Scrape failures
/// never propagate: a dead client mid-write just closes that
/// connection.
class StatsSocketServer {
 public:
  explicit StatsSocketServer(MetricsRegistry& reg = MetricsRegistry::global())
      : reg_(reg) {}
  StatsSocketServer(const StatsSocketServer&) = delete;
  StatsSocketServer& operator=(const StatsSocketServer&) = delete;
  ~StatsSocketServer() { stop(); }

  /// Binds `path` (unlinking any stale socket first) and starts
  /// serving. Returns false with a stderr note on bind failure.
  bool start(const std::string& path) {
    stop();
    if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      std::fprintf(stderr, "sparta: stats socket path too long: '%s'\n",
                   path.c_str());
      return false;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      std::perror("sparta: stats socket");
      return false;
    }
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
      std::fprintf(stderr, "sparta: cannot serve stats on '%s'\n",
                   path.c_str());
      ::close(fd);
      return false;
    }
    listen_fd_ = fd;
    path_ = path;
    stopping_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] { accept_loop(); });
    return true;
  }

  /// Registers a producer of extra exposition text appended to every
  /// scrape after the registry snapshot (the serving layer uses this to
  /// publish the VariantSelector state). The producer must return
  /// well-formed Prometheus text; it is invoked on the accept thread.
  void set_extra(std::function<std::string()> extra) {
    std::lock_guard<std::mutex> lk(extra_mu_);
    extra_ = std::move(extra);
  }

  [[nodiscard]] bool running() const { return listen_fd_ >= 0; }
  [[nodiscard]] std::uint64_t scrapes() const {
    return scrapes_.load(std::memory_order_relaxed);
  }

  void stop() {
    if (listen_fd_ < 0) return;
    stopping_.store(true, std::memory_order_relaxed);
    // shutdown() wakes the blocked accept(); close() alone does not on
    // every platform.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    path_.clear();
  }

 private:
  void accept_loop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
      const int conn = ::accept(listen_fd_, nullptr, nullptr);
      if (conn < 0) {
        if (stopping_.load(std::memory_order_relaxed)) break;
        continue;  // EINTR or a client that vanished
      }
      std::string body = prometheus_text(reg_);
      {
        std::lock_guard<std::mutex> lk(extra_mu_);
        if (extra_) body += extra_();
      }
      std::size_t off = 0;
      while (off < body.size()) {
        const ::ssize_t w = ::send(conn, body.data() + off,
                                   body.size() - off, MSG_NOSIGNAL);
        if (w <= 0) break;
        off += static_cast<std::size_t>(w);
      }
      ::close(conn);
      scrapes_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  MetricsRegistry& reg_;
  std::mutex extra_mu_;
  std::function<std::string()> extra_;
  int listen_fd_ = -1;
  std::string path_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> scrapes_{0};
  std::thread thread_;
};

}  // namespace sparta::obs
