// Lock-free per-thread trace recorder emitting Chrome/Perfetto
// `trace_event` JSON (the {"traceEvents": [...]} object form; open the
// file at https://ui.perfetto.dev or chrome://tracing).
//
// Each thread appends events to its own buffer — registration of a new
// thread takes the recorder mutex once, every subsequent record is a
// plain vector push_back — so scoped spans can be emitted from inside
// OpenMP regions without serializing the hot path. When the recorder is
// disabled (the default), every instrumentation site costs a single
// relaxed atomic load and a predictable branch: no event is built, no
// buffer is touched, no allocation happens.
//
// Enabling, one of:
//   * env:  SPARTA_TRACE=out.json   (armed before main(); the merged
//           trace is written at process exit)
//   * code: TraceRecorder::global().enable();  ... run ...
//           TraceRecorder::global().write_file("out.json");
//
// Span taxonomy and the full event catalogue: docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace sparta::obs {

/// Ambient correlation for the calling thread: the request id plus,
/// for multi-step plan execution (src/plan/), the plan id and the
/// request's step index within the plan. request_id 0 = not
/// request-scoped; plan_id 0 = not part of a plan.
struct Correlation {
  std::uint64_t request_id = 0;
  std::uint64_t plan_id = 0;
  int step_index = -1;
};

namespace detail {
// Namespace-scope flag so the disabled fast path is one relaxed load,
// with no function-local-static guard in front of it.
inline std::atomic<bool> g_trace_enabled{false};

// Ambient correlation for the calling thread. Established by
// RequestIdScope / PlanStepScope (the service installs them per worker,
// the engine re-installs them inside OpenMP regions) and stamped into
// every span/instant arg so concurrent traces stay attributable.
inline thread_local std::uint64_t t_request_id = 0;
inline thread_local std::uint64_t t_plan_id = 0;
inline thread_local int t_step_index = -1;
}  // namespace detail

/// True when the global recorder is collecting events.
[[nodiscard]] inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// The calling thread's ambient request id (0 = none).
[[nodiscard]] inline std::uint64_t current_request_id() {
  return detail::t_request_id;
}

/// The calling thread's ambient plan id (0 = not inside a plan step).
[[nodiscard]] inline std::uint64_t current_plan_id() {
  return detail::t_plan_id;
}

/// The full ambient triple, for capture before an OpenMP region (pool
/// threads must re-install it; see RequestIdScope).
[[nodiscard]] inline Correlation current_correlation() {
  return {detail::t_request_id, detail::t_plan_id, detail::t_step_index};
}

/// RAII: sets the calling thread's correlation for the scope's
/// lifetime, restoring the previous values on exit. Always overwrites —
/// OpenMP pool threads retain thread-locals across parallel regions, so
/// a region must re-establish the ids captured on the spawning thread
/// even when they are 0 (otherwise a stale id from an earlier request
/// would leak into this one's events). The request-id constructor
/// clears the plan pair for the same reason: a bare request is not part
/// of whatever plan last ran on this thread.
class RequestIdScope {
 public:
  explicit RequestIdScope(std::uint64_t id)
      : RequestIdScope(Correlation{id, 0, -1}) {}
  explicit RequestIdScope(const Correlation& c)
      : prev_(current_correlation()) {
    detail::t_request_id = c.request_id;
    detail::t_plan_id = c.plan_id;
    detail::t_step_index = c.step_index;
  }
  RequestIdScope(const RequestIdScope&) = delete;
  RequestIdScope& operator=(const RequestIdScope&) = delete;
  ~RequestIdScope() {
    detail::t_request_id = prev_.request_id;
    detail::t_plan_id = prev_.plan_id;
    detail::t_step_index = prev_.step_index;
  }

 private:
  Correlation prev_;
};

/// RAII: overlays the plan half of the ambient correlation (the request
/// id is left alone — the service installs that separately per worker).
/// plan_id 0 clears the pair, mirroring RequestIdScope's
/// always-overwrite contract.
class PlanStepScope {
 public:
  PlanStepScope(std::uint64_t plan_id, int step_index)
      : prev_plan_(detail::t_plan_id), prev_step_(detail::t_step_index) {
    detail::t_plan_id = plan_id;
    detail::t_step_index = plan_id == 0 ? -1 : step_index;
  }
  PlanStepScope(const PlanStepScope&) = delete;
  PlanStepScope& operator=(const PlanStepScope&) = delete;
  ~PlanStepScope() {
    detail::t_plan_id = prev_plan_;
    detail::t_step_index = prev_step_;
  }

 private:
  std::uint64_t prev_plan_;
  int prev_step_;
};

namespace detail {
// Splices "request_id":N (and, inside a plan step, "plan_id":P,
// "step_index":S) into a preformed JSON object ("{...}" or empty).
// No-op for request_id 0 so non-request traces are byte-identical to
// what they were before correlation existed.
inline std::string with_request_id(std::string args, const Correlation& c) {
  if (c.request_id == 0) return args;
  std::string tag = "\"request_id\":" + std::to_string(c.request_id);
  if (c.plan_id != 0) {
    tag += ",\"plan_id\":" + std::to_string(c.plan_id);
    tag += ",\"step_index\":" + std::to_string(c.step_index);
  }
  if (args.size() < 2 || args.front() != '{' || args.back() != '}') {
    return "{" + tag + "}";
  }
  if (args.size() == 2) return "{" + tag + "}";
  return "{" + tag + "," + args.substr(1);
}
}  // namespace detail

/// One recorded event. `phase` follows the trace_event format: 'X' =
/// complete (span with duration), 'i' = instant, 'C' = counter.
struct TraceEvent {
  std::string name;
  char phase = 'X';
  std::int64_t ts_us = 0;   ///< microseconds since recorder epoch
  std::int64_t dur_us = 0;  ///< complete events only
  std::string args;         ///< preformed JSON object ("{...}") or empty
  int tid = 0;              ///< filled in by snapshot()/to_json()
};

class TraceRecorder {
 public:
  TraceRecorder() : epoch_(clock::now()) {}

  /// The process-wide recorder every instrumentation site reports to.
  static TraceRecorder& global() {
    static TraceRecorder* r = new TraceRecorder();  // never destroyed:
    return *r;  // worker threads may record during static teardown
  }

  void enable() {
    enabled_.store(true, std::memory_order_relaxed);
    if (this == &global()) {
      detail::g_trace_enabled.store(true, std::memory_order_relaxed);
    }
  }
  void disable() {
    enabled_.store(false, std::memory_order_relaxed);
    if (this == &global()) {
      detail::g_trace_enabled.store(false, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since this recorder's construction (steady clock, so
  /// timestamps are monotonic per thread by construction).
  [[nodiscard]] std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               clock::now() - epoch_)
        .count();
  }

  /// Appends `e` to the calling thread's buffer. Callers must check
  /// enabled() first (Span and the emit helpers below do).
  void record(TraceEvent&& e) {
    ThreadBuffer& buf = buffer_for_this_thread();
    if (buf.events.size() >= max_events_per_thread_) {
      ++buf.dropped;
      SPARTA_COUNTER_ADD("obs.trace.dropped", 1);
      return;
    }
    buf.events.push_back(std::move(e));
  }

  /// Caps per-thread buffers so long runs cannot grow without bound;
  /// excess events are counted as dropped instead.
  void set_max_events_per_thread(std::size_t n) { max_events_per_thread_ = n; }

  /// Path written by flush_output() (the SPARTA_TRACE atexit hook).
  void set_output_path(std::string path) {
    std::lock_guard<std::mutex> lk(mu_);
    output_path_ = std::move(path);
  }

  /// Writes the merged trace to the configured output path, if any.
  void flush_output() {
    std::string path;
    {
      std::lock_guard<std::mutex> lk(mu_);
      path = output_path_;
    }
    if (!path.empty()) write_file(path);
  }

  /// Discards all recorded events (buffers stay registered).
  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& b : buffers_) {
      b->events.clear();
      b->dropped = 0;
    }
  }

  [[nodiscard]] std::size_t num_events() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t n = 0;
    for (const auto& b : buffers_) n += b->events.size();
    return n;
  }

  [[nodiscard]] std::size_t num_thread_buffers() const {
    std::lock_guard<std::mutex> lk(mu_);
    return buffers_.size();
  }

  [[nodiscard]] std::uint64_t dropped_events() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t n = 0;
    for (const auto& b : buffers_) n += b->dropped;
    return n;
  }

  /// Copy of every recorded event with its thread id filled in. Events
  /// within one tid are in record order (monotonic timestamps).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<TraceEvent> out;
    for (const auto& b : buffers_) {
      for (const TraceEvent& e : b->events) {
        out.push_back(e);
        out.back().tid = b->tid;
      }
    }
    return out;
  }

  /// The merged trace as a Chrome trace_event JSON document.
  [[nodiscard]] std::string to_json() const {
    std::lock_guard<std::mutex> lk(mu_);
    JsonWriter w;
    w.begin_object();
    w.key("traceEvents").begin_array();
    for (const auto& b : buffers_) {
      for (const TraceEvent& e : b->events) {
        w.begin_object();
        w.key("name").value(std::string_view(e.name));
        w.key("cat").value("sparta");
        w.key("ph").value(std::string_view(&e.phase, 1));
        w.key("ts").value(static_cast<double>(e.ts_us));
        if (e.phase == 'X') {
          w.key("dur").value(static_cast<double>(e.dur_us));
        }
        if (e.phase == 'i') w.key("s").value("t");
        w.key("pid").value(1);
        w.key("tid").value(b->tid);
        if (!e.args.empty()) w.key("args").raw(e.args);
        w.end_object();
      }
    }
    w.end_array();
    std::uint64_t dropped = 0;
    for (const auto& b : buffers_) dropped += b->dropped;
    w.key("droppedEvents").value(dropped);
    w.key("dropped_events").value(dropped);  // snake_case alias
    w.end_object();
    return w.str();
  }

  /// Writes to_json() to `path`; returns false (with a note on stderr)
  /// on I/O failure — observability must never take the process down.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "sparta: cannot write trace to '%s'\n",
                   path.c_str());
      return false;
    }
    const std::string doc = to_json();
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    return ok;
  }

 private:
  using clock = std::chrono::steady_clock;

  struct ThreadBuffer {
    int tid = 0;
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
  };

  // Per-(thread, recorder) buffer, cached so the hot path is lock-free.
  // The cache is keyed by a never-reused instance id, not the recorder
  // address: a short-lived test recorder allocated where a destroyed one
  // sat must not hit the dead recorder's cached buffer.
  ThreadBuffer& buffer_for_this_thread() {
    thread_local std::uint64_t cached_id = 0;  // 0 = nothing cached
    thread_local ThreadBuffer* cached_buf = nullptr;
    if (cached_id != id_) {
      std::lock_guard<std::mutex> lk(mu_);
      buffers_.push_back(std::make_unique<ThreadBuffer>());
      buffers_.back()->tid = static_cast<int>(buffers_.size()) - 1;
      cached_id = id_;
      cached_buf = buffers_.back().get();
    }
    return *cached_buf;
  }

  static std::uint64_t next_id() {
    static std::atomic<std::uint64_t> n{0};
    return n.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  const std::uint64_t id_ = next_id();
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> enabled_{false};
  std::size_t max_events_per_thread_ = std::size_t{1} << 20;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::string output_path_;
};

/// RAII scoped span: records a complete ('X') event covering its
/// lifetime. Inert (no clock read, no allocation) when both the
/// recorder and the flight recorder are disabled at construction. When
/// only the flight recorder is on, the span feeds its ring and nothing
/// else — names are kept, args are not. Every recorded event carries
/// the ambient request id (current_request_id()) in its args.
class Span {
 public:
  explicit Span(const char* name) : Span(TraceRecorder::global(), name) {}
  Span(TraceRecorder& rec, const char* name) {
    traced_ = rec.enabled();
    flight_ = flight_enabled() && &rec == &TraceRecorder::global();
    if (traced_ || flight_) {
      rec_ = &rec;
      name_ = name;
      start_us_ = rec.now_us();
    }
  }
  Span(TraceRecorder& rec, std::string name) {
    traced_ = rec.enabled();
    flight_ = flight_enabled() && &rec == &TraceRecorder::global();
    if (traced_ || flight_) {
      rec_ = &rec;
      owned_name_ = std::move(name);
      start_us_ = rec.now_us();
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { finish(); }

  /// True when this span will be recorded with args (full trace);
  /// guard arg construction on it. Flight-only spans report false —
  /// the ring keeps no args, so building them would be wasted work.
  [[nodiscard]] bool active() const { return traced_; }

  /// Attaches a preformed JSON object ("{...}") as the span's args.
  void set_args(std::string args_json) { args_ = std::move(args_json); }

  /// Ends the span early (idempotent; the destructor is then a no-op).
  void finish() {
    if (!rec_) return;
    const std::int64_t end_us = rec_->now_us();
    const Correlation corr = current_correlation();
    if (flight_) {
      FlightRecorder::global().record(
          name_ != nullptr ? name_ : owned_name_.c_str(), 'X', start_us_,
          end_us - start_us_, corr.request_id);
    }
    if (traced_) {
      TraceEvent e;
      e.name = name_ ? std::string(name_) : std::move(owned_name_);
      e.phase = 'X';
      e.ts_us = start_us_;
      e.dur_us = end_us - start_us_;
      e.args = detail::with_request_id(std::move(args_), corr);
      rec_->record(std::move(e));
    }
    rec_ = nullptr;
    traced_ = false;
    flight_ = false;
  }

 private:
  TraceRecorder* rec_ = nullptr;
  const char* name_ = nullptr;
  std::string owned_name_;
  std::string args_;
  std::int64_t start_us_ = 0;
  bool traced_ = false;
  bool flight_ = false;
};

/// Instant event ('i') on the global recorder (and the flight ring);
/// no-op when both are disabled.
inline void trace_instant(std::string name, std::string args_json = {}) {
  const bool traced = trace_enabled();
  const bool flight = flight_enabled();
  if (!traced && !flight) return;
  TraceRecorder& rec = TraceRecorder::global();
  const std::int64_t ts = rec.now_us();
  const Correlation corr = current_correlation();
  if (flight) {
    FlightRecorder::global().record(name.c_str(), 'i', ts, 0,
                                    corr.request_id);
  }
  if (!traced) return;
  TraceEvent e;
  e.name = std::move(name);
  e.phase = 'i';
  e.ts_us = ts;
  e.args = detail::with_request_id(std::move(args_json), corr);
  rec.record(std::move(e));
}

/// Counter track event ('C') on the global recorder. `args_json` maps
/// series name to value, e.g. {"searches":12,"hits":9}. Counter tracks
/// are per-series plots, so the request id is NOT spliced into the args
/// (it would become a bogus series); flight rings keep it out of band.
inline void trace_counter(std::string name, std::string args_json) {
  const bool traced = trace_enabled();
  const bool flight = flight_enabled();
  if (!traced && !flight) return;
  TraceRecorder& rec = TraceRecorder::global();
  const std::int64_t ts = rec.now_us();
  if (flight) {
    FlightRecorder::global().record(name.c_str(), 'C', ts, 0,
                                    current_request_id());
  }
  if (!traced) return;
  TraceEvent e;
  e.name = std::move(name);
  e.phase = 'C';
  e.ts_us = ts;
  e.args = std::move(args_json);
  rec.record(std::move(e));
}

namespace detail {

// Arms SPARTA_TRACE once per process, before main(): enables the global
// recorder and flushes the merged trace to the given path at exit.
inline const bool g_trace_env_armed = [] {
  if (const char* path = std::getenv("SPARTA_TRACE")) {
    if (*path != '\0') {
      TraceRecorder::global().set_output_path(path);
      TraceRecorder::global().enable();
      std::atexit([] { TraceRecorder::global().flush_output(); });
    }
  }
  return true;
}();

}  // namespace detail

}  // namespace sparta::obs
