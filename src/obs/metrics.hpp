// Process-wide metrics registry: named monotonic counters and gauges
// backed by relaxed atomics.
//
// Cost contract: when metrics are disabled (the default) every
// instrumentation site is a single relaxed load of one namespace-scope
// flag plus a predictable branch — no map lookup, no atomic RMW, no
// allocation. Sites cache the Counter/Gauge handle in a function-local
// static that is only initialized the first time the enabled branch is
// taken (see SPARTA_COUNTER_ADD / SPARTA_GAUGE_MAX).
//
// Enabling, one of:
//   * env:  SPARTA_METRICS=out.json  (armed before main(); the registry
//           is exported as JSON at process exit; "-" = stderr)
//   * code: MetricsRegistry::global().enable();  ... run ...
//           MetricsRegistry::global().write_file("out.json");
//
// Counter catalogue: docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "obs/histogram.hpp"
#include "obs/json.hpp"

namespace sparta::obs {

namespace detail {
inline std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

/// The single branch gating every metrics site.
[[nodiscard]] inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Monotonic counter. add() re-checks the enable flag so direct callers
/// stay gated; hot paths that already branched use add_unchecked().
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (metrics_enabled()) add_unchecked(n);
  }
  void add_unchecked(std::uint64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Gauge: last-set value with a high-water-mark combinator.
class Gauge {
 public:
  void set(std::uint64_t n) {
    if (metrics_enabled()) set_unchecked(n);
  }
  void set_unchecked(std::uint64_t n) {
    v_.store(n, std::memory_order_relaxed);
  }
  void max(std::uint64_t n) {
    if (metrics_enabled()) max_unchecked(n);
  }
  void max_unchecked(std::uint64_t n) {
    std::uint64_t cur = v_.load(std::memory_order_relaxed);
    while (n > cur &&
           !v_.compare_exchange_weak(cur, n, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global() {
    static MetricsRegistry* r = new MetricsRegistry();  // never destroyed
    return *r;
  }

  void enable() {
    enabled_ = true;
    if (this == &global()) {
      detail::g_metrics_enabled.store(true, std::memory_order_relaxed);
    }
  }
  void disable() {
    enabled_ = false;
    if (this == &global()) {
      detail::g_metrics_enabled.store(false, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Get-or-create; the returned reference is stable for the process
  /// lifetime, so call sites may cache it.
  Counter& counter(std::string_view name) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = counters_[std::string(name)];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
  }
  Gauge& gauge(std::string_view name) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = gauges_[std::string(name)];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
  }
  Log2Histogram& histogram(std::string_view name) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = histograms_[std::string(name)];
    if (!slot) slot = std::make_unique<Log2Histogram>();
    return *slot;
  }

  /// Current value, 0 when the metric was never touched (tests).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = counters_.find(std::string(name));
    return it == counters_.end() ? 0 : it->second->value();
  }
  [[nodiscard]] std::uint64_t gauge_value(std::string_view name) const {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = gauges_.find(std::string(name));
    return it == gauges_.end() ? 0 : it->second->value();
  }
  [[nodiscard]] std::uint64_t histogram_count(std::string_view name) const {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = histograms_.find(std::string(name));
    return it == histograms_.end() ? 0 : it->second->count();
  }

  /// Attaches a preformed JSON value under "sections"/`name` in the
  /// export — e.g. the engine publishes StageTimes::to_json() here.
  void set_json_section(std::string name, std::string json) {
    std::lock_guard<std::mutex> lk(mu_);
    sections_[std::move(name)] = std::move(json);
  }

  /// Zeroes every counter, gauge and histogram and drops sections.
  void reset() {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
    sections_.clear();
  }

  /// {"<name>": {"count":..,"p50":..,...}, ...} for every histogram —
  /// the bench --json "histograms" section.
  [[nodiscard]] std::string histograms_json() const {
    std::lock_guard<std::mutex> lk(mu_);
    JsonWriter w;
    w.begin_object();
    for (const auto& [name, h] : histograms_) {
      w.key(name).raw(h->to_json());
    }
    w.end_object();
    return w.str();
  }

  /// {"schema_version":1,"counters":{...},"gauges":{...},
  ///  "histograms":{...},"sections":{...}} with names in sorted order
  /// (std::map) for diffable output.
  [[nodiscard]] std::string to_json() const {
    std::lock_guard<std::mutex> lk(mu_);
    JsonWriter w;
    w.begin_object();
    w.key("schema_version").value(1);
    w.key("counters").begin_object();
    for (const auto& [name, c] : counters_) {
      w.key(name).value(c->value());
    }
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, g] : gauges_) {
      w.key(name).value(g->value());
    }
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [name, h] : histograms_) {
      w.key(name).raw(h->to_json());
    }
    w.end_object();
    w.key("sections").begin_object();
    for (const auto& [name, json] : sections_) {
      w.key(name).raw(json);
    }
    w.end_object();
    w.end_object();
    return w.str();
  }

  /// Writes to_json() to `path` ("-" = stderr). Never throws.
  bool write_file(const std::string& path) const {
    const std::string doc = to_json();
    if (path == "-") {
      std::fprintf(stderr, "%s\n", doc.c_str());
      return true;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "sparta: cannot write metrics to '%s'\n",
                   path.c_str());
      return false;
    }
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    return ok;
  }

 private:
  mutable std::mutex mu_;
  bool enabled_ = false;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Log2Histogram>> histograms_;
  std::map<std::string, std::string> sections_;
};

/// Adds `n` to counter `name` where the name is built at runtime
/// (labelled names like "serve.outcome.deadline"). Prefer the
/// SPARTA_COUNTER_ADD macro for literal names — it caches the handle;
/// this helper pays the map lookup on every enabled call.
inline void counter_add(std::string_view name, std::uint64_t n = 1) {
  if (metrics_enabled()) {
    MetricsRegistry::global().counter(name).add_unchecked(n);
  }
}

/// Sets gauge `name` (runtime-built name) to `v`; same cost contract as
/// counter_add.
inline void gauge_set(std::string_view name, std::uint64_t v) {
  if (metrics_enabled()) {
    MetricsRegistry::global().gauge(name).set_unchecked(v);
  }
}

namespace detail {

inline const bool g_metrics_env_armed = [] {
  if (const char* path = std::getenv("SPARTA_METRICS")) {
    if (*path != '\0') {
      static std::string out = path;
      MetricsRegistry::global().enable();
      std::atexit([] { MetricsRegistry::global().write_file(out); });
    }
  }
  return true;
}();

}  // namespace detail

}  // namespace sparta::obs

/// Adds `n` to counter `name` (string literal). Disabled cost: one
/// relaxed load + branch; the handle lookup runs once, lazily.
#define SPARTA_COUNTER_ADD(name, n)                                       \
  do {                                                                    \
    if (::sparta::obs::metrics_enabled()) {                               \
      static ::sparta::obs::Counter& sparta_obs_c =                       \
          ::sparta::obs::MetricsRegistry::global().counter(name);         \
      sparta_obs_c.add_unchecked(                                         \
          static_cast<std::uint64_t>(n));                                 \
    }                                                                     \
  } while (0)

/// Raises gauge `name` to at least `n` (high-water mark), gated the same
/// way as SPARTA_COUNTER_ADD.
#define SPARTA_GAUGE_MAX(name, n)                                         \
  do {                                                                    \
    if (::sparta::obs::metrics_enabled()) {                               \
      static ::sparta::obs::Gauge& sparta_obs_g =                         \
          ::sparta::obs::MetricsRegistry::global().gauge(name);           \
      sparta_obs_g.max_unchecked(                                         \
          static_cast<std::uint64_t>(n));                                 \
    }                                                                     \
  } while (0)

/// Sets gauge `name` to `n` (last-write-wins sample, e.g. a queue depth
/// observed at submit/dequeue), gated the same way as
/// SPARTA_COUNTER_ADD.
#define SPARTA_GAUGE_SET(name, n)                                          \
  do {                                                                     \
    if (::sparta::obs::metrics_enabled()) {                                \
      static ::sparta::obs::Gauge& sparta_obs_gs =                         \
          ::sparta::obs::MetricsRegistry::global().gauge(name);            \
      sparta_obs_gs.set_unchecked(                                         \
          static_cast<std::uint64_t>(n));                                  \
    }                                                                      \
  } while (0)

/// Records `v` into histogram `name` (string literal), gated the same
/// way as SPARTA_COUNTER_ADD: one relaxed load + branch when disabled,
/// three relaxed atomic adds when enabled.
#define SPARTA_HISTOGRAM_RECORD(name, v)                                  \
  do {                                                                    \
    if (::sparta::obs::metrics_enabled()) {                               \
      static ::sparta::obs::Log2Histogram& sparta_obs_h =                 \
          ::sparta::obs::MetricsRegistry::global().histogram(name);       \
      sparta_obs_h.record(static_cast<std::uint64_t>(v));                 \
    }                                                                     \
  } while (0)
