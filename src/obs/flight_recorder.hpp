// Always-on crash flight recorder: a lock-free, per-thread ring buffer
// of the last N trace events, kept at bounded cost so it can stay
// enabled in production while the full trace recorder is off.
//
// The ring holds fixed-size POD events (truncated name, phase,
// timestamps, request id — no args, no allocation per record), so the
// hot path is one relaxed load when disabled and, when enabled, a clock
// read plus a store into a preallocated slot. Older events are silently
// overwritten; the dump reports how many.
//
// Dump paths:
//   * dump_file(path) / to_json()   — ordinary code (service error
//     paths, tests); emits a valid Chrome trace_event document that
//     .ci/check_trace.py accepts.
//   * arm_crash_dump(path)          — opens the file eagerly and
//     installs fatal-signal handlers (SIGSEGV/SIGBUS/SIGFPE/SIGILL/
//     SIGABRT) that write the rings with nothing but write(2) on the
//     pre-opened fd: no allocation, no locks, no stdio — async-signal
//     safe. The handler re-raises with the default disposition so the
//     process still dies with the original signal.
//
// Enabling, one of:
//   * env:  SPARTA_FLIGHT=dump.json  (armed before main(): enables the
//           ring and arms the crash handlers on that path)
//   * code: FlightRecorder::global().enable();
//   * CLI:  sparta_serve --flight-dump dump.json
//
// Timestamps use the caller's clock — the trace layer records with
// TraceRecorder::global().now_us(), so flight dumps and full traces
// share an epoch and can be compared side by side.
#pragma once

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace sparta::obs {

namespace detail {
// Namespace-scope flag: the disabled fast path at every trace site is
// one relaxed load, same contract as g_trace_enabled.
inline std::atomic<bool> g_flight_enabled{false};
// Fd pre-opened by arm_crash_dump(); -1 = crash dumping not armed.
inline std::atomic<int> g_flight_crash_fd{-1};
}  // namespace detail

/// True when the global flight recorder is collecting events.
[[nodiscard]] inline bool flight_enabled() {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}

/// One ring slot. Fixed-size POD: a signal handler can format it with
/// no allocator and a concurrent writer can at worst tear it into
/// garbage bytes, which the dumpers sanitize instead of trusting.
struct FlightEvent {
  char name[23] = {};  ///< truncated, NUL-padded
  char phase = 'X';    ///< 'X' | 'i' | 'C' (trace_event phases)
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::uint64_t request_id = 0;  ///< 0 = not request-scoped
};

class FlightRecorder {
 public:
  /// Hard cap on registered threads; later threads share the last ring
  /// slot-0 never happens in practice (OpenMP pools are far smaller).
  static constexpr std::size_t kMaxRings = 256;

  static FlightRecorder& global() {
    static FlightRecorder* r = new FlightRecorder();  // never destroyed:
    return *r;  // signal handlers and exiting threads may still read it
  }

  void enable() {
    enabled_.store(true, std::memory_order_relaxed);
    if (this == &global()) {
      detail::g_flight_enabled.store(true, std::memory_order_relaxed);
    }
  }
  void disable() {
    enabled_.store(false, std::memory_order_relaxed);
    if (this == &global()) {
      detail::g_flight_enabled.store(false, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Ring size per thread, rounded up to a power of two. Applies to
  /// rings registered after the call (set it before the workload).
  void set_ring_capacity(std::size_t n) {
    std::size_t cap = 64;
    while (cap < n) cap <<= 1;
    ring_capacity_.store(cap, std::memory_order_relaxed);
  }

  /// Appends one event to the calling thread's ring, overwriting the
  /// oldest when full. Callers must check flight_enabled() first.
  void record(const char* name, char phase, std::int64_t ts_us,
              std::int64_t dur_us, std::uint64_t request_id) {
    Ring& ring = ring_for_this_thread();
    const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
    FlightEvent& slot = ring.slots[h & ring.mask];
    std::size_t i = 0;
    if (name != nullptr) {
      for (; i + 1 < sizeof(slot.name) && name[i] != '\0'; ++i) {
        slot.name[i] = name[i];
      }
    }
    slot.name[i] = '\0';
    slot.phase = phase;
    slot.ts_us = ts_us;
    slot.dur_us = dur_us;
    slot.request_id = request_id;
    // Publish after the slot is written so dumpers walking [.., head)
    // never see a slot that was reserved but not yet filled.
    ring.head.store(h + 1, std::memory_order_release);
  }

  /// Drops all recorded events (rings stay registered).
  void clear() {
    const std::size_t n = nrings_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      rings_[i]->head.store(0, std::memory_order_relaxed);
    }
  }

  /// Events currently resident across all rings.
  [[nodiscard]] std::size_t num_events() const {
    const std::size_t n = nrings_.load(std::memory_order_acquire);
    std::size_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Ring& r = *rings_[i];
      const std::uint64_t h = r.head.load(std::memory_order_acquire);
      total += static_cast<std::size_t>(
          h < r.mask + 1 ? h : r.mask + 1);
    }
    return total;
  }

  /// Events overwritten (lost to ring wrap) across all rings.
  [[nodiscard]] std::uint64_t dropped_events() const {
    const std::size_t n = nrings_.load(std::memory_order_acquire);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Ring& r = *rings_[i];
      const std::uint64_t h = r.head.load(std::memory_order_acquire);
      const std::uint64_t cap = r.mask + 1;
      if (h > cap) total += h - cap;
    }
    return total;
  }

  /// The resident events as a Chrome trace_event document (non-signal
  /// path: ordinary allocation, oldest-first per ring).
  [[nodiscard]] std::string to_json() const {
    JsonWriter w;
    w.begin_object();
    w.key("traceEvents").begin_array();
    const std::size_t n = nrings_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const Ring& r = *rings_[i];
      const std::uint64_t h = r.head.load(std::memory_order_acquire);
      const std::uint64_t cap = r.mask + 1;
      for (std::uint64_t e = h > cap ? h - cap : 0; e < h; ++e) {
        const FlightEvent ev = r.slots[e & r.mask];  // copy: may tear
        const std::array<char, 24> nm = sanitized_name(ev);
        w.begin_object();
        w.key("name").value(std::string_view(nm.data()));
        w.key("cat").value("sparta-flight");
        const char ph = valid_phase(ev.phase);
        w.key("ph").value(std::string_view(&ph, 1));
        w.key("ts").value(static_cast<double>(ev.ts_us));
        if (ph == 'X') w.key("dur").value(static_cast<double>(ev.dur_us));
        if (ph == 'i') w.key("s").value("t");
        w.key("pid").value(1);
        w.key("tid").value(r.tid);
        if (ev.request_id != 0) {
          w.key("args").begin_object();
          w.key("request_id").value(ev.request_id);
          w.end_object();
        }
        w.end_object();
      }
    }
    w.end_array();
    w.key("droppedEvents").value(dropped_events());
    w.key("dropped_events").value(dropped_events());
    w.key("flight_recorder").value(true);
    w.end_object();
    return w.str();
  }

  /// Writes to_json() to `path`; never throws (stderr note on failure).
  bool dump_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "sparta: cannot write flight dump to '%s'\n",
                   path.c_str());
      return false;
    }
    const std::string doc = to_json();
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    return ok;
  }

  /// Async-signal-safe dump of the rings to `fd` as the same Chrome
  /// trace document: only write(2), stack buffers, manual integer
  /// formatting. Public so tests can exercise the crash path without
  /// actually crashing.
  void write_crash_dump(int fd) const {
    FdWriter w(fd);
    w.puts("{\"traceEvents\":[");
    bool first = true;
    const std::size_t n = nrings_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      const Ring& r = *rings_[i];
      const std::uint64_t h = r.head.load(std::memory_order_acquire);
      const std::uint64_t cap = r.mask + 1;
      for (std::uint64_t e = h > cap ? h - cap : 0; e < h; ++e) {
        const FlightEvent& ev = r.slots[e & r.mask];
        if (!first) w.put(',');
        first = false;
        const std::array<char, 24> nm = sanitized_name(ev);
        w.puts("{\"name\":\"");
        w.puts(nm.data());
        w.puts("\",\"cat\":\"sparta-flight\",\"ph\":\"");
        const char ph = valid_phase(ev.phase);
        w.put(ph);
        w.puts("\",\"ts\":");
        w.put_i64(ev.ts_us);
        if (ph == 'X') {
          w.puts(",\"dur\":");
          w.put_i64(ev.dur_us);
        }
        if (ph == 'i') w.puts(",\"s\":\"t\"");
        w.puts(",\"pid\":1,\"tid\":");
        w.put_i64(r.tid);
        if (ev.request_id != 0) {
          w.puts(",\"args\":{\"request_id\":");
          w.put_u64(ev.request_id);
          w.put('}');
        }
        w.put('}');
      }
    }
    w.puts("],\"droppedEvents\":");
    w.put_u64(dropped_events());
    w.puts(",\"dropped_events\":");
    w.put_u64(dropped_events());
    w.puts(",\"flight_recorder\":true}");
    w.flush();
  }

  /// Opens `path` now (so the crash handler never calls open) and
  /// installs fatal-signal handlers that dump the rings to it before
  /// re-raising. Also enables the recorder. Returns false when the
  /// file cannot be opened (handlers are then not installed).
  bool arm_crash_dump(const std::string& path) {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      std::fprintf(stderr, "sparta: cannot arm flight dump at '%s'\n",
                   path.c_str());
      return false;
    }
    const int prev =
        detail::g_flight_crash_fd.exchange(fd, std::memory_order_relaxed);
    if (prev >= 0) ::close(prev);
    enable();
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &FlightRecorder::crash_signal_handler;
    sigemptyset(&sa.sa_mask);
    // SA_RESETHAND: disposition reverts to default on entry, so the
    // re-raise below terminates the process with the original signal.
    sa.sa_flags = SA_RESETHAND;
    for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT}) {
      ::sigaction(sig, &sa, nullptr);
    }
    return true;
  }

 private:
  struct Ring {
    int tid = 0;
    std::uint64_t mask = 0;            ///< capacity - 1 (power of two)
    std::atomic<std::uint64_t> head{0};  ///< next write index, unwrapped
    std::unique_ptr<FlightEvent[]> slots;
  };

  // Registration takes the mutex once per (thread, recorder); the
  // published ring table is a fixed array + release-stored count so the
  // signal handler can walk it without any lock.
  Ring& ring_for_this_thread() {
    thread_local std::uint64_t cached_id = 0;
    thread_local Ring* cached = nullptr;
    if (cached_id != id_) {
      std::lock_guard<std::mutex> lk(mu_);
      std::size_t slot = nrings_.load(std::memory_order_relaxed);
      if (slot >= kMaxRings) {
        // Out of ring slots: overflow threads share the last ring.
        // Events interleave but stay structurally valid.
        cached = rings_[kMaxRings - 1].get();
      } else {
        const std::uint64_t cap =
            ring_capacity_.load(std::memory_order_relaxed);
        auto ring = std::make_unique<Ring>();
        ring->tid = static_cast<int>(slot);
        ring->mask = cap - 1;
        ring->slots = std::make_unique<FlightEvent[]>(cap);
        cached = ring.get();
        rings_[slot] = std::move(ring);
        nrings_.store(slot + 1, std::memory_order_release);
      }
      cached_id = id_;
    }
    return *cached;
  }

  // A torn or garbage name must not break the dump's JSON: keep
  // printable ASCII minus '"' and '\\', map the rest to '_', and never
  // emit an empty name.
  [[nodiscard]] static std::array<char, 24> sanitized_name(
      const FlightEvent& ev) {
    std::array<char, 24> out{};
    std::size_t n = 0;
    for (; n < sizeof(ev.name) && ev.name[n] != '\0'; ++n) {
      const char c = ev.name[n];
      out[n] = (c >= 0x20 && c < 0x7F && c != '"' && c != '\\') ? c : '_';
    }
    if (n == 0) out[n++] = '_';
    out[n] = '\0';
    return out;
  }

  [[nodiscard]] static char valid_phase(char ph) {
    return (ph == 'X' || ph == 'i' || ph == 'C') ? ph : 'i';
  }

  // Buffered write(2)-only writer for the signal path.
  class FdWriter {
   public:
    explicit FdWriter(int fd) : fd_(fd) {}
    ~FdWriter() { flush(); }
    void put(char c) {
      if (n_ == sizeof(buf_)) flush();
      buf_[n_++] = c;
    }
    void puts(const char* s) {
      while (*s != '\0') put(*s++);
    }
    void put_u64(std::uint64_t v) {
      char tmp[20];
      std::size_t n = 0;
      do {
        tmp[n++] = static_cast<char>('0' + v % 10);
        v /= 10;
      } while (v != 0);
      while (n > 0) put(tmp[--n]);
    }
    void put_i64(std::int64_t v) {
      if (v < 0) {
        put('-');
        put_u64(~static_cast<std::uint64_t>(v) + 1);
      } else {
        put_u64(static_cast<std::uint64_t>(v));
      }
    }
    void flush() {
      std::size_t off = 0;
      while (off < n_) {
        const ::ssize_t w = ::write(fd_, buf_ + off, n_ - off);
        if (w <= 0) break;  // best effort: we are likely crashing
        off += static_cast<std::size_t>(w);
      }
      n_ = 0;
    }

   private:
    int fd_;
    char buf_[1024];
    std::size_t n_ = 0;
  };

  static void crash_signal_handler(int sig) {
    const int fd = detail::g_flight_crash_fd.load(std::memory_order_relaxed);
    if (fd >= 0) {
      // The fd may have been written by an earlier on-demand dump
      // through a separate stream: rewind and truncate so this dump is
      // the whole file. Both calls are async-signal-safe.
      ::lseek(fd, 0, SEEK_SET);
      ::ftruncate(fd, 0);
      global().write_crash_dump(fd);
    }
    ::raise(sig);  // default disposition restored by SA_RESETHAND
  }

  static std::uint64_t next_id() {
    static std::atomic<std::uint64_t> n{0};
    return n.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  const std::uint64_t id_ = next_id();
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> ring_capacity_{4096};
  std::mutex mu_;  // registration only
  std::array<std::unique_ptr<Ring>, kMaxRings> rings_;
  std::atomic<std::size_t> nrings_{0};
};

namespace detail {

// Arms SPARTA_FLIGHT once per process, before main(): enables the ring
// and installs the crash handlers dumping to the given path.
inline const bool g_flight_env_armed = [] {
  if (const char* path = std::getenv("SPARTA_FLIGHT")) {
    if (*path != '\0') {
      FlightRecorder::global().arm_crash_dump(path);
    }
  }
  return true;
}();

}  // namespace detail

}  // namespace sparta::obs
