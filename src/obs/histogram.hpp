// Lock-free log2-bucketed histograms for probe lengths and latencies.
//
// The scalar probe counters (hta.probe_steps etc.) can only report a
// mean; tail behaviour — the long collision chains and pathological SPA
// scans that actually hurt — needs a distribution. Log2Histogram keeps
// one relaxed atomic bucket per power of two, so concurrent recording
// from inside OpenMP regions is wait-free and never allocates after
// construction. Quantiles are therefore approximate: a reported pXX is
// the geometric midpoint of the bucket containing the true quantile,
// i.e. within a factor of 2 of it (and clamped to the observed max).
// That resolution is exactly right for "did the p99 probe length double"
// questions, at a per-record cost of three relaxed atomic adds.
//
// Histograms live in the MetricsRegistry next to counters and gauges and
// share the metrics enable flag; record through SPARTA_HISTOGRAM_RECORD
// (metrics.hpp) for the one-load-when-disabled cost contract.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

#include "obs/json.hpp"

namespace sparta::obs {

class Log2Histogram {
 public:
  /// Bucket b holds values whose bit width is b: bucket 0 = {0},
  /// bucket b>=1 = [2^(b-1), 2^b - 1].
  static constexpr int kNumBuckets = 65;

  Log2Histogram() = default;
  Log2Histogram(const Log2Histogram&) = delete;
  Log2Histogram& operator=(const Log2Histogram&) = delete;

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] static int bucket_of(std::uint64_t v) {
    return static_cast<int>(std::bit_width(v));
  }

  [[nodiscard]] std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }

  /// Approximate p-quantile (p in [0,1]): the geometric midpoint of the
  /// bucket holding the ceil(p*count)-th smallest recorded value,
  /// clamped to the observed max. 0 when nothing was recorded.
  [[nodiscard]] double percentile(double p) const {
    std::array<std::uint64_t, kNumBuckets> snap;
    std::uint64_t total = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      snap[static_cast<std::size_t>(b)] =
          buckets_[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
      total += snap[static_cast<std::size_t>(b)];
    }
    if (total == 0) return 0.0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    std::uint64_t target =
        static_cast<std::uint64_t>(p * static_cast<double>(total));
    if (target < 1) target = 1;
    if (target > total) target = total;
    std::uint64_t cum = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      cum += snap[static_cast<std::size_t>(b)];
      if (cum >= target) {
        const double rep = bucket_midpoint(b);
        const double mx = static_cast<double>(max());
        return rep < mx ? rep : mx;
      }
    }
    return static_cast<double>(max());
  }

  /// Representative value of bucket b (geometric midpoint of its range).
  [[nodiscard]] static double bucket_midpoint(int b) {
    if (b == 0) return 0.0;
    const double lo = static_cast<double>(std::uint64_t{1} << (b - 1));
    return lo * 1.5 - 0.5;  // midpoint of [2^(b-1), 2^b - 1]
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

  /// {"count":..,"sum":..,"max":..,"p50":..,"p95":..,"p99":..,
  ///  "buckets":{"<bit-width>":count, ...}}  (non-empty buckets only).
  [[nodiscard]] std::string to_json() const {
    JsonWriter w;
    w.begin_object();
    w.key("count").value(count());
    w.key("sum").value(sum());
    w.key("max").value(max());
    w.key("p50").value(percentile(0.50));
    w.key("p95").value(percentile(0.95));
    w.key("p99").value(percentile(0.99));
    w.key("buckets").begin_object();
    for (int b = 0; b < kNumBuckets; ++b) {
      const std::uint64_t n = bucket_count(b);
      if (n != 0) w.key(std::to_string(b)).value(n);
    }
    w.end_object();
    w.end_object();
    return w.str();
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace sparta::obs
