// Minimal JSON utilities shared by the observability layer: a streaming
// writer (used by the trace recorder, the metrics registry and the bench
// --json reports) and a strict validator (used by tests and tools to
// prove emitted documents are well-formed without a JSON dependency).
//
// Deliberately dependency-free: this header must be includable from the
// lowest layers (common/, hashtable/) without cycles.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace sparta::obs {

/// Appends `s` to `out` with JSON string escaping (no quotes added).
inline void json_escape_to(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// `s` as a quoted, escaped JSON string.
[[nodiscard]] inline std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  json_escape_to(out, s);
  out += '"';
  return out;
}

/// `v` as a JSON number. Non-finite values have no JSON spelling and
/// become null — not 0, which would silently masquerade as a real
/// measurement (observability output must never poison a parser).
[[nodiscard]] inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Streaming JSON writer with automatic comma placement. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("sparta");
///   w.key("cases").begin_array();
///   ...
///   w.end_array();
///   w.end_object();
///   std::string doc = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object() {
    separator();
    out_ += '{';
    stack_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() {
    out_ += '}';
    stack_.pop_back();
    return *this;
  }
  JsonWriter& begin_array() {
    separator();
    out_ += '[';
    stack_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() {
    out_ += ']';
    stack_.pop_back();
    return *this;
  }

  /// Writes an object key; the next value/begin_* call is its value.
  JsonWriter& key(std::string_view k) {
    separator();
    out_ += json_quote(k);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    separator();
    out_ += json_quote(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v) {
    separator();
    out_ += json_number(v);
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    separator();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) {
    separator();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(bool v) {
    separator();
    out_ += v ? "true" : "false";
    return *this;
  }

  /// Splices a pre-formed JSON value verbatim (caller vouches validity).
  JsonWriter& raw(std::string_view json) {
    separator();
    out_ += json;
    return *this;
  }

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  // Emits a ',' between siblings; key() suppresses the next separator so
  // the value attaches to its key.
  void separator() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (!stack_.back()) {
        out_ += ',';
      } else {
        stack_.back() = false;
      }
    }
  }

  std::string out_;
  std::vector<bool> stack_;  // true = container still empty
  bool pending_value_ = false;
};

namespace detail {

inline void json_skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r')) {
    ++i;
  }
}

inline bool json_parse_value(std::string_view s, std::size_t& i, int depth);

inline bool json_parse_string(std::string_view s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      return true;
    }
    if (static_cast<unsigned char>(c) < 0x20) return false;
    if (c == '\\') {
      ++i;
      if (i >= s.size()) return false;
      const char e = s[i];
      if (e == 'u') {
        if (i + 4 >= s.size()) return false;
        for (int k = 1; k <= 4; ++k) {
          const char h = s[i + static_cast<std::size_t>(k)];
          const bool hex = (h >= '0' && h <= '9') || (h >= 'a' && h <= 'f') ||
                           (h >= 'A' && h <= 'F');
          if (!hex) return false;
        }
        i += 4;
      } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                 e != 'n' && e != 'r' && e != 't') {
        return false;
      }
    }
    ++i;
  }
  return false;
}

inline bool json_parse_number(std::string_view s, std::size_t& i) {
  const std::size_t start = i;
  if (i < s.size() && s[i] == '-') ++i;
  if (i >= s.size()) return false;
  if (s[i] == '0') {
    ++i;
  } else if (s[i] >= '1' && s[i] <= '9') {
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  } else {
    return false;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    if (i >= s.size() || s[i] < '0' || s[i] > '9') return false;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    if (i >= s.size() || s[i] < '0' || s[i] > '9') return false;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') ++i;
  }
  return i > start;
}

inline bool json_parse_value(std::string_view s, std::size_t& i, int depth) {
  if (depth > 256) return false;
  json_skip_ws(s, i);
  if (i >= s.size()) return false;
  const char c = s[i];
  if (c == '"') return json_parse_string(s, i);
  if (c == '{') {
    ++i;
    json_skip_ws(s, i);
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    while (true) {
      json_skip_ws(s, i);
      if (!json_parse_string(s, i)) return false;
      json_skip_ws(s, i);
      if (i >= s.size() || s[i] != ':') return false;
      ++i;
      if (!json_parse_value(s, i, depth + 1)) return false;
      json_skip_ws(s, i);
      if (i >= s.size()) return false;
      if (s[i] == ',') {
        ++i;
        continue;
      }
      if (s[i] == '}') {
        ++i;
        return true;
      }
      return false;
    }
  }
  if (c == '[') {
    ++i;
    json_skip_ws(s, i);
    if (i < s.size() && s[i] == ']') {
      ++i;
      return true;
    }
    while (true) {
      if (!json_parse_value(s, i, depth + 1)) return false;
      json_skip_ws(s, i);
      if (i >= s.size()) return false;
      if (s[i] == ',') {
        ++i;
        continue;
      }
      if (s[i] == ']') {
        ++i;
        return true;
      }
      return false;
    }
  }
  if (s.compare(i, 4, "true") == 0) {
    i += 4;
    return true;
  }
  if (s.compare(i, 5, "false") == 0) {
    i += 5;
    return true;
  }
  if (s.compare(i, 4, "null") == 0) {
    i += 4;
    return true;
  }
  return json_parse_number(s, i);
}

}  // namespace detail

/// Strict well-formedness check: exactly one JSON value, nothing but
/// whitespace after it. Recursive-descent, no allocation.
[[nodiscard]] inline bool json_valid(std::string_view s) {
  std::size_t i = 0;
  if (!detail::json_parse_value(s, i, 0)) return false;
  detail::json_skip_ws(s, i);
  return i == s.size();
}

}  // namespace sparta::obs
