// Perf-regression comparison engine behind tools/sparta_perfdiff and the
// bench --baseline gate.
//
// Compares two bench --json reports (docs/OBSERVABILITY.md schema) case
// by case. Three signals, in decreasing order of trust:
//
//  1. Config comparability. A diff across different workload configs is
//     meaningless, so bench name, smoke flag, scale, thread count and
//     build type must match exactly; otherwise the verdict is
//     kConfigMismatch (exit 3), never a pass. Hostname and git SHA are
//     informational — CI diffs across machines and commits on purpose.
//  2. Deterministic work counters (nnz_*, searches, hits, multiplies…).
//     These are machine- and timing-independent for a fixed config, so
//     any drift is a real behaviour change and gates at threshold 0 —
//     there is no such thing as counter noise.
//  3. Median wall time, gated by a relative threshold. Cases whose
//     baseline median is below --min-seconds are reported but never
//     gate: micro-second smoke cases flap on shared CI runners.
//
// Header-only like the rest of obs/; the tool, the bench harness and the
// tests all include this so the verdict logic cannot diverge.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/json_parse.hpp"

namespace sparta::obs::perfdiff {

/// Process exit codes of sparta_perfdiff (stable API — CI scripts match
/// on them).
enum ExitCode : int {
  kOk = 0,              ///< comparable and within threshold
  kRegression = 1,      ///< timing over threshold or counter drift
  kUsageError = 2,      ///< bad flags / unreadable / unparsable input
  kConfigMismatch = 3,  ///< reports are not comparable
};

struct Options {
  /// Relative slowdown that gates (0.10 = +10% is a regression).
  /// NEGATIVE values demand a speedup: -0.17 gates unless the run is at
  /// least 17% faster than baseline (run ≤ 0.83×base, i.e. base/run ≥
  /// 1.2×) — how CI asserts the swiss-table probe beats the chained one.
  double threshold = 0.10;
  double min_seconds = 1e-3;  ///< baseline medians below this never gate
  bool compare_counters = true;
};

/// "30%" or "0.3" → 0.3. Negative values above -1.0 are allowed
/// (required-improvement gates, see Options::threshold); -1.0 and below
/// would demand a non-positive runtime. nullopt on junk.
[[nodiscard]] inline std::optional<double> parse_threshold(
    std::string_view s) {
  if (s.empty()) return std::nullopt;
  bool percent = false;
  std::string body(s);
  if (body.back() == '%') {
    percent = true;
    body.pop_back();
  }
  char* end = nullptr;
  double v = std::strtod(body.c_str(), &end);
  if (end != body.c_str() + body.size() || !std::isfinite(v)) {
    return std::nullopt;
  }
  if (percent) v /= 100.0;
  if (v <= -1.0) return std::nullopt;
  return v;
}

/// Counters from ContractStats::to_json() that are fully determined by
/// (dataset, algorithm, options) — independent of machine, threads and
/// timing — and therefore compared exactly. Byte-footprint counters are
/// excluded: allocator sizing may legitimately change across commits
/// without being a behaviour bug.
inline constexpr std::string_view kDeterministicCounters[] = {
    "nnz_x",      "nnz_y",    "nnz_z",      "num_x_subtensors",
    "num_y_keys", "max_y_group", "max_x_subtensor",
    "searches",   "hits",     "multiplies",
};

struct CounterDrift {
  std::string counter;
  double base = 0.0;
  double run = 0.0;
};

/// Verdict for one case name present in both reports.
struct CaseResult {
  std::string name;
  double base_median = 0.0;
  double run_median = 0.0;
  /// run/base - 1; 0 when the baseline median is 0.
  double ratio = 0.0;
  /// False when base_median < min_seconds: informational only.
  bool timing_gates = false;
  bool timing_regressed = false;
  std::vector<CounterDrift> counter_drift;

  [[nodiscard]] bool regressed() const {
    return timing_regressed || !counter_drift.empty();
  }
};

struct ConfigMismatch {
  std::string field;
  std::string base;
  std::string run;
};

/// One base-report/run-report comparison.
struct PairResult {
  std::string bench;  ///< bench name (from the base report)
  std::vector<ConfigMismatch> config_mismatches;
  std::vector<CaseResult> cases;
  std::vector<std::string> base_only;  ///< cases that vanished
  std::vector<std::string> run_only;   ///< new cases (informational)

  [[nodiscard]] bool comparable() const {
    return config_mismatches.empty();
  }
  [[nodiscard]] bool regressed() const {
    if (!comparable()) return false;  // mismatch is its own verdict
    if (!base_only.empty()) return true;  // a gated case disappeared
    return std::any_of(cases.begin(), cases.end(),
                       [](const CaseResult& c) { return c.regressed(); });
  }
  [[nodiscard]] ExitCode exit() const {
    if (!comparable()) return kConfigMismatch;
    return regressed() ? kRegression : kOk;
  }
};

namespace detail {

[[nodiscard]] inline std::string scalar_to_string(const JsonValue* v) {
  if (!v) return "<absent>";
  switch (v->type) {
    case JsonValue::Type::kNull:
      return "null";
    case JsonValue::Type::kBool:
      return v->bool_v ? "true" : "false";
    case JsonValue::Type::kNumber:
      return json_number(v->num_v);
    case JsonValue::Type::kString:
      return v->str_v;
    default:
      return "<composite>";
  }
}

[[nodiscard]] inline bool scalar_equal(const JsonValue* a,
                                       const JsonValue* b) {
  if (!a || !b) return a == b;
  if (a->type != b->type) return false;
  switch (a->type) {
    case JsonValue::Type::kBool:
      return a->bool_v == b->bool_v;
    case JsonValue::Type::kNumber:
      return a->num_v == b->num_v;
    case JsonValue::Type::kString:
      return a->str_v == b->str_v;
    default:
      return true;
  }
}

// Appends a mismatch record when `field` differs between the reports.
// `required` fields also mismatch when absent from either side; optional
// fields (context additions newer than a report) only compare when both
// sides carry them, keeping old baselines diffable.
inline void check_field(const JsonValue& base, const JsonValue& run,
                        std::initializer_list<std::string_view> path,
                        std::string field, bool required,
                        std::vector<ConfigMismatch>& out) {
  const JsonValue* b = base.get_path(path);
  const JsonValue* r = run.get_path(path);
  if (!required && (b == nullptr || r == nullptr)) return;
  if (!scalar_equal(b, r)) {
    out.push_back(
        {std::move(field), scalar_to_string(b), scalar_to_string(r)});
  }
}

[[nodiscard]] inline const JsonValue* find_case(const JsonValue& report,
                                                std::string_view name) {
  const JsonValue* cases = report.get("cases");
  if (!cases || !cases->is_array()) return nullptr;
  for (const JsonValue& c : cases->arr) {
    const JsonValue* n = c.get("name");
    if (n && n->is_string() && n->str_v == name) return &c;
  }
  return nullptr;
}

}  // namespace detail

/// Compares two parsed reports. Pure — reads no files, touches no
/// globals — so tests can feed synthetic documents.
[[nodiscard]] inline PairResult diff_reports(const JsonValue& base,
                                             const JsonValue& run,
                                             const Options& opts) {
  PairResult out;
  if (const JsonValue* b = base.get("bench")) out.bench = b->string_or("");

  // Comparability: the workload-defining fields. "context" holds the
  // reproducibility stamp added in schema extensions; build_type lives
  // there and is config (Debug vs RelWithDebInfo timings are apples and
  // oranges), hostname/git_sha are not.
  detail::check_field(base, run, {"bench"}, "bench", true,
                      out.config_mismatches);
  detail::check_field(base, run, {"smoke"}, "smoke", true,
                      out.config_mismatches);
  detail::check_field(base, run, {"scale"}, "scale", true,
                      out.config_mismatches);
  detail::check_field(base, run, {"threads"}, "threads", true,
                      out.config_mismatches);
  detail::check_field(base, run, {"context", "build_type"}, "build_type",
                      false, out.config_mismatches);
  // Scalar-vs-SIMD timings are different workloads entirely; reports
  // must agree on the active tier to be diffable. Optional so baselines
  // predating the field stay comparable.
  detail::check_field(base, run, {"context", "simd_isa"}, "simd_isa",
                      false, out.config_mismatches);
  if (!out.comparable()) return out;

  const JsonValue* base_cases = base.get("cases");
  const JsonValue* run_cases = run.get("cases");
  if (base_cases && base_cases->is_array()) {
    for (const JsonValue& bc : base_cases->arr) {
      const JsonValue* n = bc.get("name");
      if (!n || !n->is_string()) continue;
      const JsonValue* rc = detail::find_case(run, n->str_v);
      if (!rc) {
        out.base_only.push_back(n->str_v);
        continue;
      }
      CaseResult cr;
      cr.name = n->str_v;
      if (const JsonValue* m = bc.get_path({"seconds", "median"})) {
        cr.base_median = m->number_or(0.0);
      }
      if (const JsonValue* m = rc->get_path({"seconds", "median"})) {
        cr.run_median = m->number_or(0.0);
      }
      cr.ratio = cr.base_median > 0.0
                     ? cr.run_median / cr.base_median - 1.0
                     : 0.0;
      cr.timing_gates = cr.base_median >= opts.min_seconds;
      cr.timing_regressed = cr.timing_gates && cr.ratio > opts.threshold;
      if (opts.compare_counters) {
        const JsonValue* bcount = bc.get("counters");
        const JsonValue* rcount = rc->get("counters");
        if (bcount && rcount) {
          for (const std::string_view key : kDeterministicCounters) {
            const JsonValue* bv = bcount->get(key);
            const JsonValue* rv = rcount->get(key);
            if (!bv || !rv || !bv->is_number() || !rv->is_number()) {
              continue;
            }
            if (bv->num_v != rv->num_v) {
              cr.counter_drift.push_back(
                  {std::string(key), bv->num_v, rv->num_v});
            }
          }
        }
      }
      out.cases.push_back(std::move(cr));
    }
  }
  if (run_cases && run_cases->is_array()) {
    for (const JsonValue& rc : run_cases->arr) {
      const JsonValue* n = rc.get("name");
      if (n && n->is_string() && !detail::find_case(base, n->str_v)) {
        out.run_only.push_back(n->str_v);
      }
    }
  }
  return out;
}

/// Highest-severity verdict across pairs: any regression wins over any
/// mismatch wins over ok. (Usage errors never reach this point — the
/// caller exits 2 before comparing.)
[[nodiscard]] inline ExitCode overall_exit(
    const std::vector<PairResult>& pairs) {
  ExitCode code = kOk;
  for (const PairResult& p : pairs) {
    const ExitCode e = p.exit();
    if (e == kRegression) return kRegression;
    if (e == kConfigMismatch) code = kConfigMismatch;
  }
  return code;
}

/// GitHub-flavoured markdown report for one pair (the tool concatenates
/// pairs; CI pastes this into the job summary).
[[nodiscard]] inline std::string to_markdown(const PairResult& p,
                                             const Options& opts) {
  std::string out;
  out += "### " + (p.bench.empty() ? std::string("<unnamed bench>") : p.bench);
  out += "\n\n";
  if (!p.comparable()) {
    out += "**not comparable** — config mismatch:\n\n";
    out += "| field | baseline | run |\n|---|---|---|\n";
    for (const ConfigMismatch& m : p.config_mismatches) {
      out += "| " + m.field + " | " + m.base + " | " + m.run + " |\n";
    }
    return out;
  }
  char buf[160];
  out += "| case | base median (s) | run median (s) | delta | verdict |\n";
  out += "|---|---|---|---|---|\n";
  for (const CaseResult& c : p.cases) {
    const char* verdict =
        !c.counter_drift.empty() ? "COUNTER DRIFT"
        : c.timing_regressed     ? "REGRESSED"
        : !c.timing_gates        ? "ok (below noise floor)"
        : c.ratio < -opts.threshold ? "improved"
                                    : "ok";
    std::snprintf(buf, sizeof(buf), "| %s | %.6f | %.6f | %+.1f%% | %s |\n",
                  c.name.c_str(), c.base_median, c.run_median,
                  c.ratio * 100.0, verdict);
    out += buf;
  }
  for (const CaseResult& c : p.cases) {
    for (const CounterDrift& d : c.counter_drift) {
      std::snprintf(buf, sizeof(buf),
                    "- `%s`: counter `%s` drifted %.0f -> %.0f\n",
                    c.name.c_str(), d.counter.c_str(), d.base, d.run);
      out += buf;
    }
  }
  for (const std::string& name : p.base_only) {
    out += "- **missing case** `" + name + "` (present in baseline only)\n";
  }
  for (const std::string& name : p.run_only) {
    out += "- new case `" + name + "` (no baseline; not gated)\n";
  }
  return out;
}

/// Machine-readable verdict for all pairs (the tool's --json output).
[[nodiscard]] inline std::string to_json(
    const std::vector<PairResult>& pairs, const Options& opts) {
  JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(1);
  w.key("threshold").value(opts.threshold);
  w.key("min_seconds").value(opts.min_seconds);
  w.key("exit").value(static_cast<int>(overall_exit(pairs)));
  w.key("pairs").begin_array();
  for (const PairResult& p : pairs) {
    w.begin_object();
    w.key("bench").value(std::string_view(p.bench));
    w.key("comparable").value(p.comparable());
    w.key("regressed").value(p.regressed());
    w.key("config_mismatches").begin_array();
    for (const ConfigMismatch& m : p.config_mismatches) {
      w.begin_object();
      w.key("field").value(std::string_view(m.field));
      w.key("base").value(std::string_view(m.base));
      w.key("run").value(std::string_view(m.run));
      w.end_object();
    }
    w.end_array();
    w.key("cases").begin_array();
    for (const CaseResult& c : p.cases) {
      w.begin_object();
      w.key("name").value(std::string_view(c.name));
      w.key("base_median_seconds").value(c.base_median);
      w.key("run_median_seconds").value(c.run_median);
      w.key("ratio").value(c.ratio);
      w.key("timing_gates").value(c.timing_gates);
      w.key("timing_regressed").value(c.timing_regressed);
      w.key("counter_drift").begin_array();
      for (const CounterDrift& d : c.counter_drift) {
        w.begin_object();
        w.key("counter").value(std::string_view(d.counter));
        w.key("base").value(d.base);
        w.key("run").value(d.run);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("base_only").begin_array();
    for (const std::string& n : p.base_only) {
      w.value(std::string_view(n));
    }
    w.end_array();
    w.key("run_only").begin_array();
    for (const std::string& n : p.run_only) {
      w.value(std::string_view(n));
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace sparta::obs::perfdiff
