// Hardware performance counters via Linux perf_event_open.
//
// One PerfCounterGroup opens a small fixed event group — cycles,
// instructions, LLC misses, dTLB load misses, stalled backend cycles —
// on the calling thread and reads them together with one syscall, so
// deltas across a code region are mutually consistent. Counters are a
// privilege-gated, platform-specific resource; everything here degrades
// cleanly when they cannot be opened (non-Linux builds, CI containers,
// kernel.perf_event_paranoid, seccomp): available() turns false, every
// sample reads as zero, and no call ever throws. Consumers must treat
// "unavailable" as a first-class result, not an error — the bench JSON
// schema encodes it as {"available":false}.
//
// Cost contract: like tracing/metrics, the disabled path at a sampling
// site is one relaxed atomic load plus a branch. Arming, one of:
//   * env:  SPARTA_PERFCTR=1   (armed before main())
//   * code: obs::enable_perfctr();
// Each thread lazily opens its own group on first sample (counters are
// per-thread state); the group is closed when the thread exits.
//
// Event set rationale and per-stage aggregation: docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "obs/json.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define SPARTA_HAS_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define SPARTA_HAS_PERF_EVENT 0
#endif

namespace sparta::obs {

/// The fixed event set, chosen to explain the paper's performance story:
/// probe-heavy stages are LLC/dTLB-miss bound, streaming stages are
/// bandwidth bound (high stalled cycles, low miss rates).
enum class PerfEvent : int {
  kCycles = 0,
  kInstructions = 1,
  kLlcMisses = 2,
  kDtlbMisses = 3,
  kStalledCycles = 4,
};

inline constexpr int kNumPerfEvents = 5;

[[nodiscard]] constexpr std::string_view perf_event_name(PerfEvent e) {
  switch (e) {
    case PerfEvent::kCycles:
      return "cycles";
    case PerfEvent::kInstructions:
      return "instructions";
    case PerfEvent::kLlcMisses:
      return "llc_misses";
    case PerfEvent::kDtlbMisses:
      return "dtlb_misses";
    case PerfEvent::kStalledCycles:
      return "stalled_cycles";
  }
  return "?";
}

namespace detail {
inline std::atomic<bool> g_perfctr_enabled{false};
}  // namespace detail

/// The single branch gating every sampling site.
[[nodiscard]] inline bool perfctr_enabled() {
  return detail::g_perfctr_enabled.load(std::memory_order_relaxed);
}

inline void enable_perfctr() {
  detail::g_perfctr_enabled.store(true, std::memory_order_relaxed);
}
inline void disable_perfctr() {
  detail::g_perfctr_enabled.store(false, std::memory_order_relaxed);
}

/// Cumulative counter values at one point in time. Monotone per thread
/// while the group stays open; `available` false means every value is 0
/// and deltas built from this sample are unavailable too.
struct PerfSample {
  std::array<std::uint64_t, kNumPerfEvents> value{};
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;
  bool available = false;
};

/// Difference between two samples of the same group. Addable, so stage
/// deltas can be accumulated across threads and sub-tensor iterations.
struct PerfDelta {
  std::array<std::uint64_t, kNumPerfEvents> value{};
  bool available = false;

  [[nodiscard]] std::uint64_t operator[](PerfEvent e) const {
    return value[static_cast<int>(e)];
  }

  PerfDelta& operator+=(const PerfDelta& o) {
    if (!o.available) return *this;
    for (int i = 0; i < kNumPerfEvents; ++i) value[i] += o.value[i];
    available = true;
    return *this;
  }

  /// {"available":true,"cycles":...,...} — or just {"available":false}.
  /// The explicit marker lets report consumers distinguish "no counter
  /// access" from "zero events", which zeros alone cannot.
  [[nodiscard]] std::string to_json() const {
    JsonWriter w;
    w.begin_object();
    w.key("available").value(available);
    if (available) {
      for (int i = 0; i < kNumPerfEvents; ++i) {
        w.key(perf_event_name(static_cast<PerfEvent>(i))).value(value[i]);
      }
    }
    w.end_object();
    return w.str();
  }
};

/// One perf_event_open group bound to the constructing thread.
///
/// Siblings that the PMU cannot schedule (e.g. stalled-cycles on some
/// virtualized CPUs) are dropped individually; the group stays usable
/// with the events that did open. If even the cycles leader fails, the
/// whole group reports available() == false.
class PerfCounterGroup {
 public:
  PerfCounterGroup() { open_all(); }
  ~PerfCounterGroup() { close_all(); }
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  [[nodiscard]] bool available() const { return leader_fd_ >= 0; }

  /// Events that actually opened (subset of the catalogue).
  [[nodiscard]] int num_open_events() const { return num_open_; }

  /// Current cumulative values. Zeros + available=false when the group
  /// could not be opened or the read fails; never throws.
  [[nodiscard]] PerfSample sample() const {
    PerfSample s;
#if SPARTA_HAS_PERF_EVENT
    if (leader_fd_ < 0) return s;
    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, then one
    // value per open event in group order.
    std::uint64_t buf[3 + kNumPerfEvents] = {};
    const ssize_t want =
        static_cast<ssize_t>((3 + static_cast<std::size_t>(num_open_)) *
                             sizeof(std::uint64_t));
    if (::read(leader_fd_, buf, static_cast<std::size_t>(want)) != want) {
      return s;
    }
    if (buf[0] != static_cast<std::uint64_t>(num_open_)) return s;
    s.time_enabled_ns = buf[1];
    s.time_running_ns = buf[2];
    for (int slot = 0, pos = 0; slot < kNumPerfEvents; ++slot) {
      if (open_slot_[static_cast<std::size_t>(slot)]) {
        s.value[static_cast<std::size_t>(slot)] =
            buf[3 + static_cast<std::size_t>(pos)];
        ++pos;
      }
    }
    s.available = true;
#endif
    return s;
  }

  /// b - a with saturation (a dropped counter or reopened group must
  /// never produce a wrapped-around delta).
  [[nodiscard]] static PerfDelta delta(const PerfSample& a,
                                       const PerfSample& b) {
    PerfDelta d;
    if (!a.available || !b.available) return d;
    d.available = true;
    for (int i = 0; i < kNumPerfEvents; ++i) {
      d.value[i] = b.value[i] >= a.value[i] ? b.value[i] - a.value[i] : 0;
    }
    return d;
  }

  /// This thread's lazily-opened group. First call on a thread pays the
  /// open syscalls; subsequent calls are a thread_local load.
  [[nodiscard]] static PerfCounterGroup& for_current_thread() {
    thread_local PerfCounterGroup g;
    return g;
  }

  /// Process-wide probe: true when this build + kernel + privilege level
  /// can open the group at all. Cached after the first call.
  [[nodiscard]] static bool counters_available() {
    static const bool ok = [] {
      PerfCounterGroup probe;
      return probe.available();
    }();
    return ok;
  }

 private:
#if SPARTA_HAS_PERF_EVENT
  void open_all() {
    struct EventSpec {
      std::uint32_t type;
      std::uint64_t config;
    };
    const std::array<EventSpec, kNumPerfEvents> specs = {{
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
        {PERF_TYPE_HW_CACHE,
         PERF_COUNT_HW_CACHE_DTLB | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
             (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
        {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
    }};
    for (int i = 0; i < kNumPerfEvents; ++i) {
      perf_event_attr attr;
      std::memset(&attr, 0, sizeof(attr));
      attr.size = sizeof(attr);
      attr.type = specs[static_cast<std::size_t>(i)].type;
      attr.config = specs[static_cast<std::size_t>(i)].config;
      attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                         PERF_FORMAT_TOTAL_TIME_RUNNING;
      attr.exclude_kernel = 1;
      attr.exclude_hv = 1;
      attr.disabled = leader_fd_ < 0 ? 1 : 0;  // leader starts stopped
      const int fd = static_cast<int>(
          ::syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                    /*group_fd=*/leader_fd_, /*flags=*/0UL));
      if (fd < 0) {
        if (leader_fd_ < 0) {
          // No cycles leader: counters are off limits here entirely.
          return;
        }
        continue;  // sibling unavailable; keep the rest of the group
      }
      if (leader_fd_ < 0) leader_fd_ = fd;
      fds_[static_cast<std::size_t>(i)] = fd;
      open_slot_[static_cast<std::size_t>(i)] = true;
      ++num_open_;
    }
    ::ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ::ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  }

  void close_all() {
    for (int& fd : fds_) {
      if (fd >= 0 && fd != leader_fd_) ::close(fd);
      fd = -1;
    }
    if (leader_fd_ >= 0) ::close(leader_fd_);
    leader_fd_ = -1;
  }
#else
  void open_all() {}
  void close_all() {}
#endif

  int leader_fd_ = -1;
  int num_open_ = 0;
  std::array<int, kNumPerfEvents> fds_ = {-1, -1, -1, -1, -1};
  std::array<bool, kNumPerfEvents> open_slot_ = {};
};

namespace detail {

// Arms SPARTA_PERFCTR once per process, before main().
inline const bool g_perfctr_env_armed = [] {
  if (const char* v = std::getenv("SPARTA_PERFCTR")) {
    if (*v != '\0' && std::string_view(v) != "0") enable_perfctr();
  }
  return true;
}();

}  // namespace detail

}  // namespace sparta::obs
