// Minimal JSON DOM parser for the observability tooling (sparta_perfdiff
// and the bench --baseline gate read the reports json.hpp writes).
//
// Same strictness as json_valid() — in fact it accepts exactly the
// grammar the validator accepts — but builds a tree. Object member order
// is preserved; duplicate keys keep the last occurrence (RFC 8259
// "names within an object SHOULD be unique" — our writer never emits
// duplicates). Numbers are stored as double, which is exact for every
// counter below 2^53; bench counters that could exceed that are byte
// counts, where the relative error is irrelevant to diffing.
//
// Deliberately dependency-free like the rest of obs/.
#pragma once

#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace sparta::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_v = false;
  double num_v = 0.0;
  std::string str_v;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  [[nodiscard]] bool is_null() const { return type == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }

  /// Member lookup (objects only); nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* get(std::string_view key) const {
    if (type != Type::kObject) return nullptr;
    const JsonValue* found = nullptr;
    for (const auto& [k, v] : obj) {
      if (k == key) found = &v;  // last occurrence wins
    }
    return found;
  }

  /// get() chained through a path of object keys.
  [[nodiscard]] const JsonValue* get_path(
      std::initializer_list<std::string_view> keys) const {
    const JsonValue* v = this;
    for (const std::string_view k : keys) {
      v = v->get(k);
      if (!v) return nullptr;
    }
    return v;
  }

  [[nodiscard]] double number_or(double def) const {
    return type == Type::kNumber ? num_v : def;
  }
  [[nodiscard]] std::string string_or(std::string def) const {
    return type == Type::kString ? str_v : std::move(def);
  }
  [[nodiscard]] bool bool_or(bool def) const {
    return type == Type::kBool ? bool_v : def;
  }
};

namespace detail {

inline bool json_dom_parse_value(std::string_view s, std::size_t& i,
                                 int depth, JsonValue& out);

// Decodes the body of a JSON string (after the opening quote was seen),
// appending UTF-8 to `out.str_v`. Mirrors json_parse_string's grammar.
inline bool json_dom_parse_string(std::string_view s, std::size_t& i,
                                  std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      return true;
    }
    if (static_cast<unsigned char>(c) < 0x20) return false;
    if (c == '\\') {
      ++i;
      if (i >= s.size()) return false;
      const char e = s[i];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (i + 4 >= s.size()) return false;
          unsigned cp = 0;
          for (int k = 1; k <= 4; ++k) {
            const char h = s[i + static_cast<std::size_t>(k)];
            unsigned d;
            if (h >= '0' && h <= '9') {
              d = static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              d = static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              d = static_cast<unsigned>(h - 'A') + 10;
            } else {
              return false;
            }
            cp = cp * 16 + d;
          }
          i += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // recombined; our writer only ever emits \u00xx controls).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          return false;
      }
      ++i;
      continue;
    }
    out += c;
    ++i;
  }
  return false;
}

inline bool json_dom_parse_value(std::string_view s, std::size_t& i,
                                 int depth, JsonValue& out) {
  if (depth > 256) return false;
  json_skip_ws(s, i);
  if (i >= s.size()) return false;
  const char c = s[i];
  if (c == '"') {
    out.type = JsonValue::Type::kString;
    return json_dom_parse_string(s, i, out.str_v);
  }
  if (c == '{') {
    out.type = JsonValue::Type::kObject;
    ++i;
    json_skip_ws(s, i);
    if (i < s.size() && s[i] == '}') {
      ++i;
      return true;
    }
    while (true) {
      json_skip_ws(s, i);
      std::string key;
      if (!json_dom_parse_string(s, i, key)) return false;
      json_skip_ws(s, i);
      if (i >= s.size() || s[i] != ':') return false;
      ++i;
      JsonValue v;
      if (!json_dom_parse_value(s, i, depth + 1, v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      json_skip_ws(s, i);
      if (i >= s.size()) return false;
      if (s[i] == ',') {
        ++i;
        continue;
      }
      if (s[i] == '}') {
        ++i;
        return true;
      }
      return false;
    }
  }
  if (c == '[') {
    out.type = JsonValue::Type::kArray;
    ++i;
    json_skip_ws(s, i);
    if (i < s.size() && s[i] == ']') {
      ++i;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!json_dom_parse_value(s, i, depth + 1, v)) return false;
      out.arr.push_back(std::move(v));
      json_skip_ws(s, i);
      if (i >= s.size()) return false;
      if (s[i] == ',') {
        ++i;
        continue;
      }
      if (s[i] == ']') {
        ++i;
        return true;
      }
      return false;
    }
  }
  if (s.compare(i, 4, "true") == 0) {
    out.type = JsonValue::Type::kBool;
    out.bool_v = true;
    i += 4;
    return true;
  }
  if (s.compare(i, 5, "false") == 0) {
    out.type = JsonValue::Type::kBool;
    out.bool_v = false;
    i += 5;
    return true;
  }
  if (s.compare(i, 4, "null") == 0) {
    out.type = JsonValue::Type::kNull;
    i += 4;
    return true;
  }
  const std::size_t start = i;
  if (!json_parse_number(s, i)) return false;
  out.type = JsonValue::Type::kNumber;
  out.num_v = std::strtod(std::string(s.substr(start, i - start)).c_str(),
                          nullptr);
  return true;
}

}  // namespace detail

/// Parses exactly one JSON document (trailing whitespace allowed);
/// std::nullopt on any syntax error.
[[nodiscard]] inline std::optional<JsonValue> json_parse(
    std::string_view s) {
  JsonValue v;
  std::size_t i = 0;
  if (!detail::json_dom_parse_value(s, i, 0, v)) return std::nullopt;
  detail::json_skip_ws(s, i);
  if (i != s.size()) return std::nullopt;
  return v;
}

}  // namespace sparta::obs
