// Append-only, size-rotated JSONL stat store: one record per served
// request, written by ContractionService::execute and aggregated by
// tools/sparta_stats. This is the durable observed-cost substrate the
// ROADMAP's learned-planning item builds on — every record carries the
// request's features (nnz, density, mode sizes, contract-mode count),
// the variant the selector chose, cache behaviour, per-stage wall and
// hardware-counter cost, and the outcome.
//
// Rotation: when appending would push the live file past max_bytes,
// the chain path.(k-1) ← ... ← path.1 ← path is shifted and a fresh
// live file is started, so at most max_files × max_bytes of history is
// kept. Records are written whole lines under a mutex — a reader never
// sees a torn record, and rotation happens only at line boundaries.
//
// Schema (stable, append-only; validated by .ci/check_statlog.py):
//   docs/OBSERVABILITY.md § "The stat store".
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sparta::obs {

struct StatLogConfig {
  std::string path;                        ///< empty = disabled
  std::size_t max_bytes = 16u << 20;       ///< live-file rotation point
  int max_files = 4;                       ///< live + max_files-1 rotated
};

class StatLog {
 public:
  StatLog() = default;
  explicit StatLog(StatLogConfig cfg) { open(std::move(cfg)); }
  StatLog(const StatLog&) = delete;
  StatLog& operator=(const StatLog&) = delete;
  ~StatLog() { close(); }

  /// Opens (appending) the configured path; false + stderr note when
  /// the file cannot be opened — stat logging must never take the
  /// service down. An empty path deconfigures the log.
  bool open(StatLogConfig cfg) {
    std::lock_guard<std::mutex> lk(mu_);
    close_locked();
    cfg_ = std::move(cfg);
    if (cfg_.path.empty()) return true;
    if (cfg_.max_bytes == 0) cfg_.max_bytes = 1;
    if (cfg_.max_files < 1) cfg_.max_files = 1;
    return open_locked();
  }

  void close() {
    std::lock_guard<std::mutex> lk(mu_);
    close_locked();
  }

  [[nodiscard]] bool enabled() const {
    std::lock_guard<std::mutex> lk(mu_);
    return f_ != nullptr;
  }

  [[nodiscard]] std::uint64_t lines_written() const {
    std::lock_guard<std::mutex> lk(mu_);
    return lines_;
  }

  /// Appends one record (a complete JSON object, no trailing newline)
  /// as a line, rotating first when the live file would overflow.
  void append(std::string_view json_record) {
    std::lock_guard<std::mutex> lk(mu_);
    if (f_ == nullptr) return;
    const std::size_t add = json_record.size() + 1;
    if (bytes_ > 0 && bytes_ + add > cfg_.max_bytes) rotate_locked();
    if (f_ == nullptr) return;  // rotation reopen failed
    std::fwrite(json_record.data(), 1, json_record.size(), f_);
    std::fputc('\n', f_);
    std::fflush(f_);  // a crash must not lose completed records
    bytes_ += add;
    ++lines_;
  }

 private:
  bool open_locked() {
    f_ = std::fopen(cfg_.path.c_str(), "a");
    if (f_ == nullptr) {
      std::fprintf(stderr, "sparta: cannot open statlog '%s'\n",
                   cfg_.path.c_str());
      return false;
    }
    const long pos = std::ftell(f_);
    bytes_ = pos > 0 ? static_cast<std::size_t>(pos) : 0;
    return true;
  }

  void close_locked() {
    if (f_ != nullptr) {
      std::fclose(f_);
      f_ = nullptr;
    }
    bytes_ = 0;
  }

  // path.(k-1) ← ... ← path.1 ← path, then reopen a fresh live file.
  void rotate_locked() {
    std::fclose(f_);
    f_ = nullptr;
    for (int k = cfg_.max_files - 1; k >= 1; --k) {
      const std::string to = cfg_.path + "." + std::to_string(k);
      const std::string from =
          k == 1 ? cfg_.path : cfg_.path + "." + std::to_string(k - 1);
      std::remove(to.c_str());
      std::rename(from.c_str(), to.c_str());
    }
    if (cfg_.max_files == 1) std::remove(cfg_.path.c_str());
    open_locked();
  }

  mutable std::mutex mu_;
  StatLogConfig cfg_;
  std::FILE* f_ = nullptr;
  std::size_t bytes_ = 0;
  std::uint64_t lines_ = 0;
};

/// One statlog file, read back for offline aggregation.
struct StatLogFile {
  std::vector<std::string> lines;  ///< complete, newline-terminated records
  /// The file ended without a final newline: the writer crashed
  /// mid-append and the partial record was discarded, not surfaced.
  bool torn_tail = false;
};

/// Reads every *complete* line of one statlog file. The append path
/// fflushes whole lines, so the only way a file ends without '\n' is a
/// crash mid-write; that fragment is counted as torn_tail and dropped
/// so readers never parse half a record.
inline StatLogFile read_statlog_file(const std::string& path) {
  StatLogFile out;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return out;
  std::string buf;
  while (true) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) {
      out.torn_tail = !buf.empty();
      return out;
    }
    if (c == '\n') {
      out.lines.push_back(std::move(buf));
      buf.clear();
    } else {
      buf.push_back(static_cast<char>(c));
    }
  }
}

/// Reads a whole rotated store oldest-first: path.(max_files-1), ...,
/// path.1, then the live file. Missing chain members are skipped (a
/// store that never rotated is just the live file).
inline StatLogFile read_statlog_store(const std::string& path,
                                      int max_files = 16) {
  StatLogFile out;
  for (int k = max_files - 1; k >= 0; --k) {
    const std::string p =
        k == 0 ? path : path + "." + std::to_string(k);
    StatLogFile one = read_statlog_file(p);
    for (std::string& line : one.lines) {
      out.lines.push_back(std::move(line));
    }
    out.torn_tail = out.torn_tail || one.torn_tail;
  }
  return out;
}

}  // namespace sparta::obs
