// Cooperative cancellation and deadlines for long-running contractions.
//
// A CancelToken is a cheap, copyable handle on shared cancel state. The
// engine polls it at chunk granularity (one X sub-tensor, one table-build
// stride, one sort pass): check() throws Cancelled when the token was
// tripped — explicitly via request_cancel(), or implicitly when the
// token's deadline passed. The exception unwinds through the
// ExceptionCollector pattern exactly like an injected fault, so every
// ScopedCharge is released and the budget returns to zero.
//
// Cancelled deliberately does NOT derive from sparta::Error: the
// degradation ladder (contract_resilient) treats Error as a recoverable
// rung failure, while a cancellation must abort the whole ladder — time
// exhaustion cannot be fixed by retrying on a lighter algorithm.
//
// A default-constructed token is inert: every query is one null-pointer
// test, so unconditional checks in hot loops cost nothing when no caller
// asked for cancellation.
//
// Test hooks (deterministic, mirroring the failpoint grammar):
//   * arm_at_site("contract.search") — trip at the first check naming
//     that site (the check sites reuse the failpoint site names);
//   * arm_after_checks(n) — trip at the n-th check, wherever it lands.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sparta {

/// Thrown by CancelToken::check() when the token was tripped. A sibling
/// of sparta::Error (both derive from std::runtime_error) so that
/// `catch (const Error&)` recovery paths — the resilience ladder, the
/// fault-injection oracle — never swallow a cancellation.
class Cancelled : public std::runtime_error {
 public:
  explicit Cancelled(const std::string& what) : std::runtime_error(what) {}
};

class CancelToken {
 public:
  /// Inert token: never cancelled, checks are free.
  CancelToken() = default;

  /// Live token that can be tripped via request_cancel().
  [[nodiscard]] static CancelToken make() {
    CancelToken t;
    t.s_ = std::make_shared<State>();
    return t;
  }

  /// Live token that additionally trips itself once `seconds` of steady
  /// time elapse (first check past the deadline observes it).
  [[nodiscard]] static CancelToken with_deadline(double seconds) {
    CancelToken t = make();
    t.s_->deadline_ns =
        now_ns() + static_cast<std::int64_t>(seconds * 1e9);
    return t;
  }

  [[nodiscard]] bool valid() const { return s_ != nullptr; }

  /// Trips the token. Idempotent; the first trip stamps the cancel time
  /// used by seconds_since_cancel() (the cancel-latency measurement).
  void request_cancel(const char* reason = "cancelled") const {
    if (!s_) return;
    trip(reason);
  }

  /// True once tripped. A deadline token trips itself here when the
  /// deadline has passed, so polling cancelled() is the cooperative
  /// deadline check.
  [[nodiscard]] bool cancelled() const {
    if (!s_) return false;
    if (s_->cancelled.load(std::memory_order_relaxed)) return true;
    if (s_->deadline_ns != 0 && now_ns() >= s_->deadline_ns) {
      trip("deadline exceeded");
      return true;
    }
    return false;
  }

  /// True when this token carries a deadline (whether or not tripped).
  [[nodiscard]] bool has_deadline() const {
    return s_ != nullptr && s_->deadline_ns != 0;
  }

  /// Why the token tripped ("deadline exceeded", a request_cancel
  /// reason, ...); nullptr when not tripped.
  [[nodiscard]] const char* reason() const {
    if (!s_ || !s_->cancelled.load(std::memory_order_acquire)) {
      return nullptr;
    }
    return s_->reason.load(std::memory_order_acquire);
  }

  /// True when the trip came from the token's own deadline (as opposed
  /// to an explicit request_cancel).
  [[nodiscard]] bool deadline_expired() const {
    const char* r = reason();
    return r != nullptr && std::strcmp(r, "deadline exceeded") == 0;
  }

  /// Seconds of steady time since the first trip; 0 when not cancelled.
  [[nodiscard]] double seconds_since_cancel() const {
    if (!s_ || !s_->cancelled.load(std::memory_order_relaxed)) return 0.0;
    const std::int64_t at = s_->cancel_ns.load(std::memory_order_relaxed);
    return at == 0
               ? 0.0
               : static_cast<double>(now_ns() - at) * 1e-9;
  }

  /// Trip at the first check() naming `site` (deterministic stage
  /// targeting for tests and the chaos harness).
  void arm_at_site(std::string site) const {
    if (s_) s_->trip_site = std::move(site);
  }

  /// Trip at the n-th check() regardless of site (n >= 1).
  void arm_after_checks(std::uint64_t n) const {
    if (s_) s_->countdown.store(n, std::memory_order_relaxed);
  }

  /// Cooperative cancel point. Throws Cancelled once the token is
  /// tripped (or trips it, when an armed site/countdown matches) and
  /// emits a trace instant naming the site that observed it. Inert
  /// tokens return immediately.
  void check(const char* site = "") const {
    if (!s_) return;
    if (!cancelled() && !armed_hit(site)) return;
    if (obs::trace_enabled() || obs::flight_enabled()) {
      obs::trace_instant(std::string("cancel@") + site);
    }
    SPARTA_COUNTER_ADD("cancel.observed", 1);
    const char* why = s_->reason.load(std::memory_order_acquire);
    throw Cancelled(std::string(why != nullptr ? why : "cancelled") +
                    (*site != '\0' ? std::string(" at ") + site
                                   : std::string()));
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<std::int64_t> cancel_ns{0};   // steady ns of first trip
    std::atomic<std::uint64_t> countdown{0};  // 0 = unarmed
    std::atomic<const char*> reason{nullptr}; // literal, set at trip
    std::int64_t deadline_ns = 0;             // 0 = none; set pre-share
    std::string trip_site;                    // set pre-share
  };

  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  // `reason` must be a string literal (stored as a raw pointer so the
  // trip path stays lock-free).
  void trip(const char* reason) const {
    const char* expected = nullptr;
    s_->reason.compare_exchange_strong(expected, reason,
                                       std::memory_order_release);
    bool was = s_->cancelled.exchange(true, std::memory_order_release);
    if (!was) {
      s_->cancel_ns.store(now_ns(), std::memory_order_relaxed);
    }
  }

  // Deterministic test hooks: named-site and countdown arming.
  [[nodiscard]] bool armed_hit(const char* site) const {
    if (!s_->trip_site.empty() && s_->trip_site == site) {
      trip("cancel injected");
      return true;
    }
    std::uint64_t c = s_->countdown.load(std::memory_order_relaxed);
    while (c > 0) {
      if (s_->countdown.compare_exchange_weak(c, c - 1,
                                              std::memory_order_relaxed)) {
        if (c == 1) {
          trip("cancel injected");
          return true;
        }
        return false;
      }
    }
    return false;
  }

  std::shared_ptr<State> s_;
};

}  // namespace sparta
