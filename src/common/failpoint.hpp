// Deterministic fault injection (failpoints).
//
// A failpoint is a named site in the library where tests and the fuzz
// harness can force an exception — std::bad_alloc, sparta::Error or
// sparta::BudgetExceeded — without patching the code under test. Sites
// are compiled in unconditionally but cost a single relaxed atomic load
// when nothing is armed, so production paths pay nothing measurable.
//
// Arming a site, programmatically:
//
//   failpoint::arm("contract.accumulate",
//                  {failpoint::Action::kBadAlloc, /*fire_on=*/1,
//                   /*times=*/1});
//   ... run the code under test ...
//   failpoint::disarm_all();
//
// or from the environment (picked up once at program start):
//
//   SPARTA_FAILPOINTS="contract.search=bad_alloc@2;plan.build=error"
//
// Spec grammar, per site, separated by ';':
//   site=action[@N][xM]
//     action  bad_alloc | error | budget
//     @N      fire on the Nth hit of the site (default 1)
//     xM      fire at most M times, then stay silent (default 1;
//             x* = every qualifying hit)
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sparta::failpoint {

enum class Action : int {
  kBadAlloc = 0,  ///< throw std::bad_alloc (allocation failure)
  kError = 1,     ///< throw sparta::Error
  kBudget = 2,    ///< throw sparta::BudgetExceeded
};

struct Spec {
  Action action = Action::kBadAlloc;
  std::uint64_t fire_on = 1;  ///< 1-based hit index that first fires
  std::uint64_t times = 1;    ///< max firings; 0 = unlimited
};

/// The failpoint sites compiled into the contraction engine. Tests and
/// the fault-injection fuzzer iterate this list; keep it in sync with
/// the SPARTA_FAILPOINT call sites.
inline constexpr const char* kContractSites[] = {
    "contract.input",       // stage ① input processing (sequential)
    "contract.search",      // stage ② inside the parallel region
    "contract.accumulate",  // stage ③ inside the parallel region
    "contract.writeback",   // stage ④ inside the parallel region
    "contract.sort",        // stage ⑤ output sorting (sequential)
    "plan.build",           // HtY construction (YPlan)
    "budget.charge",        // AllocationRegistry::on_allocate
};

namespace detail {

struct Site {
  Spec spec;
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Site> sites;
};

inline Registry& registry() {
  static Registry r;
  return r;
}

inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> e{false};
  return e;
}

// Slow path: only reached when at least one site is armed anywhere.
inline void hit(const char* name) {
  Registry& r = registry();
  Action action{};
  std::string site_name;
  {
    std::lock_guard<std::mutex> lk(r.mu);
    auto it = r.sites.find(name);
    if (it == r.sites.end()) return;
    Site& s = it->second;
    ++s.hits;
    if (s.hits < s.spec.fire_on) return;
    if (s.spec.times != 0 && s.fired >= s.spec.times) return;
    ++s.fired;
    action = s.spec.action;
    site_name = it->first;
  }
  SPARTA_COUNTER_ADD("failpoint.fired", 1);
  if (obs::trace_enabled() || obs::flight_enabled()) {
    obs::trace_instant("failpoint:" + site_name);
  }
  switch (action) {
    case Action::kBadAlloc:
      throw std::bad_alloc{};
    case Action::kError:
      throw Error("failpoint '" + site_name + "' injected sparta::Error");
    case Action::kBudget:
      throw BudgetExceeded(
          "failpoint '" + site_name + "' injected BudgetExceeded",
          /*requested_bytes=*/1, /*limit_bytes=*/0, /*live_bytes=*/0);
  }
}

}  // namespace detail

/// The site check. Zero work when no failpoint is armed process-wide.
inline void evaluate(const char* name) {
  if (detail::enabled_flag().load(std::memory_order_relaxed)) {
    detail::hit(name);
  }
}

/// Arms (or re-arms) `name`, resetting its hit/fired counters.
inline void arm(const std::string& name, Spec spec) {
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.sites[name] = detail::Site{spec, 0, 0};
  detail::enabled_flag().store(true, std::memory_order_relaxed);
}

inline void disarm(const std::string& name) {
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.sites.erase(name);
  if (r.sites.empty()) {
    detail::enabled_flag().store(false, std::memory_order_relaxed);
  }
}

inline void disarm_all() {
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lk(r.mu);
  r.sites.clear();
  detail::enabled_flag().store(false, std::memory_order_relaxed);
}

/// Times `name` was evaluated while armed (armed sites only).
[[nodiscard]] inline std::uint64_t hit_count(const std::string& name) {
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.sites.find(name);
  return it == r.sites.end() ? 0 : it->second.hits;
}

/// Times `name` actually fired (threw) so far.
[[nodiscard]] inline std::uint64_t fire_count(const std::string& name) {
  detail::Registry& r = detail::registry();
  std::lock_guard<std::mutex> lk(r.mu);
  const auto it = r.sites.find(name);
  return it == r.sites.end() ? 0 : it->second.fired;
}

/// Parses and arms a `site=action[@N][xM];...` spec (the SPARTA_FAILPOINTS
/// grammar). Returns false (arming nothing further) on a malformed spec,
/// with a diagnostic in `*err` when provided.
inline bool arm_from_spec(const std::string& spec, std::string* err = nullptr) {
  auto fail = [&](const std::string& why) {
    if (err) *err = why;
    return false;
  };
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return fail("failpoint entry '" + entry + "' lacks 'site=action'");
    }
    const std::string site = entry.substr(0, eq);
    std::string rest = entry.substr(eq + 1);

    Spec s;
    // Optional xM / x* suffix.
    const std::size_t xpos = rest.find('x');
    if (xpos != std::string::npos) {
      const std::string m = rest.substr(xpos + 1);
      if (m == "*") {
        s.times = 0;
      } else {
        char* endp = nullptr;
        s.times = std::strtoull(m.c_str(), &endp, 10);
        if (!endp || *endp != '\0' || s.times == 0) {
          return fail("bad repeat count in '" + entry + "'");
        }
      }
      rest = rest.substr(0, xpos);
    }
    // Optional @N suffix.
    const std::size_t at = rest.find('@');
    if (at != std::string::npos) {
      const std::string n = rest.substr(at + 1);
      char* endp = nullptr;
      s.fire_on = std::strtoull(n.c_str(), &endp, 10);
      if (!endp || *endp != '\0' || s.fire_on == 0) {
        return fail("bad hit index in '" + entry + "'");
      }
      rest = rest.substr(0, at);
    }
    if (rest == "bad_alloc") {
      s.action = Action::kBadAlloc;
    } else if (rest == "error") {
      s.action = Action::kError;
    } else if (rest == "budget") {
      s.action = Action::kBudget;
    } else {
      return fail("unknown failpoint action '" + rest + "' in '" + entry +
                  "'");
    }
    arm(site, s);
  }
  return true;
}

namespace detail {

// Arms SPARTA_FAILPOINTS once per process, before main() runs. Malformed
// specs are ignored (a test binary must not abort on a typo in the
// operator's environment); programmatic arm_from_spec reports errors.
inline const bool g_env_armed = [] {
  if (const char* env = std::getenv("SPARTA_FAILPOINTS")) {
    arm_from_spec(env);
  }
  return true;
}();

}  // namespace detail

}  // namespace sparta::failpoint

/// Marks an injection site. `name` must be a string literal; see
/// failpoint::kContractSites for the engine's sites.
#define SPARTA_FAILPOINT(name) ::sparta::failpoint::evaluate(name)
