// LSD radix sort for (64-bit key, payload) pairs.
//
// The input-processing and output-sorting stages sort non-zeros by their
// LN key; since the key width is known (product of mode sizes), a radix
// sort does it in ceil(bits/8) linear passes instead of O(n log n)
// comparisons. Used by SparseTensor::sort() for large tensors;
// bench_ablation_sort measures the gain over the task-parallel
// quicksort.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace sparta {

/// Sorts `items` by .first ascending, stable. `key_bits` bounds the
/// significant key width (64 = full); passes above it are skipped.
template <typename Payload>
void radix_sort_pairs(std::vector<std::pair<std::uint64_t, Payload>>& items,
                      int key_bits = 64) {
  using Item = std::pair<std::uint64_t, Payload>;
  const std::size_t n = items.size();
  if (n < 2) return;

  const int passes = (key_bits + 7) / 8;
  std::vector<Item> scratch(n);
  Item* src = items.data();
  Item* dst = scratch.data();

  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * 8;
    std::array<std::size_t, 256> count{};
    for (std::size_t i = 0; i < n; ++i) {
      ++count[(src[i].first >> shift) & 0xff];
    }
    // All keys share this byte: skip the copy pass entirely.
    bool trivial = false;
    for (std::size_t c : count) {
      if (c == n) {
        trivial = true;
        break;
      }
    }
    if (trivial) continue;

    std::size_t running = 0;
    for (int b = 0; b < 256; ++b) {
      const std::size_t c = count[static_cast<std::size_t>(b)];
      count[static_cast<std::size_t>(b)] = running;
      running += c;
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[count[(src[i].first >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != items.data()) {
    std::copy(src, src + n, items.data());
  }
}

/// Number of significant bits in `max_value` (at least 1).
[[nodiscard]] inline int significant_bits(std::uint64_t max_value) {
  int bits = 1;
  while (max_value >>= 1) ++bits;
  return bits;
}

}  // namespace sparta
