// Deterministic pseudo-random number generation.
//
// xoshiro256** (Blackman & Vigna) — fast, high-quality, and identical
// across platforms, so synthetic datasets are reproducible byte-for-byte.
#pragma once

#include <cstdint>
#include <limits>

namespace sparta {

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free-enough reduction; the bias is
    // below 2^-64 * bound, negligible for dataset generation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi) {
    return lo + (hi - lo) * uniform_double();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace sparta
