// OpenMP helpers used across the library.
//
// The paper parallelizes all five SpTC stages with OpenMP: parallel-for
// over sub-tensors for the computation stages and task-based quicksort
// for the sorting stages (§3.5). These wrappers keep the OpenMP surface
// in one place and degrade gracefully when built without OpenMP.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/cancel.hpp"
#include "obs/trace.hpp"

namespace sparta {

/// Exception-safe OpenMP region wrapper. An exception escaping an
/// `omp parallel` (or task) boundary calls std::terminate, so every
/// parallel region in the library funnels its per-iteration work through
/// one of these: the first exception is captured, the remaining
/// iterations become no-ops, the region joins normally, and the caller
/// rethrows on the spawning thread.
///
///   ExceptionCollector ec;
///   #pragma omp parallel
///   {
///   #pragma omp for
///     for (...) ec.run([&] { work(i); });
///   }
///   ec.rethrow();
class ExceptionCollector {
 public:
  /// Invokes `f`, capturing any exception. Iterations after a failure
  /// are skipped so a poisoned region drains quickly.
  template <typename F>
  void run(F&& f) noexcept {
    if (failed_.load(std::memory_order_relaxed)) return;
    try {
      f();
    } catch (...) {
      capture();
    }
  }

  /// Records the in-flight exception (first one wins). Only call from a
  /// catch block.
  void capture() noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    if (!eptr_) eptr_ = std::current_exception();
    failed_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] bool failed() const {
    return failed_.load(std::memory_order_relaxed);
  }

  /// Rethrows the captured exception, if any. Call after the region.
  void rethrow() {
    if (eptr_) std::rethrow_exception(eptr_);
  }

 private:
  std::mutex mu_;
  std::exception_ptr eptr_;
  std::atomic<bool> failed_{false};
};

/// Number of OpenMP threads a parallel region would use.
[[nodiscard]] inline int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Calling thread's index inside a parallel region (0 outside).
[[nodiscard]] inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Sets the global OpenMP thread count; no-op without OpenMP.
inline void set_num_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// RAII guard that overrides the OpenMP thread count and restores the
/// previous value on destruction. Used by benchmarks sweeping threads.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : previous_(max_threads()) {
    set_num_threads(n);
  }
  ~ThreadCountGuard() { set_num_threads(previous_); }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int previous_;
};

namespace detail {

// Below this size a sequential sort beats task spawning.
inline constexpr std::ptrdiff_t kParallelSortCutoff = 1 << 14;

template <typename It, typename Cmp>
void quicksort_task(It first, It last, const Cmp& cmp, int depth,
                    ExceptionCollector& ec, const CancelToken& cancel,
                    obs::Correlation corr = {}) {
  if (ec.failed()) return;
  // Tasks run on arbitrary pooled threads: re-establish the submitting
  // thread's correlation so a cancel instant fired here is attributed
  // to the right request (and plan step), not whatever the thread ran
  // last.
  obs::RequestIdScope rid_scope(corr);
  // One cancel poll per partition task — each task touches at most
  // one kParallelSortCutoff-sized range before re-checking.
  cancel.check("sort.partition");
  while (last - first > kParallelSortCutoff && depth > 0) {
    // Median-of-three pivot to dodge pathological splits on sorted input.
    It mid = first + (last - first) / 2;
    if (cmp(*mid, *first)) std::iter_swap(first, mid);
    if (cmp(*(last - 1), *first)) std::iter_swap(first, last - 1);
    if (cmp(*(last - 1), *mid)) std::iter_swap(mid, last - 1);
    auto pivot = *mid;
    It split = std::partition(
        first, last, [&](const auto& v) { return cmp(v, pivot); });
    // Guard against zero-progress partitions on many-duplicate inputs.
    if (split == first) {
      split = std::partition(
          first, last, [&](const auto& v) { return !cmp(pivot, v); });
      first = split;
      continue;
    }
#ifdef _OPENMP
#pragma omp task firstprivate(first, split, depth, corr) \
    shared(cmp, ec, cancel)
    ec.run([&] {
      quicksort_task(first, split, cmp, depth - 1, ec, cancel, corr);
    });
#else
    quicksort_task(first, split, cmp, depth - 1, ec, cancel, corr);
#endif
    first = split;
    --depth;
  }
  std::sort(first, last, cmp);
}

}  // namespace detail

/// Parallel quicksort using OpenMP tasks (the paper's approach for the
/// input-processing and output-sorting stages). A comparator (or pivot
/// copy) that throws is rethrown on the calling thread, never across the
/// task/region boundary. `cancel` is polled once per partition task
/// (Cancelled unwinds the same way); an inert token costs one pointer
/// test per task.
template <typename It, typename Cmp>
void parallel_sort(It first, It last, Cmp cmp,
                   const CancelToken& cancel = {}) {
  if (last - first <= detail::kParallelSortCutoff) {
    cancel.check("sort.partition");
    std::sort(first, last, cmp);
    return;
  }
  ExceptionCollector ec;
  const obs::Correlation corr = obs::current_correlation();
#ifdef _OPENMP
#pragma omp parallel
#pragma omp single nowait
  ec.run([&] {
    detail::quicksort_task(first, last, cmp, /*depth=*/16, ec, cancel, corr);
  });
#else
  ec.run([&] {
    detail::quicksort_task(first, last, cmp, 16, ec, cancel, corr);
  });
#endif
  ec.rethrow();
}

/// Exclusive prefix sum: out[i] = sum of in[0..i). Returns the grand total.
/// `out` may alias `in`.
template <typename T>
T exclusive_scan(const std::vector<T>& in, std::vector<T>& out) {
  out.resize(in.size());
  T running{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    const T v = in[i];
    out[i] = running;
    running += v;
  }
  return running;
}

}  // namespace sparta
