// OpenMP helpers used across the library.
//
// The paper parallelizes all five SpTC stages with OpenMP: parallel-for
// over sub-tensors for the computation stages and task-based quicksort
// for the sorting stages (§3.5). These wrappers keep the OpenMP surface
// in one place and degrade gracefully when built without OpenMP.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace sparta {

/// Number of OpenMP threads a parallel region would use.
[[nodiscard]] inline int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Calling thread's index inside a parallel region (0 outside).
[[nodiscard]] inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Sets the global OpenMP thread count; no-op without OpenMP.
inline void set_num_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// RAII guard that overrides the OpenMP thread count and restores the
/// previous value on destruction. Used by benchmarks sweeping threads.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) : previous_(max_threads()) {
    set_num_threads(n);
  }
  ~ThreadCountGuard() { set_num_threads(previous_); }
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int previous_;
};

namespace detail {

// Below this size a sequential sort beats task spawning.
inline constexpr std::ptrdiff_t kParallelSortCutoff = 1 << 14;

template <typename It, typename Cmp>
void quicksort_task(It first, It last, const Cmp& cmp, int depth) {
  while (last - first > kParallelSortCutoff && depth > 0) {
    // Median-of-three pivot to dodge pathological splits on sorted input.
    It mid = first + (last - first) / 2;
    if (cmp(*mid, *first)) std::iter_swap(first, mid);
    if (cmp(*(last - 1), *first)) std::iter_swap(first, last - 1);
    if (cmp(*(last - 1), *mid)) std::iter_swap(mid, last - 1);
    auto pivot = *mid;
    It split = std::partition(
        first, last, [&](const auto& v) { return cmp(v, pivot); });
    // Guard against zero-progress partitions on many-duplicate inputs.
    if (split == first) {
      split = std::partition(
          first, last, [&](const auto& v) { return !cmp(pivot, v); });
      first = split;
      continue;
    }
#ifdef _OPENMP
#pragma omp task firstprivate(first, split, depth) shared(cmp)
    quicksort_task(first, split, cmp, depth - 1);
#else
    quicksort_task(first, split, cmp, depth - 1);
#endif
    first = split;
    --depth;
  }
  std::sort(first, last, cmp);
}

}  // namespace detail

/// Parallel quicksort using OpenMP tasks (the paper's approach for the
/// input-processing and output-sorting stages).
template <typename It, typename Cmp>
void parallel_sort(It first, It last, Cmp cmp) {
  if (last - first <= detail::kParallelSortCutoff) {
    std::sort(first, last, cmp);
    return;
  }
#ifdef _OPENMP
#pragma omp parallel
#pragma omp single nowait
  detail::quicksort_task(first, last, cmp, /*depth=*/16);
#else
  detail::quicksort_task(first, last, cmp, 16);
#endif
}

/// Exclusive prefix sum: out[i] = sum of in[0..i). Returns the grand total.
/// `out` may alias `in`.
template <typename T>
T exclusive_scan(const std::vector<T>& in, std::vector<T>& out) {
  out.resize(in.size());
  T running{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    const T v = in[i];
    out[i] = running;
    running += v;
  }
  return running;
}

}  // namespace sparta
