// Human-readable formatting helpers for benchmark and example output.
#pragma once

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

namespace sparta {

/// "1.5 GB", "320 MB", "4.2 KB" style byte formatting.
[[nodiscard]] inline std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(v < 10 ? 2 : 1) << v << " "
     << kUnits[unit];
  return os.str();
}

/// "123 ms", "4.56 s" style duration formatting.
[[nodiscard]] inline std::string format_seconds(double s) {
  std::ostringstream os;
  if (s < 1e-6) {
    os << std::fixed << std::setprecision(1) << s * 1e9 << " ns";
  } else if (s < 1e-3) {
    os << std::fixed << std::setprecision(1) << s * 1e6 << " us";
  } else if (s < 1.0) {
    os << std::fixed << std::setprecision(1) << s * 1e3 << " ms";
  } else {
    os << std::fixed << std::setprecision(2) << s << " s";
  }
  return os.str();
}

/// "2.4e-05" style density formatting matching the paper's Table 3.
[[nodiscard]] inline std::string format_density(double d) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(1) << d;
  return os.str();
}

}  // namespace sparta
