// Error handling for the Sparta library.
//
// All recoverable failures (bad user input, malformed files, shape
// mismatches) throw sparta::Error. Internal invariant violations use
// SPARTA_ASSERT, which is compiled out in release builds.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sparta {

/// Exception type thrown by every sparta API on invalid input.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(const std::string& msg,
                                     const std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ":" << loc.line() << ": " << msg;
  throw Error(os.str());
}

}  // namespace detail

/// Throws sparta::Error with source location when `cond` is false.
/// Used to validate user-facing preconditions; always enabled.
#define SPARTA_CHECK(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::sparta::detail::throw_error(                                  \
          std::string("check failed: " #cond " — ") + (msg),          \
          std::source_location::current());                           \
    }                                                                 \
  } while (0)

/// Internal invariant; aborts in debug builds, no-op with NDEBUG.
#ifdef NDEBUG
#define SPARTA_ASSERT(cond) ((void)0)
#else
#define SPARTA_ASSERT(cond) \
  do {                      \
    if (!(cond)) {          \
      std::abort();         \
    }                       \
  } while (0)
#endif

}  // namespace sparta
