// Error handling for the Sparta library.
//
// All recoverable failures (bad user input, malformed files, shape
// mismatches) throw sparta::Error. Internal invariant violations use
// SPARTA_ASSERT, which is compiled out in release builds.
#pragma once

#include <cstddef>
#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sparta {

/// Exception type thrown by every sparta API on invalid input.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a tracked allocation or an Eq. 5/6 pre-flight estimate
/// would push a contraction past its configured MemoryBudget. A subclass
/// of Error so callers that only care about "sparta failed cleanly" need
/// a single catch; the resilient engine catches it specifically to walk
/// down the degradation ladder.
class BudgetExceeded : public Error {
 public:
  BudgetExceeded(const std::string& what, std::size_t requested_bytes,
                 std::size_t limit_bytes, std::size_t live_bytes)
      : Error(what),
        requested_(requested_bytes),
        limit_(limit_bytes),
        live_(live_bytes) {
    // Constructing one implies a throw is imminent; a single
    // observability hook here covers every site (pre-flight gates,
    // tracked charges, injected faults).
    SPARTA_COUNTER_ADD("error.budget_exceeded", 1);
    if (obs::trace_enabled() || obs::flight_enabled()) {
      obs::JsonWriter w;
      w.begin_object();
      w.key("requested_bytes")
          .value(static_cast<std::uint64_t>(requested_bytes));
      w.key("limit_bytes").value(static_cast<std::uint64_t>(limit_bytes));
      w.key("live_bytes").value(static_cast<std::uint64_t>(live_bytes));
      w.end_object();
      obs::trace_instant("budget_exceeded", w.str());
    }
  }

  /// Bytes of the charge (or estimate) that tripped the budget.
  [[nodiscard]] std::size_t requested_bytes() const { return requested_; }
  /// The configured budget.
  [[nodiscard]] std::size_t limit_bytes() const { return limit_; }
  /// Tracked live bytes at the moment of the failed charge.
  [[nodiscard]] std::size_t live_bytes() const { return live_; }

 private:
  std::size_t requested_;
  std::size_t limit_;
  std::size_t live_;
};

namespace detail {

[[noreturn]] inline void throw_error(const std::string& msg,
                                     const std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ":" << loc.line() << ": " << msg;
  throw Error(os.str());
}

}  // namespace detail

/// Throws sparta::Error with source location when `cond` is false.
/// Used to validate user-facing preconditions; always enabled.
#define SPARTA_CHECK(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::sparta::detail::throw_error(                                  \
          std::string("check failed: " #cond " — ") + (msg),          \
          std::source_location::current());                           \
    }                                                                 \
  } while (0)

/// Internal invariant; aborts in debug builds, no-op with NDEBUG.
#ifdef NDEBUG
#define SPARTA_ASSERT(cond) ((void)0)
#else
#define SPARTA_ASSERT(cond) \
  do {                      \
    if (!(cond)) {          \
      std::abort();         \
    }                       \
  } while (0)
#endif

}  // namespace sparta
