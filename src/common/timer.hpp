// Wall-clock timing utilities.
//
// Timer measures a single interval. StageTimes aggregates per-stage wall
// time for the five SpTC stages the paper reports (Fig. 2): input
// processing, index search, accumulation, writeback, output sorting.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace sparta {

/// Simple steady-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or last reset().
  [[nodiscard]] std::int64_t nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// The five pipeline stages of an SpTC (paper §3.1).
enum class Stage : int {
  kInputProcessing = 0,
  kIndexSearch = 1,
  kAccumulation = 2,
  kWriteback = 3,
  kOutputSorting = 4,
};

inline constexpr int kNumStages = 5;

/// Human-readable stage name matching the paper's terminology.
[[nodiscard]] constexpr std::string_view stage_name(Stage s) {
  switch (s) {
    case Stage::kInputProcessing:
      return "input_processing";
    case Stage::kIndexSearch:
      return "index_search";
    case Stage::kAccumulation:
      return "accumulation";
    case Stage::kWriteback:
      return "writeback";
    case Stage::kOutputSorting:
      return "output_sorting";
  }
  return "unknown";
}

/// Per-stage elapsed seconds for one contraction run.
struct StageTimes {
  std::array<double, kNumStages> seconds{};

  // Deliberately not [[nodiscard]]: the mutable overload exists to be
  // written through (`times[Stage::kWriteback] = t;`), and a nodiscard
  // here flags every such assignment.
  double& operator[](Stage s) { return seconds[static_cast<int>(s)]; }
  [[nodiscard]] double operator[](Stage s) const {
    return seconds[static_cast<int>(s)];
  }

  [[nodiscard]] double total() const {
    double t = 0.0;
    for (double s : seconds) t += s;
    return t;
  }

  /// Fraction of total time spent in stage `s`; 0 when total is 0.
  [[nodiscard]] double fraction(Stage s) const {
    const double t = total();
    return t > 0.0 ? (*this)[s] / t : 0.0;
  }

  StageTimes& operator+=(const StageTimes& o) {
    for (int i = 0; i < kNumStages; ++i) seconds[i] += o.seconds[i];
    return *this;
  }

  /// JSON object mapping each stage_name() to its elapsed seconds —
  /// the shared shape of the bench --json "stages" field and the
  /// SPARTA_METRICS "sections" export.
  [[nodiscard]] std::string to_json() const {
    obs::JsonWriter w;
    w.begin_object();
    for (int i = 0; i < kNumStages; ++i) {
      w.key(stage_name(static_cast<Stage>(i))).value(seconds[i]);
    }
    w.end_object();
    return w.str();
  }
};

}  // namespace sparta
