#include "kernels/dense_matrix.hpp"

#include <algorithm>
#include <cmath>

namespace sparta {

DenseMatrix DenseMatrix::gram() const {
  DenseMatrix g(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const value_t* row = data_.data() + r * cols_;
    for (std::size_t i = 0; i < cols_; ++i) {
      for (std::size_t j = i; j < cols_; ++j) {
        g.at(i, j) += row[i] * row[j];
      }
    }
  }
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = 0; j < i; ++j) g.at(i, j) = g.at(j, i);
  }
  return g;
}

DenseMatrix DenseMatrix::solve_spd_right(const DenseMatrix& b) const {
  SPARTA_CHECK(rows_ == cols_, "SPD solve needs a square matrix");
  SPARTA_CHECK(b.cols() == cols_, "B's column count must match A");
  const std::size_t n = cols_;

  // Cholesky: A = L Lᵀ (lower-triangular L).
  DenseMatrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      value_t s = at(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        SPARTA_CHECK(s > 0.0,
                     "matrix not positive definite (CP-ALS factors "
                     "collinear?)");
        l.at(i, i) = std::sqrt(s);
      } else {
        l.at(i, j) = s / l.at(j, j);
      }
    }
  }

  // Solve X A = B row by row: A xᵀ = bᵀ via L (forward) then Lᵀ (back).
  DenseMatrix x(b.rows(), n);
  std::vector<value_t> y(n);
  for (std::size_t r = 0; r < b.rows(); ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      value_t s = b.at(r, i);
      for (std::size_t k = 0; k < i; ++k) s -= l.at(i, k) * y[k];
      y[i] = s / l.at(i, i);
    }
    for (std::size_t i = n; i-- > 0;) {
      value_t s = y[i];
      for (std::size_t k = i + 1; k < n; ++k) s -= l.at(k, i) * x.at(r, k);
      x.at(r, i) = s / l.at(i, i);
    }
  }
  return x;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  SPARTA_CHECK(cols_ == other.rows(), "multiply: inner dims must match");
  DenseMatrix out(rows_, other.cols());
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const value_t a = at(i, k);
      if (a == 0.0) continue;
      const auto brow = other.row(k);
      auto orow = out.row(i);
      for (std::size_t j = 0; j < other.cols(); ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) out.at(j, i) = at(i, j);
  }
  return out;
}

DenseMatrix DenseMatrix::random_orthonormal(std::size_t rows,
                                            std::size_t cols,
                                            std::uint64_t seed) {
  SPARTA_CHECK(rows >= cols, "orthonormal columns need rows >= cols");
  DenseMatrix m = random(rows, cols, seed, -1.0, 1.0);
  // Modified Gram-Schmidt.
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t k = 0; k < j; ++k) {
      double dot = 0;
      for (std::size_t i = 0; i < rows; ++i) dot += m.at(i, j) * m.at(i, k);
      for (std::size_t i = 0; i < rows; ++i) m.at(i, j) -= dot * m.at(i, k);
    }
    double norm = 0;
    for (std::size_t i = 0; i < rows; ++i) norm += m.at(i, j) * m.at(i, j);
    norm = std::sqrt(norm);
    SPARTA_CHECK(norm > 1e-12, "degenerate random draw; change the seed");
    for (std::size_t i = 0; i < rows; ++i) m.at(i, j) /= norm;
  }
  return m;
}

SymmetricEigen symmetric_eigen(const DenseMatrix& a, int max_sweeps) {
  SPARTA_CHECK(a.rows() == a.cols(), "eigendecomposition needs square");
  const std::size_t n = a.rows();
  DenseMatrix d = a;  // becomes diagonal
  DenseMatrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) v.at(i, i) = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += d.at(p, q) * d.at(p, q);
    }
    if (off < 1e-24) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d.at(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double theta = (d.at(q, q) - d.at(p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d.at(k, p);
          const double dkq = d.at(k, q);
          d.at(k, p) = c * dkp - s * dkq;
          d.at(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d.at(p, k);
          const double dqk = d.at(q, k);
          d.at(p, k) = c * dpk - s * dqk;
          d.at(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v.at(k, p);
          const double vkq = v.at(k, q);
          v.at(k, p) = c * vkp - s * vkq;
          v.at(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort descending by eigenvalue.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return d.at(x, x) > d.at(y, y);
  });
  SymmetricEigen out{std::vector<value_t>(n), DenseMatrix(n, n)};
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = d.at(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) {
      out.vectors.at(i, j) = v.at(i, order[j]);
    }
  }
  return out;
}

DenseMatrix hadamard(const DenseMatrix& a, const DenseMatrix& b) {
  SPARTA_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
               "hadamard: shapes must match");
  DenseMatrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    out.data()[i] = a.data()[i] * b.data()[i];
  }
  return out;
}

}  // namespace sparta
