#include "kernels/ttm.hpp"

#include <algorithm>

#include "common/parallel.hpp"

namespace sparta {

SparseTensor SemiSparseTensor::to_sparse(double cutoff) const {
  SparseTensor out(dims_);
  const auto order = dims_.size();
  std::vector<index_t> c(order);
  for (std::size_t f = 0; f < num_fibers(); ++f) {
    // Scatter sparse coords around the dense mode.
    std::size_t p = 0;
    for (std::size_t m = 0; m < order; ++m) {
      if (static_cast<int>(m) == mode_) continue;
      c[m] = coords_[p++][f];
    }
    const auto vals = fiber(f);
    for (std::size_t r = 0; r < rank_; ++r) {
      if (std::abs(vals[r]) > cutoff) {
        c[static_cast<std::size_t>(mode_)] = static_cast<index_t>(r);
        out.append_unchecked(c, vals[r]);
      }
    }
  }
  out.sort();
  return out;
}

SparseTensor ttv(const SparseTensor& x, std::span<const value_t> v,
                 int mode, int num_threads) {
  SPARTA_CHECK(mode >= 0 && mode < x.order(), "ttv: mode out of range");
  SPARTA_CHECK(v.size() == x.dim(mode),
               "ttv: vector length must match the mode size");
  SPARTA_CHECK(x.order() > 1, "ttv: cannot reduce the only mode");
  DenseMatrix u(v.size(), 1);
  for (std::size_t i = 0; i < v.size(); ++i) u.at(i, 0) = v[i];
  const SemiSparseTensor z = ttm(x, u, mode, num_threads);

  // Drop the (length-1) dense mode.
  std::vector<index_t> dims;
  for (int m = 0; m < x.order(); ++m) {
    if (m != mode) dims.push_back(x.dim(m));
  }
  SparseTensor out(dims);
  out.reserve(z.num_fibers());
  std::vector<index_t> c(dims.size());
  for (std::size_t f = 0; f < z.num_fibers(); ++f) {
    const value_t val = z.fiber(f)[0];
    if (val == value_t{0}) continue;
    for (std::size_t m = 0; m < dims.size(); ++m) c[m] = z.coord(f, m);
    out.append_unchecked(c, val);
  }
  out.sort();
  return out;
}

SemiSparseTensor ttm(const SparseTensor& x, const DenseMatrix& u, int mode,
                     int num_threads) {
  SPARTA_CHECK(mode >= 0 && mode < x.order(), "ttm: mode out of range");
  SPARTA_CHECK(u.rows() == x.dim(mode),
               "ttm: U must have dim(mode) rows");
  const std::size_t rank = u.cols();
  SPARTA_CHECK(rank > 0, "ttm: U needs at least one column");
  const int nthreads = num_threads > 0 ? num_threads : max_threads();

  // Sort X with `mode` last so each output fiber is a contiguous run.
  SparseTensor xs = x;
  {
    Modes order;
    for (int m = 0; m < x.order(); ++m) {
      if (m != mode) order.push_back(m);
    }
    order.push_back(mode);
    xs.permute_modes(order);
    xs.sort();
  }
  const auto sparse_order = static_cast<std::size_t>(x.order()) - 1;

  // Fiber boundaries: runs of equal sparse-mode prefix.
  std::vector<std::size_t> fptr{0};
  for (std::size_t i = 1; i < xs.nnz(); ++i) {
    for (std::size_t m = 0; m < sparse_order; ++m) {
      if (xs.index(i - 1, static_cast<int>(m)) !=
          xs.index(i, static_cast<int>(m))) {
        fptr.push_back(i);
        break;
      }
    }
  }
  if (xs.nnz() > 0) fptr.push_back(xs.nnz());

  // Output size is now exactly known: (#fibers) × rank.
  SemiSparseTensor z(x.dims(), mode, rank);
  std::vector<index_t> sc(sparse_order);
  for (std::size_t f = 0; f + 1 < fptr.size(); ++f) {
    for (std::size_t m = 0; m < sparse_order; ++m) {
      sc[m] = xs.index(fptr[f], static_cast<int>(m));
    }
    z.append_fiber(sc);
  }

  // Dense accumulation per fiber, parallel over fibers.
  const auto nf = static_cast<std::ptrdiff_t>(
      fptr.empty() ? 0 : fptr.size() - 1);
#pragma omp parallel for schedule(dynamic, 64) num_threads(nthreads)
  for (std::ptrdiff_t f = 0; f < nf; ++f) {
    const auto fi = static_cast<std::size_t>(f);
    auto out = z.fiber(fi);
    for (std::size_t i = fptr[fi]; i < fptr[fi + 1]; ++i) {
      const index_t in = xs.index(i, static_cast<int>(sparse_order));
      const value_t v = xs.value(i);
      const auto urow = u.row(in);
      for (std::size_t r = 0; r < rank; ++r) out[r] += v * urow[r];
    }
  }
  return z;
}

}  // namespace sparta
