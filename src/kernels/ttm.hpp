// Sparse tensor-times-dense-matrix (TTM / mode-n product).
//
// The paper's introduction contrasts SpTC against this "well-studied"
// kernel: TTM's output shape and size are predictable before
// computation (one dense length-R fiber per distinct non-zero fiber of
// X), unlike SpTC's. The SemiSparseTensor result type makes that
// concrete — it is exactly the mode-generic semi-sparse structure of
// [8] (Baskaran et al.).
//
//   Z(i_1 .. r .. i_N) = Σ_{i_n} X(i_1 .. i_n .. i_N) · U(i_n, r)
//
// with U ∈ R^{I_n × R}.
#pragma once

#include <vector>

#include "kernels/dense_matrix.hpp"
#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta {

/// TTM output: sparse over every mode except `mode`, dense (length
/// `rank`) along it.
class SemiSparseTensor {
 public:
  SemiSparseTensor(std::vector<index_t> dims, int dense_mode,
                   std::size_t rank)
      : dims_(std::move(dims)), mode_(dense_mode), rank_(rank) {
    dims_[static_cast<std::size_t>(mode_)] = static_cast<index_t>(rank);
    coords_.resize(dims_.size() - 1);
  }

  [[nodiscard]] const std::vector<index_t>& dims() const { return dims_; }
  [[nodiscard]] int dense_mode() const { return mode_; }
  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] std::size_t num_fibers() const {
    return coords_.empty() ? 0 : coords_[0].size();
  }

  /// Sparse-mode coordinates of fiber `f` (order-1 entries, skipping the
  /// dense mode).
  [[nodiscard]] index_t coord(std::size_t f, std::size_t sparse_pos) const {
    return coords_[sparse_pos][f];
  }
  /// Dense values of fiber `f`.
  [[nodiscard]] std::span<const value_t> fiber(std::size_t f) const {
    return {vals_.data() + f * rank_, rank_};
  }
  [[nodiscard]] std::span<value_t> fiber(std::size_t f) {
    return {vals_.data() + f * rank_, rank_};
  }

  void append_fiber(std::span<const index_t> sparse_coords) {
    SPARTA_ASSERT(sparse_coords.size() == coords_.size());
    for (std::size_t m = 0; m < coords_.size(); ++m) {
      coords_[m].push_back(sparse_coords[m]);
    }
    vals_.resize(vals_.size() + rank_, 0.0);
  }

  [[nodiscard]] std::size_t footprint_bytes() const {
    std::size_t bytes = vals_.capacity() * sizeof(value_t);
    for (const auto& c : coords_) bytes += c.capacity() * sizeof(index_t);
    return bytes;
  }

  /// Expands to plain COO (|v| > cutoff), sorted.
  [[nodiscard]] SparseTensor to_sparse(double cutoff = 0.0) const;

 private:
  std::vector<index_t> dims_;
  int mode_;
  std::size_t rank_;
  std::vector<std::vector<index_t>> coords_;  // per sparse mode
  std::vector<value_t> vals_;                 // num_fibers × rank
};

/// Z = X ×_mode U with U ∈ R^{dim(mode) × R}. OpenMP-parallel over
/// fibers. The output's exact size (num_fibers × R) is known right
/// after sorting — the predictability SpTC lacks.
[[nodiscard]] SemiSparseTensor ttm(const SparseTensor& x,
                                   const DenseMatrix& u, int mode,
                                   int num_threads = 0);

/// Tensor-times-vector: contracts `mode` against a dense vector,
/// producing an order-(N-1) sparse tensor. TTM with R = 1 plus the
/// mode removal.
[[nodiscard]] SparseTensor ttv(const SparseTensor& x,
                               std::span<const value_t> v, int mode,
                               int num_threads = 0);

}  // namespace sparta
