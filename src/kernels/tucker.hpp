// Tucker decomposition by higher-order orthogonal iteration (HOOI),
// built on the TTM kernel — the second classic sparse-tensor analytics
// workload the paper cites ([9, 64]).
//
//   X ≈ G ×_1 U_1 ×_2 U_2 ... ×_N U_N
//
// with orthonormal factors U_n ∈ R^{I_n × R_n} and a small dense core
// G ∈ R^{R_1 × ... × R_N}.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/dense_matrix.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/sparse_tensor.hpp"

namespace sparta {

struct TuckerOptions {
  std::vector<std::size_t> core_dims;  ///< one R_n per mode
  int max_iterations = 25;
  double tolerance = 1e-5;
  std::uint64_t seed = 1;
  int num_threads = 0;
};

struct TuckerModel {
  std::vector<DenseMatrix> factors;  ///< orthonormal I_n × R_n
  DenseTensor core;                  ///< R_1 × ... × R_N
  double fit = 0.0;                  ///< ‖core‖/‖X‖ (factors orthonormal)
  int iterations = 0;
};

/// Decomposes X by HOOI. core_dims must have one entry per mode, each
/// in [1, dim(n)].
[[nodiscard]] TuckerModel tucker_hooi(const SparseTensor& x,
                                      const TuckerOptions& opts);

}  // namespace sparta
