#include "kernels/tucker.hpp"

#include <cmath>

#include "kernels/ttm.hpp"
#include "tensor/ops.hpp"

namespace sparta {

namespace {

// Y = X ×_{m ∈ modes} U_mᵀ, i.e. every listed mode contracted down to
// its factor's rank. Each TTM shrinks the tensor, so the expand-to-COO
// between steps stays small.
SparseTensor ttm_chain(const SparseTensor& x,
                       const std::vector<DenseMatrix>& factors,
                       const std::vector<bool>& contract_mode,
                       int num_threads) {
  SparseTensor cur = x;
  for (std::size_t m = 0; m < contract_mode.size(); ++m) {
    if (!contract_mode[m]) continue;
    cur = ttm(cur, factors[m], static_cast<int>(m), num_threads)
              .to_sparse(0.0);
  }
  return cur;
}

// Mode-n Gram of a (small, mostly dense) sparse tensor:
// W(i, j) = Σ_rest Y(i, rest) Y(j, rest), I_n × I_n.
DenseMatrix mode_gram(const SparseTensor& y, int mode) {
  // Group non-zeros by their "rest" coordinates via sort with `mode`
  // last; each run contributes the outer product of its mode-n slice.
  SparseTensor ys = y;
  Modes order;
  for (int m = 0; m < y.order(); ++m) {
    if (m != mode) order.push_back(m);
  }
  order.push_back(mode);
  ys.permute_modes(order);
  ys.sort();

  const auto sparse_order = static_cast<std::size_t>(y.order()) - 1;
  DenseMatrix w(y.dim(mode), y.dim(mode));
  std::size_t run_begin = 0;
  auto flush = [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const index_t ii = ys.index(i, static_cast<int>(sparse_order));
      const value_t vi = ys.value(i);
      for (std::size_t j = b; j < e; ++j) {
        w.at(ii, ys.index(j, static_cast<int>(sparse_order))) +=
            vi * ys.value(j);
      }
    }
  };
  for (std::size_t i = 1; i < ys.nnz(); ++i) {
    for (std::size_t m = 0; m < sparse_order; ++m) {
      if (ys.index(i - 1, static_cast<int>(m)) !=
          ys.index(i, static_cast<int>(m))) {
        flush(run_begin, i);
        run_begin = i;
        break;
      }
    }
  }
  if (ys.nnz() > 0) flush(run_begin, ys.nnz());
  return w;
}

}  // namespace

TuckerModel tucker_hooi(const SparseTensor& x, const TuckerOptions& opts) {
  const auto order = static_cast<std::size_t>(x.order());
  SPARTA_CHECK(opts.core_dims.size() == order,
               "tucker: one core dimension per mode required");
  for (std::size_t m = 0; m < order; ++m) {
    SPARTA_CHECK(opts.core_dims[m] >= 1 &&
                     opts.core_dims[m] <= x.dim(static_cast<int>(m)),
                 "tucker: core dims must be in [1, dim(n)]");
  }
  SPARTA_CHECK(!x.empty(), "tucker: cannot decompose an empty tensor");

  TuckerModel model{.factors = {}, .core = DenseTensor({1}), .fit = 0.0};
  for (std::size_t m = 0; m < order; ++m) {
    model.factors.push_back(DenseMatrix::random_orthonormal(
        x.dim(static_cast<int>(m)), opts.core_dims[m], opts.seed + m));
  }

  const double norm_x = norm_fro(x);
  double previous_fit = 0.0;

  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    for (std::size_t n = 0; n < order; ++n) {
      // Y = X contracted over every mode but n; U_n = top-R_n
      // eigenvectors of Y's mode-n Gram.
      std::vector<bool> contract(order, true);
      contract[n] = false;
      const SparseTensor y =
          ttm_chain(x, model.factors, contract, opts.num_threads);
      const SymmetricEigen eig =
          symmetric_eigen(mode_gram(y, static_cast<int>(n)));
      DenseMatrix u(x.dim(static_cast<int>(n)), opts.core_dims[n]);
      for (std::size_t i = 0; i < u.rows(); ++i) {
        for (std::size_t r = 0; r < u.cols(); ++r) {
          u.at(i, r) = eig.vectors.at(i, r);
        }
      }
      model.factors[n] = std::move(u);
    }

    // Core = X ×_all U_nᵀ; with orthonormal factors, fit follows from
    // ‖core‖.
    const std::vector<bool> all(order, true);
    const SparseTensor core_sp =
        ttm_chain(x, model.factors, all, opts.num_threads);
    const double norm_core = norm_fro(core_sp);
    model.fit =
        norm_x > 0
            ? 1.0 - std::sqrt(std::max(
                        0.0, norm_x * norm_x - norm_core * norm_core)) /
                        norm_x
            : 1.0;
    model.iterations = iter;
    if (iter > 1 && std::abs(model.fit - previous_fit) < opts.tolerance) {
      model.core = DenseTensor::from_sparse(core_sp);
      break;
    }
    previous_fit = model.fit;
    if (iter == opts.max_iterations) {
      model.core = DenseTensor::from_sparse(core_sp);
    }
  }
  return model;
}

}  // namespace sparta
