// CP-ALS: canonical polyadic tensor decomposition by alternating least
// squares, built on the MTTKRP kernel — the application layer that
// motivates much of the sparse-tensor literature the paper cites
// ([27, 35, 37, 64, 65]).
//
//   X ≈ Σ_r λ_r · a_r^(1) ∘ a_r^(2) ∘ ... ∘ a_r^(N)
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/dense_matrix.hpp"
#include "tensor/sparse_tensor.hpp"

namespace sparta {

struct CpAlsOptions {
  std::size_t rank = 8;
  int max_iterations = 50;
  double tolerance = 1e-5;  ///< stop when fit improves less than this
  std::uint64_t seed = 1;   ///< factor initialization
  int num_threads = 0;
};

struct CpModel {
  std::vector<DenseMatrix> factors;  ///< one dim(m) × R matrix per mode
  std::vector<value_t> lambda;       ///< R column weights
  double fit = 0.0;                  ///< 1 − ‖X − model‖/‖X‖
  int iterations = 0;

  /// Reconstructs the dense model entry at `coords`.
  [[nodiscard]] value_t at(std::span<const index_t> coords) const;

  /// Expands the model to a sparse tensor over X's shape (tests only;
  /// dense in disguise).
  [[nodiscard]] SparseTensor reconstruct(
      const std::vector<index_t>& dims, double cutoff = 0.0) const;
};

/// Decomposes X. Throws on rank 0 or empty X.
[[nodiscard]] CpModel cp_als(const SparseTensor& x,
                             const CpAlsOptions& opts = {});

}  // namespace sparta
