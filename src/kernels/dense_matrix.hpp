// Minimal dense matrix for the sparse-times-dense kernels (TTM,
// MTTKRP, CP-ALS factors). Row-major.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/types.hpp"

namespace sparta {

class DenseMatrix {
 public:
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] value_t& at(std::size_t r, std::size_t c) {
    SPARTA_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] value_t at(std::size_t r, std::size_t c) const {
    SPARTA_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<value_t> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const value_t> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<const value_t> data() const { return data_; }
  [[nodiscard]] std::span<value_t> data() { return data_; }

  void fill(value_t v) { std::fill(data_.begin(), data_.end(), v); }

  /// Uniform random entries in [lo, hi).
  [[nodiscard]] static DenseMatrix random(std::size_t rows, std::size_t cols,
                                          std::uint64_t seed, double lo = 0.0,
                                          double hi = 1.0) {
    DenseMatrix m(rows, cols);
    Rng rng(seed);
    for (value_t& v : m.data_) v = rng.uniform_double(lo, hi);
    return m;
  }

  /// Gram matrix AᵀA (cols × cols).
  [[nodiscard]] DenseMatrix gram() const;

  /// Solves X · A = B for X where A (this) is symmetric positive
  /// definite n×n and B is m×n; returns m×n. Cholesky-based; used by
  /// CP-ALS's normal equations. Throws if A is not SPD.
  [[nodiscard]] DenseMatrix solve_spd_right(const DenseMatrix& b) const;

  /// C = this · other (rows × other.cols).
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;

  /// Transpose.
  [[nodiscard]] DenseMatrix transposed() const;

  /// Random matrix with orthonormal columns (Gram-Schmidt on random
  /// data); requires rows >= cols. Used to initialize Tucker factors.
  [[nodiscard]] static DenseMatrix random_orthonormal(std::size_t rows,
                                                      std::size_t cols,
                                                      std::uint64_t seed);

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<value_t> data_;
};

/// Element-wise (Hadamard) product of equal-shape matrices.
[[nodiscard]] DenseMatrix hadamard(const DenseMatrix& a,
                                   const DenseMatrix& b);

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotation.
/// Returns eigenvalues descending; `vectors` columns are the matching
/// orthonormal eigenvectors. For the small/medium matrices of Tucker
/// factor updates.
struct SymmetricEigen {
  std::vector<value_t> values;  ///< descending
  DenseMatrix vectors;          ///< n × n, column i ↔ values[i]
};
[[nodiscard]] SymmetricEigen symmetric_eigen(const DenseMatrix& a,
                                             int max_sweeps = 30);

}  // namespace sparta
