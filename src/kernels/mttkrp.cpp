#include "kernels/mttkrp.hpp"

#include <memory>

#include "common/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sparta {

DenseMatrix mttkrp(const SparseTensor& x,
                   const std::vector<DenseMatrix>& factors, int mode,
                   int num_threads) {
  SPARTA_CHECK(mode >= 0 && mode < x.order(), "mttkrp: mode out of range");
  SPARTA_CHECK(factors.size() == static_cast<std::size_t>(x.order()),
               "mttkrp: one factor matrix per mode required");
  const std::size_t rank = factors[0].cols();
  for (int m = 0; m < x.order(); ++m) {
    const auto& f = factors[static_cast<std::size_t>(m)];
    SPARTA_CHECK(f.cols() == rank, "mttkrp: factor ranks must agree");
    SPARTA_CHECK(f.rows() == x.dim(m),
                 "mttkrp: factor rows must match the mode size");
  }
  const int nthreads = num_threads > 0 ? num_threads : max_threads();

  obs::Span sp_mttkrp("mttkrp");
  SPARTA_COUNTER_ADD("mttkrp.calls", 1);
  SPARTA_COUNTER_ADD("mttkrp.nnz_processed", x.nnz());

  const std::size_t out_rows = x.dim(mode);
  DenseMatrix out(out_rows, rank);

  // Per-iteration guards only: every thread must still encounter the
  // `omp for` and `omp critical` constructs even after a failure, or the
  // team deadlocks at the worksharing barrier.
  ExceptionCollector ec;
#pragma omp parallel num_threads(nthreads)
  {
    std::unique_ptr<DenseMatrix> local;
    std::vector<index_t> c;
    std::vector<value_t> row;
    ec.run([&] {
      local = std::make_unique<DenseMatrix>(out_rows, rank);
      c.resize(static_cast<std::size_t>(x.order()));
      row.resize(rank);
    });
    const auto n = static_cast<std::ptrdiff_t>(x.nnz());
#pragma omp for schedule(static)
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      ec.run([&, i] {
        x.coords(static_cast<std::size_t>(i), c);
        const value_t v = x.value(static_cast<std::size_t>(i));
        for (std::size_t r = 0; r < rank; ++r) row[r] = v;
        for (int m = 0; m < x.order(); ++m) {
          if (m == mode) continue;
          const auto frow = factors[static_cast<std::size_t>(m)].row(
              c[static_cast<std::size_t>(m)]);
          for (std::size_t r = 0; r < rank; ++r) row[r] *= frow[r];
        }
        auto orow = local->row(c[static_cast<std::size_t>(mode)]);
        for (std::size_t r = 0; r < rank; ++r) orow[r] += row[r];
      });
    }
#pragma omp critical
    {
      if (local && !ec.failed()) {
        for (std::size_t k = 0; k < out.data().size(); ++k) {
          out.data()[k] += local->data()[k];
        }
      }
    }
  }
  ec.rethrow();
  return out;
}

}  // namespace sparta
