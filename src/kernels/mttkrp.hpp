// Matricized tensor times Khatri-Rao product (MTTKRP) — the workhorse
// of sparse CP decomposition (SPLATT [65], HiCOO [37]), included here
// as the canonical "sparse tensor times dense matrices" kernel the
// paper's introduction positions SpTC against.
//
//   M(i_n, r) = Σ_{nz (i_1..i_N)} x · Π_{m ≠ n} A_m(i_m, r)
#pragma once

#include <vector>

#include "kernels/dense_matrix.hpp"
#include "tensor/sparse_tensor.hpp"

namespace sparta {

/// Computes the mode-`mode` MTTKRP. `factors[m]` must be a
/// dim(m) × R matrix for every m (factors[mode] is ignored but must
/// still be present and well-shaped). Parallelized over non-zeros with
/// per-thread output buffers.
[[nodiscard]] DenseMatrix mttkrp(const SparseTensor& x,
                                 const std::vector<DenseMatrix>& factors,
                                 int mode, int num_threads = 0);

}  // namespace sparta
