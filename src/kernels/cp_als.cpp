#include "kernels/cp_als.hpp"

#include <cmath>

#include "kernels/mttkrp.hpp"
#include "tensor/linearize.hpp"
#include "tensor/ops.hpp"

namespace sparta {

value_t CpModel::at(std::span<const index_t> coords) const {
  const std::size_t rank = lambda.size();
  value_t total = 0;
  for (std::size_t r = 0; r < rank; ++r) {
    value_t v = lambda[r];
    for (std::size_t m = 0; m < factors.size(); ++m) {
      v *= factors[m].at(coords[m], r);
    }
    total += v;
  }
  return total;
}

SparseTensor CpModel::reconstruct(const std::vector<index_t>& dims,
                                  double cutoff) const {
  SparseTensor out(dims);
  const LinearIndexer lin(dims);
  std::vector<index_t> c(dims.size());
  for (lnkey_t k = 0; k < lin.size(); ++k) {
    lin.delinearize(k, c);
    const value_t v = at(c);
    if (std::abs(v) > cutoff) out.append_unchecked(c, v);
  }
  return out;
}

CpModel cp_als(const SparseTensor& x, const CpAlsOptions& opts) {
  SPARTA_CHECK(opts.rank > 0, "cp_als: rank must be positive");
  SPARTA_CHECK(!x.empty(), "cp_als: cannot decompose an empty tensor");
  const auto order = static_cast<std::size_t>(x.order());
  const std::size_t rank = opts.rank;

  CpModel model;
  model.lambda.assign(rank, 1.0);
  for (std::size_t m = 0; m < order; ++m) {
    model.factors.push_back(DenseMatrix::random(
        x.dim(static_cast<int>(m)), rank, opts.seed + m, 0.1, 1.0));
  }

  const double norm_x = norm_fro(x);
  double previous_fit = 0.0;

  for (int iter = 1; iter <= opts.max_iterations; ++iter) {
    DenseMatrix last_m(1, 1);  // MTTKRP of the final mode, for the fit
    for (std::size_t n = 0; n < order; ++n) {
      DenseMatrix m = mttkrp(x, model.factors, static_cast<int>(n),
                             opts.num_threads);

      // V = ∘_{k≠n} (A_kᵀ A_k), R×R SPD.
      DenseMatrix v(rank, rank);
      bool first = true;
      for (std::size_t k = 0; k < order; ++k) {
        if (k == n) continue;
        const DenseMatrix g = model.factors[k].gram();
        v = first ? g : hadamard(v, g);
        first = false;
      }

      // A_n = M V⁻¹ (regularize the diagonal a touch for robustness).
      for (std::size_t r = 0; r < rank; ++r) v.at(r, r) += 1e-12;
      DenseMatrix a = v.solve_spd_right(m);

      // Column normalization into lambda.
      for (std::size_t r = 0; r < rank; ++r) {
        double s = 0;
        for (std::size_t i = 0; i < a.rows(); ++i) {
          s += static_cast<double>(a.at(i, r)) * a.at(i, r);
        }
        double norm = std::sqrt(s);
        if (norm < 1e-30) norm = 1.0;  // dead component: leave it be
        model.lambda[r] = norm;
        for (std::size_t i = 0; i < a.rows(); ++i) a.at(i, r) /= norm;
      }
      model.factors[n] = std::move(a);
      if (n + 1 == order) last_m = std::move(m);
    }

    // Fit: ‖X − model‖² = ‖X‖² + ‖model‖² − 2⟨X, model⟩, with
    // ‖model‖² = λᵀ (∘_m A_mᵀA_m) λ and ⟨X, model⟩ recovered from the
    // final mode's MTTKRP.
    DenseMatrix gamma(rank, rank);
    {
      bool first = true;
      for (std::size_t m = 0; m < order; ++m) {
        const DenseMatrix g = model.factors[m].gram();
        gamma = first ? g : hadamard(gamma, g);
        first = false;
      }
    }
    double norm_model_sq = 0;
    for (std::size_t r = 0; r < rank; ++r) {
      for (std::size_t s = 0; s < rank; ++s) {
        norm_model_sq += model.lambda[r] * model.lambda[s] * gamma.at(r, s);
      }
    }
    double inner = 0;
    const DenseMatrix& a_last = model.factors[order - 1];
    for (std::size_t i = 0; i < a_last.rows(); ++i) {
      for (std::size_t r = 0; r < rank; ++r) {
        inner += last_m.at(i, r) * a_last.at(i, r) * model.lambda[r];
      }
    }
    const double residual_sq =
        std::max(0.0, norm_x * norm_x + norm_model_sq - 2.0 * inner);
    model.fit = norm_x > 0 ? 1.0 - std::sqrt(residual_sq) / norm_x : 1.0;
    model.iterations = iter;

    if (iter > 1 && std::abs(model.fit - previous_fit) < opts.tolerance) {
      break;
    }
    previous_fit = model.fit;
  }
  return model;
}

}  // namespace sparta
