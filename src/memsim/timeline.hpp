// Bandwidth timeline reconstruction for the Fig. 8 reproduction.
//
// SimResult carries per-stage byte counts and durations; this expands
// them into an evenly-sampled time series per tier, the form the
// paper's figure plots.
#pragma once

#include <vector>

#include "memsim/cost_model.hpp"

namespace sparta {

struct BandwidthSample {
  double time_seconds;  ///< sample midpoint from run start
  double dram_gbs;
  double pmm_gbs;
  Stage stage;          ///< which pipeline stage this sample falls in
};

/// Expands `sim` into `samples_per_stage` evenly spaced samples per
/// stage (stages with zero duration are skipped). Bandwidth within a
/// stage is modeled as constant — the resolution of the cost model.
[[nodiscard]] std::vector<BandwidthSample> bandwidth_timeline(
    const SimResult& sim, int samples_per_stage = 8);

}  // namespace sparta
