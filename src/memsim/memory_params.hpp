// Tier performance parameters for the heterogeneous-memory simulator.
//
// Defaults are the paper's §2.3 measurements of DRAM and Intel Optane DC
// PMM on their Cascade-Lake testbed.
#pragma once

#include <cstdint>

#include "memsim/data_object.hpp"

namespace sparta {

/// Latency (ns) and bandwidth (GB/s) of one memory tier.
struct TierParams {
  double read_latency_seq_ns;
  double read_latency_rand_ns;
  double write_latency_seq_ns;
  double write_latency_rand_ns;
  double read_bandwidth_gbs;
  double write_bandwidth_gbs;
};

struct MemoryParams {
  TierParams dram{79.0, 87.0, 86.0, 87.0, 104.0, 80.0};
  TierParams pmm{174.0, 304.0, 104.0, 127.0, 39.0, 13.0};

  /// Simulated DRAM capacity available to SpTC data objects. The paper's
  /// HM box has 96 GB DRAM vs. workloads up to 768 GB; scaled runs set
  /// this to a fraction of the workload footprint instead.
  std::uint64_t dram_capacity_bytes = 16ull << 30;

  /// Fraction of a random access's latency that is NOT hidden by
  /// memory-level parallelism / out-of-order execution. 1.0 would charge
  /// the full latency per access; real cores overlap most of it.
  double rand_latency_exposure = 0.15;

  /// Effective per-thread cache available to an object's random
  /// accesses: an object smaller than this stays cache-resident, so its
  /// placement is irrelevant (this is why the tiny thread-local HtA
  /// barely suffers on PMM while the large HtY does).
  std::uint64_t cache_filter_bytes = 1ull << 20;

  [[nodiscard]] const TierParams& tier(Tier t) const {
    return t == Tier::kDram ? dram : pmm;
  }
};

}  // namespace sparta
