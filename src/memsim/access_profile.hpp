// Memory-access accounting recorded by an instrumented contraction run.
//
// The heterogeneous-memory experiments are reproduced with a simulator
// (see DESIGN.md §2): the contraction kernel tallies, per stage and per
// data object, how many bytes it touches sequentially vs. randomly for
// reads vs. writes, plus random access counts for latency modeling. The
// cost model in cost_model.hpp turns these tallies plus a placement into
// estimated stage times on DRAM+PMM.
#pragma once

#include <array>
#include <cstdint>

#include "common/timer.hpp"
#include "memsim/data_object.hpp"

namespace sparta {

/// Byte/access tallies for one (stage, data object) cell of the paper's
/// Table 2.
struct AccessStats {
  std::uint64_t bytes_read_seq = 0;
  std::uint64_t bytes_read_rand = 0;
  std::uint64_t bytes_written_seq = 0;
  std::uint64_t bytes_written_rand = 0;
  std::uint64_t rand_reads = 0;   ///< individual random read accesses
  std::uint64_t rand_writes = 0;  ///< individual random write accesses

  [[nodiscard]] std::uint64_t total_bytes() const {
    return bytes_read_seq + bytes_read_rand + bytes_written_seq +
           bytes_written_rand;
  }
  [[nodiscard]] bool any() const { return total_bytes() != 0; }
  [[nodiscard]] bool reads() const {
    return bytes_read_seq + bytes_read_rand != 0;
  }
  [[nodiscard]] bool writes() const {
    return bytes_written_seq + bytes_written_rand != 0;
  }
  [[nodiscard]] bool random() const {
    return bytes_read_rand + bytes_written_rand != 0;
  }

  AccessStats& operator+=(const AccessStats& o) {
    bytes_read_seq += o.bytes_read_seq;
    bytes_read_rand += o.bytes_read_rand;
    bytes_written_seq += o.bytes_written_seq;
    bytes_written_rand += o.bytes_written_rand;
    rand_reads += o.rand_reads;
    rand_writes += o.rand_writes;
    return *this;
  }
};

/// Full profile of one contraction run: 5 stages × 6 objects of access
/// tallies, per-object peak footprints, and the measured (all-DRAM) wall
/// time of each stage.
struct AccessProfile {
  std::array<std::array<AccessStats, kNumDataObjects>, kNumStages> stats{};
  std::array<std::uint64_t, kNumDataObjects> footprint_bytes{};
  StageTimes measured;  ///< wall time per stage of the instrumented run

  [[nodiscard]] AccessStats& at(Stage s, DataObject o) {
    return stats[static_cast<int>(s)][static_cast<int>(o)];
  }
  [[nodiscard]] const AccessStats& at(Stage s, DataObject o) const {
    return stats[static_cast<int>(s)][static_cast<int>(o)];
  }

  [[nodiscard]] std::uint64_t footprint(DataObject o) const {
    return footprint_bytes[static_cast<int>(o)];
  }
  void set_footprint(DataObject o, std::uint64_t bytes) {
    footprint_bytes[static_cast<int>(o)] = bytes;
  }

  /// Sum of all object footprints — the Fig. 9 "peak memory" quantity.
  [[nodiscard]] std::uint64_t total_footprint() const {
    std::uint64_t t = 0;
    for (auto b : footprint_bytes) t += b;
    return t;
  }
};

}  // namespace sparta
