// The six major SpTC data objects whose placement the paper studies
// (§4.1, Table 2), and the two memory tiers.
#pragma once

#include <array>
#include <string_view>

namespace sparta {

enum class DataObject : int {
  kX = 0,       ///< first input tensor
  kY = 1,       ///< second input tensor (COO form)
  kHtY = 2,     ///< hash-table representation of Y
  kHtA = 3,     ///< thread-local hash accumulators
  kZlocal = 4,  ///< thread-local output staging buffers
  kZ = 5,       ///< output tensor
};

inline constexpr int kNumDataObjects = 6;

inline constexpr std::array<DataObject, kNumDataObjects> kAllDataObjects = {
    DataObject::kX,   DataObject::kY,      DataObject::kHtY,
    DataObject::kHtA, DataObject::kZlocal, DataObject::kZ};

[[nodiscard]] constexpr std::string_view data_object_name(DataObject o) {
  switch (o) {
    case DataObject::kX:
      return "X";
    case DataObject::kY:
      return "Y";
    case DataObject::kHtY:
      return "HtY";
    case DataObject::kHtA:
      return "HtA";
    case DataObject::kZlocal:
      return "Z_local";
    case DataObject::kZ:
      return "Z";
  }
  return "?";
}

enum class Tier : int {
  kDram = 0,
  kPmm = 1,
};

[[nodiscard]] constexpr std::string_view tier_name(Tier t) {
  return t == Tier::kDram ? "DRAM" : "PMM";
}

}  // namespace sparta
