// Tier-tagged allocation tracking — the AppDirect programming model
// (explicit DRAM/PMM placement à la memkind/libvmem) without the
// hardware: every container bound to a TierAllocator reports its
// allocations to an AllocationRegistry, which tracks live and peak
// bytes per tier and per data object. The heterogeneous-memory example
// uses it to demonstrate how a Sparta placement plan would be executed
// on a real PMM box.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <new>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "memsim/data_object.hpp"
#include "obs/metrics.hpp"

namespace sparta {

class AllocationRegistry {
 public:
  /// Optional hard cap on total live bytes across both tiers. A charge
  /// that would exceed it is rolled back and throws BudgetExceeded at
  /// the allocation site. 0 (the default) = unlimited.
  void set_capacity(std::size_t bytes) {
    capacity_.store(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  void on_allocate(Tier tier, DataObject tag, std::size_t bytes) {
    SPARTA_FAILPOINT("budget.charge");
    auto& cell = cells_[idx(tier, tag)];
    const std::size_t live =
        cell.live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    const std::size_t cap = capacity_.load(std::memory_order_relaxed);
    if (cap != 0) {
      const std::size_t total =
          live_bytes(Tier::kDram) + live_bytes(Tier::kPmm);
      if (total > cap) {
        cell.live.fetch_sub(bytes, std::memory_order_relaxed);
        throw BudgetExceeded(
            "memory budget exceeded: charging " + std::to_string(bytes) +
                " bytes to " + std::string(data_object_name(tag)) +
                " would put " + std::to_string(total) +
                " live bytes over the " + std::to_string(cap) +
                "-byte budget",
            bytes, cap, total - bytes);
      }
    }
    // Racy max update is fine: peak is advisory accounting.
    std::size_t peak = cell.peak.load(std::memory_order_relaxed);
    while (live > peak &&
           !cell.peak.compare_exchange_weak(peak, live,
                                            std::memory_order_relaxed)) {
    }
    if (obs::metrics_enabled()) {
      SPARTA_COUNTER_ADD("alloc.charges", 1);
      hwm_gauge(tier, tag).max_unchecked(live);
    }
  }

  void on_deallocate(Tier tier, DataObject tag, std::size_t bytes) {
    cells_[idx(tier, tag)].live.fetch_sub(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t live_bytes(Tier tier, DataObject tag) const {
    return cells_[idx(tier, tag)].live.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t peak_bytes(Tier tier, DataObject tag) const {
    return cells_[idx(tier, tag)].peak.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t live_bytes(Tier tier) const {
    std::size_t total = 0;
    for (DataObject o : kAllDataObjects) total += live_bytes(tier, o);
    return total;
  }
  [[nodiscard]] std::size_t peak_bytes(Tier tier) const {
    std::size_t total = 0;
    for (DataObject o : kAllDataObjects) total += peak_bytes(tier, o);
    return total;
  }

 private:
  static std::size_t idx(Tier tier, DataObject tag) {
    return static_cast<std::size_t>(tier) * kNumDataObjects +
           static_cast<std::size_t>(tag);
  }

  // Process-wide high-water gauges "alloc.hwm.<tier>.<object>", one per
  // (tier, tag) account, resolved lazily. The slot store is an atomic
  // pointer (not a function-local static per call site) so concurrent
  // first lookups race only on publishing the same registry-owned
  // pointer — benign under TSan.
  static obs::Gauge& hwm_gauge(Tier tier, DataObject tag) {
    static std::array<std::atomic<obs::Gauge*>, 2 * kNumDataObjects> slots{};
    auto& slot = slots[idx(tier, tag)];
    obs::Gauge* g = slot.load(std::memory_order_acquire);
    if (g == nullptr) {
      std::string name = "alloc.hwm." + std::string(tier_name(tier)) + "." +
                         std::string(data_object_name(tag));
      g = &obs::MetricsRegistry::global().gauge(name);
      slot.store(g, std::memory_order_release);
    }
    return *g;
  }

  struct Cell {
    std::atomic<std::size_t> live{0};
    std::atomic<std::size_t> peak{0};
  };
  std::array<Cell, 2 * kNumDataObjects> cells_{};
  std::atomic<std::size_t> capacity_{0};
};

/// RAII charge against one (registry, tier, tag) account. `update(n)`
/// charges growth (which may throw BudgetExceeded) and refunds
/// shrinkage; the destructor refunds whatever is still charged, so a
/// throwing contraction stage can never leak tracked bytes. Movable,
/// not copyable; a default-constructed charge is inert.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  ScopedCharge(AllocationRegistry* registry, Tier tier, DataObject tag)
      : registry_(registry), tier_(tier), tag_(tag) {}

  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;
  ScopedCharge(ScopedCharge&& o) noexcept
      : registry_(std::exchange(o.registry_, nullptr)),
        tier_(o.tier_),
        tag_(o.tag_),
        charged_(std::exchange(o.charged_, 0)) {}
  ScopedCharge& operator=(ScopedCharge&& o) noexcept {
    if (this != &o) {
      release();
      registry_ = std::exchange(o.registry_, nullptr);
      tier_ = o.tier_;
      tag_ = o.tag_;
      charged_ = std::exchange(o.charged_, 0);
    }
    return *this;
  }
  ~ScopedCharge() { release(); }

  /// Adjusts the charge to `bytes` total. Growth goes through
  /// on_allocate and may throw BudgetExceeded (the charge then stays at
  /// its previous value); shrinkage is refunded immediately.
  void update(std::size_t bytes) {
    if (!registry_) return;
    if (bytes > charged_) {
      registry_->on_allocate(tier_, tag_, bytes - charged_);
      charged_ = bytes;
    } else if (bytes < charged_) {
      registry_->on_deallocate(tier_, tag_, charged_ - bytes);
      charged_ = bytes;
    }
  }

  void release() noexcept {
    if (registry_ && charged_ != 0) {
      registry_->on_deallocate(tier_, tag_, charged_);
    }
    charged_ = 0;
  }

  [[nodiscard]] std::size_t charged() const { return charged_; }

 private:
  AllocationRegistry* registry_ = nullptr;
  Tier tier_ = Tier::kDram;
  DataObject tag_ = DataObject::kX;
  std::size_t charged_ = 0;
};

/// std-compatible allocator charging a (registry, tier, tag) account.
/// Rebind-safe; equality compares the account, so containers with the
/// same account can exchange memory.
template <typename T>
class TierAllocator {
 public:
  using value_type = T;

  TierAllocator(AllocationRegistry* registry, Tier tier, DataObject tag)
      : registry_(registry), tier_(tier), tag_(tag) {}

  template <typename U>
  // NOLINTNEXTLINE(google-explicit-constructor)
  TierAllocator(const TierAllocator<U>& o)
      : registry_(o.registry_), tier_(o.tier_), tag_(o.tag_) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (registry_) registry_->on_allocate(tier_, tag_, bytes);
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (registry_) registry_->on_deallocate(tier_, tag_, n * sizeof(T));
    ::operator delete(p);
  }

  [[nodiscard]] Tier tier() const { return tier_; }
  [[nodiscard]] DataObject tag() const { return tag_; }

  template <typename U>
  bool operator==(const TierAllocator<U>& o) const {
    return registry_ == o.registry_ && tier_ == o.tier_ && tag_ == o.tag_;
  }

 private:
  template <typename U>
  friend class TierAllocator;

  AllocationRegistry* registry_;
  Tier tier_;
  DataObject tag_;
};

}  // namespace sparta
