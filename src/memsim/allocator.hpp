// Tier-tagged allocation tracking — the AppDirect programming model
// (explicit DRAM/PMM placement à la memkind/libvmem) without the
// hardware: every container bound to a TierAllocator reports its
// allocations to an AllocationRegistry, which tracks live and peak
// bytes per tier and per data object. The heterogeneous-memory example
// uses it to demonstrate how a Sparta placement plan would be executed
// on a real PMM box.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <new>

#include "memsim/data_object.hpp"

namespace sparta {

class AllocationRegistry {
 public:
  void on_allocate(Tier tier, DataObject tag, std::size_t bytes) {
    auto& cell = cells_[idx(tier, tag)];
    const std::size_t live =
        cell.live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Racy max update is fine: peak is advisory accounting.
    std::size_t peak = cell.peak.load(std::memory_order_relaxed);
    while (live > peak &&
           !cell.peak.compare_exchange_weak(peak, live,
                                            std::memory_order_relaxed)) {
    }
  }

  void on_deallocate(Tier tier, DataObject tag, std::size_t bytes) {
    cells_[idx(tier, tag)].live.fetch_sub(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t live_bytes(Tier tier, DataObject tag) const {
    return cells_[idx(tier, tag)].live.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t peak_bytes(Tier tier, DataObject tag) const {
    return cells_[idx(tier, tag)].peak.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t live_bytes(Tier tier) const {
    std::size_t total = 0;
    for (DataObject o : kAllDataObjects) total += live_bytes(tier, o);
    return total;
  }
  [[nodiscard]] std::size_t peak_bytes(Tier tier) const {
    std::size_t total = 0;
    for (DataObject o : kAllDataObjects) total += peak_bytes(tier, o);
    return total;
  }

 private:
  static std::size_t idx(Tier tier, DataObject tag) {
    return static_cast<std::size_t>(tier) * kNumDataObjects +
           static_cast<std::size_t>(tag);
  }
  struct Cell {
    std::atomic<std::size_t> live{0};
    std::atomic<std::size_t> peak{0};
  };
  std::array<Cell, 2 * kNumDataObjects> cells_{};
};

/// std-compatible allocator charging a (registry, tier, tag) account.
/// Rebind-safe; equality compares the account, so containers with the
/// same account can exchange memory.
template <typename T>
class TierAllocator {
 public:
  using value_type = T;

  TierAllocator(AllocationRegistry* registry, Tier tier, DataObject tag)
      : registry_(registry), tier_(tier), tag_(tag) {}

  template <typename U>
  // NOLINTNEXTLINE(google-explicit-constructor)
  TierAllocator(const TierAllocator<U>& o)
      : registry_(o.registry_), tier_(o.tier_), tag_(o.tag_) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (registry_) registry_->on_allocate(tier_, tag_, bytes);
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (registry_) registry_->on_deallocate(tier_, tag_, n * sizeof(T));
    ::operator delete(p);
  }

  [[nodiscard]] Tier tier() const { return tier_; }
  [[nodiscard]] DataObject tag() const { return tag_; }

  template <typename U>
  bool operator==(const TierAllocator<U>& o) const {
    return registry_ == o.registry_ && tier_ == o.tier_ && tag_ == o.tag_;
  }

 private:
  template <typename U>
  friend class TierAllocator;

  AllocationRegistry* registry_;
  Tier tier_;
  DataObject tag_;
};

}  // namespace sparta
