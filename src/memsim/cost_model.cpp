#include "memsim/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace sparta {

namespace {

constexpr double kGb = 1e9;  // bandwidths are decimal GB/s

// Time (s) to move `bytes` at `gbs` GB/s.
double bw_time(std::uint64_t bytes, double gbs) {
  return static_cast<double>(bytes) / (gbs * kGb);
}

// Extra seconds caused by serving `stats` from PMM instead of DRAM for
// an object of `footprint` bytes. Random accesses are filtered by the
// cache model: an object that fits in cache_filter_bytes is resident
// after first touch, so its random accesses never reach memory and its
// placement is irrelevant (paper Observation 3 / the tiny HtA).
double pmm_penalty(const AccessStats& stats, const MemoryParams& p,
                   std::uint64_t footprint) {
  const TierParams& d = p.dram;
  const TierParams& m = p.pmm;
  const double miss =
      footprint == 0
          ? 1.0
          : std::min(1.0, static_cast<double>(footprint) /
                              static_cast<double>(p.cache_filter_bytes));
  double extra = 0.0;
  // Sequential traffic: bandwidth-bound (streams always touch memory).
  extra += bw_time(stats.bytes_read_seq, m.read_bandwidth_gbs) -
           bw_time(stats.bytes_read_seq, d.read_bandwidth_gbs);
  extra += bw_time(stats.bytes_written_seq, m.write_bandwidth_gbs) -
           bw_time(stats.bytes_written_seq, d.write_bandwidth_gbs);
  // Random traffic: latency-bound, discounted by memory-level parallelism
  // and the cache filter, plus the bandwidth component of the bytes.
  extra += static_cast<double>(stats.rand_reads) * miss *
           (m.read_latency_rand_ns - d.read_latency_rand_ns) * 1e-9 *
           p.rand_latency_exposure;
  extra += static_cast<double>(stats.rand_writes) * miss *
           (m.write_latency_rand_ns - d.write_latency_rand_ns) * 1e-9 *
           p.rand_latency_exposure;
  extra += miss * (bw_time(stats.bytes_read_rand, m.read_bandwidth_gbs) -
                   bw_time(stats.bytes_read_rand, d.read_bandwidth_gbs));
  extra +=
      miss * (bw_time(stats.bytes_written_rand, m.write_bandwidth_gbs) -
              bw_time(stats.bytes_written_rand, d.write_bandwidth_gbs));
  return std::max(0.0, extra);
}

}  // namespace

std::uint64_t Placement::dram_bytes(
    const std::array<std::uint64_t, kNumDataObjects>& footprints) const {
  double total = 0.0;
  for (int i = 0; i < kNumDataObjects; ++i) {
    total += dram_fraction[i] * static_cast<double>(footprints[i]);
  }
  return static_cast<std::uint64_t>(total);
}

double SimResult::bandwidth_gbs(Stage s, Tier t) const {
  const double secs = stage_seconds[s];
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(
             tier_bytes[static_cast<int>(s)][static_cast<int>(t)]) /
         (secs * kGb);
}

SimResult simulate_static(const AccessProfile& profile,
                          const MemoryParams& params,
                          const Placement& placement) {
  SimResult r;
  for (int s = 0; s < kNumStages; ++s) {
    const auto stage = static_cast<Stage>(s);
    double t = profile.measured[stage];
    for (DataObject o : kAllDataObjects) {
      const AccessStats& st = profile.at(stage, o);
      if (!st.any()) continue;
      const double pmm_share = 1.0 - placement.dram(o);
      t += pmm_share * pmm_penalty(st, params, profile.footprint(o));
      const std::uint64_t bytes = st.total_bytes();
      r.tier_bytes[s][static_cast<int>(Tier::kPmm)] +=
          static_cast<std::uint64_t>(pmm_share * static_cast<double>(bytes));
      r.tier_bytes[s][static_cast<int>(Tier::kDram)] +=
          static_cast<std::uint64_t>((1.0 - pmm_share) *
                                     static_cast<double>(bytes));
    }
    r.stage_seconds[stage] = t;
  }
  return r;
}

Placement sparta_placement(
    const std::array<std::uint64_t, kNumDataObjects>& footprints,
    const MemoryParams& params) {
  Placement p = Placement::all(Tier::kPmm);
  // X and Y stay on PMM (Observation 3: their sequential access patterns
  // make placement irrelevant). The rest fill DRAM by priority.
  static constexpr DataObject kPriority[] = {
      DataObject::kHtY, DataObject::kHtA, DataObject::kZlocal, DataObject::kZ};
  std::uint64_t remaining = params.dram_capacity_bytes;
  for (DataObject o : kPriority) {
    const std::uint64_t need = footprints[static_cast<int>(o)];
    if (need == 0) {
      p.set(o, 1.0);
      continue;
    }
    if (need <= remaining) {
      p.set(o, 1.0);
      remaining -= need;
    } else if (remaining > 0) {
      // "Placed into DRAM as much as possible" — partial placement.
      p.set(o, static_cast<double>(remaining) / static_cast<double>(need));
      remaining = 0;
    }
  }
  return p;
}

SimResult simulate_memory_mode(const AccessProfile& profile,
                               const MemoryParams& params) {
  SimResult r;
  // Memory mode's DRAM cache is direct-mapped (§2.3): conflict misses
  // cost roughly half the nominal capacity, and random key streams
  // collide in sets well before the cache is full.
  constexpr double kDirectMappedEfficiency = 0.5;
  constexpr double kRandomConflictHitFactor = 0.7;
  // A 64B-line fill moves more than the bytes the program asked for.
  constexpr double kLineFillAmplification = 2.0;
  const double cache =
      static_cast<double>(params.dram_capacity_bytes) *
      kDirectMappedEfficiency;

  // Fraction of each object resident in the DRAM cache. Everything
  // starts on PMM (compulsory misses on first touch).
  std::array<double, kNumDataObjects> resident{};

  for (int s = 0; s < kNumStages; ++s) {
    const auto stage = static_cast<Stage>(s);
    double t = profile.measured[stage];

    // Objects touched this stage contend for cache capacity in
    // proportion to footprint (approximating LRU steady state), so each
    // can keep at most `frac_cap` of itself resident.
    double touched_bytes = 0;
    for (DataObject o : kAllDataObjects) {
      if (profile.at(stage, o).any()) {
        touched_bytes += static_cast<double>(profile.footprint(o));
      }
    }
    const double frac_cap =
        touched_bytes > 0 ? std::min(1.0, cache / touched_bytes) : 1.0;

    for (DataObject o : kAllDataObjects) {
      const AccessStats& st = profile.at(stage, o);
      const auto oi = static_cast<int>(o);
      if (!st.any()) continue;
      const auto fp =
          static_cast<double>(std::max<std::uint64_t>(profile.footprint(o), 1));

      // Cold fill: the portion that will become resident but is not yet
      // must be fetched from PMM once (and written into DRAM).
      const double cold_frac = std::max(0.0, frac_cap - resident[oi]);
      const auto cold_bytes = static_cast<std::uint64_t>(cold_frac * fp);

      // Steady-state hit rate: the resident fraction. Sequential
      // streaming earns prefetch credit but a hardware cache never dodges
      // compulsory misses entirely, hence the 0.95 cap. Random streams
      // additionally suffer set conflicts in the direct-mapped cache.
      double hit = frac_cap;
      if (!st.random()) {
        hit = std::min(0.95, hit + 0.3);
      } else {
        hit *= kRandomConflictHitFactor;
      }
      const double miss = 1.0 - hit;

      AccessStats missed;
      missed.bytes_read_seq = static_cast<std::uint64_t>(
          static_cast<double>(st.bytes_read_seq) * miss);
      missed.bytes_read_rand = static_cast<std::uint64_t>(
          static_cast<double>(st.bytes_read_rand) * miss);
      missed.bytes_written_seq = static_cast<std::uint64_t>(
          static_cast<double>(st.bytes_written_seq) * miss);
      missed.bytes_written_rand = static_cast<std::uint64_t>(
          static_cast<double>(st.bytes_written_rand) * miss);
      missed.rand_reads = static_cast<std::uint64_t>(
          static_cast<double>(st.rand_reads) * miss);
      missed.rand_writes = static_cast<std::uint64_t>(
          static_cast<double>(st.rand_writes) * miss);
      t += pmm_penalty(missed, params, profile.footprint(o));

      // Fill traffic: cold bytes plus the missed access bytes move
      // PMM→DRAM; dirty evictions of missed writes flow back to PMM.
      // This is the "unnecessary migration" the paper observes as
      // inflated DRAM bandwidth under Memory mode (Fig. 8).
      const auto missed_rand_bytes = static_cast<std::uint64_t>(
          static_cast<double>(missed.bytes_read_rand +
                              missed.bytes_written_rand) *
          (kLineFillAmplification - 1.0));
      const std::uint64_t fill =
          cold_bytes + missed.total_bytes() + missed_rand_bytes;
      const std::uint64_t writeback =
          missed.bytes_written_seq + missed.bytes_written_rand;
      t += bw_time(fill, params.pmm.read_bandwidth_gbs);
      t += bw_time(fill, params.dram.write_bandwidth_gbs);
      t += bw_time(writeback, params.pmm.write_bandwidth_gbs);
      r.migrated_bytes += fill + writeback;

      r.tier_bytes[s][static_cast<int>(Tier::kPmm)] +=
          fill + writeback +
          static_cast<std::uint64_t>(static_cast<double>(st.total_bytes()) *
                                     miss);
      r.tier_bytes[s][static_cast<int>(Tier::kDram)] +=
          static_cast<std::uint64_t>(static_cast<double>(st.total_bytes()) *
                                     hit) +
          fill;

      resident[oi] = frac_cap;
    }

    // Untouched objects lose residency to the stage's working set when
    // the cache is overcommitted.
    if (touched_bytes > cache) {
      for (DataObject o : kAllDataObjects) {
        if (!profile.at(stage, o).any()) {
          resident[static_cast<int>(o)] = 0.0;
        }
      }
    }
    r.stage_seconds[stage] = t;
  }
  return r;
}

SimResult simulate_ial(const AccessProfile& profile,
                       const MemoryParams& params) {
  SimResult r;
  // Hotness tracking starts cold: everything on PMM.
  Placement current = Placement::all(Tier::kPmm);
  // Fraction of each stage executed before migrations decided from this
  // stage's observed hotness take effect.
  constexpr double kReaction = 0.4;

  for (int s = 0; s < kNumStages; ++s) {
    const auto stage = static_cast<Stage>(s);

    // Hotness-driven target placement for this stage: pages of the
    // objects with the most traffic migrate to DRAM, byte-count order —
    // the policy sees bytes, not patterns, so sequential-scan objects
    // (X, Y) look just as hot as the latency-critical HtY.
    std::array<std::pair<std::uint64_t, DataObject>, kNumDataObjects> hot{};
    for (int i = 0; i < kNumDataObjects; ++i) {
      const auto o = static_cast<DataObject>(i);
      hot[static_cast<std::size_t>(i)] = {profile.at(stage, o).total_bytes(),
                                          o};
    }
    std::sort(hot.begin(), hot.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    Placement target = Placement::all(Tier::kPmm);
    std::uint64_t remaining = params.dram_capacity_bytes;
    for (const auto& [bytes, o] : hot) {
      if (bytes == 0) continue;
      const std::uint64_t need = profile.footprint(o);
      if (need == 0) {
        target.set(o, 1.0);
      } else if (need <= remaining) {
        target.set(o, 1.0);
        remaining -= need;
      } else if (remaining > 0) {
        target.set(o,
                   static_cast<double>(remaining) / static_cast<double>(need));
        remaining = 0;
      }
    }

    // Migration cost: bytes whose residency changes move at PMM speed,
    // plus kernel overhead per 4 KB page (fault handling, TLB
    // shootdown, remapping) — the dominant cost of software migration.
    constexpr double kPageOverheadSeconds = 2e-6;
    constexpr double kPageBytes = 4096.0;
    std::uint64_t moved = 0;
    for (DataObject o : kAllDataObjects) {
      const double delta = std::abs(target.dram(o) - current.dram(o));
      moved += static_cast<std::uint64_t>(
          delta * static_cast<double>(profile.footprint(o)));
    }
    const double migration_time =
        bw_time(moved, params.pmm.read_bandwidth_gbs) +
        bw_time(moved, params.dram.write_bandwidth_gbs) +
        static_cast<double>(moved) / kPageBytes * kPageOverheadSeconds;
    r.migrated_bytes += moved;

    // Stage time: reaction window under the stale placement, remainder
    // under the target placement, plus the migration itself.
    double t = 0.0;
    double measured = profile.measured[stage];
    std::array<std::uint64_t, 2> bytes{};
    for (DataObject o : kAllDataObjects) {
      const AccessStats& st = profile.at(stage, o);
      if (!st.any()) continue;
      const double pen = pmm_penalty(st, params, profile.footprint(o));
      const double stale = 1.0 - current.dram(o);
      const double fresh = 1.0 - target.dram(o);
      t += kReaction * stale * pen + (1.0 - kReaction) * fresh * pen;
      const double pmm_share = kReaction * stale + (1.0 - kReaction) * fresh;
      bytes[static_cast<int>(Tier::kPmm)] += static_cast<std::uint64_t>(
          pmm_share * static_cast<double>(st.total_bytes()));
      bytes[static_cast<int>(Tier::kDram)] += static_cast<std::uint64_t>(
          (1.0 - pmm_share) * static_cast<double>(st.total_bytes()));
    }
    bytes[static_cast<int>(Tier::kPmm)] += moved;
    bytes[static_cast<int>(Tier::kDram)] += moved;
    r.tier_bytes[s] = bytes;
    r.stage_seconds[stage] = measured + t + migration_time;
    current = target;
  }
  return r;
}

}  // namespace sparta
