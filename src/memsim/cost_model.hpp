// Analytical cost model for SpTC on DRAM+PMM heterogeneous memory.
//
// This is the simulator substrate standing in for the paper's Optane
// testbed (DESIGN.md §2). Given an AccessProfile recorded by an
// instrumented contraction run (measured all-DRAM stage times + per-
// stage/per-object byte and access tallies), it estimates the run's wall
// time under a data placement:
//
//   t_stage(P) = t_measured_stage
//              + Σ_obj pmm_share(obj) · penalty(obj, stage)
//
// where penalty charges the bandwidth delta for sequential traffic and
// the (MLP-discounted) latency delta for random accesses — exactly the
// asymmetries behind the paper's Observations 1 & 2 (§4.1).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "memsim/access_profile.hpp"
#include "memsim/memory_params.hpp"

namespace sparta {

/// A (possibly partial) data placement: fraction of each object resident
/// in DRAM (1.0 = fully DRAM, 0.0 = fully PMM). Partial placement models
/// the paper's "place into DRAM as much as possible".
struct Placement {
  std::array<double, kNumDataObjects> dram_fraction{};

  [[nodiscard]] double dram(DataObject o) const {
    return dram_fraction[static_cast<int>(o)];
  }
  void set(DataObject o, double f) {
    dram_fraction[static_cast<int>(o)] = f;
  }

  [[nodiscard]] static Placement all(Tier t) {
    Placement p;
    p.dram_fraction.fill(t == Tier::kDram ? 1.0 : 0.0);
    return p;
  }

  /// All-DRAM except one object fully in PMM (the Fig. 3 experiment).
  [[nodiscard]] static Placement one_in_pmm(DataObject o) {
    Placement p = all(Tier::kDram);
    p.set(o, 0.0);
    return p;
  }

  /// DRAM bytes this placement consumes, given object footprints.
  [[nodiscard]] std::uint64_t dram_bytes(
      const std::array<std::uint64_t, kNumDataObjects>& footprints) const;
};

/// Result of one simulated run.
struct SimResult {
  StageTimes stage_seconds;
  std::uint64_t migrated_bytes = 0;  ///< dynamic policies only
  /// Bytes served from each tier per stage (for the Fig. 8 bandwidth
  /// timeline): [stage][tier].
  std::array<std::array<std::uint64_t, 2>, kNumStages> tier_bytes{};

  [[nodiscard]] double total_seconds() const { return stage_seconds.total(); }

  /// Average bandwidth (GB/s) drawn from `tier` during `stage`.
  [[nodiscard]] double bandwidth_gbs(Stage s, Tier t) const;

  /// {"total_seconds":..,"migrated_bytes":..,"stages":{"<stage>":
  ///  {"seconds":..,"DRAM":{"bytes":..,"bandwidth_gbs":..},
  ///   "PMM":{...}}}} — the per-(stage,tier) traffic section of the
  /// bench --json reports.
  [[nodiscard]] std::string to_json() const {
    obs::JsonWriter w;
    w.begin_object();
    w.key("total_seconds").value(total_seconds());
    w.key("migrated_bytes").value(migrated_bytes);
    w.key("stages").begin_object();
    for (int s = 0; s < kNumStages; ++s) {
      const Stage st = static_cast<Stage>(s);
      w.key(stage_name(st)).begin_object();
      w.key("seconds").value(stage_seconds[st]);
      for (int t = 0; t < 2; ++t) {
        const Tier tier = static_cast<Tier>(t);
        w.key(tier_name(tier)).begin_object();
        w.key("bytes").value(
            tier_bytes[static_cast<std::size_t>(s)][static_cast<std::size_t>(
                t)]);
        w.key("bandwidth_gbs").value(bandwidth_gbs(st, tier));
        w.end_object();
      }
      w.end_object();
    }
    w.end_object();
    w.end_object();
    return w.str();
  }
};

/// Estimates run time under a static placement.
[[nodiscard]] SimResult simulate_static(const AccessProfile& profile,
                                        const MemoryParams& params,
                                        const Placement& placement);

/// The paper's algorithm-aware static policy (§4.2): X and Y on PMM;
/// HtY > HtA > Z_local > Z placed into DRAM best-effort within
/// params.dram_capacity_bytes, using the supplied footprints (callers
/// pass Eq. 5/6 estimates or measured values).
[[nodiscard]] Placement sparta_placement(
    const std::array<std::uint64_t, kNumDataObjects>& footprints,
    const MemoryParams& params);

/// Hardware-managed DRAM cache in front of PMM (PMM "Memory mode").
[[nodiscard]] SimResult simulate_memory_mode(const AccessProfile& profile,
                                             const MemoryParams& params);

/// Software page-hotness migration à la IAL [77]: placement follows the
/// previous epoch's byte counts, so it reacts late and moves data that
/// did not need moving.
[[nodiscard]] SimResult simulate_ial(const AccessProfile& profile,
                                     const MemoryParams& params);

}  // namespace sparta
