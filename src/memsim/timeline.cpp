#include "memsim/timeline.hpp"

namespace sparta {

std::vector<BandwidthSample> bandwidth_timeline(const SimResult& sim,
                                                int samples_per_stage) {
  std::vector<BandwidthSample> out;
  double start = 0.0;
  for (int s = 0; s < kNumStages; ++s) {
    const auto stage = static_cast<Stage>(s);
    const double duration = sim.stage_seconds[stage];
    if (duration <= 0.0) continue;
    const double dram = sim.bandwidth_gbs(stage, Tier::kDram);
    const double pmm = sim.bandwidth_gbs(stage, Tier::kPmm);
    for (int k = 0; k < samples_per_stage; ++k) {
      const double t =
          start + duration * (static_cast<double>(k) + 0.5) /
                      static_cast<double>(samples_per_stage);
      out.push_back(BandwidthSample{t, dram, pmm, stage});
    }
    start += duration;
  }
  return out;
}

}  // namespace sparta
