#include "spgemm/csr.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace sparta {

CsrMatrix CsrMatrix::from_coo(const SparseTensor& t) {
  SPARTA_CHECK(t.order() == 2, "CSR needs an order-2 tensor");
  SparseTensor s = t;
  s.coalesce();  // sorts row-major and sums duplicates
  CsrMatrix m(s.dim(0), s.dim(1));
  m.colidx_.assign(s.mode_indices(1).begin(), s.mode_indices(1).end());
  m.vals_.assign(s.values().begin(), s.values().end());
  const auto rows = s.mode_indices(0);
  for (index_t r : rows) ++m.rowptr_[r + 1];
  std::partial_sum(m.rowptr_.begin(), m.rowptr_.end(), m.rowptr_.begin());
  return m;
}

SparseTensor CsrMatrix::to_coo() const {
  SparseTensor t({rows_, cols_});
  t.reserve(nnz());
  std::vector<index_t> c(2);
  for (index_t r = 0; r < rows_; ++r) {
    for (std::size_t i = rowptr_[r]; i < rowptr_[r + 1]; ++i) {
      c[0] = r;
      c[1] = colidx_[i];
      t.append_unchecked(c, vals_[i]);
    }
  }
  return t;
}

CsrMatrix CsrMatrix::transposed() const {
  CsrMatrix t(cols_, rows_);
  t.colidx_.resize(nnz());
  t.vals_.resize(nnz());
  // Count entries per output row (= input column), prefix-sum, scatter.
  for (index_t c : colidx_) ++t.rowptr_[c + 1];
  for (std::size_t i = 1; i < t.rowptr_.size(); ++i) {
    t.rowptr_[i] += t.rowptr_[i - 1];
  }
  std::vector<std::size_t> cursor(t.rowptr_.begin(), t.rowptr_.end() - 1);
  for (index_t r = 0; r < rows_; ++r) {
    for (std::size_t i = rowptr_[r]; i < rowptr_[r + 1]; ++i) {
      const std::size_t dst = cursor[colidx_[i]]++;
      t.colidx_[dst] = r;
      t.vals_[dst] = vals_[i];
    }
  }
  return t;
}

CsrMatrix CsrMatrix::from_parts(index_t rows, index_t cols,
                                std::vector<std::size_t> rowptr,
                                std::vector<index_t> colidx,
                                std::vector<value_t> vals) {
  SPARTA_CHECK(rowptr.size() == static_cast<std::size_t>(rows) + 1,
               "rowptr must have rows+1 entries");
  SPARTA_CHECK(rowptr.front() == 0 && rowptr.back() == vals.size(),
               "rowptr must start at 0 and end at nnz");
  SPARTA_CHECK(colidx.size() == vals.size(),
               "colidx and values must have equal length");
  for (std::size_t r = 0; r + 1 < rowptr.size(); ++r) {
    SPARTA_CHECK(rowptr[r] <= rowptr[r + 1], "rowptr must be monotone");
  }
  for (index_t cidx : colidx) {
    SPARTA_CHECK(cidx < cols, "column index out of range");
  }
  CsrMatrix m(rows, cols);
  m.rowptr_ = std::move(rowptr);
  m.colidx_ = std::move(colidx);
  m.vals_ = std::move(vals);
  return m;
}

}  // namespace sparta
