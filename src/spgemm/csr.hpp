// Compressed sparse row (CSR) matrix — the substrate of the SpGEMM
// work SpTC generalizes (paper §1, §2.2). Order-2 SparseTensors convert
// losslessly in both directions, letting tests pit the SpTC pipeline
// against a dedicated SpGEMM on the same data.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta {

class CsrMatrix {
 public:
  CsrMatrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols), rowptr_(rows + 1, 0) {}

  [[nodiscard]] index_t rows() const { return rows_; }
  [[nodiscard]] index_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return vals_.size(); }

  [[nodiscard]] std::span<const std::size_t> rowptr() const {
    return rowptr_;
  }
  [[nodiscard]] std::span<const index_t> colidx() const { return colidx_; }
  [[nodiscard]] std::span<const value_t> values() const { return vals_; }

  /// Column indices of row r.
  [[nodiscard]] std::span<const index_t> row_cols(index_t r) const {
    return {colidx_.data() + rowptr_[r], rowptr_[r + 1] - rowptr_[r]};
  }
  /// Values of row r.
  [[nodiscard]] std::span<const value_t> row_vals(index_t r) const {
    return {vals_.data() + rowptr_[r], rowptr_[r + 1] - rowptr_[r]};
  }

  [[nodiscard]] std::size_t footprint_bytes() const {
    return rowptr_.capacity() * sizeof(std::size_t) +
           colidx_.capacity() * sizeof(index_t) +
           vals_.capacity() * sizeof(value_t);
  }

  /// Builds from an order-2 COO tensor (duplicates summed).
  [[nodiscard]] static CsrMatrix from_coo(const SparseTensor& t);

  /// Aᵀ in CSR (counting-sort transpose, O(nnz + rows + cols)).
  [[nodiscard]] CsrMatrix transposed() const;

  /// Converts to a sorted order-2 COO tensor.
  [[nodiscard]] SparseTensor to_coo() const;

  /// Takes ownership of prebuilt arrays (validated).
  [[nodiscard]] static CsrMatrix from_parts(index_t rows, index_t cols,
                                            std::vector<std::size_t> rowptr,
                                            std::vector<index_t> colidx,
                                            std::vector<value_t> vals);

 private:
  index_t rows_;
  index_t cols_;
  std::vector<std::size_t> rowptr_;
  std::vector<index_t> colidx_;
  std::vector<value_t> vals_;
};

}  // namespace sparta
