// Sparse matrix-matrix multiplication (SpGEMM), C = A · B.
//
// SpTC is the high-order generalization of this kernel (paper §2.2),
// and the paper's two central design debates come straight from the
// SpGEMM literature it builds on:
//
//   * accumulator choice — the Gilbert dense SPA vs a hash table
//     ([19, 20] vs [47]); both are implemented below.
//   * output sizing — an extra symbolic pass that counts C's non-zeros
//     exactly vs progressive (dynamic) allocation ([47] vs the paper's
//     choice); both are implemented below.
//
// Row-parallel with OpenMP, mirroring Sparta's sub-tensor parallelism.
#pragma once

#include <cstddef>
#include <string_view>

#include "spgemm/csr.hpp"

namespace sparta {

enum class SpgemmAccumulator : int {
  kDenseSpa = 0,  ///< dense workspace + occupied-column list (Gilbert)
  kHash = 1,      ///< open-addressing hash per row (Nagasaka et al.)
};

enum class SpgemmSizing : int {
  kProgressive = 0,  ///< dynamic per-row vectors, single pass
  kTwoPhase = 1,     ///< symbolic count pass, exact allocation, numeric
};

[[nodiscard]] constexpr std::string_view spgemm_accumulator_name(
    SpgemmAccumulator a) {
  return a == SpgemmAccumulator::kDenseSpa ? "dense-SPA" : "hash";
}
[[nodiscard]] constexpr std::string_view spgemm_sizing_name(SpgemmSizing s) {
  return s == SpgemmSizing::kProgressive ? "progressive" : "two-phase";
}

struct SpgemmOptions {
  SpgemmAccumulator accumulator = SpgemmAccumulator::kHash;
  SpgemmSizing sizing = SpgemmSizing::kProgressive;
  int num_threads = 0;  ///< 0 = ambient OpenMP count
};

struct SpgemmStats {
  std::size_t flops = 0;          ///< scalar multiply-adds
  std::size_t symbolic_nnz = 0;   ///< two-phase only: counted output nnz
};

/// C = A · B. A.cols() must equal B.rows(). Output rows are sorted by
/// column index.
[[nodiscard]] CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b,
                               const SpgemmOptions& opts = {},
                               SpgemmStats* stats = nullptr);

/// y = A · x (dense vector), row-parallel.
[[nodiscard]] std::vector<value_t> spmv(const CsrMatrix& a,
                                        std::span<const value_t> x,
                                        int num_threads = 0);

}  // namespace sparta
