#include "spgemm/spgemm.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "hashtable/linear_probe.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sparta {

namespace {

// Gilbert sparse accumulator: dense value workspace plus a list of
// occupied columns, reset per row in O(row nnz).
class DenseSpaRow {
 public:
  explicit DenseSpaRow(index_t cols)
      : vals_(cols, 0.0), occupied_(cols, false) {}

  void accumulate(index_t col, value_t v) {
    if (!occupied_[col]) {
      occupied_[col] = true;
      cols_.push_back(col);
    }
    vals_[col] += v;
  }

  [[nodiscard]] std::size_t size() const { return cols_.size(); }

  // Emits (col, value) sorted by column and resets.
  template <typename F>
  void drain_sorted(F&& f) {
    std::sort(cols_.begin(), cols_.end());
    for (index_t c : cols_) {
      f(c, vals_[c]);
      vals_[c] = 0.0;
      occupied_[c] = false;
    }
    cols_.clear();
  }

 private:
  std::vector<value_t> vals_;
  std::vector<bool> occupied_;
  std::vector<index_t> cols_;
};

// Multiplies one row of A into an accumulator via `accumulate(col, v)`.
template <typename Acc>
std::size_t multiply_row(const CsrMatrix& a, const CsrMatrix& b, index_t row,
                         Acc&& accumulate) {
  std::size_t flops = 0;
  const auto acols = a.row_cols(row);
  const auto avals = a.row_vals(row);
  for (std::size_t i = 0; i < acols.size(); ++i) {
    const index_t k = acols[i];
    const value_t av = avals[i];
    const auto bcols = b.row_cols(k);
    const auto bvals = b.row_vals(k);
    for (std::size_t j = 0; j < bcols.size(); ++j) {
      accumulate(bcols[j], av * bvals[j]);
      ++flops;
    }
  }
  return flops;
}

}  // namespace

CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b,
                 const SpgemmOptions& opts, SpgemmStats* stats) {
  SPARTA_CHECK(a.cols() == b.rows(),
               "inner dimensions must match (A.cols == B.rows)");
  obs::Span sp_spgemm("spgemm");
  const index_t rows = a.rows();
  const int nthreads =
      opts.num_threads > 0 ? opts.num_threads : max_threads();

  std::vector<std::size_t> row_nnz(rows, 0);
  std::atomic<std::size_t> total_flops{0};

  // Per-row result staging (progressive) or exact layout (two-phase).
  std::vector<std::vector<index_t>> row_cols_out;
  std::vector<std::vector<value_t>> row_vals_out;

  if (opts.sizing == SpgemmSizing::kTwoPhase) {
    // Symbolic phase: count each row's distinct output columns.
    obs::Span sp_symbolic("spgemm.symbolic");
    ExceptionCollector ec;
#pragma omp parallel num_threads(nthreads)
    {
      // Thread-local state built under the guard: every thread must
      // still reach the `omp for` below even if construction throws.
      std::unique_ptr<LinearProbeAccumulator> acc;
      ec.run([&] { acc = std::make_unique<LinearProbeAccumulator>(64); });
#pragma omp for schedule(dynamic, 64)
      for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows);
           ++r) {
        ec.run([&, r] {
          acc->clear();
          multiply_row(a, b, static_cast<index_t>(r),
                       [&](index_t c, value_t) { acc->accumulate(c, 0.0); });
          row_nnz[static_cast<std::size_t>(r)] = acc->size();
        });
      }
    }
    ec.rethrow();
  }

  row_cols_out.resize(rows);
  row_vals_out.resize(rows);

  obs::Span sp_numeric("spgemm.numeric");
  ExceptionCollector numeric_ec;
#pragma omp parallel num_threads(nthreads)
  {
    // Thread-local accumulators, constructed once — under the guard so a
    // throwing constructor cannot skip the worksharing constructs below.
    std::unique_ptr<DenseSpaRow> spa;
    std::unique_ptr<LinearProbeAccumulator> hash;
    numeric_ec.run([&] {
      if (opts.accumulator == SpgemmAccumulator::kDenseSpa) {
        spa = std::make_unique<DenseSpaRow>(b.cols());
      }
      hash = std::make_unique<LinearProbeAccumulator>(256);
    });
    std::size_t flops = 0;

#pragma omp for schedule(dynamic, 64)
    for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
      numeric_ec.run([&, r] {
      const auto row = static_cast<index_t>(r);
      const auto ri = static_cast<std::size_t>(r);
      auto& cols_out = row_cols_out[ri];
      auto& vals_out = row_vals_out[ri];
      if (opts.sizing == SpgemmSizing::kTwoPhase) {
        cols_out.reserve(row_nnz[ri]);
        vals_out.reserve(row_nnz[ri]);
      }
      if (opts.accumulator == SpgemmAccumulator::kDenseSpa) {
        flops += multiply_row(a, b, row, [&](index_t c, value_t v) {
          spa->accumulate(c, v);
        });
        spa->drain_sorted([&](index_t c, value_t v) {
          cols_out.push_back(c);
          vals_out.push_back(v);
        });
      } else {
        hash->clear();
        flops += multiply_row(a, b, row, [&](index_t c, value_t v) {
          hash->accumulate(c, v);
        });
        hash->drain([&](lnkey_t c, value_t v) {
          cols_out.push_back(static_cast<index_t>(c));
          vals_out.push_back(v);
        });
        // Hash drain order is arbitrary; sort the row by column.
        std::vector<std::size_t> perm(cols_out.size());
        std::iota(perm.begin(), perm.end(), std::size_t{0});
        std::sort(perm.begin(), perm.end(), [&](std::size_t x, std::size_t y) {
          return cols_out[x] < cols_out[y];
        });
        std::vector<index_t> sc(cols_out.size());
        std::vector<value_t> sv(vals_out.size());
        for (std::size_t i = 0; i < perm.size(); ++i) {
          sc[i] = cols_out[perm[i]];
          sv[i] = vals_out[perm[i]];
        }
        cols_out.swap(sc);
        vals_out.swap(sv);
      }
      row_nnz[ri] = cols_out.size();
      });
    }
    total_flops += flops;
  }
  numeric_ec.rethrow();
  sp_numeric.finish();

  // Assemble CSR from the per-row pieces.
  std::vector<std::size_t> rowptr(rows + 1, 0);
  for (index_t r = 0; r < rows; ++r) rowptr[r + 1] = rowptr[r] + row_nnz[r];
  const std::size_t nnz = rowptr[rows];
  std::vector<index_t> colidx(nnz);
  std::vector<value_t> vals(nnz);
  ExceptionCollector gather_ec;
#pragma omp parallel for schedule(static) num_threads(nthreads)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
    gather_ec.run([&, r] {
      const auto ri = static_cast<std::size_t>(r);
      std::copy(row_cols_out[ri].begin(), row_cols_out[ri].end(),
                colidx.begin() + static_cast<std::ptrdiff_t>(rowptr[ri]));
      std::copy(row_vals_out[ri].begin(), row_vals_out[ri].end(),
                vals.begin() + static_cast<std::ptrdiff_t>(rowptr[ri]));
    });
  }
  gather_ec.rethrow();

  if (stats) {
    stats->flops = total_flops.load();
    stats->symbolic_nnz =
        opts.sizing == SpgemmSizing::kTwoPhase ? nnz : 0;
  }
  SPARTA_COUNTER_ADD("spgemm.calls", 1);
  SPARTA_COUNTER_ADD("spgemm.flops", total_flops.load());
  return CsrMatrix::from_parts(rows, b.cols(), std::move(rowptr),
                               std::move(colidx), std::move(vals));
}

std::vector<value_t> spmv(const CsrMatrix& a, std::span<const value_t> x,
                          int num_threads) {
  SPARTA_CHECK(x.size() == a.cols(),
               "spmv: vector length must equal A.cols()");
  const int nthreads =
      num_threads > 0 ? num_threads : max_threads();
  std::vector<value_t> y(a.rows(), value_t{0});
  ExceptionCollector ec;
#pragma omp parallel for schedule(static) num_threads(nthreads)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(a.rows());
       ++r) {
    ec.run([&, r] {
      const auto row = static_cast<index_t>(r);
      const auto cols = a.row_cols(row);
      const auto vals = a.row_vals(row);
      value_t acc{0};
      for (std::size_t i = 0; i < cols.size(); ++i) {
        acc += vals[i] * x[cols[i]];
      }
      y[static_cast<std::size_t>(r)] = acc;
    });
  }
  ec.rethrow();
  return y;
}

}  // namespace sparta
