// Dense tensor used as the correctness oracle for sparse contraction.
//
// Only meant for small shapes in tests and examples; storage is a single
// row-major array.
#pragma once

#include <span>
#include <vector>

#include "tensor/linearize.hpp"
#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta {

class DenseTensor {
 public:
  explicit DenseTensor(std::vector<index_t> dims)
      : lin_(std::move(dims)), data_(lin_.size(), value_t{0}) {}

  [[nodiscard]] int order() const {
    return static_cast<int>(lin_.num_modes());
  }
  [[nodiscard]] const std::vector<index_t>& dims() const {
    return lin_.dims();
  }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] value_t& at(std::span<const index_t> idx) {
    return data_[lin_.linearize(idx)];
  }
  [[nodiscard]] value_t at(std::span<const index_t> idx) const {
    return data_[lin_.linearize(idx)];
  }

  [[nodiscard]] std::span<const value_t> data() const { return data_; }
  [[nodiscard]] std::span<value_t> data() { return data_; }
  [[nodiscard]] const LinearIndexer& indexer() const { return lin_; }

  /// Scatters a sparse tensor into dense form (duplicates accumulate).
  [[nodiscard]] static DenseTensor from_sparse(const SparseTensor& t);

  /// Extracts non-zeros (|v| > cutoff) back into COO form, sorted.
  [[nodiscard]] SparseTensor to_sparse(double cutoff = 0.0) const;

 private:
  LinearIndexer lin_;
  std::vector<value_t> data_;
};

/// Reference dense contraction: Z = X ×_{cx}^{cy} Y. Output modes are the
/// free modes of X (original order) followed by the free modes of Y.
/// O(|Z| * prod(contract dims)) — tests only.
[[nodiscard]] DenseTensor contract_dense(const DenseTensor& x,
                                         const DenseTensor& y,
                                         const Modes& cx, const Modes& cy);

}  // namespace sparta
