// Synthetic sparse tensor generators.
//
// The paper evaluates on FROSTT datasets plus a quantum-chemistry tensor;
// neither is redistributable here, so these generators produce tensors
// matching each dataset's order, mode-size ratios, density regime and
// fiber skew (see DESIGN.md §2 for the substitution argument).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta {

/// Parameters for random COO generation.
struct GeneratorSpec {
  std::vector<index_t> dims;
  std::size_t nnz = 0;          ///< target non-zero count (exact; duplicates
                                ///< are re-drawn)
  std::uint64_t seed = 42;
  double value_lo = -1.0;
  double value_hi = 1.0;
  /// Per-mode skew exponent. 1.0 = uniform; larger concentrates indices
  /// near 0, mimicking the power-law fibers of real FROSTT data. One entry
  /// per mode, or empty for all-uniform.
  std::vector<double> skew;
};

/// Generates a sparse tensor with exactly `spec.nnz` distinct coordinates
/// (sorted). Throws if nnz exceeds the number of cells.
[[nodiscard]] SparseTensor generate_random(const GeneratorSpec& spec);

/// Generates a pair (X, Y) sharing a controllable fraction of contract-
/// index tuples, so contracting X with Y along `num_contract_modes`
/// leading modes produces non-trivial output. `match_fraction` of X's
/// non-zeros reuse a contract tuple that exists in Y.
struct PairedSpec {
  GeneratorSpec x;
  GeneratorSpec y;
  int num_contract_modes = 1;   ///< leading modes of both X and Y contract
  double match_fraction = 0.5;
};

struct TensorPair {
  SparseTensor x;
  SparseTensor y;
};

[[nodiscard]] TensorPair generate_contraction_pair(const PairedSpec& spec);

}  // namespace sparta
