// FROSTT .tns text format I/O.
//
// Format: one non-zero per line, whitespace-separated 1-based indices
// followed by the value; '#' starts a comment. Mode sizes are inferred
// from the data unless supplied explicitly.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "tensor/sparse_tensor.hpp"

namespace sparta {

/// Parses a .tns stream. If `dims` is given it overrides inference (and
/// every index is validated against it). Throws sparta::Error on
/// malformed input: inconsistent arity, non-numeric tokens, indices < 1.
[[nodiscard]] SparseTensor read_tns(std::istream& in,
                                    std::optional<std::vector<index_t>> dims =
                                        std::nullopt);

/// Reads a .tns file from disk.
[[nodiscard]] SparseTensor read_tns_file(
    const std::string& path,
    std::optional<std::vector<index_t>> dims = std::nullopt);

/// Writes 1-based .tns text.
void write_tns(std::ostream& out, const SparseTensor& t);

/// Writes a .tns file to disk.
void write_tns_file(const std::string& path, const SparseTensor& t);

}  // namespace sparta
