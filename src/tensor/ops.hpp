// Element-wise and reduction operations on COO sparse tensors — the
// standard library surface around the contraction kernel (scaling
// operands, combining partial results, norms for convergence checks,
// mode reductions).
#pragma once

#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta {

/// C = alpha*A + beta*B. Shapes must match. Result is sorted/coalesced;
/// exact cancellations are dropped.
[[nodiscard]] SparseTensor add(const SparseTensor& a, const SparseTensor& b,
                               value_t alpha = 1.0, value_t beta = 1.0);

/// In-place scalar multiply. alpha == 0 empties the tensor.
void scale(SparseTensor& t, value_t alpha);

/// Element-wise (Hadamard) product: non-zero only where both are.
[[nodiscard]] SparseTensor hadamard(const SparseTensor& a,
                                    const SparseTensor& b);

/// Frobenius norm: sqrt(Σ v²).
[[nodiscard]] double norm_fro(const SparseTensor& t);

/// Largest |v|; 0 for an empty tensor.
[[nodiscard]] double norm_max(const SparseTensor& t);

/// Sum of all non-zero values.
[[nodiscard]] value_t sum(const SparseTensor& t);

/// Reduces (sums) over one mode, producing an order-(N-1) tensor.
/// Throws when the tensor has only one mode.
[[nodiscard]] SparseTensor reduce_mode(const SparseTensor& t, int mode);

/// Keeps only elements with |v| > cutoff — the truncation quantum-
/// chemistry pipelines apply before an element-wise SpTC (§5.3's
/// 1e-8 cutoff). Result sorted.
[[nodiscard]] SparseTensor truncate(const SparseTensor& t, double cutoff);

/// Extracts the sub-tensor where `mode` == `index`, dropping that mode.
[[nodiscard]] SparseTensor slice(const SparseTensor& t, int mode,
                                 index_t index);

}  // namespace sparta
