#include "tensor/datasets.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sparta {

namespace {

GeneratorSpec spec(std::vector<index_t> dims, std::size_t nnz,
                   std::vector<double> skew = {}) {
  GeneratorSpec s;
  s.dims = std::move(dims);
  s.nnz = nnz;
  s.skew = std::move(skew);
  return s;
}

std::vector<DatasetInfo> build_table3() {
  std::vector<DatasetInfo> d;
  // Paper dims / nnz from Table 3; scaled analogs keep the order, the
  // relative mode sizes and the density regime. Web-scale tensors
  // (Nell-2, Flickr, Delicious) get skewed fibers like the originals.
  d.push_back({"nell2",
               {12000, 9000, 28000},
               76'000'000,
               2.4e-5,
               spec({600, 450, 1400}, 60'000, {1.6, 1.6, 1.6})});
  d.push_back({"nips",
               {2000, 3000, 14000, 17000},
               3'000'000,
               1.8e-6,
               spec({200, 300, 1400, 1700}, 40'000)});
  d.push_back({"uber",
               {183, 24, 1000, 1000},
               3'000'000,
               2e-4,
               spec({183, 24, 500, 500}, 50'000)});
  d.push_back({"chicago",
               {6000, 24, 77, 32},
               5'000'000,
               1e-2,
               spec({1200, 24, 77, 32}, 50'000)});
  d.push_back({"uracil",
               {90, 90, 174, 174},
               10'000'000,
               4.2e-2,
               spec({90, 90, 174, 174}, 80'000)});
  d.push_back({"flickr",
               {320'000, 28'000'000, 2'000'000, 731},
               113'000'000,
               1.1e-4,
               spec({3200, 28000, 2000, 731}, 60'000, {2.0, 2.0, 2.0, 1.0})});
  d.push_back({"delicious",
               {533'000, 17'000'000, 2'000'000, 1000},
               140'000'000,
               4.3e-6,
               spec({5330, 17000, 2000, 1000}, 60'000, {2.0, 2.0, 2.0, 1.0})});
  d.push_back({"vast",
               {165'000, 11'000, 2, 100, 89},
               26'000'000,
               8e-7,
               spec({1650, 1100, 2, 100, 89}, 60'000)});
  return d;
}

}  // namespace

const std::vector<DatasetInfo>& table3_datasets() {
  static const std::vector<DatasetInfo> kTable = build_table3();
  return kTable;
}

const DatasetInfo& dataset_by_name(const std::string& name) {
  for (const auto& d : table3_datasets()) {
    if (d.name == name) return d;
  }
  throw Error("unknown dataset '" + name + "'");
}

SpTCCase make_sptc_case(const std::string& dataset, int num_modes,
                        double nnz_scale, std::uint64_t seed) {
  const DatasetInfo& info = dataset_by_name(dataset);
  SPARTA_CHECK(num_modes >= 1 &&
                   num_modes < static_cast<int>(info.spec.dims.size()),
               "num_modes must leave at least one free mode");

  PairedSpec ps;
  ps.y = info.spec;
  ps.y.nnz = std::max<std::size_t>(
      16, static_cast<std::size_t>(static_cast<double>(info.spec.nnz) *
                                   nnz_scale));
  ps.y.seed = seed;
  ps.x = ps.y;
  ps.x.seed = seed * 7919 + 13;
  ps.num_contract_modes = num_modes;
  ps.match_fraction = 0.8;

  TensorPair pair = generate_contraction_pair(ps);
  SpTCCase c;
  c.label = dataset + "/" + std::to_string(num_modes) + "-mode";
  c.x = std::move(pair.x);
  c.y = std::move(pair.y);
  for (int m = 0; m < num_modes; ++m) {
    c.cx.push_back(m);
    c.cy.push_back(m);
  }
  return c;
}

}  // namespace sparta
