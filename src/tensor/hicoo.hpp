// HiCOO — hierarchical COO storage [Li, Sun, Vuduc; SC'18], the
// compressed general-sparse-tensor format the paper cites ([37]) next
// to CSF when discussing storage choices (§6).
//
// The index space is tiled into 2^block_bits-sized cubes; non-zeros are
// grouped per occupied block and store only an 8-bit offset per mode,
// with the (wider) block coordinates stored once per block:
//
//   bptr  : nnz range per block
//   binds : block coordinate per block (index_t per mode)
//   einds : within-block offset per non-zero (uint8 per mode)
//
// For clustered tensors this cuts index storage roughly 4x vs COO.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta {

class HicooTensor {
 public:
  /// Tiles `t` into 2^block_bits cubes (1 <= block_bits <= 8 so offsets
  /// fit a byte). Non-zeros are regrouped in block-sorted order.
  [[nodiscard]] static HicooTensor from_coo(const SparseTensor& t,
                                            int block_bits = 7);

  [[nodiscard]] int order() const { return static_cast<int>(dims_.size()); }
  [[nodiscard]] const std::vector<index_t>& dims() const { return dims_; }
  [[nodiscard]] std::size_t nnz() const { return vals_.size(); }
  [[nodiscard]] std::size_t num_blocks() const {
    return bptr_.empty() ? 0 : bptr_.size() - 1;
  }
  [[nodiscard]] int block_bits() const { return block_bits_; }

  /// Average non-zeros per occupied block — HiCOO's clustering measure.
  [[nodiscard]] double block_density() const {
    return num_blocks() == 0
               ? 0.0
               : static_cast<double>(nnz()) /
                     static_cast<double>(num_blocks());
  }

  [[nodiscard]] std::size_t footprint_bytes() const;

  /// Visits every non-zero as (coords, value), block-grouped order.
  template <typename F>
  void for_each(F&& f) const {
    const auto order = static_cast<std::size_t>(this->order());
    std::vector<index_t> coords(order);
    for (std::size_t b = 0; b + 1 < bptr_.size(); ++b) {
      const index_t* block = &binds_[b * order];
      for (std::size_t i = bptr_[b]; i < bptr_[b + 1]; ++i) {
        for (std::size_t m = 0; m < order; ++m) {
          coords[m] = (block[m] << block_bits_) | einds_[i * order + m];
        }
        f(std::span<const index_t>(coords), vals_[i]);
      }
    }
  }

  /// Back to sorted COO.
  [[nodiscard]] SparseTensor to_coo() const;

 private:
  HicooTensor() = default;

  std::vector<index_t> dims_;
  int block_bits_ = 7;
  std::vector<std::size_t> bptr_;   // num_blocks + 1
  std::vector<index_t> binds_;      // order per block, flattened
  std::vector<std::uint8_t> einds_; // order per non-zero, flattened
  std::vector<value_t> vals_;
};

}  // namespace sparta
