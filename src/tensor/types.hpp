// Fundamental scalar types for the Sparta library.
#pragma once

#include <cstdint>
#include <vector>

namespace sparta {

/// A single mode (dimension) index. 32 bits covers every FROSTT mode size
/// (largest is 28M for Flickr) with headroom.
using index_t = std::uint32_t;

/// A linearized multi-index — the paper's "large number" (LN)
/// representation (§3.3). 64 bits; LinearIndexer checks for overflow.
using lnkey_t = std::uint64_t;

/// Non-zero value type.
using value_t = double;

/// A list of mode indices identifying one tensor element.
using Coords = std::vector<index_t>;

/// A list of mode numbers (e.g. the contract-mode sets Cx, Cy).
using Modes = std::vector<int>;

}  // namespace sparta
