#include "tensor/io_binary.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

namespace sparta {

namespace {

constexpr char kMagic[4] = {'S', 'P', 'T', 'N'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  SPARTA_CHECK(in.good(), "truncated SPTN stream");
  return v;
}

}  // namespace

void write_sptn(std::ostream& out, const SparseTensor& t) {
  out.write(kMagic, 4);
  put<std::uint32_t>(out, kVersion);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(t.order()));
  put<std::uint64_t>(out, t.nnz());
  for (index_t d : t.dims()) put<std::uint32_t>(out, d);
  // Empty spans carry a null data() pointer; ostream::write with a null
  // source is undefined even for a zero count, so skip the calls.
  for (int m = 0; m < t.order(); ++m) {
    const auto col = t.mode_indices(m);
    if (col.empty()) continue;
    out.write(reinterpret_cast<const char*>(col.data()),
              static_cast<std::streamsize>(col.size() * sizeof(index_t)));
  }
  const auto vals = t.values();
  if (!vals.empty()) {
    out.write(reinterpret_cast<const char*>(vals.data()),
              static_cast<std::streamsize>(vals.size() * sizeof(value_t)));
  }
  SPARTA_CHECK(out.good(), "SPTN write failed");
}

void write_sptn_file(const std::string& path, const SparseTensor& t) {
  std::ofstream out(path, std::ios::binary);
  SPARTA_CHECK(out.good(), "cannot open '" + path + "' for writing");
  write_sptn(out, t);
}

SparseTensor read_sptn(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  SPARTA_CHECK(in.good() && std::memcmp(magic, kMagic, 4) == 0,
               "not an SPTN stream (bad magic)");
  const auto version = get<std::uint32_t>(in);
  SPARTA_CHECK(version == kVersion,
               "unsupported SPTN version " + std::to_string(version));
  const auto order = get<std::uint32_t>(in);
  SPARTA_CHECK(order >= 1 && order <= 64, "implausible SPTN order");
  const auto nnz = get<std::uint64_t>(in);
  // A corrupt header must not drive a multi-terabyte allocation below.
  SPARTA_CHECK(nnz <= (std::uint64_t{1} << 40),
               "implausible SPTN nnz " + std::to_string(nnz));

  std::vector<index_t> dims(order);
  for (auto& d : dims) {
    d = get<std::uint32_t>(in);
    SPARTA_CHECK(d > 0, "SPTN mode size must be positive");
  }

  // nnz == 0 is a legal tensor (all-zero operand): the payload sections
  // are empty, and istream::read must not be handed the null data()
  // pointer an empty vector yields (undefined even for a zero count).
  std::vector<std::vector<index_t>> cols(order);
  for (std::uint32_t m = 0; m < order; ++m) {
    auto& col = cols[m];
    col.resize(nnz);
    if (nnz == 0) continue;
    in.read(reinterpret_cast<char*>(col.data()),
            static_cast<std::streamsize>(nnz * sizeof(index_t)));
    SPARTA_CHECK(in.good(), "truncated SPTN column data (mode " +
                                std::to_string(m) + ")");
    // Mirror the text reader's bound checks so a corrupt stream fails
    // with a precise message, not from_columns' generic one.
    for (index_t v : col) {
      SPARTA_CHECK(v < dims[m],
                   "mode " + std::to_string(m) + ": index " +
                       std::to_string(v) + " out of bounds (mode size " +
                       std::to_string(dims[m]) + ")");
    }
  }
  std::vector<value_t> vals(nnz);
  if (nnz > 0) {
    in.read(reinterpret_cast<char*>(vals.data()),
            static_cast<std::streamsize>(nnz * sizeof(value_t)));
    SPARTA_CHECK(in.good(), "truncated SPTN value data");
  }

  // from_columns bounds-checks every index against dims.
  return SparseTensor::from_columns(std::move(dims), std::move(cols),
                                    std::move(vals));
}

SparseTensor read_sptn_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SPARTA_CHECK(in.good(), "cannot open '" + path + "' for reading");
  try {
    return read_sptn(in);
  } catch (const Error& e) {
    throw Error("'" + path + "': " + e.what());
  }
}

}  // namespace sparta
