#include "tensor/sparse_tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "simd/sort.hpp"
#include "tensor/linearize.hpp"

namespace sparta {

SparseTensor::SparseTensor(std::vector<index_t> dims)
    : dims_(std::move(dims)), inds_(dims_.size()) {
  SPARTA_CHECK(!dims_.empty(), "tensor must have at least one mode");
  for (index_t d : dims_) {
    SPARTA_CHECK(d > 0, "every mode size must be positive");
  }
}

double SparseTensor::density() const {
  double cells = 1.0;
  for (index_t d : dims_) cells *= static_cast<double>(d);
  return cells > 0.0 ? static_cast<double>(nnz()) / cells : 0.0;
}

std::size_t SparseTensor::footprint_bytes() const {
  std::size_t bytes = vals_.capacity() * sizeof(value_t);
  for (const auto& col : inds_) bytes += col.capacity() * sizeof(index_t);
  return bytes;
}

void SparseTensor::coords(std::size_t n, std::span<index_t> out) const {
  SPARTA_ASSERT(out.size() == inds_.size());
  for (std::size_t m = 0; m < inds_.size(); ++m) out[m] = inds_[m][n];
}

void SparseTensor::reserve(std::size_t n) {
  vals_.reserve(n);
  for (auto& col : inds_) col.reserve(n);
}

void SparseTensor::append(std::span<const index_t> coords, value_t val) {
  SPARTA_CHECK(coords.size() == inds_.size(),
               "coordinate arity does not match tensor order");
  for (std::size_t m = 0; m < inds_.size(); ++m) {
    SPARTA_CHECK(coords[m] < dims_[m], "coordinate out of bounds");
  }
  append_unchecked(coords, val);
}

void SparseTensor::append_unchecked(std::span<const index_t> coords,
                                    value_t val) {
  for (std::size_t m = 0; m < inds_.size(); ++m) {
    inds_[m].push_back(coords[m]);
  }
  vals_.push_back(val);
}

void SparseTensor::clear() {
  for (auto& col : inds_) col.clear();
  vals_.clear();
}

SparseTensor SparseTensor::from_columns(
    std::vector<index_t> dims, std::vector<std::vector<index_t>> columns,
    std::vector<value_t> values) {
  SparseTensor t(std::move(dims));
  SPARTA_CHECK(columns.size() == t.dims_.size(),
               "one index column per mode required");
  for (std::size_t m = 0; m < columns.size(); ++m) {
    SPARTA_CHECK(columns[m].size() == values.size(),
                 "column length must match value count");
    for (index_t v : columns[m]) {
      SPARTA_CHECK(v < t.dims_[m], "index out of bounds in column");
    }
  }
  t.inds_ = std::move(columns);
  t.vals_ = std::move(values);
  return t;
}

void SparseTensor::permute_modes(const Modes& new_order) {
  SPARTA_CHECK(new_order.size() == dims_.size(),
               "permutation arity does not match tensor order");
  std::vector<bool> seen(dims_.size(), false);
  for (int m : new_order) {
    SPARTA_CHECK(m >= 0 && m < order(), "mode out of range in permutation");
    SPARTA_CHECK(!seen[static_cast<std::size_t>(m)],
                 "duplicate mode in permutation");
    seen[static_cast<std::size_t>(m)] = true;
  }
  std::vector<index_t> new_dims(dims_.size());
  std::vector<std::vector<index_t>> new_inds(dims_.size());
  for (std::size_t k = 0; k < new_order.size(); ++k) {
    const auto src = static_cast<std::size_t>(new_order[k]);
    new_dims[k] = dims_[src];
    new_inds[k] = std::move(inds_[src]);
  }
  dims_ = std::move(new_dims);
  inds_ = std::move(new_inds);
}

namespace {

// When the whole index space fits in 64 bits we sort (LN key, position)
// pairs — one integer compare per element instead of `order` compares.
bool fits_ln(const std::vector<index_t>& dims) { return ln_space_fits(dims); }

}  // namespace

void SparseTensor::sort() { sort(CancelToken{}); }

void SparseTensor::sort(const CancelToken& cancel) {
  const std::size_t n = nnz();
  if (n < 2) return;

  std::vector<std::size_t> perm(n);
  if (fits_ln(dims_)) {
    LinearIndexer lin(dims_);
    std::vector<std::pair<lnkey_t, std::size_t>> keyed(n);
    std::vector<index_t> c(dims_.size());
    for (std::size_t i = 0; i < n; ++i) {
      coords(i, c);
      keyed[i] = {lin.linearize(c), i};
    }
    // ISA-dispatched stable LSD radix on the LN key (simd/sort.hpp):
    // linear passes instead of O(n log n) compares, and — being stable —
    // an identical permutation on every SIMD tier, which the
    // scalar-vs-simd differential CI jobs rely on.
    simd::sort_ln_pairs(keyed, significant_bits(lin.size() - 1), cancel);
    for (std::size_t i = 0; i < n; ++i) perm[i] = keyed[i].second;
  } else {
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    parallel_sort(perm.begin(), perm.end(),
                  [this](std::size_t a, std::size_t b) {
                    for (const auto& col : inds_) {
                      if (col[a] != col[b]) return col[a] < col[b];
                    }
                    return false;
                  },
                  cancel);
  }

  // Apply the permutation column by column (gather).
  std::vector<index_t> tmp_idx(n);
  for (auto& col : inds_) {
    for (std::size_t i = 0; i < n; ++i) tmp_idx[i] = col[perm[i]];
    col.swap(tmp_idx);
  }
  std::vector<value_t> tmp_val(n);
  for (std::size_t i = 0; i < n; ++i) tmp_val[i] = vals_[perm[i]];
  vals_.swap(tmp_val);
}

bool SparseTensor::is_sorted() const {
  for (std::size_t i = 1; i < nnz(); ++i) {
    for (const auto& col : inds_) {
      if (col[i - 1] != col[i]) {
        if (col[i - 1] > col[i]) return false;
        break;
      }
    }
  }
  return true;
}

void SparseTensor::coalesce() {
  if (nnz() < 2) {
    return;
  }
  sort();
  const std::size_t n = nnz();
  std::size_t out = 0;
  auto same_coords = [this](std::size_t a, std::size_t b) {
    for (const auto& col : inds_) {
      if (col[a] != col[b]) return false;
    }
    return true;
  };
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i + 1;
    value_t sum = vals_[i];
    while (j < n && same_coords(i, j)) {
      sum += vals_[j];
      ++j;
    }
    if (sum != value_t{0}) {
      for (auto& col : inds_) col[out] = col[i];
      vals_[out] = sum;
      ++out;
    }
    i = j;
  }
  for (auto& col : inds_) col.resize(out);
  vals_.resize(out);
}

bool SparseTensor::approx_equal(const SparseTensor& a, const SparseTensor& b,
                                double tol) {
  if (a.dims_ != b.dims_) return false;
  SparseTensor ca = a;
  SparseTensor cb = b;
  ca.coalesce();
  cb.coalesce();
  if (ca.nnz() != cb.nnz()) return false;
  for (std::size_t m = 0; m < ca.inds_.size(); ++m) {
    if (ca.inds_[m] != cb.inds_[m]) return false;
  }
  for (std::size_t i = 0; i < ca.nnz(); ++i) {
    const double diff = std::abs(ca.vals_[i] - cb.vals_[i]);
    const double scale =
        std::max({1.0, std::abs(ca.vals_[i]), std::abs(cb.vals_[i])});
    if (diff > tol * scale) return false;
  }
  return true;
}

std::string SparseTensor::summary() const {
  std::ostringstream os;
  os << "order-" << order() << " [";
  for (std::size_t m = 0; m < dims_.size(); ++m) {
    if (m) os << "x";
    os << dims_[m];
  }
  os << "] nnz=" << nnz();
  return os.str();
}

}  // namespace sparta
