#include "tensor/csf.hpp"

#include "common/error.hpp"

namespace sparta {

CsfTensor CsfTensor::from_sorted(const SparseTensor& t) {
  SPARTA_CHECK(t.is_sorted(), "CSF construction needs a sorted tensor");
  SPARTA_CHECK(t.nnz() < 0xffffffffULL,
               "CSF uses 32-bit fiber pointers; tensor too large");
  CsfTensor c;
  c.dims_ = t.dims();
  const auto order = static_cast<std::size_t>(t.order());
  const std::size_t n = t.nnz();
  c.inds_.resize(order);
  c.ptrs_.resize(order > 0 ? order - 1 : 0);
  c.vals_.assign(t.values().begin(), t.values().end());
  if (n == 0) {
    for (std::size_t l = 0; l + 1 < order; ++l) c.ptrs_[l].push_back(0);
    return c;
  }

  // branch_level[i] = shallowest level whose index differs from non-zero
  // i-1; a node starts at level l for every i with branch_level[i] <= l.
  std::vector<std::size_t> branch_level(n, 0);
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t l = 0;
    while (l < order && t.index(i - 1, static_cast<int>(l)) ==
                            t.index(i, static_cast<int>(l))) {
      ++l;
    }
    SPARTA_CHECK(l < order, "duplicate coordinates; coalesce() first");
    branch_level[i] = l;
  }

  // Per level: a node for every i where branch_level[i] <= level. The
  // child pointer advances through level+1's node counter.
  for (std::size_t level = 0; level < order; ++level) {
    auto& idx = c.inds_[level];
    std::uint32_t child_count = 0;  // nodes created so far at level+1
    for (std::size_t i = 0; i < n; ++i) {
      if (branch_level[i] <= level) {
        idx.push_back(t.index(i, static_cast<int>(level)));
        if (level + 1 < order) {
          c.ptrs_[level].push_back(child_count);
        }
      }
      if (level + 1 < order && branch_level[i] <= level + 1) {
        ++child_count;
      }
    }
    if (level + 1 < order) {
      c.ptrs_[level].push_back(child_count);
    }
  }
  return c;
}

std::size_t CsfTensor::footprint_bytes() const {
  std::size_t bytes = vals_.capacity() * sizeof(value_t);
  for (const auto& v : inds_) bytes += v.capacity() * sizeof(index_t);
  for (const auto& v : ptrs_) bytes += v.capacity() * sizeof(std::uint32_t);
  return bytes;
}

SparseTensor CsfTensor::to_coo() const {
  SparseTensor out(dims_);
  out.reserve(nnz());
  for_each([&](std::span<const index_t> coords, value_t v) {
    out.append_unchecked(coords, v);
  });
  return out;
}

}  // namespace sparta
