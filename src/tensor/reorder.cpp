#include "tensor/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace sparta {

namespace {

// Relabeling for one mode from occurrence counts: most frequent → 0.
// Stable on ties (by old index) for deterministic output.
std::vector<index_t> map_from_counts(const std::vector<std::size_t>& counts) {
  std::vector<index_t> order(counts.size());
  std::iota(order.begin(), order.end(), index_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](index_t a, index_t b) { return counts[a] > counts[b]; });
  std::vector<index_t> forward(counts.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    forward[order[rank]] = static_cast<index_t>(rank);
  }
  return forward;
}

std::vector<std::size_t> mode_counts(const SparseTensor& t, int mode) {
  std::vector<std::size_t> counts(t.dim(mode), 0);
  for (index_t v : t.mode_indices(mode)) ++counts[v];
  return counts;
}

}  // namespace

Relabeling Relabeling::inverted() const {
  Relabeling inv;
  inv.forward.resize(forward.size());
  for (std::size_t m = 0; m < forward.size(); ++m) {
    inv.forward[m].resize(forward[m].size());
    for (std::size_t old = 0; old < forward[m].size(); ++old) {
      inv.forward[m][forward[m][old]] = static_cast<index_t>(old);
    }
  }
  return inv;
}

Relabeling reorder_by_frequency(const SparseTensor& t) {
  Relabeling r;
  for (int m = 0; m < t.order(); ++m) {
    r.forward.push_back(map_from_counts(mode_counts(t, m)));
  }
  return r;
}

SparseTensor apply_relabeling(const SparseTensor& t, const Relabeling& r) {
  SPARTA_CHECK(r.forward.size() == static_cast<std::size_t>(t.order()),
               "relabeling arity must match tensor order");
  for (int m = 0; m < t.order(); ++m) {
    SPARTA_CHECK(r.forward[static_cast<std::size_t>(m)].size() == t.dim(m),
                 "relabeling size must match mode size");
  }
  SparseTensor out(t.dims());
  out.reserve(t.nnz());
  std::vector<index_t> c(static_cast<std::size_t>(t.order()));
  for (std::size_t n = 0; n < t.nnz(); ++n) {
    t.coords(n, c);
    for (std::size_t m = 0; m < c.size(); ++m) {
      c[m] = r.forward[m][c[m]];
    }
    out.append_unchecked(c, t.value(n));
  }
  out.sort();
  return out;
}

RelabeledPair reorder_pair(const SparseTensor& x, const SparseTensor& y,
                           const Modes& cx, const Modes& cy) {
  SPARTA_CHECK(cx.size() == cy.size(),
               "contract mode lists must have equal arity");
  RelabeledPair out;
  // Start from independent frequency maps.
  out.x_map = reorder_by_frequency(x);
  out.y_map = reorder_by_frequency(y);
  // Contract modes must share one map: rebuild from combined counts.
  for (std::size_t i = 0; i < cx.size(); ++i) {
    const int mx = cx[i];
    const int my = cy[i];
    SPARTA_CHECK(mx >= 0 && mx < x.order() && my >= 0 && my < y.order(),
                 "contract mode out of range");
    SPARTA_CHECK(x.dim(mx) == y.dim(my), "contract mode sizes must match");
    std::vector<std::size_t> counts(x.dim(mx), 0);
    for (index_t v : x.mode_indices(mx)) ++counts[v];
    for (index_t v : y.mode_indices(my)) ++counts[v];
    auto shared = map_from_counts(counts);
    out.x_map.forward[static_cast<std::size_t>(mx)] = shared;
    out.y_map.forward[static_cast<std::size_t>(my)] = std::move(shared);
  }
  out.x = apply_relabeling(x, out.x_map);
  out.y = apply_relabeling(y, out.y_map);
  return out;
}

}  // namespace sparta
