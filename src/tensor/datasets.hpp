// Synthetic analogs of the paper's evaluation datasets (Table 3).
//
// Each entry records the paper's real characteristics (for Table 3
// reproduction) and a scaled GeneratorSpec whose order, mode-size ratios
// and skew mimic the original at laptop-friendly nnz. SpTC benchmark
// cases contract a dataset with an independently-seeded tensor of the
// same shape along the first `num_modes` modes (Cx = Cy = {0..m-1}),
// which mirrors the paper's self-contraction expressions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/generators.hpp"
#include "tensor/sparse_tensor.hpp"

namespace sparta {

/// One Table-3 dataset: paper-reported stats + our scaled generator.
struct DatasetInfo {
  std::string name;
  std::vector<std::uint64_t> paper_dims;
  std::uint64_t paper_nnz = 0;
  double paper_density = 0.0;
  GeneratorSpec spec;  ///< scaled synthetic analog
};

/// All eight Table-3 datasets, in the paper's order.
[[nodiscard]] const std::vector<DatasetInfo>& table3_datasets();

/// Looks up a dataset by (case-sensitive) name; throws if unknown.
[[nodiscard]] const DatasetInfo& dataset_by_name(const std::string& name);

/// A ready-to-contract benchmark case.
struct SpTCCase {
  std::string label;  ///< e.g. "chicago/2-mode"
  SparseTensor x;
  SparseTensor y;
  Modes cx;
  Modes cy;
};

/// Builds the m-mode contraction case for a dataset. `nnz_scale` scales
/// both tensors' non-zero counts (1.0 = the defaults tuned for seconds-
/// long benchmark runs).
[[nodiscard]] SpTCCase make_sptc_case(const std::string& dataset,
                                      int num_modes, double nnz_scale = 1.0,
                                      std::uint64_t seed = 42);

}  // namespace sparta
