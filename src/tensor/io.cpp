#include "tensor/io.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string_view>

#include "common/error.hpp"

namespace sparta {

namespace {

// Splits a line into tokens; returns false when the line is blank or a
// comment.
bool tokenize(std::string_view line, std::vector<std::string_view>& out) {
  out.clear();
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                               line[i] == '\r')) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#') break;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '\r' && line[i] != '#') {
      ++i;
    }
    out.push_back(line.substr(start, i - start));
  }
  return !out.empty();
}

std::uint64_t parse_index(std::string_view tok, int line_no) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(tok.begin(), tok.end(), v);
  SPARTA_CHECK(ec != std::errc::result_out_of_range,
               "line " + std::to_string(line_no) + ": index token '" +
                   std::string(tok) + "' overflows 64-bit range");
  SPARTA_CHECK(ec == std::errc{} && ptr == tok.end(),
               "line " + std::to_string(line_no) + ": bad index token '" +
                   std::string(tok) + "'");
  SPARTA_CHECK(v >= 1, "line " + std::to_string(line_no) +
                           ": .tns indices are 1-based, got 0");
  return v;
}

double parse_value(std::string_view tok, int line_no) {
  // std::from_chars for double is available in libstdc++ 11+; use it.
  double v = 0;
  const auto [ptr, ec] = std::from_chars(tok.begin(), tok.end(), v);
  SPARTA_CHECK(ec != std::errc::result_out_of_range,
               "line " + std::to_string(line_no) + ": value '" +
                   std::string(tok) + "' does not fit a double");
  SPARTA_CHECK(ec == std::errc{} && ptr == tok.end(),
               "line " + std::to_string(line_no) + ": bad value token '" +
                   std::string(tok) + "'");
  SPARTA_CHECK(std::isfinite(v),
               "line " + std::to_string(line_no) + ": value '" +
                   std::string(tok) +
                   "' is not finite (inf/nan values poison contractions)");
  return v;
}

}  // namespace

SparseTensor read_tns(std::istream& in,
                      std::optional<std::vector<index_t>> dims) {
  std::vector<std::vector<index_t>> cols;
  std::vector<value_t> vals;
  std::vector<std::string_view> toks;
  std::string line;
  int order = -1;
  int line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (!tokenize(line, toks)) continue;
    if (order < 0) {
      SPARTA_CHECK(toks.size() >= 2,
                   "line " + std::to_string(line_no) +
                       ": expected at least one index and a value");
      order = static_cast<int>(toks.size()) - 1;
      cols.resize(static_cast<std::size_t>(order));
      if (dims) {
        SPARTA_CHECK(static_cast<int>(dims->size()) == order,
                     "supplied dims arity does not match file order");
      }
    }
    SPARTA_CHECK(static_cast<int>(toks.size()) == order + 1,
                 "line " + std::to_string(line_no) +
                     ": inconsistent number of columns");
    for (int m = 0; m < order; ++m) {
      const std::uint64_t idx1 =
          parse_index(toks[static_cast<std::size_t>(m)], line_no);
      SPARTA_CHECK(idx1 - 1 <= 0xffffffffULL,
                   "line " + std::to_string(line_no) +
                       ": index exceeds 32-bit range");
      cols[static_cast<std::size_t>(m)].push_back(
          static_cast<index_t>(idx1 - 1));
    }
    vals.push_back(parse_value(toks.back(), line_no));
  }
  SPARTA_CHECK(order > 0, "empty .tns input (no data lines)");

  std::vector<index_t> shape;
  if (dims) {
    shape = *dims;
    for (int m = 0; m < order; ++m) {
      const auto& col = cols[static_cast<std::size_t>(m)];
      for (index_t v : col) {
        SPARTA_CHECK(v < shape[static_cast<std::size_t>(m)],
                     "mode " + std::to_string(m) + ": index " +
                         std::to_string(v + 1) +
                         " exceeds the supplied mode size " +
                         std::to_string(shape[static_cast<std::size_t>(m)]));
      }
    }
  } else {
    shape.resize(static_cast<std::size_t>(order));
    for (int m = 0; m < order; ++m) {
      const auto& col = cols[static_cast<std::size_t>(m)];
      shape[static_cast<std::size_t>(m)] =
          1 + *std::max_element(col.begin(), col.end());
    }
  }

  SparseTensor t(shape);
  t.reserve(vals.size());
  std::vector<index_t> c(static_cast<std::size_t>(order));
  for (std::size_t n = 0; n < vals.size(); ++n) {
    for (int m = 0; m < order; ++m) {
      c[static_cast<std::size_t>(m)] = cols[static_cast<std::size_t>(m)][n];
    }
    t.append_unchecked(c, vals[n]);
  }
  return t;
}

SparseTensor read_tns_file(const std::string& path,
                           std::optional<std::vector<index_t>> dims) {
  std::ifstream in(path);
  SPARTA_CHECK(in.good(), "cannot open '" + path + "' for reading");
  try {
    return read_tns(in, std::move(dims));
  } catch (const Error& e) {
    throw Error("'" + path + "': " + e.what());
  }
}

void write_tns(std::ostream& out, const SparseTensor& t) {
  std::ostringstream buf;
  buf.precision(17);
  std::vector<index_t> c(static_cast<std::size_t>(t.order()));
  for (std::size_t n = 0; n < t.nnz(); ++n) {
    t.coords(n, c);
    for (index_t v : c) buf << (v + 1) << '\t';
    buf << t.value(n) << '\n';
  }
  out << buf.str();
}

void write_tns_file(const std::string& path, const SparseTensor& t) {
  std::ofstream out(path);
  SPARTA_CHECK(out.good(), "cannot open '" + path + "' for writing");
  write_tns(out, t);
}

}  // namespace sparta
