// Sparse tensor index reordering (relabeling), after the
// frequency-based schemes the paper cites ([38], Li et al., "Efficient
// and effective sparse tensor reordering").
//
// Renumbering each mode's indices by descending occurrence count packs
// the hot fibers into a dense low-index range: hash groups of frequent
// contract keys land near each other, sorting runs get longer, and
// caches see the skew instead of fighting it. The relabeling is a
// bijection per mode, so contraction results are identical up to index
// names.
#pragma once

#include <vector>

#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta {

/// A per-mode bijection old-index → new-index.
struct Relabeling {
  std::vector<std::vector<index_t>> forward;  ///< forward[mode][old] = new

  /// Inverse maps (new → old), for un-relabeling results.
  [[nodiscard]] Relabeling inverted() const;
};

/// Builds the frequency relabeling of every mode of `t` (most frequent
/// index becomes 0).
[[nodiscard]] Relabeling reorder_by_frequency(const SparseTensor& t);

/// Applies a relabeling (arity and sizes must match). Output sorted.
[[nodiscard]] SparseTensor apply_relabeling(const SparseTensor& t,
                                            const Relabeling& r);

/// Relabels a contraction pair consistently: contract modes cx[i]/cy[i]
/// share one map built from their combined counts; free modes get their
/// own maps. contract(x', y') then equals contract(x, y) up to the
/// per-mode renaming of Z's indices.
struct RelabeledPair {
  SparseTensor x;
  SparseTensor y;
  Relabeling x_map;
  Relabeling y_map;
};
[[nodiscard]] RelabeledPair reorder_pair(const SparseTensor& x,
                                         const SparseTensor& y,
                                         const Modes& cx, const Modes& cy);

}  // namespace sparta
