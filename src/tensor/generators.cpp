#include "tensor/generators.hpp"

#include <cmath>
#include <unordered_set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/linearize.hpp"

namespace sparta {

namespace {

index_t draw_index(Rng& rng, index_t dim, double skew) {
  if (skew <= 1.0) {
    return static_cast<index_t>(rng.uniform(dim));
  }
  // u^skew concentrates mass toward index 0, giving power-law-ish fibers.
  const double u = rng.uniform_double();
  auto idx = static_cast<index_t>(std::pow(u, skew) * dim);
  return idx >= dim ? dim - 1 : idx;
}

double cell_count(const std::vector<index_t>& dims) {
  double cells = 1.0;
  for (index_t d : dims) cells *= static_cast<double>(d);
  return cells;
}

}  // namespace

SparseTensor generate_random(const GeneratorSpec& spec) {
  SPARTA_CHECK(!spec.dims.empty(), "generator needs at least one mode");
  SPARTA_CHECK(spec.skew.empty() || spec.skew.size() == spec.dims.size(),
               "skew must be empty or have one entry per mode");
  SPARTA_CHECK(static_cast<double>(spec.nnz) <= cell_count(spec.dims),
               "requested nnz exceeds the tensor's cell count");

  Rng rng(spec.seed);
  SparseTensor t(spec.dims);
  t.reserve(spec.nnz);

  const LinearIndexer lin(spec.dims);
  std::unordered_set<lnkey_t> used;
  used.reserve(spec.nnz * 2);

  std::vector<index_t> c(spec.dims.size());
  std::size_t emitted = 0;
  // With skewed draws near-full occupancy can stall on duplicates; cap
  // the retry budget and fail loudly rather than loop forever.
  std::size_t attempts = 0;
  const std::size_t max_attempts = spec.nnz * 64 + 1024;
  while (emitted < spec.nnz) {
    SPARTA_CHECK(++attempts <= max_attempts,
                 "generator could not find enough distinct coordinates; "
                 "lower nnz or skew");
    for (std::size_t m = 0; m < spec.dims.size(); ++m) {
      const double skew = spec.skew.empty() ? 1.0 : spec.skew[m];
      c[m] = draw_index(rng, spec.dims[m], skew);
    }
    if (!used.insert(lin.linearize(c)).second) continue;
    t.append_unchecked(c, rng.uniform_double(spec.value_lo, spec.value_hi));
    ++emitted;
  }
  t.sort();
  return t;
}

TensorPair generate_contraction_pair(const PairedSpec& spec) {
  const int m = spec.num_contract_modes;
  SPARTA_CHECK(m >= 1, "need at least one contract mode");
  SPARTA_CHECK(m < static_cast<int>(spec.x.dims.size()) &&
                   m < static_cast<int>(spec.y.dims.size()),
               "contract modes must leave at least one free mode");
  for (int i = 0; i < m; ++i) {
    SPARTA_CHECK(spec.x.dims[static_cast<std::size_t>(i)] ==
                     spec.y.dims[static_cast<std::size_t>(i)],
                 "leading contract mode sizes of X and Y must match");
  }

  TensorPair pair;
  pair.y = generate_random(spec.y);

  // Collect Y's distinct contract tuples so X can be steered to hit them.
  std::vector<index_t> cdims(spec.y.dims.begin(), spec.y.dims.begin() + m);
  const LinearIndexer clin(cdims);
  std::vector<lnkey_t> y_ckeys;
  {
    std::unordered_set<lnkey_t> seen;
    std::vector<index_t> c(static_cast<std::size_t>(pair.y.order()));
    for (std::size_t n = 0; n < pair.y.nnz(); ++n) {
      pair.y.coords(n, c);
      const lnkey_t k =
          clin.linearize(std::span<const index_t>(c.data(),
                                                  static_cast<std::size_t>(m)));
      if (seen.insert(k).second) y_ckeys.push_back(k);
    }
  }

  Rng rng(spec.x.seed ^ 0xabcdef12345ULL);
  const LinearIndexer xlin(spec.x.dims);
  std::unordered_set<lnkey_t> used;
  used.reserve(spec.x.nnz * 2);

  pair.x = SparseTensor(spec.x.dims);
  pair.x.reserve(spec.x.nnz);
  std::vector<index_t> c(spec.x.dims.size());
  std::vector<index_t> ctuple(static_cast<std::size_t>(m));
  std::size_t emitted = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = spec.x.nnz * 64 + 1024;
  while (emitted < spec.x.nnz) {
    SPARTA_CHECK(++attempts <= max_attempts,
                 "paired generator could not find enough distinct "
                 "coordinates; lower nnz, skew or match_fraction");
    const bool match = !y_ckeys.empty() &&
                       rng.uniform_double() < spec.match_fraction;
    if (match) {
      const lnkey_t k = y_ckeys[rng.uniform(y_ckeys.size())];
      clin.delinearize(k, ctuple);
      for (int i = 0; i < m; ++i) {
        c[static_cast<std::size_t>(i)] = ctuple[static_cast<std::size_t>(i)];
      }
    } else {
      for (int i = 0; i < m; ++i) {
        const double skew =
            spec.x.skew.empty() ? 1.0
                                : spec.x.skew[static_cast<std::size_t>(i)];
        c[static_cast<std::size_t>(i)] =
            draw_index(rng, spec.x.dims[static_cast<std::size_t>(i)], skew);
      }
    }
    for (std::size_t i = static_cast<std::size_t>(m); i < spec.x.dims.size();
         ++i) {
      const double skew = spec.x.skew.empty() ? 1.0 : spec.x.skew[i];
      c[i] = draw_index(rng, spec.x.dims[i], skew);
    }
    if (!used.insert(xlin.linearize(c)).second) continue;
    pair.x.append_unchecked(
        c, rng.uniform_double(spec.x.value_lo, spec.x.value_hi));
    ++emitted;
  }
  pair.x.sort();
  return pair;
}

}  // namespace sparta
