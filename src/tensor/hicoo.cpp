#include "tensor/hicoo.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/radix.hpp"
#include "tensor/linearize.hpp"

namespace sparta {

HicooTensor HicooTensor::from_coo(const SparseTensor& t, int block_bits) {
  SPARTA_CHECK(block_bits >= 1 && block_bits <= 8,
               "block_bits must be in [1, 8] so offsets fit one byte");
  HicooTensor h;
  h.dims_ = t.dims();
  h.block_bits_ = block_bits;
  const auto order = static_cast<std::size_t>(t.order());
  const std::size_t n = t.nnz();
  h.vals_.resize(n);
  h.einds_.resize(n * order);
  if (n == 0) {
    h.bptr_.push_back(0);
    return h;
  }

  // Block-grid linearizer for grouping.
  std::vector<index_t> grid(order);
  for (std::size_t m = 0; m < order; ++m) {
    grid[m] = ((t.dim(static_cast<int>(m)) - 1) >> block_bits) + 1;
  }
  const LinearIndexer grid_lin(grid);

  // Sort non-zeros by (block key, within-block key): one radix pass over
  // a combined key when it fits, else lexicographic fallback.
  std::vector<std::pair<std::uint64_t, std::size_t>> keyed(n);
  {
    const int wbits = static_cast<int>(order) * block_bits;
    SPARTA_CHECK(
        wbits < 64 && grid_lin.size() <=
                          (std::uint64_t{1} << (63 - wbits)),
        "index space too large for HiCOO's combined sort key; use fewer "
        "block bits or smaller modes");
    std::vector<index_t> c(order);
    std::vector<index_t> bc(order);
    for (std::size_t i = 0; i < n; ++i) {
      t.coords(i, c);
      std::uint64_t within = 0;
      for (std::size_t m = 0; m < order; ++m) {
        bc[m] = c[m] >> block_bits;
        within = (within << block_bits) |
                 (c[m] & ((index_t{1} << block_bits) - 1));
      }
      keyed[i] = {(grid_lin.linearize(bc) << wbits) | within, i};
    }
    radix_sort_pairs(keyed);
  }

  const int wbits = static_cast<int>(order) * block_bits;
  std::uint64_t prev_block = ~std::uint64_t{0};
  std::vector<index_t> c(order);
  for (std::size_t i = 0; i < n; ++i) {
    const auto [key, src] = keyed[i];
    const std::uint64_t block_key = key >> wbits;
    if (block_key != prev_block) {
      h.bptr_.push_back(i);
      std::vector<index_t> bc(order);
      grid_lin.delinearize(block_key, bc);
      h.binds_.insert(h.binds_.end(), bc.begin(), bc.end());
      prev_block = block_key;
    }
    t.coords(src, c);
    for (std::size_t m = 0; m < order; ++m) {
      h.einds_[i * order + m] = static_cast<std::uint8_t>(
          c[m] & ((index_t{1} << block_bits) - 1));
    }
    h.vals_[i] = t.value(src);
  }
  h.bptr_.push_back(n);
  return h;
}

std::size_t HicooTensor::footprint_bytes() const {
  return bptr_.capacity() * sizeof(std::size_t) +
         binds_.capacity() * sizeof(index_t) +
         einds_.capacity() * sizeof(std::uint8_t) +
         vals_.capacity() * sizeof(value_t);
}

SparseTensor HicooTensor::to_coo() const {
  SparseTensor out(dims_);
  out.reserve(nnz());
  for_each([&](std::span<const index_t> coords, value_t v) {
    out.append_unchecked(coords, v);
  });
  out.sort();
  return out;
}

}  // namespace sparta
