// Coordinate-format (COO) sparse tensor of arbitrary order.
//
// Storage is structure-of-arrays: one index array per mode plus one value
// array, mirroring HiParTI's layout. Mode permutation is O(order) (just
// swaps the per-mode arrays — the paper's "switch the pointers of their
// indices"), while sorting rearranges all non-zeros lexicographically.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "tensor/types.hpp"

namespace sparta {

class CancelToken;

class SparseTensor {
 public:
  SparseTensor() = default;

  /// Creates an empty tensor with the given mode sizes.
  explicit SparseTensor(std::vector<index_t> dims);

  // --- Shape ---------------------------------------------------------

  [[nodiscard]] int order() const { return static_cast<int>(dims_.size()); }
  [[nodiscard]] const std::vector<index_t>& dims() const { return dims_; }
  [[nodiscard]] index_t dim(int mode) const {
    return dims_[static_cast<std::size_t>(mode)];
  }
  [[nodiscard]] std::size_t nnz() const { return vals_.size(); }
  [[nodiscard]] bool empty() const { return vals_.empty(); }

  /// nnz / product(dims), computed in double to avoid overflow.
  [[nodiscard]] double density() const;

  /// Heap bytes used by the index and value arrays.
  [[nodiscard]] std::size_t footprint_bytes() const;

  // --- Element access ------------------------------------------------

  /// Index of non-zero `n` in mode `mode`.
  [[nodiscard]] index_t index(std::size_t n, int mode) const {
    return inds_[static_cast<std::size_t>(mode)][n];
  }
  [[nodiscard]] value_t value(std::size_t n) const { return vals_[n]; }
  [[nodiscard]] value_t& value(std::size_t n) { return vals_[n]; }

  /// Copies the full coordinate tuple of non-zero `n` into `out`
  /// (out.size() must equal order()).
  void coords(std::size_t n, std::span<index_t> out) const;

  /// Whole index column for one mode (size nnz()).
  [[nodiscard]] std::span<const index_t> mode_indices(int mode) const {
    return inds_[static_cast<std::size_t>(mode)];
  }
  [[nodiscard]] std::span<const value_t> values() const { return vals_; }
  [[nodiscard]] std::span<value_t> values() { return vals_; }

  // --- Construction --------------------------------------------------

  void reserve(std::size_t n);

  /// Appends one non-zero. Coordinates are bounds-checked.
  void append(std::span<const index_t> coords, value_t val);

  /// Appends one non-zero without bounds checking (hot path for the
  /// writeback stage; caller guarantees validity).
  void append_unchecked(std::span<const index_t> coords, value_t val);

  void clear();

  /// Takes ownership of fully-built index columns + values (one column
  /// per mode, all the same length). Used by the parallel writeback
  /// gather, which fills the columns with OpenMP before handing them
  /// over. Column lengths and bounds are validated.
  [[nodiscard]] static SparseTensor from_columns(
      std::vector<index_t> dims, std::vector<std::vector<index_t>> columns,
      std::vector<value_t> values);

  // --- Reordering ----------------------------------------------------

  /// Reorders modes so that new mode k is old mode `new_order[k]`.
  /// O(order) pointer swaps; non-zeros are untouched.
  void permute_modes(const Modes& new_order);

  /// Sorts non-zeros lexicographically by (mode 0, mode 1, ...).
  /// Parallel (OpenMP task quicksort) when large.
  void sort();

  /// Cancellable sort: `cancel` is polled once per radix pass / partition
  /// task and Cancelled unwinds with the tensor untouched (the
  /// permutation is computed on side buffers and only applied at the
  /// end).
  void sort(const CancelToken& cancel);

  /// True when non-zeros are in lexicographic order.
  [[nodiscard]] bool is_sorted() const;

  /// Sorts, then merges duplicate coordinates by summing their values and
  /// drops explicit zeros produced by cancellation.
  void coalesce();

  // --- Comparison ----------------------------------------------------

  /// Exact shape + coordinate equality with value tolerance. Both tensors
  /// are compared in canonical (sorted, coalesced) form; inputs are
  /// untouched (copies are made when needed).
  [[nodiscard]] static bool approx_equal(const SparseTensor& a,
                                         const SparseTensor& b,
                                         double tol = 1e-9);

  /// One-line human-readable summary ("order-4 [6186x24x77x32] nnz=5330").
  [[nodiscard]] std::string summary() const;

 private:
  friend class TensorBuilder;

  std::vector<index_t> dims_;
  std::vector<std::vector<index_t>> inds_;  // inds_[mode][nz]
  std::vector<value_t> vals_;
};

}  // namespace sparta
