// Compressed Sparse Fiber (CSF) tensor format [Smith & Karypis,
// SPLATT].
//
// The paper stores X in COO and names "a more compressed format for the
// sparse tensor X" as future work (§6); CSF is the format it cites.
// A CSF tensor is a forest: level l holds the distinct mode-l indices
// under each level-(l-1) node, so shared prefixes — exactly the
// free-mode prefixes that define X's sub-tensors — are stored once.
//
// This implementation supports building from sorted COO, full traversal,
// conversion back, and footprint accounting; bench_ablation_csf
// quantifies the compression and traversal cost against the COO + ptr_F
// scheme the contraction pipeline uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta {

class CsfTensor {
 public:
  /// Builds from a lexicographically sorted COO tensor (throws if not
  /// sorted). Mode order is the tensor's current mode order — permute
  /// first to choose a different fiber hierarchy.
  [[nodiscard]] static CsfTensor from_sorted(const SparseTensor& t);

  [[nodiscard]] int order() const { return static_cast<int>(dims_.size()); }
  [[nodiscard]] const std::vector<index_t>& dims() const { return dims_; }
  [[nodiscard]] std::size_t nnz() const { return vals_.size(); }

  /// Number of fiber nodes at level l (level order()-1 has nnz nodes).
  [[nodiscard]] std::size_t level_size(int l) const {
    return inds_[static_cast<std::size_t>(l)].size();
  }

  /// Mode-l index of each node at level l.
  [[nodiscard]] std::span<const index_t> level_indices(int l) const {
    return inds_[static_cast<std::size_t>(l)];
  }

  /// Children ranges: node n at level l (l < order-1) owns nodes
  /// [ptr[n], ptr[n+1]) at level l+1. Size level_size(l) + 1. 32-bit
  /// (SPLATT-style) — construction rejects tensors beyond 2^32 - 1
  /// non-zeros.
  [[nodiscard]] std::span<const std::uint32_t> level_ptr(int l) const {
    return ptrs_[static_cast<std::size_t>(l)];
  }

  /// Values aligned with the leaf level.
  [[nodiscard]] std::span<const value_t> values() const { return vals_; }

  [[nodiscard]] std::size_t footprint_bytes() const;

  /// Visits every non-zero as (coords, value), in sorted order.
  template <typename F>
  void for_each(F&& f) const {
    const auto n = static_cast<std::size_t>(order());
    if (n == 0 || vals_.empty()) return;
    std::vector<index_t> coords(n);
    walk(0, 0, level_size(0), coords, f);
  }

  /// Round-trips back to sorted COO.
  [[nodiscard]] SparseTensor to_coo() const;

 private:
  CsfTensor() = default;

  template <typename F>
  void walk(std::size_t level, std::size_t begin, std::size_t end,
            std::vector<index_t>& coords, F&& f) const {
    const auto last = static_cast<std::size_t>(order()) - 1;
    for (std::size_t node = begin; node < end; ++node) {
      coords[level] = inds_[level][node];
      if (level == last) {
        f(std::span<const index_t>(coords), vals_[node]);
      } else {
        walk(level + 1, ptrs_[level][node], ptrs_[level][node + 1], coords,
             f);
      }
    }
  }

  std::vector<index_t> dims_;
  std::vector<std::vector<index_t>> inds_;      // one per level
  std::vector<std::vector<std::uint32_t>> ptrs_;  // one per level except last
  std::vector<value_t> vals_;
};

}  // namespace sparta
