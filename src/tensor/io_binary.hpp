// Binary sparse tensor format ("SPTN"), the fast-load counterpart of
// the .tns text format — analogous to the artifact's SPLATT .bin
// conversion step (Appendix B.4). Little-endian, versioned:
//
//   magic   "SPTN"            4 bytes
//   version u32               currently 1
//   order   u32
//   nnz     u64
//   dims    order × u32
//   columns order × nnz × u32 (one mode column at a time)
//   values  nnz × f64
#pragma once

#include <iosfwd>
#include <string>

#include "common/error.hpp"
#include "tensor/sparse_tensor.hpp"

namespace sparta {

void write_sptn(std::ostream& out, const SparseTensor& t);
void write_sptn_file(const std::string& path, const SparseTensor& t);

/// Throws sparta::Error on bad magic, unsupported version, truncated
/// payload, or out-of-range indices.
[[nodiscard]] SparseTensor read_sptn(std::istream& in);
[[nodiscard]] SparseTensor read_sptn_file(const std::string& path);

}  // namespace sparta
