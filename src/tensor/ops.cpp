#include "tensor/ops.hpp"

#include <cmath>
#include <unordered_map>

#include "common/error.hpp"
#include "tensor/linearize.hpp"

namespace sparta {

SparseTensor add(const SparseTensor& a, const SparseTensor& b, value_t alpha,
                 value_t beta) {
  SPARTA_CHECK(a.dims() == b.dims(), "add: shapes must match");
  SparseTensor out(a.dims());
  out.reserve(a.nnz() + b.nnz());
  std::vector<index_t> c(static_cast<std::size_t>(a.order()));
  for (std::size_t n = 0; n < a.nnz(); ++n) {
    a.coords(n, c);
    out.append_unchecked(c, alpha * a.value(n));
  }
  for (std::size_t n = 0; n < b.nnz(); ++n) {
    b.coords(n, c);
    out.append_unchecked(c, beta * b.value(n));
  }
  out.coalesce();
  return out;
}

void scale(SparseTensor& t, value_t alpha) {
  if (alpha == value_t{0}) {
    t.clear();
    return;
  }
  for (value_t& v : t.values()) v *= alpha;
}

SparseTensor hadamard(const SparseTensor& a, const SparseTensor& b) {
  SPARTA_CHECK(a.dims() == b.dims(), "hadamard: shapes must match");
  const LinearIndexer lin(a.dims());
  std::unordered_map<lnkey_t, value_t> bmap;
  bmap.reserve(b.nnz() * 2);
  std::vector<index_t> c(static_cast<std::size_t>(a.order()));
  for (std::size_t n = 0; n < b.nnz(); ++n) {
    b.coords(n, c);
    bmap[lin.linearize(c)] += b.value(n);
  }
  SparseTensor out(a.dims());
  for (std::size_t n = 0; n < a.nnz(); ++n) {
    a.coords(n, c);
    const auto it = bmap.find(lin.linearize(c));
    if (it != bmap.end()) {
      const value_t v = a.value(n) * it->second;
      if (v != value_t{0}) out.append_unchecked(c, v);
    }
  }
  out.coalesce();
  return out;
}

double norm_fro(const SparseTensor& t) {
  double s = 0.0;
  for (value_t v : t.values()) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

double norm_max(const SparseTensor& t) {
  double m = 0.0;
  for (value_t v : t.values()) m = std::max(m, std::abs(v));
  return m;
}

value_t sum(const SparseTensor& t) {
  value_t s{};
  for (value_t v : t.values()) s += v;
  return s;
}

SparseTensor reduce_mode(const SparseTensor& t, int mode) {
  SPARTA_CHECK(mode >= 0 && mode < t.order(), "reduce_mode: mode out of range");
  SPARTA_CHECK(t.order() > 1,
               "reduce_mode: cannot reduce the only mode of a tensor");
  std::vector<index_t> dims;
  for (int m = 0; m < t.order(); ++m) {
    if (m != mode) dims.push_back(t.dim(m));
  }
  SparseTensor out(dims);
  out.reserve(t.nnz());
  std::vector<index_t> c(static_cast<std::size_t>(t.order()));
  std::vector<index_t> oc(dims.size());
  for (std::size_t n = 0; n < t.nnz(); ++n) {
    t.coords(n, c);
    std::size_t p = 0;
    for (int m = 0; m < t.order(); ++m) {
      if (m != mode) oc[p++] = c[static_cast<std::size_t>(m)];
    }
    out.append_unchecked(oc, t.value(n));
  }
  out.coalesce();
  return out;
}

SparseTensor truncate(const SparseTensor& t, double cutoff) {
  SparseTensor out(t.dims());
  std::vector<index_t> c(static_cast<std::size_t>(t.order()));
  for (std::size_t n = 0; n < t.nnz(); ++n) {
    if (std::abs(t.value(n)) > cutoff) {
      t.coords(n, c);
      out.append_unchecked(c, t.value(n));
    }
  }
  out.sort();
  return out;
}

SparseTensor slice(const SparseTensor& t, int mode, index_t index) {
  SPARTA_CHECK(mode >= 0 && mode < t.order(), "slice: mode out of range");
  SPARTA_CHECK(index < t.dim(mode), "slice: index out of range");
  SPARTA_CHECK(t.order() > 1, "slice: cannot slice the only mode");
  std::vector<index_t> dims;
  for (int m = 0; m < t.order(); ++m) {
    if (m != mode) dims.push_back(t.dim(m));
  }
  SparseTensor out(dims);
  std::vector<index_t> c(static_cast<std::size_t>(t.order()));
  std::vector<index_t> oc(dims.size());
  for (std::size_t n = 0; n < t.nnz(); ++n) {
    if (t.index(n, mode) != index) continue;
    t.coords(n, c);
    std::size_t p = 0;
    for (int m = 0; m < t.order(); ++m) {
      if (m != mode) oc[p++] = c[static_cast<std::size_t>(m)];
    }
    out.append_unchecked(oc, t.value(n));
  }
  out.sort();
  return out;
}

}  // namespace sparta
