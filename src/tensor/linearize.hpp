// Large-number (LN) index linearization (paper §3.3).
//
// Converts a sparse multi-index tuple over a set of modes into a single
// dense 64-bit integer: LN(i0,...,ik) = ((i0*D1 + i1)*D2 + i2)... .
// Unique LN keys make hash-table key comparison a single integer compare,
// which is the heart of both HtY and HtA.
#pragma once

#include <numeric>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "tensor/types.hpp"

namespace sparta {

/// Row-major linearizer over a fixed list of mode sizes.
class LinearIndexer {
 public:
  LinearIndexer() = default;

  /// `dims` are the sizes of the modes being linearized, in the order the
  /// indices will be supplied. Throws if the product overflows 64 bits.
  explicit LinearIndexer(std::vector<index_t> dims) : dims_(std::move(dims)) {
    strides_.assign(dims_.size(), 1);
    lnkey_t total = 1;
    for (std::size_t i = dims_.size(); i-- > 0;) {
      SPARTA_CHECK(dims_[i] > 0, "mode size must be positive");
      strides_[i] = total;
      const lnkey_t next = total * dims_[i];
      SPARTA_CHECK(dims_[i] == 0 || next / dims_[i] == total,
                   "linearized index space exceeds 64 bits; "
                   "reduce mode sizes or contract fewer modes");
      total = next;
    }
    size_ = total;
  }

  [[nodiscard]] std::size_t num_modes() const { return dims_.size(); }
  [[nodiscard]] const std::vector<index_t>& dims() const { return dims_; }

  /// Total number of addressable positions (product of dims).
  [[nodiscard]] lnkey_t size() const { return size_; }

  /// Linearize a full tuple (one index per mode).
  [[nodiscard]] lnkey_t linearize(std::span<const index_t> idx) const {
    SPARTA_ASSERT(idx.size() == dims_.size());
    lnkey_t key = 0;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      SPARTA_ASSERT(idx[i] < dims_[i]);
      key += strides_[i] * idx[i];
    }
    return key;
  }

  /// Linearize indices gathered from `coords` at positions `modes`.
  /// coords is a full coordinate tuple of some tensor; modes selects which
  /// of its entries correspond to this indexer's dims, in order.
  [[nodiscard]] lnkey_t linearize_gather(std::span<const index_t> coords,
                                         std::span<const int> modes) const {
    SPARTA_ASSERT(modes.size() == dims_.size());
    lnkey_t key = 0;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      const index_t v = coords[static_cast<std::size_t>(modes[i])];
      SPARTA_ASSERT(v < dims_[i]);
      key += strides_[i] * v;
    }
    return key;
  }

  /// Inverse of linearize(); writes one index per mode into `out`.
  void delinearize(lnkey_t key, std::span<index_t> out) const {
    SPARTA_ASSERT(out.size() == dims_.size());
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      out[i] = static_cast<index_t>(key / strides_[i]);
      key %= strides_[i];
    }
  }

 private:
  std::vector<index_t> dims_;
  std::vector<lnkey_t> strides_;
  lnkey_t size_ = 1;
};

}  // namespace sparta
