// Large-number (LN) index linearization (paper §3.3).
//
// Converts a sparse multi-index tuple over a set of modes into a single
// dense 64-bit integer: LN(i0,...,ik) = ((i0*D1 + i1)*D2 + i2)... .
// Unique LN keys make hash-table key comparison a single integer compare,
// which is the heart of both HtY and HtA.
#pragma once

#include <limits>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "tensor/types.hpp"

namespace sparta {

/// True when the product of `dims` fits the 64-bit LN representation
/// (every dim must also be positive). The cheap O(order) predicate
/// behind check_ln_space(); shared with SparseTensor::sort()'s LN-pair
/// fast path.
[[nodiscard]] inline bool ln_space_fits(std::span<const index_t> dims) {
  lnkey_t total = 1;
  for (index_t d : dims) {
    if (d == 0) return false;
    if (total > std::numeric_limits<lnkey_t>::max() / d) return false;
    total *= d;
  }
  return true;
}

/// Validates that the linearized index space over `dims` fits 64 bits,
/// throwing a diagnostic that names the offending mode sizes. Called at
/// plan time — before any O(nnz) work — by contract() and YPlan, so an
/// overflowing LN key space is rejected up front instead of surfacing
/// mid-pipeline (the paper's LN-key contract, §3.3, assumes the
/// linearized index fits 64 bits).
inline void check_ln_space(const char* what, std::span<const index_t> dims) {
  if (ln_space_fits(dims)) return;
  std::string sizes;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i > 0) sizes += "x";
    sizes += std::to_string(dims[i]);
  }
  throw Error(std::string(what) + ": linearized index space " + sizes +
              " exceeds the 64-bit LN representation; reduce mode sizes "
              "or contract fewer modes");
}

/// Row-major linearizer over a fixed list of mode sizes.
class LinearIndexer {
 public:
  LinearIndexer() = default;

  /// `dims` are the sizes of the modes being linearized, in the order the
  /// indices will be supplied. Throws if the product overflows 64 bits.
  explicit LinearIndexer(std::vector<index_t> dims) : dims_(std::move(dims)) {
    for (index_t d : dims_) {
      SPARTA_CHECK(d > 0, "mode size must be positive");
    }
    check_ln_space("LinearIndexer", dims_);
    strides_.assign(dims_.size(), 1);
    lnkey_t total = 1;
    for (std::size_t i = dims_.size(); i-- > 0;) {
      strides_[i] = total;
      total *= dims_[i];
    }
    size_ = total;
  }

  [[nodiscard]] std::size_t num_modes() const { return dims_.size(); }
  [[nodiscard]] const std::vector<index_t>& dims() const { return dims_; }

  /// Total number of addressable positions (product of dims).
  [[nodiscard]] lnkey_t size() const { return size_; }

  /// Linearize a full tuple (one index per mode).
  [[nodiscard]] lnkey_t linearize(std::span<const index_t> idx) const {
    SPARTA_ASSERT(idx.size() == dims_.size());
    lnkey_t key = 0;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      SPARTA_ASSERT(idx[i] < dims_[i]);
      key += strides_[i] * idx[i];
    }
    return key;
  }

  /// Linearize indices gathered from `coords` at positions `modes`.
  /// coords is a full coordinate tuple of some tensor; modes selects which
  /// of its entries correspond to this indexer's dims, in order.
  [[nodiscard]] lnkey_t linearize_gather(std::span<const index_t> coords,
                                         std::span<const int> modes) const {
    SPARTA_ASSERT(modes.size() == dims_.size());
    lnkey_t key = 0;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      const index_t v = coords[static_cast<std::size_t>(modes[i])];
      SPARTA_ASSERT(v < dims_[i]);
      key += strides_[i] * v;
    }
    return key;
  }

  /// Inverse of linearize(); writes one index per mode into `out`.
  void delinearize(lnkey_t key, std::span<index_t> out) const {
    SPARTA_ASSERT(out.size() == dims_.size());
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      out[i] = static_cast<index_t>(key / strides_[i]);
      key %= strides_[i];
    }
  }

 private:
  std::vector<index_t> dims_;
  std::vector<lnkey_t> strides_;
  lnkey_t size_ = 1;
};

}  // namespace sparta
