#include "tensor/dense_tensor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace sparta {

DenseTensor DenseTensor::from_sparse(const SparseTensor& t) {
  DenseTensor d(t.dims());
  std::vector<index_t> c(static_cast<std::size_t>(t.order()));
  for (std::size_t n = 0; n < t.nnz(); ++n) {
    t.coords(n, c);
    d.at(c) += t.value(n);
  }
  return d;
}

SparseTensor DenseTensor::to_sparse(double cutoff) const {
  SparseTensor s(lin_.dims());
  std::vector<index_t> c(lin_.num_modes());
  for (lnkey_t k = 0; k < lin_.size(); ++k) {
    if (std::abs(data_[k]) > cutoff) {
      lin_.delinearize(k, c);
      s.append_unchecked(c, data_[k]);
    }
  }
  return s;
}

namespace {

// Complement of `modes` in [0, order), preserving ascending order.
Modes free_modes_of(int order, const Modes& modes) {
  std::vector<bool> is_contract(static_cast<std::size_t>(order), false);
  for (int m : modes) is_contract[static_cast<std::size_t>(m)] = true;
  Modes free;
  for (int m = 0; m < order; ++m) {
    if (!is_contract[static_cast<std::size_t>(m)]) free.push_back(m);
  }
  return free;
}

}  // namespace

DenseTensor contract_dense(const DenseTensor& x, const DenseTensor& y,
                           const Modes& cx, const Modes& cy) {
  SPARTA_CHECK(cx.size() == cy.size(),
               "contract mode sets must have equal arity");
  for (std::size_t i = 0; i < cx.size(); ++i) {
    SPARTA_CHECK(x.dims()[static_cast<std::size_t>(cx[i])] ==
                     y.dims()[static_cast<std::size_t>(cy[i])],
                 "contract mode sizes must match");
  }
  const Modes fx = free_modes_of(x.order(), cx);
  const Modes fy = free_modes_of(y.order(), cy);
  SPARTA_CHECK(!fx.empty() || !fy.empty(),
               "full contraction to a scalar is not representable as a "
               "tensor; keep at least one free mode");

  std::vector<index_t> zdims;
  for (int m : fx) zdims.push_back(x.dims()[static_cast<std::size_t>(m)]);
  for (int m : fy) zdims.push_back(y.dims()[static_cast<std::size_t>(m)]);
  std::vector<index_t> cdims;
  for (int m : cx) cdims.push_back(x.dims()[static_cast<std::size_t>(m)]);

  DenseTensor z(zdims);
  const LinearIndexer zlin(zdims);
  const LinearIndexer clin(cdims.empty() ? std::vector<index_t>{1} : cdims);

  std::vector<index_t> zc(zdims.size());
  std::vector<index_t> cc(std::max<std::size_t>(cdims.size(), 1));
  std::vector<index_t> xc(static_cast<std::size_t>(x.order()));
  std::vector<index_t> yc(static_cast<std::size_t>(y.order()));

  for (lnkey_t zk = 0; zk < zlin.size(); ++zk) {
    zlin.delinearize(zk, zc);
    value_t acc = 0;
    for (lnkey_t ck = 0; ck < clin.size(); ++ck) {
      clin.delinearize(ck, cc);
      for (std::size_t i = 0; i < fx.size(); ++i) {
        xc[static_cast<std::size_t>(fx[i])] = zc[i];
      }
      for (std::size_t i = 0; i < cx.size(); ++i) {
        xc[static_cast<std::size_t>(cx[i])] = cc[i];
      }
      for (std::size_t i = 0; i < fy.size(); ++i) {
        yc[static_cast<std::size_t>(fy[i])] = zc[fx.size() + i];
      }
      for (std::size_t i = 0; i < cy.size(); ++i) {
        yc[static_cast<std::size_t>(cy[i])] = cc[i];
      }
      acc += x.at(xc) * y.at(yc);
    }
    z.data()[zk] = acc;
  }
  return z;
}

}  // namespace sparta
