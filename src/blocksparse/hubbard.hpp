// Generator for Hubbard-2D-like block-structured sparse tensors.
//
// The Fig. 5 comparison uses tensors exported from ITensor's Hubbard-2D
// model (Table 4): high-order operands whose non-zeros cluster into
// small quantum-number blocks that are themselves sparse inside once
// values below the 1e-8 cutoff are dropped. This generator reproduces
// that structure synthetically: choose `num_blocks` occupied tiles, then
// fill each tile to `within_block_density`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta {

struct BlockStructureSpec {
  std::vector<index_t> dims;
  std::vector<index_t> block_dims;
  std::size_t num_blocks = 0;  ///< occupied tiles
  std::size_t nnz = 0;         ///< total non-zeros, spread over the tiles
  std::uint64_t seed = 7;
};

/// Generates an element-wise COO tensor with block structure (sorted).
[[nodiscard]] SparseTensor generate_block_structured(
    const BlockStructureSpec& spec);

/// One Table-4 SpTC case: the X and Y specs plus the contract modes.
struct HubbardCase {
  std::string label;                   ///< "SpTC1" … "SpTC10"
  BlockStructureSpec x;
  BlockStructureSpec y;
  Modes cx;
  Modes cy;
  // Paper-reported characteristics, for the Table 4 printout.
  std::vector<std::uint64_t> paper_x_dims;
  std::uint64_t paper_x_nnz = 0;
  std::uint64_t paper_x_blocks = 0;
  std::vector<std::uint64_t> paper_y_dims;
  std::uint64_t paper_y_nnz = 0;
  std::uint64_t paper_y_blocks = 0;
};

/// The ten Hubbard-2D contraction cases of Table 4, scaled for laptop
/// runs. Contract-mode choices pair equal-size modes of X and Y (the
/// table does not publish the exact mode lists; see DESIGN.md).
[[nodiscard]] const std::vector<HubbardCase>& hubbard_cases();

}  // namespace sparta
