// Block-sparse tensor: the storage scheme of quantum chemistry/physics
// libraries (ITensor, libtensor, TiledArray) that Fig. 5 compares
// element-wise Sparta against.
//
// The index space is tiled into uniform blocks; only non-zero blocks are
// stored, each as a dense row-major array. Contraction extracts matching
// block pairs and multiplies them densely — efficient when blocks are
// dense inside, wasteful when they are not (the paper's point).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "tensor/linearize.hpp"
#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta {

class BlockSparseTensor {
 public:
  /// `dims` = global mode sizes; `block_dims` = tile edge per mode
  /// (mode size need not divide evenly; edge blocks are clipped).
  BlockSparseTensor(std::vector<index_t> dims, std::vector<index_t> block_dims);

  [[nodiscard]] int order() const { return static_cast<int>(dims_.size()); }
  [[nodiscard]] const std::vector<index_t>& dims() const { return dims_; }
  [[nodiscard]] const std::vector<index_t>& block_dims() const {
    return block_dims_;
  }
  /// Number of blocks along each mode (ceil(dim / block_dim)).
  [[nodiscard]] const std::vector<index_t>& grid_dims() const {
    return grid_dims_;
  }

  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }

  /// Count of stored scalars (block volumes summed), zero or not.
  [[nodiscard]] std::size_t stored_scalars() const;

  /// Count of non-zero stored scalars.
  [[nodiscard]] std::size_t nnz(double cutoff = 0.0) const;

  [[nodiscard]] std::size_t footprint_bytes() const;

  /// Dense data of the block at block-grid coordinates `bc`, creating a
  /// zero block when absent.
  [[nodiscard]] std::vector<value_t>& block(std::span<const index_t> bc);

  /// Read-only lookup; nullptr when the block is absent.
  [[nodiscard]] const std::vector<value_t>* find_block(
      std::span<const index_t> bc) const;

  /// Actual (possibly clipped) extent of block `bc` along each mode.
  void block_extent(std::span<const index_t> bc,
                    std::span<index_t> out) const;

  /// Visits every stored block as (block coords, dense data).
  template <typename F>
  void for_each_block(F&& f) const {
    std::vector<index_t> bc(static_cast<std::size_t>(order()));
    for (const auto& [key, data] : blocks_) {
      grid_lin_.delinearize(key, bc);
      f(std::span<const index_t>(bc), data);
    }
  }

  /// Tiles a COO tensor; every non-zero lands in its enclosing block.
  [[nodiscard]] static BlockSparseTensor from_sparse(
      const SparseTensor& t, std::vector<index_t> block_dims);

  /// Extracts |v| > cutoff scalars back into sorted COO form.
  [[nodiscard]] SparseTensor to_sparse(double cutoff = 0.0) const;

  [[nodiscard]] const LinearIndexer& grid_indexer() const { return grid_lin_; }

 private:
  std::vector<index_t> dims_;
  std::vector<index_t> block_dims_;
  std::vector<index_t> grid_dims_;
  LinearIndexer grid_lin_;
  std::unordered_map<lnkey_t, std::vector<value_t>> blocks_;
};

}  // namespace sparta
