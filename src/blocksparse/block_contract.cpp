#include "blocksparse/block_contract.hpp"

#include <atomic>
#include <unordered_map>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace sparta {

namespace {

Modes complement(int order, const Modes& modes) {
  std::vector<bool> in(static_cast<std::size_t>(order), false);
  for (int m : modes) in[static_cast<std::size_t>(m)] = true;
  Modes out;
  for (int m = 0; m < order; ++m) {
    if (!in[static_cast<std::size_t>(m)]) out.push_back(m);
  }
  return out;
}

// Row-major strides for a block of extent `ext`.
std::vector<std::size_t> strides_of(std::span<const index_t> ext) {
  std::vector<std::size_t> s(ext.size(), 1);
  for (std::size_t m = ext.size(); m-- > 1;) {
    s[m - 1] = s[m] * ext[m];
  }
  return s;
}

// Offsets of every combination of the `modes` subset of a block, in
// row-major order of those modes' extents. Enables the micro-GEMM to
// address X[free, contract] and Y[contract, free] without per-scalar
// index arithmetic.
std::vector<std::size_t> offset_table(std::span<const index_t> ext,
                                      const std::vector<std::size_t>& strides,
                                      const Modes& modes) {
  std::size_t vol = 1;
  for (int m : modes) vol *= ext[static_cast<std::size_t>(m)];
  std::vector<std::size_t> table(vol);
  std::vector<index_t> idx(modes.size(), 0);
  for (std::size_t i = 0; i < vol; ++i) {
    std::size_t off = 0;
    for (std::size_t k = 0; k < modes.size(); ++k) {
      off += idx[k] * strides[static_cast<std::size_t>(modes[k])];
    }
    table[i] = off;
    // Odometer increment over the selected modes.
    for (std::size_t k = modes.size(); k-- > 0;) {
      if (++idx[k] < ext[static_cast<std::size_t>(modes[k])]) break;
      idx[k] = 0;
    }
  }
  return table;
}

}  // namespace

BlockSparseTensor contract_blocksparse(const BlockSparseTensor& x,
                                       const BlockSparseTensor& y,
                                       const Modes& cx, const Modes& cy,
                                       BlockContractStats* stats) {
  SPARTA_CHECK(cx.size() == cy.size(),
               "contract mode lists must have equal arity");
  for (std::size_t i = 0; i < cx.size(); ++i) {
    const auto xm = static_cast<std::size_t>(cx[i]);
    const auto ym = static_cast<std::size_t>(cy[i]);
    SPARTA_CHECK(x.dims()[xm] == y.dims()[ym],
                 "contract mode sizes must match");
    SPARTA_CHECK(x.block_dims()[xm] == y.block_dims()[ym],
                 "contract mode block tilings must match");
  }
  const Modes fx = complement(x.order(), cx);
  const Modes fy = complement(y.order(), cy);
  SPARTA_CHECK(!fx.empty() || !fy.empty(),
               "full contraction to a scalar needs at least one free mode");

  std::vector<index_t> zdims, zblock;
  for (int m : fx) {
    zdims.push_back(x.dims()[static_cast<std::size_t>(m)]);
    zblock.push_back(x.block_dims()[static_cast<std::size_t>(m)]);
  }
  for (int m : fy) {
    zdims.push_back(y.dims()[static_cast<std::size_t>(m)]);
    zblock.push_back(y.block_dims()[static_cast<std::size_t>(m)]);
  }
  BlockSparseTensor z(zdims, zblock);

  // Group Y blocks by contract block coordinates (block-level analog of
  // HtY: this is the inspector pass block-sparse libraries run).
  std::vector<index_t> ycdims;
  for (int m : cy) ycdims.push_back(y.grid_dims()[static_cast<std::size_t>(m)]);
  const LinearIndexer yclin(ycdims);
  struct YBlockRef {
    std::vector<index_t> bc;
    const std::vector<value_t>* data;
  };
  std::unordered_map<lnkey_t, std::vector<YBlockRef>> y_groups;
  y.for_each_block([&](std::span<const index_t> bc,
                       const std::vector<value_t>& data) {
    const lnkey_t key = yclin.linearize_gather(bc, cy);
    y_groups[key].push_back(
        YBlockRef{std::vector<index_t>(bc.begin(), bc.end()), &data});
  });

  // Snapshot X's blocks so the pair loop can be OpenMP-parallel
  // (mirroring Sparta's parallelism over X sub-tensors).
  struct XBlockRef {
    std::vector<index_t> bc;
    const std::vector<value_t>* data;
  };
  std::vector<XBlockRef> x_blocks;
  x_blocks.reserve(x.num_blocks());
  x.for_each_block([&](std::span<const index_t> bc,
                       const std::vector<value_t>& data) {
    x_blocks.push_back(
        XBlockRef{std::vector<index_t>(bc.begin(), bc.end()), &data});
  });

  BlockContractStats local;
  const auto yorder = static_cast<std::size_t>(y.order());
  const LinearIndexer zgrid_lin = z.grid_indexer();
  std::atomic<std::uint64_t> pairs{0};
  std::atomic<std::uint64_t> fmas{0};

  ExceptionCollector ec;
#pragma omp parallel
  {
    // Thread-local partial output blocks, merged serially afterwards.
    std::unordered_map<lnkey_t, std::vector<value_t>> zpart;
    std::vector<index_t> xext(static_cast<std::size_t>(x.order()));
    std::vector<index_t> yext(yorder);
    std::vector<index_t> zbc(zdims.size());
    std::vector<index_t> zext(zdims.size());
    std::uint64_t my_pairs = 0, my_fmas = 0;

#pragma omp for schedule(dynamic, 8)
    for (std::ptrdiff_t bi = 0;
         bi < static_cast<std::ptrdiff_t>(x_blocks.size()); ++bi) {
      ec.run([&] {
      const XBlockRef& xb = x_blocks[static_cast<std::size_t>(bi)];
      const lnkey_t key = yclin.linearize_gather(xb.bc, cx);
      const auto it = y_groups.find(key);
      if (it == y_groups.end()) return;
      const std::vector<value_t>& xdata = *xb.data;

      x.block_extent(xb.bc, xext);
      const auto xstr = strides_of(xext);
      const auto xf_off = offset_table(xext, xstr, fx);
      const auto xc_off = offset_table(xext, xstr, cx);

      for (const YBlockRef& yb : it->second) {
        y.block_extent(yb.bc, yext);
        const auto ystr = strides_of(yext);
        const auto yc_off = offset_table(yext, ystr, cy);
        const auto yf_off = offset_table(yext, ystr, fy);
        SPARTA_ASSERT(yc_off.size() == xc_off.size());

        for (std::size_t k = 0; k < fx.size(); ++k) {
          zbc[k] = xb.bc[static_cast<std::size_t>(fx[k])];
        }
        for (std::size_t k = 0; k < fy.size(); ++k) {
          zbc[fx.size() + k] = yb.bc[static_cast<std::size_t>(fy[k])];
        }
        auto& zdata = zpart[zgrid_lin.linearize(zbc)];
        if (zdata.empty()) {
          z.block_extent(zbc, zext);
          std::size_t vol = 1;
          for (index_t e : zext) vol *= e;
          zdata.assign(vol, value_t{0});
        }
        const std::vector<value_t>& ydata = *yb.data;

        // Dense micro-GEMM: Z[i,j] += Σ_k X[i,k] · Y[k,j]. Deliberately
        // no zero-skipping — block-sparse libraries hand whole blocks to
        // a dense BLAS kernel, which is exactly the wasted work
        // element-wise Sparta avoids on internally-sparse blocks
        // (Fig. 5).
        for (std::size_t i = 0; i < xf_off.size(); ++i) {
          const std::size_t zrow = i * yf_off.size();
          for (std::size_t k = 0; k < xc_off.size(); ++k) {
            const value_t xv = xdata[xf_off[i] + xc_off[k]];
            for (std::size_t j = 0; j < yf_off.size(); ++j) {
              zdata[zrow + j] += xv * ydata[yc_off[k] + yf_off[j]];
            }
          }
        }
        my_fmas += xf_off.size() * xc_off.size() * yf_off.size();
        ++my_pairs;
      }
      });
    }

    pairs += my_pairs;
    fmas += my_fmas;

    // Merge this thread's partial blocks into Z.
#pragma omp critical
    {
      ec.run([&] {
        std::vector<index_t> bc(zdims.size());
        for (auto& [zkey, part] : zpart) {
          zgrid_lin.delinearize(zkey, bc);
          auto& dst = z.block(bc);
          SPARTA_ASSERT(dst.size() == part.size());
          for (std::size_t i = 0; i < part.size(); ++i) dst[i] += part[i];
        }
      });
    }
  }
  ec.rethrow();

  local.block_pairs = pairs.load();
  local.fma_count = fmas.load();
  local.output_blocks = z.num_blocks();
  if (stats) *stats = local;
  return z;
}

}  // namespace sparta
