#include "blocksparse/block_tensor.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sparta {

namespace {

std::vector<index_t> grid_of(const std::vector<index_t>& dims,
                             const std::vector<index_t>& block_dims) {
  SPARTA_CHECK(dims.size() == block_dims.size(),
               "one block size per mode required");
  std::vector<index_t> grid(dims.size());
  for (std::size_t m = 0; m < dims.size(); ++m) {
    SPARTA_CHECK(block_dims[m] > 0, "block sizes must be positive");
    grid[m] = (dims[m] + block_dims[m] - 1) / block_dims[m];
  }
  return grid;
}

}  // namespace

BlockSparseTensor::BlockSparseTensor(std::vector<index_t> dims,
                                     std::vector<index_t> block_dims)
    : dims_(std::move(dims)),
      block_dims_(std::move(block_dims)),
      grid_dims_(grid_of(dims_, block_dims_)),
      grid_lin_(grid_dims_) {}

std::size_t BlockSparseTensor::stored_scalars() const {
  std::size_t n = 0;
  for (const auto& [key, data] : blocks_) n += data.size();
  return n;
}

std::size_t BlockSparseTensor::nnz(double cutoff) const {
  std::size_t n = 0;
  for (const auto& [key, data] : blocks_) {
    for (value_t v : data) {
      if (std::abs(v) > cutoff) ++n;
    }
  }
  return n;
}

std::size_t BlockSparseTensor::footprint_bytes() const {
  std::size_t bytes = blocks_.size() *
                      (sizeof(lnkey_t) + sizeof(std::vector<value_t>) + 16);
  for (const auto& [key, data] : blocks_) {
    bytes += data.capacity() * sizeof(value_t);
  }
  return bytes;
}

std::vector<value_t>& BlockSparseTensor::block(std::span<const index_t> bc) {
  const lnkey_t key = grid_lin_.linearize(bc);
  auto [it, inserted] = blocks_.try_emplace(key);
  if (inserted) {
    std::vector<index_t> ext(static_cast<std::size_t>(order()));
    block_extent(bc, ext);
    std::size_t vol = 1;
    for (index_t e : ext) vol *= e;
    it->second.assign(vol, value_t{0});
  }
  return it->second;
}

const std::vector<value_t>* BlockSparseTensor::find_block(
    std::span<const index_t> bc) const {
  const auto it = blocks_.find(grid_lin_.linearize(bc));
  return it == blocks_.end() ? nullptr : &it->second;
}

void BlockSparseTensor::block_extent(std::span<const index_t> bc,
                                     std::span<index_t> out) const {
  for (std::size_t m = 0; m < dims_.size(); ++m) {
    const index_t start = bc[m] * block_dims_[m];
    SPARTA_ASSERT(start < dims_[m]);
    out[m] = std::min<index_t>(block_dims_[m], dims_[m] - start);
  }
}

BlockSparseTensor BlockSparseTensor::from_sparse(
    const SparseTensor& t, std::vector<index_t> block_dims) {
  BlockSparseTensor b(t.dims(), std::move(block_dims));
  const auto order = static_cast<std::size_t>(t.order());
  std::vector<index_t> c(order);
  std::vector<index_t> bc(order);
  std::vector<index_t> within(order);
  std::vector<index_t> ext(order);
  for (std::size_t n = 0; n < t.nnz(); ++n) {
    t.coords(n, c);
    for (std::size_t m = 0; m < order; ++m) {
      bc[m] = c[m] / b.block_dims_[m];
      within[m] = c[m] % b.block_dims_[m];
    }
    auto& data = b.block(bc);
    b.block_extent(bc, ext);
    std::size_t off = 0;
    for (std::size_t m = 0; m < order; ++m) off = off * ext[m] + within[m];
    data[off] += t.value(n);
  }
  return b;
}

SparseTensor BlockSparseTensor::to_sparse(double cutoff) const {
  SparseTensor out(dims_);
  const auto order = static_cast<std::size_t>(this->order());
  std::vector<index_t> bc(order);
  std::vector<index_t> ext(order);
  std::vector<index_t> within(order);
  std::vector<index_t> c(order);
  for (const auto& [key, data] : blocks_) {
    grid_lin_.delinearize(key, bc);
    block_extent(bc, ext);
    for (std::size_t off = 0; off < data.size(); ++off) {
      if (std::abs(data[off]) <= cutoff) continue;
      std::size_t rem = off;
      for (std::size_t m = order; m-- > 0;) {
        within[m] = static_cast<index_t>(rem % ext[m]);
        rem /= ext[m];
      }
      for (std::size_t m = 0; m < order; ++m) {
        c[m] = bc[m] * block_dims_[m] + within[m];
      }
      out.append_unchecked(c, data[off]);
    }
  }
  out.sort();
  return out;
}

}  // namespace sparta
