// Block-sparse tensor contraction.
//
// The strategy of ITensor-class libraries: match block pairs on their
// contract block coordinates, then multiply each pair with a dense
// micro-GEMM. Cost scales with stored block volume — not with actual
// non-zeros — which is exactly why element-wise Sparta overtakes it on
// data whose blocks are internally sparse (Fig. 5).
#pragma once

#include "blocksparse/block_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta {

struct BlockContractStats {
  std::size_t block_pairs = 0;    ///< matched (X block, Y block) pairs
  std::size_t fma_count = 0;      ///< dense multiply-adds executed
  std::size_t output_blocks = 0;
};

/// Z = X ×_{cx}^{cy} Y at block granularity. Block tilings of contracted
/// modes must agree between X and Y. Output modes: free X then free Y
/// (same convention as sparta::contract).
[[nodiscard]] BlockSparseTensor contract_blocksparse(
    const BlockSparseTensor& x, const BlockSparseTensor& y, const Modes& cx,
    const Modes& cy, BlockContractStats* stats = nullptr);

}  // namespace sparta
