#include "blocksparse/hubbard.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "tensor/linearize.hpp"

namespace sparta {

SparseTensor generate_block_structured(const BlockStructureSpec& spec) {
  SPARTA_CHECK(spec.dims.size() == spec.block_dims.size(),
               "one block size per mode required");
  SPARTA_CHECK(spec.num_blocks > 0 && spec.nnz > 0,
               "need positive block and non-zero counts");

  const std::size_t order = spec.dims.size();
  std::vector<index_t> grid(order);
  std::vector<index_t> ext(order);
  lnkey_t grid_capacity = 1;
  std::size_t block_vol = 1;
  for (std::size_t m = 0; m < order; ++m) {
    SPARTA_CHECK(spec.block_dims[m] > 0 && spec.block_dims[m] <= spec.dims[m],
                 "block size must be in [1, dim]");
    grid[m] = (spec.dims[m] + spec.block_dims[m] - 1) / spec.block_dims[m];
    grid_capacity *= grid[m];
    block_vol *= spec.block_dims[m];
  }
  SPARTA_CHECK(spec.num_blocks <= grid_capacity,
               "num_blocks exceeds the block grid capacity");
  SPARTA_CHECK(spec.nnz <= spec.num_blocks * block_vol,
               "nnz exceeds the occupied tiles' capacity");

  Rng rng(spec.seed);
  const LinearIndexer grid_lin(grid);

  // Pick the occupied tiles.
  std::vector<lnkey_t> tiles;
  {
    std::unordered_set<lnkey_t> seen;
    seen.reserve(spec.num_blocks * 2);
    while (tiles.size() < spec.num_blocks) {
      const lnkey_t k = rng.uniform(grid_capacity);
      if (seen.insert(k).second) tiles.push_back(k);
    }
  }

  // Spread the non-zeros evenly across tiles (remainder to the first
  // tiles), drawing distinct cells inside each.
  SparseTensor t(spec.dims);
  t.reserve(spec.nnz);
  const std::size_t base = spec.nnz / spec.num_blocks;
  const std::size_t extra = spec.nnz % spec.num_blocks;

  std::vector<index_t> bc(order);
  std::vector<index_t> c(order);
  std::unordered_set<std::size_t> cells;
  for (std::size_t b = 0; b < tiles.size(); ++b) {
    grid_lin.delinearize(tiles[b], bc);
    std::size_t vol = 1;
    for (std::size_t m = 0; m < order; ++m) {
      const index_t start = bc[m] * spec.block_dims[m];
      ext[m] = std::min<index_t>(spec.block_dims[m], spec.dims[m] - start);
      vol *= ext[m];
    }
    std::size_t want = base + (b < extra ? 1 : 0);
    want = std::min(want, vol);  // clipped edge tiles may be smaller
    cells.clear();
    while (cells.size() < want) {
      cells.insert(static_cast<std::size_t>(rng.uniform(vol)));
    }
    for (std::size_t cell : cells) {
      std::size_t rem = cell;
      for (std::size_t m = order; m-- > 0;) {
        c[m] = bc[m] * spec.block_dims[m] +
               static_cast<index_t>(rem % ext[m]);
        rem /= ext[m];
      }
      // Values bounded away from 0 so no cutoff can drop them.
      const double mag = 0.1 + 0.9 * rng.uniform_double();
      t.append_unchecked(c, rng.uniform_double() < 0.5 ? mag : -mag);
    }
  }
  t.sort();
  return t;
}

namespace {

// Block edge used for every mode: 4 for tileable modes, the whole mode
// otherwise (mirroring small quantum-number sectors).
std::vector<index_t> block_edges(const std::vector<index_t>& dims) {
  std::vector<index_t> b(dims.size());
  for (std::size_t m = 0; m < dims.size(); ++m) {
    b[m] = dims[m] >= 8 ? 4 : dims[m];
  }
  return b;
}

lnkey_t grid_capacity_of(const std::vector<index_t>& dims,
                         const std::vector<index_t>& block) {
  lnkey_t cap = 1;
  for (std::size_t m = 0; m < dims.size(); ++m) {
    cap *= (dims[m] + block[m] - 1) / block[m];
  }
  return cap;
}

struct Table4Row {
  std::vector<std::uint64_t> x_dims;
  std::uint64_t x_nnz, x_blocks;
  std::vector<std::uint64_t> y_dims;
  std::uint64_t y_nnz, y_blocks;
};

HubbardCase make_case(int id, const Table4Row& row) {
  HubbardCase c;
  c.label = "SpTC" + std::to_string(id);
  c.paper_x_dims = row.x_dims;
  c.paper_x_nnz = row.x_nnz;
  c.paper_x_blocks = row.x_blocks;
  c.paper_y_dims = row.y_dims;
  c.paper_y_nnz = row.y_nnz;
  c.paper_y_blocks = row.y_blocks;

  auto to_index = [](const std::vector<std::uint64_t>& v) {
    std::vector<index_t> out;
    for (auto d : v) out.push_back(static_cast<index_t>(d));
    return out;
  };
  c.x.dims = to_index(row.x_dims);
  c.x.block_dims = block_edges(c.x.dims);
  c.x.nnz = row.x_nnz;
  c.x.num_blocks = static_cast<std::size_t>(std::min<lnkey_t>(
      row.x_blocks, grid_capacity_of(c.x.dims, c.x.block_dims) * 4 / 5));
  c.x.seed = 1000 + static_cast<std::uint64_t>(id);

  c.y.dims = to_index(row.y_dims);
  c.y.block_dims = block_edges(c.y.dims);
  c.y.nnz = row.y_nnz;
  c.y.num_blocks = static_cast<std::size_t>(std::min<lnkey_t>(
      row.y_blocks, grid_capacity_of(c.y.dims, c.y.block_dims) * 4 / 5));
  c.y.seed = 2000 + static_cast<std::uint64_t>(id);

  // Contract modes (Table 4 omits the lists): Y's modes {0, 2} — its
  // leading 24/36 mode and one size-4 mode — against the matching modes
  // of X: the X mode equal to Y's dim 0, and the last size-4 mode of X.
  const index_t y0 = c.y.dims[0];
  int x_big = -1;
  for (int m = 0; m < static_cast<int>(c.x.dims.size()); ++m) {
    if (c.x.dims[static_cast<std::size_t>(m)] == y0) x_big = m;
  }
  SPARTA_CHECK(x_big >= 0, "no X mode matches Y's leading mode size");
  int x_small = -1;
  for (int m = static_cast<int>(c.x.dims.size()) - 1; m >= 0; --m) {
    if (m != x_big && c.x.dims[static_cast<std::size_t>(m)] == 4) {
      x_small = m;
      break;
    }
  }
  SPARTA_CHECK(x_small >= 0, "no size-4 X mode available to contract");
  c.cx = {x_big, x_small};
  c.cy = {0, 2};
  return c;
}

std::vector<HubbardCase> build_cases() {
  const std::vector<Table4Row> rows = {
      {{129, 4, 184, 24, 4}, 109287, 10453, {24, 36, 4, 4}, 360, 218},
      {{129, 4, 184, 24, 4}, 114877, 12044, {24, 36, 4, 4}, 360, 218},
      {{4, 129, 184, 24, 4}, 114877, 12044, {24, 36, 4, 4}, 360, 218},
      {{4, 131, 4, 24, 413}, 262218, 12345, {24, 36, 4, 4}, 360, 218},
      {{131, 4, 413, 36, 4}, 377629, 17594, {36, 24, 4, 4}, 360, 218},
      {{4, 131, 4, 24, 413}, 268813, 13288, {24, 36, 4, 4}, 360, 218},
      {{131, 4, 413, 36, 4}, 388132, 19367, {36, 24, 4, 4}, 360, 218},
      {{4, 4, 131, 24, 413}, 268813, 13288, {24, 36, 4, 4}, 360, 218},
      {{4, 131, 413, 36, 4}, 388132, 19367, {36, 24, 4, 4}, 360, 218},
      {{4, 110, 4, 36, 486}, 396193, 17152, {36, 24, 4, 4}, 360, 218},
  };
  std::vector<HubbardCase> cases;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    cases.push_back(make_case(static_cast<int>(i) + 1, rows[i]));
  }
  return cases;
}

}  // namespace

const std::vector<HubbardCase>& hubbard_cases() {
  static const std::vector<HubbardCase> kCases = build_cases();
  return kCases;
}

}  // namespace sparta
