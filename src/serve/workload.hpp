// Deterministic workload scripts for the contraction service.
//
// A workload is a line-oriented script (one op per line, '#' comments):
//
//   load <name> <path>                    # .tns (text) or .sptn (binary)
//   gen <name> dims=AxBxC nnz=N [seed=S] [skew=F]
//   contract <z> <x> <y> cx=0,1 cy=0,1 [repeat=N] [variant=V]
//            [deadline_ms=D] [retries=R] [store]
//   drop <name>
//
// Execution model: consecutive `contract` lines form a batch that is
// expanded by `repeat` and submitted concurrently by N closed-loop
// client threads (client k issues requests k, k+N, ... and waits for
// each before issuing the next). Any structural op — load, gen, drop,
// or a contract carrying `store` — is a barrier: the batch drains
// first, so scripts read top-to-bottom deterministically regardless of
// client count. `variant` pins the algorithm (spa | coohta | sparta);
// without it the adaptive selector decides. `deadline_ms` gives each
// request an end-to-end deadline (queue wait included); `retries` lets
// the client resubmit a deadline-exceeded or shed request up to R
// times, with exponential backoff and deterministic jitter between
// attempts.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "serve/service.hpp"
#include "tensor/generators.hpp"

namespace sparta::serve {

struct WorkloadOp {
  enum class Kind { kLoad, kGen, kContract, kDrop };
  Kind kind = Kind::kContract;
  std::string name;  ///< target tensor (load/gen/drop) or Z (contract)
  std::string path;  ///< load only
  GeneratorSpec gen; ///< gen only
  ServeRequest request;  ///< contract only (store_as = name iff store)
  int repeat = 1;        ///< contract only
  int retries = 0;       ///< contract only: max client resubmissions
  int line = 0;          ///< 1-based script line, for diagnostics
};

/// Parses a script; throws sparta::Error naming the offending line.
[[nodiscard]] std::vector<WorkloadOp> parse_workload(std::istream& in);
[[nodiscard]] std::vector<WorkloadOp> parse_workload_file(
    const std::string& path);

struct WorkloadOptions {
  int clients = 1;  ///< concurrent closed-loop submitters
};

struct WorkloadResult {
  /// One report per expanded contract request, in submission order.
  std::vector<ServeReport> reports;
  double wall_seconds = 0.0;
};

/// Runs the script against `svc`. Throws sparta::Error on structural
/// failures (unreadable file, over-budget load); per-request failures
/// land in their reports instead.
[[nodiscard]] WorkloadResult run_workload(
    ContractionService& svc, const std::vector<WorkloadOp>& ops,
    const WorkloadOptions& opts = {});

}  // namespace sparta::serve
