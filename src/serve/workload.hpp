// Deterministic workload scripts for the contraction service.
//
// A workload is a line-oriented script (one op per line, '#' comments):
//
//   load <name> <path>                    # .tns (text) or .sptn (binary)
//   gen <name> dims=AxBxC nnz=N [seed=S] [skew=F]
//   contract <z> <x> <y> cx=0,1 cy=0,1 [repeat=N] [variant=V]
//            [deadline_ms=D] [retries=R] [store]
//   network <Z>[i,l] = <A>[i,j] * <B>[j,k] [repeat=N] [deadline_ms=D]
//           [store]
//   drop <name>
//
// Execution model: consecutive `contract` lines form a batch that is
// expanded by `repeat` and submitted concurrently by N closed-loop
// client threads (client k issues requests k, k+N, ... and waits for
// each before issuing the next). Any structural op — load, gen, drop,
// or a contract carrying `store` — is a barrier: the batch drains
// first, so scripts read top-to-bottom deterministically regardless of
// client count. A `network` line is a multi-step contraction over the
// expression IR (src/plan/ir.hpp): the serving layer only tokenizes it
// here — parsing, order search and execution happen in the network
// runner the embedding tool injects (WorkloadOptions::network_runner),
// keeping the serve -> plan layering acyclic. Network lines are
// barriers. `variant` pins the algorithm (spa | coohta | sparta);
// without it the adaptive selector decides. `deadline_ms` gives each
// request an end-to-end deadline (queue wait included); `retries` lets
// the client resubmit a deadline-exceeded or shed request up to R
// times, with exponential backoff and deterministic jitter between
// attempts.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/service.hpp"
#include "tensor/generators.hpp"

namespace sparta::serve {

struct WorkloadOp {
  enum class Kind { kLoad, kGen, kContract, kNetwork, kDrop };
  Kind kind = Kind::kContract;
  std::string name;  ///< target tensor (load/gen/drop) or Z (contract)
  std::string path;  ///< load only
  GeneratorSpec gen; ///< gen only
  ServeRequest request;  ///< contract only (store_as = name iff store)
  int repeat = 1;        ///< contract/network only
  int retries = 0;       ///< contract only: max client resubmissions
  int line = 0;          ///< 1-based script line, for diagnostics
  /// network only: the expression text ("Z[i,l] = A[i,j] * B[j,l]"),
  /// whitespace-normalized but NOT validated here (the runner parses).
  std::string network;
  bool network_store = false;  ///< register the result under its name
  double network_deadline_ms = 0.0;
};

/// Parses a script; throws sparta::Error naming the offending line.
[[nodiscard]] std::vector<WorkloadOp> parse_workload(std::istream& in);
[[nodiscard]] std::vector<WorkloadOp> parse_workload_file(
    const std::string& path);

/// One `network` statement handed to the injected runner.
struct NetworkRequest {
  std::string expr;
  bool store = false;
  double deadline_ms = 0.0;
};

/// Executes one network statement, returning the per-step reports in
/// step order (a failed run returns what completed plus an error-bearing
/// report). Injected by the embedding tool (tools/sparta_serve wires
/// plan::PlanExecutor); run_workload throws when a script contains
/// `network` lines but no runner is installed.
using NetworkRunner = std::function<std::vector<ServeReport>(
    ContractionService&, const NetworkRequest&)>;

struct WorkloadOptions {
  int clients = 1;  ///< concurrent closed-loop submitters
  NetworkRunner network_runner;
};

struct WorkloadResult {
  /// One report per expanded contract request, in submission order.
  std::vector<ServeReport> reports;
  double wall_seconds = 0.0;
};

/// Runs the script against `svc`. Throws sparta::Error on structural
/// failures (unreadable file, over-budget load); per-request failures
/// land in their reports instead.
[[nodiscard]] WorkloadResult run_workload(
    ContractionService& svc, const std::vector<WorkloadOp>& ops,
    const WorkloadOptions& opts = {});

}  // namespace sparta::serve
