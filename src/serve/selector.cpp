#include "serve/selector.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "contraction/estimators.hpp"
#include "obs/exposition.hpp"
#include "obs/json.hpp"
#include "obs/json_parse.hpp"
#include "obs/metrics.hpp"

namespace sparta::serve {

namespace {

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void write_variant_stats(obs::JsonWriter& w,
                         const VariantSelector::VariantStats& s) {
  w.begin_object();
  w.key("runs").value(s.runs);
  w.key("seeded").value(s.seeded);
  w.key("ewma_seconds_per_work").value(s.ewma_seconds_per_work);
  w.end_object();
}

}  // namespace

void SelectorConfig::validate() const {
  SPARTA_CHECK(explore_period >= 0,
               "selector explore_period (--explore-period) must be >= 0 "
               "(0 disables exploration), got " +
                   std::to_string(explore_period));
  SPARTA_CHECK(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
               "selector ewma_alpha (--ewma-alpha) must be in (0, 1], "
               "got " + std::to_string(ewma_alpha));
}

VariantSelector::VariantSelector(SelectorConfig cfg)
    : cfg_(std::move(cfg)) {
  cfg_.validate();
  if (!cfg_.model.empty()) {
    model_ = CostModel::load_file(cfg_.model);
  }
  if (!cfg_.state_path.empty()) {
    std::ifstream in(cfg_.state_path);
    if (in.good()) {
      std::stringstream ss;
      ss << in.rdbuf();
      load_state_json(ss.str());
    }
  }
}

std::size_t VariantSelector::slot(Algorithm a) {
  for (std::size_t i = 0; i < kVariants.size(); ++i) {
    if (kVariants[i] == a) return i;
  }
  throw Error("variant selector does not manage algorithm " +
              std::string(algorithm_name(a)));
}

VariantSelector::KeyState& VariantSelector::key_state_locked(
    const std::string& key) {
  return keys_[key];
}

// Learned cold start: initialize every never-run, never-seeded variant
// the model covers with its predicted seconds-per-work, so the exploit
// path can rank variants before any of them has executed. A seed is a
// prior, not an observation: runs stays 0, and the first real
// measurement blends into it with the normal EWMA alpha.
void VariantSelector::seed_from_model_locked(KeyState& ks,
                                             const RequestFeatures& f) {
  const std::size_t work =
      std::max<std::size_t>(f.nnz_x + f.nnz_y, 1);
  for (std::size_t i = 0; i < kVariants.size(); ++i) {
    VariantStats& s = ks.stats[i];
    if (s.runs > 0 || s.seeded || !model_.has(kVariants[i])) continue;
    s.ewma_seconds_per_work =
        model_.predict_seconds(kVariants[i], f.cost_features()) /
        static_cast<double>(work);
    s.seeded = true;
    SPARTA_COUNTER_ADD("serve.selector.model_seed", 1);
  }
}

Algorithm VariantSelector::choose(const RequestFeatures& f) {
  std::lock_guard<std::mutex> lk(mu_);
  ++decisions_;

  // A retained plan means HtY already exists — any other variant would
  // throw away the cache's whole point.
  if (f.plan_cached) {
    SPARTA_COUNTER_ADD("serve.selector.cached_plan", 1);
    return Algorithm::kSparta;
  }

  // Feasibility: drop HtY+HtA when Eq. 5 alone cannot fit the
  // remaining budget (the two COO variants carry no HtY).
  std::vector<Algorithm> feasible(kVariants.begin(), kVariants.end());
  if (f.budget_remaining != 0) {
    const std::size_t est = estimate_hty_bytes(
        f.nnz_y, f.order_y,
        pow2_at_least(std::max<std::size_t>(f.nnz_y, 1)));
    if (est > f.budget_remaining) {
      feasible.erase(
          std::remove(feasible.begin(), feasible.end(),
                      Algorithm::kSparta),
          feasible.end());
    }
  }
  if (feasible.empty()) feasible.push_back(Algorithm::kSpa);

  KeyState& ks = key_state_locked(f.key);
  if (!model_.empty()) seed_from_model_locked(ks, f);

  // Seed: any feasible variant this key has neither run nor had seeded
  // by the model is tried first, so the EWMAs start from real
  // observations, not optimism constants. With a loaded model covering
  // every variant this loop never fires — that is the learned prior
  // replacing the cold-start exploration.
  for (Algorithm a : feasible) {
    const VariantStats& s = ks.stats[slot(a)];
    if (s.runs == 0 && !s.seeded) {
      ++explored_;
      SPARTA_COUNTER_ADD("serve.selector.explore", 1);
      return a;
    }
  }

  // Deterministic exploration: every Nth decision rotates through the
  // feasible set so a variant that got slow (or fast) since its last
  // run cannot be starved forever.
  if (cfg_.explore_period > 0 &&
      decisions_ % static_cast<std::uint64_t>(cfg_.explore_period) == 0) {
    ++explored_;
    SPARTA_COUNTER_ADD("serve.selector.explore", 1);
    const std::uint64_t round =
        decisions_ / static_cast<std::uint64_t>(cfg_.explore_period);
    return feasible[static_cast<std::size_t>(round % feasible.size())];
  }

  // Exploit: lowest observed (or model-seeded) seconds-per-unit-work
  // for this key.
  Algorithm best = feasible.front();
  double best_cost = ks.stats[slot(best)].ewma_seconds_per_work;
  for (Algorithm a : feasible) {
    const double cost = ks.stats[slot(a)].ewma_seconds_per_work;
    if (cost < best_cost) {
      best = a;
      best_cost = cost;
    }
  }
  SPARTA_COUNTER_ADD("serve.selector.exploit", 1);
  return best;
}

void VariantSelector::record(const std::string& key, Algorithm a,
                             double seconds, std::size_t work) {
  const double per_work =
      seconds / static_cast<double>(std::max<std::size_t>(work, 1));
  const auto blend = [this, per_work](VariantStats& s) {
    if (s.runs == 0 && !s.seeded) {
      s.ewma_seconds_per_work = per_work;
    } else {
      s.ewma_seconds_per_work =
          cfg_.ewma_alpha * per_work +
          (1.0 - cfg_.ewma_alpha) * s.ewma_seconds_per_work;
    }
    ++s.runs;
  };
  {
    std::lock_guard<std::mutex> lk(mu_);
    blend(key_state_locked(key).stats[slot(a)]);
    blend(stats_[slot(a)]);
  }
  // Latency distribution per variant; dynamic name, so go through the
  // registry directly instead of the literal-keyed macro.
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::global()
        .histogram("serve.variant_us." +
                   std::string(algorithm_name(a)))
        .record(static_cast<std::uint64_t>(seconds * 1e6));
  }
}

void VariantSelector::set_model(CostModel model) {
  std::lock_guard<std::mutex> lk(mu_);
  model_ = std::move(model);
}

std::string VariantSelector::model_id() const {
  std::lock_guard<std::mutex> lk(mu_);
  return model_.id();
}

bool VariantSelector::has_model() const {
  std::lock_guard<std::mutex> lk(mu_);
  return !model_.empty();
}

double VariantSelector::predicted_seconds(const RequestFeatures& f,
                                          Algorithm a) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (model_.empty() || !model_.has(a)) return 0.0;
  return model_.predict_seconds(a, f.cost_features());
}

VariantSelector::VariantStats VariantSelector::variant_stats(
    Algorithm a) const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_[slot(a)];
}

VariantSelector::VariantStats VariantSelector::key_stats(
    const std::string& key, Algorithm a) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = keys_.find(key);
  if (it == keys_.end()) return {};
  return it->second.stats[slot(a)];
}

std::string VariantSelector::stats_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  obs::JsonWriter w;
  w.begin_object();
  w.key("decisions").value(decisions_);
  w.key("explored").value(explored_);
  w.key("model_id").value(std::string_view(model_.id()));
  w.key("keys").value(static_cast<std::uint64_t>(keys_.size()));
  w.key("variants").begin_object();
  for (std::size_t i = 0; i < kVariants.size(); ++i) {
    w.key(algorithm_name(kVariants[i]));
    write_variant_stats(w, stats_[i]);
  }
  w.end_object();
  w.key("per_key").begin_object();
  for (const auto& [key, ks] : keys_) {
    w.key(key).begin_object();
    for (std::size_t i = 0; i < kVariants.size(); ++i) {
      const VariantStats& s = ks.stats[i];
      if (s.runs == 0 && !s.seeded) continue;
      w.key(algorithm_name(kVariants[i]));
      write_variant_stats(w, s);
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

std::string VariantSelector::prometheus_text() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  const auto scalar = [&out](const char* kind, const std::string& name,
                             double v) {
    out += "# TYPE " + name + " " + kind + "\n" + name + " ";
    obs::detail::prometheus_number(out, v);
    out += "\n";
  };
  scalar("counter", "sparta_selector_decisions",
         static_cast<double>(decisions_));
  scalar("counter", "sparta_selector_explored",
         static_cast<double>(explored_));
  scalar("gauge", "sparta_selector_keys",
         static_cast<double>(keys_.size()));
  // Which brain makes decisions: an info-style sample whose labels name
  // the active model (or the analytic prior), so a scrape can join any
  // other series against the deciding model id.
  out += "# TYPE sparta_selector_model_info gauge\n";
  out += "sparta_selector_model_info{model_id=\"" + model_.id() +
         "\",prior=\"" +
         (model_.empty() ? std::string("analytic")
                         : std::string("learned")) +
         "\"} 1\n";
  out += "# TYPE sparta_selector_variant_runs counter\n";
  for (std::size_t i = 0; i < kVariants.size(); ++i) {
    out += "sparta_selector_variant_runs{variant=\"" +
           std::string(algorithm_name(kVariants[i])) + "\"} ";
    obs::detail::prometheus_number(
        out, static_cast<double>(stats_[i].runs));
    out += "\n";
  }
  out += "# TYPE sparta_selector_variant_ewma_seconds_per_work gauge\n";
  for (std::size_t i = 0; i < kVariants.size(); ++i) {
    out += "sparta_selector_variant_ewma_seconds_per_work{variant=\"" +
           std::string(algorithm_name(kVariants[i])) + "\"} ";
    obs::detail::prometheus_number(out, stats_[i].ewma_seconds_per_work);
    out += "\n";
  }
  return out;
}

std::string VariantSelector::state_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  obs::JsonWriter w;
  w.begin_object();
  w.key("version").value(1);
  w.key("model_id").value(std::string_view(model_.id()));
  w.key("decisions").value(decisions_);
  w.key("explored").value(explored_);
  w.key("global").begin_object();
  for (std::size_t i = 0; i < kVariants.size(); ++i) {
    w.key(algorithm_name(kVariants[i]));
    write_variant_stats(w, stats_[i]);
  }
  w.end_object();
  w.key("keys").begin_object();
  for (const auto& [key, ks] : keys_) {
    w.key(key).begin_object();
    for (std::size_t i = 0; i < kVariants.size(); ++i) {
      const VariantStats& s = ks.stats[i];
      if (s.runs == 0 && !s.seeded) continue;
      w.key(algorithm_name(kVariants[i]));
      write_variant_stats(w, s);
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

void VariantSelector::load_state_json(const std::string& doc) {
  const std::optional<obs::JsonValue> root = obs::json_parse(doc);
  if (!root || !root->is_object()) {
    throw Error("selector state: not a JSON object");
  }
  const obs::JsonValue* v = root->get("version");
  if (v == nullptr || v->number_or(0) != 1) {
    throw Error("selector state: missing or unsupported version");
  }
  const auto read_stats = [](const obs::JsonValue& entry,
                             VariantStats& out) {
    out.runs = static_cast<std::uint64_t>(
        entry.get("runs") ? entry.get("runs")->number_or(0) : 0);
    out.seeded =
        entry.get("seeded") != nullptr &&
        entry.get("seeded")->bool_or(false);
    out.ewma_seconds_per_work =
        entry.get("ewma_seconds_per_work")
            ? entry.get("ewma_seconds_per_work")->number_or(0.0)
            : 0.0;
  };

  std::lock_guard<std::mutex> lk(mu_);
  const std::string snap_model =
      root->get("model_id") ? root->get("model_id")->string_or("") : "";
  // A snapshot taken under a different brain: its observations are
  // still real, but pure seeds (runs == 0) were that model's opinions,
  // not measurements — drop them so the current prior re-seeds.
  const bool stale_seeds = snap_model != model_.id();
  decisions_ = static_cast<std::uint64_t>(
      root->get("decisions") ? root->get("decisions")->number_or(0) : 0);
  explored_ = static_cast<std::uint64_t>(
      root->get("explored") ? root->get("explored")->number_or(0) : 0);
  if (const obs::JsonValue* g = root->get("global")) {
    for (std::size_t i = 0; i < kVariants.size(); ++i) {
      if (const obs::JsonValue* e = g->get(algorithm_name(kVariants[i]))) {
        read_stats(*e, stats_[i]);
      }
    }
  }
  keys_.clear();
  if (const obs::JsonValue* ks = root->get("keys")) {
    if (!ks->is_object()) throw Error("selector state: 'keys' not an object");
    for (const auto& [key, entry] : ks->obj) {
      KeyState& state = keys_[key];
      for (std::size_t i = 0; i < kVariants.size(); ++i) {
        if (const obs::JsonValue* e =
                entry.get(algorithm_name(kVariants[i]))) {
          read_stats(*e, state.stats[i]);
          if (stale_seeds && state.stats[i].runs == 0) {
            state.stats[i] = {};
          }
        }
      }
    }
  }
}

bool VariantSelector::save_state() const {
  if (cfg_.state_path.empty()) return true;
  const std::string doc = state_json();
  std::FILE* f = std::fopen(cfg_.state_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "sparta: cannot write selector state '%s'\n",
                 cfg_.state_path.c_str());
    return false;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace sparta::serve
