#include "serve/selector.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "contraction/estimators.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace sparta::serve {

namespace {

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::size_t VariantSelector::slot(Algorithm a) {
  for (std::size_t i = 0; i < kVariants.size(); ++i) {
    if (kVariants[i] == a) return i;
  }
  throw Error("variant selector does not manage algorithm " +
              std::string(algorithm_name(a)));
}

Algorithm VariantSelector::choose(const RequestFeatures& f) {
  std::lock_guard<std::mutex> lk(mu_);
  ++decisions_;

  // A retained plan means HtY already exists — any other variant would
  // throw away the cache's whole point.
  if (f.plan_cached) {
    SPARTA_COUNTER_ADD("serve.selector.cached_plan", 1);
    return Algorithm::kSparta;
  }

  // Feasibility: drop HtY+HtA when Eq. 5 alone cannot fit the
  // remaining budget (the two COO variants carry no HtY).
  std::vector<Algorithm> feasible(kVariants.begin(), kVariants.end());
  if (f.budget_remaining != 0) {
    const std::size_t est = estimate_hty_bytes(
        f.nnz_y, f.order_y,
        pow2_at_least(std::max<std::size_t>(f.nnz_y, 1)));
    if (est > f.budget_remaining) {
      feasible.erase(
          std::remove(feasible.begin(), feasible.end(),
                      Algorithm::kSparta),
          feasible.end());
    }
  }
  if (feasible.empty()) feasible.push_back(Algorithm::kSpa);

  // Seed: any feasible variant that never ran is tried first, so the
  // EWMAs start from real observations, not optimism constants.
  for (Algorithm a : feasible) {
    if (stats_[slot(a)].runs == 0) {
      ++explored_;
      SPARTA_COUNTER_ADD("serve.selector.explore", 1);
      return a;
    }
  }

  // Deterministic exploration: every Nth decision rotates through the
  // feasible set so a variant that got slow (or fast) since its last
  // run cannot be starved forever.
  if (cfg_.explore_period > 0 &&
      decisions_ % static_cast<std::uint64_t>(cfg_.explore_period) == 0) {
    ++explored_;
    SPARTA_COUNTER_ADD("serve.selector.explore", 1);
    const std::uint64_t round =
        decisions_ / static_cast<std::uint64_t>(cfg_.explore_period);
    return feasible[static_cast<std::size_t>(round % feasible.size())];
  }

  // Exploit: lowest observed seconds-per-unit-work.
  Algorithm best = feasible.front();
  double best_cost = stats_[slot(best)].ewma_seconds_per_work;
  for (Algorithm a : feasible) {
    const double cost = stats_[slot(a)].ewma_seconds_per_work;
    if (cost < best_cost) {
      best = a;
      best_cost = cost;
    }
  }
  SPARTA_COUNTER_ADD("serve.selector.exploit", 1);
  return best;
}

void VariantSelector::record(Algorithm a, double seconds,
                             std::size_t work) {
  const double per_work =
      seconds / static_cast<double>(std::max<std::size_t>(work, 1));
  {
    std::lock_guard<std::mutex> lk(mu_);
    VariantStats& s = stats_[slot(a)];
    if (s.runs == 0) {
      s.ewma_seconds_per_work = per_work;
    } else {
      s.ewma_seconds_per_work =
          cfg_.ewma_alpha * per_work +
          (1.0 - cfg_.ewma_alpha) * s.ewma_seconds_per_work;
    }
    ++s.runs;
  }
  // Latency distribution per variant; dynamic name, so go through the
  // registry directly instead of the literal-keyed macro.
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry::global()
        .histogram("serve.variant_us." +
                   std::string(algorithm_name(a)))
        .record(static_cast<std::uint64_t>(seconds * 1e6));
  }
}

VariantSelector::VariantStats VariantSelector::variant_stats(
    Algorithm a) const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_[slot(a)];
}

std::string VariantSelector::stats_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  obs::JsonWriter w;
  w.begin_object();
  w.key("decisions").value(decisions_);
  w.key("explored").value(explored_);
  w.key("variants").begin_object();
  for (std::size_t i = 0; i < kVariants.size(); ++i) {
    w.key(algorithm_name(kVariants[i])).begin_object();
    w.key("runs").value(stats_[i].runs);
    w.key("ewma_seconds_per_work")
        .value(stats_[i].ewma_seconds_per_work);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace sparta::serve
