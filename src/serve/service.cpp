#include "serve/service.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "contraction/estimators.hpp"
#include "contraction/resilient.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/costmodel.hpp"
#include "simd/dispatch.hpp"

namespace sparta::serve {

namespace {

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

constexpr std::size_t kUnlimited = static_cast<std::size_t>(-1);

// Statlog/metrics outcome label; the enum check_statlog.py validates.
const char* outcome_of(const ServeReport& rep) {
  if (rep.ok()) return rep.degraded ? "degraded" : "ok";
  if (rep.rejected) return "rejected";
  if (rep.deadline_exceeded) return "deadline";
  if (rep.cancelled) return "cancelled";
  if (rep.budget_exceeded) return "budget";
  return "error";
}

// nnz / Π(dims) in double arithmetic: mode-size products overflow
// uint64 routinely (that is why they exist), doubles do not care.
double density_of(std::size_t nnz, const std::vector<index_t>& dims) {
  double cells = 1.0;
  for (const index_t d : dims) cells *= static_cast<double>(d);
  return cells > 0.0 ? static_cast<double>(nnz) / cells : 0.0;
}

void write_dims(obs::JsonWriter& w, const std::vector<index_t>& dims) {
  w.begin_array();
  for (const index_t d : dims) w.value(static_cast<std::uint64_t>(d));
  w.end_array();
}

void write_modes(obs::JsonWriter& w, const Modes& modes) {
  w.begin_array();
  for (const int m : modes) w.value(m);
  w.end_array();
}

std::string modes_str(const Modes& modes) {
  std::string out;
  for (const int m : modes) {
    if (!out.empty()) out += ',';
    out += std::to_string(m);
  }
  return out;
}

// The selector's EWMA scope: one entry per (operands, contract modes)
// tuple, matching the statlog's `key` column and the regret replay's
// oracle table.
std::string contraction_key(const ServeRequest& req) {
  return req.x + "|" + req.y + "|" + modes_str(req.cx) + "|" +
         modes_str(req.cy);
}

}  // namespace

std::string ServeReport::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("request_id").value(request_id);
  w.key("x").value(std::string_view(x));
  w.key("y").value(std::string_view(y));
  w.key("variant").value(algorithm_name(variant));
  w.key("ok").value(ok());
  w.key("cache_hit").value(cache_hit);
  w.key("plan_cached").value(plan_cached);
  w.key("degraded").value(degraded);
  w.key("rejected").value(rejected);
  w.key("cancelled").value(cancelled);
  w.key("deadline_exceeded").value(deadline_exceeded);
  w.key("budget_exceeded").value(budget_exceeded);
  w.key("queue_seconds").value(queue_seconds);
  w.key("exec_seconds").value(exec_seconds);
  w.key("cancel_seconds").value(cancel_seconds);
  w.key("retries").value(retries);
  w.key("swiss_tables").value(swiss_tables);
  w.key("pred_seconds").value(pred_seconds);
  w.key("nnz_z").value(static_cast<std::uint64_t>(stats.nnz_z));
  if (!error.empty()) w.key("error").value(std::string_view(error));
  if (!resilience.empty()) {
    w.key("resilience").value(std::string_view(resilience));
  }
  w.key("stages").raw(stage_times.to_json());
  w.key("counters").raw(stats.to_json());
  w.end_object();
  return w.str();
}

ContractionService::ContractionService(ServeConfig cfg)
    : cfg_(cfg), registry_(&alloc_), selector_(cfg.selector) {
  SPARTA_CHECK(cfg_.cache_fraction >= 0.0 && cfg_.cache_fraction <= 1.0,
               "cache_fraction must be in [0, 1]");
  SPARTA_CHECK(cfg_.queue_capacity > 0,
               "queue_capacity must be positive");
  SPARTA_CHECK(cfg_.num_workers >= 0 && cfg_.threads_per_request >= 0,
               "worker/thread counts must be >= 0 (0 = auto)");

  // Size the pool against the OpenMP thread budget: workers ×
  // threads-per-request ≈ the machine, never oversubscribing by
  // default. Explicit values win over the derived ones.
  const int machine = std::max(1, max_threads());
  if (cfg_.num_workers > 0) {
    num_workers_ = cfg_.num_workers;
  } else {
    const int tpr =
        cfg_.threads_per_request > 0 ? cfg_.threads_per_request : 1;
    num_workers_ = std::max(1, machine / tpr);
  }
  threads_per_request_ = cfg_.threads_per_request > 0
                             ? cfg_.threads_per_request
                             : std::max(1, machine / num_workers_);

  alloc_.set_capacity(cfg_.dram_budget_bytes);
  PlanCacheConfig pc;
  pc.budget_bytes =
      cfg_.dram_budget_bytes == 0
          ? 0
          : static_cast<std::size_t>(
                static_cast<double>(cfg_.dram_budget_bytes) *
                cfg_.cache_fraction);
  pc.registry = &alloc_;
  pc.hty_buckets = cfg_.hty_buckets;
  pc.use_swiss_tables = selector_.swiss_tables_enabled();
  cache_ = std::make_unique<PlanCache>(pc);

  if (!cfg_.statlog_path.empty()) {
    statlog_.open({cfg_.statlog_path, cfg_.statlog_max_bytes,
                   cfg_.statlog_max_files});
  }

  active_.resize(static_cast<std::size_t>(num_workers_));
  workers_.reserve(static_cast<std::size_t>(num_workers_));
  for (int i = 0; i < num_workers_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ContractionService::~ContractionService() { shutdown(); }

std::uint64_t ContractionService::load(const std::string& name,
                                       SparseTensor t) {
  const TensorRegistry::Handle old = registry_.try_get(name);
  const std::uint64_t id = registry_.put(name, std::move(t));
  // Plans built from a replaced registration are stale; their HtY
  // describes a tensor no one can name any more.
  if (old.valid()) cache_->invalidate_tensor(old.id);
  return id;
}

bool ContractionService::drop(const std::string& name) {
  const std::uint64_t id = registry_.drop(name);
  if (id == 0) return false;
  cache_->invalidate_tensor(id);
  return true;
}

std::future<ServeReport> ContractionService::submit(ServeRequest req) {
  auto q = std::make_unique<Queued>();
  q->req = std::move(req);
  // 1-based so a report (or span) with request_id 0 is unambiguously
  // "never submitted".
  q->request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  // The deadline clock starts here: queue wait spends it exactly like
  // execution time does.
  q->cancel = q->req.deadline_ms > 0.0
                  ? CancelToken::with_deadline(q->req.deadline_ms / 1e3)
                  : CancelToken::make();
  std::future<ServeReport> fut = q->promise.get_future();
  std::unique_ptr<Queued> shed;
  {
    std::unique_lock<std::mutex> lk(qmu_);
    if (cfg_.shed_on_overload) {
      // Load shedding: make room by dropping the newest queued request
      // — the one whose submitter has waited least and loses least by
      // retrying — instead of blocking this submitter.
      if (!stopping_ && queue_.size() >= cfg_.queue_capacity) {
        shed = std::move(queue_.back());
        queue_.pop_back();
      }
    } else {
      not_full_.wait(lk, [this] {
        return stopping_ || queue_.size() < cfg_.queue_capacity;
      });
    }
    if (stopping_) {
      throw Error("contraction service is shut down");
    }
    q->queued_at.reset();  // queue wait starts now, not at construction
    queue_.push_back(std::move(q));
    SPARTA_GAUGE_MAX("serve.queue.depth", queue_.size());
    // Last-sampled depth (vs the high-water mark above) — the live
    // exposition's instantaneous backlog signal.
    SPARTA_GAUGE_SET("serve.queue_depth", queue_.size());
  }
  not_empty_.notify_one();
  if (shed != nullptr) {
    SPARTA_COUNTER_ADD("serve.shed", 1);
    ServeReport rep;
    rep.request_id = shed->request_id;
    rep.x = shed->req.x;
    rep.y = shed->req.y;
    rep.rejected = true;
    rep.error = "shed on overload: queue full";
    rep.queue_seconds = shed->queued_at.seconds();
    log_request(shed->req, rep);
    shed->promise.set_value(std::move(rep));
  }
  return fut;
}

ServeReport ContractionService::contract_sync(ServeRequest req) {
  return submit(std::move(req)).get();
}

void ContractionService::shutdown() {
  {
    std::lock_guard<std::mutex> lk(qmu_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Learned state outlives the process: the next service constructed
  // with the same state_path resumes with these EWMAs instead of cold.
  selector_.save_state();
}

void ContractionService::shutdown_now() {
  std::vector<std::unique_ptr<Queued>> dropped;
  {
    std::lock_guard<std::mutex> lk(qmu_);
    stopping_ = true;
    dropped.reserve(queue_.size());
    while (!queue_.empty()) {
      dropped.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    for (const CancelToken& t : active_) {
      t.request_cancel("service shutdown");
    }
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  // Resolve dropped promises in submission order — a deterministic
  // rejection, not a broken future.
  for (std::unique_ptr<Queued>& q : dropped) {
    SPARTA_COUNTER_ADD("serve.cancelled", 1);
    ServeReport rep;
    rep.request_id = q->request_id;
    rep.x = q->req.x;
    rep.y = q->req.y;
    rep.cancelled = true;
    rep.error = "cancelled: service shutdown";
    rep.queue_seconds = q->queued_at.seconds();
    log_request(q->req, rep);
    q->promise.set_value(std::move(rep));
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  selector_.save_state();
}

ContractionService::AdmissionStats ContractionService::admission_stats()
    const {
  return {accepted_.load(std::memory_order_relaxed),
          rejected_.load(std::memory_order_relaxed),
          degraded_.load(std::memory_order_relaxed)};
}

std::size_t ContractionService::remaining_budget() const {
  const std::size_t cap = alloc_.capacity();
  if (cap == 0) return kUnlimited;
  const std::size_t live =
      alloc_.live_bytes(Tier::kDram) + alloc_.live_bytes(Tier::kPmm);
  return live >= cap ? 0 : cap - live;
}

std::size_t ContractionService::live_bytes() const {
  return alloc_.live_bytes(Tier::kDram) + alloc_.live_bytes(Tier::kPmm);
}

void ContractionService::clear_plan_cache() { cache_->clear(); }

std::string ContractionService::counters_json() const {
  const AdmissionStats a = admission_stats();
  obs::JsonWriter w;
  w.begin_object();
  w.key("cache").raw(cache_->stats_json());
  w.key("admission").begin_object();
  w.key("accepted").value(a.accepted);
  w.key("rejected").value(a.rejected);
  w.key("degraded").value(a.degraded);
  w.end_object();
  w.key("selector").raw(selector_.stats_json());
  w.key("budget").begin_object();
  w.key("capacity").value(static_cast<std::uint64_t>(alloc_.capacity()));
  w.key("live")
      .value(static_cast<std::uint64_t>(
          alloc_.live_bytes(Tier::kDram) +
          alloc_.live_bytes(Tier::kPmm)));
  w.end_object();
  w.end_object();
  return w.str();
}

void ContractionService::worker_loop(int idx) {
  const auto slot = static_cast<std::size_t>(idx);
  for (;;) {
    std::unique_ptr<Queued> q;
    {
      std::unique_lock<std::mutex> lk(qmu_);
      not_empty_.wait(lk,
                      [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      q = std::move(queue_.front());
      queue_.pop_front();
      // Publish the in-flight token while still holding qmu_, so
      // shutdown_now() sees either the queued item or the active token
      // — never neither.
      active_[slot] = q->cancel;
      SPARTA_GAUGE_SET("serve.queue_depth", queue_.size());
    }
    not_full_.notify_one();
    const double waited = q->queued_at.seconds();
    SPARTA_HISTOGRAM_RECORD("serve.queue_wait_us", waited * 1e6);

    // Every span/instant from here to the promise resolution — the
    // serve.request umbrella span and everything the engine emits —
    // carries this request's correlation id.
    obs::RequestIdScope rid_scope(q->request_id);
    // Plan-step requests additionally carry their plan's correlation
    // pair so multi-step traces nest under one plan id.
    obs::PlanStepScope plan_scope(q->req.plan_id, q->req.step_index);
    obs::Span request_span(obs::TraceRecorder::global(), "serve.request");
    if (request_span.active()) {
      obs::JsonWriter aw;
      aw.begin_object();
      aw.key("x").value(std::string_view(q->req.x));
      aw.key("y").value(std::string_view(q->req.y));
      // Which brain decided: empty = analytic prior, else the loaded
      // cost model's content id.
      aw.key("model_id").value(std::string_view(selector_.model_id()));
      aw.end_object();
      request_span.set_args(aw.str());
    }

    ServeReport rep;
    if (q->cancel.cancelled()) {
      // The deadline (or a shutdown cancel) expired while the request
      // was queued: report it without occupying the worker.
      rep.x = q->req.x;
      rep.y = q->req.y;
      rep.cancelled = true;
      rep.deadline_exceeded = q->cancel.deadline_expired();
      rep.error = rep.deadline_exceeded
                      ? "deadline exceeded while queued"
                      : std::string("cancelled: ") + q->cancel.reason();
    } else {
      try {
        rep = execute(q->req, q->cancel, q->request_id);
      } catch (const Cancelled& e) {
        // Cancellation unwound the contraction (all charges released
        // by RAII on the way out). Not a worker failure.
        rep.x = q->req.x;
        rep.y = q->req.y;
        rep.cancelled = true;
        rep.deadline_exceeded = q->cancel.deadline_expired();
        rep.error = e.what();
        rep.cancel_seconds = q->cancel.seconds_since_cancel();
        SPARTA_HISTOGRAM_RECORD("serve.cancel_latency_us",
                                rep.cancel_seconds * 1e6);
      } catch (const std::exception& e) {
        // execute() converts expected failures into report fields; this
        // is the backstop so a worker can never die with the promise
        // unfulfilled.
        rep.x = q->req.x;
        rep.y = q->req.y;
        rep.error = e.what();
      }
    }
    if (rep.cancelled) {
      SPARTA_COUNTER_ADD("serve.cancelled", 1);
      if (rep.deadline_exceeded) {
        SPARTA_COUNTER_ADD("serve.deadline_exceeded", 1);
      }
    }
    rep.request_id = q->request_id;
    rep.queue_seconds = waited;
    SPARTA_HISTOGRAM_RECORD("serve.exec_us", rep.exec_seconds * 1e6);
    request_span.finish();
    // A hard failure (not an admission rejection, not a cancel) is the
    // flight recorder's moment: dump the rings while the evidence —
    // the last few thousand events across every thread — is fresh.
    if (!rep.ok() && !rep.rejected && !rep.cancelled &&
        !cfg_.flight_dump_path.empty() && obs::flight_enabled()) {
      obs::FlightRecorder::global().dump_file(cfg_.flight_dump_path);
    }
    log_request(q->req, rep);
    {
      std::lock_guard<std::mutex> lk(qmu_);
      active_[slot] = CancelToken{};
    }
    q->promise.set_value(std::move(rep));
  }
}

ServeReport ContractionService::execute(const ServeRequest& req,
                                        const CancelToken& cancel,
                                        std::uint64_t request_id) {
  ServeReport rep;
  rep.request_id = request_id;
  rep.x = req.x;
  rep.y = req.y;

  TensorRegistry::Handle hx = registry_.try_get(req.x);
  TensorRegistry::Handle hy = registry_.try_get(req.y);
  if (!hx.valid() || !hy.valid()) {
    rep.error = "tensor '" + (hx.valid() ? req.y : req.x) +
                "' is not registered";
    return rep;
  }
  const SparseTensor& x = *hx.tensor;
  const SparseTensor& y = *hy.tensor;
  try {
    (void)validate_modes(x, y, req.cx, req.cy);
  } catch (const Error& e) {
    rep.error = e.what();
    return rep;
  }

  // Serves the request down the resilience ladder under whatever
  // budget is left. Used for over-budget admission and as the fallback
  // when an accepted request trips the runtime budget mid-flight.
  const auto run_degraded = [&](ServeReport& r) {
    ContractOptions o;
    o.request_id = request_id;
    o.num_threads = threads_per_request_;
    o.cancel = cancel;  // every rung polls; Cancelled aborts the ladder
    // rung_options() strips the flag off the SPA rung.
    o.use_swiss_tables = selector_.swiss_tables_enabled();
    const std::size_t rem = remaining_budget();
    o.budget.bytes =
        rem == kUnlimited ? 0 : std::max<std::size_t>(rem, 1);
    Timer t;
    ResilientResult rr =
        contract_resilient(x, y, req.cx, req.cy, o);
    r.exec_seconds = t.seconds();
    r.degraded = true;
    r.resilience = rr.report.summary();
    r.variant = rr.report.serving().algorithm;
    r.stage_times = rr.result.stage_times;
    r.stats = rr.result.stats;
    r.z = std::make_shared<SparseTensor>(std::move(rr.result.z));
    degraded_.fetch_add(1, std::memory_order_relaxed);
    SPARTA_COUNTER_ADD("serve.admit.degrade", 1);
  };

  // Admission: even the lightest monolithic rung copies X (permuted)
  // and Y (sorted); when that floor exceeds the remaining budget the
  // request cannot run as submitted.
  const std::size_t remaining = remaining_budget();
  const std::size_t floor_bytes =
      x.footprint_bytes() + y.footprint_bytes();
  if (remaining != kUnlimited && floor_bytes > remaining) {
    if (!cfg_.allow_degrade) {
      rep.rejected = true;
      rep.error = "admission rejected: operand copies need " +
                  std::to_string(floor_bytes) + " bytes, " +
                  std::to_string(remaining) + " remaining";
      rejected_.fetch_add(1, std::memory_order_relaxed);
      SPARTA_COUNTER_ADD("serve.admit.reject", 1);
      return rep;
    }
    try {
      run_degraded(rep);
    } catch (const Error& e) {
      rep.error = e.what();
    }
    return rep;
  }

  const bool cached_plan = cache_->peek(hy.id, req.cy);
  RequestFeatures feats;
  feats.nnz_x = x.nnz();
  feats.nnz_y = y.nnz();
  feats.order_y = y.order();
  feats.num_contract_modes = static_cast<int>(req.cx.size());
  feats.density_x = density_of(x.nnz(), x.dims());
  feats.density_y = density_of(y.nnz(), y.dims());
  feats.key = contraction_key(req);
  feats.plan_cached = cached_plan;
  feats.budget_remaining = remaining == kUnlimited ? 0 : remaining;
  const Algorithm variant =
      req.force_variant ? req.variant : selector_.choose(feats);
  rep.variant = variant;
  rep.pred_seconds = selector_.predicted_seconds(feats, variant);

  // Eq. 5 admission for the HtY path: the selector already avoids
  // kSparta when the table cannot fit, so this bites only on forced
  // variants — degrade (or reject) instead of failing mid-flight.
  if (variant == Algorithm::kSparta && !cached_plan &&
      remaining != kUnlimited) {
    const std::size_t est_hty = estimate_hty_bytes(
        y.nnz(), y.order(),
        pow2_at_least(std::max<std::size_t>(y.nnz(), 1)));
    if (floor_bytes + est_hty > remaining) {
      if (!cfg_.allow_degrade) {
        rep.rejected = true;
        rep.error = "admission rejected: Eq. 5 footprint " +
                    std::to_string(floor_bytes + est_hty) + " bytes, " +
                    std::to_string(remaining) + " remaining";
        rejected_.fetch_add(1, std::memory_order_relaxed);
        SPARTA_COUNTER_ADD("serve.admit.reject", 1);
        return rep;
      }
      try {
        run_degraded(rep);
      } catch (const Error& e) {
        rep.error = e.what();
      }
      return rep;
    }
  }

  ContractOptions opts;
  opts.request_id = request_id;
  opts.num_threads = threads_per_request_;
  opts.algorithm = variant;
  opts.cancel = cancel;
  // Charges flow to the shared registry, whose capacity (the DRAM
  // budget) enforces the runtime gate across all concurrent requests.
  opts.registry = &alloc_;
  // Swiss tables on every hash-table variant when a vector ISA is
  // active; the cached plan's own table kind governs HtY either way.
  opts.use_swiss_tables =
      selector_.swiss_tables_enabled() && variant != Algorithm::kSpa;
  rep.swiss_tables = opts.use_swiss_tables;

  try {
    Timer t;
    ContractResult res;
    if (variant == Algorithm::kSparta) {
      PlanLease lease = cache_->acquire(hy.id, y, req.cy, cancel);
      rep.cache_hit = lease.hit;
      rep.plan_cached = lease.cached;
      opts.hty_charged_externally = lease.cached;
      res = contract(x, *lease.plan, req.cx, opts);
    } else {
      res = contract(x, y, req.cx, req.cy, opts);
    }
    rep.exec_seconds = t.seconds();
    rep.stage_times = res.stage_times;
    rep.stats = res.stats;
    rep.z = std::make_shared<SparseTensor>(std::move(res.z));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    SPARTA_COUNTER_ADD("serve.admit.accept", 1);
    selector_.record(feats.key, variant, rep.exec_seconds,
                     x.nnz() + y.nnz());
  } catch (const BudgetExceeded& e) {
    rep.budget_exceeded = true;
    if (!cfg_.allow_degrade) {
      rep.error = e.what();
      return rep;
    }
    try {
      run_degraded(rep);
    } catch (const Error& e2) {
      rep.error = e2.what();
      return rep;
    }
  } catch (const Error& e) {
    rep.error = e.what();
    return rep;
  }

  if (!req.store_as.empty() && rep.z != nullptr) {
    try {
      // load() handles replacement + plan invalidation. The stored
      // copy is the service's; the report keeps its own reference.
      load(req.store_as, SparseTensor(*rep.z));
    } catch (const BudgetExceeded& e) {
      rep.budget_exceeded = true;
      rep.error = "store '" + req.store_as + "' failed: " + e.what();
    }
  }
  return rep;
}

void ContractionService::log_request(const ServeRequest& req,
                                     const ServeReport& rep) {
  const char* outcome = outcome_of(rep);
  // Labelled counters: one series per outcome and per served variant,
  // so the exposition endpoint shows the mix without parsing statlogs.
  obs::counter_add(std::string("serve.outcome.") + outcome, 1);
  if (!rep.rejected) {
    obs::counter_add(std::string("serve.requests.variant.") +
                         std::string(algorithm_name(rep.variant)),
                     1);
  }

  if (!statlog_.enabled()) return;

  // Operand features are resolved at log time: a shed or shutdown-
  // dropped request never touched the registry, and the tensors may
  // have been dropped since — both degrade to absent keys, never to a
  // blocked logger.
  const TensorRegistry::Handle hx = registry_.try_get(req.x);
  const TensorRegistry::Handle hy = registry_.try_get(req.y);

  obs::JsonWriter w;
  w.begin_object();
  // Schema 2 = schema 1 plus the feature vector the cost model trains
  // on (feature_version stamps its basis), the environment (SIMD tier,
  // swiss tables), the deciding model, and the Eq. 5/6 predictions next
  // to their measured counterparts.
  w.key("schema_version").value(2);
  w.key("feature_version").value(kCostFeatureVersion);
  w.key("request_id").value(rep.request_id);
  if (req.plan_id != 0) {
    // Optional keys (schema 2 tolerates extras): present only for
    // plan-step requests so single-request logs stay byte-identical.
    w.key("plan_id").value(req.plan_id);
    w.key("step_index").value(req.step_index);
  }
  w.key("x").value(std::string_view(req.x));
  w.key("y").value(std::string_view(req.y));
  w.key("key").value(std::string_view(contraction_key(req)));
  w.key("cx");
  write_modes(w, req.cx);
  w.key("cy");
  write_modes(w, req.cy);
  w.key("num_contract_modes").value(
      static_cast<std::uint64_t>(req.cx.size()));
  w.key("variant").value(algorithm_name(rep.variant));
  w.key("outcome").value(outcome);
  w.key("cache_hit").value(rep.cache_hit);
  w.key("plan_cached").value(rep.plan_cached);
  w.key("degraded").value(rep.degraded);
  w.key("budget_exceeded").value(rep.budget_exceeded);
  w.key("simd_isa").value(simd::isa_name(simd::active_isa()));
  w.key("swiss_tables").value(rep.swiss_tables);
  const std::string model_id = selector_.model_id();
  w.key("model_id").value(std::string_view(model_id));
  w.key("selector_prior")
      .value(model_id.empty() ? "analytic" : "learned");
  if (hx.valid()) {
    w.key("nnz_x").value(static_cast<std::uint64_t>(hx.tensor->nnz()));
    w.key("density_x").value(density_of(hx.tensor->nnz(),
                                        hx.tensor->dims()));
    w.key("dims_x");
    write_dims(w, hx.tensor->dims());
  }
  if (hy.valid()) {
    w.key("nnz_y").value(static_cast<std::uint64_t>(hy.tensor->nnz()));
    w.key("density_y").value(density_of(hy.tensor->nnz(),
                                        hy.tensor->dims()));
    w.key("dims_y");
    write_dims(w, hy.tensor->dims());
  }
  w.key("nnz_z").value(static_cast<std::uint64_t>(rep.stats.nnz_z));
  // Predicted (Eq. 5/6, same inputs the budget gates use) next to
  // measured, so estimator error is a logged quantity, not a rerun.
  const std::size_t est_hty =
      hy.valid() ? estimate_hty_bytes(
                       hy.tensor->nnz(), hy.tensor->order(),
                       pow2_at_least(
                           std::max<std::size_t>(hy.tensor->nnz(), 1)))
                 : 0;
  const std::size_t est_hta =
      hy.valid() && rep.stats.max_y_group > 0
          ? estimate_hta_bytes(
                rep.stats.max_x_subtensor, rep.stats.max_y_group,
                hy.tensor->order() - static_cast<int>(req.cy.size()),
                pow2_at_least(
                    std::max<std::size_t>(rep.stats.max_y_group, 64)))
          : 0;
  w.key("est_hty_bytes").value(static_cast<std::uint64_t>(est_hty));
  w.key("est_hta_bytes").value(static_cast<std::uint64_t>(est_hta));
  w.key("hty_bytes")
      .value(static_cast<std::uint64_t>(rep.stats.hty_bytes));
  w.key("hta_bytes")
      .value(static_cast<std::uint64_t>(rep.stats.hta_bytes));
  w.key("pred_seconds").value(rep.pred_seconds);
  w.key("queue_seconds").value(rep.queue_seconds);
  w.key("exec_seconds").value(rep.exec_seconds);
  w.key("cancel_seconds").value(rep.cancel_seconds);
  w.key("stages").raw(rep.stage_times.to_json());
  w.key("perf").raw(rep.stats.perf.to_json());
  if (!rep.error.empty()) {
    w.key("error").value(std::string_view(rep.error));
  }
  w.end_object();
  statlog_.append(w.str());
}

}  // namespace sparta::serve
