#include "serve/costmodel.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "obs/json_parse.hpp"

namespace sparta::serve {

namespace {

// Floors keep the log features finite on empty/degenerate operands; a
// zero-nnz tensor is a legal request the model must not NaN on.
constexpr double kDensityFloor = 1e-12;
constexpr double kSecondsFloor = 1e-9;

// Solves (A + λI) x = b for the kNumCostFeatures-wide normal-equation
// system via Gaussian elimination with partial pivoting. The ridge λ
// keeps collinear bases (small stores routinely have correlated nnz
// and density columns) solvable without changing well-conditioned fits
// measurably.
bool solve_normal(std::array<std::array<double, kNumCostFeatures>,
                             kNumCostFeatures>& a,
                  std::array<double, kNumCostFeatures>& b) {
  constexpr double kRidge = 1e-8;
  constexpr std::size_t n = kNumCostFeatures;
  for (std::size_t i = 0; i < n; ++i) a[i][i] += kRidge;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-30) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double m = a[r][col] / a[col][col];
      if (m == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= m * a[col][c];
      b[r] -= m * b[col];
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a[i][c] * b[c];
    b[i] = acc / a[i][i];
  }
  return true;
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::array<double, kNumCostFeatures> cost_basis(const CostFeatures& f) {
  return {1.0,
          std::log1p(static_cast<double>(f.nnz_x)),
          std::log1p(static_cast<double>(f.nnz_y)),
          static_cast<double>(f.num_contract_modes),
          std::log(f.density_x + kDensityFloor),
          std::log(f.density_y + kDensityFloor)};
}

std::size_t CostModel::slot(Algorithm a) {
  for (std::size_t i = 0; i < kVariants.size(); ++i) {
    if (kVariants[i] == a) return i;
  }
  throw Error("cost model does not cover algorithm " +
              std::string(algorithm_name(a)));
}

CostModel CostModel::fit(const std::vector<Sample>& samples,
                         std::size_t min_samples) {
  CostModel m;
  for (std::size_t v = 0; v < kVariants.size(); ++v) {
    std::array<std::array<double, kNumCostFeatures>, kNumCostFeatures>
        xtx{};
    std::array<double, kNumCostFeatures> xty{};
    std::vector<std::pair<std::array<double, kNumCostFeatures>, double>>
        rows;
    for (const Sample& s : samples) {
      if (s.variant != kVariants[v]) continue;
      const std::array<double, kNumCostFeatures> phi =
          cost_basis(s.features);
      const double y = std::log(s.seconds + kSecondsFloor);
      for (std::size_t i = 0; i < kNumCostFeatures; ++i) {
        for (std::size_t j = 0; j < kNumCostFeatures; ++j) {
          xtx[i][j] += phi[i] * phi[j];
        }
        xty[i] += phi[i] * y;
      }
      rows.emplace_back(phi, y);
    }
    VariantFit& out = m.fits_[v];
    out.samples = rows.size();
    if (rows.size() < min_samples) continue;
    std::array<double, kNumCostFeatures> theta = xty;
    if (!solve_normal(xtx, theta)) continue;
    out.coef = theta;
    out.fitted = true;
    // Diagnostics in log space: R² against the mean-only predictor and
    // the RMS residual, so the model file itself says how much the
    // learned fit beats "always predict the average".
    double mean = 0.0;
    for (const auto& [phi, y] : rows) mean += y;
    mean /= static_cast<double>(rows.size());
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (const auto& [phi, y] : rows) {
      double pred = 0.0;
      for (std::size_t i = 0; i < kNumCostFeatures; ++i) {
        pred += theta[i] * phi[i];
      }
      ss_res += (y - pred) * (y - pred);
      ss_tot += (y - mean) * (y - mean);
    }
    out.rmse_log =
        std::sqrt(ss_res / static_cast<double>(rows.size()));
    out.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot
                          : (ss_res == 0.0 ? 1.0 : 0.0);
  }
  m.refresh_id();
  return m;
}

bool CostModel::empty() const {
  for (const VariantFit& f : fits_) {
    if (f.fitted) return false;
  }
  return true;
}

bool CostModel::has(Algorithm a) const { return fits_[slot(a)].fitted; }

double CostModel::predict_seconds(Algorithm a,
                                  const CostFeatures& f) const {
  const VariantFit& fit = fits_[slot(a)];
  SPARTA_CHECK(fit.fitted, "cost model has no fit for " +
                               std::string(algorithm_name(a)));
  const std::array<double, kNumCostFeatures> phi = cost_basis(f);
  double log_pred = 0.0;
  for (std::size_t i = 0; i < kNumCostFeatures; ++i) {
    log_pred += fit.coef[i] * phi[i];
  }
  return std::exp(log_pred);
}

const VariantFit& CostModel::fit_for(Algorithm a) const {
  return fits_[slot(a)];
}

void CostModel::refresh_id() {
  if (empty()) {
    id_.clear();
    return;
  }
  // Hash the exact bytes the JSON serializer emits for the
  // coefficients, so id and file content can never disagree.
  obs::JsonWriter w;
  w.begin_array();
  for (const VariantFit& f : fits_) {
    w.value(f.fitted);
    for (const double c : f.coef) w.value(c);
  }
  w.end_array();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "lm1-%016llx",
                static_cast<unsigned long long>(fnv1a(w.str())));
  id_ = buf;
}

std::string CostModel::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(1);
  w.key("tool").value("sparta_autotune");
  w.key("feature_version").value(kCostFeatureVersion);
  w.key("num_features").value(
      static_cast<std::uint64_t>(kNumCostFeatures));
  w.key("model_id").value(std::string_view(id_));
  w.key("variants").begin_object();
  for (std::size_t v = 0; v < kVariants.size(); ++v) {
    const VariantFit& f = fits_[v];
    if (!f.fitted) continue;
    w.key(algorithm_name(kVariants[v])).begin_object();
    w.key("coef").begin_array();
    for (const double c : f.coef) w.value(c);
    w.end_array();
    w.key("samples").value(f.samples);
    w.key("r2").value(f.r2);
    w.key("rmse_log").value(f.rmse_log);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

CostModel CostModel::from_json(const std::string& doc) {
  const std::optional<obs::JsonValue> root = obs::json_parse(doc);
  if (!root || !root->is_object()) {
    throw Error("selector model: not a JSON object");
  }
  const obs::JsonValue* sv = root->get("schema_version");
  if (sv == nullptr || sv->number_or(0) != 1) {
    throw Error("selector model: missing or unsupported schema_version");
  }
  const obs::JsonValue* fv = root->get("feature_version");
  if (fv == nullptr ||
      fv->number_or(0) != static_cast<double>(kCostFeatureVersion)) {
    throw Error(
        "selector model: feature_version mismatch (model was fit on a "
        "different feature basis; re-run sparta_autotune)");
  }
  const obs::JsonValue* variants = root->get("variants");
  if (variants == nullptr || !variants->is_object()) {
    throw Error("selector model: missing 'variants' object");
  }
  CostModel m;
  for (std::size_t v = 0; v < kVariants.size(); ++v) {
    const obs::JsonValue* entry =
        variants->get(algorithm_name(kVariants[v]));
    if (entry == nullptr) continue;
    const obs::JsonValue* coef = entry->get("coef");
    if (coef == nullptr || !coef->is_array() ||
        coef->arr.size() != kNumCostFeatures) {
      throw Error("selector model: variant '" +
                  std::string(algorithm_name(kVariants[v])) +
                  "' needs a coef array of " +
                  std::to_string(kNumCostFeatures) + " numbers");
    }
    VariantFit& f = m.fits_[v];
    for (std::size_t i = 0; i < kNumCostFeatures; ++i) {
      f.coef[i] = coef->arr[i].number_or(0.0);
    }
    f.fitted = true;
    if (const obs::JsonValue* s = entry->get("samples")) {
      f.samples = static_cast<std::uint64_t>(s->number_or(0));
    }
    if (const obs::JsonValue* r = entry->get("r2")) {
      f.r2 = r->number_or(0.0);
    }
    if (const obs::JsonValue* r = entry->get("rmse_log")) {
      f.rmse_log = r->number_or(0.0);
    }
  }
  if (m.empty()) {
    throw Error("selector model: no fitted variants");
  }
  m.refresh_id();
  return m;
}

CostModel CostModel::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw Error("selector model: cannot read '" + path + "'");
  }
  std::stringstream ss;
  ss << in.rdbuf();
  try {
    return from_json(ss.str());
  } catch (const Error& e) {
    throw Error(std::string(e.what()) + " (file '" + path + "')");
  }
}

}  // namespace sparta::serve
