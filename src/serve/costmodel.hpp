// Learned per-variant cost model: the offline half of the
// observability-to-planning loop (ROADMAP "learned, feedback-driven
// planning from the perf layer").
//
// Every served request logs a versioned feature vector to the statlog
// (obs/statlog.hpp, schema 2); tools/sparta_autotune fits one
// log-linear model per algorithm variant over those features and emits
// a versioned JSON model file; the VariantSelector loads that file as
// its cold-start prior, replacing the analytic explore-first seeding
// with a learned prediction that the normal EWMA feedback then refines.
//
// The model is deliberately tiny and dependency-free: for each variant
// v, log(seconds) ≈ θ_v · φ(features), with φ the kNumCostFeatures-wide
// basis below and θ_v fit by ridge-regularized normal equations
// (Gaussian elimination, no BLAS). Fitting is deterministic: the same
// sample sequence produces a byte-identical model file, which is what
// lets CI diff two sparta_autotune runs exactly.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "contraction/options.hpp"

namespace sparta::serve {

/// Version of the feature basis below. Statlog records stamp it
/// (`feature_version`) so a model is never applied to features it was
/// not fit on; bump it whenever cost_basis() changes.
inline constexpr int kCostFeatureVersion = 1;

/// Width of the feature basis φ.
inline constexpr std::size_t kNumCostFeatures = 6;

/// The request features the model consumes. All of them are known
/// before the contraction runs (that is the point: the selector needs
/// the prediction cold), and all of them are persisted per request in
/// the statlog so offline fitting sees exactly what online prediction
/// will see.
struct CostFeatures {
  std::size_t nnz_x = 0;
  std::size_t nnz_y = 0;
  int order_y = 0;
  int num_contract_modes = 0;
  double density_x = 0.0;
  double density_y = 0.0;
};

/// φ(features): [1, log1p(nnz_x), log1p(nnz_y), num_contract_modes,
/// log(density_x + 1e-12), log(density_y + 1e-12)].
[[nodiscard]] std::array<double, kNumCostFeatures> cost_basis(
    const CostFeatures& f);

/// One fitted per-variant component plus its fit diagnostics.
struct VariantFit {
  bool fitted = false;
  std::array<double, kNumCostFeatures> coef{};
  std::uint64_t samples = 0;
  double r2 = 0.0;        ///< in log space, vs the mean-only model
  double rmse_log = 0.0;  ///< RMS residual of log(seconds)
};

class CostModel {
 public:
  /// The variant set the model covers — same order as
  /// VariantSelector::kVariants (selector.hpp).
  static constexpr std::array<Algorithm, 3> kVariants = {
      Algorithm::kSpa, Algorithm::kCooHta, Algorithm::kSparta};

  struct Sample {
    Algorithm variant = Algorithm::kSpa;
    CostFeatures features;
    double seconds = 0.0;
  };

  /// Fits one component per variant that has >= min_samples samples
  /// (others stay unfitted and predict nothing). Deterministic for a
  /// fixed sample sequence.
  [[nodiscard]] static CostModel fit(const std::vector<Sample>& samples,
                                     std::size_t min_samples = 3);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] bool has(Algorithm a) const;

  /// exp(θ_a · φ(f)) — predicted wall seconds for variant `a` on a
  /// request shaped like `f`. Requires has(a).
  [[nodiscard]] double predict_seconds(Algorithm a,
                                       const CostFeatures& f) const;

  [[nodiscard]] const VariantFit& fit_for(Algorithm a) const;

  /// Content-derived id ("lm1-<16 hex>"): the FNV-1a hash of the
  /// serialized coefficients. Two fits agree on the id iff they agree
  /// on the model, so the id stamped into statlog rows / trace spans /
  /// the Prometheus exposition names the exact brain that decided.
  /// Empty for an empty model.
  [[nodiscard]] const std::string& id() const { return id_; }

  /// Versioned model document: {"schema_version","tool",
  /// "feature_version","model_id","variants":{name:{coef,samples,r2,
  /// rmse_log}}}. Byte-deterministic.
  [[nodiscard]] std::string to_json() const;

  /// Parses a to_json() document; throws sparta::Error naming the
  /// defect on schema/version mismatch.
  [[nodiscard]] static CostModel from_json(const std::string& doc);

  /// from_json over a file; the error message names the path.
  [[nodiscard]] static CostModel load_file(const std::string& path);

 private:
  static std::size_t slot(Algorithm a);
  void refresh_id();

  std::array<VariantFit, 3> fits_{};
  std::string id_;
};

}  // namespace sparta::serve
