// Budget-aware LRU cache of prebuilt YPlans (HtY + metadata).
//
// Building HtY is the dominant cost of a small-X contraction — O(nnz_Y)
// hashing versus O(nnz_X) probing — so a service contracting many
// requests against the same Y amortizes stage ① by caching the plan.
// The cache is keyed on (tensor registration id, contract-mode list):
// ids are monotonic (TensorRegistry), so re-registering a tensor under
// the same name can never serve a stale plan.
//
// Budget semantics: each cached plan's measured HtY footprint is
// (a) charged to the service's AllocationRegistry (Tier::kDram,
//     DataObject::kHtY) for as long as any lease keeps it alive, and
// (b) counted against the cache's own `budget_bytes`, which drives LRU
//     eviction — Eq. 5 pre-admission predicts the footprint before the
//     build, so entries that can never fit skip eviction churn and are
//     served uncached instead (the engine then charges the HtY to the
//     request, exactly as an un-served contraction would).
// Requests contracting against a *cached* plan set
// ContractOptions::hty_charged_externally so the engine neither
// pre-flights nor re-charges bytes the cache already holds.
#pragma once

#include <cstdint>
#include <condition_variable>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "contraction/plan.hpp"
#include "memsim/allocator.hpp"
#include "tensor/sparse_tensor.hpp"
#include "tensor/types.hpp"

namespace sparta::serve {

struct PlanCacheConfig {
  /// Ceiling on the summed HtY footprint of retained entries; 0 means
  /// unlimited (never evict).
  std::size_t budget_bytes = 0;

  /// Receives the kDram/kHtY charge of every retained plan. May be
  /// null (no external accounting).
  AllocationRegistry* registry = nullptr;

  /// Forwarded to YPlan; 0 = auto (≈ nnz(Y)).
  std::size_t hty_buckets = 0;

  /// Build cached plans with the SIMD-probed swiss HtY instead of the
  /// chained table (see simd/swiss_table.hpp). The plan's table kind
  /// governs every contraction that reuses it.
  bool use_swiss_tables = false;
};

/// What acquire() hands back. `plan` is always usable; `cached` tells
/// the caller who owns the budget charge (see hty_charged_externally).
struct PlanLease {
  std::shared_ptr<const YPlan> plan;
  bool hit = false;     ///< served from cache without building
  bool cached = false;  ///< retained by the cache (charge is the cache's)
};

class PlanCache {
 public:
  explicit PlanCache(PlanCacheConfig cfg = {}) : cfg_(cfg) {}

  /// Returns a plan for contracting against tensor `y` (registered as
  /// `y_id`) along modes `cy`. Hits touch the LRU; misses build the
  /// plan (single-flight: concurrent requests for the same key wait for
  /// one build) and retain it when it fits the budget. Throws
  /// sparta::Error when `cy` is invalid for `y`.
  ///
  /// `cancel` governs both the caller's wait and its own build:
  ///  * a waiter whose token trips stops waiting and throws Cancelled —
  ///    the shared build keeps running for the other waiters;
  ///  * a builder whose token trips unwinds with Cancelled; waiters are
  ///    woken and RETRY the build themselves (one becomes the new
  ///    builder) rather than inheriting another request's deadline;
  ///  * a builder that fails with a real error (Error, bad_alloc)
  ///    wakes all waiters and rethrows that error to each of them —
  ///    the same build would fail the same way for everyone.
  /// Either way the failed entry is erased, never poisoned: the next
  /// acquire() for the key starts a fresh build.
  [[nodiscard]] PlanLease acquire(std::uint64_t y_id, const SparseTensor& y,
                                  const Modes& cy,
                                  const CancelToken& cancel = {});

  /// True when a plan for (y_id, cy) is retained right now. Does not
  /// touch the LRU.
  [[nodiscard]] bool peek(std::uint64_t y_id, const Modes& cy) const;

  /// Drops every entry built from registration `y_id` (tensor dropped
  /// or replaced). In-flight leases stay valid.
  void invalidate_tensor(std::uint64_t y_id);

  /// Drops everything (in-flight leases stay valid).
  void clear();

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Misses whose plan could never fit `budget_bytes` and was served
    /// uncached (no eviction churn, charge went to the request).
    std::uint64_t uncacheable = 0;
    std::size_t entries = 0;        ///< retained plans
    std::size_t retained_bytes = 0; ///< summed HtY footprint of entries
  };
  [[nodiscard]] Stats stats() const;

  /// {"hits":..,"misses":..,"evictions":..,"uncacheable":..,
  ///  "entries":..,"retained_bytes":..}
  [[nodiscard]] std::string stats_json() const;

 private:
  // Charge travels with the plan: released when the cache entry AND
  // every outstanding lease are gone.
  struct Cached {
    YPlan plan;
    ScopedCharge charge;

    explicit Cached(YPlan p) : plan(std::move(p)) {}
  };

  struct Key {
    std::uint64_t id = 0;
    Modes cy;

    bool operator<(const Key& o) const {
      if (id != o.id) return id < o.id;
      return cy < o.cy;
    }
  };

  // Outcome of one single-flight build, shared between the builder and
  // its waiters. Waiters hold their own shared_ptr, so the outcome
  // survives the map entry being erased (failure, invalidation, or an
  // uncacheable success). All fields are guarded by mu_.
  struct Build {
    bool done = false;
    bool cancelled = false;      // failure was the builder's own cancel
    std::exception_ptr error;    // null on success
  };

  struct Entry {
    std::shared_ptr<Cached> cached;  // null while a build is in flight
    std::shared_ptr<Build> build;    // non-null while a build is in flight
    std::list<Key>::iterator lru;    // valid only when cached != null
    std::size_t bytes = 0;
  };

  // Builder failure epilogue: publishes the outcome on `build`, erases
  // the in-flight entry (never poisoning the key), and wakes waiters.
  // Must be called from inside a catch block (std::current_exception).
  void fail_build(const std::shared_ptr<Build>& build, const Key& key,
                  bool cancelled);

  // Evicts LRU entries until `need` more bytes fit the budget; skips
  // nothing (building entries are not in lru_). Caller holds mu_.
  void evict_for(std::size_t need);

  PlanCacheConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable build_done_;
  std::map<Key, Entry> map_;
  std::list<Key> lru_;  // front = most recently used
  std::size_t bytes_ = 0;
  Stats stats_;
};

}  // namespace sparta::serve
