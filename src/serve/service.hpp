// Concurrent contraction service: bounded request queue, worker pool,
// budget-aware admission control, plan cache, adaptive variant choice.
//
// One ContractionService owns
//   * a TensorRegistry of named immutable operands,
//   * a PlanCache holding prebuilt HtYs under a slice of the DRAM
//     budget,
//   * a VariantSelector picking COOY+SPA / COOY+HtA / HtY+HtA per
//     request,
//   * an AllocationRegistry with capacity = the DRAM budget, charged by
//     registered tensors, retained plans and every in-flight request's
//     working set, and
//   * a pool of worker threads draining a bounded submission queue
//     (submit() blocks when full — backpressure, not unbounded memory).
//
// Admission control runs per request against the *remaining* budget
// (capacity minus live bytes): a request whose Eq. 5 estimate cannot
// fit is degraded through contract_resilient() (or rejected when
// degradation is disabled); a request that passes admission but trips
// the runtime budget mid-flight falls back the same way.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "contraction/contract.hpp"
#include "obs/statlog.hpp"
#include "serve/plan_cache.hpp"
#include "serve/registry.hpp"
#include "serve/selector.hpp"
#include "tensor/types.hpp"

namespace sparta::serve {

struct ServeConfig {
  /// Total DRAM budget for tensors + cached plans + in-flight working
  /// sets; 0 = unlimited (admission always accepts).
  std::size_t dram_budget_bytes = 0;

  /// Fraction of the DRAM budget the plan cache may retain. Ignored
  /// when the budget is unlimited (the cache is then unlimited too).
  double cache_fraction = 0.5;

  /// Worker threads draining the queue; 0 = derived from the OpenMP
  /// thread budget (max_threads / threads_per_request, at least 1).
  int num_workers = 0;

  /// OpenMP threads per contraction; 0 = share the machine evenly
  /// (max_threads / num_workers, at least 1).
  int threads_per_request = 0;

  /// Bounded submission queue; submit() blocks while full.
  std::size_t queue_capacity = 64;

  /// Degrade over-budget requests down the resilience ladder instead
  /// of rejecting them.
  bool allow_degrade = true;

  /// Overload policy when the queue is full: instead of blocking the
  /// submitter (backpressure, the default), shed the NEWEST queued
  /// request — its promise resolves immediately with rejected=true —
  /// and enqueue the incoming one. Oldest work keeps its place, the
  /// caller learns about overload deterministically, and submit()
  /// never blocks.
  bool shed_on_overload = false;

  SelectorConfig selector;

  /// Forwarded to the plan cache (0 = auto bucket count).
  std::size_t hty_buckets = 0;

  /// Stat store: when non-empty, every request appends one JSONL record
  /// (features, variant, cost, outcome) to this path, size-rotated at
  /// statlog_max_bytes across statlog_max_files files. Aggregate with
  /// tools/sparta_stats. See obs/statlog.hpp.
  std::string statlog_path;
  std::size_t statlog_max_bytes = 16u << 20;
  int statlog_max_files = 4;

  /// When non-empty, a request that fails hard (error outcome — not
  /// rejected, not cancelled) dumps the flight-recorder rings to this
  /// path as a Chrome trace. The caller is responsible for enabling
  /// the flight recorder (sparta_serve --flight-dump does both).
  std::string flight_dump_path;
};

/// One contraction request against registered tensors.
struct ServeRequest {
  std::string x;  ///< registry name of the first operand
  std::string y;  ///< registry name of the second operand
  Modes cx;
  Modes cy;
  /// When non-empty, Z is registered under this name (and also
  /// returned in the report).
  std::string store_as;
  /// Pin the variant instead of consulting the selector; kSparta with
  /// a cacheable plan still goes through the cache.
  bool force_variant = false;
  Algorithm variant = Algorithm::kSparta;

  /// End-to-end deadline in milliseconds, measured from submit(); 0 =
  /// none. Queue wait counts: a request whose deadline passes while
  /// queued is reported deadline-exceeded without ever occupying a
  /// worker, and one that trips mid-contraction unwinds cooperatively
  /// (see common/cancel.hpp) with its budget charges released.
  double deadline_ms = 0.0;

  /// Set by the plan executor (src/plan/) when this request is one
  /// step of a multi-step network plan: the plan's correlation id and
  /// this request's step index within it. 0 = not part of a plan. The
  /// pair rides the ambient correlation into every engine trace span
  /// and is appended to the request's statlog record, so autotune
  /// learns from chain traffic too.
  std::uint64_t plan_id = 0;
  int step_index = -1;
};

/// Everything the service knows about one completed (or failed)
/// request.
struct ServeReport {
  /// Monotonic correlation id assigned at submit() (1-based; 0 only in
  /// a default-constructed report). The same id is stamped into every
  /// engine trace span/instant this request emitted (args key
  /// "request_id") and into its statlog record, so a slow request in a
  /// merged concurrent trace maps back to exactly this report.
  std::uint64_t request_id = 0;
  std::string x;
  std::string y;
  Algorithm variant = Algorithm::kSparta;
  bool cache_hit = false;   ///< plan served from cache without a build
  bool plan_cached = false; ///< ran against a cache-retained plan
  bool degraded = false;    ///< served via the resilience ladder
  bool rejected = false;    ///< admission refused or shed the request
  bool cancelled = false;   ///< unwound via CancelToken (any reason)
  bool deadline_exceeded = false;  ///< the cancel was a deadline trip
  bool budget_exceeded = false;    ///< failure traces back to the budget
  bool swiss_tables = false;  ///< ran on the SIMD-probed swiss tables
  /// The loaded cost model's predicted wall seconds for the chosen
  /// variant (0 when serving on the analytic prior) — logged next to
  /// exec_seconds so prediction error is a first-class quantity.
  double pred_seconds = 0.0;
  std::string error;        ///< empty on success
  std::string resilience;   ///< ladder summary when degraded

  double queue_seconds = 0.0;  ///< submit → worker pickup
  double exec_seconds = 0.0;   ///< contraction wall time
  /// Cancel trip → worker return; 0 unless cancelled mid-execution.
  /// Bounded by one chunk of work (the engine's poll granularity).
  double cancel_seconds = 0.0;
  /// Client-side resubmissions that preceded this report (filled by
  /// the workload runner's retry loop, not the service).
  int retries = 0;

  StageTimes stage_times;
  ContractStats stats;
  std::shared_ptr<const SparseTensor> z;  ///< null on failure

  [[nodiscard]] bool ok() const { return error.empty(); }

  /// One JSON object per request — the tools/sparta_serve --json
  /// "requests" rows.
  [[nodiscard]] std::string to_json() const;
};

class ContractionService {
 public:
  explicit ContractionService(ServeConfig cfg = {});

  /// Drains the queue (every submitted request completes), then joins
  /// the workers.
  ~ContractionService();

  ContractionService(const ContractionService&) = delete;
  ContractionService& operator=(const ContractionService&) = delete;

  /// Registers (or replaces) a named tensor; plans built from a
  /// replaced registration are invalidated. Throws BudgetExceeded when
  /// the tensor does not fit the DRAM budget.
  std::uint64_t load(const std::string& name, SparseTensor t);

  /// Drops a name and invalidates its cached plans. In-flight requests
  /// holding the tensor finish normally.
  bool drop(const std::string& name);

  /// Queues a request. Blocks while the submission queue is full
  /// (backpressure); throws sparta::Error after shutdown(). Operand
  /// names are resolved when a worker picks the request up, so an
  /// unknown name surfaces in the report, not here.
  [[nodiscard]] std::future<ServeReport> submit(ServeRequest req);

  /// submit() + wait, for tests and simple callers.
  [[nodiscard]] ServeReport contract_sync(ServeRequest req);

  /// Graceful drain: stops accepting new requests, lets every queued
  /// request run to completion, joins workers. Idempotent.
  void shutdown();

  /// Immediate drain: stops accepting new requests, resolves every
  /// still-queued promise with cancelled=true (deterministically, in
  /// submission order), trips the CancelToken of every in-flight
  /// contraction (each unwinds within one poll interval and reports
  /// cancelled), then joins workers. Idempotent; safe after
  /// shutdown().
  void shutdown_now();

  [[nodiscard]] TensorRegistry& tensors() { return registry_; }
  [[nodiscard]] const ServeConfig& config() const { return cfg_; }
  [[nodiscard]] int workers() const { return num_workers_; }
  [[nodiscard]] int threads_per_request() const {
    return threads_per_request_;
  }
  [[nodiscard]] PlanCache::Stats cache_stats() const {
    return cache_->stats();
  }

  /// The variant selector, exposed for state snapshots, the Prometheus
  /// extra section, and model installation in tests/benchmarks.
  [[nodiscard]] VariantSelector& selector() { return selector_; }
  [[nodiscard]] const VariantSelector& selector() const {
    return selector_;
  }

  struct AdmissionStats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t degraded = 0;
  };
  [[nodiscard]] AdmissionStats admission_stats() const;

  /// Remaining DRAM budget right now (capacity − live bytes); SIZE_MAX
  /// when unlimited.
  [[nodiscard]] std::size_t remaining_budget() const;

  /// Live tracked bytes across tiers — the chaos harness's "budget
  /// returns to baseline" invariant probe.
  [[nodiscard]] std::size_t live_bytes() const;

  /// Drops every retained plan (in-flight leases stay valid). Lets
  /// invariant checks separate cache-held charges from leaks.
  void clear_plan_cache();

  /// {"cache":{...},"admission":{...},"selector":{...},
  ///  "budget":{"capacity":..,"live":..}}
  [[nodiscard]] std::string counters_json() const;

  /// Records appended to the stat store so far (0 when disabled).
  [[nodiscard]] std::uint64_t statlog_lines() const {
    return statlog_.lines_written();
  }

 private:
  struct Queued {
    ServeRequest req;
    std::promise<ServeReport> promise;
    Timer queued_at;
    CancelToken cancel;  ///< live from submit(); deadline token if set
    std::uint64_t request_id = 0;
  };

  void worker_loop(int idx);
  ServeReport execute(const ServeRequest& req, const CancelToken& cancel,
                      std::uint64_t request_id);
  /// Appends the request's statlog record (when configured) and bumps
  /// the labelled outcome counters; called exactly once per resolved
  /// request, including shed and shutdown drops.
  void log_request(const ServeRequest& req, const ServeReport& rep);

  ServeConfig cfg_;
  int num_workers_ = 1;
  int threads_per_request_ = 1;

  AllocationRegistry alloc_;
  TensorRegistry registry_;
  std::unique_ptr<PlanCache> cache_;
  VariantSelector selector_;

  std::mutex qmu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::unique_ptr<Queued>> queue_;
  bool stopping_ = false;
  /// Per-worker token of the request being executed (inert when idle);
  /// guarded by qmu_. shutdown_now() trips these to cancel in-flight
  /// work.
  std::vector<CancelToken> active_;

  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> next_request_id_{0};

  obs::StatLog statlog_;
};

}  // namespace sparta::serve
