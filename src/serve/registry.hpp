// Thread-safe named-tensor registry for the contraction service.
//
// Tensors are immutable once registered: put() stores a value under a
// name and assigns it a monotonically increasing id; re-registering the
// same name installs a fresh id, so anything keyed on the old id (plan
// cache entries, in-flight requests) can detect staleness without the
// registry having to chase them down. Lookups hand out shared_ptrs, so
// drop() only removes the name — a tensor stays alive (and its budget
// charge stays live) until the last in-flight request releases it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "memsim/allocator.hpp"
#include "tensor/sparse_tensor.hpp"

namespace sparta::serve {

class TensorRegistry {
 public:
  /// When `registry` is non-null every registered tensor's footprint is
  /// charged to it (Tier::kDram, DataObject::kY) for as long as any
  /// reference — the registry's or an in-flight request's — keeps the
  /// tensor alive. put() then throws BudgetExceeded when the charge
  /// would overflow the registry's capacity.
  explicit TensorRegistry(AllocationRegistry* registry = nullptr)
      : alloc_(registry) {}

  /// A lookup result: the tensor plus the id its registration got.
  struct Handle {
    std::shared_ptr<const SparseTensor> tensor;
    std::uint64_t id = 0;

    [[nodiscard]] bool valid() const { return tensor != nullptr; }
  };

  /// Names starting with this prefix are reserved for register_temp();
  /// put() rejects them so a user tensor can never collide with (or
  /// shadow) a plan intermediate.
  static constexpr const char* kTempPrefix = "__tmp/";

  /// Registers (or replaces) `name`. Returns the new id. Throws
  /// BudgetExceeded when the footprint does not fit the allocation
  /// registry's capacity; the registry is left unchanged in that case.
  /// Throws sparta::Error for names under kTempPrefix — those are
  /// reserved for anonymous intermediates (register_temp()).
  std::uint64_t put(const std::string& name, SparseTensor tensor);

  /// Registers an anonymous tensor under a unique reserved-prefix name
  /// ("__tmp/<n>") and returns that name. Semantics match put()
  /// (budget-charged, drop() releases the name, in-flight handles keep
  /// the tensor — and its charge — alive until the last one is
  /// released). Temp names are never reused within a registry.
  std::string register_temp(SparseTensor tensor);

  /// Handle for `name`; throws sparta::Error when absent.
  [[nodiscard]] Handle get(const std::string& name) const;

  /// Handle for `name`; !valid() when absent.
  [[nodiscard]] Handle try_get(const std::string& name) const;

  /// Removes `name`. Returns the dropped registration's id, or 0 when
  /// the name was not registered. In-flight holders keep the tensor
  /// alive; the budget charge follows the tensor, not the name.
  std::uint64_t drop(const std::string& name);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::size_t count() const;

  /// Registered names, sorted (deterministic for reports and tests).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Total footprint of currently *named* tensors (dropped-but-alive
  /// tensors are excluded; their bytes show up in the allocation
  /// registry until released).
  [[nodiscard]] std::size_t named_bytes() const;

 private:
  // The charge lives next to the tensor so it is released exactly when
  // the last shared_ptr (alias into `tensor`) goes away.
  struct Stored {
    SparseTensor tensor;
    ScopedCharge charge;

    explicit Stored(SparseTensor t) : tensor(std::move(t)) {}
  };

  struct Slot {
    std::shared_ptr<Stored> stored;
    std::uint64_t id = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Slot> map_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_temp_ = 1;
  AllocationRegistry* alloc_ = nullptr;
};

}  // namespace sparta::serve
