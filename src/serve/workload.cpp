#include "serve/workload.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "tensor/io.hpp"
#include "tensor/io_binary.hpp"

namespace sparta::serve {

namespace {

[[noreturn]] void parse_fail(int line, const std::string& msg) {
  throw Error("workload line " + std::to_string(line) + ": " + msg);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

// "key=value" → value for `key`, or nullopt-ish empty handling via
// found flag. Keys are unique per line by grammar.
bool take_kv(const std::string& tok, const std::string& key,
             std::string& value) {
  const std::string prefix = key + "=";
  if (tok.rfind(prefix, 0) != 0) return false;
  value = tok.substr(prefix.size());
  return true;
}

std::vector<index_t> parse_dims(const std::string& s, int line) {
  std::vector<index_t> dims;
  std::istringstream is(s);
  std::string part;
  while (std::getline(is, part, 'x')) {
    const long v = std::strtol(part.c_str(), nullptr, 10);
    if (v <= 0) parse_fail(line, "bad mode size '" + part + "'");
    dims.push_back(static_cast<index_t>(v));
  }
  if (dims.empty()) parse_fail(line, "empty dims");
  return dims;
}

Modes parse_modes(const std::string& s, int line) {
  Modes modes;
  std::istringstream is(s);
  std::string part;
  while (std::getline(is, part, ',')) {
    if (part.empty()) parse_fail(line, "empty mode in '" + s + "'");
    modes.push_back(static_cast<int>(
        std::strtol(part.c_str(), nullptr, 10)));
  }
  if (modes.empty()) parse_fail(line, "empty mode list");
  return modes;
}

Algorithm parse_variant(const std::string& s, int line) {
  if (s == "spa") return Algorithm::kSpa;
  if (s == "coohta") return Algorithm::kCooHta;
  if (s == "sparta") return Algorithm::kSparta;
  parse_fail(line, "unknown variant '" + s +
                       "' (expected spa | coohta | sparta)");
}

long parse_positive(const std::string& s, const char* what, int line) {
  const long v = std::strtol(s.c_str(), nullptr, 10);
  if (v <= 0) {
    parse_fail(line, std::string("bad ") + what + " '" + s + "'");
  }
  return v;
}

// A structural op is a batch barrier (see header).
bool is_barrier(const WorkloadOp& op) {
  return op.kind != WorkloadOp::Kind::kContract ||
         !op.request.store_as.empty();
}

}  // namespace

std::vector<WorkloadOp> parse_workload(std::istream& in) {
  std::vector<WorkloadOp> ops;
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    const std::vector<std::string> tok = split_ws(raw);
    if (tok.empty()) continue;

    WorkloadOp op;
    op.line = line;
    if (tok[0] == "load") {
      if (tok.size() != 3) parse_fail(line, "usage: load <name> <path>");
      op.kind = WorkloadOp::Kind::kLoad;
      op.name = tok[1];
      op.path = tok[2];
    } else if (tok[0] == "gen") {
      if (tok.size() < 4) {
        parse_fail(line,
                   "usage: gen <name> dims=AxB nnz=N [seed=S] [skew=F]");
      }
      op.kind = WorkloadOp::Kind::kGen;
      op.name = tok[1];
      bool have_dims = false;
      bool have_nnz = false;
      for (std::size_t i = 2; i < tok.size(); ++i) {
        std::string v;
        if (take_kv(tok[i], "dims", v)) {
          op.gen.dims = parse_dims(v, line);
          have_dims = true;
        } else if (take_kv(tok[i], "nnz", v)) {
          op.gen.nnz =
              static_cast<std::size_t>(parse_positive(v, "nnz", line));
          have_nnz = true;
        } else if (take_kv(tok[i], "seed", v)) {
          op.gen.seed = static_cast<std::uint64_t>(
              std::strtoull(v.c_str(), nullptr, 10));
        } else if (take_kv(tok[i], "skew", v)) {
          const double s = std::atof(v.c_str());
          if (s <= 0.0) parse_fail(line, "bad skew '" + v + "'");
          op.gen.skew.assign(op.gen.dims.size(), s);
        } else {
          parse_fail(line, "unknown gen argument '" + tok[i] + "'");
        }
      }
      if (!have_dims || !have_nnz) {
        parse_fail(line, "gen requires dims= and nnz=");
      }
      if (!op.gen.skew.empty() &&
          op.gen.skew.size() != op.gen.dims.size()) {
        op.gen.skew.assign(op.gen.dims.size(), op.gen.skew.front());
      }
    } else if (tok[0] == "contract") {
      if (tok.size() < 6) {
        parse_fail(line,
                   "usage: contract <z> <x> <y> cx=.. cy=.. "
                   "[repeat=N] [variant=V] [store]");
      }
      op.kind = WorkloadOp::Kind::kContract;
      op.name = tok[1];
      op.request.x = tok[2];
      op.request.y = tok[3];
      bool have_cx = false;
      bool have_cy = false;
      for (std::size_t i = 4; i < tok.size(); ++i) {
        std::string v;
        if (take_kv(tok[i], "cx", v)) {
          op.request.cx = parse_modes(v, line);
          have_cx = true;
        } else if (take_kv(tok[i], "cy", v)) {
          op.request.cy = parse_modes(v, line);
          have_cy = true;
        } else if (take_kv(tok[i], "repeat", v)) {
          op.repeat =
              static_cast<int>(parse_positive(v, "repeat", line));
        } else if (take_kv(tok[i], "variant", v)) {
          op.request.force_variant = true;
          op.request.variant = parse_variant(v, line);
        } else if (take_kv(tok[i], "deadline_ms", v)) {
          const double d = std::atof(v.c_str());
          if (d <= 0.0) parse_fail(line, "bad deadline_ms '" + v + "'");
          op.request.deadline_ms = d;
        } else if (take_kv(tok[i], "retries", v)) {
          const long r = std::strtol(v.c_str(), nullptr, 10);
          if (r < 0 || v.empty()) {
            parse_fail(line, "bad retries '" + v + "'");
          }
          op.retries = static_cast<int>(r);
        } else if (tok[i] == "store") {
          op.request.store_as = op.name;
        } else {
          parse_fail(line,
                     "unknown contract argument '" + tok[i] + "'");
        }
      }
      if (!have_cx || !have_cy) {
        parse_fail(line, "contract requires cx= and cy=");
      }
      if (!op.request.store_as.empty() && op.repeat != 1) {
        parse_fail(line, "store and repeat cannot be combined");
      }
    } else if (tok[0] == "network") {
      if (tok.size() < 4) {
        parse_fail(line,
                   "usage: network Z[i,l] = A[i,j] * B[j,l] "
                   "[repeat=N] [deadline_ms=D] [store]");
      }
      op.kind = WorkloadOp::Kind::kNetwork;
      // Options may trail the expression; everything else is the
      // expression itself, re-joined with single spaces. Validation
      // happens in the runner (the serving layer does not link the
      // plan compiler).
      for (std::size_t i = 1; i < tok.size(); ++i) {
        std::string v;
        if (take_kv(tok[i], "repeat", v)) {
          op.repeat =
              static_cast<int>(parse_positive(v, "repeat", line));
        } else if (take_kv(tok[i], "deadline_ms", v)) {
          const double d = std::atof(v.c_str());
          if (d <= 0.0) parse_fail(line, "bad deadline_ms '" + v + "'");
          op.network_deadline_ms = d;
        } else if (tok[i] == "store") {
          op.network_store = true;
        } else {
          if (!op.network.empty()) op.network += " ";
          op.network += tok[i];
        }
      }
      if (op.network.empty()) parse_fail(line, "empty network expression");
      if (op.network_store && op.repeat != 1) {
        parse_fail(line, "store and repeat cannot be combined");
      }
    } else if (tok[0] == "drop") {
      if (tok.size() != 2) parse_fail(line, "usage: drop <name>");
      op.kind = WorkloadOp::Kind::kDrop;
      op.name = tok[1];
    } else {
      parse_fail(line, "unknown op '" + tok[0] + "'");
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

std::vector<WorkloadOp> parse_workload_file(const std::string& path) {
  std::ifstream in(path);
  SPARTA_CHECK(in.good(), "cannot open workload '" + path + "'");
  return parse_workload(in);
}

namespace {

// One expanded contract request plus its client-side retry allowance.
struct BatchItem {
  ServeRequest req;
  int retries = 0;
};

// Submits `req`, resubmitting up to `retries` times when the report
// says deadline-exceeded or shed/rejected — the two transient outcomes
// a later attempt can genuinely improve (hard failures are final).
// Backoff between attempts is exponential (1 ms doubling, 100 ms cap)
// with deterministic jitter from `seed`, so concurrent clients desync
// without making runs irreproducible.
ServeReport submit_with_retry(ContractionService& svc,
                              const ServeRequest& req, int retries,
                              std::uint64_t seed) {
  Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);
  ServeReport rep;
  for (int attempt = 0;; ++attempt) {
    rep = svc.submit(req).get();
    rep.retries = attempt;
    if (attempt >= retries) break;
    if (!rep.deadline_exceeded && !rep.rejected) break;
    SPARTA_COUNTER_ADD("serve.retries", 1);
    const double base_ms = std::min(
        100.0, static_cast<double>(1u << std::min(attempt, 7)));
    const double jitter = 0.5 + rng.uniform_double();  // [0.5, 1.5)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(base_ms * jitter));
  }
  return rep;
}

// Drains `batch` through `clients` closed-loop submitter threads and
// appends the reports to `out` in submission order.
void run_batch(ContractionService& svc,
               const std::vector<BatchItem>& batch, int clients,
               std::vector<ServeReport>& out) {
  if (batch.empty()) return;
  const std::size_t base = out.size();
  out.resize(base + batch.size());
  const int n = std::max(
      1, std::min(clients, static_cast<int>(batch.size())));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int c = 0; c < n; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t i = static_cast<std::size_t>(c);
           i < batch.size(); i += static_cast<std::size_t>(n)) {
        out[base + i] = submit_with_retry(svc, batch[i].req,
                                          batch[i].retries,
                                          /*seed=*/0x5EEDULL * (i + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

SparseTensor load_tensor(const std::string& path) {
  const bool binary = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".sptn") == 0;
  return binary ? read_sptn_file(path) : read_tns_file(path);
}

}  // namespace

WorkloadResult run_workload(ContractionService& svc,
                            const std::vector<WorkloadOp>& ops,
                            const WorkloadOptions& opts) {
  SPARTA_CHECK(opts.clients > 0, "clients must be positive");
  WorkloadResult result;
  std::vector<BatchItem> batch;
  Timer wall;
  for (const WorkloadOp& op : ops) {
    if (is_barrier(op) && !batch.empty()) {
      run_batch(svc, batch, opts.clients, result.reports);
      batch.clear();
    }
    switch (op.kind) {
      case WorkloadOp::Kind::kLoad:
        svc.load(op.name, load_tensor(op.path));
        break;
      case WorkloadOp::Kind::kGen:
        svc.load(op.name, generate_random(op.gen));
        break;
      case WorkloadOp::Kind::kDrop:
        svc.drop(op.name);
        break;
      case WorkloadOp::Kind::kNetwork: {
        if (!opts.network_runner) {
          throw Error("workload line " + std::to_string(op.line) +
                      ": 'network' statements need a network runner "
                      "(tools/sparta_serve installs one; library "
                      "embedders wire plan::PlanExecutor themselves)");
        }
        NetworkRequest nreq;
        nreq.expr = op.network;
        nreq.store = op.network_store;
        nreq.deadline_ms = op.network_deadline_ms;
        for (int r = 0; r < op.repeat; ++r) {
          std::vector<ServeReport> reps =
              opts.network_runner(svc, nreq);
          for (ServeReport& rep : reps) {
            result.reports.push_back(std::move(rep));
          }
        }
        break;
      }
      case WorkloadOp::Kind::kContract: {
        if (!op.request.store_as.empty()) {
          // Barrier op: runs alone so later lines see the stored Z.
          result.reports.push_back(submit_with_retry(
              svc, op.request, op.retries,
              /*seed=*/0x5EEDULL * (result.reports.size() + 1)));
          break;
        }
        for (int r = 0; r < op.repeat; ++r) {
          batch.push_back(BatchItem{op.request, op.retries});
        }
        break;
      }
    }
  }
  run_batch(svc, batch, opts.clients, result.reports);
  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace sparta::serve
