// Adaptive algorithm-variant selection for the contraction service.
//
// Each request picks one of the paper's three variants — COOY+SPA,
// COOY+HtA, HtY+HtA — from (a) estimator features known before the run
// (operand sizes, whether a cached plan exists, remaining budget) and
// (b) observed per-variant latency feedback, normalized by request work
// so small and large requests share one scale. Feedback is kept
// per contraction key (x|y|cx|cy): two different tensor pairs never
// share an EWMA, so a variant that is right for one shape cannot be
// wrong for another by association.
//
// Cold start has two regimes:
//   * analytic (default): any never-tried feasible variant on a key is
//     explored first, so the EWMAs start from real observations;
//   * learned (SelectorConfig::model): a CostModel fit offline by
//     tools/sparta_autotune seeds every feasible variant's EWMA with
//     its predicted seconds-per-work, and the first decision exploits
//     immediately. Observations then blend into the seeded EWMA with
//     the usual alpha, so warm behavior is unchanged either way.
//
// The policy is deliberately deterministic (no RNG — reproducible
// workload scripts are a feature):
//   * a cached plan forces HtY+HtA: stage ① is already paid for;
//   * variants whose Eq. 5 footprint exceeds the remaining budget are
//     excluded up front;
//   * every `explore_period`-th decision round-robins over the feasible
//     variants (and any never-tried, unseeded variant is explored
//     first);
//   * otherwise the variant with the lowest EWMA of seconds-per-unit-
//     work wins.
//
// The whole table (per-key EWMAs, counters, active model id) can be
// snapshotted to JSON and restored, so a service restart does not
// forget what it learned (SelectorConfig::state_path, sparta_serve
// --selector-state).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "contraction/options.hpp"
#include "serve/costmodel.hpp"
#include "simd/dispatch.hpp"

namespace sparta::serve {

struct SelectorConfig {
  /// Every Nth decision explores instead of exploiting; 0 disables
  /// exploration (pure exploit after the initial seeding round).
  int explore_period = 8;

  /// Weight of the newest observation in the latency EWMA.
  double ewma_alpha = 0.3;

  /// Prefer the SIMD-probed swiss tables (simd/swiss_table.hpp) for the
  /// hash-table variants when a vector ISA is active. The service maps
  /// this onto ContractOptions::use_swiss_tables and the plan cache's
  /// table kind; under SPARTA_SIMD=scalar the chained tables keep their
  /// edge and are used instead.
  bool prefer_swiss_tables = true;

  /// Path to a sparta_autotune model file used as the cold-start prior;
  /// empty = analytic seeding (explore-first). Load failures throw
  /// sparta::Error from the VariantSelector constructor — a configured
  /// but unreadable brain is an operator error, not a silent fallback.
  std::string model;

  /// Path for the selector-state snapshot: loaded (when the file
  /// exists) at construction, written by ContractionService::shutdown,
  /// so per-key EWMAs survive restarts. Empty = in-memory only.
  std::string state_path;

  /// Throws sparta::Error with a flag-naming diagnostic on out-of-range
  /// knobs; called by the service constructor and sparta_serve's flag
  /// parser so replay experiments fail fast, not subtly.
  void validate() const;
};

/// Features available before a request runs.
struct RequestFeatures {
  std::size_t nnz_x = 0;
  std::size_t nnz_y = 0;
  int order_y = 0;
  int num_contract_modes = 0;
  double density_x = 0.0;
  double density_y = 0.0;
  /// Contraction key (x|y|cx|cy) scoping the EWMA table; "" shares one
  /// global entry (the pre-per-key behavior, used by direct callers).
  std::string key;
  /// A retained plan exists for (Y, cy): HtY+HtA skips stage ①.
  bool plan_cached = false;
  /// Remaining DRAM budget in bytes; 0 = unlimited.
  std::size_t budget_remaining = 0;

  [[nodiscard]] CostFeatures cost_features() const {
    return {nnz_x, nnz_y, order_y, num_contract_modes, density_x,
            density_y};
  }
};

class VariantSelector {
 public:
  /// The candidate set, in degradation-ladder order (lightest first).
  static constexpr std::array<Algorithm, 3> kVariants = {
      Algorithm::kSpa, Algorithm::kCooHta, Algorithm::kSparta};

  /// Validates cfg, then loads cfg.model and any existing cfg.state_path
  /// snapshot (both throw sparta::Error on malformed content).
  explicit VariantSelector(SelectorConfig cfg = {});

  /// Picks the variant for one request.
  [[nodiscard]] Algorithm choose(const RequestFeatures& f);

  /// Whether requests should run on the swiss tables: configured
  /// preference AND a vector ISA actually active (scalar machines or
  /// SPARTA_SIMD=scalar keep the chained tables).
  [[nodiscard]] bool swiss_tables_enabled() const {
    return cfg_.prefer_swiss_tables && simd::vector_isa_active();
  }

  /// Feeds back one completed request: `seconds` of contraction time
  /// over `work` units (nnz_x + nnz_y), into the key's EWMA row and the
  /// global aggregate. Also records the latency into the per-variant
  /// obs histogram serve.variant_us.<name>.
  void record(const std::string& key, Algorithm a, double seconds,
              std::size_t work);

  /// Keyless overload: records into the "" key (direct callers, tests).
  void record(Algorithm a, double seconds, std::size_t work) {
    record(std::string(), a, seconds, work);
  }

  /// Installs a learned prior directly (tests, bench replay); the CLI
  /// path is SelectorConfig::model.
  void set_model(CostModel model);

  /// Active model's content id; empty when running on the analytic
  /// prior.
  [[nodiscard]] std::string model_id() const;
  [[nodiscard]] bool has_model() const;

  /// Predicted wall seconds for `a` under the loaded model; 0.0 when no
  /// model (or no fit for `a`) — the statlog's pred_seconds column.
  [[nodiscard]] double predicted_seconds(const RequestFeatures& f,
                                         Algorithm a) const;

  struct VariantStats {
    std::uint64_t runs = 0;
    bool seeded = false;  ///< EWMA initialized from the learned prior
    double ewma_seconds_per_work = 0.0;
  };
  /// Global (all-key) aggregate for one variant.
  [[nodiscard]] VariantStats variant_stats(Algorithm a) const;
  /// Per-key row; default-constructed stats for an unseen key.
  [[nodiscard]] VariantStats key_stats(const std::string& key,
                                       Algorithm a) const;

  /// {"decisions":..,"explored":..,"model_id":..,"keys":N,
  ///  "variants":{..},"per_key":{..}} — the sparta_serve --json
  /// "selector" section.
  [[nodiscard]] std::string stats_json() const;

  /// Selector section of the Prometheus exposition: decision counters,
  /// per-variant aggregates, and a model-info sample naming the active
  /// brain (sparta_selector_model_info{model_id=..,prior=..} 1).
  [[nodiscard]] std::string prometheus_text() const;

  /// Durable snapshot of the learning state (counters + every key's
  /// per-variant EWMA row + the model id it was learned under).
  [[nodiscard]] std::string state_json() const;
  /// Restores a state_json() snapshot; throws sparta::Error on
  /// malformed input.
  void load_state_json(const std::string& doc);
  /// Writes state_json() to cfg.state_path (no-op when unset); false +
  /// stderr note when the file cannot be written.
  bool save_state() const;

 private:
  struct KeyState {
    std::array<VariantStats, 3> stats{};
  };

  static std::size_t slot(Algorithm a);
  KeyState& key_state_locked(const std::string& key);
  void seed_from_model_locked(KeyState& ks, const RequestFeatures& f);

  SelectorConfig cfg_;
  CostModel model_;
  mutable std::mutex mu_;
  std::uint64_t decisions_ = 0;
  std::uint64_t explored_ = 0;
  std::array<VariantStats, 3> stats_{};  ///< global aggregate
  std::map<std::string, KeyState> keys_;
};

}  // namespace sparta::serve
