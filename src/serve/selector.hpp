// Adaptive algorithm-variant selection for the contraction service.
//
// Each request picks one of the paper's three variants — COOY+SPA,
// COOY+HtA, HtY+HtA — from (a) estimator features known before the run
// (operand sizes, whether a cached plan exists, remaining budget) and
// (b) observed per-variant latency feedback, normalized by request work
// so small and large requests share one scale.
//
// The policy is deliberately deterministic (no RNG — reproducible
// workload scripts are a feature):
//   * a cached plan forces HtY+HtA: stage ① is already paid for;
//   * variants whose Eq. 5 footprint exceeds the remaining budget are
//     excluded up front;
//   * every `explore_period`-th decision round-robins over the feasible
//     variants (and any never-tried variant is explored first);
//   * otherwise the variant with the lowest EWMA of seconds-per-unit-
//     work wins.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

#include "contraction/options.hpp"
#include "simd/dispatch.hpp"

namespace sparta::serve {

struct SelectorConfig {
  /// Every Nth decision explores instead of exploiting; 0 disables
  /// exploration (pure exploit after the initial seeding round).
  int explore_period = 8;

  /// Weight of the newest observation in the latency EWMA.
  double ewma_alpha = 0.3;

  /// Prefer the SIMD-probed swiss tables (simd/swiss_table.hpp) for the
  /// hash-table variants when a vector ISA is active. The service maps
  /// this onto ContractOptions::use_swiss_tables and the plan cache's
  /// table kind; under SPARTA_SIMD=scalar the chained tables keep their
  /// edge and are used instead.
  bool prefer_swiss_tables = true;
};

/// Features available before a request runs.
struct RequestFeatures {
  std::size_t nnz_x = 0;
  std::size_t nnz_y = 0;
  int order_y = 0;
  /// A retained plan exists for (Y, cy): HtY+HtA skips stage ①.
  bool plan_cached = false;
  /// Remaining DRAM budget in bytes; 0 = unlimited.
  std::size_t budget_remaining = 0;
};

class VariantSelector {
 public:
  /// The candidate set, in degradation-ladder order (lightest first).
  static constexpr std::array<Algorithm, 3> kVariants = {
      Algorithm::kSpa, Algorithm::kCooHta, Algorithm::kSparta};

  explicit VariantSelector(SelectorConfig cfg = {}) : cfg_(cfg) {}

  /// Picks the variant for one request.
  [[nodiscard]] Algorithm choose(const RequestFeatures& f);

  /// Whether requests should run on the swiss tables: configured
  /// preference AND a vector ISA actually active (scalar machines or
  /// SPARTA_SIMD=scalar keep the chained tables).
  [[nodiscard]] bool swiss_tables_enabled() const {
    return cfg_.prefer_swiss_tables && simd::vector_isa_active();
  }

  /// Feeds back one completed request: `seconds` of contraction time
  /// over `work` units (nnz_x + nnz_y). Also records the latency into
  /// the per-variant obs histogram serve.variant_us.<name>.
  void record(Algorithm a, double seconds, std::size_t work);

  struct VariantStats {
    std::uint64_t runs = 0;
    double ewma_seconds_per_work = 0.0;
  };
  [[nodiscard]] VariantStats variant_stats(Algorithm a) const;

  /// {"decisions":..,"explored":..,"variants":{"<name>":{...}}}
  [[nodiscard]] std::string stats_json() const;

 private:
  static std::size_t slot(Algorithm a);

  SelectorConfig cfg_;
  mutable std::mutex mu_;
  std::uint64_t decisions_ = 0;
  std::uint64_t explored_ = 0;
  std::array<VariantStats, 3> stats_{};
};

}  // namespace sparta::serve
