#include "serve/registry.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace sparta::serve {

namespace {

bool has_temp_prefix(const std::string& name) {
  const std::string_view prefix = TensorRegistry::kTempPrefix;
  return name.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

std::uint64_t TensorRegistry::put(const std::string& name,
                                  SparseTensor tensor) {
  SPARTA_CHECK(!name.empty(), "tensor name must not be empty");
  if (has_temp_prefix(name)) {
    throw Error("tensor name '" + name + "' uses the reserved prefix '" +
                kTempPrefix +
                "' (anonymous plan intermediates); pick another name");
  }
  auto stored = std::make_shared<Stored>(std::move(tensor));
  if (alloc_ != nullptr) {
    // Charge before publishing: a BudgetExceeded here leaves the
    // registry exactly as it was (the old registration, if any, stays).
    stored->charge =
        ScopedCharge(alloc_, Tier::kDram, DataObject::kY);
    stored->charge.update(stored->tensor.footprint_bytes());
  }
  std::lock_guard<std::mutex> lk(mu_);
  Slot& slot = map_[name];
  slot.stored = std::move(stored);
  slot.id = next_id_++;
  SPARTA_COUNTER_ADD("serve.registry.puts", 1);
  return slot.id;
}

std::string TensorRegistry::register_temp(SparseTensor tensor) {
  auto stored = std::make_shared<Stored>(std::move(tensor));
  if (alloc_ != nullptr) {
    // Same charge-before-publish contract as put(): BudgetExceeded
    // leaves the registry untouched.
    stored->charge = ScopedCharge(alloc_, Tier::kDram, DataObject::kY);
    stored->charge.update(stored->tensor.footprint_bytes());
  }
  std::lock_guard<std::mutex> lk(mu_);
  const std::string name = kTempPrefix + std::to_string(next_temp_++);
  Slot& slot = map_[name];
  slot.stored = std::move(stored);
  slot.id = next_id_++;
  SPARTA_COUNTER_ADD("serve.registry.temp_puts", 1);
  return name;
}

TensorRegistry::Handle TensorRegistry::get(const std::string& name) const {
  Handle h = try_get(name);
  if (!h.valid()) {
    throw Error("tensor '" + name + "' is not registered");
  }
  return h;
}

TensorRegistry::Handle TensorRegistry::try_get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = map_.find(name);
  if (it == map_.end()) return {};
  // Aliasing shared_ptr: the handle keeps the whole Stored (tensor +
  // charge) alive while exposing only the tensor.
  return {std::shared_ptr<const SparseTensor>(it->second.stored,
                                              &it->second.stored->tensor),
          it->second.id};
}

std::uint64_t TensorRegistry::drop(const std::string& name) {
  std::shared_ptr<Stored> retired;  // destroyed outside the lock
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = map_.find(name);
    if (it == map_.end()) return 0;
    id = it->second.id;
    retired = std::move(it->second.stored);
    map_.erase(it);
  }
  SPARTA_COUNTER_ADD("serve.registry.drops", 1);
  return id;
}

bool TensorRegistry::contains(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.find(name) != map_.end();
}

std::size_t TensorRegistry::count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.size();
}

std::vector<std::string> TensorRegistry::names() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lk(mu_);
    out.reserve(map_.size());
    for (const auto& [name, slot] : map_) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t TensorRegistry::named_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t total = 0;
  for (const auto& [name, slot] : map_) {
    total += slot.stored->tensor.footprint_bytes();
  }
  return total;
}

}  // namespace sparta::serve
