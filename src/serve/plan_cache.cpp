#include "serve/plan_cache.hpp"

#include <chrono>
#include <utility>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "contraction/estimators.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace sparta::serve {

namespace {

// The engine sizes HtY's bucket array to the smallest power of two
// covering nnz(Y); the Eq. 5 pre-admission estimate mirrors that.
std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

PlanLease PlanCache::acquire(std::uint64_t y_id, const SparseTensor& y,
                             const Modes& cy, const CancelToken& cancel) {
  const Key key{y_id, cy};
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    const auto it = map_.find(key);
    if (it == map_.end()) break;  // miss: this thread builds
    if (it->second.cached != nullptr) {
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      ++stats_.hits;
      SPARTA_COUNTER_ADD("serve.cache.hit", 1);
      return {std::shared_ptr<const YPlan>(it->second.cached,
                                           &it->second.cached->plan),
              /*hit=*/true, /*cached=*/true};
    }
    // Another thread is building this plan (single-flight): wait for it
    // rather than duplicating an O(nnz_Y) build. Hold our own reference
    // to the Build so its outcome outlives the map entry.
    const std::shared_ptr<Build> build = it->second.build;
    while (!build->done) {
      if (cancel.valid()) {
        // Bounded waits so our own deadline is noticed even if the
        // builder wedges; check() throws Cancelled with the lock
        // released by unwinding.
        build_done_.wait_for(lk, std::chrono::milliseconds(5));
        cancel.check("plan.wait");
      } else {
        build_done_.wait(lk);
      }
    }
    if (build->error != nullptr && !build->cancelled) {
      // A real build failure (Error, bad_alloc) would repeat for us:
      // every waiter inherits it.
      std::rethrow_exception(build->error);
    }
    // The builder was cancelled (its deadline is not ours — retry, and
    // become the new builder), or it succeeded: re-check the map. A
    // retained plan is now a hit; an uncacheable or invalidated one was
    // erased and we build our own.
  }
  ++stats_.misses;
  SPARTA_COUNTER_ADD("serve.cache.miss", 1);

  // Eq. 5 pre-admission: a plan that can never fit the cache budget is
  // built and served uncached — no point evicting everything for it.
  const std::size_t buckets =
      cfg_.hty_buckets > 0
          ? pow2_at_least(cfg_.hty_buckets)
          : pow2_at_least(std::max<std::size_t>(y.nnz(), 1));
  const std::size_t est = estimate_hty_bytes(y.nnz(), y.order(), buckets);
  if (cfg_.budget_bytes != 0 && est > cfg_.budget_bytes) {
    ++stats_.uncacheable;
    SPARTA_COUNTER_ADD("serve.cache.uncacheable", 1);
    lk.unlock();
    auto plan = std::make_shared<YPlan>(y, cy, cfg_.hty_buckets,
                                        /*num_threads=*/0,
                                        cfg_.use_swiss_tables, cancel);
    return {std::move(plan), /*hit=*/false, /*cached=*/false};
  }

  // Claim the key (null `cached` marks a build in flight), then build
  // outside the lock — waiters block on build_done_, hits elsewhere in
  // the map proceed.
  auto build = std::make_shared<Build>();
  map_[key] = Entry{/*cached=*/nullptr, build, {}, 0};
  lk.unlock();

  std::shared_ptr<Cached> built;
  try {
    built = std::make_shared<Cached>(YPlan(y, cy, cfg_.hty_buckets,
                                           /*num_threads=*/0,
                                           cfg_.use_swiss_tables, cancel));
  } catch (const Cancelled&) {
    fail_build(build, key, /*cancelled=*/true);
    throw;
  } catch (...) {
    fail_build(build, key, /*cancelled=*/false);
    throw;
  }
  const std::size_t actual = built->plan.hty_footprint_bytes();

  lk.lock();
  build->done = true;
  bool retain = true;
  if (cfg_.budget_bytes != 0) {
    if (actual > cfg_.budget_bytes) {
      retain = false;
    } else {
      evict_for(actual);
      if (bytes_ + actual > cfg_.budget_bytes) retain = false;
    }
  }
  const auto it = map_.find(key);
  // invalidate_tensor() may have erased the building entry; the plan is
  // then stale by definition and must not be retained.
  const bool invalidated = it == map_.end();
  if (retain && !invalidated && cfg_.registry != nullptr) {
    built->charge =
        ScopedCharge(cfg_.registry, Tier::kDram, DataObject::kHtY);
    try {
      built->charge.update(actual);
    } catch (const BudgetExceeded&) {
      // The service-wide registry is full: serve the plan uncached and
      // let the request's own accounting decide.
      built->charge = ScopedCharge();
      retain = false;
    }
  }
  const bool cached = retain && !invalidated;
  if (cached) {
    lru_.push_front(key);
    it->second.cached = built;
    it->second.build = nullptr;
    it->second.lru = lru_.begin();
    it->second.bytes = actual;
    bytes_ += actual;
  } else {
    if (!invalidated) map_.erase(it);
    if (!retain) {
      ++stats_.uncacheable;
      SPARTA_COUNTER_ADD("serve.cache.uncacheable", 1);
    }
  }
  build_done_.notify_all();
  lk.unlock();
  return {std::shared_ptr<const YPlan>(built, &built->plan),
          /*hit=*/false, cached};
}

void PlanCache::fail_build(const std::shared_ptr<Build>& build,
                           const Key& key, bool cancelled) {
  std::lock_guard<std::mutex> lk(mu_);
  build->error = std::current_exception();
  build->cancelled = cancelled;
  build->done = true;
  // Erase the in-flight entry so the key is immediately buildable again
  // — a failed build must never leave a poisoned or wedged slot behind.
  map_.erase(key);
  build_done_.notify_all();
}

bool PlanCache::peek(std::uint64_t y_id, const Modes& cy) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = map_.find(Key{y_id, cy});
  return it != map_.end() && it->second.cached != nullptr;
}

void PlanCache::invalidate_tensor(std::uint64_t y_id) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.id != y_id) {
      ++it;
      continue;
    }
    if (it->second.cached != nullptr) {
      bytes_ -= it->second.bytes;
      lru_.erase(it->second.lru);
    }
    // Building entries are erased too; the builder notices and serves
    // its plan uncached.
    it = map_.erase(it);
  }
  build_done_.notify_all();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second.cached == nullptr) {
      ++it;  // leave building entries for their builders
      continue;
    }
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru);
    it = map_.erase(it);
  }
  build_done_.notify_all();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s = stats_;
  s.entries = lru_.size();
  s.retained_bytes = bytes_;
  return s;
}

std::string PlanCache::stats_json() const {
  const Stats s = stats();
  obs::JsonWriter w;
  w.begin_object();
  w.key("hits").value(s.hits);
  w.key("misses").value(s.misses);
  w.key("evictions").value(s.evictions);
  w.key("uncacheable").value(s.uncacheable);
  w.key("entries").value(static_cast<std::uint64_t>(s.entries));
  w.key("retained_bytes")
      .value(static_cast<std::uint64_t>(s.retained_bytes));
  w.end_object();
  return w.str();
}

void PlanCache::evict_for(std::size_t need) {
  if (cfg_.budget_bytes == 0) return;
  while (bytes_ + need > cfg_.budget_bytes && !lru_.empty()) {
    const Key victim = lru_.back();
    lru_.pop_back();
    const auto it = map_.find(victim);
    bytes_ -= it->second.bytes;
    map_.erase(it);
    ++stats_.evictions;
    SPARTA_COUNTER_ADD("serve.cache.evict", 1);
  }
}

}  // namespace sparta::serve
