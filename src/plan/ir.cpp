#include "plan/ir.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "serve/registry.hpp"

namespace sparta::plan {

namespace {

// Single-pass cursor over the statement text. Columns are 1-based so
// diagnostics point where an editor would.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("network spec, col " + std::to_string(pos_ + 1) + ": " + msg);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  /// Consumes `c` or fails naming what was expected.
  void expect(char c, const char* what) {
    if (peek() != c) {
      fail(std::string("expected ") + what + " ('" + c + "'), found " +
           describe(peek()));
    }
    ++pos_;
  }

  /// [A-Za-z_][A-Za-z0-9_/]* — '/' admitted so rejected reserved names
  /// ("__tmp/3") produce the prefix diagnostic, not a parse error.
  std::string identifier(const char* what) {
    skip_ws();
    const std::size_t start = pos_;
    auto head = [](char c) {
      return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c == '_';
    };
    auto tail = [&](char c) {
      return head(c) || (c >= '0' && c <= '9') || c == '/';
    };
    if (!head(peek())) {
      fail(std::string("expected ") + what + ", found " + describe(peek()));
    }
    while (pos_ < text_.size() && tail(text_[pos_])) ++pos_;
    return text_.substr(start, pos_ - start);
  }

 private:
  static std::string describe(char c) {
    if (c == '\0') return "end of input";
    return std::string("'") + c + "'";
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// NAME '[' label (',' label)* ']'
NetworkTensor parse_tensor(Cursor& cur, const char* what) {
  NetworkTensor t;
  t.name = cur.identifier(what);
  cur.skip_ws();
  cur.expect('[', "mode-label list opener");
  for (;;) {
    t.labels.push_back(cur.identifier("mode label"));
    cur.skip_ws();
    if (cur.peek() == ',') {
      cur.expect(',', "','");
      continue;
    }
    break;
  }
  cur.expect(']', "mode-label list closer");
  return t;
}

void check_unique_labels(const NetworkTensor& t) {
  for (std::size_t i = 0; i < t.labels.size(); ++i) {
    for (std::size_t j = i + 1; j < t.labels.size(); ++j) {
      if (t.labels[i] == t.labels[j]) {
        throw Error("network spec: tensor '" + t.name +
                    "' repeats mode label '" + t.labels[i] +
                    "' (diagonal extraction is not supported)");
      }
    }
  }
}

}  // namespace

std::string ContractionNetwork::canonical() const {
  auto spell = [](const std::string& name,
                  const std::vector<std::string>& labels) {
    std::string out = name + "[";
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i != 0) out += ",";
      out += labels[i];
    }
    return out + "]";
  };
  std::string out = spell(output_name, output_labels) + " =";
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    out += i == 0 ? " " : " * ";
    out += spell(inputs[i].name, inputs[i].labels);
  }
  return out;
}

ContractionNetwork parse_network(const std::string& text) {
  Cursor cur(text);
  ContractionNetwork net;

  const NetworkTensor out = parse_tensor(cur, "output tensor name");
  net.output_name = out.name;
  net.output_labels = out.labels;
  cur.skip_ws();
  cur.expect('=', "'='");

  for (;;) {
    cur.skip_ws();
    net.inputs.push_back(parse_tensor(cur, "input tensor name"));
    cur.skip_ws();
    if (cur.peek() == '*') {
      cur.expect('*', "'*'");
      continue;
    }
    break;
  }
  cur.skip_ws();
  if (!cur.at_end()) {
    cur.fail("expected '*' or end of statement");
  }

  if (net.inputs.size() < 2) {
    throw Error(
        "network spec: need at least two input tensors (a single-operand "
        "statement is not a contraction; use a plain request)");
  }

  const std::string_view tmp = serve::TensorRegistry::kTempPrefix;
  auto check_name = [&](const std::string& name) {
    if (name.compare(0, tmp.size(), tmp) == 0) {
      throw Error("network spec: tensor name '" + name +
                  "' uses the reserved prefix '" + std::string(tmp) +
                  "' (anonymous plan intermediates)");
    }
  };
  check_name(net.output_name);
  check_unique_labels(out);
  for (std::size_t i = 0; i < net.inputs.size(); ++i) {
    check_name(net.inputs[i].name);
    check_unique_labels(net.inputs[i]);
    for (std::size_t j = i + 1; j < net.inputs.size(); ++j) {
      if (net.inputs[i].name == net.inputs[j].name) {
        throw Error("network spec: input tensor '" + net.inputs[i].name +
                    "' appears twice (each operand needs a distinct name)");
      }
    }
    if (net.inputs[i].name == net.output_name) {
      throw Error("network spec: output '" + net.output_name +
                  "' also appears as an input (in-place contraction is "
                  "not supported)");
    }
  }

  // Label census: how many inputs use each label (order-preserving map
  // not needed — diagnostics name the label, and validation below is
  // per label).
  std::map<std::string, int> uses;
  for (const NetworkTensor& t : net.inputs) {
    for (const std::string& l : t.labels) ++uses[l];
  }
  for (const auto& [label, n] : uses) {
    if (n > 2) {
      throw Error("network spec: mode label '" + label + "' appears in " +
                  std::to_string(n) +
                  " inputs; a label may join at most two tensors "
                  "(pairwise contractions only)");
    }
  }

  // Output labels: unique, and exactly the once-used (free) labels.
  for (std::size_t i = 0; i < net.output_labels.size(); ++i) {
    const std::string& l = net.output_labels[i];
    for (std::size_t j = i + 1; j < net.output_labels.size(); ++j) {
      if (l == net.output_labels[j]) {
        throw Error("network spec: output repeats mode label '" + l + "'");
      }
    }
    const auto it = uses.find(l);
    if (it == uses.end()) {
      throw Error("network spec: output mode label '" + l +
                  "' does not appear in any input");
    }
    if (it->second == 2) {
      throw Error("network spec: mode label '" + l +
                  "' is contracted (shared by two inputs) and cannot "
                  "appear in the output");
    }
  }
  for (const auto& [label, n] : uses) {
    if (n == 1 && std::find(net.output_labels.begin(),
                            net.output_labels.end(),
                            label) == net.output_labels.end()) {
      throw Error("network spec: free mode label '" + label +
                  "' is missing from the output (summing out a free "
                  "mode is not supported)");
    }
  }

  // Connectivity: union-find over inputs joined by shared labels. A
  // disconnected operand would force an outer-product step, which the
  // pairwise service API does not serve.
  std::vector<std::size_t> parent(net.inputs.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  auto find = [&](std::size_t a) {
    while (parent[a] != a) a = parent[a] = parent[parent[a]];
    return a;
  };
  for (const auto& [label, n] : uses) {
    if (n != 2) continue;
    std::size_t first = net.inputs.size();
    for (std::size_t i = 0; i < net.inputs.size(); ++i) {
      const auto& ls = net.inputs[i].labels;
      if (std::find(ls.begin(), ls.end(), label) == ls.end()) continue;
      if (first == net.inputs.size()) {
        first = i;
      } else {
        parent[find(i)] = find(first);
      }
    }
  }
  const std::size_t root = find(0);
  for (std::size_t i = 1; i < net.inputs.size(); ++i) {
    if (find(i) != root) {
      throw Error("network spec: tensor '" + net.inputs[i].name +
                  "' shares no mode label with the rest of the network "
                  "(disconnected networks would need an outer product)");
    }
  }
  return net;
}

}  // namespace sparta::plan
