#include "plan/executor.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sparta::plan {

namespace {

/// Process-wide monotonic plan correlation ids (1-based, like request
/// ids); shared across executors so merged traces never collide.
std::uint64_t next_plan_id() {
  static std::atomic<std::uint64_t> n{0};
  return n.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::vector<BoundInput> resolve_inputs(serve::ContractionService& svc,
                                       const ContractionNetwork& net) {
  std::vector<BoundInput> out;
  out.reserve(net.inputs.size());
  for (const NetworkTensor& t : net.inputs) {
    const serve::TensorRegistry::Handle h = svc.tensors().get(t.name);
    BoundInput b;
    b.name = t.name;
    b.dims = h.tensor->dims();
    b.nnz = h.tensor->nnz();
    b.registry_id = h.id;
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace

std::string PlanExecution::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("plan_id").value(plan_id);
  w.key("plan_cache_hit").value(plan_cache_hit);
  w.key("plan_seconds").value(plan_seconds);
  w.key("exec_seconds").value(exec_seconds);
  w.key("peak_temp_bytes")
      .value(static_cast<std::uint64_t>(peak_temp_bytes));
  w.key("nnz_z").value(
      static_cast<std::uint64_t>(z != nullptr ? z->nnz() : 0));
  if (!error.empty()) w.key("error").value(std::string_view(error));
  if (plan != nullptr) w.key("plan").raw(plan->to_json());
  w.key("steps").begin_array();
  for (const serve::ServeReport& r : steps) w.raw(r.to_json());
  w.end_array();
  w.end_object();
  return w.str();
}

PlanExecution PlanExecutor::run(const ContractionNetwork& net,
                                const ExecOptions& opts) {
  PlanExecution exec;
  exec.plan_id = next_plan_id();
  Timer plan_timer;
  std::shared_ptr<const NetworkPlan> plan;
  try {
    ExecOptions eff = opts;
    if (eff.plan.budget_bytes == 0) {
      eff.plan.budget_bytes = svc_.config().dram_budget_bytes;
    }
    const std::vector<BoundInput> inputs = resolve_inputs(svc_, net);
    const std::string key = NetworkPlanCache::key(net, inputs, eff.plan);
    if (eff.use_cache) plan = cache_.get(key);
    exec.plan_cache_hit = plan != nullptr;
    if (plan == nullptr) {
      plan = std::make_shared<NetworkPlan>(
          plan_network(net, inputs, eff.plan));
      if (eff.use_cache) cache_.put(key, plan);
    }
    exec.plan_seconds = plan_timer.seconds();
    return execute(net, std::move(plan), eff, std::move(exec));
  } catch (const std::exception& e) {
    exec.plan_seconds = plan_timer.seconds();
    exec.error = e.what();
    return exec;
  }
}

PlanExecution PlanExecutor::run_plan(const ContractionNetwork& net,
                                     std::shared_ptr<const NetworkPlan> plan,
                                     const ExecOptions& opts) {
  PlanExecution exec;
  exec.plan_id = next_plan_id();
  try {
    return execute(net, std::move(plan), opts, std::move(exec));
  } catch (const std::exception& e) {
    exec.error = e.what();
    return exec;
  }
}

PlanExecution PlanExecutor::execute(const ContractionNetwork& net,
                                    std::shared_ptr<const NetworkPlan> plan,
                                    const ExecOptions& opts,
                                    PlanExecution exec) {
  exec.plan = plan;
  const std::size_t n = net.inputs.size();
  Timer exec_timer;
  if (obs::trace_enabled()) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("plan_id").value(exec.plan_id);
    w.key("num_steps")
        .value(static_cast<std::uint64_t>(plan->steps.size()));
    w.key("cache_hit").value(exec.plan_cache_hit);
    w.end_object();
    obs::trace_instant("plan.start", w.str());
  }

  // node id -> registered name; ids < n are the (persistent) inputs,
  // the rest are "__tmp/" entries this execution owns.
  std::vector<std::string> node_name(n + plan->steps.size());
  for (std::size_t i = 0; i < n; ++i) node_name[i] = net.inputs[i].name;
  std::vector<std::string> live_temps;
  std::size_t live_temp_bytes = 0;
  auto drop_temp = [&](const std::string& name) {
    const auto it =
        std::find(live_temps.begin(), live_temps.end(), name);
    if (it == live_temps.end()) return;
    const serve::TensorRegistry::Handle h = svc_.tensors().try_get(name);
    if (h.valid()) live_temp_bytes -= h.tensor->footprint_bytes();
    svc_.tensors().drop(name);
    live_temps.erase(it);
  };
  auto cleanup = [&] {
    // Drop every still-live intermediate (error paths); reverse order
    // releases consumers before producers, though order is cosmetic —
    // in-flight handles keep tensors alive regardless.
    while (!live_temps.empty()) drop_temp(live_temps.back());
  };

  for (std::size_t k = 0; k < plan->steps.size(); ++k) {
    const PlanStepSpec& step = plan->steps[k];
    serve::ServeRequest req;
    req.x = node_name[step.x];
    req.y = node_name[step.y];
    req.cx = step.cx;
    req.cy = step.cy;
    req.force_variant = opts.force_variant;
    req.variant = opts.variant;
    req.plan_id = exec.plan_id;
    req.step_index = static_cast<int>(k);
    if (opts.deadline_ms > 0.0) {
      const double remaining =
          opts.deadline_ms - exec_timer.seconds() * 1000.0;
      if (remaining <= 0.0) {
        exec.error = "step " + std::to_string(k) + " (" + req.x + " x " +
                     req.y + "): plan deadline exceeded before submit";
        cleanup();
        exec.exec_seconds = exec_timer.seconds();
        return exec;
      }
      req.deadline_ms = remaining;
    }

    serve::ServeReport rep;
    try {
      rep = svc_.submit(std::move(req)).get();
    } catch (const std::exception& e) {
      exec.error = "step " + std::to_string(k) + " (" + step.x_name +
                   " x " + step.y_name + "): " + e.what();
      cleanup();
      exec.exec_seconds = exec_timer.seconds();
      return exec;
    }
    const bool final_step = k + 1 == plan->steps.size();
    if (!rep.ok() || rep.z == nullptr) {
      exec.error = "step " + std::to_string(k) + " (" + step.x_name +
                   " x " + step.y_name + "): " +
                   (rep.error.empty() ? "no result" : rep.error);
      exec.steps.push_back(std::move(rep));
      cleanup();
      exec.exec_seconds = exec_timer.seconds();
      return exec;
    }

    // Measured peak: operand/working temps were live while the step's
    // hash structures and result existed simultaneously.
    const std::size_t step_peak =
        live_temp_bytes + rep.z->footprint_bytes() + rep.stats.hty_bytes +
        rep.stats.hta_bytes;
    exec.peak_temp_bytes = std::max(exec.peak_temp_bytes, step_peak);

    if (final_step) {
      std::shared_ptr<const SparseTensor> z = rep.z;
      if (!plan->final_perm.empty()) {
        // The merge tree's free-X/free-Y ordering need not match the
        // declared output spec; permute (and restore sorted order)
        // once, at the end.
        auto owned = std::make_shared<SparseTensor>(*z);
        owned->permute_modes(plan->final_perm);
        owned->sort();
        z = std::move(owned);
      }
      exec.z = z;
      if (!opts.store_as.empty()) {
        try {
          svc_.load(opts.store_as, SparseTensor(*z));
        } catch (const std::exception& e) {
          exec.error = std::string("storing '") + opts.store_as +
                       "': " + e.what();
        }
      }
    } else {
      try {
        const std::string temp =
            svc_.tensors().register_temp(SparseTensor(*rep.z));
        node_name[n + k] = temp;
        live_temps.push_back(temp);
        live_temp_bytes += rep.z->footprint_bytes();
      } catch (const std::exception& e) {
        // Typically BudgetExceeded: the intermediate does not fit.
        exec.error = "step " + std::to_string(k) +
                     ": registering intermediate: " + e.what();
        exec.steps.push_back(std::move(rep));
        cleanup();
        exec.exec_seconds = exec_timer.seconds();
        return exec;
      }
      rep.z.reset();  // the registry copy is the live one now
    }
    exec.steps.push_back(std::move(rep));
    // A temp's single consumer has finished: release it immediately so
    // its budget charge does not overlap the next step's working set.
    if (step.x >= n) drop_temp(node_name[step.x]);
    if (step.y >= n) drop_temp(node_name[step.y]);
  }
  cleanup();
  exec.exec_seconds = exec_timer.seconds();
  SPARTA_COUNTER_ADD("plan.executions", 1);
  if (obs::trace_enabled()) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("plan_id").value(exec.plan_id);
    w.key("ok").value(exec.ok());
    w.end_object();
    obs::trace_instant("plan.done", w.str());
  }
  return exec;
}

}  // namespace sparta::plan
