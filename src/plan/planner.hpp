// Cost-driven contraction-order search over a validated network.
//
// The planner turns a ContractionNetwork plus per-input metadata
// (dims/nnz, known at plan time from TensorRegistry) into a binary merge
// tree of pairwise contraction steps. Search is exact bitmask dynamic
// programming over connected subnetworks for <= kMaxDpOperands inputs
// (the CoNST / "Minimum Cost Loop Nests" formulation specialized to
// pairwise steps), with a greedy cheapest-merge fallback above that.
//
// Each candidate step is costed with the paper's own machinery:
//   * intermediate nnz via uniform density propagation (the same model
//     test_estimator_accuracy holds to kEstimatorAccuracyFactor);
//   * bytes via Eq. 5 (HtY) + Eq. 6 (HtA) + COO payloads;
//   * seconds via the learned per-variant CostModel when one is loaded
//     (--selector-model), else an analytic operation-count proxy.
//
// PlanOptions::budget_bytes prunes candidates whose *peak intermediate
// footprint* — computed with the Sethi–Ullman recurrence over the two
// possible subtree evaluation orders — exceeds the budget, mirroring
// ContractOptions::budget semantics. The result is an explainable
// NetworkPlan: every step's predictions, the search method, and how
// many alternatives were rejected (and how many of those by budget).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "plan/ir.hpp"
#include "serve/costmodel.hpp"
#include "tensor/types.hpp"

namespace sparta::plan {

/// Above this operand count the exact subset DP (3^n splits) is
/// replaced by the greedy cheapest-pair search.
inline constexpr std::size_t kMaxDpOperands = 16;

/// Plan-time metadata for one network input, resolved from the registry
/// (or synthesized by --gen in tools).
struct BoundInput {
  std::string name;
  std::vector<index_t> dims;  ///< one per mode label, same order
  std::size_t nnz = 0;
  std::uint64_t registry_id = 0;  ///< staleness component of cache keys
};

/// One pairwise step of the plan. Operand references are node ids:
/// id < num_inputs names that input; id >= num_inputs names the result
/// of step (id - num_inputs). Steps are emitted in execution order, and
/// a step's operands always refer to earlier steps.
struct PlanStepSpec {
  std::size_t x = 0;  ///< node id of the X operand
  std::size_t y = 0;  ///< node id of the Y operand
  std::string x_name;  ///< input name, or "step<k>" for intermediates
  std::string y_name;
  Modes cx;  ///< contract-mode positions in X
  Modes cy;  ///< matching positions in Y
  std::vector<std::string> out_labels;  ///< free-X then free-Y order
  std::vector<index_t> out_dims;
  std::size_t est_nnz = 0;
  std::size_t est_bytes = 0;  ///< COO(x)+COO(y)+Eq.5+Eq.6+COO(out)
  double est_seconds = 0.0;
};

/// The chosen plan plus its explanation.
struct NetworkPlan {
  std::vector<PlanStepSpec> steps;
  /// Permutation taking the last step's mode order to the network's
  /// declared output-label order (empty = already in order).
  Modes final_perm;
  double est_total_seconds = 0.0;
  /// Peak intermediate footprint (temps + transient hash structures)
  /// of the chosen evaluation order; what budget pruning bounds.
  std::size_t est_peak_bytes = 0;
  std::uint64_t rejected_alternatives = 0;  ///< candidate merges not chosen
  std::uint64_t budget_pruned = 0;  ///< rejected specifically by budget
  std::string search;  ///< "dp", "greedy", or "fixed"

  /// Byte-deterministic JSON document (CI diffs two --dry-run runs).
  [[nodiscard]] std::string to_json() const;
};

struct PlanOptions {
  /// Peak-intermediate budget in bytes; 0 = unlimited. A network with
  /// no admissible plan under the budget throws sparta::Error.
  std::size_t budget_bytes = 0;
  /// Learned per-variant prior (may be null or empty — analytic proxy
  /// is used for variants the model cannot predict).
  const serve::CostModel* model = nullptr;
};

/// Searches the contraction order for `net`. `inputs` must parallel
/// net.inputs (same count/order, dims arity matching each label list;
/// shared labels must agree on dimension). Throws sparta::Error on
/// metadata mismatch or when the budget admits no plan.
[[nodiscard]] NetworkPlan plan_network(const ContractionNetwork& net,
                                       const std::vector<BoundInput>& inputs,
                                       const PlanOptions& opts = {});

/// Costs a caller-chosen left-deep order instead of searching:
/// `order` is a permutation of input indices; step k merges the
/// accumulated intermediate with inputs[order[k+1]]. Every step must be
/// connected (share a label). Budget is NOT enforced (this is the
/// baseline/bench path); estimates and peak are still reported.
[[nodiscard]] NetworkPlan plan_fixed_order(
    const ContractionNetwork& net, const std::vector<BoundInput>& inputs,
    const std::vector<std::size_t>& order, const PlanOptions& opts = {});

/// Every legal plan (all binary merge trees whose every step is
/// connected), costed like plan_network but without budget pruning.
/// Exponential in operand count — callers (fuzz --network, bench_plan)
/// keep networks tiny. Deterministic order.
[[nodiscard]] std::vector<NetworkPlan> enumerate_plans(
    const ContractionNetwork& net, const std::vector<BoundInput>& inputs,
    const PlanOptions& opts = {});

}  // namespace sparta::plan
