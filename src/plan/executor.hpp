// Multi-step plan execution through the ContractionService.
//
// The executor is the glue between the planner and the service: it
// resolves the network's inputs from the service's TensorRegistry,
// searches (or cache-hits) a NetworkPlan, then submits one ServeRequest
// per step. Intermediates are registered as anonymous "__tmp/" entries
// (budget-charged like any tensor) and dropped as soon as their single
// consumer step finishes; each step's request carries the plan's
// correlation pair (plan_id/step_index) so traces, statlog rows and the
// autotune loop see chain traffic as chains. The per-step deadline is
// the plan deadline minus time already spent, so a stuck chain unwinds
// exactly like a stuck request.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "plan/cache.hpp"
#include "plan/ir.hpp"
#include "plan/planner.hpp"
#include "serve/service.hpp"

namespace sparta::plan {

struct ExecOptions {
  /// End-to-end deadline across all steps, ms; 0 = none.
  double deadline_ms = 0.0;
  /// When non-empty, the final result is registered under this name.
  std::string store_as;
  /// Pin every step's variant instead of consulting the selector.
  bool force_variant = false;
  Algorithm variant = Algorithm::kSparta;
  /// Consult/populate the executor's NetworkPlanCache.
  bool use_cache = true;
  /// Search options. budget_bytes 0 inherits the service's DRAM
  /// budget (the plan must fit where it will run).
  PlanOptions plan;
};

/// Everything about one executed (or failed) network request.
struct PlanExecution {
  std::uint64_t plan_id = 0;
  bool plan_cache_hit = false;
  double plan_seconds = 0.0;  ///< search (or cache lookup) wall time
  double exec_seconds = 0.0;  ///< all steps, submit to final result
  /// Max over steps of live "__tmp/" bytes + the step's measured hash
  /// structures — the measured counterpart of NetworkPlan's
  /// est_peak_bytes.
  std::size_t peak_temp_bytes = 0;
  std::shared_ptr<const NetworkPlan> plan;
  std::vector<serve::ServeReport> steps;
  std::shared_ptr<const SparseTensor> z;  ///< null on failure
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }

  /// {"plan_id":..,"plan_cache_hit":..,...,"plan":{...},"steps":[...]}
  [[nodiscard]] std::string to_json() const;
};

class PlanExecutor {
 public:
  explicit PlanExecutor(serve::ContractionService& svc) : svc_(svc) {}

  /// Parses nothing — `net` is already validated. Resolves inputs,
  /// plans (through the cache), executes. Failures (unknown tensor,
  /// budget, per-step errors, deadline) are reported in the returned
  /// PlanExecution, not thrown.
  [[nodiscard]] PlanExecution run(const ContractionNetwork& net,
                                  const ExecOptions& opts = {});

  /// Executes a caller-supplied plan (bench baselines, fuzz orders)
  /// without consulting the cache or the search.
  [[nodiscard]] PlanExecution run_plan(
      const ContractionNetwork& net,
      std::shared_ptr<const NetworkPlan> plan, const ExecOptions& opts = {});

  [[nodiscard]] NetworkPlanCache& cache() { return cache_; }

 private:
  PlanExecution execute(const ContractionNetwork& net,
                        std::shared_ptr<const NetworkPlan> plan,
                        const ExecOptions& opts, PlanExecution exec);

  serve::ContractionService& svc_;
  NetworkPlanCache cache_;
};

}  // namespace sparta::plan
