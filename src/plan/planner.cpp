#include "plan/planner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "contraction/estimators.hpp"
#include "obs/json.hpp"

namespace sparta::plan {

namespace {

using Mask = std::uint64_t;      // subset of operands (inputs)
using LabelMask = std::uint64_t; // subset of distinct mode labels

constexpr std::size_t kMaxOperands = 64;
constexpr std::size_t kMaxLabels = 64;
constexpr std::size_t kMaxEnumerateOperands = 6;
constexpr double kInfCost = std::numeric_limits<double>::infinity();

[[nodiscard]] int popcount(Mask m) {
  int n = 0;
  while (m != 0) {
    m &= m - 1;
    ++n;
  }
  return n;
}

[[nodiscard]] std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

[[nodiscard]] std::size_t coo_bytes(double nnz, int order) {
  const double per =
      static_cast<double>(order) * sizeof(index_t) + sizeof(value_t);
  const double v = std::min(nnz * per, 9.0e15);
  return v <= 0.0 ? 0 : static_cast<std::size_t>(v);
}

[[nodiscard]] std::size_t round_nnz(double v) {
  if (v <= 0.0) return 0;
  return static_cast<std::size_t>(std::llround(std::min(v, 9.0e15)));
}

/// Everything the search needs, resolved once per plan_* call: the
/// distinct label universe (order of first appearance), per-label dims
/// and user masks, per-input label masks and index spaces.
struct Ctx {
  const ContractionNetwork* net = nullptr;
  const std::vector<BoundInput>* inputs = nullptr;
  PlanOptions opts;

  std::vector<std::string> labels;
  std::vector<double> label_dim;
  std::vector<Mask> label_users;       // which inputs use each label
  std::vector<LabelMask> input_labels; // which labels each input uses
  std::vector<double> input_space;     // product of the input's dims
};

Ctx make_ctx(const ContractionNetwork& net,
             const std::vector<BoundInput>& inputs,
             const PlanOptions& opts) {
  if (inputs.size() != net.inputs.size()) {
    throw Error("plan: bound-input count (" + std::to_string(inputs.size()) +
                ") does not match the network's operand count (" +
                std::to_string(net.inputs.size()) + ")");
  }
  if (net.inputs.size() > kMaxOperands) {
    throw Error("plan: network has " + std::to_string(net.inputs.size()) +
                " operands; the planner supports at most " +
                std::to_string(kMaxOperands));
  }
  Ctx ctx;
  ctx.net = &net;
  ctx.inputs = &inputs;
  ctx.opts = opts;
  ctx.input_labels.resize(inputs.size());
  ctx.input_space.resize(inputs.size(), 1.0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const NetworkTensor& t = net.inputs[i];
    const BoundInput& b = inputs[i];
    if (b.name != t.name) {
      throw Error("plan: bound input #" + std::to_string(i) + " is '" +
                  b.name + "' but the network names operand '" + t.name +
                  "'");
    }
    if (b.dims.size() != t.labels.size()) {
      throw Error("plan: tensor '" + t.name + "' has " +
                  std::to_string(b.dims.size()) + " modes but the network "
                  "labels " + std::to_string(t.labels.size()));
    }
    for (std::size_t m = 0; m < t.labels.size(); ++m) {
      const std::string& l = t.labels[m];
      const auto it =
          std::find(ctx.labels.begin(), ctx.labels.end(), l);
      std::size_t li;
      if (it == ctx.labels.end()) {
        li = ctx.labels.size();
        if (li >= kMaxLabels) {
          throw Error("plan: network uses more than " +
                      std::to_string(kMaxLabels) + " distinct mode labels");
        }
        ctx.labels.push_back(l);
        ctx.label_dim.push_back(static_cast<double>(b.dims[m]));
        ctx.label_users.push_back(0);
      } else {
        li = static_cast<std::size_t>(it - ctx.labels.begin());
        if (ctx.label_dim[li] != static_cast<double>(b.dims[m])) {
          throw Error("plan: mode label '" + l + "' has dimension " +
                      std::to_string(b.dims[m]) + " in tensor '" + t.name +
                      "' but " +
                      std::to_string(
                          static_cast<std::size_t>(ctx.label_dim[li])) +
                      " elsewhere");
        }
      }
      ctx.label_users[li] |= Mask{1} << i;
      ctx.input_labels[i] |= LabelMask{1} << li;
      ctx.input_space[i] *= static_cast<double>(b.dims[m]);
    }
  }
  return ctx;
}

/// Labels of the result of contracting subset `s` together: a label
/// survives iff exactly one of its users is inside `s`.
[[nodiscard]] LabelMask result_labels(const Ctx& ctx, Mask s) {
  LabelMask out = 0;
  for (std::size_t li = 0; li < ctx.labels.size(); ++li) {
    if (popcount(ctx.label_users[li] & s) == 1) out |= LabelMask{1} << li;
  }
  return out;
}

[[nodiscard]] double label_space(const Ctx& ctx, LabelMask lm) {
  double space = 1.0;
  for (std::size_t li = 0; li < ctx.labels.size(); ++li) {
    if (lm & (LabelMask{1} << li)) space *= ctx.label_dim[li];
  }
  return space;
}

/// Uniform density propagation: the expected nnz of the subset's
/// result is (product of member nnz) / (space of the labels contracted
/// *within* the subset), capped by the result's index space. For a
/// singleton this reduces to the input's real nnz.
[[nodiscard]] double subset_est_nnz(const Ctx& ctx, Mask s) {
  double raw = 1.0;
  for (std::size_t i = 0; i < ctx.inputs->size(); ++i) {
    if (s & (Mask{1} << i)) {
      raw *= static_cast<double>((*ctx.inputs)[i].nnz);
    }
  }
  double contracted = 1.0;
  for (std::size_t li = 0; li < ctx.labels.size(); ++li) {
    const Mask users = ctx.label_users[li];
    if (popcount(users) == 2 && (users & s) == users) {
      contracted *= ctx.label_dim[li];
    }
  }
  const double free_space = label_space(ctx, result_labels(ctx, s));
  return std::min(free_space, raw / contracted);
}

/// Metrics of one candidate pairwise merge, oriented and costed.
struct StepEst {
  bool a_is_y = false;  ///< orientation: which side feeds HtY
  double seconds = 0.0;
  std::size_t bytes = 0;       ///< full working set of the step
  std::size_t hash_bytes = 0;  ///< transient Eq.5 + Eq.6 share of bytes
  std::size_t est_out_nnz = 0;
  int num_contract = 0;
};

StepEst cost_step(const Ctx& ctx, Mask a, Mask b, double nnz_a,
                  double nnz_b, double nnz_out) {
  const LabelMask la = result_labels(ctx, a);
  const LabelMask lb = result_labels(ctx, b);
  const LabelMask shared = la & lb;
  StepEst est;
  est.num_contract = popcount(shared);
  // Orientation: prefer the persistent original input on the Y side so
  // the service's HtY PlanCache can amortize across requests; between
  // two peers, hash the smaller operand. Ties break on the lower mask
  // for determinism.
  const bool a_single = popcount(a) == 1;
  const bool b_single = popcount(b) == 1;
  if (a_single != b_single) {
    est.a_is_y = a_single;
  } else {
    est.a_is_y = nnz_a < nnz_b || (nnz_a == nnz_b && a < b);
  }
  const double nnz_x = est.a_is_y ? nnz_b : nnz_a;
  const double nnz_y = est.a_is_y ? nnz_a : nnz_b;
  const LabelMask lx = est.a_is_y ? lb : la;
  const LabelMask ly = est.a_is_y ? la : lb;
  const int order_x = popcount(lx);
  const int order_y = popcount(ly);
  const int num_free_y = order_y - est.num_contract;
  const double contract_space = label_space(ctx, shared);

  // Eq. 5: HtY footprint for the Y side.
  const std::size_t rounded_y = round_nnz(nnz_y);
  const std::size_t hty = estimate_hty_bytes(
      rounded_y, order_y, pow2_at_least(std::max<std::size_t>(rounded_y, 64)));
  // Eq. 6 upper bound with uniform group sizes: the largest X
  // sub-tensor / HtY group is estimated as nnz over distinct groups.
  const double free_space_x = label_space(ctx, lx & ~shared);
  const double groups_x = std::max(1.0, std::min(nnz_x, free_space_x));
  const double groups_y = std::max(1.0, std::min(nnz_y, contract_space));
  const auto fmax_x =
      static_cast<std::size_t>(std::ceil(std::max(1.0, nnz_x / groups_x)));
  const auto fmax_y =
      static_cast<std::size_t>(std::ceil(std::max(1.0, nnz_y / groups_y)));
  const std::size_t hta = estimate_hta_bytes(
      fmax_x, fmax_y, num_free_y,
      pow2_at_least(std::max<std::size_t>(fmax_x * fmax_y, 64)));

  est.est_out_nnz = round_nnz(nnz_out);
  const int order_out = popcount((lx | ly) & ~shared);
  est.hash_bytes = hty + hta;
  est.bytes = coo_bytes(nnz_x, order_x) + coo_bytes(nnz_y, order_y) +
              est.hash_bytes + coo_bytes(nnz_out, order_out);

  // Expected scalar multiplies under the same uniformity assumption.
  const double multiplies = nnz_x * nnz_y / std::max(1.0, contract_space);
  double seconds = kInfCost;
  if (ctx.opts.model != nullptr && !ctx.opts.model->empty()) {
    serve::CostFeatures f;
    f.nnz_x = round_nnz(nnz_x);
    f.nnz_y = rounded_y;
    f.order_y = order_y;
    f.num_contract_modes = est.num_contract;
    f.density_x = std::min(1.0, nnz_x / std::max(1.0, label_space(ctx, lx)));
    f.density_y = std::min(1.0, nnz_y / std::max(1.0, label_space(ctx, ly)));
    for (const Algorithm v : serve::CostModel::kVariants) {
      if (!ctx.opts.model->has(v)) continue;
      seconds = std::min(seconds, ctx.opts.model->predict_seconds(v, f));
    }
  }
  if (seconds == kInfCost) {
    // Analytic proxy: touch every input non-zero once, every expected
    // multiply once, every output non-zero once.
    seconds = 1e-8 * (nnz_x + nnz_y + multiplies + nnz_out);
  }
  est.seconds = seconds;
  return est;
}

/// Per-subtree annotation shared by the DP and the emitters.
struct SubInfo {
  double est_nnz = 0.0;
  std::size_t temp_bytes = 0;  ///< COO bytes of the intermediate (0: leaf)
  std::size_t peak = 0;        ///< Sethi–Ullman peak of intermediates
  double seconds = 0.0;        ///< total predicted seconds of the subtree
  bool a_first = true;         ///< evaluate the `a` side first
};

/// Computes a subtree's annotation from its two annotated children.
/// The peak recurrence considers both evaluation orders: whichever
/// subtree runs second does so with the first one's result resident.
SubInfo combine(const Ctx& ctx, Mask a, Mask b, const SubInfo& ia,
                const SubInfo& ib, const StepEst& step) {
  SubInfo out;
  const Mask s = a | b;
  out.est_nnz = subset_est_nnz(ctx, s);
  const bool is_root = s == (Mask{1} << ctx.inputs->size()) - 1;
  // The root result is the request's Z (returned / stored under its own
  // name), not a "__tmp/" intermediate — it does not count toward the
  // intermediate peak.
  out.temp_bytes =
      is_root ? 0
              : coo_bytes(out.est_nnz, popcount(result_labels(ctx, s)));
  const std::size_t live_at_merge =
      ia.temp_bytes + ib.temp_bytes + step.hash_bytes + out.temp_bytes;
  const std::size_t a_first_peak =
      std::max(ia.peak, ia.temp_bytes + ib.peak);
  const std::size_t b_first_peak =
      std::max(ib.peak, ib.temp_bytes + ia.peak);
  out.a_first = a_first_peak <= b_first_peak;
  out.peak =
      std::max(live_at_merge, std::min(a_first_peak, b_first_peak));
  out.seconds = ia.seconds + ib.seconds + step.seconds;
  return out;
}

[[nodiscard]] SubInfo leaf_info(const Ctx& ctx, std::size_t i) {
  SubInfo info;
  info.est_nnz = static_cast<double>((*ctx.inputs)[i].nnz);
  return info;
}

/// A full plan shape: for every internal subset, the chosen `a` side.
using SplitMap = std::map<Mask, Mask>;

/// Turns a split map into the final NetworkPlan: annotates each
/// subtree, emits steps in the chosen evaluation order, resolves
/// contract-mode positions and the final output permutation.
NetworkPlan emit_plan(const Ctx& ctx, const SplitMap& splits,
                      const std::string& search) {
  const std::size_t n = ctx.inputs->size();
  NetworkPlan plan;
  plan.search = search;

  std::map<Mask, SubInfo> info;
  // Annotate bottom-up (recursive lambda via explicit stack-free
  // recursion).
  auto annotate = [&](auto&& self, Mask s) -> const SubInfo& {
    const auto it = info.find(s);
    if (it != info.end()) return it->second;
    if (popcount(s) == 1) {
      std::size_t i = 0;
      while ((s & (Mask{1} << i)) == 0) ++i;
      return info.emplace(s, leaf_info(ctx, i)).first->second;
    }
    const Mask a = splits.at(s);
    const Mask b = s ^ a;
    const SubInfo& ia = self(self, a);
    const SubInfo& ib = self(self, b);
    const StepEst step =
        cost_step(ctx, a, b, ia.est_nnz, ib.est_nnz, subset_est_nnz(ctx, s));
    const SubInfo combined = combine(ctx, a, b, ia, ib, step);
    return info.emplace(s, combined).first->second;
  };
  const Mask full = (Mask{1} << n) - 1;
  annotate(annotate, full);

  // Emission: walk the tree in the annotated evaluation order, handing
  // each subtree a node id (inputs: 0..n-1, steps: n, n+1, ...).
  struct Node {
    std::size_t id = 0;
    std::string name;
    std::vector<std::string> labels;
    std::vector<index_t> dims;
  };
  auto emit = [&](auto&& self, Mask s) -> Node {
    if (popcount(s) == 1) {
      std::size_t i = 0;
      while ((s & (Mask{1} << i)) == 0) ++i;
      Node node;
      node.id = i;
      node.name = (*ctx.inputs)[i].name;
      node.labels = ctx.net->inputs[i].labels;
      node.dims = (*ctx.inputs)[i].dims;
      return node;
    }
    const Mask a = splits.at(s);
    const Mask b = s ^ a;
    const SubInfo& si = info.at(s);
    Node na, nb;
    if (si.a_first) {
      na = self(self, a);
      nb = self(self, b);
    } else {
      nb = self(self, b);
      na = self(self, a);
    }
    const SubInfo& ia = info.at(a);
    const SubInfo& ib = info.at(b);
    const StepEst step =
        cost_step(ctx, a, b, ia.est_nnz, ib.est_nnz, si.est_nnz);
    const Node& nx = step.a_is_y ? nb : na;
    const Node& ny = step.a_is_y ? na : nb;

    PlanStepSpec spec;
    spec.x = nx.id;
    spec.y = ny.id;
    spec.x_name = nx.name;
    spec.y_name = ny.name;
    // einsum convention: scan X's labels in order; each label also in Y
    // becomes the next (cx, cy) pair, the rest stay free.
    for (std::size_t i = 0; i < nx.labels.size(); ++i) {
      const auto it =
          std::find(ny.labels.begin(), ny.labels.end(), nx.labels[i]);
      if (it == ny.labels.end()) continue;
      spec.cx.push_back(static_cast<int>(i));
      spec.cy.push_back(static_cast<int>(it - ny.labels.begin()));
    }
    auto push_free = [&](const Node& node, const Node& other) {
      for (std::size_t i = 0; i < node.labels.size(); ++i) {
        if (std::find(other.labels.begin(), other.labels.end(),
                      node.labels[i]) != other.labels.end()) {
          continue;
        }
        spec.out_labels.push_back(node.labels[i]);
        spec.out_dims.push_back(node.dims[i]);
      }
    };
    push_free(nx, ny);
    push_free(ny, nx);
    spec.est_nnz = step.est_out_nnz;
    spec.est_bytes = step.bytes;
    spec.est_seconds = step.seconds;

    Node node;
    node.id = n + plan.steps.size();
    node.name = "step" + std::to_string(plan.steps.size());
    node.labels = spec.out_labels;
    node.dims = spec.out_dims;
    plan.steps.push_back(std::move(spec));
    return node;
  };
  const Node root = emit(emit, full);

  plan.est_total_seconds = info.at(full).seconds;
  plan.est_peak_bytes = info.at(full).peak;

  // Map the declared output-label order onto the last step's order.
  bool identity = root.labels.size() == ctx.net->output_labels.size();
  plan.final_perm.clear();
  for (std::size_t k = 0; k < ctx.net->output_labels.size(); ++k) {
    const auto it = std::find(root.labels.begin(), root.labels.end(),
                              ctx.net->output_labels[k]);
    SPARTA_ASSERT(it != root.labels.end());
    const auto pos = static_cast<int>(it - root.labels.begin());
    if (pos != static_cast<int>(k)) identity = false;
    plan.final_perm.push_back(pos);
  }
  if (identity) plan.final_perm.clear();
  return plan;
}

}  // namespace

std::string NetworkPlan::to_json() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("search").value(std::string_view(search));
  w.key("num_steps").value(static_cast<std::uint64_t>(steps.size()));
  w.key("steps").begin_array();
  for (std::size_t k = 0; k < steps.size(); ++k) {
    const PlanStepSpec& s = steps[k];
    w.begin_object();
    w.key("step_index").value(static_cast<std::uint64_t>(k));
    w.key("x").value(std::string_view(s.x_name));
    w.key("y").value(std::string_view(s.y_name));
    auto modes = [&](const char* key, const Modes& m) {
      w.key(key).begin_array();
      for (const int v : m) w.value(v);
      w.end_array();
    };
    modes("cx", s.cx);
    modes("cy", s.cy);
    w.key("out_labels").begin_array();
    for (const std::string& l : s.out_labels) w.value(std::string_view(l));
    w.end_array();
    w.key("est_nnz").value(static_cast<std::uint64_t>(s.est_nnz));
    w.key("est_bytes").value(static_cast<std::uint64_t>(s.est_bytes));
    w.key("est_seconds").value(s.est_seconds);
    w.end_object();
  }
  w.end_array();
  w.key("est_total_seconds").value(est_total_seconds);
  w.key("est_peak_bytes").value(static_cast<std::uint64_t>(est_peak_bytes));
  w.key("rejected_alternatives").value(rejected_alternatives);
  w.key("budget_pruned").value(budget_pruned);
  w.end_object();
  return w.str();
}

NetworkPlan plan_network(const ContractionNetwork& net,
                         const std::vector<BoundInput>& inputs,
                         const PlanOptions& opts) {
  const Ctx ctx = make_ctx(net, inputs, opts);
  const std::size_t n = inputs.size();

  if (n > kMaxDpOperands) {
    // Greedy cheapest-connected-merge fallback: no optimality claim,
    // but linear-ish in merges and deterministic.
    struct Live {
      Mask mask;
      SubInfo info;
    };
    std::vector<Live> live;
    for (std::size_t i = 0; i < n; ++i) {
      live.push_back({Mask{1} << i, leaf_info(ctx, i)});
    }
    SplitMap splits;
    std::uint64_t considered = 0;
    while (live.size() > 1) {
      double best_cost = kInfCost;
      std::size_t bi = 0, bj = 0;
      for (std::size_t i = 0; i < live.size(); ++i) {
        for (std::size_t j = i + 1; j < live.size(); ++j) {
          const LabelMask shared = result_labels(ctx, live[i].mask) &
                                   result_labels(ctx, live[j].mask);
          if (shared == 0) continue;
          ++considered;
          const StepEst step = cost_step(
              ctx, live[i].mask, live[j].mask, live[i].info.est_nnz,
              live[j].info.est_nnz,
              subset_est_nnz(ctx, live[i].mask | live[j].mask));
          if (step.seconds < best_cost) {
            best_cost = step.seconds;
            bi = i;
            bj = j;
          }
        }
      }
      SPARTA_ASSERT(best_cost != kInfCost);  // network is connected
      const Mask a = live[bi].mask;
      const Mask b = live[bj].mask;
      const StepEst step =
          cost_step(ctx, a, b, live[bi].info.est_nnz, live[bj].info.est_nnz,
                    subset_est_nnz(ctx, a | b));
      Live merged{a | b,
                  combine(ctx, a, b, live[bi].info, live[bj].info, step)};
      splits[a | b] = a;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(bj));
      live[bi] = std::move(merged);
    }
    NetworkPlan plan = emit_plan(ctx, splits, "greedy");
    plan.rejected_alternatives = considered - (n - 1);
    if (opts.budget_bytes != 0 && plan.est_peak_bytes > opts.budget_bytes) {
      throw Error(
          "plan: greedy order's estimated peak intermediate footprint (" +
          std::to_string(plan.est_peak_bytes) + " bytes) exceeds the " +
          std::to_string(opts.budget_bytes) + "-byte budget");
    }
    return plan;
  }

  // Exact bitmask DP over connected subsets. dp[s] holds the cheapest
  // way to fully contract subset s; infeasible subsets (disconnected,
  // or every candidate over budget) stay at infinite cost.
  const Mask full = (Mask{1} << n) - 1;
  struct DpEntry {
    double cost = kInfCost;
    Mask split = 0;
    SubInfo info;
  };
  std::vector<DpEntry> dp(static_cast<std::size_t>(full) + 1);
  for (std::size_t i = 0; i < n; ++i) {
    DpEntry& e = dp[std::size_t{1} << i];
    e.cost = 0.0;
    e.info = leaf_info(ctx, i);
  }
  std::uint64_t considered = 0;
  std::uint64_t budget_pruned = 0;
  for (Mask s = 1; s <= full; ++s) {
    if (popcount(s) < 2) continue;
    DpEntry& entry = dp[s];
    const double out_nnz = subset_est_nnz(ctx, s);
    // Enumerate proper splits once per unordered pair by anchoring the
    // lowest operand of s on the `a` side.
    const Mask low = s & (~s + 1);
    for (Mask a = (s - 1) & s; a != 0; a = (a - 1) & s) {
      if ((a & low) == 0) continue;
      const Mask b = s ^ a;
      const DpEntry& ea = dp[a];
      const DpEntry& eb = dp[b];
      if (ea.cost == kInfCost || eb.cost == kInfCost) continue;
      const LabelMask shared =
          result_labels(ctx, a) & result_labels(ctx, b);
      if (shared == 0) continue;  // would be an outer product
      ++considered;
      const StepEst step =
          cost_step(ctx, a, b, ea.info.est_nnz, eb.info.est_nnz, out_nnz);
      const SubInfo merged = combine(ctx, a, b, ea.info, eb.info, step);
      if (opts.budget_bytes != 0 && merged.peak > opts.budget_bytes) {
        ++budget_pruned;
        continue;
      }
      const double cost = merged.seconds;
      const bool better =
          cost < entry.cost ||
          (cost == entry.cost &&
           (merged.peak < entry.info.peak ||
            (merged.peak == entry.info.peak && a < entry.split)));
      if (entry.cost == kInfCost || better) {
        entry.cost = cost;
        entry.split = a;
        entry.info = merged;
      }
    }
  }
  if (dp[full].cost == kInfCost) {
    if (opts.budget_bytes != 0 && budget_pruned > 0) {
      throw Error("plan: no contraction order fits the " +
                  std::to_string(opts.budget_bytes) +
                  "-byte peak-intermediate budget (" +
                  std::to_string(budget_pruned) +
                  " candidate merges pruned); raise the budget");
    }
    throw Error("plan: network admits no connected contraction order");
  }
  SplitMap splits;
  auto collect = [&](auto&& self, Mask s) -> void {
    if (popcount(s) < 2) return;
    splits[s] = dp[s].split;
    self(self, dp[s].split);
    self(self, s ^ dp[s].split);
  };
  collect(collect, full);
  NetworkPlan plan = emit_plan(ctx, splits, "dp");
  plan.rejected_alternatives = considered - static_cast<std::uint64_t>(
                                                splits.size());
  plan.budget_pruned = budget_pruned;
  return plan;
}

NetworkPlan plan_fixed_order(const ContractionNetwork& net,
                             const std::vector<BoundInput>& inputs,
                             const std::vector<std::size_t>& order,
                             const PlanOptions& opts) {
  const Ctx ctx = make_ctx(net, inputs, opts);
  const std::size_t n = inputs.size();
  if (order.size() != n) {
    throw Error("plan: fixed order lists " + std::to_string(order.size()) +
                " operands, network has " + std::to_string(n));
  }
  std::vector<bool> seen(n, false);
  for (const std::size_t i : order) {
    if (i >= n || seen[i]) {
      throw Error("plan: fixed order is not a permutation of 0.." +
                  std::to_string(n - 1));
    }
    seen[i] = true;
  }
  SplitMap splits;
  Mask acc = Mask{1} << order[0];
  for (std::size_t k = 1; k < n; ++k) {
    const Mask next = Mask{1} << order[k];
    if ((result_labels(ctx, acc) & result_labels(ctx, next)) == 0) {
      throw Error("plan: fixed order reaches tensor '" +
                  inputs[order[k]].name +
                  "' before any label connects it (outer product)");
    }
    splits[acc | next] = acc;
    acc |= next;
  }
  return emit_plan(ctx, splits, "fixed");
}

std::vector<NetworkPlan> enumerate_plans(
    const ContractionNetwork& net, const std::vector<BoundInput>& inputs,
    const PlanOptions& opts) {
  const Ctx ctx = make_ctx(net, inputs, opts);
  const std::size_t n = inputs.size();
  if (n > kMaxEnumerateOperands) {
    throw Error("plan: enumerate_plans supports at most " +
                std::to_string(kMaxEnumerateOperands) + " operands, got " +
                std::to_string(n));
  }
  const Mask full = (Mask{1} << n) - 1;
  // All ways to contract subset s, as partial split maps.
  auto trees = [&](auto&& self, Mask s) -> std::vector<SplitMap> {
    if (popcount(s) == 1) return {SplitMap{}};
    std::vector<SplitMap> out;
    const Mask low = s & (~s + 1);
    for (Mask a = (s - 1) & s; a != 0; a = (a - 1) & s) {
      if ((a & low) == 0) continue;
      const Mask b = s ^ a;
      if ((result_labels(ctx, a) & result_labels(ctx, b)) == 0) continue;
      for (const SplitMap& ta : self(self, a)) {
        for (const SplitMap& tb : self(self, b)) {
          SplitMap m = ta;
          m.insert(tb.begin(), tb.end());
          m[s] = a;
          out.push_back(std::move(m));
        }
      }
    }
    return out;
  };
  std::vector<NetworkPlan> plans;
  for (const SplitMap& m : trees(trees, full)) {
    plans.push_back(emit_plan(ctx, m, "fixed"));
  }
  return plans;
}

}  // namespace sparta::plan
