// Tensor-network IR for the contraction-plan compiler (src/plan/).
//
// The textual form is an einsum-style network statement:
//
//   Z[i,l] = A[i,j] * B[j,k] * C[k,l]
//
// Named input tensors carry mode *labels*; a label shared by two inputs
// is contracted at the pairwise step that merges them, a label that
// appears in exactly one input is free and must appear in the output
// spec. Parsing produces a validated ContractionNetwork whose invariants
// make every planner step a plain pairwise contraction the existing
// engine already executes:
//
//   * exactly one '=', at least two operands on the right;
//   * labels are unique within one tensor (no diagonals);
//   * each label appears in at most two inputs (pairwise contractions
//     only — hyperedges would need multi-way steps);
//   * a twice-used label is contracted and must NOT be in the output;
//   * a once-used label is free and MUST be in the output (no sum-out);
//   * the output labels are exactly the free labels, each once;
//   * the network is connected (a disconnected operand would force an
//     outer product, which the service's pairwise API does not serve);
//   * tensor names must not use TensorRegistry's reserved "__tmp/"
//     prefix.
//
// Diagnostics follow the tensor-file parser style: every error names
// the offending column ("network spec, col N: ...") and what was
// expected.
#pragma once

#include <string>
#include <vector>

namespace sparta::plan {

/// One named operand with its mode labels, e.g. A[i,j].
struct NetworkTensor {
  std::string name;
  std::vector<std::string> labels;
};

/// A validated contraction network.
struct ContractionNetwork {
  std::string output_name;
  std::vector<std::string> output_labels;
  std::vector<NetworkTensor> inputs;

  /// Canonical textual form (single spaces, no extras): parsing the
  /// result reproduces the same network. Used as the PlanCache key
  /// component so differently-spaced spellings of one network share a
  /// cache entry.
  [[nodiscard]] std::string canonical() const;
};

/// Parses and validates a network statement; throws sparta::Error with
/// a column-anchored diagnostic on malformed or invalid input.
[[nodiscard]] ContractionNetwork parse_network(const std::string& text);

}  // namespace sparta::plan
