// LRU cache of searched NetworkPlans.
//
// Searching a 4-operand network is microseconds, but production chain
// traffic repeats the same network shape against the same registered
// inputs thousands of times — caching the searched plan removes the DP
// from the hot path entirely and, more importantly, keeps the executor
// deterministic across repeats (same plan object, same step order, so
// the service's HtY PlanCache sees identical per-step keys every time).
//
// Keys capture everything the search depends on: the canonical network
// text, each input's registry id (a reload invalidates naturally, same
// trick TensorRegistry plays), the budget, and the cost-model id.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "plan/planner.hpp"

namespace sparta::plan {

class NetworkPlanCache {
 public:
  explicit NetworkPlanCache(std::size_t capacity = 128)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// The composite cache key for one (network, inputs, options) tuple.
  [[nodiscard]] static std::string key(
      const ContractionNetwork& net, const std::vector<BoundInput>& inputs,
      const PlanOptions& opts);

  /// The cached plan, or null. A hit refreshes LRU order.
  [[nodiscard]] std::shared_ptr<const NetworkPlan> get(
      const std::string& key);

  /// Inserts (or refreshes) `key`; evicts the least recently used
  /// entry beyond capacity.
  void put(const std::string& key, std::shared_ptr<const NetworkPlan> plan);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] Stats stats() const;

  void clear();

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const NetworkPlan> plan;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sparta::plan
