#include "plan/cache.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace sparta::plan {

std::string NetworkPlanCache::key(const ContractionNetwork& net,
                                  const std::vector<BoundInput>& inputs,
                                  const PlanOptions& opts) {
  std::string k = net.canonical();
  for (const BoundInput& b : inputs) {
    k += "|" + std::to_string(b.registry_id);
  }
  k += "|budget=" + std::to_string(opts.budget_bytes);
  k += "|model=";
  if (opts.model != nullptr) k += opts.model->id();
  return k;
}

std::shared_ptr<const NetworkPlan> NetworkPlanCache::get(
    const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    SPARTA_COUNTER_ADD("plan.cache.misses", 1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  SPARTA_COUNTER_ADD("plan.cache.hits", 1);
  return it->second->plan;
}

void NetworkPlanCache::put(const std::string& key,
                           std::shared_ptr<const NetworkPlan> plan) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  map_[key] = lru_.begin();
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

NetworkPlanCache::Stats NetworkPlanCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {hits_, misses_, map_.size()};
}

void NetworkPlanCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  lru_.clear();
  map_.clear();
}

}  // namespace sparta::plan
