// Quickstart: the paper's walk-through contraction (Fig. 1).
//
//   Z = X ×_{3,4}^{1,2} Y
//
// contracts two tiny fourth-order tensors over their last/first two
// modes, printing every pipeline stage's timing and the result.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "common/format.hpp"
#include "contraction/contract.hpp"
#include "tensor/sparse_tensor.hpp"

int main() {
  using namespace sparta;

  // X ∈ R^{2×2×2×2}, 4 non-zeros (the Fig. 1 example, zero-based).
  SparseTensor x({2, 2, 2, 2});
  x.append(std::vector<index_t>{0, 0, 0, 1}, 1.0);
  x.append(std::vector<index_t>{0, 1, 0, 0}, 2.0);
  x.append(std::vector<index_t>{1, 0, 1, 0}, 3.0);
  x.append(std::vector<index_t>{1, 1, 0, 1}, 5.0);

  // Y ∈ R^{2×2×2×4}, 3 non-zeros.
  SparseTensor y({2, 2, 2, 4});
  y.append(std::vector<index_t>{0, 0, 0, 3}, 4.0);
  y.append(std::vector<index_t>{0, 1, 1, 2}, 6.0);
  y.append(std::vector<index_t>{1, 0, 0, 1}, 7.0);

  std::printf("X: %s\n", x.summary().c_str());
  std::printf("Y: %s\n", y.summary().c_str());

  // Contract modes 2,3 of X against modes 0,1 of Y (0-based; the paper's
  // 1-based {3,4} and {1,2}).
  ContractOptions opts;
  opts.algorithm = Algorithm::kSparta;
  const ContractResult res = contract(x, y, {2, 3}, {0, 1}, opts);

  std::printf("Z: %s\n\n", res.z.summary().c_str());
  std::printf("%-18s %s\n", "stage", "time");
  for (int s = 0; s < kNumStages; ++s) {
    const auto stage = static_cast<Stage>(s);
    std::printf("%-18s %s\n", std::string(stage_name(stage)).c_str(),
                format_seconds(res.stage_times[stage]).c_str());
  }

  std::printf("\nnon-zeros of Z (coords : value):\n");
  std::vector<index_t> c(static_cast<std::size_t>(res.z.order()));
  for (std::size_t n = 0; n < res.z.nnz(); ++n) {
    res.z.coords(n, c);
    std::printf("  (");
    for (std::size_t m = 0; m < c.size(); ++m) {
      std::printf("%s%u", m ? ", " : "", c[m]);
    }
    std::printf(") : %g\n", res.z.value(n));
  }

  std::printf("\nstats: %zu searches, %zu hits, %zu multiplies\n",
              res.stats.searches, res.stats.hits, res.stats.multiplies);
  return 0;
}
