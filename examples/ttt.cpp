// ttt — tensor-times-tensor command-line tool, mirroring the interface
// of the paper artifact's `ttt` binary (Appendix B.3):
//
//   ttt -X first.tns -Y second.tns [-Z out.tns] -m NUM_CONTRACT_MODES
//       -x cx0,cx1,... -y cy0,cy1,... [-t NTHREADS] [-a spa|coohta|sparta]
//
// Contract modes are 0-based. Example (matrix multiply):
//   ttt -X a.tns -Y b.tns -m 1 -x 1 -y 0
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/format.hpp"
#include "contraction/contract.hpp"
#include "tensor/io.hpp"

namespace {

void usage() {
  std::printf(
      "Options:\n"
      "  -X  FIRST INPUT TENSOR (.tns)\n"
      "  -Y  SECOND INPUT TENSOR (.tns)\n"
      "  -Z  OUTPUT TENSOR (optional)\n"
      "  -m  NUMBER OF CONTRACT MODES\n"
      "  -x  CONTRACT MODES FOR TENSOR X (0-based, comma separated)\n"
      "  -y  CONTRACT MODES FOR TENSOR Y (0-based, comma separated)\n"
      "  -t  NTHREADS (optional)\n"
      "  -a  ALGORITHM: spa | coohta | sparta (default sparta)\n"
      "  --help\n");
}

sparta::Modes parse_modes(const char* s) {
  sparta::Modes modes;
  for (const char* p = s; *p;) {
    modes.push_back(std::atoi(p));
    const char* comma = std::strchr(p, ',');
    if (!comma) break;
    p = comma + 1;
  }
  return modes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sparta;
  std::string xpath, ypath, zpath;
  Modes cx, cy;
  int m = -1;
  ContractOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "-X") {
      xpath = next();
    } else if (arg == "-Y") {
      ypath = next();
    } else if (arg == "-Z") {
      zpath = next();
    } else if (arg == "-m") {
      m = std::atoi(next());
    } else if (arg == "-x") {
      cx = parse_modes(next());
    } else if (arg == "-y") {
      cy = parse_modes(next());
    } else if (arg == "-t") {
      opts.num_threads = std::atoi(next());
    } else if (arg == "-a") {
      const std::string a = next();
      if (a == "spa") {
        opts.algorithm = Algorithm::kSpa;
      } else if (a == "coohta") {
        opts.algorithm = Algorithm::kCooHta;
      } else if (a == "sparta") {
        opts.algorithm = Algorithm::kSparta;
      } else {
        std::fprintf(stderr, "unknown algorithm '%s'\n", a.c_str());
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return 1;
    }
  }

  if (xpath.empty() || ypath.empty() || cx.empty() || cy.empty()) {
    usage();
    return 1;
  }
  if (m >= 0 && (static_cast<std::size_t>(m) != cx.size() ||
                 static_cast<std::size_t>(m) != cy.size())) {
    std::fprintf(stderr, "-m disagrees with -x/-y lists\n");
    return 1;
  }

  try {
    const SparseTensor x = read_tns_file(xpath);
    const SparseTensor y = read_tns_file(ypath);
    std::printf("X: %s\nY: %s\n", x.summary().c_str(), y.summary().c_str());

    const ContractResult res = contract(x, y, cx, cy, opts);
    std::printf("Z: %s\n", res.z.summary().c_str());
    std::printf("[%s] total %s:",
                std::string(algorithm_name(opts.algorithm)).c_str(),
                format_seconds(res.stage_times.total()).c_str());
    for (int s = 0; s < kNumStages; ++s) {
      const auto stage = static_cast<Stage>(s);
      std::printf(" %s=%s", std::string(stage_name(stage)).c_str(),
                  format_seconds(res.stage_times[stage]).c_str());
    }
    std::printf("\n");

    if (!zpath.empty()) {
      write_tns_file(zpath, res.z);
      std::printf("wrote %s\n", zpath.c_str());
    }
  } catch (const sparta::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
