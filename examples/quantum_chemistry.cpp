// Quantum-chemistry scenario: contracting CCSD-style amplitude tensors
// whose non-zeros cluster into quantum-number blocks that are sparse
// inside once small values are cut off (the paper's Uracil / Hubbard-2D
// motivation).
//
// Demonstrates:
//   * generating block-structured operands,
//   * running the same contraction element-wise (Sparta) and
//     block-sparse (the ITensor-style engine),
//   * verifying both agree, and
//   * how the winner flips with within-block fill: element-wise wins on
//     sparse blocks, block GEMM catches up as blocks fill in (the
//     paper's "below ~5% density" guidance).
#include <cstdio>

#include "blocksparse/block_contract.hpp"
#include "blocksparse/block_tensor.hpp"
#include "blocksparse/hubbard.hpp"
#include "common/format.hpp"
#include "common/timer.hpp"
#include "contraction/contract.hpp"

int main() {
  using namespace sparta;

  // A T2-amplitude-like 4th-order tensor t[a,b,i,j] and an integral-like
  // tensor v[i,j,c,d]; contract over the occupied indices (i, j).
  BlockStructureSpec tspec;
  tspec.dims = {64, 64, 32, 32};       // virtual × virtual × occ × occ
  tspec.block_dims = {4, 4, 4, 4};
  tspec.num_blocks = 1500;
  tspec.seed = 42;
  BlockStructureSpec vspec;
  vspec.dims = {32, 32, 64, 64};
  vspec.block_dims = {4, 4, 4, 4};
  vspec.num_blocks = 1200;
  vspec.seed = 43;
  const Modes ct{2, 3};  // contract t's (i, j)
  const Modes cv{0, 1};  // with v's (i, j)

  std::printf(
      "CCSD-like contraction  z[a,b,c,d] = Σ_ij t[a,b,i,j] v[i,j,c,d]\n\n");
  std::printf("%-12s %12s %12s %9s %9s\n", "block fill", "element-wise",
              "block-GEMM", "speedup", "agree");

  for (const double fill : {0.02, 0.05, 0.15, 0.40}) {
    const auto block_cells = 4u * 4 * 4 * 4;
    tspec.nnz = static_cast<std::size_t>(fill * block_cells *
                                         static_cast<double>(tspec.num_blocks));
    vspec.nnz = static_cast<std::size_t>(fill * block_cells *
                                         static_cast<double>(vspec.num_blocks));
    const SparseTensor t = generate_block_structured(tspec);
    const SparseTensor v = generate_block_structured(vspec);

    Timer timer;
    ContractOptions o;
    o.algorithm = Algorithm::kSparta;
    const SparseTensor z_elem = contract_tensor(t, v, ct, cv, o);
    const double elem_secs = timer.seconds();

    timer.reset();
    const auto tb = BlockSparseTensor::from_sparse(t, tspec.block_dims);
    const auto vb = BlockSparseTensor::from_sparse(v, vspec.block_dims);
    const SparseTensor z_block =
        contract_blocksparse(tb, vb, ct, cv).to_sparse(1e-14);
    const double block_secs = timer.seconds();

    const bool agree = SparseTensor::approx_equal(z_elem, z_block, 1e-9);
    std::printf("%-12.0f%% %12s %12s %8.1fx %9s\n", fill * 100,
                format_seconds(elem_secs).c_str(),
                format_seconds(block_secs).c_str(), block_secs / elem_secs,
                agree ? "yes" : "NO");
  }

  std::printf(
      "\nelement-wise Sparta wins while blocks are internally sparse; the\n"
      "dense block engine closes the gap as fill grows (paper §6: the\n"
      "crossover sits around a few percent of non-zero density).\n");
  return 0;
}
