// Heterogeneous-memory scenario: plan the DRAM/PMM placement for an
// SpTC the way Sparta does (§4.2) — estimate object sizes *before*
// allocation with Eq. 5/6, fill DRAM by priority, then compare the plan
// against application-agnostic policies on the cost model.
#include <cstdio>
#include <string>

#include "common/format.hpp"
#include "contraction/contract.hpp"
#include "contraction/estimators.hpp"
#include "memsim/cost_model.hpp"
#include "tensor/datasets.hpp"

int main() {
  using namespace sparta;

  const SpTCCase c = make_sptc_case("vast", 2, 1.0);
  std::printf("workload: %s\n  X %s\n  Y %s\n\n", c.label.c_str(),
              c.x.summary().c_str(), c.y.summary().c_str());

  // --- placement-time estimates (before any allocation) ---------------
  std::size_t buckets = 16;
  while (buckets < c.y.nnz()) buckets <<= 1;
  const std::size_t hty_est =
      estimate_hty_bytes(c.y.nnz(), c.y.order(), buckets);
  std::printf("Eq. 5 estimate of HtY: %s (nnzY=%zu, buckets=%zu)\n",
              format_bytes(hty_est).c_str(), c.y.nnz(), buckets);

  // --- instrumented run ------------------------------------------------
  ContractOptions o;
  o.algorithm = Algorithm::kSparta;
  o.collect_access_profile = true;
  const ContractResult res = contract(c.x, c.y, c.cx, c.cy, o);
  const AccessProfile& p = res.profile;

  const std::size_t hta_bound = estimate_hta_bytes(
      res.stats.max_x_subtensor, res.stats.max_y_group,
      /*num_free_y=*/c.y.order() - static_cast<int>(c.cy.size()), 1024);
  std::printf("Eq. 6 bound on per-thread HtA: %s (measured %s)\n",
              format_bytes(hta_bound).c_str(),
              format_bytes(res.stats.hta_bytes).c_str());
  std::printf("measured HtY: %s (estimate was %s)\n\n",
              format_bytes(res.stats.hty_bytes).c_str(),
              format_bytes(hty_est).c_str());

  // --- the Sparta placement under DRAM pressure -----------------------
  MemoryParams params;
  params.dram_capacity_bytes = p.total_footprint() / 3;
  std::printf("DRAM budget: %s of %s total footprint\n",
              format_bytes(params.dram_capacity_bytes).c_str(),
              format_bytes(p.total_footprint()).c_str());

  const Placement plan = sparta_placement(p.footprint_bytes, params);
  std::printf("\nplacement plan (priority HtY > HtA > Z_local > Z; X,Y on "
              "PMM):\n");
  for (DataObject obj : kAllDataObjects) {
    const double f = plan.dram(obj);
    std::printf("  %-8s %-9s %5.1f%% in DRAM\n",
                std::string(data_object_name(obj)).c_str(),
                format_bytes(p.footprint(obj)).c_str(), 100 * f);
  }

  // --- compare against the application-agnostic policies --------------
  struct Row {
    std::string name;
    double secs;
  };
  const Row rows[] = {
      {"DRAM-only",
       simulate_static(p, params, Placement::all(Tier::kDram))
           .total_seconds()},
      {"Sparta plan", simulate_static(p, params, plan).total_seconds()},
      {"Memory mode", simulate_memory_mode(p, params).total_seconds()},
      {"IAL", simulate_ial(p, params).total_seconds()},
      {"PMM-only",
       simulate_static(p, params, Placement::all(Tier::kPmm))
           .total_seconds()},
  };
  std::printf("\nestimated run time under each policy:\n");
  for (const Row& r : rows) {
    std::printf("  %-12s %s\n", r.name.c_str(),
                format_seconds(r.secs).c_str());
  }
  return 0;
}
