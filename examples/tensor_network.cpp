// Tensor-network scenario: a chain of SpTCs where each output feeds the
// next contraction — the "long sequence of tensor contractions" the
// paper's introduction gives as the reason symbolic pre-passes are
// unaffordable (§1).
//
// Demonstrates:
//   * chaining contractions (Z of step k is X of step k+1),
//   * keeping the output sorted so the next step's input processing is
//     cheap, vs. resorting from scratch,
//   * the swap-larger-operand-to-Y heuristic (§3.3).
#include <cstdio>

#include "common/format.hpp"
#include "common/timer.hpp"
#include "contraction/contract.hpp"
#include "tensor/generators.hpp"

int main() {
  using namespace sparta;

  // Build a chain of 4 site tensors A0..A3; A_k has modes
  // (bond_k, phys_k, bond_{k+1}); contract the shared bonds in order.
  // Without truncation every step multiplies the free-index space, so
  // the sites are kept small (real tensor-network codes truncate).
  constexpr index_t kBond = 12;
  constexpr index_t kPhys = 6;
  std::vector<SparseTensor> sites;
  for (int k = 0; k < 4; ++k) {
    GeneratorSpec spec;
    spec.dims = {kBond, kPhys, kBond};
    spec.nnz = 250;
    spec.seed = 100 + static_cast<std::uint64_t>(k);
    sites.push_back(generate_random(spec));
  }

  std::printf("contracting a 4-site tensor chain, bond dim %u, phys dim %u\n\n",
              kBond, kPhys);

  // Chain: T = A0 ×(last bond ~ first bond) A1 ×... A3.
  ContractOptions opts;
  opts.algorithm = Algorithm::kSparta;
  opts.swap_operands_if_larger_x = false;

  Timer total;
  SparseTensor acc = sites[0];
  for (int k = 1; k < 4; ++k) {
    // acc's last mode is the shared bond; contract with site k's mode 0.
    const Modes cx{acc.order() - 1};
    const Modes cy{0};
    Timer t;
    const ContractResult res = contract(acc, sites[static_cast<std::size_t>(k)],
                                        cx, cy, opts);
    std::printf(
        "step %d: %-30s -> %-34s %10s (input processing %5.1f%% of step)\n",
        k, acc.summary().c_str(), res.z.summary().c_str(),
        format_seconds(t.seconds()).c_str(),
        100 * res.stage_times.fraction(Stage::kInputProcessing));
    acc = res.z;
  }
  std::printf("\nchain result: %s in %s\n", acc.summary().c_str(),
              format_seconds(total.seconds()).c_str());

  // The §3.3 heuristic: when the accumulated tensor outgrows the next
  // site, probing the big operand instead of iterating it pays off.
  {
    GeneratorSpec big;
    big.dims = {64, 48, 48, 64};
    big.nnz = 120'000;
    big.seed = 7;
    const SparseTensor big_t = generate_random(big);
    GeneratorSpec small;
    small.dims = {64, 48, 64};
    small.nnz = 1500;
    small.seed = 8;
    const SparseTensor small_t = generate_random(small);

    ContractOptions no_swap;
    ContractOptions swap;
    swap.swap_operands_if_larger_x = true;

    Timer t1;
    (void)contract(big_t, small_t, {3}, {0}, no_swap).z.nnz();
    const double secs_no_swap = t1.seconds();
    Timer t2;
    (void)contract(big_t, small_t, {3}, {0}, swap).z.nnz();
    const double secs_swap = t2.seconds();
    std::printf(
        "\nswap heuristic (nnzX=%zu >> nnzY=%zu): off %s, on %s (%.2fx)\n",
        big_t.nnz(), small_t.nnz(), format_seconds(secs_no_swap).c_str(),
        format_seconds(secs_swap).c_str(), secs_no_swap / secs_swap);
  }
  return 0;
}
