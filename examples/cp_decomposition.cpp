// CP decomposition of a sparse tensor — the application family
// (SPLATT/HiParTI-style tensor analytics) that the sparse-tensor-times-
// dense kernels serve. Decomposes a Table-3 analog with CP-ALS at a few
// ranks and reports fit, then verifies one TTM/MTTKRP identity.
#include <cstdio>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "kernels/cp_als.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/ttm.hpp"
#include "tensor/datasets.hpp"

int main() {
  using namespace sparta;

  // CP-ALS recovers planted structure when the support is dense: a
  // sparse support makes the *zeros* part of the tensor, which no
  // low-rank model matches (real FROSTT decompositions likewise report
  // small fits). Use a dense-support tensor with hidden rank-6 values.
  GeneratorSpec spec;
  spec.dims = {40, 30, 20};
  spec.nnz = 24'000;  // full support
  SparseTensor x = generate_random(spec);
  {
    constexpr std::size_t kTrueRank = 6;
    std::vector<DenseMatrix> hidden;
    for (int m = 0; m < x.order(); ++m) {
      hidden.push_back(DenseMatrix::random(
          x.dim(m), kTrueRank, 100 + static_cast<std::uint64_t>(m), -1.0,
          1.0));
    }
    Rng noise(55);
    std::vector<index_t> c(static_cast<std::size_t>(x.order()));
    for (std::size_t n = 0; n < x.nnz(); ++n) {
      x.coords(n, c);
      double v = 0;
      for (std::size_t r = 0; r < kTrueRank; ++r) {
        double p = 1;
        for (int m = 0; m < x.order(); ++m) {
          p *= hidden[static_cast<std::size_t>(m)].at(
              c[static_cast<std::size_t>(m)], r);
        }
        v += p;
      }
      x.value(n) = v + 0.01 * noise.uniform_double(-1.0, 1.0);
    }
  }
  std::printf("decomposing %s (dense support, planted rank 6 + noise)\n\n",
              x.summary().c_str());

  std::printf("%6s %10s %6s %12s\n", "rank", "fit", "iters", "time");
  for (const std::size_t rank : {2, 4, 8, 16}) {
    CpAlsOptions o;
    o.rank = rank;
    o.max_iterations = 40;
    Timer t;
    const CpModel model = cp_als(x, o);
    std::printf("%6zu %10.4f %6d %12s\n", rank, model.fit,
                model.iterations, format_seconds(t.seconds()).c_str());
  }

  // TTM's output size is known before computing (contrast with SpTC,
  // paper §1): #fibers × rank.
  const int last = x.order() - 1;
  const DenseMatrix u = DenseMatrix::random(x.dim(last), 8, 7);
  Timer t;
  const SemiSparseTensor z = ttm(x, u, last);
  std::printf(
      "\nTTM along the last mode (rank 8): %zu fibers x %zu = exactly %s, "
      "known "
      "before compute; took %s\n",
      z.num_fibers(), z.rank(), format_bytes(z.footprint_bytes()).c_str(),
      format_seconds(t.seconds()).c_str());
  return 0;
}
