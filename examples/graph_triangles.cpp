// Graph analytics on the SpGEMM substrate: triangle counting via
//   triangles = Σ (A² ∘ A) / 6
// for an undirected adjacency matrix A — a classic SpGEMM application
// (the kernel family SpTC generalizes, paper §2.2). The same count is
// computed three ways (dedicated SpGEMM, the SpTC pipeline, einsum) and
// cross-checked.
#include <cstdio>

#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "contraction/einsum.hpp"
#include "spgemm/spgemm.hpp"
#include "tensor/ops.hpp"

namespace {

// Random undirected graph with n vertices, ~avg_degree·n/2 edges.
sparta::SparseTensor random_graph(sparta::index_t n, double avg_degree,
                                  std::uint64_t seed) {
  using namespace sparta;
  Rng rng(seed);
  const auto edges =
      static_cast<std::size_t>(avg_degree * static_cast<double>(n) / 2.0);
  SparseTensor a({n, n});
  for (std::size_t e = 0; e < edges; ++e) {
    const auto u = static_cast<index_t>(rng.uniform(n));
    const auto v = static_cast<index_t>(rng.uniform(n));
    if (u == v) continue;
    a.append_unchecked(std::vector<index_t>{u, v}, 1.0);
    a.append_unchecked(std::vector<index_t>{v, u}, 1.0);
  }
  a.coalesce();
  // Multi-edges collapse to weight 1.
  for (value_t& w : a.values()) w = 1.0;
  return a;
}

}  // namespace

int main() {
  using namespace sparta;

  const SparseTensor a = random_graph(3000, 12.0, 17);
  std::printf("graph: %u vertices, %zu directed edges\n\n", a.dim(0),
              a.nnz());

  // 1) dedicated SpGEMM: A², then mask by A and sum.
  Timer t1;
  const CsrMatrix a_csr = CsrMatrix::from_coo(a);
  const CsrMatrix a2 = spgemm(a_csr, a_csr);
  const SparseTensor masked1 = hadamard(a2.to_coo(), a);
  const double tri_spgemm = sum(masked1) / 6.0;
  const double secs1 = t1.seconds();

  // 2) the general SpTC pipeline on the same matrices.
  Timer t2;
  const SparseTensor a2_sptc = contract_tensor(a, a, {1}, {0}, {});
  const double tri_sptc = sum(hadamard(a2_sptc, a)) / 6.0;
  const double secs2 = t2.seconds();

  // 3) einsum formulation.
  Timer t3;
  const SparseTensor a2_einsum = einsum("ij,jk->ik", {a, a});
  const double tri_einsum = sum(hadamard(a2_einsum, a)) / 6.0;
  const double secs3 = t3.seconds();

  std::printf("%-22s %12s %12s\n", "method", "triangles", "time");
  std::printf("%-22s %12.0f %12s\n", "SpGEMM (CSR, hash)", tri_spgemm,
              format_seconds(secs1).c_str());
  std::printf("%-22s %12.0f %12s\n", "SpTC pipeline", tri_sptc,
              format_seconds(secs2).c_str());
  std::printf("%-22s %12.0f %12s\n", "einsum", tri_einsum,
              format_seconds(secs3).c_str());
  std::printf("\nagreement: %s\n",
              (tri_spgemm == tri_sptc && tri_sptc == tri_einsum) ? "yes"
                                                                 : "NO");
  return 0;
}
