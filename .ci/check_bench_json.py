#!/usr/bin/env python3
"""Validate a bench --json report against the schema documented in
docs/OBSERVABILITY.md. The schema is append-only: this script checks
that every promised field is present and well-typed, and ignores any
extra fields a newer writer may have added.

Usage: check_bench_json.py report.json [report2.json ...]
"""
import json
import sys

# Must match src/common/timer.hpp stage_name(), in pipeline order.
STAGE_KEYS = [
    "input_processing",
    "index_search",
    "accumulation",
    "writeback",
    "output_sorting",
]

REQUIRED_COUNTERS = ["nnz_x", "nnz_y", "nnz_z", "searches", "hits",
                     "multiplies"]

CONTEXT_STRINGS = ["build_type", "git_sha", "hostname"]

HISTOGRAM_STATS = ["count", "p50", "p95", "p99", "max"]


def fail(path, msg):
    print(f"{path}: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_number(path, obj, key, minimum=0):
    if key not in obj:
        fail(path, f"missing key '{key}'")
    v = obj[key]
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        fail(path, f"'{key}' is {type(v).__name__}, expected number")
    if v < minimum:
        fail(path, f"'{key}' = {v} < {minimum}")


def check_report(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        fail(path, f"schema_version = {doc.get('schema_version')!r}, "
                   "expected 1")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(path, "'bench' missing or empty")
    if not isinstance(doc.get("smoke"), bool):
        fail(path, "'smoke' missing or not a bool")
    check_number(path, doc, "scale")
    check_number(path, doc, "repeats", minimum=1)
    check_number(path, doc, "threads", minimum=1)
    ctx = doc.get("context")
    if not isinstance(ctx, dict):
        fail(path, "'context' missing")
    check_number(path, ctx, "scale")
    check_number(path, ctx, "threads", minimum=1)
    for k in CONTEXT_STRINGS:
        if not isinstance(ctx.get(k), str) or not ctx[k]:
            fail(path, f"context.{k} missing or empty")
    # Context must agree with the top-level workload fields it restates.
    if ctx["scale"] != doc["scale"] or ctx["threads"] != doc["threads"]:
        fail(path, "context scale/threads disagree with top level")
    hw = doc.get("hw_counters")
    if not isinstance(hw, dict) or not isinstance(hw.get("available"),
                                                  bool):
        fail(path, "'hw_counters.available' missing or not a bool")
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        fail(path, "'cases' missing or empty")
    for i, c in enumerate(cases):
        where = f"cases[{i}]"
        if not isinstance(c.get("name"), str) or not c["name"]:
            fail(path, f"{where}: 'name' missing or empty")
        check_number(path, c, "repeats", minimum=1)
        secs = c.get("seconds")
        if not isinstance(secs, dict):
            fail(path, f"{where}: 'seconds' missing")
        check_number(path, secs, "min")
        check_number(path, secs, "median")
        if secs["median"] < secs["min"]:
            fail(path, f"{where}: median {secs['median']} < min "
                       f"{secs['min']}")
        stages = c.get("stages")
        if not isinstance(stages, dict):
            fail(path, f"{where}: 'stages' missing")
        for k in STAGE_KEYS:
            check_number(path, stages, k)
        counters = c.get("counters")
        if not isinstance(counters, dict):
            fail(path, f"{where}: 'counters' missing")
        for k in REQUIRED_COUNTERS:
            check_number(path, counters, k)
        if counters["hits"] > counters["searches"]:
            fail(path, f"{where}: hits > searches")
        perf = c.get("perf")
        if not isinstance(perf, dict) or not isinstance(
                perf.get("available"), bool):
            fail(path, f"{where}: 'perf.available' missing or not a bool")
        if perf["available"] and not hw["available"]:
            fail(path, f"{where}: perf data without hw_counters.available")
        memsim = c.get("memsim")  # optional: only on observation runs
        if memsim is not None:
            if not isinstance(memsim, dict):
                fail(path, f"{where}: 'memsim' is not an object")
            check_number(path, memsim, "total_seconds")
            if not isinstance(memsim.get("stages"), dict):
                fail(path, f"{where}: 'memsim.stages' missing")
    hists = doc.get("histograms")
    if not isinstance(hists, dict):
        fail(path, "'histograms' missing")
    for name, h in hists.items():
        if not isinstance(h, dict):
            fail(path, f"histograms[{name!r}] is not an object")
        for k in HISTOGRAM_STATS:
            check_number(path, h, k)
    print(f"{path}: OK ({doc['bench']}, {len(cases)} cases)")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in sys.argv[1:]:
        check_report(path)


if __name__ == "__main__":
    main()
