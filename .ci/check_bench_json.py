#!/usr/bin/env python3
"""Validate a bench --json report against the schema documented in
docs/OBSERVABILITY.md. The schema is append-only: this script checks
that every promised field is present and well-typed, and ignores any
extra fields a newer writer may have added.

Reports carrying a "tool" key (sparta_serve --json) are validated
against the serving-report schema instead of the bench schema.

Usage: check_bench_json.py report.json [report2.json ...]
"""
import json
import sys

# Must match src/common/timer.hpp stage_name(), in pipeline order.
STAGE_KEYS = [
    "input_processing",
    "index_search",
    "accumulation",
    "writeback",
    "output_sorting",
]

REQUIRED_COUNTERS = ["nnz_x", "nnz_y", "nnz_z", "searches", "hits",
                     "multiplies"]

CONTEXT_STRINGS = ["build_type", "git_sha", "hostname"]

# Must match src/simd/dispatch.hpp isa_name().
SIMD_ISAS = ["scalar", "avx2", "neon"]

HISTOGRAM_STATS = ["count", "p50", "p95", "p99", "max"]


def fail(path, msg):
    print(f"{path}: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_number(path, obj, key, minimum=0):
    if key not in obj:
        fail(path, f"missing key '{key}'")
    v = obj[key]
    if not isinstance(v, (int, float)) or isinstance(v, bool):
        fail(path, f"'{key}' is {type(v).__name__}, expected number")
    if v < minimum:
        fail(path, f"'{key}' = {v} < {minimum}")


SERVE_BOOLS = ["ok", "cache_hit", "plan_cached", "degraded", "rejected",
               "cancelled", "deadline_exceeded"]

SERVE_CACHE_COUNTERS = ["hits", "misses", "evictions", "uncacheable"]

SERVE_ADMISSION_COUNTERS = ["accepted", "rejected", "degraded"]


def check_histograms(path, doc):
    hists = doc.get("histograms")
    if not isinstance(hists, dict):
        fail(path, "'histograms' missing")
    for name, h in hists.items():
        if not isinstance(h, dict):
            fail(path, f"histograms[{name!r}] is not an object")
        for k in HISTOGRAM_STATS:
            check_number(path, h, k)


def check_serve_report(path, doc):
    if doc.get("tool") != "sparta_serve":
        fail(path, f"tool = {doc.get('tool')!r}, expected 'sparta_serve'")
    if not isinstance(doc.get("workload"), str) or not doc["workload"]:
        fail(path, "'workload' missing or empty")
    check_number(path, doc, "clients", minimum=1)
    check_number(path, doc, "workers", minimum=1)
    check_number(path, doc, "threads", minimum=1)
    check_number(path, doc, "budget_bytes")
    check_number(path, doc, "wall_seconds")
    reqs = doc.get("requests")
    if not isinstance(reqs, list) or not reqs:
        fail(path, "'requests' missing or empty")
    seen_request_ids = set()
    for i, r in enumerate(reqs):
        where = f"requests[{i}]"
        # Correlation id: every admitted-or-shed request gets a unique
        # positive id, the join key into trace spans and the statlog.
        check_number(path, r, "request_id", minimum=1)
        if r["request_id"] in seen_request_ids:
            fail(path, f"{where}: duplicate request_id {r['request_id']}")
        seen_request_ids.add(r["request_id"])
        for k in ("x", "y", "variant"):
            if not isinstance(r.get(k), str) or not r[k]:
                fail(path, f"{where}: '{k}' missing or empty")
        for k in SERVE_BOOLS:
            if not isinstance(r.get(k), bool):
                fail(path, f"{where}: '{k}' missing or not a bool")
        check_number(path, r, "queue_seconds")
        check_number(path, r, "exec_seconds")
        check_number(path, r, "cancel_seconds")
        check_number(path, r, "retries")
        if r["deadline_exceeded"] and not r["cancelled"]:
            fail(path, f"{where}: deadline_exceeded without cancelled")
        if not r["ok"]:
            continue  # failed/rejected requests carry no result data
        check_number(path, r, "nnz_z")
        stages = r.get("stages")
        if not isinstance(stages, dict):
            fail(path, f"{where}: 'stages' missing")
        for k in STAGE_KEYS:
            check_number(path, stages, k)
        counters = r.get("counters")
        if not isinstance(counters, dict):
            fail(path, f"{where}: 'counters' missing")
        for k in REQUIRED_COUNTERS:
            check_number(path, counters, k)
        if counters["hits"] > counters["searches"]:
            fail(path, f"{where}: hits > searches")
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        fail(path, "'summary' missing")
    for k in ("total", "ok", "failed", "rejected", "cancelled",
              "deadline_exceeded", "degraded", "cache_hits"):
        check_number(path, summary, k)
    if summary["total"] != len(reqs):
        fail(path, f"summary.total = {summary['total']}, but "
                   f"{len(reqs)} requests reported")
    if summary["ok"] + summary["failed"] + summary["rejected"] \
            + summary["cancelled"] != summary["total"]:
        fail(path, "summary ok+failed+rejected+cancelled != total")
    if summary["deadline_exceeded"] > summary["cancelled"]:
        fail(path, "summary deadline_exceeded > cancelled")
    lat = summary.get("latency_seconds")
    if not isinstance(lat, dict):
        fail(path, "'summary.latency_seconds' missing")
    for k in ("p50", "p95", "max"):
        check_number(path, lat, k)
    if not lat["p50"] <= lat["p95"] <= lat["max"]:
        fail(path, "latency percentiles not monotone")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        fail(path, "'counters' missing")
    cache = counters.get("cache")
    if not isinstance(cache, dict):
        fail(path, "'counters.cache' missing")
    for k in SERVE_CACHE_COUNTERS:
        check_number(path, cache, k)
    admission = counters.get("admission")
    if not isinstance(admission, dict):
        fail(path, "'counters.admission' missing")
    for k in SERVE_ADMISSION_COUNTERS:
        check_number(path, admission, k)
    if not isinstance(counters.get("selector"), dict):
        fail(path, "'counters.selector' missing")
    selector = doc.get("selector")
    if not isinstance(selector, dict):
        fail(path, "'selector' missing")
    check_number(path, selector, "decisions")
    check_number(path, selector, "explored")
    if not isinstance(selector.get("model_id"), str):
        fail(path, "'selector.model_id' missing or not a string")
    if not isinstance(selector.get("variants"), dict):
        fail(path, "'selector.variants' missing")
    budget = counters.get("budget")
    if not isinstance(budget, dict):
        fail(path, "'counters.budget' missing")
    check_number(path, budget, "capacity")
    check_number(path, budget, "live")
    check_histograms(path, doc)
    print(f"{path}: OK (sparta_serve, {len(reqs)} requests, "
          f"{summary['cache_hits']} cache hits)")


def check_report(path):
    """Validates one report; returns its SIMD tier (None for serve
    reports, which carry no bench context block)."""
    with open(path) as f:
        doc = json.load(f)
    if "tool" in doc:
        if doc.get("schema_version") != 1:
            fail(path, f"schema_version = {doc.get('schema_version')!r}, "
                       "expected 1")
        check_serve_report(path, doc)
        return None
    if doc.get("schema_version") != 1:
        fail(path, f"schema_version = {doc.get('schema_version')!r}, "
                   "expected 1")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        fail(path, "'bench' missing or empty")
    if not isinstance(doc.get("smoke"), bool):
        fail(path, "'smoke' missing or not a bool")
    check_number(path, doc, "scale")
    check_number(path, doc, "repeats", minimum=1)
    check_number(path, doc, "threads", minimum=1)
    ctx = doc.get("context")
    if not isinstance(ctx, dict):
        fail(path, "'context' missing")
    check_number(path, ctx, "scale")
    check_number(path, ctx, "threads", minimum=1)
    for k in CONTEXT_STRINGS:
        if not isinstance(ctx.get(k), str) or not ctx[k]:
            fail(path, f"context.{k} missing or empty")
    # Timings under different SIMD tiers are not comparable, so the
    # report must say which one produced it (sparta_perfdiff refuses to
    # diff reports whose tiers differ, mirroring its other config
    # comparability checks).
    if ctx.get("simd_isa") not in SIMD_ISAS:
        fail(path, f"context.simd_isa = {ctx.get('simd_isa')!r}, "
                   f"expected one of {SIMD_ISAS}")
    # Context must agree with the top-level workload fields it restates.
    if ctx["scale"] != doc["scale"] or ctx["threads"] != doc["threads"]:
        fail(path, "context scale/threads disagree with top level")
    hw = doc.get("hw_counters")
    if not isinstance(hw, dict) or not isinstance(hw.get("available"),
                                                  bool):
        fail(path, "'hw_counters.available' missing or not a bool")
    cases = doc.get("cases")
    if not isinstance(cases, list) or not cases:
        fail(path, "'cases' missing or empty")
    for i, c in enumerate(cases):
        where = f"cases[{i}]"
        if not isinstance(c.get("name"), str) or not c["name"]:
            fail(path, f"{where}: 'name' missing or empty")
        check_number(path, c, "repeats", minimum=1)
        secs = c.get("seconds")
        if not isinstance(secs, dict):
            fail(path, f"{where}: 'seconds' missing")
        check_number(path, secs, "min")
        check_number(path, secs, "median")
        if secs["median"] < secs["min"]:
            fail(path, f"{where}: median {secs['median']} < min "
                       f"{secs['min']}")
        stages = c.get("stages")
        if not isinstance(stages, dict):
            fail(path, f"{where}: 'stages' missing")
        for k in STAGE_KEYS:
            check_number(path, stages, k)
        counters = c.get("counters")
        if not isinstance(counters, dict):
            fail(path, f"{where}: 'counters' missing")
        if c["name"] == "cancel_latency":
            # bench_serve's cancel case reports trip-to-return
            # percentiles instead of contraction counters (the run is
            # cancelled mid-flight, so nnz_z etc. do not exist).
            for k in ("cancel_p50_seconds", "cancel_p99_seconds",
                      "cancel_max_seconds"):
                check_number(path, counters, k)
            if not (counters["cancel_p50_seconds"]
                    <= counters["cancel_p99_seconds"]
                    <= counters["cancel_max_seconds"]):
                fail(path, f"{where}: cancel percentiles not monotone")
            continue
        if c["name"] == "replay_regret":
            # bench_serve's cold-start replay gate reports cumulative
            # regret under each prior instead of contraction counters
            # (the replay is decision-only: no tensors are contracted).
            for k in ("analytic_regret_seconds", "learned_regret_seconds"):
                check_number(path, counters, k)
            check_number(path, counters, "keys", minimum=1)
            check_number(path, counters, "decisions", minimum=1)
            if not isinstance(counters.get("model_id"), str) \
                    or not counters["model_id"]:
                fail(path, f"{where}: 'counters.model_id' missing or "
                           "empty")
            # The gate itself: a learned prior must strictly reduce
            # cold-start regret vs analytic explore-first.
            if counters["learned_regret_seconds"] \
                    >= counters["analytic_regret_seconds"]:
                fail(path, f"{where}: learned regret "
                           f"{counters['learned_regret_seconds']} >= "
                           f"analytic "
                           f"{counters['analytic_regret_seconds']}")
            continue
        if c["name"] == "order_search":
            # bench_plan's order-search gate: the DP-planned order must
            # strictly beat the worst enumerated order on both time and
            # peak intermediate bytes, and beat naive left-to-right.
            for k in ("orders_enumerated", "planned_seconds",
                      "left_seconds", "worst_seconds",
                      "planned_peak_bytes", "worst_peak_bytes"):
                check_number(path, counters, k)
            check_number(path, counters, "orders_enumerated", minimum=2)
            if counters["planned_seconds"] >= counters["worst_seconds"]:
                fail(path, f"{where}: planned order "
                           f"{counters['planned_seconds']}s not faster "
                           f"than worst {counters['worst_seconds']}s")
            if counters["planned_peak_bytes"] \
                    >= counters["worst_peak_bytes"]:
                fail(path, f"{where}: planned peak "
                           f"{counters['planned_peak_bytes']} B not "
                           f"below worst "
                           f"{counters['worst_peak_bytes']} B")
            if counters["planned_seconds"] >= counters["left_seconds"]:
                fail(path, f"{where}: planned order not faster than "
                           "left-to-right")
            continue
        if c["name"] == "plan_cache":
            # bench_plan's repeat-network gate: run 2+ must hit the
            # NetworkPlanCache (a deterministic flag, not a timing).
            for k in ("cold_seconds", "hit_seconds", "speedup",
                      "hty_plan_hits"):
                check_number(path, counters, k)
            if counters.get("plan_cache_hit") is not True:
                fail(path, f"{where}: repeated network request missed "
                           "the plan cache")
            if counters["hty_plan_hits"] < 1:
                fail(path, f"{where}: no per-step HtY plan hits on the "
                           "repeated network")
            continue
        for k in REQUIRED_COUNTERS:
            check_number(path, counters, k)
        if counters["hits"] > counters["searches"]:
            fail(path, f"{where}: hits > searches")
        perf = c.get("perf")
        if not isinstance(perf, dict) or not isinstance(
                perf.get("available"), bool):
            fail(path, f"{where}: 'perf.available' missing or not a bool")
        if perf["available"] and not hw["available"]:
            fail(path, f"{where}: perf data without hw_counters.available")
        memsim = c.get("memsim")  # optional: only on observation runs
        if memsim is not None:
            if not isinstance(memsim, dict):
                fail(path, f"{where}: 'memsim' is not an object")
            check_number(path, memsim, "total_seconds")
            if not isinstance(memsim.get("stages"), dict):
                fail(path, f"{where}: 'memsim.stages' missing")
    check_histograms(path, doc)
    print(f"{path}: OK ({doc['bench']}, {len(cases)} cases)")
    return ctx["simd_isa"]


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    # Bench reports validated together must agree on the SIMD tier: a
    # matrix leg that accidentally mixes SPARTA_SIMD settings would
    # otherwise feed incomparable timings into the baseline diff.
    isas = {}
    for path in sys.argv[1:]:
        isa = check_report(path)
        if isa is not None:
            isas[path] = isa
    if len(set(isas.values())) > 1:
        detail = ", ".join(f"{p}: {i}" for p, i in sorted(isas.items()))
        print(f"FAIL: bench reports mix SIMD tiers ({detail})",
              file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
