#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by the obs trace
recorder (SPARTA_TRACE / --trace): the document must parse, every event
must carry the trace_event essentials, and — when --expect-contract is
given — the five pipeline-stage spans, at least one sub-phase span, and
at least one counter ('C') track must be present.

Usage: check_trace.py trace.json [--expect-contract]
"""
import json
import sys

STAGE_SPANS = [
    "input_processing",
    "index_search",
    "accumulation",
    "writeback",
    "output_sorting",
]
SUBPHASE_SPANS = ["permute_sort_x", "sort_y", "build_hty", "gather"]


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    expect_contract = "--expect-contract" in sys.argv
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = args[0]
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("'traceEvents' missing or not a list")
    if "droppedEvents" not in doc:
        fail("'droppedEvents' missing")
    # snake_case alias written by both the trace recorder and the
    # flight recorder; flight dumps additionally self-identify.
    if "dropped_events" not in doc:
        fail("'dropped_events' missing")
    for i, e in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in e:
                fail(f"traceEvents[{i}] missing '{key}'")
        if e["ph"] == "X" and "dur" not in e:
            fail(f"traceEvents[{i}]: complete event without 'dur'")

    names_by_phase = {}
    for e in events:
        names_by_phase.setdefault(e["ph"], set()).add(e["name"])
    spans = names_by_phase.get("X", set())

    if expect_contract:
        missing = [s for s in STAGE_SPANS if s not in spans]
        if missing:
            fail(f"missing stage spans: {missing} (have: {sorted(spans)})")
        if not any(s in spans for s in SUBPHASE_SPANS):
            fail(f"no sub-phase span among {SUBPHASE_SPANS} "
                 f"(have: {sorted(spans)})")
        if not names_by_phase.get("C"):
            fail("no counter ('C') track in trace")

    counters = sorted(names_by_phase.get("C", set()))
    print(f"{path}: OK ({len(events)} events, "
          f"{len(spans)} span names, counter tracks: {counters}, "
          f"dropped: {doc['droppedEvents']})")


if __name__ == "__main__":
    main()
