#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by the obs trace
recorder (SPARTA_TRACE / --trace): the document must parse, every event
must carry the trace_event essentials, and — when --expect-contract is
given — the five pipeline-stage spans, at least one sub-phase span, and
at least one counter ('C') track must be present.

Events may carry correlation args (request_id, and for plan-executor
steps plan_id/step_index); when present they must be well-typed and
plan_id must come with step_index. --expect-plan additionally requires
the plan.start/plan.done instants and at least one span stamped with a
plan_id (the trace came from a `network` execution).

Usage: check_trace.py trace.json [--expect-contract] [--expect-plan]
"""
import json
import sys

STAGE_SPANS = [
    "input_processing",
    "index_search",
    "accumulation",
    "writeback",
    "output_sorting",
]
SUBPHASE_SPANS = ["permute_sort_x", "sort_y", "build_hty", "gather"]


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    expect_contract = "--expect-contract" in sys.argv
    expect_plan = "--expect-plan" in sys.argv
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = args[0]
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("'traceEvents' missing or not a list")
    if "droppedEvents" not in doc:
        fail("'droppedEvents' missing")
    # snake_case alias written by both the trace recorder and the
    # flight recorder; flight dumps additionally self-identify.
    if "dropped_events" not in doc:
        fail("'dropped_events' missing")
    plan_stamped_spans = 0
    for i, e in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in e:
                fail(f"traceEvents[{i}] missing '{key}'")
        if e["ph"] == "X" and "dur" not in e:
            fail(f"traceEvents[{i}]: complete event without 'dur'")
        ev_args = e.get("args", {})
        if not isinstance(ev_args, dict):
            fail(f"traceEvents[{i}]: 'args' is not an object")
        for key in ("request_id", "plan_id"):
            if key in ev_args and (not isinstance(ev_args[key], int)
                                   or ev_args[key] < 1):
                fail(f"traceEvents[{i}]: '{key}' = {ev_args[key]!r}, "
                     "expected positive integer")
        if "plan_id" in ev_args and e["ph"] == "X":
            # The pair travels together on spans: a plan-stamped span
            # always says which step of the plan it belongs to.
            # (plan.start/plan.done instants are plan-level and carry
            # no step.)
            si = ev_args.get("step_index")
            if not isinstance(si, int) or si < 0:
                fail(f"traceEvents[{i}]: plan_id without a valid "
                     f"step_index (got {si!r})")
            plan_stamped_spans += 1

    names_by_phase = {}
    for e in events:
        names_by_phase.setdefault(e["ph"], set()).add(e["name"])
    spans = names_by_phase.get("X", set())

    if expect_contract:
        missing = [s for s in STAGE_SPANS if s not in spans]
        if missing:
            fail(f"missing stage spans: {missing} (have: {sorted(spans)})")
        if not any(s in spans for s in SUBPHASE_SPANS):
            fail(f"no sub-phase span among {SUBPHASE_SPANS} "
                 f"(have: {sorted(spans)})")
        if not names_by_phase.get("C"):
            fail("no counter ('C') track in trace")

    if expect_plan:
        instants = names_by_phase.get("i", set())
        for name in ("plan.start", "plan.done"):
            if name not in instants:
                fail(f"missing instant '{name}' "
                     f"(have: {sorted(instants)})")
        if plan_stamped_spans == 0:
            fail("no span carries plan_id/step_index args")

    counters = sorted(names_by_phase.get("C", set()))
    print(f"{path}: OK ({len(events)} events, "
          f"{len(spans)} span names, counter tracks: {counters}, "
          f"dropped: {doc['droppedEvents']})")


if __name__ == "__main__":
    main()
