#!/usr/bin/env python3
"""Validate a per-request JSONL stat store written by the contraction
service (sparta_serve --statlog / ServeConfig::statlog_path).

Checks, per line: parses as JSON, schema_version == 2, the required
keys are present (including the schema-2 feature/estimator/model
columns), the outcome is one of the known labels, the feature_version
matches the fitter's basis, selector_prior is a known label (and a
"learned" prior always names its model), and the timing fields are
non-negative numbers. Across lines: request_ids are positive and
unique. With --expect-count N the total record count must be exactly N
(the acceptance gate: one record per resolved request). With
--expect-model-id ID every record's model_id must be exactly ID (the
closed-loop gate: the re-served workload ran under the fitted brain).

Usage: check_statlog.py statlog.jsonl [more.jsonl ...]
           [--expect-count N] [--expect-model-id ID]
"""
import json
import sys

REQUIRED_KEYS = [
    "schema_version",
    "feature_version",
    "request_id",
    "x",
    "y",
    "key",
    "cx",
    "cy",
    "num_contract_modes",
    "variant",
    "outcome",
    "cache_hit",
    "plan_cached",
    "degraded",
    "budget_exceeded",
    "simd_isa",
    "swiss_tables",
    "model_id",
    "selector_prior",
    "nnz_z",
    "est_hty_bytes",
    "est_hta_bytes",
    "hty_bytes",
    "hta_bytes",
    "pred_seconds",
    "queue_seconds",
    "exec_seconds",
    "cancel_seconds",
    "stages",
    "perf",
]
OUTCOMES = {
    "ok",
    "degraded",
    "rejected",
    "deadline",
    "cancelled",
    "budget",
    "error",
}
PRIORS = {"analytic", "learned"}
TIMING_KEYS = ["queue_seconds", "exec_seconds", "cancel_seconds"]
NONNEG_KEYS = [
    "est_hty_bytes",
    "est_hta_bytes",
    "hty_bytes",
    "hta_bytes",
    "pred_seconds",
]
# The feature basis the offline fitter (tools/sparta_autotune) was
# built against; keep in sync with serve::kCostFeatureVersion.
FEATURE_VERSION = 1


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    paths = []
    expect_count = None
    expect_model_id = None
    args = sys.argv[1:]
    i = 0
    while i < len(args):
        if args[i] == "--expect-count":
            expect_count = int(args[i + 1])
            i += 2
        elif args[i] == "--expect-model-id":
            expect_model_id = args[i + 1]
            i += 2
        else:
            paths.append(args[i])
            i += 1
    if not paths:
        print(__doc__, file=sys.stderr)
        sys.exit(2)

    seen_ids = set()
    outcomes = {}
    total = 0
    for path in paths:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                where = f"{path}:{lineno}"
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{where}: not valid JSON ({e})")
                if not isinstance(rec, dict):
                    fail(f"{where}: record is not an object")
                if rec.get("schema_version") != 2:
                    fail(f"{where}: schema_version != 2")
                missing = [k for k in REQUIRED_KEYS if k not in rec]
                if missing:
                    fail(f"{where}: missing keys {missing}")
                if rec["feature_version"] != FEATURE_VERSION:
                    fail(f"{where}: feature_version "
                         f"{rec['feature_version']!r} != {FEATURE_VERSION}")
                rid = rec["request_id"]
                if not isinstance(rid, int) or rid < 1:
                    fail(f"{where}: request_id must be a positive int, "
                         f"got {rid!r}")
                if rid in seen_ids:
                    fail(f"{where}: duplicate request_id {rid}")
                seen_ids.add(rid)
                outcome = rec["outcome"]
                if outcome not in OUTCOMES:
                    fail(f"{where}: unknown outcome '{outcome}' "
                         f"(expected one of {sorted(OUTCOMES)})")
                prior = rec["selector_prior"]
                if prior not in PRIORS:
                    fail(f"{where}: unknown selector_prior '{prior}' "
                         f"(expected one of {sorted(PRIORS)})")
                if prior == "learned" and not rec["model_id"]:
                    fail(f"{where}: selector_prior is 'learned' but "
                         f"model_id is empty")
                if expect_model_id is not None \
                        and rec["model_id"] != expect_model_id:
                    fail(f"{where}: model_id {rec['model_id']!r} != "
                         f"expected {expect_model_id!r}")
                for key in TIMING_KEYS + NONNEG_KEYS:
                    v = rec[key]
                    if not isinstance(v, (int, float)) or v < 0:
                        fail(f"{where}: {key} must be a non-negative "
                             f"number, got {v!r}")
                outcomes[outcome] = outcomes.get(outcome, 0) + 1
                total += 1

    if expect_count is not None and total != expect_count:
        fail(f"expected {expect_count} records, found {total}")
    summary = ", ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
    print(f"{' '.join(paths)}: OK ({total} records, {summary})")


if __name__ == "__main__":
    main()
