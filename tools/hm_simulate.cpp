// hm_simulate — run an instrumented contraction on two tensor files and
// report estimated run times under every heterogeneous-memory policy
// (the Fig. 7 experiment as a CLI).
//
//   hm_simulate -X x.tns -Y y.tns -x 0,1 -y 0,1 [--dram-mb N]
//               [--budget-mb N] [--resilient]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/format.hpp"
#include "contraction/contract.hpp"
#include "contraction/resilient.hpp"
#include "memsim/cost_model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/io.hpp"

namespace {

sparta::Modes parse_modes(const char* s) {
  sparta::Modes modes;
  for (const char* p = s; *p;) {
    modes.push_back(std::atoi(p));
    const char* comma = std::strchr(p, ',');
    if (!comma) break;
    p = comma + 1;
  }
  return modes;
}

void usage() {
  std::fprintf(stderr,
               "usage: hm_simulate -X x.tns -Y y.tns -x 0,1 -y 0,1 "
               "[--dram-mb N]\n"
               "                   [--budget-mb N] [--resilient]\n"
               "                   [--trace out.json] "
               "[--metrics-json out.json]\n"
               "  --dram-mb N    simulated DRAM tier capacity (default: a\n"
               "                 third of the workload footprint)\n"
               "  --budget-mb N  hard memory budget for the contraction\n"
               "                 itself (Eq. 5/6 pre-flight + tracked\n"
               "                 runtime charges; throws BudgetExceeded)\n"
               "  --resilient    run via contract_resilient(): on a budget\n"
               "                 or allocation failure, degrade through\n"
               "                 lighter algorithms and chunked execution,\n"
               "                 then print the resilience report\n"
               "  --trace P     write a Chrome trace_event JSON of the run\n"
               "                to P (same as SPARTA_TRACE=P)\n"
               "  --metrics-json P  write the global metrics registry to P\n"
               "                (\"-\" = stderr; same as SPARTA_METRICS=P)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sparta;
  std::string xpath, ypath;
  Modes cx, cy;
  std::uint64_t dram_mb = 0;  // 0 = a third of the workload footprint
  std::uint64_t budget_mb = 0;
  bool resilient = false;
  std::string trace_path, metrics_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "-X") {
      xpath = next();
    } else if (arg == "-Y") {
      ypath = next();
    } else if (arg == "-x") {
      cx = parse_modes(next());
    } else if (arg == "-y") {
      cy = parse_modes(next());
    } else if (arg == "--dram-mb") {
      dram_mb = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--budget-mb") {
      budget_mb = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--resilient") {
      resilient = true;
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--metrics-json") {
      metrics_path = next();
    } else {
      usage();
      return arg == "--help" || arg == "-h" ? 0 : 1;
    }
  }
  if (xpath.empty() || ypath.empty() || cx.empty() || cy.empty()) {
    std::fprintf(stderr, "need -X, -Y, -x and -y (see --help)\n");
    return 1;
  }

  if (!trace_path.empty()) obs::TraceRecorder::global().enable();
  if (!metrics_path.empty()) obs::MetricsRegistry::global().enable();
  // Written even when the contraction fails: a budget-exceeded run's
  // partial trace is exactly what one wants to look at.
  struct ObsFlush {
    const std::string& trace;
    const std::string& metrics;
    ~ObsFlush() {
      if (!trace.empty()) obs::TraceRecorder::global().write_file(trace);
      if (!metrics.empty()) {
        obs::MetricsRegistry::global().write_file(metrics);
      }
    }
  } obs_flush{trace_path, metrics_path};

  try {
    const SparseTensor x = read_tns_file(xpath);
    const SparseTensor y = read_tns_file(ypath);
    std::printf("X: %s\nY: %s\n", x.summary().c_str(), y.summary().c_str());

    ContractOptions o;
    o.collect_access_profile = true;
    o.budget.bytes = static_cast<std::size_t>(budget_mb) << 20;
    if (o.budget.bytes > 0) {
      std::printf("memory budget: %s\n",
                  format_bytes(o.budget.bytes).c_str());
    }

    ContractResult r;
    if (resilient) {
      ResilientResult rr = contract_resilient(x, y, cx, cy, o);
      r = std::move(rr.result);
      std::printf("resilience: served by %s%s\n  %s\n",
                  rr.report.serving().describe().c_str(),
                  rr.report.degraded() ? " (degraded)" : "",
                  rr.report.summary().c_str());
    } else {
      r = contract(x, y, cx, cy, o);
    }
    const AccessProfile& p = r.profile;
    std::printf("Z: %s   (measured all-DRAM run: %s)\n",
                r.z.summary().c_str(),
                format_seconds(p.measured.total()).c_str());

    MemoryParams params;
    params.dram_capacity_bytes =
        dram_mb > 0 ? dram_mb << 20
                    : std::max<std::uint64_t>(p.total_footprint() / 3, 1);
    std::printf("DRAM budget: %s of %s footprint\n\n",
                format_bytes(params.dram_capacity_bytes).c_str(),
                format_bytes(p.total_footprint()).c_str());

    const double pmm_only =
        simulate_static(p, params, Placement::all(Tier::kPmm))
            .total_seconds();
    struct Row {
      const char* name;
      double secs;
    };
    const Row rows[] = {
        {"DRAM-only", simulate_static(p, params, Placement::all(Tier::kDram))
                          .total_seconds()},
        {"Sparta",
         simulate_static(p, params,
                         sparta_placement(p.footprint_bytes, params))
             .total_seconds()},
        {"Memory mode", simulate_memory_mode(p, params).total_seconds()},
        {"IAL", simulate_ial(p, params).total_seconds()},
        {"PMM-only", pmm_only},
    };
    std::printf("%-12s %12s %12s\n", "policy", "est. time", "vs PMM-only");
    for (const Row& row : rows) {
      std::printf("%-12s %12s %11.2fx\n", row.name,
                  format_seconds(row.secs).c_str(), pmm_only / row.secs);
    }
  } catch (const sparta::BudgetExceeded& e) {
    std::fprintf(stderr,
                 "budget exceeded: %s\n(re-run with --resilient to degrade "
                 "instead of failing)\n",
                 e.what());
    return 1;
  } catch (const sparta::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
