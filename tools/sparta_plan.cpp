// sparta_plan — parse a contraction-network expression, search the
// contraction order, and either explain the plan (--dry-run) or execute
// it through an in-process ContractionService.
//
//   sparta_plan --expr "Z[i,l] = A[i,j] * B[j,k] * C[k,l]"
//     (--gen NAME=AxBxC:nnz[:seed] | --load NAME=path)...
//     [--dry-run] [--json PATH] [--budget-mb M]
//     [--selector-model PATH] [--deadline-ms D] [--store]
//     [--workers N]
//
// Input binding: every tensor named in the expression needs exactly one
// --gen or --load. --gen synthesizes a uniform random tensor
// (tensor/generators.hpp) with the given dims string, nnz and optional
// seed (default 42); --load reads a .tns / .sptn file.
//
// --dry-run prints the searched plan as a byte-deterministic JSON
// document (CI diffs two runs) without constructing a service. Without
// it the plan executes end-to-end: per-step variant via the service's
// selector, intermediates as budget-charged "__tmp/" registry entries,
// per-step statlog/trace rows stamped with plan_id/step_index.
//
// Exit codes: 0 ok; 1 execution failure; 2 usage / bad flags;
// 3 network parse or planning error (bad expression, unknown tensor,
// budget admits no order).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "obs/json.hpp"
#include "plan/executor.hpp"
#include "plan/ir.hpp"
#include "plan/planner.hpp"
#include "serve/costmodel.hpp"
#include "serve/service.hpp"
#include "tensor/generators.hpp"
#include "tensor/io.hpp"
#include "tensor/io_binary.hpp"

namespace {

void usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s --expr \"Z[i,l] = A[i,j] * B[j,l]\"\n"
      "  (--gen NAME=AxB:nnz[:seed] | --load NAME=path)...\n"
      "  [--dry-run] [--json PATH] [--budget-mb M]\n"
      "  [--selector-model PATH] [--deadline-ms D] [--store]\n"
      "  [--workers N]\n",
      prog);
  std::exit(2);
}

struct Binding {
  std::string name;
  bool generated = false;
  sparta::GeneratorSpec gen;
  std::string path;
};

// NAME=AxBxC:nnz[:seed]
Binding parse_gen(const std::string& spec) {
  Binding b;
  b.generated = true;
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw sparta::Error("--gen needs NAME=AxB:nnz[:seed], got '" + spec +
                        "'");
  }
  b.name = spec.substr(0, eq);
  const std::string rest = spec.substr(eq + 1);
  const std::size_t c1 = rest.find(':');
  if (c1 == std::string::npos) {
    throw sparta::Error("--gen '" + spec + "' is missing ':nnz'");
  }
  const std::string dims = rest.substr(0, c1);
  std::size_t pos = 0;
  while (pos < dims.size()) {
    std::size_t next = dims.find('x', pos);
    if (next == std::string::npos) next = dims.size();
    const long v = std::atol(dims.substr(pos, next - pos).c_str());
    if (v <= 0) {
      throw sparta::Error("--gen '" + spec + "': bad mode size in '" +
                          dims + "'");
    }
    b.gen.dims.push_back(static_cast<sparta::index_t>(v));
    pos = next + 1;
  }
  if (b.gen.dims.empty()) {
    throw sparta::Error("--gen '" + spec + "': empty dims");
  }
  std::string tail = rest.substr(c1 + 1);
  const std::size_t c2 = tail.find(':');
  if (c2 != std::string::npos) {
    b.gen.seed = static_cast<std::uint64_t>(
        std::strtoull(tail.substr(c2 + 1).c_str(), nullptr, 10));
    tail.resize(c2);
  }
  const long long nnz = std::atoll(tail.c_str());
  if (nnz <= 0) {
    throw sparta::Error("--gen '" + spec + "': bad nnz '" + tail + "'");
  }
  b.gen.nnz = static_cast<std::size_t>(nnz);
  return b;
}

sparta::SparseTensor materialize(const Binding& b) {
  if (b.generated) return sparta::generate_random(b.gen);
  const bool binary =
      b.path.size() >= 5 &&
      b.path.compare(b.path.size() - 5, 5, ".sptn") == 0;
  return binary ? sparta::read_sptn_file(b.path)
                : sparta::read_tns_file(b.path);
}

}  // namespace

int main(int argc, char** argv) {
  std::string expr;
  std::string json_path;
  std::string model_path;
  std::vector<Binding> bindings;
  bool dry_run = false;
  bool store = false;
  double deadline_ms = 0.0;
  std::size_t budget_bytes = 0;
  int workers = 1;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      const auto next = [&]() -> std::string {
        if (i + 1 >= argc) usage(argv[0]);
        return argv[++i];
      };
      if (a == "--expr") {
        expr = next();
      } else if (a == "--gen") {
        bindings.push_back(parse_gen(next()));
      } else if (a == "--load") {
        const std::string spec = next();
        const std::size_t eq = spec.find('=');
        if (eq == std::string::npos || eq == 0) {
          throw sparta::Error("--load needs NAME=path, got '" + spec +
                              "'");
        }
        Binding b;
        b.name = spec.substr(0, eq);
        b.path = spec.substr(eq + 1);
        bindings.push_back(std::move(b));
      } else if (a == "--dry-run") {
        dry_run = true;
      } else if (a == "--json") {
        json_path = next();
      } else if (a == "--budget-mb") {
        budget_bytes =
            static_cast<std::size_t>(std::atoll(next().c_str())) << 20;
      } else if (a == "--selector-model") {
        model_path = next();
      } else if (a == "--deadline-ms") {
        deadline_ms = std::atof(next().c_str());
      } else if (a == "--store") {
        store = true;
      } else if (a == "--workers") {
        workers = std::atoi(next().c_str());
      } else {
        std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                     a.c_str());
        usage(argv[0]);
      }
    }
    if (expr.empty() || bindings.empty()) usage(argv[0]);
  } catch (const sparta::Error& e) {
    std::fprintf(stderr, "sparta_plan: %s\n", e.what());
    return 2;
  }

  sparta::serve::CostModel model;
  if (!model_path.empty()) {
    try {
      model = sparta::serve::CostModel::load_file(model_path);
    } catch (const sparta::Error& e) {
      std::fprintf(stderr, "sparta_plan: %s\n", e.what());
      return 2;
    }
  }

  auto write_doc = [&](const std::string& doc) -> int {
    if (json_path.empty()) {
      std::printf("%s\n", doc.c_str());
      return 0;
    }
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "sparta_plan: cannot write '%s'\n",
                   json_path.c_str());
      return 1;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return 0;
  };

  try {
    const sparta::plan::ContractionNetwork net =
        sparta::plan::parse_network(expr);

    // Bindings must cover the expression exactly (unused bindings are a
    // flag typo the user wants to hear about).
    for (const Binding& b : bindings) {
      bool used = false;
      for (const auto& t : net.inputs) used = used || t.name == b.name;
      if (!used) {
        throw sparta::Error("binding '" + b.name +
                            "' does not appear in the expression");
      }
    }

    if (dry_run) {
      // Plan without a service: bind metadata only, search, explain.
      std::vector<sparta::plan::BoundInput> inputs;
      for (const auto& t : net.inputs) {
        const Binding* bound = nullptr;
        for (const Binding& b : bindings) {
          if (b.name == t.name) bound = &b;
        }
        if (bound == nullptr) {
          throw sparta::Error("tensor '" + t.name +
                              "' has no --gen/--load binding");
        }
        const sparta::SparseTensor tensor = materialize(*bound);
        sparta::plan::BoundInput bi;
        bi.name = t.name;
        bi.dims = tensor.dims();
        bi.nnz = tensor.nnz();
        inputs.push_back(std::move(bi));
      }
      sparta::plan::PlanOptions popts;
      popts.budget_bytes = budget_bytes;
      if (!model.empty()) popts.model = &model;
      const sparta::plan::NetworkPlan plan =
          sparta::plan::plan_network(net, inputs, popts);

      sparta::obs::JsonWriter w;
      w.begin_object();
      w.key("schema_version").value(1);
      w.key("tool").value("sparta_plan");
      w.key("expr").value(std::string_view(net.canonical()));
      w.key("dry_run").value(true);
      w.key("model_id").value(std::string_view(model.id()));
      w.key("budget_bytes")
          .value(static_cast<std::uint64_t>(budget_bytes));
      w.key("inputs").begin_array();
      for (const sparta::plan::BoundInput& bi : inputs) {
        w.begin_object();
        w.key("name").value(std::string_view(bi.name));
        w.key("dims").begin_array();
        for (const sparta::index_t d : bi.dims) {
          w.value(static_cast<std::uint64_t>(d));
        }
        w.end_array();
        w.key("nnz").value(static_cast<std::uint64_t>(bi.nnz));
        w.end_object();
      }
      w.end_array();
      w.key("plan").raw(plan.to_json());
      w.end_object();
      return write_doc(w.str());
    }

    // Execute: a private in-process service with the requested budget.
    sparta::serve::ServeConfig cfg;
    cfg.dram_budget_bytes = budget_bytes;
    cfg.num_workers = workers;
    sparta::serve::ContractionService svc(cfg);
    for (const Binding& b : bindings) {
      svc.load(b.name, materialize(b));
    }
    sparta::plan::PlanExecutor exec(svc);
    sparta::plan::ExecOptions eopts;
    eopts.deadline_ms = deadline_ms;
    if (store) eopts.store_as = net.output_name;
    if (!model.empty()) eopts.plan.model = &model;
    const sparta::plan::PlanExecution ex = exec.run(net, eopts);

    std::fprintf(stderr, "sparta_plan: %s\n", net.canonical().c_str());
    if (ex.plan != nullptr) {
      std::fprintf(stderr,
                   "  search=%s steps=%zu est_total=%.3g s "
                   "est_peak=%zu B (%llu alternatives rejected, "
                   "%llu by budget)\n",
                   ex.plan->search.c_str(), ex.plan->steps.size(),
                   ex.plan->est_total_seconds, ex.plan->est_peak_bytes,
                   static_cast<unsigned long long>(
                       ex.plan->rejected_alternatives),
                   static_cast<unsigned long long>(
                       ex.plan->budget_pruned));
    }
    if (ex.ok()) {
      std::fprintf(stderr,
                   "  ok: nnz_z=%zu exec=%.3f ms plan=%.3f ms "
                   "peak_temp=%zu B\n",
                   ex.z->nnz(), ex.exec_seconds * 1e3,
                   ex.plan_seconds * 1e3, ex.peak_temp_bytes);
    } else {
      std::fprintf(stderr, "  FAILED: %s\n", ex.error.c_str());
    }
    sparta::obs::JsonWriter w;
    w.begin_object();
    w.key("schema_version").value(1);
    w.key("tool").value("sparta_plan");
    w.key("expr").value(std::string_view(net.canonical()));
    w.key("dry_run").value(false);
    w.key("execution").raw(ex.to_json());
    w.end_object();
    const int write_rc = write_doc(w.str());
    if (write_rc != 0) return write_rc;
    return ex.ok() ? 0 : 1;
  } catch (const sparta::Error& e) {
    std::fprintf(stderr, "sparta_plan: %s\n", e.what());
    return 3;
  }
}
