// tensor_info — print the characteristics of a sparse tensor file
// (.tns text or .sptn binary): shape, nnz, density, per-mode fiber
// statistics, and storage-format footprints (COO / CSF / HiCOO).
//
//   tensor_info <path> [--formats]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/format.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/csf.hpp"
#include "tensor/hicoo.hpp"
#include "tensor/io.hpp"
#include "tensor/io_binary.hpp"

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sparta;
  std::string path;
  bool formats = false;
  std::string trace_path, metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--formats") {
      formats = true;
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--metrics-json") {
      metrics_path = next();
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: tensor_info <file.tns|file.sptn> [--formats]\n"
                   "                   [--trace out.json] "
                   "[--metrics-json out.json]\n");
      return arg == "--help" || arg == "-h" ? 0 : 1;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: tensor_info <file.tns|file.sptn> "
                         "[--formats]\n");
    return 1;
  }

  if (!trace_path.empty()) obs::TraceRecorder::global().enable();
  if (!metrics_path.empty()) obs::MetricsRegistry::global().enable();
  struct ObsFlush {
    const std::string& trace;
    const std::string& metrics;
    ~ObsFlush() {
      if (!trace.empty()) obs::TraceRecorder::global().write_file(trace);
      if (!metrics.empty()) {
        obs::MetricsRegistry::global().write_file(metrics);
      }
    }
  } obs_flush{trace_path, metrics_path};

  try {
    obs::Span sp_read("read_tensor");
    SparseTensor t = ends_with(path, ".sptn") ? read_sptn_file(path)
                                              : read_tns_file(path);
    sp_read.finish();
    obs::Span sp_analyze("analyze");
    std::printf("%s\n", t.summary().c_str());
    std::printf("density   %s\n", format_density(t.density()).c_str());
    std::printf("sorted    %s\n", t.is_sorted() ? "yes" : "no");
    std::printf("COO bytes %s\n", format_bytes(t.footprint_bytes()).c_str());

    // Per-mode distinct index counts (fiber counts).
    for (int m = 0; m < t.order(); ++m) {
      std::vector<bool> seen(t.dim(m), false);
      std::size_t distinct = 0;
      for (index_t v : t.mode_indices(m)) {
        if (!seen[v]) {
          seen[v] = true;
          ++distinct;
        }
      }
      std::printf("mode %d    size %-10u distinct indices %zu (%.1f%%)\n", m,
                  t.dim(m), distinct,
                  100.0 * static_cast<double>(distinct) /
                      static_cast<double>(t.dim(m)));
    }

    if (formats) {
      t.sort();
      const CsfTensor csf = CsfTensor::from_sorted(t);
      const HicooTensor hicoo = HicooTensor::from_coo(t);
      std::printf("CSF bytes   %s (%zu fibers at level 0)\n",
                  format_bytes(csf.footprint_bytes()).c_str(),
                  csf.level_size(0));
      std::printf("HiCOO bytes %s (%zu blocks, %.1f nnz/block)\n",
                  format_bytes(hicoo.footprint_bytes()).c_str(),
                  hicoo.num_blocks(), hicoo.block_density());
    }
  } catch (const sparta::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
