// tensor_convert — convert between the .tns text format and the .sptn
// binary format (the artifact's SPLATT-convert step, Appendix B.4).
//
//   tensor_convert <in.tns|in.sptn> <out.tns|out.sptn>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/format.hpp"
#include "tensor/io.hpp"
#include "tensor/io_binary.hpp"

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sparta;
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: tensor_convert <in.tns|in.sptn> <out.tns|out.sptn>\n");
    return 1;
  }
  const std::string in = argv[1];
  const std::string out = argv[2];
  try {
    const SparseTensor t =
        ends_with(in, ".sptn") ? read_sptn_file(in) : read_tns_file(in);
    if (ends_with(out, ".sptn")) {
      write_sptn_file(out, t);
    } else {
      write_tns_file(out, t);
    }
    std::printf("%s -> %s (%s)\n", in.c_str(), out.c_str(),
                t.summary().c_str());
  } catch (const sparta::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
