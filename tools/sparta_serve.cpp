// sparta_serve — run a deterministic workload script against the
// concurrent contraction service and report per-request + aggregate
// results (optionally as JSON for .ci/check_bench_json.py).
//
//   sparta_serve --workload scripts.workload [--clients N] [--workers N]
//     [--threads-per-request N] [--budget-mb M] [--cache-fraction F]
//     [--queue N] [--no-degrade] [--shed] [--json PATH]
//     [--statlog PATH] [--stats-socket PATH] [--metrics-jsonl PATH]
//     [--metrics-interval SEC] [--flight-dump PATH] [--linger-ms N]
//     [--selector-model PATH] [--selector-state PATH]
//     [--ewma-alpha F] [--explore-period N]
//
// Selector flags (docs/SERVING.md § "The learned selector prior"):
//   --selector-model PATH  load a sparta_autotune model as the cold-
//                          start prior (selector seeds from predictions
//                          instead of exploring)
//   --selector-state PATH  load the selector state snapshot from PATH
//                          when it exists, write it back on shutdown —
//                          per-key EWMAs survive restarts
//   --ewma-alpha F         weight of the newest observation, (0, 1]
//   --explore-period N     explore every Nth decision; 0 disables
//
// Telemetry flags:
//   --statlog PATH        per-request JSONL stat store (obs/statlog.hpp);
//                         aggregate with sparta_stats
//   --stats-socket PATH   Prometheus text exposition over a unix socket;
//                         one snapshot per connection (curl --unix-socket)
//   --metrics-jsonl PATH  append a MetricsRegistry JSON snapshot every
//                         --metrics-interval seconds (default 1.0)
//   --flight-dump PATH    enable the flight recorder; dump the last-N
//                         event rings to PATH on a hard request failure
//                         or a fatal signal
//   --linger-ms N         keep the service (and socket) alive N ms after
//                         the workload drains, so an external scraper
//                         has a deterministic window
//
// Exit codes: 0 all requests ok; 1 hard failures (or bad I/O); 2 usage;
// 3 deadline-exceeded requests but no hard failures; 4 rejected/shed
// requests but no hard failures or deadline misses. 3 and 4 let CI
// scripts distinguish "the service timed requests out as configured"
// from "something actually broke".
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/exposition.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/statlog.hpp"
#include "plan/executor.hpp"
#include "plan/ir.hpp"
#include "serve/costmodel.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"

namespace {

void usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s --workload FILE [--clients N] [--workers N]\n"
      "  [--threads-per-request N] [--budget-mb M] [--cache-fraction F]\n"
      "  [--queue N] [--no-degrade] [--shed] [--json PATH]\n"
      "  [--statlog PATH] [--stats-socket PATH] [--metrics-jsonl PATH]\n"
      "  [--metrics-interval SEC] [--flight-dump PATH] [--linger-ms N]\n"
      "  [--selector-model PATH] [--selector-state PATH]\n"
      "  [--ewma-alpha F] [--explore-period N]\n",
      prog);
  std::exit(2);
}

// Periodic MetricsRegistry snapshots as JSONL — the pull-less
// counterpart of the socket: point it at a file, get a time series.
class MetricsSnapshotter {
 public:
  void start(const std::string& path, double interval_seconds) {
    sparta::obs::StatLogConfig cfg;
    cfg.path = path;
    log_.open(cfg);
    interval_ms_ = static_cast<int>(interval_seconds * 1e3);
    if (interval_ms_ < 1) interval_ms_ = 1;
    thread_ = std::thread([this] { loop(); });
  }

  void stop() {
    if (!thread_.joinable()) return;
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
    // One final snapshot so even a sub-interval run records its end
    // state.
    log_.append(sparta::obs::MetricsRegistry::global().to_json());
    log_.close();
  }

  ~MetricsSnapshotter() { stop(); }

 private:
  void loop() {
    using clock = std::chrono::steady_clock;
    auto next = clock::now();
    while (!stop_.load(std::memory_order_relaxed)) {
      next += std::chrono::milliseconds(interval_ms_);
      while (clock::now() < next &&
             !stop_.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      if (stop_.load(std::memory_order_relaxed)) return;
      log_.append(sparta::obs::MetricsRegistry::global().to_json());
    }
  }

  sparta::obs::StatLog log_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  int interval_ms_ = 1000;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_path;
  std::string json_path;
  std::string socket_path;
  std::string metrics_jsonl_path;
  std::string flight_dump_path;
  double metrics_interval = 1.0;
  int linger_ms = 0;
  sparta::serve::ServeConfig cfg;
  sparta::serve::WorkloadOptions wopts;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--workload") {
      workload_path = next();
    } else if (a == "--clients") {
      wopts.clients = std::atoi(next().c_str());
    } else if (a == "--workers") {
      cfg.num_workers = std::atoi(next().c_str());
    } else if (a == "--threads-per-request") {
      cfg.threads_per_request = std::atoi(next().c_str());
    } else if (a == "--budget-mb") {
      cfg.dram_budget_bytes =
          static_cast<std::size_t>(std::atoll(next().c_str())) << 20;
    } else if (a == "--cache-fraction") {
      cfg.cache_fraction = std::atof(next().c_str());
    } else if (a == "--queue") {
      cfg.queue_capacity =
          static_cast<std::size_t>(std::atoll(next().c_str()));
    } else if (a == "--no-degrade") {
      cfg.allow_degrade = false;
    } else if (a == "--shed") {
      cfg.shed_on_overload = true;
    } else if (a == "--json") {
      json_path = next();
    } else if (a == "--statlog") {
      cfg.statlog_path = next();
    } else if (a == "--stats-socket") {
      socket_path = next();
    } else if (a == "--metrics-jsonl") {
      metrics_jsonl_path = next();
    } else if (a == "--metrics-interval") {
      metrics_interval = std::atof(next().c_str());
    } else if (a == "--flight-dump") {
      flight_dump_path = next();
    } else if (a == "--linger-ms") {
      linger_ms = std::atoi(next().c_str());
    } else if (a == "--selector-model") {
      cfg.selector.model = next();
    } else if (a == "--selector-state") {
      cfg.selector.state_path = next();
    } else if (a == "--ewma-alpha") {
      cfg.selector.ewma_alpha = std::atof(next().c_str());
    } else if (a == "--explore-period") {
      cfg.selector.explore_period = std::atoi(next().c_str());
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                   a.c_str());
      usage(argv[0]);
    }
  }
  if (workload_path.empty() || wopts.clients <= 0) usage(argv[0]);

  // Fail bad knob values at the flag boundary with the flag name in the
  // diagnostic, not later from inside the service constructor. The
  // model file gets the same treatment: an unreadable brain is a
  // configuration error (exit 2), not a mid-run hard failure.
  sparta::serve::CostModel plan_model;  // empty = analytic plan costs
  try {
    cfg.selector.validate();
    if (!cfg.selector.model.empty()) {
      // Loaded twice on purpose: the selector keeps its own copy; this
      // one prices candidate orders in the plan compiler.
      plan_model = sparta::serve::CostModel::load_file(cfg.selector.model);
    }
  } catch (const sparta::Error& e) {
    std::fprintf(stderr, "sparta_serve: %s\n", e.what());
    return 2;
  }

  // Metrics on for the whole run so the cache/admission counters and
  // the queue/exec histograms land in the JSON report.
  sparta::obs::MetricsRegistry::global().enable();

  // Flight recorder: always-on ring + crash dump. arm_crash_dump installs
  // the fatal-signal handlers; the service dumps the same path on a hard
  // request failure (cfg.flight_dump_path).
  if (!flight_dump_path.empty()) {
    cfg.flight_dump_path = flight_dump_path;
    sparta::obs::FlightRecorder::global().arm_crash_dump(flight_dump_path +
                                                         ".crash");
  }

  sparta::obs::StatsSocketServer stats_server;
  if (!socket_path.empty() && !stats_server.start(socket_path)) {
    std::fprintf(stderr, "sparta_serve: cannot bind stats socket '%s'\n",
                 socket_path.c_str());
    return 1;
  }
  MetricsSnapshotter snapshotter;
  if (!metrics_jsonl_path.empty()) {
    snapshotter.start(metrics_jsonl_path, metrics_interval);
  }

  try {
    const std::vector<sparta::serve::WorkloadOp> ops =
        sparta::serve::parse_workload_file(workload_path);
    sparta::serve::ContractionService svc(cfg);
    // The plan compiler rides on top of the service: `network` workload
    // statements parse + order-search + execute through it, each step a
    // normal ServeRequest stamped with the plan correlation pair.
    sparta::plan::PlanExecutor plan_exec(svc);
    wopts.network_runner =
        [&plan_exec, &plan_model](
            sparta::serve::ContractionService&,
            const sparta::serve::NetworkRequest& nreq) {
          std::vector<sparta::serve::ServeReport> out;
          try {
            const sparta::plan::ContractionNetwork net =
                sparta::plan::parse_network(nreq.expr);
            sparta::plan::ExecOptions eopts;
            eopts.deadline_ms = nreq.deadline_ms;
            if (nreq.store) eopts.store_as = net.output_name;
            if (!plan_model.empty()) eopts.plan.model = &plan_model;
            sparta::plan::PlanExecution ex = plan_exec.run(net, eopts);
            out = std::move(ex.steps);
            if (!ex.ok() && (out.empty() || out.back().ok())) {
              // Plan-level failure with no failing step report (parse,
              // search, pre-submit deadline): synthesize one so the
              // summary and exit code see it.
              sparta::serve::ServeReport r;
              r.error = ex.error;
              if (ex.error.find("deadline") != std::string::npos) {
                r.cancelled = true;
                r.deadline_exceeded = true;
              }
              out.push_back(std::move(r));
            }
          } catch (const std::exception& e) {
            sparta::serve::ServeReport r;
            r.error = e.what();
            out.push_back(std::move(r));
          }
          return out;
        };
    // Selector state (decision counters, per-key EWMAs, active model
    // id) rides along on every scrape, after the registry snapshot.
    if (stats_server.running()) {
      stats_server.set_extra(
          [&svc] { return svc.selector().prometheus_text(); });
    }
    const sparta::serve::WorkloadResult res =
        sparta::serve::run_workload(svc, ops, wopts);

    // Deterministic scrape window: the workload is drained, every
    // counter is final, and the socket stays answerable until the
    // linger expires.
    if (linger_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(linger_ms));
    }
    // Scrape window over: detach the selector hook before the service
    // it points into is destroyed at the end of this scope.
    stats_server.set_extra({});

    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t rejected = 0;
    std::size_t cancelled = 0;
    std::size_t deadline = 0;
    std::size_t degraded = 0;
    std::size_t hits = 0;
    std::vector<double> latencies;
    latencies.reserve(res.reports.size());
    for (const sparta::serve::ServeReport& r : res.reports) {
      if (r.ok()) {
        ++ok;
      } else if (r.rejected) {
        ++rejected;
      } else if (r.cancelled) {
        ++cancelled;
      } else {
        ++failed;
      }
      if (r.deadline_exceeded) ++deadline;
      if (r.degraded) ++degraded;
      if (r.cache_hit) ++hits;
      if (r.ok()) latencies.push_back(r.exec_seconds);
    }

    std::printf("sparta_serve: %s\n", workload_path.c_str());
    std::printf(
        "  workers=%d clients=%d threads/request=%d budget=%zu MiB\n",
        svc.workers(), wopts.clients, svc.threads_per_request(),
        cfg.dram_budget_bytes >> 20);
    std::printf(
        "  requests=%zu ok=%zu failed=%zu rejected=%zu cancelled=%zu "
        "(deadline=%zu) degraded=%zu\n",
        res.reports.size(), ok, failed, rejected, cancelled, deadline,
        degraded);
    const sparta::serve::PlanCache::Stats cs = svc.cache_stats();
    std::printf(
        "  cache: hits=%llu misses=%llu evictions=%llu "
        "uncacheable=%llu retained=%zu B\n",
        static_cast<unsigned long long>(cs.hits),
        static_cast<unsigned long long>(cs.misses),
        static_cast<unsigned long long>(cs.evictions),
        static_cast<unsigned long long>(cs.uncacheable),
        cs.retained_bytes);
    std::printf(
        "  latency: p50=%.3f ms p95=%.3f ms max=%.3f ms "
        "wall=%.3f s\n",
        percentile(latencies, 0.5) * 1e3,
        percentile(latencies, 0.95) * 1e3,
        percentile(latencies, 1.0) * 1e3, res.wall_seconds);
    const sparta::plan::NetworkPlanCache::Stats ps =
        plan_exec.cache().stats();
    if (ps.hits + ps.misses > 0) {
      std::printf("  plan cache: hits=%llu misses=%llu entries=%zu\n",
                  static_cast<unsigned long long>(ps.hits),
                  static_cast<unsigned long long>(ps.misses), ps.entries);
    }
    const std::string model_id = svc.selector().model_id();
    std::printf("  selector: prior=%s model_id=%s\n",
                model_id.empty() ? "analytic" : "learned",
                model_id.empty() ? "-" : model_id.c_str());

    if (!json_path.empty()) {
      sparta::obs::JsonWriter w;
      w.begin_object();
      w.key("schema_version").value(1);
      w.key("tool").value("sparta_serve");
      w.key("workload").value(std::string_view(workload_path));
      w.key("clients").value(wopts.clients);
      w.key("workers").value(svc.workers());
      w.key("threads").value(sparta::max_threads());
      w.key("budget_bytes")
          .value(static_cast<std::uint64_t>(cfg.dram_budget_bytes));
      w.key("wall_seconds").value(res.wall_seconds);
      w.key("requests").begin_array();
      for (const sparta::serve::ServeReport& r : res.reports) {
        w.raw(r.to_json());
      }
      w.end_array();
      w.key("summary").begin_object();
      w.key("total")
          .value(static_cast<std::uint64_t>(res.reports.size()));
      w.key("ok").value(static_cast<std::uint64_t>(ok));
      w.key("failed").value(static_cast<std::uint64_t>(failed));
      w.key("rejected").value(static_cast<std::uint64_t>(rejected));
      w.key("cancelled").value(static_cast<std::uint64_t>(cancelled));
      w.key("deadline_exceeded")
          .value(static_cast<std::uint64_t>(deadline));
      w.key("degraded").value(static_cast<std::uint64_t>(degraded));
      w.key("cache_hits").value(static_cast<std::uint64_t>(hits));
      w.key("plan_cache_hits").value(ps.hits);
      w.key("plan_cache_misses").value(ps.misses);
      w.key("statlog_lines").value(svc.statlog_lines());
      w.key("latency_seconds").begin_object();
      w.key("p50").value(percentile(latencies, 0.5));
      w.key("p95").value(percentile(latencies, 0.95));
      w.key("max").value(percentile(latencies, 1.0));
      w.end_object();
      w.end_object();
      w.key("selector").raw(svc.selector().stats_json());
      w.key("counters").raw(svc.counters_json());
      w.key("histograms")
          .raw(sparta::obs::MetricsRegistry::global()
                   .histograms_json());
      w.end_object();
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
        return 1;
      }
      const std::string& doc = w.str();
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fclose(f);
    }
    if (failed != 0) return 1;
    if (deadline != 0) return 3;
    if (rejected != 0 || cancelled != 0) return 4;
    return 0;
  } catch (const sparta::Error& e) {
    std::fprintf(stderr, "sparta_serve: %s\n", e.what());
    return 1;
  }
}
