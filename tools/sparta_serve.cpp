// sparta_serve — run a deterministic workload script against the
// concurrent contraction service and report per-request + aggregate
// results (optionally as JSON for .ci/check_bench_json.py).
//
//   sparta_serve --workload scripts.workload [--clients N] [--workers N]
//     [--threads-per-request N] [--budget-mb M] [--cache-fraction F]
//     [--queue N] [--no-degrade] [--shed] [--json PATH]
//
// Exit codes: 0 all requests ok; 1 hard failures (or bad I/O); 2 usage;
// 3 deadline-exceeded requests but no hard failures; 4 rejected/shed
// requests but no hard failures or deadline misses. 3 and 4 let CI
// scripts distinguish "the service timed requests out as configured"
// from "something actually broke".
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"

namespace {

void usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s --workload FILE [--clients N] [--workers N]\n"
      "  [--threads-per-request N] [--budget-mb M] [--cache-fraction F]\n"
      "  [--queue N] [--no-degrade] [--shed] [--json PATH]\n",
      prog);
  std::exit(2);
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload_path;
  std::string json_path;
  sparta::serve::ServeConfig cfg;
  sparta::serve::WorkloadOptions wopts;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--workload") {
      workload_path = next();
    } else if (a == "--clients") {
      wopts.clients = std::atoi(next().c_str());
    } else if (a == "--workers") {
      cfg.num_workers = std::atoi(next().c_str());
    } else if (a == "--threads-per-request") {
      cfg.threads_per_request = std::atoi(next().c_str());
    } else if (a == "--budget-mb") {
      cfg.dram_budget_bytes =
          static_cast<std::size_t>(std::atoll(next().c_str())) << 20;
    } else if (a == "--cache-fraction") {
      cfg.cache_fraction = std::atof(next().c_str());
    } else if (a == "--queue") {
      cfg.queue_capacity =
          static_cast<std::size_t>(std::atoll(next().c_str()));
    } else if (a == "--no-degrade") {
      cfg.allow_degrade = false;
    } else if (a == "--shed") {
      cfg.shed_on_overload = true;
    } else if (a == "--json") {
      json_path = next();
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0],
                   a.c_str());
      usage(argv[0]);
    }
  }
  if (workload_path.empty() || wopts.clients <= 0) usage(argv[0]);

  // Metrics on for the whole run so the cache/admission counters and
  // the queue/exec histograms land in the JSON report.
  sparta::obs::MetricsRegistry::global().enable();

  try {
    const std::vector<sparta::serve::WorkloadOp> ops =
        sparta::serve::parse_workload_file(workload_path);
    sparta::serve::ContractionService svc(cfg);
    const sparta::serve::WorkloadResult res =
        sparta::serve::run_workload(svc, ops, wopts);

    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t rejected = 0;
    std::size_t cancelled = 0;
    std::size_t deadline = 0;
    std::size_t degraded = 0;
    std::size_t hits = 0;
    std::vector<double> latencies;
    latencies.reserve(res.reports.size());
    for (const sparta::serve::ServeReport& r : res.reports) {
      if (r.ok()) {
        ++ok;
      } else if (r.rejected) {
        ++rejected;
      } else if (r.cancelled) {
        ++cancelled;
      } else {
        ++failed;
      }
      if (r.deadline_exceeded) ++deadline;
      if (r.degraded) ++degraded;
      if (r.cache_hit) ++hits;
      if (r.ok()) latencies.push_back(r.exec_seconds);
    }

    std::printf("sparta_serve: %s\n", workload_path.c_str());
    std::printf(
        "  workers=%d clients=%d threads/request=%d budget=%zu MiB\n",
        svc.workers(), wopts.clients, svc.threads_per_request(),
        cfg.dram_budget_bytes >> 20);
    std::printf(
        "  requests=%zu ok=%zu failed=%zu rejected=%zu cancelled=%zu "
        "(deadline=%zu) degraded=%zu\n",
        res.reports.size(), ok, failed, rejected, cancelled, deadline,
        degraded);
    const sparta::serve::PlanCache::Stats cs = svc.cache_stats();
    std::printf(
        "  cache: hits=%llu misses=%llu evictions=%llu "
        "uncacheable=%llu retained=%zu B\n",
        static_cast<unsigned long long>(cs.hits),
        static_cast<unsigned long long>(cs.misses),
        static_cast<unsigned long long>(cs.evictions),
        static_cast<unsigned long long>(cs.uncacheable),
        cs.retained_bytes);
    std::printf(
        "  latency: p50=%.3f ms p95=%.3f ms max=%.3f ms "
        "wall=%.3f s\n",
        percentile(latencies, 0.5) * 1e3,
        percentile(latencies, 0.95) * 1e3,
        percentile(latencies, 1.0) * 1e3, res.wall_seconds);

    if (!json_path.empty()) {
      sparta::obs::JsonWriter w;
      w.begin_object();
      w.key("schema_version").value(1);
      w.key("tool").value("sparta_serve");
      w.key("workload").value(std::string_view(workload_path));
      w.key("clients").value(wopts.clients);
      w.key("workers").value(svc.workers());
      w.key("threads").value(sparta::max_threads());
      w.key("budget_bytes")
          .value(static_cast<std::uint64_t>(cfg.dram_budget_bytes));
      w.key("wall_seconds").value(res.wall_seconds);
      w.key("requests").begin_array();
      for (const sparta::serve::ServeReport& r : res.reports) {
        w.raw(r.to_json());
      }
      w.end_array();
      w.key("summary").begin_object();
      w.key("total")
          .value(static_cast<std::uint64_t>(res.reports.size()));
      w.key("ok").value(static_cast<std::uint64_t>(ok));
      w.key("failed").value(static_cast<std::uint64_t>(failed));
      w.key("rejected").value(static_cast<std::uint64_t>(rejected));
      w.key("cancelled").value(static_cast<std::uint64_t>(cancelled));
      w.key("deadline_exceeded")
          .value(static_cast<std::uint64_t>(deadline));
      w.key("degraded").value(static_cast<std::uint64_t>(degraded));
      w.key("cache_hits").value(static_cast<std::uint64_t>(hits));
      w.key("latency_seconds").begin_object();
      w.key("p50").value(percentile(latencies, 0.5));
      w.key("p95").value(percentile(latencies, 0.95));
      w.key("max").value(percentile(latencies, 1.0));
      w.end_object();
      w.end_object();
      w.key("counters").raw(svc.counters_json());
      w.key("histograms")
          .raw(sparta::obs::MetricsRegistry::global()
                   .histograms_json());
      w.end_object();
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
        return 1;
      }
      const std::string& doc = w.str();
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fclose(f);
    }
    if (failed != 0) return 1;
    if (deadline != 0) return 3;
    if (rejected != 0 || cancelled != 0) return 4;
    return 0;
  } catch (const sparta::Error& e) {
    std::fprintf(stderr, "sparta_serve: %s\n", e.what());
    return 1;
  }
}
