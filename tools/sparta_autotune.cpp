// sparta_autotune — fit the learned per-variant cost model from the
// serving layer's JSONL stat store (the offline half of the
// observability-to-planning loop; see docs/OBSERVABILITY.md § "Closing
// the loop").
//
//   sparta_autotune FILE... [-o MODEL.json] [--json] [--min-samples N]
//
// Reads every statlog FILE in order (pass rotated segments oldest-first
// for a chronological merge), keeps successful schema-2 requests that
// carry the feature vector, and fits one log-linear cost model per
// algorithm variant (serve/costmodel.hpp — ridge normal equations, no
// external deps). The fit is deterministic: the same store produces a
// byte-identical report and model file, which CI diffs across two runs.
//
// Output is a markdown report (or --json) with per-variant fit
// diagnostics — sample count, R² / RMSE in log space, in-sample
// predicted-vs-measured seconds ratios — and the analytic Eq. 5/6
// predicted-vs-measured byte ratios over the same records, so the
// learned model is always read next to the estimator it replaces.
// -o writes the versioned model file sparta_serve --selector-model
// loads.
//
// Exit codes: 0 ok; 1 malformed record, bad I/O, or nothing fittable;
// 2 usage.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/json_parse.hpp"
#include "obs/statlog.hpp"
#include "serve/costmodel.hpp"

namespace {

using sparta::Algorithm;
using sparta::obs::JsonValue;
using sparta::serve::CostFeatures;
using sparta::serve::CostModel;
using sparta::serve::VariantFit;

struct ParsedRecord {
  CostModel::Sample sample;
  double est_hty_ratio = 0.0;  ///< est/measured HtY bytes; 0 = n/a
  double est_hta_ratio = 0.0;  ///< est/measured HtA bytes; 0 = n/a
};

void usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s FILE... [-o MODEL.json] [--json] [--min-samples N]\n",
      prog);
  std::exit(2);
}

std::optional<Algorithm> variant_of(const std::string& name) {
  for (const Algorithm a : CostModel::kVariants) {
    if (name == sparta::algorithm_name(a)) return a;
  }
  return std::nullopt;
}

// One statlog line -> training sample. Only successful, feature-
// complete schema-2 records train the model; anything else is skipped
// (skips are reported, not errors — a store may mix schema versions
// across a deployment boundary).
bool parse_record(const std::string& line, ParsedRecord& out) {
  const std::optional<JsonValue> doc = sparta::obs::json_parse(line);
  if (!doc || !doc->is_object()) return false;
  const JsonValue* sv = doc->get("schema_version");
  if (sv == nullptr || sv->number_or(0) < 2) return false;
  const JsonValue* fv = doc->get("feature_version");
  if (fv == nullptr ||
      fv->number_or(0) !=
          static_cast<double>(sparta::serve::kCostFeatureVersion)) {
    return false;
  }
  const JsonValue* outcome = doc->get("outcome");
  if (outcome == nullptr || outcome->string_or("") != "ok") return false;
  const JsonValue* variant = doc->get("variant");
  if (variant == nullptr || !variant->is_string()) return false;
  const std::optional<Algorithm> a = variant_of(variant->str_v);
  if (!a) return false;

  const JsonValue* nnz_x = doc->get("nnz_x");
  const JsonValue* nnz_y = doc->get("nnz_y");
  const JsonValue* exec = doc->get("exec_seconds");
  if (nnz_x == nullptr || nnz_y == nullptr || exec == nullptr ||
      exec->number_or(0.0) <= 0.0) {
    return false;
  }
  CostFeatures f;
  f.nnz_x = static_cast<std::size_t>(nnz_x->number_or(0));
  f.nnz_y = static_cast<std::size_t>(nnz_y->number_or(0));
  const JsonValue* dims_y = doc->get("dims_y");
  f.order_y = dims_y != nullptr && dims_y->is_array()
                  ? static_cast<int>(dims_y->arr.size())
                  : 0;
  f.num_contract_modes = static_cast<int>(
      doc->get("num_contract_modes")
          ? doc->get("num_contract_modes")->number_or(0)
          : 0);
  f.density_x =
      doc->get("density_x") ? doc->get("density_x")->number_or(0.0) : 0.0;
  f.density_y =
      doc->get("density_y") ? doc->get("density_y")->number_or(0.0) : 0.0;
  out.sample = {*a, f, exec->number_or(0.0)};

  const auto ratio = [&doc](const char* est_key, const char* meas_key) {
    const JsonValue* est = doc->get(est_key);
    const JsonValue* meas = doc->get(meas_key);
    if (est == nullptr || meas == nullptr) return 0.0;
    const double e = est->number_or(0.0);
    const double m = meas->number_or(0.0);
    return e > 0.0 && m > 0.0 ? e / m : 0.0;
  };
  out.est_hty_ratio = ratio("est_hty_bytes", "hty_bytes");
  out.est_hta_ratio = ratio("est_hta_bytes", "hta_bytes");
  return true;
}

double percentile_sorted(const std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  const auto idx =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct RatioSummary {
  std::uint64_t n = 0;
  double p50 = 0.0;
  double p95 = 0.0;
};

RatioSummary summarize(std::vector<double> ratios) {
  RatioSummary s;
  ratios.erase(std::remove(ratios.begin(), ratios.end(), 0.0),
               ratios.end());
  if (ratios.empty()) return s;
  std::sort(ratios.begin(), ratios.end());
  s.n = ratios.size();
  s.p50 = percentile_sorted(ratios, 0.5);
  s.p95 = percentile_sorted(ratios, 0.95);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string model_out;
  bool as_json = false;
  std::size_t min_samples = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      as_json = true;
    } else if (a == "-o" || a == "--output") {
      if (++i >= argc) usage(argv[0]);
      model_out = argv[i];
    } else if (a == "--min-samples") {
      if (++i >= argc) usage(argv[0]);
      min_samples = static_cast<std::size_t>(std::atoll(argv[i]));
      if (min_samples == 0) usage(argv[0]);
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], a.c_str());
      usage(argv[0]);
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) usage(argv[0]);

  std::vector<ParsedRecord> records;
  std::uint64_t lines_total = 0;
  std::uint64_t skipped = 0;
  for (const std::string& path : paths) {
    const sparta::obs::StatLogFile file =
        sparta::obs::read_statlog_file(path);
    if (file.lines.empty() && !file.torn_tail) {
      std::FILE* probe = std::fopen(path.c_str(), "r");
      if (probe == nullptr) {
        std::fprintf(stderr, "sparta_autotune: cannot read '%s'\n",
                     path.c_str());
        return 1;
      }
      std::fclose(probe);
    }
    if (file.torn_tail) {
      std::fprintf(stderr,
                   "sparta_autotune: %s: ignoring torn trailing line\n",
                   path.c_str());
    }
    for (const std::string& line : file.lines) {
      ++lines_total;
      ParsedRecord r;
      if (parse_record(line, r)) {
        records.push_back(std::move(r));
      } else {
        ++skipped;
      }
    }
  }
  if (records.empty()) {
    std::fprintf(stderr,
                 "sparta_autotune: no trainable records in %llu lines "
                 "(need schema 2, outcome ok, feature_version %d)\n",
                 static_cast<unsigned long long>(lines_total),
                 sparta::serve::kCostFeatureVersion);
    return 1;
  }

  std::vector<CostModel::Sample> samples;
  samples.reserve(records.size());
  for (const ParsedRecord& r : records) samples.push_back(r.sample);
  const CostModel model = CostModel::fit(samples, min_samples);
  if (model.empty()) {
    std::fprintf(stderr,
                 "sparta_autotune: no variant reached %zu samples "
                 "(%zu trainable records)\n",
                 min_samples, samples.size());
    return 1;
  }

  if (!model_out.empty()) {
    std::FILE* f = std::fopen(model_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "sparta_autotune: cannot write '%s'\n",
                   model_out.c_str());
      return 1;
    }
    const std::string doc = model.to_json();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }

  // Per-variant diagnostics: the learned model's in-sample
  // predicted/measured seconds ratios next to the analytic Eq. 5/6
  // predicted/measured byte ratios over the same records.
  struct Diag {
    RatioSummary learned;
    RatioSummary eq5;
    RatioSummary eq6;
    const VariantFit* fit = nullptr;
  };
  std::map<std::string, Diag> diags;
  for (const Algorithm a : CostModel::kVariants) {
    const std::string name{sparta::algorithm_name(a)};
    Diag d;
    d.fit = &model.fit_for(a);
    std::vector<double> learned;
    std::vector<double> eq5;
    std::vector<double> eq6;
    for (const ParsedRecord& r : records) {
      if (r.sample.variant != a) continue;
      if (model.has(a) && r.sample.seconds > 0.0) {
        learned.push_back(
            model.predict_seconds(a, r.sample.features) /
            r.sample.seconds);
      }
      eq5.push_back(r.est_hty_ratio);
      eq6.push_back(r.est_hta_ratio);
    }
    d.learned = summarize(std::move(learned));
    d.eq5 = summarize(std::move(eq5));
    d.eq6 = summarize(std::move(eq6));
    diags.emplace(name, d);
  }

  if (as_json) {
    sparta::obs::JsonWriter w;
    w.begin_object();
    w.key("schema_version").value(1);
    w.key("tool").value("sparta_autotune");
    w.key("lines").value(lines_total);
    w.key("trainable").value(static_cast<std::uint64_t>(records.size()));
    w.key("skipped").value(skipped);
    w.key("model_id").value(std::string_view(model.id()));
    w.key("model").raw(model.to_json());
    const auto write_ratio = [&w](const char* key,
                                  const RatioSummary& s) {
      w.key(key).begin_object();
      w.key("samples").value(s.n);
      w.key("p50").value(s.p50);
      w.key("p95").value(s.p95);
      w.end_object();
    };
    w.key("variants").begin_object();
    for (const auto& [name, d] : diags) {
      w.key(name).begin_object();
      w.key("fitted").value(d.fit->fitted);
      w.key("samples").value(d.fit->samples);
      w.key("r2").value(d.fit->r2);
      w.key("rmse_log").value(d.fit->rmse_log);
      write_ratio("learned_pred_over_measured", d.learned);
      write_ratio("eq5_pred_over_measured", d.eq5);
      write_ratio("eq6_pred_over_measured", d.eq6);
      w.end_object();
    }
    w.end_object();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }

  std::printf("# sparta_autotune\n\n");
  std::printf("lines read: %llu (trainable %zu, skipped %llu)\n",
              static_cast<unsigned long long>(lines_total),
              records.size(),
              static_cast<unsigned long long>(skipped));
  std::printf("model id: %s\n", model.id().c_str());
  if (!model_out.empty()) {
    std::printf("model written: %s\n", model_out.c_str());
  }
  std::printf(
      "\n## Fits (log-space)\n\n"
      "| variant | samples | fitted | R2 | rmse(log s) |\n"
      "|---|---|---|---|---|\n");
  for (const auto& [name, d] : diags) {
    std::printf("| %s | %llu | %s | %.4f | %.4f |\n", name.c_str(),
                static_cast<unsigned long long>(d.fit->samples),
                d.fit->fitted ? "yes" : "no", d.fit->r2,
                d.fit->rmse_log);
  }
  std::printf(
      "\n## Predicted / measured\n\n"
      "Learned model predicts seconds; Eq. 5/6 predict bytes. Each cell"
      " is the p50 (p95) of predicted over measured, 1.0 = perfect.\n\n"
      "| variant | learned s | Eq. 5 HtY bytes | Eq. 6 HtA bytes |\n"
      "|---|---|---|---|\n");
  const auto cell = [](const RatioSummary& s) {
    char buf[64];
    if (s.n == 0) {
      std::snprintf(buf, sizeof(buf), "n/a");
    } else {
      std::snprintf(buf, sizeof(buf), "%.3f (%.3f)", s.p50, s.p95);
    }
    return std::string(buf);
  };
  for (const auto& [name, d] : diags) {
    std::printf("| %s | %s | %s | %s |\n", name.c_str(),
                cell(d.learned).c_str(), cell(d.eq5).c_str(),
                cell(d.eq6).c_str());
  }
  return 0;
}
