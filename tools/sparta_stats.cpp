// sparta_stats — aggregate the per-request JSONL stat store written by
// the contraction service (ServeConfig::statlog_path / sparta_serve
// --statlog) into per-variant latency percentiles, cache hit rates,
// outcome counts, and per-key regret against the best observed variant.
//
//   sparta_stats FILE... [--json] [--estimator-error]
//
// Reads every FILE in order (pass rotated segments oldest-first for a
// chronological merge; aggregation is order-insensitive anyway). Output
// is deterministic: variants, outcomes, and keys are emitted sorted.
//
// --estimator-error adds a per-variant section with percentiles of the
// predicted-over-measured cost ratios schema-2 records carry: Eq. 5
// (HtY bytes), Eq. 6 (HtA bytes), and the learned model's seconds
// prediction when one was serving — model drift is visible without
// running the autotuner.
//
// Regret: requests are grouped by contraction key (x|y|cx|cy); within a
// group each variant's median exec time is computed, and a variant's
// regret is its median minus the best median in the group — "how much
// slower than the best decision we have evidence for". The summary
// reports the mean regret per variant across keys where it appeared.
//
// Exit codes: 0 ok; 1 malformed record or bad I/O; 2 usage.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/json_parse.hpp"

namespace {

using sparta::obs::JsonValue;

struct Record {
  std::uint64_t request_id = 0;
  std::string key;      // x|y|cx|cy
  std::string variant;
  std::string outcome;
  bool cache_hit = false;
  double exec_seconds = 0.0;
  double queue_seconds = 0.0;
  // Predicted-over-measured ratios (0 = not available on this record):
  // Eq. 5 HtY bytes, Eq. 6 HtA bytes, learned-model seconds.
  double eq5_ratio = 0.0;
  double eq6_ratio = 0.0;
  double pred_ratio = 0.0;
};

struct VariantAgg {
  std::vector<double> exec;
  std::uint64_t count = 0;
  std::uint64_t hits = 0;
  double regret_sum = 0.0;
  std::uint64_t regret_keys = 0;
  std::vector<double> eq5;
  std::vector<double> eq6;
  std::vector<double> pred;
};

void usage(const char* prog) {
  std::fprintf(stderr, "usage: %s FILE... [--json] [--estimator-error]\n",
               prog);
  std::exit(2);
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx =
      static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

double median(std::vector<double> v) { return percentile(v, 0.5); }

std::string modes_string(const JsonValue* modes) {
  std::string s;
  if (modes == nullptr || !modes->is_array()) return s;
  for (const JsonValue& m : modes->arr) {
    if (!s.empty()) s += ",";
    s += std::to_string(static_cast<long long>(m.number_or(-1)));
  }
  return s;
}

// One statlog line -> Record; false (with a stderr note) on anything
// that is not a well-formed schema-1/2 record. Strictness is the point:
// CI runs this on fresh logs, and a malformed line means the writer —
// not the operator — broke.
bool parse_record(const std::string& line, std::size_t lineno,
                  const char* path, Record& out) {
  const std::optional<JsonValue> doc = sparta::obs::json_parse(line);
  const auto fail = [&](const char* why) {
    std::fprintf(stderr, "sparta_stats: %s:%zu: %s\n", path, lineno, why);
    return false;
  };
  if (!doc || !doc->is_object()) return fail("not a JSON object");
  const JsonValue* sv = doc->get("schema_version");
  const double schema = sv == nullptr ? 0 : sv->number_or(0);
  if (schema != 1 && schema != 2) {
    return fail("missing or unsupported schema_version");
  }
  const JsonValue* rid = doc->get("request_id");
  if (rid == nullptr || !rid->is_number() || rid->num_v < 1) {
    return fail("missing request_id");
  }
  out.request_id = static_cast<std::uint64_t>(rid->num_v);
  const JsonValue* x = doc->get("x");
  const JsonValue* y = doc->get("y");
  const JsonValue* variant = doc->get("variant");
  const JsonValue* outcome = doc->get("outcome");
  if (x == nullptr || y == nullptr || !x->is_string() || !y->is_string()) {
    return fail("missing operands");
  }
  if (variant == nullptr || !variant->is_string()) {
    return fail("missing variant");
  }
  if (outcome == nullptr || !outcome->is_string()) {
    return fail("missing outcome");
  }
  out.key = x->str_v + "|" + y->str_v + "|" +
            modes_string(doc->get("cx")) + "|" +
            modes_string(doc->get("cy"));
  out.variant = variant->str_v;
  out.outcome = outcome->str_v;
  out.cache_hit = doc->get("cache_hit") != nullptr &&
                  doc->get("cache_hit")->bool_or(false);
  const JsonValue* exec = doc->get("exec_seconds");
  const JsonValue* queue = doc->get("queue_seconds");
  if (exec == nullptr || queue == nullptr) return fail("missing timings");
  out.exec_seconds = exec->number_or(0.0);
  out.queue_seconds = queue->number_or(0.0);
  const auto ratio = [&doc](const char* est_key, const char* meas_key) {
    const JsonValue* est = doc->get(est_key);
    const JsonValue* meas = doc->get(meas_key);
    if (est == nullptr || meas == nullptr) return 0.0;
    const double e = est->number_or(0.0);
    const double m = meas->number_or(0.0);
    return e > 0.0 && m > 0.0 ? e / m : 0.0;
  };
  out.eq5_ratio = ratio("est_hty_bytes", "hty_bytes");
  out.eq6_ratio = ratio("est_hta_bytes", "hta_bytes");
  out.pred_ratio = ratio("pred_seconds", "exec_seconds");
  return true;
}

// Ratio vector -> deterministic percentile row; zeros (ratio not
// available on that record) are dropped first.
struct RatioRow {
  std::uint64_t n = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

RatioRow ratio_row(std::vector<double> v) {
  RatioRow row;
  v.erase(std::remove(v.begin(), v.end(), 0.0), v.end());
  if (v.empty()) return row;
  std::sort(v.begin(), v.end());
  row.n = v.size();
  const auto at = [&v](double p) {
    return v[static_cast<std::size_t>(p *
                                      static_cast<double>(v.size() - 1))];
  };
  row.p50 = at(0.5);
  row.p95 = at(0.95);
  row.max = v.back();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool as_json = false;
  bool estimator_error = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      as_json = true;
    } else if (a == "--estimator-error") {
      estimator_error = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], a.c_str());
      usage(argv[0]);
    } else {
      paths.push_back(a);
    }
  }
  if (paths.empty()) usage(argv[0]);

  std::vector<Record> records;
  for (const std::string& path : paths) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
      std::fprintf(stderr, "sparta_stats: cannot read '%s'\n",
                   path.c_str());
      return 1;
    }
    std::string line;
    std::size_t lineno = 0;
    int c;
    while ((c = std::fgetc(f)) != EOF) {
      if (c != '\n') {
        line += static_cast<char>(c);
        continue;
      }
      ++lineno;
      if (!line.empty()) {
        Record r;
        if (!parse_record(line, lineno, path.c_str(), r)) {
          std::fclose(f);
          return 1;
        }
        records.push_back(std::move(r));
      }
      line.clear();
    }
    std::fclose(f);
    if (!line.empty()) {
      // A torn trailing line (no newline) means the writer died
      // mid-append; everything before it is still good data, but CI
      // should know.
      std::fprintf(stderr,
                   "sparta_stats: %s: ignoring torn trailing line\n",
                   path.c_str());
    }
  }

  // Per-variant aggregates over requests that actually executed
  // (ok/degraded); outcome counts cover everything.
  std::map<std::string, VariantAgg> variants;
  std::map<std::string, std::uint64_t> outcomes;
  // key -> variant -> exec samples, for the regret computation.
  std::map<std::string, std::map<std::string, std::vector<double>>> by_key;
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  for (const Record& r : records) {
    ++outcomes[r.outcome];
    if (r.outcome != "ok" && r.outcome != "degraded") continue;
    VariantAgg& agg = variants[r.variant];
    ++agg.count;
    agg.exec.push_back(r.exec_seconds);
    agg.eq5.push_back(r.eq5_ratio);
    agg.eq6.push_back(r.eq6_ratio);
    agg.pred.push_back(r.pred_ratio);
    ++cache_lookups;
    if (r.cache_hit) {
      ++agg.hits;
      ++cache_hits;
    }
    by_key[r.key][r.variant].push_back(r.exec_seconds);
  }

  // Regret: within each key, each variant's median vs the best median.
  for (const auto& [key, per_variant] : by_key) {
    double best = 0.0;
    bool first = true;
    std::map<std::string, double> medians;
    for (const auto& [variant, samples] : per_variant) {
      const double m = median(samples);
      medians[variant] = m;
      if (first || m < best) best = m;
      first = false;
    }
    for (const auto& [variant, m] : medians) {
      VariantAgg& agg = variants[variant];
      agg.regret_sum += m - best;
      ++agg.regret_keys;
    }
  }

  if (as_json) {
    sparta::obs::JsonWriter w;
    w.begin_object();
    w.key("schema_version").value(1);
    w.key("tool").value("sparta_stats");
    w.key("requests").value(static_cast<std::uint64_t>(records.size()));
    w.key("cache_hit_rate")
        .value(cache_lookups == 0 ? 0.0
                                  : static_cast<double>(cache_hits) /
                                        static_cast<double>(cache_lookups));
    w.key("outcomes").begin_object();
    for (const auto& [name, n] : outcomes) w.key(name).value(n);
    w.end_object();
    w.key("variants").begin_object();
    for (auto& [name, agg] : variants) {
      w.key(name).begin_object();
      w.key("count").value(agg.count);
      w.key("cache_hits").value(agg.hits);
      w.key("exec_seconds").begin_object();
      w.key("p50").value(percentile(agg.exec, 0.5));
      w.key("p95").value(percentile(agg.exec, 0.95));
      w.key("max").value(percentile(agg.exec, 1.0));
      w.end_object();
      w.key("mean_regret_seconds")
          .value(agg.regret_keys == 0
                     ? 0.0
                     : agg.regret_sum /
                           static_cast<double>(agg.regret_keys));
      if (estimator_error) {
        const auto write_row = [&w](const char* key, RatioRow row) {
          w.key(key).begin_object();
          w.key("samples").value(row.n);
          w.key("p50").value(row.p50);
          w.key("p95").value(row.p95);
          w.key("max").value(row.max);
          w.end_object();
        };
        w.key("estimator_error").begin_object();
        write_row("eq5_pred_over_measured", ratio_row(agg.eq5));
        write_row("eq6_pred_over_measured", ratio_row(agg.eq6));
        write_row("model_pred_over_measured", ratio_row(agg.pred));
        w.end_object();
      }
      w.end_object();
    }
    w.end_object();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }

  std::printf("# sparta_stats\n\n");
  std::printf("requests: %zu\n", records.size());
  std::printf("cache hit rate: %.1f%% (%llu/%llu)\n\n",
              cache_lookups == 0 ? 0.0
                                 : 100.0 * static_cast<double>(cache_hits) /
                                       static_cast<double>(cache_lookups),
              static_cast<unsigned long long>(cache_hits),
              static_cast<unsigned long long>(cache_lookups));
  std::printf("## Outcomes\n\n| outcome | count |\n|---|---|\n");
  for (const auto& [name, n] : outcomes) {
    std::printf("| %s | %llu |\n", name.c_str(),
                static_cast<unsigned long long>(n));
  }
  std::printf(
      "\n## Variants\n\n"
      "| variant | count | p50 ms | p95 ms | max ms | hit rate | "
      "mean regret ms |\n|---|---|---|---|---|---|---|\n");
  for (auto& [name, agg] : variants) {
    std::printf(
        "| %s | %llu | %.3f | %.3f | %.3f | %.1f%% | %.3f |\n",
        name.c_str(), static_cast<unsigned long long>(agg.count),
        percentile(agg.exec, 0.5) * 1e3, percentile(agg.exec, 0.95) * 1e3,
        percentile(agg.exec, 1.0) * 1e3,
        agg.count == 0 ? 0.0
                       : 100.0 * static_cast<double>(agg.hits) /
                             static_cast<double>(agg.count),
        (agg.regret_keys == 0 ? 0.0
                              : agg.regret_sum /
                                    static_cast<double>(agg.regret_keys)) *
            1e3);
  }
  if (estimator_error) {
    std::printf(
        "\n## Estimator error (predicted / measured, 1.0 = perfect)\n\n"
        "| variant | source | samples | p50 | p95 | max |\n"
        "|---|---|---|---|---|---|\n");
    for (auto& [name, agg] : variants) {
      const auto print_row = [&name](const char* src, RatioRow row) {
        if (row.n == 0) {
          std::printf("| %s | %s | 0 | n/a | n/a | n/a |\n",
                      name.c_str(), src);
          return;
        }
        std::printf("| %s | %s | %llu | %.3f | %.3f | %.3f |\n",
                    name.c_str(), src,
                    static_cast<unsigned long long>(row.n), row.p50,
                    row.p95, row.max);
      };
      print_row("Eq.5 HtY bytes", ratio_row(agg.eq5));
      print_row("Eq.6 HtA bytes", ratio_row(agg.eq6));
      print_row("model seconds", ratio_row(agg.pred));
    }
  }
  return 0;
}
