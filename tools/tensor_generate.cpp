// tensor_generate — emit synthetic sparse tensors: either a named
// Table-3 analog or a custom random tensor.
//
//   tensor_generate --dataset chicago --scale 1.0 --out chicago.tns
//   tensor_generate --dims 100x200x50 --nnz 5000 --seed 7 --out t.sptn
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "tensor/datasets.hpp"
#include "tensor/generators.hpp"
#include "tensor/io.hpp"
#include "tensor/io_binary.hpp"

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::vector<sparta::index_t> parse_dims(const char* s) {
  std::vector<sparta::index_t> dims;
  for (const char* p = s; *p;) {
    dims.push_back(static_cast<sparta::index_t>(std::atoll(p)));
    const char* x = std::strchr(p, 'x');
    if (!x) break;
    p = x + 1;
  }
  return dims;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sparta;
  std::string dataset, out;
  GeneratorSpec spec;
  double scale = 1.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--dims") {
      spec.dims = parse_dims(next());
    } else if (arg == "--nnz") {
      spec.nnz = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--seed") {
      spec.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--out") {
      out = next();
    } else {
      std::fprintf(stderr,
                   "usage: tensor_generate (--dataset NAME --scale S | "
                   "--dims AxBxC --nnz N [--seed K]) --out FILE\n"
                   "datasets:");
      for (const auto& d : table3_datasets()) {
        std::fprintf(stderr, " %s", d.name.c_str());
      }
      std::fprintf(stderr, "\n");
      return arg == "--help" || arg == "-h" ? 0 : 1;
    }
  }
  if (out.empty() || (dataset.empty() && (spec.dims.empty() || !spec.nnz))) {
    std::fprintf(stderr, "need --out and either --dataset or --dims/--nnz "
                         "(see --help)\n");
    return 1;
  }

  try {
    if (!dataset.empty()) {
      spec = dataset_by_name(dataset).spec;
      spec.nnz = static_cast<std::size_t>(
          static_cast<double>(spec.nnz) * scale);
    }
    const SparseTensor t = generate_random(spec);
    if (ends_with(out, ".sptn")) {
      write_sptn_file(out, t);
    } else {
      write_tns_file(out, t);
    }
    std::printf("wrote %s: %s\n", out.c_str(), t.summary().c_str());
  } catch (const sparta::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
