// sparta_perfdiff — perf-regression gate over bench --json reports.
//
//   sparta_perfdiff [options] <baseline> <run>
//
// <baseline> and <run> are either two report files or two directories;
// directories are paired by filename (the BENCH_<name>.json convention),
// so `sparta_perfdiff bench/baselines perf-artifacts` gates a whole
// suite in one call. Prints a markdown table per pair (CI pastes it into
// the job summary) and exits:
//   0  comparable, within threshold
//   1  regression (timing over threshold, counter drift, missing case)
//   2  usage error / unreadable / unparsable input
//   3  reports not comparable (scale/threads/build-type mismatch)
// Verdict logic lives in src/obs/perfdiff.hpp, shared with the bench
// harness's --baseline flag and the tests.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/perfdiff.hpp"

namespace {

namespace fs = std::filesystem;
using namespace sparta::obs;

void usage() {
  std::fprintf(
      stderr,
      "usage: sparta_perfdiff [options] <baseline> <run>\n"
      "  <baseline>, <run>   two bench --json reports, or two\n"
      "                      directories paired by filename\n"
      "  --threshold T       gating slowdown, '30%%' or '0.3'\n"
      "                      (default 10%%); negative demands a speedup:\n"
      "                      '-17%%' fails unless run <= 0.83x baseline\n"
      "  --min-seconds S     baseline medians below S never gate\n"
      "                      (default 0.001)\n"
      "  --no-counters       skip the deterministic-counter comparison\n"
      "  --json <path>       also write the JSON verdict ('-' = stdout)\n"
      "exit codes: 0 ok, 1 regression, 2 usage error, 3 config mismatch\n");
}

std::optional<std::string> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

/// Loads + parses one report; exits 2 on failure (a gate that cannot
/// read its inputs must not pass).
JsonValue load_report(const fs::path& p) {
  const std::optional<std::string> text = read_file(p);
  if (!text) {
    std::fprintf(stderr, "sparta_perfdiff: cannot read '%s'\n",
                 p.string().c_str());
    std::exit(perfdiff::kUsageError);
  }
  std::optional<JsonValue> doc = json_parse(*text);
  if (!doc || !doc->is_object()) {
    std::fprintf(stderr,
                 "sparta_perfdiff: '%s' is not a valid JSON report\n",
                 p.string().c_str());
    std::exit(perfdiff::kUsageError);
  }
  return std::move(*doc);
}

std::vector<fs::path> report_files(const fs::path& dir) {
  std::vector<fs::path> out;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (e.is_regular_file() && e.path().extension() == ".json") {
      out.push_back(e.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  perfdiff::Options opts;
  std::string json_out;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threshold" && i + 1 < argc) {
      const std::optional<double> t = perfdiff::parse_threshold(argv[++i]);
      if (!t) {
        std::fprintf(stderr, "sparta_perfdiff: bad --threshold '%s'\n",
                     argv[i]);
        return perfdiff::kUsageError;
      }
      opts.threshold = *t;
    } else if (a == "--min-seconds" && i + 1 < argc) {
      opts.min_seconds = std::atof(argv[++i]);
      if (opts.min_seconds < 0.0) {
        std::fprintf(stderr, "sparta_perfdiff: bad --min-seconds\n");
        return perfdiff::kUsageError;
      }
    } else if (a == "--no-counters") {
      opts.compare_counters = false;
    } else if (a == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (a == "--help" || a == "-h") {
      usage();
      return perfdiff::kOk;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "sparta_perfdiff: unknown flag '%s'\n",
                   a.c_str());
      usage();
      return perfdiff::kUsageError;
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() != 2) {
    usage();
    return perfdiff::kUsageError;
  }

  const fs::path base_path = positional[0];
  const fs::path run_path = positional[1];
  std::error_code ec;
  const bool base_dir = fs::is_directory(base_path, ec);
  const bool run_dir = fs::is_directory(run_path, ec);
  if (base_dir != run_dir) {
    std::fprintf(stderr,
                 "sparta_perfdiff: '%s' and '%s' must both be files or "
                 "both be directories\n",
                 base_path.string().c_str(), run_path.string().c_str());
    return perfdiff::kUsageError;
  }

  // (baseline file, run file) pairs to compare.
  std::vector<std::pair<fs::path, fs::path>> jobs;
  if (!base_dir) {
    jobs.emplace_back(base_path, run_path);
  } else {
    const std::vector<fs::path> bases = report_files(base_path);
    if (bases.empty()) {
      std::fprintf(stderr,
                   "sparta_perfdiff: no .json reports under '%s'\n",
                   base_path.string().c_str());
      return perfdiff::kUsageError;
    }
    for (const fs::path& b : bases) {
      const fs::path r = run_path / b.filename();
      if (!fs::is_regular_file(r, ec)) {
        // A baseline with no matching run means the run suite shrank —
        // that is a gate failure, not a skip.
        std::fprintf(stderr,
                     "sparta_perfdiff: run report '%s' missing for "
                     "baseline '%s'\n",
                     r.string().c_str(), b.string().c_str());
        return perfdiff::kRegression;
      }
      jobs.emplace_back(b, r);
    }
    for (const fs::path& r : report_files(run_path)) {
      if (!fs::is_regular_file(base_path / r.filename(), ec)) {
        std::printf("note: run report '%s' has no baseline (not gated)\n",
                    r.filename().string().c_str());
      }
    }
  }

  std::vector<perfdiff::PairResult> pairs;
  pairs.reserve(jobs.size());
  for (const auto& [b, r] : jobs) {
    const JsonValue base = load_report(b);
    const JsonValue run = load_report(r);
    pairs.push_back(perfdiff::diff_reports(base, run, opts));
  }

  for (const perfdiff::PairResult& p : pairs) {
    std::fputs(perfdiff::to_markdown(p, opts).c_str(), stdout);
    std::fputs("\n", stdout);
  }

  if (!json_out.empty()) {
    const std::string doc = perfdiff::to_json(pairs, opts);
    if (json_out == "-") {
      std::printf("%s\n", doc.c_str());
    } else {
      std::FILE* f = std::fopen(json_out.c_str(), "w");
      if (!f) {
        std::fprintf(stderr, "sparta_perfdiff: cannot write '%s'\n",
                     json_out.c_str());
        return perfdiff::kUsageError;
      }
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    }
  }

  const perfdiff::ExitCode code = perfdiff::overall_exit(pairs);
  if (code == perfdiff::kOk) {
    std::printf("sparta_perfdiff: OK (%zu pair%s within %.0f%%)\n",
                pairs.size(), pairs.size() == 1 ? "" : "s",
                opts.threshold * 100.0);
  } else if (code == perfdiff::kRegression) {
    std::printf("sparta_perfdiff: REGRESSION detected\n");
  } else if (code == perfdiff::kConfigMismatch) {
    std::printf("sparta_perfdiff: reports not comparable\n");
  }
  return code;
}
