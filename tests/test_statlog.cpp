// Statlog rotation edge cases and the read-back helpers that
// tools/sparta_autotune and tools/sparta_stats depend on: records
// landing exactly on the size boundary, many threads appending through
// a rotation, a crash-torn final line, and oldest-first store reads.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/statlog.hpp"

namespace sparta::obs {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void remove_chain(const std::string& path, int max_files = 8) {
  std::remove(path.c_str());
  for (int k = 1; k < max_files; ++k) {
    std::remove((path + "." + std::to_string(k)).c_str());
  }
}

// A record whose size+newline lands the live file exactly at max_bytes
// must NOT rotate (the contract is "would push PAST max_bytes"); the
// next append then rotates first.
TEST(StatLogRotation, ExactBoundaryDoesNotRotateEarly) {
  const std::string path = tmp_path("statlog_boundary.jsonl");
  remove_chain(path);
  const std::string rec = "{\"request_id\":1}";  // 16 bytes + '\n' = 17
  StatLog log;
  StatLogConfig cfg;
  cfg.path = path;
  cfg.max_bytes = 2 * (rec.size() + 1);  // exactly two records
  cfg.max_files = 3;
  ASSERT_TRUE(log.open(cfg));
  log.append(rec);
  log.append(rec);  // fills the live file to exactly max_bytes
  {
    StatLogFile live = read_statlog_file(path);
    EXPECT_EQ(live.lines.size(), 2u);
    EXPECT_FALSE(
        std::ifstream(path + ".1").good());  // no rotation happened yet
  }
  log.append(rec);  // overflows: rotate, then write into a fresh live
  log.close();
  StatLogFile live = read_statlog_file(path);
  StatLogFile rotated = read_statlog_file(path + ".1");
  EXPECT_EQ(live.lines.size(), 1u);
  EXPECT_EQ(rotated.lines.size(), 2u);
  remove_chain(path);
}

// One oversized record (bigger than max_bytes on its own) still gets
// written whole — rotation caps segment size only between records.
TEST(StatLogRotation, OversizedRecordWrittenWhole) {
  const std::string path = tmp_path("statlog_oversized.jsonl");
  remove_chain(path);
  StatLog log;
  StatLogConfig cfg;
  cfg.path = path;
  cfg.max_bytes = 8;
  cfg.max_files = 2;
  ASSERT_TRUE(log.open(cfg));
  const std::string big =
      "{\"payload\":\"" + std::string(64, 'x') + "\"}";
  log.append(big);
  log.append(big);  // forces a rotation between the two
  log.close();
  StatLogFile live = read_statlog_file(path);
  ASSERT_EQ(live.lines.size(), 1u);
  EXPECT_EQ(live.lines[0], big);
  StatLogFile rotated = read_statlog_file(path + ".1");
  ASSERT_EQ(rotated.lines.size(), 1u);
  EXPECT_EQ(rotated.lines[0], big);
  remove_chain(path);
}

// Many threads appending through rotations: every surviving line must
// be one intact record (never interleaved or torn), and the newest
// records must survive — rotation may only drop the oldest segment.
TEST(StatLogRotation, ConcurrentAppendersNeverTearRecords) {
  const std::string path = tmp_path("statlog_concurrent.jsonl");
  remove_chain(path);
  StatLog log;
  StatLogConfig cfg;
  cfg.path = path;
  cfg.max_bytes = 512;  // rotate often under the concurrent load
  cfg.max_files = 4;
  ASSERT_TRUE(log.open(cfg));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.append("{\"thread\":" + std::to_string(t) +
                   ",\"seq\":" + std::to_string(i) + "}");
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(log.lines_written(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  log.close();
  StatLogFile store = read_statlog_store(path, cfg.max_files);
  EXPECT_FALSE(store.torn_tail);
  EXPECT_GT(store.lines.size(), 0u);
  EXPECT_LE(store.lines.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  std::set<std::string> seen;
  for (const std::string& line : store.lines) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"thread\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"seq\":"), std::string::npos) << line;
    EXPECT_TRUE(seen.insert(line).second) << "duplicate: " << line;
  }
  remove_chain(path);
}

// A crash mid-append leaves a final line without '\n'; the reader must
// drop the fragment, keep every complete record, and flag the tear.
TEST(StatLogReadback, TornTailDroppedAndFlagged) {
  const std::string path = tmp_path("statlog_torn.jsonl");
  remove_chain(path);
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"request_id\":1}\n";
    out << "{\"request_id\":2}\n";
    out << "{\"request_id\":3,\"exec_";  // torn: no closing brace/newline
  }
  StatLogFile f = read_statlog_file(path);
  EXPECT_TRUE(f.torn_tail);
  ASSERT_EQ(f.lines.size(), 2u);
  EXPECT_EQ(f.lines[0], "{\"request_id\":1}");
  EXPECT_EQ(f.lines[1], "{\"request_id\":2}");
  remove_chain(path);
}

TEST(StatLogReadback, CleanFileHasNoTornTail) {
  const std::string path = tmp_path("statlog_clean.jsonl");
  remove_chain(path);
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"request_id\":1}\n";
  }
  StatLogFile f = read_statlog_file(path);
  EXPECT_FALSE(f.torn_tail);
  EXPECT_EQ(f.lines.size(), 1u);
  remove_chain(path);
}

TEST(StatLogReadback, MissingFileReadsEmpty) {
  StatLogFile f = read_statlog_file(tmp_path("statlog_nonexistent.jsonl"));
  EXPECT_FALSE(f.torn_tail);
  EXPECT_TRUE(f.lines.empty());
}

// read_statlog_store returns oldest-first: path.(k-1) down to path.1,
// then the live file — the order offline fitting replays history in.
TEST(StatLogReadback, StoreReadsOldestFirstAndSkipsGaps) {
  const std::string path = tmp_path("statlog_store.jsonl");
  remove_chain(path);
  {
    std::ofstream live(path, std::ios::binary);
    live << "{\"seq\":5}\n{\"seq\":6}\n";
    std::ofstream r1(path + ".1", std::ios::binary);
    r1 << "{\"seq\":3}\n{\"seq\":4}\n";
    // No path.2 — a gap in the chain must be skipped, not fatal.
    std::ofstream r3(path + ".3", std::ios::binary);
    r3 << "{\"seq\":1}\n{\"seq\":2}\n";
  }
  StatLogFile store = read_statlog_store(path, 8);
  ASSERT_EQ(store.lines.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(store.lines[static_cast<std::size_t>(i)],
              "{\"seq\":" + std::to_string(i + 1) + "}");
  }
  EXPECT_FALSE(store.torn_tail);
  std::remove((path + ".3").c_str());
  remove_chain(path);
}

// A rotated store produced by the writer itself reads back newest-last.
TEST(StatLogReadback, WriterProducedStoreReadsInAppendOrder) {
  const std::string path = tmp_path("statlog_ordered.jsonl");
  remove_chain(path);
  StatLog log;
  StatLogConfig cfg;
  cfg.path = path;
  cfg.max_bytes = 48;
  cfg.max_files = 4;
  ASSERT_TRUE(log.open(cfg));
  constexpr int kN = 12;
  for (int i = 0; i < kN; ++i) {
    log.append("{\"seq\":" + std::to_string(i) + "}");
  }
  log.close();
  StatLogFile store = read_statlog_store(path, cfg.max_files);
  ASSERT_GT(store.lines.size(), 0u);
  // Sequence numbers must be strictly increasing across the whole
  // store, and the final record must be the newest append.
  int prev = -1;
  for (const std::string& line : store.lines) {
    const std::size_t colon = line.find(':');
    ASSERT_NE(colon, std::string::npos);
    const int seq = std::stoi(line.substr(colon + 1));
    EXPECT_GT(seq, prev) << "out of order: " << line;
    prev = seq;
  }
  EXPECT_EQ(prev, kN - 1);
  remove_chain(path);
}

}  // namespace
}  // namespace sparta::obs
