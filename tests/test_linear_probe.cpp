// Tests for the open-addressing LinearProbeAccumulator and its use as
// Sparta's HtA.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "contraction/contract.hpp"
#include "hashtable/linear_probe.hpp"
#include "tensor/generators.hpp"

namespace sparta {
namespace {

TEST(LinearProbe, AccumulatesByKey) {
  LinearProbeAccumulator a(8);
  a.accumulate(5, 1.5);
  a.accumulate(5, 2.5);
  a.accumulate(9, 1.0);
  EXPECT_EQ(a.size(), 2u);
  std::map<lnkey_t, value_t> out;
  a.drain([&](lnkey_t k, value_t v) { out[k] = v; });
  EXPECT_DOUBLE_EQ(out[5], 4.0);
  EXPECT_DOUBLE_EQ(out[9], 1.0);
}

TEST(LinearProbe, GrowsPastInitialCapacity) {
  LinearProbeAccumulator a(4);  // tiny: must grow many times
  for (lnkey_t k = 0; k < 10'000; ++k) a.accumulate(k, 1.0);
  EXPECT_EQ(a.size(), 10'000u);
  std::size_t visited = 0;
  a.drain([&](lnkey_t, value_t v) {
    EXPECT_DOUBLE_EQ(v, 1.0);
    ++visited;
  });
  EXPECT_EQ(visited, 10'000u);
}

TEST(LinearProbe, MatchesMapOracleOnRandomStream) {
  Rng rng(5);
  LinearProbeAccumulator a(64);
  std::map<lnkey_t, value_t> oracle;
  for (int i = 0; i < 50'000; ++i) {
    const lnkey_t k = rng.uniform(3000);
    const value_t v = rng.uniform_double(-1.0, 1.0);
    a.accumulate(k, v);
    oracle[k] += v;
  }
  EXPECT_EQ(a.size(), oracle.size());
  a.drain([&](lnkey_t k, value_t v) {
    ASSERT_TRUE(oracle.count(k));
    EXPECT_NEAR(v, oracle[k], 1e-9);
  });
}

TEST(LinearProbe, ClearRetainsCapacity) {
  LinearProbeAccumulator a(16);
  for (lnkey_t k = 0; k < 100; ++k) a.accumulate(k, 1.0);
  const std::size_t cap = a.num_buckets();
  a.clear();
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.num_buckets(), cap);
  a.accumulate(7, 2.0);
  EXPECT_EQ(a.size(), 1u);
}

TEST(LinearProbe, KeyZeroIsUsable) {
  // LN key 0 is a legal, common key (all-zero free indices).
  LinearProbeAccumulator a(8);
  a.accumulate(0, 1.0);
  a.accumulate(0, 2.0);
  EXPECT_EQ(a.size(), 1u);
  a.drain([&](lnkey_t k, value_t v) {
    EXPECT_EQ(k, 0u);
    EXPECT_DOUBLE_EQ(v, 3.0);
  });
}

TEST(LinearProbe, SpartaResultsIdenticalToChainedHta) {
  PairedSpec ps;
  ps.x.dims = {30, 25, 20};
  ps.x.nnz = 2000;
  ps.y.dims = {30, 25, 18};
  ps.y.nnz = 1800;
  ps.num_contract_modes = 1;
  ps.match_fraction = 0.8;
  const TensorPair pair = generate_contraction_pair(ps);

  ContractOptions chained;
  ContractOptions probed;
  probed.use_linear_probe_hta = true;
  const SparseTensor a = contract_tensor(pair.x, pair.y, {0}, {0}, chained);
  const SparseTensor b = contract_tensor(pair.x, pair.y, {0}, {0}, probed);
  EXPECT_TRUE(SparseTensor::approx_equal(a, b, 1e-9));
}

TEST(LinearProbe, SpartaMultithreadedProbeVariant) {
  PairedSpec ps;
  ps.x.dims = {40, 30};
  ps.x.nnz = 800;
  ps.y.dims = {40, 25};
  ps.y.nnz = 700;
  ps.num_contract_modes = 1;
  const TensorPair pair = generate_contraction_pair(ps);
  ContractOptions o;
  o.use_linear_probe_hta = true;
  o.num_threads = 4;
  ContractOptions ref;
  const SparseTensor a = contract_tensor(pair.x, pair.y, {0}, {0}, o);
  const SparseTensor b = contract_tensor(pair.x, pair.y, {0}, {0}, ref);
  EXPECT_TRUE(SparseTensor::approx_equal(a, b, 1e-9));
}

}  // namespace
}  // namespace sparta
