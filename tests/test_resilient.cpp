// Tests for the graceful-degradation ladder (contraction/resilient.hpp):
// rung order, report contents, chunked fallback correctness, and the
// guarantee that failures surface as sparta::Error — never bad_alloc or
// std::terminate.
#include <gtest/gtest.h>

#include <new>

#include "common/failpoint.hpp"
#include "contraction/contract.hpp"
#include "contraction/reference.hpp"
#include "contraction/resilient.hpp"
#include "tensor/generators.hpp"

namespace sparta {
namespace {

struct ResilientTest : ::testing::Test {
  void TearDown() override { failpoint::disarm_all(); }
};

TensorPair make_pair(std::uint64_t seed, std::size_t nnz = 400) {
  PairedSpec ps;
  ps.x.dims = {14, 12, 10};
  ps.x.nnz = nnz;
  ps.x.seed = seed;
  ps.y.dims = {14, 12, 11};
  ps.y.nnz = nnz;
  ps.y.seed = seed + 1;
  ps.num_contract_modes = 2;
  ps.match_fraction = 0.7;
  return generate_contraction_pair(ps);
}

TEST_F(ResilientTest, CleanRunServesRequestedAlgorithmUndegraded) {
  const TensorPair p = make_pair(3);
  const Modes c{0, 1};
  const ResilientResult rr = contract_resilient(p.x, p.y, c, c);
  ASSERT_EQ(rr.report.attempts.size(), 1u);
  EXPECT_FALSE(rr.report.degraded());
  EXPECT_TRUE(rr.report.serving().succeeded);
  EXPECT_EQ(rr.report.serving().algorithm, Algorithm::kSparta);
  EXPECT_EQ(rr.report.serving().chunks, 1u);

  const SparseTensor ref = contract_reference(p.x, p.y, c, c);
  EXPECT_TRUE(SparseTensor::approx_equal(rr.result.z, ref, 1e-9));
}

TEST_F(ResilientTest, GenerousBudgetDoesNotDegrade) {
  const TensorPair p = make_pair(5);
  const Modes c{0, 1};
  ContractOptions o;
  o.budget.bytes = std::size_t{1} << 30;  // 1 GiB: far above any footprint
  const ResilientResult rr = contract_resilient(p.x, p.y, c, c, o);
  EXPECT_FALSE(rr.report.degraded());
  const SparseTensor ref = contract_reference(p.x, p.y, c, c);
  EXPECT_TRUE(SparseTensor::approx_equal(rr.result.z, ref, 1e-9));
}

// plan.build only runs for the HtY algorithm, so killing it exercises
// exactly one ladder step: HtY+HtA -> COOY+HtA.
TEST_F(ResilientTest, PlanFaultDegradesOneRung) {
  const TensorPair p = make_pair(7);
  const Modes c{0, 1};
  failpoint::arm("plan.build",
                 {failpoint::Action::kBadAlloc, 1, /*times=*/0});

  const ResilientResult rr = contract_resilient(p.x, p.y, c, c);
  ASSERT_EQ(rr.report.attempts.size(), 2u);
  EXPECT_TRUE(rr.report.degraded());
  EXPECT_FALSE(rr.report.attempts[0].succeeded);
  EXPECT_EQ(rr.report.attempts[0].algorithm, Algorithm::kSparta);
  EXPECT_FALSE(rr.report.attempts[0].error.empty());
  EXPECT_EQ(rr.report.serving().algorithm, Algorithm::kCooHta);
  EXPECT_TRUE(rr.report.serving().succeeded);

  failpoint::disarm_all();
  const SparseTensor ref = contract_reference(p.x, p.y, c, c);
  EXPECT_TRUE(SparseTensor::approx_equal(rr.result.z, ref, 1e-9));
}

// contract.input fires exactly once per contract() call, so "fail the
// first three calls" deterministically burns the three whole-tensor
// rungs and lands on the chunked fallback.
TEST_F(ResilientTest, ChunkedFallbackMatchesReference) {
  const TensorPair p = make_pair(11);
  const Modes c{0, 1};
  failpoint::arm("contract.input",
                 {failpoint::Action::kBadAlloc, /*fire_on=*/1, /*times=*/3});

  const ResilientResult rr = contract_resilient(p.x, p.y, c, c);
  EXPECT_TRUE(rr.report.degraded());
  EXPECT_TRUE(rr.report.serving().succeeded);
  EXPECT_GT(rr.report.serving().chunks, 1u);
  EXPECT_EQ(rr.report.serving().algorithm, Algorithm::kSpa);

  failpoint::disarm_all();
  const SparseTensor ref = contract_reference(p.x, p.y, c, c);
  EXPECT_TRUE(SparseTensor::approx_equal(rr.result.z, ref, 1e-9));
}

TEST_F(ResilientTest, ExhaustedLadderThrowsSpartaError) {
  const TensorPair p = make_pair(13);
  const Modes c{0, 1};
  // Unlimited firings: every rung, including every chunked attempt,
  // dies at stage ①. The ladder must convert that into sparta::Error —
  // a bad_alloc escaping here is exactly the bug the wrapper exists to
  // prevent.
  failpoint::arm("contract.input",
                 {failpoint::Action::kBadAlloc, 1, /*times=*/0});
  try {
    (void)contract_resilient(p.x, p.y, c, c);
    FAIL() << "expected sparta::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("every rung failed"),
              std::string::npos)
        << e.what();
  } catch (const std::bad_alloc&) {
    FAIL() << "bad_alloc escaped contract_resilient";
  }
}

TEST_F(ResilientTest, TinyBudgetEitherServesCorrectResultOrThrowsError) {
  const TensorPair p = make_pair(17);
  const Modes c{0, 1};
  const SparseTensor ref = contract_reference(p.x, p.y, c, c);
  // Sweep budgets from absurd to comfortable. The contract under test:
  // whatever the budget, the call either returns the exact answer or
  // throws sparta::Error. Nothing else may escape.
  for (std::size_t budget = 256; budget <= (std::size_t{1} << 22);
       budget <<= 2) {
    ContractOptions o;
    o.budget.bytes = budget;
    try {
      const ResilientResult rr = contract_resilient(p.x, p.y, c, c, o);
      EXPECT_TRUE(SparseTensor::approx_equal(rr.result.z, ref, 1e-9))
          << "budget " << budget << ": served a wrong result via "
          << rr.report.summary();
    } catch (const Error&) {
      // Acceptable: the ladder was exhausted under this budget.
    } catch (const std::bad_alloc&) {
      FAIL() << "bad_alloc escaped at budget " << budget;
    }
  }
}

TEST_F(ResilientTest, ReportStringsNameTheRungs) {
  const TensorPair p = make_pair(19);
  const Modes c{0, 1};
  failpoint::arm("plan.build", {failpoint::Action::kError, 1, /*times=*/0});
  const ResilientResult rr = contract_resilient(p.x, p.y, c, c);
  const std::string s = rr.report.summary();
  EXPECT_NE(s.find("HtY+HtA"), std::string::npos) << s;
  EXPECT_NE(s.find("COOY+HtA"), std::string::npos) << s;
  EXPECT_NE(rr.report.attempts[0].describe().find("HtY+HtA"),
            std::string::npos);
}

TEST_F(ResilientTest, ValidatesOptionsBeforeAttempting) {
  const TensorPair p = make_pair(23);
  ContractOptions bad;
  bad.num_threads = -1;
  EXPECT_THROW((void)contract_resilient(p.x, p.y, Modes{0, 1}, Modes{0, 1},
                                        bad),
               Error);
}

}  // namespace
}  // namespace sparta
