// Concurrency stress for the serving subsystem, meant to run under the
// tsan preset in CI: many client threads load / contract / drop the
// same names while workers drain the queue, so the registry, the plan
// cache (including single-flight builds) and the admission counters all
// see real contention. Assertions are about invariants, not timing:
// every request completes, and every completion is one of {ok,
// rejected, unknown-tensor error}.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "serve/plan_cache.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "tensor/generators.hpp"

namespace sparta::serve {
namespace {

SparseTensor make(std::uint64_t seed, std::size_t nnz = 150) {
  GeneratorSpec s;
  s.dims = {10, 10, 6};
  s.nnz = nnz;
  s.seed = seed;
  return generate_random(s);
}

TEST(ServeStress, RegistryLoadDropRace) {
  TensorRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kOps = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      const std::string name = "shared";
      for (int i = 0; i < kOps; ++i) {
        reg.put(name, make(static_cast<std::uint64_t>(t * kOps + i)));
        const TensorRegistry::Handle h = reg.try_get(name);
        if (h.valid()) {
          // Whatever registration we raced onto, the tensor is intact.
          EXPECT_EQ(h.tensor->nnz(), 150u);
        }
        if (i % 3 == t % 3) reg.drop(name);
      }
    });
  }
  for (std::thread& th : threads) th.join();
}

TEST(ServeStress, PlanCacheSingleFlightUnderContention) {
  const SparseTensor y = make(99, 400);
  PlanCache cache;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const YPlan>> plans(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      plans[static_cast<std::size_t>(t)] =
          cache.acquire(1, y, {0, 1}).plan;
    });
  }
  for (std::thread& th : threads) th.join();
  // Single-flight: one build, everyone shares it.
  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(plans[static_cast<std::size_t>(t)].get(), plans[0].get());
  }
}

// Single-flight failure path: when the shared build throws, every
// concurrent waiter must wake (no thread left blocked), the entry must
// be evictable, and the key must never be poisoned — a later acquire
// builds fresh and succeeds. Runs under the tsan preset in CI.
TEST(ServeStress, PlanCacheBuildFailureWakesAllWaiters) {
  const SparseTensor y = make(42, 400);
  PlanCache cache;
  // First build attempt fails; any retry builds clean.
  failpoint::arm("plan.build",
                 {failpoint::Action::kError, /*fire_on=*/1, /*times=*/1});

  constexpr int kThreads = 8;
  std::atomic<int> errors{0};
  std::atomic<int> plans{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        const PlanLease lease = cache.acquire(7, y, {0, 1});
        if (lease.plan != nullptr) ++plans;
      } catch (const Error&) {
        ++errors;  // builder (and its waiters) inherit the build error
      }
    });
  }
  for (std::thread& th : threads) th.join();
  failpoint::disarm_all();

  // Everyone resolved one way or the other, the builder saw the error,
  // and the key still works.
  EXPECT_EQ(errors.load() + plans.load(), kThreads);
  EXPECT_GE(errors.load(), 1);
  const PlanLease lease = cache.acquire(7, y, {0, 1});
  EXPECT_NE(lease.plan, nullptr);
}

// A builder cancelled mid-build must not fail innocent waiters: one of
// them takes over and builds with its own (inert) token.
TEST(ServeStress, PlanCacheBuilderCancelHandsOffToWaiters) {
  const SparseTensor y = make(43, 400);
  PlanCache cache;

  constexpr int kThreads = 8;
  std::atomic<int> cancelled{0};
  std::atomic<int> plans{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      CancelToken token;
      if (t == 0) {
        // Thread 0 carries a poisoned token; if it wins the build race
        // it cancels mid-build and a waiter must take over.
        token = CancelToken::make();
        token.arm_at_site("plan.build");
      }
      try {
        const PlanLease lease = cache.acquire(8, y, {0, 1}, token);
        if (lease.plan != nullptr) ++plans;
      } catch (const Cancelled&) {
        ++cancelled;  // only the poisoned thread may land here
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(cancelled.load() + plans.load(), kThreads);
  EXPECT_LE(cancelled.load(), 1);
  EXPECT_GE(plans.load(), kThreads - 1);
  const PlanLease lease = cache.acquire(8, y, {0, 1});
  EXPECT_NE(lease.plan, nullptr);
}

// shutdown_now under live load: clients submit (and race the shutdown's
// Error), every obtained future resolves, nothing deadlocks, and the
// teardown leaves zero tracked bytes.
TEST(ServeStress, ShutdownNowUnderLoad) {
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.threads_per_request = 1;
  cfg.queue_capacity = 8;
  ContractionService svc(cfg);
  svc.load("X", make(3));
  // A heavier Y (same contracted dims) keeps workers busy so the
  // shutdown lands while requests are genuinely in flight.
  GeneratorSpec ys;
  ys.dims = {10, 10, 60};
  ys.nnz = 3000;
  ys.seed = 4;
  svc.load("Y", generate_random(ys));

  std::mutex fmu;
  std::vector<std::future<ServeReport>> futures;
  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 20; ++i) {
        ServeRequest req;
        req.x = "X";
        req.y = "Y";
        req.cx = {0, 1};
        req.cy = {0, 1};
        if (i % 2 == c % 2) req.deadline_ms = 0.05;
        try {
          std::future<ServeReport> f = svc.submit(std::move(req));
          const std::lock_guard<std::mutex> lk(fmu);
          futures.push_back(std::move(f));
        } catch (const Error&) {
          return;  // raced the shutdown: legal, stop submitting
        }
      }
    });
  }
  svc.shutdown_now();
  for (std::thread& th : clients) th.join();

  for (auto& f : futures) {
    const ServeReport rep = f.get();  // must resolve, whatever happened
    if (!rep.ok()) {
      EXPECT_TRUE(rep.cancelled || rep.rejected) << rep.error;
    }
  }
  futures.clear();  // release report-held Z references

  svc.drop("X");
  svc.drop("Y");
  svc.clear_plan_cache();
  EXPECT_EQ(svc.live_bytes(), 0u);
}

// Graceful drain under the same load: every request submitted before
// shutdown() completes normally (no cancellations from the drain).
TEST(ServeStress, GracefulShutdownDrainsEverything) {
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.threads_per_request = 1;
  cfg.queue_capacity = 8;
  ContractionService svc(cfg);
  svc.load("X", make(5));
  svc.load("Y", make(6));

  std::vector<std::future<ServeReport>> futures;
  for (int i = 0; i < 12; ++i) {
    ServeRequest req;
    req.x = "X";
    req.y = "Y";
    req.cx = {0, 1};
    req.cy = {0, 1};
    futures.push_back(svc.submit(std::move(req)));
  }
  svc.shutdown();
  for (auto& f : futures) {
    const ServeReport rep = f.get();
    EXPECT_TRUE(rep.ok()) << rep.error;
    EXPECT_FALSE(rep.cancelled);
  }
}

TEST(ServeStress, ServiceSurvivesConcurrentLoadContractDrop) {
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.threads_per_request = 1;
  cfg.queue_capacity = 8;  // small queue: exercise backpressure
  ContractionService svc(cfg);
  svc.load("X", make(1));
  svc.load("Y", make(2));

  std::atomic<int> completed{0};
  constexpr int kClients = 4;
  constexpr int kRequests = 25;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequests; ++i) {
        // One client keeps churning the registry under the others.
        if (c == 0 && i % 5 == 4) {
          svc.load("Y", make(static_cast<std::uint64_t>(100 + i)));
        }
        if (c == 1 && i % 11 == 10) {
          svc.drop("Y");
          svc.load("Y", make(static_cast<std::uint64_t>(200 + i)));
        }
        ServeRequest req;
        req.x = "X";
        req.y = "Y";
        req.cx = {0, 1};
        req.cy = {0, 1};
        const ServeReport rep = svc.contract_sync(req);
        ++completed;
        if (rep.ok()) {
          EXPECT_NE(rep.z, nullptr);
        } else {
          // The only legal failure here is racing a drop.
          EXPECT_NE(rep.error.find("not registered"),
                    std::string::npos)
              << rep.error;
        }
      }
    });
  }
  for (std::thread& th : clients) th.join();
  EXPECT_EQ(completed.load(), kClients * kRequests);

  // Counters stayed coherent across the churn.
  const PlanCache::Stats cs = svc.cache_stats();
  EXPECT_GE(cs.hits + cs.misses,
            static_cast<std::uint64_t>(1));  // sparta ran at least once
  svc.shutdown();
}

}  // namespace
}  // namespace sparta::serve
