// Concurrency stress for the serving subsystem, meant to run under the
// tsan preset in CI: many client threads load / contract / drop the
// same names while workers drain the queue, so the registry, the plan
// cache (including single-flight builds) and the admission counters all
// see real contention. Assertions are about invariants, not timing:
// every request completes, and every completion is one of {ok,
// rejected, unknown-tensor error}.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "serve/plan_cache.hpp"
#include "serve/registry.hpp"
#include "serve/service.hpp"
#include "tensor/generators.hpp"

namespace sparta::serve {
namespace {

SparseTensor make(std::uint64_t seed, std::size_t nnz = 150) {
  GeneratorSpec s;
  s.dims = {10, 10, 6};
  s.nnz = nnz;
  s.seed = seed;
  return generate_random(s);
}

TEST(ServeStress, RegistryLoadDropRace) {
  TensorRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kOps = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      const std::string name = "shared";
      for (int i = 0; i < kOps; ++i) {
        reg.put(name, make(static_cast<std::uint64_t>(t * kOps + i)));
        const TensorRegistry::Handle h = reg.try_get(name);
        if (h.valid()) {
          // Whatever registration we raced onto, the tensor is intact.
          EXPECT_EQ(h.tensor->nnz(), 150u);
        }
        if (i % 3 == t % 3) reg.drop(name);
      }
    });
  }
  for (std::thread& th : threads) th.join();
}

TEST(ServeStress, PlanCacheSingleFlightUnderContention) {
  const SparseTensor y = make(99, 400);
  PlanCache cache;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const YPlan>> plans(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      plans[static_cast<std::size_t>(t)] =
          cache.acquire(1, y, {0, 1}).plan;
    });
  }
  for (std::thread& th : threads) th.join();
  // Single-flight: one build, everyone shares it.
  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(plans[static_cast<std::size_t>(t)].get(), plans[0].get());
  }
}

TEST(ServeStress, ServiceSurvivesConcurrentLoadContractDrop) {
  ServeConfig cfg;
  cfg.num_workers = 2;
  cfg.threads_per_request = 1;
  cfg.queue_capacity = 8;  // small queue: exercise backpressure
  ContractionService svc(cfg);
  svc.load("X", make(1));
  svc.load("Y", make(2));

  std::atomic<int> completed{0};
  constexpr int kClients = 4;
  constexpr int kRequests = 25;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequests; ++i) {
        // One client keeps churning the registry under the others.
        if (c == 0 && i % 5 == 4) {
          svc.load("Y", make(static_cast<std::uint64_t>(100 + i)));
        }
        if (c == 1 && i % 11 == 10) {
          svc.drop("Y");
          svc.load("Y", make(static_cast<std::uint64_t>(200 + i)));
        }
        ServeRequest req;
        req.x = "X";
        req.y = "Y";
        req.cx = {0, 1};
        req.cy = {0, 1};
        const ServeReport rep = svc.contract_sync(req);
        ++completed;
        if (rep.ok()) {
          EXPECT_NE(rep.z, nullptr);
        } else {
          // The only legal failure here is racing a drop.
          EXPECT_NE(rep.error.find("not registered"),
                    std::string::npos)
              << rep.error;
        }
      }
    });
  }
  for (std::thread& th : clients) th.join();
  EXPECT_EQ(completed.load(), kClients * kRequests);

  // Counters stayed coherent across the churn.
  const PlanCache::Stats cs = svc.cache_stats();
  EXPECT_GE(cs.hits + cs.misses,
            static_cast<std::uint64_t>(1));  // sparta ran at least once
  svc.shutdown();
}

}  // namespace
}  // namespace sparta::serve
