// Tests for the lock-free log2 histogram (src/obs/histogram.hpp): the
// bucket scheme, the percentile approximation contract against an exact
// reference, concurrent recording, and the registry/macro integration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"

namespace sparta::obs {
namespace {

TEST(Log2Histogram, BucketScheme) {
  // Bucket b holds values of bit width b: 0→0, 1→1, [2,3]→2, [4,7]→3
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 3);
  EXPECT_EQ(Log2Histogram::bucket_of(7), 3);
  EXPECT_EQ(Log2Histogram::bucket_of(8), 4);
  EXPECT_EQ(Log2Histogram::bucket_of(UINT64_MAX), 64);
}

TEST(Log2Histogram, CountSumMax) {
  Log2Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  h.record(1);
  h.record(10);
  h.record(100);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 111u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_EQ(h.bucket_count(1), 1u);    // {1}
  EXPECT_EQ(h.bucket_count(4), 1u);    // [8,15] ∋ 10
  EXPECT_EQ(h.bucket_count(7), 1u);    // [64,127] ∋ 100
}

// The documented contract: a reported pXX is the geometric midpoint of
// the bucket containing the true quantile, clamped to the observed max —
// always within a factor of 2 of the exact value.
TEST(Log2Histogram, PercentilesTrackExactReference) {
  std::mt19937_64 rng(12345);
  // Log-uniform values so every bucket range gets exercised.
  std::uniform_real_distribution<double> exp_dist(0.0, 16.0);
  std::vector<std::uint64_t> values;
  Log2Histogram h;
  for (int i = 0; i < 20000; ++i) {
    const auto v =
        static_cast<std::uint64_t>(std::exp2(exp_dist(rng)));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double p : {0.50, 0.95, 0.99}) {
    const std::size_t rank = static_cast<std::size_t>(
        p * static_cast<double>(values.size()));
    const double exact = static_cast<double>(
        values[std::min(rank, values.size() - 1)]);
    const double approx = h.percentile(p);
    EXPECT_GE(approx, exact / 2.0) << "p=" << p;
    EXPECT_LE(approx, exact * 2.0) << "p=" << p;
  }
  // Quantiles are monotone in p and bounded by the observed max.
  EXPECT_LE(h.percentile(0.50), h.percentile(0.95));
  EXPECT_LE(h.percentile(0.95), h.percentile(0.99));
  EXPECT_LE(h.percentile(0.99), static_cast<double>(h.max()));
}

TEST(Log2Histogram, SingleValueDistribution) {
  Log2Histogram h;
  for (int i = 0; i < 100; ++i) h.record(5);
  // Midpoint of [4,7] is 5.5, but clamping to max gives exactly 5.
  EXPECT_EQ(h.percentile(0.5), 5.0);
  EXPECT_EQ(h.percentile(0.99), 5.0);
  EXPECT_EQ(h.max(), 5u);
}

TEST(Log2Histogram, ConcurrentRecordingLosesNothing) {
  Log2Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto n = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h.sum(), n * (n - 1) / 2);
  EXPECT_EQ(h.max(), n - 1);
}

TEST(Log2Histogram, ResetZeroesEverything) {
  Log2Histogram h;
  h.record(1000);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(0.99), 0.0);
}

TEST(Log2Histogram, JsonExportIsValidAndComplete) {
  Log2Histogram h;
  h.record(3);
  h.record(200);
  const std::string doc = h.to_json();
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"count\":2"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"p50\""), std::string::npos);
  EXPECT_NE(doc.find("\"p95\""), std::string::npos);
  EXPECT_NE(doc.find("\"p99\""), std::string::npos);
  EXPECT_NE(doc.find("\"max\":200"), std::string::npos);
  // Only the two non-empty buckets appear.
  EXPECT_NE(doc.find("\"2\":1"), std::string::npos);  // [2,3] ∋ 3
  EXPECT_NE(doc.find("\"8\":1"), std::string::npos);  // [128,255] ∋ 200
}

// -------------------------------------------------- registry + macro

TEST(MetricsRegistry, HistogramsFollowTheEnableFlag) {
  auto& reg = MetricsRegistry::global();
  reg.reset();
  reg.disable();
  SPARTA_HISTOGRAM_RECORD("test.hist_gated", 42);
  EXPECT_EQ(reg.histogram_count("test.hist_gated"), 0u);
  reg.enable();
  SPARTA_HISTOGRAM_RECORD("test.hist_gated", 42);
  SPARTA_HISTOGRAM_RECORD("test.hist_gated", 7);
  reg.disable();
  EXPECT_EQ(reg.histogram_count("test.hist_gated"), 2u);
  EXPECT_EQ(reg.histogram("test.hist_gated").max(), 42u);
  const std::string doc = reg.histograms_json();
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"test.hist_gated\""), std::string::npos);
  // The full registry export carries the same data under "histograms".
  EXPECT_NE(reg.to_json().find("\"histograms\""), std::string::npos);
  reg.reset();
  EXPECT_EQ(reg.histogram_count("test.hist_gated"), 0u);
}

}  // namespace
}  // namespace sparta::obs
