// Tests for the Eq. 5/6 placement-time size estimators against measured
// footprints from real contractions.
#include <gtest/gtest.h>

#include "contraction/contract.hpp"
#include "contraction/estimators.hpp"
#include "tensor/generators.hpp"

namespace sparta {
namespace {

ContractResult run_case(int contract_modes, std::size_t nnz,
                        std::uint64_t seed) {
  PairedSpec ps;
  ps.x.dims = {50, 40, 30, 20};
  ps.x.nnz = nnz;
  ps.x.seed = seed;
  ps.y.dims = {50, 40, 25, 15};
  ps.y.nnz = nnz;
  ps.y.seed = seed + 1;
  ps.num_contract_modes = contract_modes;
  ps.match_fraction = 0.8;
  const TensorPair pair = generate_contraction_pair(ps);
  Modes c;
  for (int m = 0; m < contract_modes; ++m) c.push_back(m);
  ContractOptions o;
  o.algorithm = Algorithm::kSparta;
  return contract(pair.x, pair.y, c, c, o);
}

TEST(Estimators, Eq5TracksMeasuredHtyFootprint) {
  for (int m : {1, 2}) {
    const ContractResult r = run_case(m, 4000, 17);
    // Bucket count ≈ nnz rounded to the next power of two (auto sizing).
    std::size_t buckets = 16;
    while (buckets < r.stats.nnz_y) buckets <<= 1;
    const std::size_t est = estimate_hty_bytes(
        r.stats.nnz_y, /*order_y=*/4, buckets);
    // Eq. 5 models the steady-state layout; vector growth slack means the
    // measured value can exceed it, but both must be the same scale.
    EXPECT_GT(est, r.stats.hty_bytes / 4) << m << "-mode";
    EXPECT_LT(est, r.stats.hty_bytes * 4) << m << "-mode";
  }
}

TEST(Estimators, Eq6IsAnUpperBoundOnHta) {
  for (int m : {1, 2}) {
    const ContractResult r = run_case(m, 3000, 23);
    const std::size_t buckets = 1024;
    const std::size_t bound = estimate_hta_bytes(
        r.stats.max_x_subtensor, r.stats.max_y_group, /*num_free_y=*/2,
        buckets);
    // The paper: Eq. 6 gives an upper bound on one thread's HtA payload.
    const std::size_t per_thread = r.stats.hta_bytes;  // 1 thread here
    EXPECT_GE(bound + buckets * 16, per_thread / 2)
        << m << "-mode: bound should not be wildly below measurement";
  }
}

TEST(Estimators, Eq6GrowsWithItsInputs) {
  const std::size_t base = estimate_hta_bytes(10, 10, 2, 64);
  EXPECT_GT(estimate_hta_bytes(20, 10, 2, 64), base);
  EXPECT_GT(estimate_hta_bytes(10, 20, 2, 64), base);
  EXPECT_GT(estimate_hta_bytes(10, 10, 4, 64), base);
  EXPECT_GT(estimate_hta_bytes(10, 10, 2, 1024), base);
}

TEST(Estimators, ZlocalBoundCoversMeasured) {
  const ContractResult r = run_case(2, 3000, 31);
  const std::size_t est =
      estimate_zlocal_bytes(r.stats.nnz_z, /*num_free_x=*/2,
                            /*num_free_y=*/2);
  // Measured Z_local includes vector capacity slack; the estimate models
  // exactly the payload, so require same order of magnitude.
  EXPECT_GT(est * 4, r.stats.zlocal_bytes);
  EXPECT_LT(est / 8, r.stats.zlocal_bytes);
}

TEST(Estimators, Eq5ExactFormula) {
  // Direct formula check with the paper's symbol values.
  EstimatorSizes sz;
  sz.entry_pointer = 8;
  sz.index = 4;
  sz.value = 8;
  // Size_ep*B + nnz*(idx*N + val + ep) = 8*100 + 50*(4*3 + 8 + 8)
  EXPECT_EQ(estimate_hty_bytes(50, 3, 100, sz), 800u + 50u * 28u);
}

TEST(Estimators, Eq6ExactFormula) {
  EstimatorSizes sz;
  sz.entry_pointer = 8;
  sz.index = 4;
  sz.value = 8;
  // 8*64 + 10*20*(4*2 + 8 + 8)
  EXPECT_EQ(estimate_hta_bytes(10, 20, 2, 64, sz), 512u + 200u * 24u);
}

}  // namespace
}  // namespace sparta
