// Tests for the contraction-plan compiler's front half (src/plan/):
// the network IR parser and its hardened diagnostics, the bitmask-DP
// order search and its budget pruning, fixed-order and enumerated
// plans, and the byte-determinism of the plan's JSON explanation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/json_parse.hpp"
#include "plan/ir.hpp"
#include "plan/planner.hpp"

namespace sparta::plan {
namespace {

// ------------------------------------------------------------- parser

TEST(PlanIr, ParsesChainAndCanonicalizes) {
  const ContractionNetwork net =
      parse_network("  Z[i,l]=A[i,j] *B [j,k]* C[k,l] ");
  EXPECT_EQ(net.output_name, "Z");
  ASSERT_EQ(net.inputs.size(), 3u);
  EXPECT_EQ(net.inputs[1].name, "B");
  ASSERT_EQ(net.inputs[1].labels.size(), 2u);
  EXPECT_EQ(net.inputs[1].labels[0], "j");
  EXPECT_EQ(net.canonical(), "Z[i,l] = A[i,j] * B[j,k] * C[k,l]");
}

// Each rejected statement names the problem precisely; diagnostics are
// part of the IR's contract (tools echo them verbatim).
struct BadSpec {
  const char* text;
  const char* expect_substr;
};

TEST(PlanIr, RejectsMalformedStatementsWithPointedDiagnostics) {
  const BadSpec cases[] = {
      {"Z[i] = A[i,j]", "at least two input tensors"},
      {"Z[i,j] = A[i,k] * B[k,j] * ", "expected input tensor name"},
      {"Z[i,j] A[i,k] * B[k,j]", "expected '='"},
      {"Z[i,j] = A[i,k] B[k,j]", "expected '*' or end of statement"},
      {"Z[] = A[i] * B[i]", "expected mode label"},
      {"Z[i,i] = A[i,j] * B[j,i]", "repeats mode label 'i'"},
      {"Z[i,j] = A[i,i] * B[i,j]", "repeats mode label 'i'"},
      {"Z[i,k] = A[i,j] * B[j,k] * C[j,k]", "at most two tensors"},
      {"Z[i,q] = A[i,j] * B[j,q] * C[q,i]", "contracted"},
      {"Z[i,x] = A[i,j] * B[j,k]", "does not appear in any input"},
      {"Z[i] = A[i,j] * B[j,k]", "missing from the output"},
      {"Z[i,l,p,q] = A[i,j] * B[j,l] * C[p,q]", "shares no mode label"},
      {"Z[i,j] = A[i,j] * A[i,j]", "appears twice"},
      {"Z[i,j] = Z[i,k] * B[k,j]", "also appears as an input"},
      {"__tmp/1[i,j] = A[i,k] * B[k,j]", "reserved prefix"},
      {"Z[i,j] = __tmp/9[i,k] * B[k,j]", "reserved prefix"},
  };
  for (const BadSpec& c : cases) {
    try {
      (void)parse_network(c.text);
      FAIL() << "accepted: " << c.text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect_substr),
                std::string::npos)
          << "spec: " << c.text << "\n  diagnostic: " << e.what()
          << "\n  wanted substring: " << c.expect_substr;
    }
  }
}

TEST(PlanIr, ColumnNumbersPointAtTheOffendingToken) {
  try {
    (void)parse_network("Z[i,j] = A[i,k] ? B[k,j]");
    FAIL() << "accepted '?'";
  } catch (const Error& e) {
    // The '?' sits at 1-based column 17.
    EXPECT_NE(std::string(e.what()).find("col 17"), std::string::npos)
        << e.what();
  }
}

// ------------------------------------------------------------ planner

std::vector<BoundInput> chain_inputs() {
  // Funnel chain: contracting from the right keeps intermediates tiny.
  //   A[i,j] 256x256 nnz 20000, B[j,k] 256x256 nnz 20000,
  //   C[k,l] 256x256 nnz 2000, D[l,m] 256x4 nnz 512
  std::vector<BoundInput> in(4);
  in[0] = {"A", {256, 256}, 20000, 1};
  in[1] = {"B", {256, 256}, 20000, 2};
  in[2] = {"C", {256, 256}, 2000, 3};
  in[3] = {"D", {256, 4}, 512, 4};
  return in;
}

const char* kChain = "Z[i,m] = A[i,j] * B[j,k] * C[k,l] * D[l,m]";

TEST(Planner, DpAvoidsTheLeftToRightBlowUp) {
  const ContractionNetwork net = parse_network(kChain);
  const NetworkPlan plan = plan_network(net, chain_inputs());
  EXPECT_EQ(plan.search, "dp");
  ASSERT_EQ(plan.steps.size(), 3u);
  // The searched order must be strictly cheaper than naive
  // left-to-right, whose first step materializes the A*B blow-up.
  std::vector<std::size_t> ltr = {0, 1, 2, 3};
  const NetworkPlan left = plan_fixed_order(net, chain_inputs(), ltr);
  EXPECT_EQ(left.search, "fixed");
  EXPECT_LT(plan.est_total_seconds, left.est_total_seconds);
  EXPECT_LT(plan.est_peak_bytes, left.est_peak_bytes);
  // The first searched step must not be the A*B merge.
  const PlanStepSpec& s0 = plan.steps[0];
  EXPECT_FALSE((s0.x_name == "A" && s0.y_name == "B") ||
               (s0.x_name == "B" && s0.y_name == "A"));
  EXPECT_GT(plan.rejected_alternatives, 0u);
}

TEST(Planner, SearchedPlanIsTheEnumeratedOptimum) {
  const ContractionNetwork net = parse_network(kChain);
  const NetworkPlan plan = plan_network(net, chain_inputs());
  const std::vector<NetworkPlan> all =
      enumerate_plans(net, chain_inputs());
  ASSERT_FALSE(all.empty());
  double best = all.front().est_total_seconds;
  for (const NetworkPlan& p : all) {
    best = std::min(best, p.est_total_seconds);
  }
  EXPECT_LE(plan.est_total_seconds, best * 1.000001);
}

TEST(Planner, BudgetPrunesAndEventuallyRejects) {
  const ContractionNetwork net = parse_network(kChain);
  const NetworkPlan unbounded = plan_network(net, chain_inputs());

  // A budget just under the unbounded optimum's peak forces the DP to
  // either find a pricier-but-smaller order or prune candidates.
  PlanOptions tight;
  tight.budget_bytes = unbounded.est_peak_bytes;
  const NetworkPlan fitted = plan_network(net, chain_inputs(), tight);
  EXPECT_LE(fitted.est_peak_bytes, tight.budget_bytes);

  // An absurd budget admits no plan at all — and says why.
  PlanOptions absurd;
  absurd.budget_bytes = 1;
  try {
    (void)plan_network(net, chain_inputs(), absurd);
    FAIL() << "1-byte budget accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos)
        << e.what();
  }
}

TEST(Planner, MetadataMismatchesAreRejected) {
  const ContractionNetwork net = parse_network(kChain);
  auto in = chain_inputs();
  in[1].dims = {256};  // arity disagrees with B[j,k]
  EXPECT_THROW((void)plan_network(net, in), Error);
  in = chain_inputs();
  in[2].dims = {99, 256};  // shared label k disagrees: B says 256
  EXPECT_THROW((void)plan_network(net, in), Error);
  in = chain_inputs();
  in.pop_back();  // count mismatch
  EXPECT_THROW((void)plan_network(net, in), Error);
}

TEST(Planner, StepSpecsChainNodeIdsConsistently) {
  const ContractionNetwork net = parse_network(kChain);
  const NetworkPlan plan = plan_network(net, chain_inputs());
  const std::size_t n = net.inputs.size();
  for (std::size_t k = 0; k < plan.steps.size(); ++k) {
    const PlanStepSpec& s = plan.steps[k];
    // Operands refer to inputs or strictly earlier steps.
    EXPECT_LT(s.x, n + k);
    EXPECT_LT(s.y, n + k);
    EXPECT_NE(s.x, s.y);
    EXPECT_EQ(s.cx.size(), s.cy.size());
    EXPECT_EQ(s.out_labels.size(), s.out_dims.size());
  }
  // The final step's labels modulo final_perm spell the output.
  const PlanStepSpec& last = plan.steps.back();
  std::vector<std::string> labels = last.out_labels;
  if (!plan.final_perm.empty()) {
    std::vector<std::string> permuted(labels.size());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      permuted[i] =
          labels[static_cast<std::size_t>(plan.final_perm[i])];
    }
    labels = permuted;
  }
  EXPECT_EQ(labels, net.output_labels);
}

TEST(Planner, GreedyFallbackAboveDpLimit) {
  // A 17-operand chain: over kMaxDpOperands, so the search degrades to
  // greedy — which must still produce a valid, fully-connected plan.
  std::string expr = "Z[m0,m17] = ";
  std::vector<BoundInput> in;
  for (int i = 0; i < 17; ++i) {
    expr += (i ? " * T" : "T") + std::to_string(i) + "[m" +
            std::to_string(i) + ",m" + std::to_string(i + 1) + "]";
    BoundInput b;
    b.name = "T" + std::to_string(i);
    b.dims = {16, 16};
    b.nnz = 64;
    in.push_back(std::move(b));
  }
  const ContractionNetwork net = parse_network(expr);
  const NetworkPlan plan = plan_network(net, in);
  EXPECT_EQ(plan.search, "greedy");
  EXPECT_EQ(plan.steps.size(), 16u);
}

TEST(Planner, PlanJsonIsByteStableAndValid) {
  const ContractionNetwork net = parse_network(kChain);
  const std::string a = plan_network(net, chain_inputs()).to_json();
  const std::string b = plan_network(net, chain_inputs()).to_json();
  EXPECT_EQ(a, b);
  EXPECT_TRUE(obs::json_parse(a).has_value()) << a;
}

}  // namespace
}  // namespace sparta::plan
