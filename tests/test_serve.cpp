// Tests for the src/serve/ subsystem: tensor registry, plan cache,
// variant selector, the contraction service (including request
// correlation, the statlog store, and flight dumps), and workload
// scripts.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "contraction/contract.hpp"
#include "contraction/estimators.hpp"
#include "memsim/allocator.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/json_parse.hpp"
#include "obs/trace.hpp"
#include "serve/plan_cache.hpp"
#include "serve/registry.hpp"
#include "serve/selector.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "tensor/generators.hpp"

namespace sparta::serve {
namespace {

SparseTensor make(std::vector<index_t> dims, std::size_t nnz,
                  std::uint64_t seed) {
  GeneratorSpec s;
  s.dims = std::move(dims);
  s.nnz = nnz;
  s.seed = seed;
  return generate_random(s);
}

void expect_identical(const SparseTensor& a, const SparseTensor& b) {
  ASSERT_EQ(a.nnz(), b.nnz());
  ASSERT_EQ(a.dims(), b.dims());
  for (std::size_t n = 0; n < a.nnz(); ++n) {
    EXPECT_EQ(a.value(n), b.value(n)) << "nnz " << n;  // bit-exact
    for (int m = 0; m < a.order(); ++m) {
      EXPECT_EQ(a.index(n, m), b.index(n, m));
    }
  }
}

// --- TensorRegistry ---------------------------------------------------

TEST(TensorRegistry, PutGetDropWithMonotonicIds) {
  TensorRegistry reg;
  const std::uint64_t id1 = reg.put("a", make({8, 8}, 20, 1));
  EXPECT_GT(id1, 0u);
  EXPECT_TRUE(reg.contains("a"));
  EXPECT_EQ(reg.count(), 1u);

  const TensorRegistry::Handle h = reg.get("a");
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(h.id, id1);
  EXPECT_EQ(h.tensor->nnz(), 20u);

  // Re-registering the same name must bump the id (staleness signal).
  const std::uint64_t id2 = reg.put("a", make({8, 8}, 30, 2));
  EXPECT_GT(id2, id1);
  EXPECT_EQ(reg.get("a").id, id2);

  EXPECT_EQ(reg.drop("a"), id2);
  EXPECT_FALSE(reg.contains("a"));
  EXPECT_FALSE(reg.try_get("a").valid());
  EXPECT_THROW((void)reg.get("a"), Error);
  EXPECT_EQ(reg.drop("a"), 0u);  // double drop is a no-op
}

TEST(TensorRegistry, DroppedTensorOutlivesTheNameForHolders) {
  TensorRegistry reg;
  reg.put("t", make({10, 10}, 50, 3));
  const TensorRegistry::Handle h = reg.get("t");
  reg.drop("t");
  EXPECT_EQ(h.tensor->nnz(), 50u);  // still alive through the handle
}

TEST(TensorRegistry, NamesAreSortedAndBytesSummed) {
  TensorRegistry reg;
  reg.put("zeta", make({8, 8}, 10, 1));
  reg.put("alpha", make({8, 8}, 10, 2));
  const std::vector<std::string> names = reg.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
  EXPECT_GT(reg.named_bytes(), 0u);
}

TEST(TensorRegistry, ChargesBudgetAndRejectsOverflow) {
  AllocationRegistry alloc;
  TensorRegistry reg(&alloc);
  SparseTensor t = make({16, 16, 16}, 500, 4);
  const std::size_t fp = t.footprint_bytes();
  alloc.set_capacity(fp + fp / 2);  // room for one tensor, not two

  reg.put("a", std::move(t));
  EXPECT_EQ(alloc.live_bytes(Tier::kDram), fp);
  EXPECT_THROW(reg.put("b", make({16, 16, 16}, 500, 5)), BudgetExceeded);
  EXPECT_FALSE(reg.contains("b"));  // failed put leaves no trace
  EXPECT_EQ(alloc.live_bytes(Tier::kDram), fp);

  reg.drop("a");
  // Charge released with the tensor.
  EXPECT_EQ(alloc.live_bytes(Tier::kDram), 0u);
}

// --- PlanCache --------------------------------------------------------

TEST(PlanCache, MissBuildThenHit) {
  const SparseTensor y = make({12, 12, 8}, 300, 7);
  PlanCache cache;
  const PlanLease miss = cache.acquire(1, y, {0, 1});
  ASSERT_NE(miss.plan, nullptr);
  EXPECT_FALSE(miss.hit);
  EXPECT_TRUE(miss.cached);

  const PlanLease hit = cache.acquire(1, y, {0, 1});
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.plan.get(), miss.plan.get());  // same retained plan

  // Different contract modes are a different key.
  const PlanLease other = cache.acquire(1, y, {0});
  EXPECT_FALSE(other.hit);

  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_GT(s.retained_bytes, 0u);
}

TEST(PlanCache, CachedPlanResultIsBitIdenticalToColdPath) {
  const SparseTensor x = make({12, 12, 6}, 200, 8);
  const SparseTensor y = make({12, 12, 8}, 300, 9);
  ContractOptions opts;
  opts.algorithm = Algorithm::kSparta;
  const SparseTensor cold = contract(x, y, {0, 1}, {0, 1}, opts).z;

  PlanCache cache;
  const PlanLease lease = cache.acquire(42, y, {0, 1});
  const SparseTensor warm = contract(x, *lease.plan, {0, 1}, opts).z;
  expect_identical(cold, warm);

  // Second acquisition (a hit) must serve the very same plan and thus
  // the very same result.
  const PlanLease again = cache.acquire(42, y, {0, 1});
  ASSERT_TRUE(again.hit);
  expect_identical(cold, contract(x, *again.plan, {0, 1}, opts).z);
}

TEST(PlanCache, EvictsLruWhenOverBudget) {
  const SparseTensor y1 = make({12, 12, 8}, 300, 10);
  const SparseTensor y2 = make({12, 12, 8}, 300, 11);
  // Measure one plan's retained footprint with an unlimited cache.
  std::size_t one_plan = 0;
  {
    PlanCache probe;
    (void)probe.acquire(1, y1, {0, 1});
    one_plan = probe.stats().retained_bytes;
  }
  ASSERT_GT(one_plan, 0u);

  PlanCacheConfig cfg;
  cfg.budget_bytes = one_plan + one_plan / 2;  // fits one, not two
  PlanCache cache(cfg);
  (void)cache.acquire(1, y1, {0, 1});
  (void)cache.acquire(2, y2, {0, 1});
  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_FALSE(cache.peek(1, {0, 1}));  // LRU victim
  EXPECT_TRUE(cache.peek(2, {0, 1}));
  EXPECT_LE(s.retained_bytes, cfg.budget_bytes);
}

TEST(PlanCache, OversizedPlanIsServedUncached) {
  const SparseTensor y = make({12, 12, 8}, 300, 12);
  PlanCacheConfig cfg;
  cfg.budget_bytes = 1;  // nothing fits
  PlanCache cache(cfg);
  const PlanLease lease = cache.acquire(1, y, {0, 1});
  ASSERT_NE(lease.plan, nullptr);  // still usable ...
  EXPECT_FALSE(lease.cached);      // ... but the charge is the caller's
  const PlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.uncacheable, 1u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.evictions, 0u);  // pre-admission skipped eviction churn
}

TEST(PlanCache, InvalidateTensorDropsEntriesButNotLeases) {
  const SparseTensor y = make({12, 12, 8}, 300, 13);
  PlanCache cache;
  const PlanLease lease = cache.acquire(5, y, {0, 1});
  ASSERT_TRUE(cache.peek(5, {0, 1}));
  cache.invalidate_tensor(5);
  EXPECT_FALSE(cache.peek(5, {0, 1}));
  EXPECT_GT(lease.plan->nnz_y(), 0u);  // lease keeps the plan alive
}

TEST(PlanCache, RetainedChargeFollowsTheAllocationRegistry) {
  const SparseTensor y = make({12, 12, 8}, 300, 14);
  AllocationRegistry alloc;
  PlanCacheConfig cfg;
  cfg.registry = &alloc;
  PlanCache cache(cfg);
  {
    const PlanLease lease = cache.acquire(1, y, {0, 1});
    EXPECT_GT(alloc.live_bytes(Tier::kDram), 0u);
  }
  cache.clear();  // last reference gone -> charge released
  EXPECT_EQ(alloc.live_bytes(Tier::kDram), 0u);
}

// --- VariantSelector --------------------------------------------------

TEST(VariantSelector, CachedPlanForcesSparta) {
  VariantSelector sel;
  RequestFeatures f;
  f.nnz_x = 100;
  f.nnz_y = 100;
  f.order_y = 3;
  f.plan_cached = true;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sel.choose(f), Algorithm::kSparta);
  }
}

TEST(VariantSelector, SeedsEveryVariantBeforeExploiting) {
  VariantSelector sel;
  RequestFeatures f;
  f.nnz_x = 100;
  f.nnz_y = 100;
  f.order_y = 3;
  std::vector<Algorithm> seen;
  for (int i = 0; i < 3; ++i) {
    const Algorithm a = sel.choose(f);
    seen.push_back(a);
    sel.record(a, 1e-4, 200);
  }
  // All three variants tried exactly once, in ladder order.
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], Algorithm::kSpa);
  EXPECT_EQ(seen[1], Algorithm::kCooHta);
  EXPECT_EQ(seen[2], Algorithm::kSparta);
}

TEST(VariantSelector, ExploitsTheFastestVariant) {
  SelectorConfig cfg;
  cfg.explore_period = 0;  // pure exploit after seeding
  VariantSelector sel(cfg);
  sel.record(Algorithm::kSpa, 1e-3, 100);
  sel.record(Algorithm::kCooHta, 1e-6, 100);
  sel.record(Algorithm::kSparta, 1e-4, 100);
  RequestFeatures f;
  f.nnz_x = 100;
  f.nnz_y = 100;
  f.order_y = 3;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(sel.choose(f), Algorithm::kCooHta);
  }
  EXPECT_EQ(sel.variant_stats(Algorithm::kCooHta).runs, 1u);
}

TEST(VariantSelector, TightBudgetPrunesSparta) {
  SelectorConfig cfg;
  cfg.explore_period = 0;
  VariantSelector sel(cfg);
  // Make HtY+HtA the EWMA favourite so only feasibility can stop it.
  sel.record(Algorithm::kSpa, 1e-3, 100);
  sel.record(Algorithm::kCooHta, 1e-3, 100);
  sel.record(Algorithm::kSparta, 1e-9, 100);
  RequestFeatures f;
  f.nnz_x = 1000;
  f.nnz_y = 100000;  // Eq. 5 footprint far above ...
  f.order_y = 4;
  f.budget_remaining = 1024;  // ... the remaining budget
  for (int i = 0; i < 8; ++i) {
    EXPECT_NE(sel.choose(f), Algorithm::kSparta);
  }
  f.budget_remaining = 0;  // unlimited -> favourite wins again
  EXPECT_EQ(sel.choose(f), Algorithm::kSparta);
}

TEST(VariantSelector, PeriodicExplorationPreventsStarvation) {
  SelectorConfig cfg;
  cfg.explore_period = 4;
  VariantSelector sel(cfg);
  sel.record(Algorithm::kSpa, 1e-9, 100);  // overwhelming favourite
  sel.record(Algorithm::kCooHta, 1e-3, 100);
  sel.record(Algorithm::kSparta, 1e-3, 100);
  RequestFeatures f;
  f.nnz_x = 100;
  f.nnz_y = 100;
  f.order_y = 3;
  bool explored_other = false;
  for (int i = 0; i < 16; ++i) {
    if (sel.choose(f) != Algorithm::kSpa) explored_other = true;
  }
  EXPECT_TRUE(explored_other);
}

TEST(VariantSelector, RejectsUnmanagedAlgorithm) {
  VariantSelector sel;
  EXPECT_THROW(sel.record(Algorithm::kCooBinary, 1e-3, 1), Error);
}

// --- ContractionService -----------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  SparseTensor x_ = make({20, 20, 10}, 400, 21);
  SparseTensor y_ = make({20, 20, 12}, 600, 22);
  Modes cx_{0, 1};
  Modes cy_{0, 1};

  SparseTensor direct(Algorithm a) const {
    ContractOptions opts;
    opts.algorithm = a;
    return contract(x_, y_, cx_, cy_, opts).z;
  }

  static ServeRequest request(Algorithm a) {
    ServeRequest req;
    req.x = "X";
    req.y = "Y";
    req.cx = {0, 1};
    req.cy = {0, 1};
    req.force_variant = true;
    req.variant = a;
    return req;
  }
};

TEST_F(ServiceTest, EveryForcedVariantMatchesDirectContraction) {
  ContractionService svc;
  svc.load("X", x_);
  svc.load("Y", y_);
  for (const Algorithm a :
       {Algorithm::kSpa, Algorithm::kCooHta, Algorithm::kSparta}) {
    const ServeReport rep = svc.contract_sync(request(a));
    ASSERT_TRUE(rep.ok()) << rep.error;
    EXPECT_EQ(rep.variant, a);
    ASSERT_NE(rep.z, nullptr);
    expect_identical(direct(a), *rep.z);
  }
}

TEST_F(ServiceTest, CachedHtyIsBitIdenticalToColdSparta) {
  ContractionService svc;
  svc.load("X", x_);
  svc.load("Y", y_);

  const ServeReport cold = svc.contract_sync(request(Algorithm::kSparta));
  ASSERT_TRUE(cold.ok()) << cold.error;
  EXPECT_FALSE(cold.cache_hit);  // first request built the plan

  const ServeReport hit = svc.contract_sync(request(Algorithm::kSparta));
  ASSERT_TRUE(hit.ok()) << hit.error;
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_TRUE(hit.plan_cached);

  // The acceptance criterion: a cache-served HtY must produce exactly
  // the result the cold HtY+HtA path produced.
  expect_identical(*cold.z, *hit.z);
  expect_identical(direct(Algorithm::kSparta), *hit.z);

  const PlanCache::Stats cs = svc.cache_stats();
  EXPECT_EQ(cs.misses, 1u);
  EXPECT_GE(cs.hits, 1u);
}

TEST_F(ServiceTest, UnknownOperandFailsTheRequestNotTheService) {
  ContractionService svc;
  svc.load("X", x_);
  ServeRequest req = request(Algorithm::kSpa);
  req.y = "missing";
  const ServeReport rep = svc.contract_sync(req);
  EXPECT_FALSE(rep.ok());
  EXPECT_NE(rep.error.find("missing"), std::string::npos) << rep.error;
  EXPECT_FALSE(rep.rejected);  // lookup failure, not admission

  // The service is still healthy.
  svc.load("Y", y_);
  EXPECT_TRUE(svc.contract_sync(request(Algorithm::kSpa)).ok());
}

TEST_F(ServiceTest, StoreAsRegistersTheResultForChaining) {
  ContractionService svc;
  svc.load("X", x_);
  svc.load("Y", y_);
  ServeRequest req = request(Algorithm::kSparta);
  req.store_as = "Z";
  const ServeReport rep = svc.contract_sync(req);
  ASSERT_TRUE(rep.ok()) << rep.error;
  ASSERT_TRUE(svc.tensors().contains("Z"));

  // Z has dims {10, 12}; contract it with itself over its first mode.
  ServeRequest chain;
  chain.x = "Z";
  chain.y = "Z";
  chain.cx = {0};
  chain.cy = {0};
  const ServeReport rep2 = svc.contract_sync(chain);
  ASSERT_TRUE(rep2.ok()) << rep2.error;
  EXPECT_EQ(rep2.z->order(), 2);
}

TEST_F(ServiceTest, TinyBudgetRejectsWhenDegradeIsDisabled) {
  ServeConfig cfg;
  cfg.allow_degrade = false;
  // Room to register the operands, but a remaining budget far below
  // the admission floor (the operands' own footprints).
  cfg.dram_budget_bytes =
      x_.footprint_bytes() + y_.footprint_bytes() + 1024;
  ContractionService svc(cfg);
  svc.load("X", x_);
  svc.load("Y", y_);
  const ServeReport rep = svc.contract_sync(request(Algorithm::kSparta));
  EXPECT_TRUE(rep.rejected);
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(svc.admission_stats().rejected, 1u);

  // An over-budget load is the registry's own error, synchronous.
  EXPECT_THROW(svc.load("big", make({64, 64, 64}, 20000, 23)),
               BudgetExceeded);
}

TEST_F(ServiceTest, TinyBudgetDegradesWhenAllowed) {
  ServeConfig cfg;
  cfg.allow_degrade = true;
  // 256 KiB of slack: below the operands' combined footprint (so
  // admission must degrade) but enough for a degraded-ladder run of
  // this small contraction.
  SparseTensor bx = make({60, 60, 10}, 12000, 24);
  SparseTensor by = make({60, 60, 10}, 12000, 25);
  cfg.dram_budget_bytes =
      bx.footprint_bytes() + by.footprint_bytes() + (256u << 10);
  ASSERT_GT(bx.footprint_bytes() + by.footprint_bytes(), 256u << 10);
  ContractionService svc(cfg);
  svc.load("X", bx);
  svc.load("Y", by);

  ServeRequest req;
  req.x = "X";
  req.y = "Y";
  req.cx = {0, 1};
  req.cy = {0, 1};
  const ServeReport rep = svc.contract_sync(req);
  ASSERT_TRUE(rep.ok()) << rep.error;
  EXPECT_TRUE(rep.degraded);
  EXPECT_FALSE(rep.resilience.empty());
  EXPECT_GE(svc.admission_stats().degraded, 1u);

  ContractOptions opts;
  const SparseTensor want = contract(bx, by, {0, 1}, {0, 1}, opts).z;
  ASSERT_NE(rep.z, nullptr);
  EXPECT_TRUE(SparseTensor::approx_equal(want, *rep.z, 1e-9));
}

TEST_F(ServiceTest, EmptyOperandFlowsThroughEveryVariant) {
  ContractionService svc;
  svc.load("X", x_);
  svc.load("Y", SparseTensor(std::vector<index_t>{20, 20, 12}));
  for (const Algorithm a :
       {Algorithm::kSpa, Algorithm::kCooHta, Algorithm::kSparta}) {
    const ServeReport rep = svc.contract_sync(request(a));
    ASSERT_TRUE(rep.ok()) << rep.error;
    EXPECT_EQ(rep.z->nnz(), 0u);
  }
}

TEST_F(ServiceTest, SubmitAfterShutdownThrows) {
  ContractionService svc;
  svc.load("X", x_);
  svc.load("Y", y_);
  svc.shutdown();
  svc.shutdown();  // idempotent
  EXPECT_THROW((void)svc.submit(request(Algorithm::kSpa)), Error);
}

TEST_F(ServiceTest, ReportJsonCarriesTheContract) {
  ContractionService svc;
  svc.load("X", x_);
  svc.load("Y", y_);
  const ServeReport rep = svc.contract_sync(request(Algorithm::kSparta));
  const std::string j = rep.to_json();
  EXPECT_NE(j.find("\"variant\":\"HtY+HtA\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"ok\":true"), std::string::npos) << j;
  const std::string counters = svc.counters_json();
  EXPECT_NE(counters.find("\"cache\""), std::string::npos);
  EXPECT_NE(counters.find("\"admission\""), std::string::npos);
  EXPECT_NE(counters.find("\"selector\""), std::string::npos);
}

// --- Telemetry: correlation, statlog, flight dumps --------------------

TEST_F(ServiceTest, RequestIdsAreMonotonicAndUnique) {
  ContractionService svc;
  svc.load("X", x_);
  svc.load("Y", y_);
  std::vector<std::future<ServeReport>> futs;
  for (int i = 0; i < 8; ++i) {
    futs.push_back(svc.submit(request(Algorithm::kSpa)));
  }
  std::set<std::uint64_t> ids;
  for (auto& f : futs) {
    const ServeReport rep = f.get();
    ASSERT_TRUE(rep.ok()) << rep.error;
    EXPECT_GE(rep.request_id, 1u);
    ids.insert(rep.request_id);
  }
  EXPECT_EQ(ids.size(), 8u);  // all distinct
  EXPECT_EQ(*ids.rbegin(), 8u);  // dense 1..8: assigned at submit()
  // The JSON row carries the id for offline join with traces/statlogs.
  ServeReport rep = svc.contract_sync(request(Algorithm::kSpa));
  EXPECT_NE(rep.to_json().find("\"request_id\":9"), std::string::npos)
      << rep.to_json();
}

// The tentpole invariant: in a merged trace of CONCURRENT requests,
// every span/instant that carries a request_id arg maps to exactly one
// ServeReport, and every report has at least one span. Without
// correlation ids a concurrent trace is an unattributable soup; this
// test is what "request-scoped" means.
TEST_F(ServiceTest, ConcurrentTraceSpansMapToExactlyOneReport) {
  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  rec.clear();
  rec.enable();

  ServeConfig cfg;
  cfg.num_workers = 4;  // real concurrency: interleaved worker spans
  ContractionService svc(cfg);
  svc.load("X", x_);
  svc.load("Y", y_);
  std::vector<std::future<ServeReport>> futs;
  constexpr int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    // Mix of variants so different engine paths emit under load.
    futs.push_back(svc.submit(request(
        i % 2 == 0 ? Algorithm::kSparta : Algorithm::kCooHta)));
  }
  std::set<std::uint64_t> report_ids;
  for (auto& f : futs) {
    const ServeReport rep = f.get();
    ASSERT_TRUE(rep.ok()) << rep.error;
    report_ids.insert(rep.request_id);
  }
  svc.shutdown();
  rec.disable();
  ASSERT_EQ(report_ids.size(), kRequests);

  // Walk every recorded event; each request_id arg must be a known
  // report id (no orphans, no stale thread-local leakage), and every
  // report must have been traced.
  std::map<std::uint64_t, std::size_t> spans_per_request;
  for (const obs::TraceEvent& e : rec.snapshot()) {
    if (e.args.empty() || e.phase == 'C') continue;
    const std::optional<obs::JsonValue> args = obs::json_parse(e.args);
    ASSERT_TRUE(args.has_value()) << e.args;
    const obs::JsonValue* rid = args->get("request_id");
    if (rid == nullptr) continue;  // not request-scoped (e.g. load())
    const auto id = static_cast<std::uint64_t>(rid->number_or(0));
    EXPECT_EQ(report_ids.count(id), 1u)
        << "span '" << e.name << "' carries unknown request_id " << id;
    ++spans_per_request[id];
  }
  EXPECT_EQ(spans_per_request.size(), report_ids.size());
  for (const std::uint64_t id : report_ids) {
    EXPECT_GE(spans_per_request[id], 1u) << "request " << id;
  }
  rec.clear();
}

TEST_F(ServiceTest, StatlogRecordsEveryResolvedRequest) {
  const std::string path = ::testing::TempDir() + "serve_statlog.jsonl";
  std::remove(path.c_str());
  ServeConfig cfg;
  cfg.statlog_path = path;
  {
    ContractionService svc(cfg);
    svc.load("X", x_);
    svc.load("Y", y_);
    ASSERT_TRUE(svc.contract_sync(request(Algorithm::kSparta)).ok());
    ASSERT_TRUE(svc.contract_sync(request(Algorithm::kSparta)).ok());
    ServeRequest bad = request(Algorithm::kSpa);
    bad.y = "missing";
    EXPECT_FALSE(svc.contract_sync(bad).ok());
    EXPECT_EQ(svc.statlog_lines(), 3u);
  }
  std::ifstream in(path);
  std::string line;
  std::set<std::uint64_t> ids;
  std::map<std::string, int> outcomes;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const std::optional<obs::JsonValue> rec = obs::json_parse(line);
    ASSERT_TRUE(rec.has_value()) << line;
    EXPECT_EQ(rec->get("schema_version")->number_or(0), 2.0);
    ids.insert(
        static_cast<std::uint64_t>(rec->get("request_id")->number_or(0)));
    ++outcomes[rec->get("outcome")->string_or("?")];
    ASSERT_NE(rec->get("variant"), nullptr);
    ASSERT_NE(rec->get("exec_seconds"), nullptr);
    ASSERT_NE(rec->get("stages"), nullptr);
    ASSERT_NE(rec->get("perf"), nullptr);
    // Schema-2 additions: feature-vector version, environment, and the
    // deciding model — always present, even on failed requests.
    EXPECT_EQ(rec->get("feature_version")->number_or(0), 1.0);
    ASSERT_NE(rec->get("key"), nullptr);
    ASSERT_NE(rec->get("simd_isa"), nullptr);
    ASSERT_NE(rec->get("swiss_tables"), nullptr);
    ASSERT_NE(rec->get("model_id"), nullptr);
    EXPECT_EQ(rec->get("selector_prior")->string_or("?"), "analytic");
    ASSERT_NE(rec->get("est_hty_bytes"), nullptr);
    ASSERT_NE(rec->get("hty_bytes"), nullptr);
    ASSERT_NE(rec->get("pred_seconds"), nullptr);
    // Operand features resolved at log time for live tensors.
    if (rec->get("outcome")->string_or("") == "ok") {
      ASSERT_NE(rec->get("nnz_x"), nullptr) << line;
      ASSERT_NE(rec->get("density_x"), nullptr) << line;
      EXPECT_EQ(rec->get("nnz_x")->number_or(0),
                static_cast<double>(x_.nnz()));
      // Second request hit the plan cache.
    }
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(ids.size(), 3u);  // one record per request, ids distinct
  EXPECT_EQ(outcomes["ok"], 2);
  EXPECT_EQ(outcomes["error"], 1);
  std::remove(path.c_str());
}

TEST_F(ServiceTest, HardFailureDumpsFlightRecorder) {
  const std::string dump = ::testing::TempDir() + "serve_flight.json";
  std::remove(dump.c_str());
  obs::FlightRecorder& fr = obs::FlightRecorder::global();
  fr.clear();
  fr.enable();
  ServeConfig cfg;
  cfg.flight_dump_path = dump;
  {
    ContractionService svc(cfg);
    svc.load("X", x_);
    svc.load("Y", y_);
    // A healthy request must NOT dump.
    ASSERT_TRUE(svc.contract_sync(request(Algorithm::kSpa)).ok());
    std::ifstream probe(dump);
    EXPECT_FALSE(probe.good()) << "dump written for a healthy request";
    // A hard failure (unknown operand -> error outcome) must dump.
    ServeRequest bad = request(Algorithm::kSpa);
    bad.y = "missing";
    EXPECT_FALSE(svc.contract_sync(bad).ok());
  }
  fr.disable();
  std::ifstream in(dump);
  ASSERT_TRUE(in.good()) << "no flight dump at " << dump;
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_TRUE(obs::json_valid(ss.str()));
  EXPECT_NE(ss.str().find("\"flight_recorder\":true"), std::string::npos);
  // The healthy request's engine spans are in the ring, so the dump
  // carries its correlation id — post-mortem context, not just the
  // failing request.
  EXPECT_NE(ss.str().find("\"request_id\":"), std::string::npos);
  std::remove(dump.c_str());
  fr.clear();
}

// --- Workload scripts -------------------------------------------------

TEST(Workload, ParsesEveryOpKind) {
  std::istringstream in(
      "# comment\n"
      "gen A dims=8x8x4 nnz=100 seed=3\n"
      "\n"
      "contract Z A A cx=0,1 cy=0,1 repeat=3 variant=sparta\n"
      "contract K A A cx=0 cy=0 store\n"
      "drop A\n");
  const std::vector<WorkloadOp> ops = parse_workload(in);
  ASSERT_EQ(ops.size(), 4u);

  EXPECT_EQ(ops[0].kind, WorkloadOp::Kind::kGen);
  EXPECT_EQ(ops[0].name, "A");
  EXPECT_EQ(ops[0].gen.nnz, 100u);
  ASSERT_EQ(ops[0].gen.dims.size(), 3u);
  EXPECT_EQ(ops[0].gen.dims[2], 4);

  EXPECT_EQ(ops[1].kind, WorkloadOp::Kind::kContract);
  EXPECT_EQ(ops[1].repeat, 3);
  EXPECT_TRUE(ops[1].request.force_variant);
  EXPECT_EQ(ops[1].request.variant, Algorithm::kSparta);
  EXPECT_TRUE(ops[1].request.store_as.empty());

  EXPECT_EQ(ops[2].request.store_as, "K");
  EXPECT_FALSE(ops[2].request.force_variant);

  EXPECT_EQ(ops[3].kind, WorkloadOp::Kind::kDrop);
  EXPECT_EQ(ops[3].line, 6);
}

TEST(Workload, ParseErrorsNameTheLine) {
  const auto expect_fail = [](const std::string& script,
                              const std::string& needle) {
    std::istringstream in(script);
    try {
      (void)parse_workload(in);
      FAIL() << "expected Error for: " << script;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_fail("gen A dims=8x8\n", "line 1");
  expect_fail("\nbogus A\n", "line 2");
  expect_fail("contract Z A B cx=0,1 repeat=2\n", "cx= and cy=");
  expect_fail("contract Z A B cx=0 cy=0 repeat=2 store\n",
              "store and repeat");
  expect_fail("contract Z A B cx=0 cy=0 variant=magic\n",
              "unknown variant");
}

TEST(Workload, RunsDeterministicallyAcrossClientCounts) {
  const std::string script =
      "gen A dims=10x10x6 nnz=200 seed=5\n"
      "gen B dims=10x10x8 nnz=300 seed=6\n"
      "contract Z A B cx=0,1 cy=0,1 repeat=6\n"
      "contract S A B cx=0,1 cy=0,1 variant=sparta store\n"
      "contract W S S cx=0 cy=0\n"
      "drop A\n";
  const auto run = [&](int clients) {
    std::istringstream in(script);
    const std::vector<WorkloadOp> ops = parse_workload(in);
    ContractionService svc;
    WorkloadOptions wopts;
    wopts.clients = clients;
    WorkloadResult res = run_workload(svc, ops, wopts);
    EXPECT_FALSE(svc.tensors().contains("A"));
    EXPECT_TRUE(svc.tensors().contains("S"));
    return res;
  };
  const WorkloadResult one = run(1);
  const WorkloadResult four = run(4);
  ASSERT_EQ(one.reports.size(), 8u);
  ASSERT_EQ(four.reports.size(), 8u);
  for (std::size_t i = 0; i < one.reports.size(); ++i) {
    ASSERT_TRUE(one.reports[i].ok()) << one.reports[i].error;
    ASSERT_TRUE(four.reports[i].ok()) << four.reports[i].error;
    expect_identical(*one.reports[i].z, *four.reports[i].z);
  }
}

}  // namespace
}  // namespace sparta::serve
