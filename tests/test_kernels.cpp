// Tests for the sparse-times-dense kernels: TTM, MTTKRP, the dense
// helper matrix, and CP-ALS end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "kernels/cp_als.hpp"
#include "kernels/dense_matrix.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/ttm.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/generators.hpp"
#include "tensor/ops.hpp"

namespace sparta {
namespace {

SparseTensor rand_t(std::vector<index_t> dims, std::size_t nnz,
                    std::uint64_t seed) {
  GeneratorSpec s;
  s.dims = std::move(dims);
  s.nnz = nnz;
  s.seed = seed;
  return generate_random(s);
}

// --- DenseMatrix helpers -----------------------------------------------

TEST(DenseMatrixTest, GramIsSymmetricAndCorrect) {
  const DenseMatrix a = DenseMatrix::random(7, 3, 1);
  const DenseMatrix g = a.gram();
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double expect = 0;
      for (std::size_t r = 0; r < 7; ++r) expect += a.at(r, i) * a.at(r, j);
      EXPECT_NEAR(g.at(i, j), expect, 1e-12);
      EXPECT_DOUBLE_EQ(g.at(i, j), g.at(j, i));
    }
  }
}

TEST(DenseMatrixTest, SpdSolveRoundTrips) {
  // Build SPD A = MᵀM + I, random B; check X·A ≈ B.
  const DenseMatrix m = DenseMatrix::random(6, 4, 2, -1.0, 1.0);
  DenseMatrix a = m.gram();
  for (std::size_t i = 0; i < 4; ++i) a.at(i, i) += 1.0;
  const DenseMatrix b = DenseMatrix::random(3, 4, 3, -2.0, 2.0);
  const DenseMatrix x = a.solve_spd_right(b);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t j = 0; j < 4; ++j) {
      double got = 0;
      for (std::size_t k = 0; k < 4; ++k) got += x.at(r, k) * a.at(k, j);
      EXPECT_NEAR(got, b.at(r, j), 1e-9);
    }
  }
}

TEST(DenseMatrixTest, SolveRejectsNonSpd) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = -1.0;  // indefinite
  const DenseMatrix b(1, 2);
  EXPECT_THROW((void)a.solve_spd_right(b), Error);
}

// --- TTM ----------------------------------------------------------------

TEST(Ttm, MatchesDenseOracle) {
  for (int mode = 0; mode < 3; ++mode) {
    const SparseTensor x = rand_t({6, 7, 8}, 90, 4);
    const DenseMatrix u =
        DenseMatrix::random(x.dim(mode), 5, 5, -1.0, 1.0);
    const SemiSparseTensor z = ttm(x, u, mode);

    // Dense oracle.
    const DenseTensor dx = DenseTensor::from_sparse(x);
    std::vector<index_t> zdims = x.dims();
    zdims[static_cast<std::size_t>(mode)] = 5;
    DenseTensor expect(zdims);
    const LinearIndexer lin(zdims);
    std::vector<index_t> c(3), xc(3);
    for (lnkey_t k = 0; k < lin.size(); ++k) {
      lin.delinearize(k, c);
      xc = c;
      double s = 0;
      for (index_t in = 0; in < x.dim(mode); ++in) {
        xc[static_cast<std::size_t>(mode)] = in;
        s += dx.at(xc) * u.at(in, c[static_cast<std::size_t>(mode)]);
      }
      expect.data()[k] = s;
    }
    EXPECT_TRUE(SparseTensor::approx_equal(z.to_sparse(1e-14),
                                           expect.to_sparse(1e-14), 1e-9))
        << "mode " << mode;
  }
}

TEST(Ttm, OutputSizeIsPredictable) {
  const SparseTensor x = rand_t({20, 30, 25}, 500, 6);
  const DenseMatrix u = DenseMatrix::random(25, 4, 7);
  const SemiSparseTensor z = ttm(x, u, 2);
  // Count distinct (i,j) fibers by hand.
  SparseTensor fibers_only = reduce_mode(x, 2);
  EXPECT_EQ(z.num_fibers(), fibers_only.nnz());
  EXPECT_EQ(z.rank(), 4u);
}

TEST(Ttm, RejectsBadArguments) {
  const SparseTensor x = rand_t({4, 5}, 6, 8);
  EXPECT_THROW((void)ttm(x, DenseMatrix::random(4, 3, 1), 1), Error);
  EXPECT_THROW((void)ttm(x, DenseMatrix::random(5, 3, 1), 2), Error);
}

// --- MTTKRP ---------------------------------------------------------------

TEST(Mttkrp, MatchesNaiveReference) {
  const SparseTensor x = rand_t({8, 9, 7, 6}, 200, 9);
  constexpr std::size_t kRank = 3;
  std::vector<DenseMatrix> factors;
  for (int m = 0; m < 4; ++m) {
    factors.push_back(DenseMatrix::random(x.dim(m), kRank,
                                          10 + static_cast<std::uint64_t>(m),
                                          -1.0, 1.0));
  }
  for (int mode = 0; mode < 4; ++mode) {
    const DenseMatrix got = mttkrp(x, factors, mode);
    DenseMatrix expect(x.dim(mode), kRank);
    std::vector<index_t> c(4);
    for (std::size_t i = 0; i < x.nnz(); ++i) {
      x.coords(i, c);
      for (std::size_t r = 0; r < kRank; ++r) {
        value_t v = x.value(i);
        for (int m = 0; m < 4; ++m) {
          if (m == mode) continue;
          v *= factors[static_cast<std::size_t>(m)].at(
              c[static_cast<std::size_t>(m)], r);
        }
        expect.at(c[static_cast<std::size_t>(mode)], r) += v;
      }
    }
    for (std::size_t i = 0; i < expect.rows(); ++i) {
      for (std::size_t r = 0; r < kRank; ++r) {
        EXPECT_NEAR(got.at(i, r), expect.at(i, r), 1e-9)
            << "mode " << mode;
      }
    }
  }
}

TEST(Mttkrp, ParallelMatchesSequential) {
  const SparseTensor x = rand_t({15, 15, 15}, 600, 11);
  std::vector<DenseMatrix> factors;
  for (int m = 0; m < 3; ++m) {
    factors.push_back(
        DenseMatrix::random(15, 4, 20 + static_cast<std::uint64_t>(m)));
  }
  const DenseMatrix a = mttkrp(x, factors, 1, 1);
  const DenseMatrix b = mttkrp(x, factors, 1, 4);
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-9);
  }
}

TEST(Mttkrp, RejectsBadFactors) {
  const SparseTensor x = rand_t({4, 5, 6}, 10, 12);
  std::vector<DenseMatrix> factors{DenseMatrix::random(4, 3, 1),
                                   DenseMatrix::random(5, 3, 2)};
  EXPECT_THROW((void)mttkrp(x, factors, 0), Error);  // missing one
  factors.push_back(DenseMatrix::random(7, 3, 3));   // wrong rows
  EXPECT_THROW((void)mttkrp(x, factors, 0), Error);
}

// --- CP-ALS ----------------------------------------------------------------

// A tensor that is exactly rank-2: CP-ALS at rank 2 must fit it ~1.0.
SparseTensor exact_rank2_tensor(const std::vector<index_t>& dims) {
  // Signed factors keep the two components far from collinear, so ALS
  // converges quickly.
  std::vector<DenseMatrix> f;
  for (std::size_t m = 0; m < dims.size(); ++m) {
    f.push_back(DenseMatrix::random(dims[m], 2, 40 + m, -1.0, 1.0));
  }
  DenseTensor d(dims);
  const LinearIndexer lin(dims);
  std::vector<index_t> c(dims.size());
  for (lnkey_t k = 0; k < lin.size(); ++k) {
    lin.delinearize(k, c);
    double v = 0;
    for (std::size_t r = 0; r < 2; ++r) {
      double p = 1;
      for (std::size_t m = 0; m < dims.size(); ++m) p *= f[m].at(c[m], r);
      v += p;
    }
    d.data()[k] = v;
  }
  return d.to_sparse(1e-14);
}

TEST(CpAls, RecoversExactLowRankTensor) {
  const SparseTensor x = exact_rank2_tensor({8, 9, 7});
  CpAlsOptions o;
  o.rank = 2;
  o.max_iterations = 200;
  o.tolerance = 1e-9;
  const CpModel model = cp_als(x, o);
  EXPECT_GT(model.fit, 0.999) << "after " << model.iterations
                              << " iterations";
}

TEST(CpAls, ReconstructionMatchesFit) {
  const SparseTensor x = exact_rank2_tensor({6, 5, 7});
  CpAlsOptions o;
  o.rank = 2;
  o.max_iterations = 300;
  o.tolerance = 1e-10;
  const CpModel model = cp_als(x, o);
  const SparseTensor approx = model.reconstruct(x.dims());
  const SparseTensor diff = add(x, approx, 1.0, -1.0);
  const double rel = norm_fro(diff) / norm_fro(x);
  EXPECT_NEAR(1.0 - rel, model.fit, 1e-6);
}

TEST(CpAls, FitImprovesOverIterations) {
  const SparseTensor x = rand_t({10, 12, 9}, 300, 13);
  CpAlsOptions one;
  one.rank = 4;
  one.max_iterations = 1;
  CpAlsOptions many = one;
  many.max_iterations = 30;
  many.tolerance = 0.0;
  EXPECT_GE(cp_als(x, many).fit, cp_als(x, one).fit - 1e-12);
}

TEST(CpAls, RejectsBadInput) {
  const SparseTensor empty(std::vector<index_t>{3, 3});
  EXPECT_THROW((void)cp_als(empty), Error);
  const SparseTensor x = rand_t({4, 4}, 4, 14);
  CpAlsOptions o;
  o.rank = 0;
  EXPECT_THROW((void)cp_als(x, o), Error);
}


// --- TTV ------------------------------------------------------------------

TEST(Ttv, MatchesReduceAfterScaling) {
  const SparseTensor x = rand_t({6, 7, 8}, 100, 30);
  std::vector<value_t> v(8);
  Rng rng(31);
  for (auto& e : v) e = rng.uniform_double(-1.0, 1.0);

  const SparseTensor got = ttv(x, v, 2);

  // Oracle: scale each nz by v[i2], then reduce mode 2.
  SparseTensor scaled = x;
  std::vector<index_t> c(3);
  for (std::size_t n = 0; n < scaled.nnz(); ++n) {
    scaled.coords(n, c);
    scaled.value(n) *= v[c[2]];
  }
  const SparseTensor expect = reduce_mode(scaled, 2);
  EXPECT_TRUE(SparseTensor::approx_equal(got, expect, 1e-9));
}

TEST(Ttv, MiddleModeAndValidation) {
  const SparseTensor x = rand_t({5, 9, 4}, 60, 32);
  std::vector<value_t> v(9, 1.0);  // all-ones = plain mode reduction
  const SparseTensor got = ttv(x, v, 1);
  EXPECT_TRUE(SparseTensor::approx_equal(got, reduce_mode(x, 1), 1e-9));

  std::vector<value_t> wrong(5, 1.0);
  EXPECT_THROW((void)ttv(x, wrong, 1), Error);
  EXPECT_THROW((void)ttv(x, v, 3), Error);
}

TEST(Ttv, ZeroVectorGivesEmpty) {
  const SparseTensor x = rand_t({4, 5}, 10, 33);
  std::vector<value_t> v(5, 0.0);
  EXPECT_EQ(ttv(x, v, 1).nnz(), 0u);
}

}  // namespace
}  // namespace sparta
